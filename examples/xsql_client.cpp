// A line-oriented REPL over the XSQL wire protocol — the network twin
// of xsql_shell, built on the exactly-once RetryingClient: statements
// are stamped with (client uuid, seq) and retried with backoff across
// timeouts, resets, and even a mid-session server restart, without
// ever applying a mutation twice.
//
//   $ ./xsql_client --port 7788
//   xsql(127.0.0.1:7788)> SELECT T WHERE mary.Salary[T]
//   T
//   100
//   (1 rows)
//   xsql(127.0.0.1:7788)> .quit
//
// When the server goes away mid-session the REPL prints a one-line
// notice ("[xsql] connection lost ...; retrying") and keeps the
// session: the next statement reconnects transparently.
//
// With --execute "<stmt>" it runs one statement non-interactively and
// exits (used by ci.sh for the localhost smoke test).
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "server/client.h"

namespace {

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--host H] [--port N] [--timeout-ms N] "
               "[--retries N] [--execute <stmt>]\n",
               argv0);
}

}  // namespace

int main(int argc, char** argv) {
  xsql::server::RetryingClientOptions options;
  options.port = 7788;
  std::string one_shot;
  bool have_one_shot = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--host") {
      const char* v = next();
      if (!v) return Usage(argv[0]), 1;
      options.host = v;
    } else if (arg == "--port") {
      const char* v = next();
      if (!v) return Usage(argv[0]), 1;
      options.port = std::atoi(v);
    } else if (arg == "--timeout-ms") {
      const char* v = next();
      if (!v) return Usage(argv[0]), 1;
      options.timeout_ms = std::atoi(v);
    } else if (arg == "--retries") {
      const char* v = next();
      if (!v) return Usage(argv[0]), 1;
      options.max_retries = std::atoi(v);
    } else if (arg == "--execute" || arg == "-e") {
      const char* v = next();
      if (!v) return Usage(argv[0]), 1;
      one_shot = v;
      have_one_shot = true;
    } else {
      Usage(argv[0]);
      return 1;
    }
  }
  options.on_event = [](const std::string& line) {
    std::printf("[xsql] %s\n", line.c_str());
    std::fflush(stdout);
  };

  xsql::server::RetryingClient client(options);

  if (have_one_shot) {
    auto out = client.Execute(one_shot);
    if (!out.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   out.status().ToString().c_str());
      return 1;
    }
    std::printf("%s", out->c_str());
    client.Close();
    return 0;
  }

  std::printf("connected to %s:%d — statements end at end-of-line; "
              ".ping, .quit\n",
              options.host.c_str(), options.port);
  std::string line;
  while (true) {
    std::printf("xsql(%s:%d)> ", options.host.c_str(), options.port);
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    if (line.empty()) continue;
    if (line == ".quit" || line == ".q") break;
    if (line == ".ping") {
      // A one-shot probe, deliberately unretried: .ping answers "is
      // the server up right now", not "can it eventually be reached".
      auto conn = xsql::server::Client::Connect(options.host,
                                                options.port);
      if (!conn.ok()) {
        std::printf("down: %s\n", conn.status().ToString().c_str());
        continue;
      }
      conn->set_timeout_ms(options.timeout_ms);
      auto pong = conn->Ping();
      std::printf("%s\n", pong.ok() ? pong->c_str()
                                    : pong.status().ToString().c_str());
      continue;
    }
    auto out = client.Execute(line);
    if (!out.ok()) {
      std::printf("error: %s\n", out.status().ToString().c_str());
      continue;
    }
    std::printf("%s", out->c_str());
  }
  client.Close();
  return 0;
}
