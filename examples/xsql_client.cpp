// A line-oriented REPL over the XSQL wire protocol — the network twin
// of xsql_shell.
//
//   $ ./xsql_client --port 7788
//   xsql(127.0.0.1:7788)> SELECT T WHERE mary.Salary[T]
//   T
//   100
//   (1 rows)
//   xsql(127.0.0.1:7788)> .quit
//
// With --execute "<stmt>" it runs one statement non-interactively and
// exits (used by ci.sh for the localhost smoke test).
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "server/client.h"

namespace {

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--host H] [--port N] [--execute <stmt>]\n",
               argv0);
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int port = 7788;
  std::string one_shot;
  bool have_one_shot = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--host") {
      const char* v = next();
      if (!v) return Usage(argv[0]), 1;
      host = v;
    } else if (arg == "--port") {
      const char* v = next();
      if (!v) return Usage(argv[0]), 1;
      port = std::atoi(v);
    } else if (arg == "--execute" || arg == "-e") {
      const char* v = next();
      if (!v) return Usage(argv[0]), 1;
      one_shot = v;
      have_one_shot = true;
    } else {
      Usage(argv[0]);
      return 1;
    }
  }

  auto client = xsql::server::Client::Connect(host, port);
  if (!client.ok()) {
    std::fprintf(stderr, "connect %s:%d: %s\n", host.c_str(), port,
                 client.status().ToString().c_str());
    return 1;
  }

  if (have_one_shot) {
    auto out = client->Execute(one_shot);
    if (!out.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   out.status().ToString().c_str());
      return 1;
    }
    std::printf("%s", out->c_str());
    (void)client->Quit();
    return 0;
  }

  std::printf("connected to %s:%d — statements end at end-of-line; "
              ".ping, .quit\n",
              host.c_str(), port);
  std::string line;
  while (true) {
    std::printf("xsql(%s:%d)> ", host.c_str(), port);
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    if (line.empty()) continue;
    if (line == ".quit" || line == ".q") break;
    if (line == ".ping") {
      auto pong = client->Ping();
      std::printf("%s\n", pong.ok() ? pong->c_str()
                                    : pong.status().ToString().c_str());
      continue;
    }
    auto out = client->Execute(line);
    if (!out.ok()) {
      std::printf("error: %s\n", out.status().ToString().c_str());
      if (!client->connected()) break;
      continue;
    }
    std::printf("%s", out->c_str());
  }
  (void)client->Quit();
  return 0;
}
