// The typing spectrum (§1, §6): the Nobel-prize query is liberally
// well-typed but not strictly; an exemption for WonNobelPrize's 0th
// argument restores strict typing, and the strict witness feeds the
// Theorem 6.1(2) range optimization.
//
//   $ ./nobel_typing
#include <cstdio>

#include "eval/session.h"
#include "parser/parser.h"
#include "typing/type_checker.h"
#include "workload/fig1_schema.h"
#include "workload/generator.h"

int main() {
  xsql::Database db;
  if (!xsql::workload::BuildFig1Schema(&db).ok()) return 1;
  if (!xsql::workload::BuildNobelSchema(&db).ok()) return 1;
  xsql::workload::WorkloadParams params;
  if (!xsql::workload::GenerateFig1Data(&db, params).ok()) return 1;
  // A couple of laureates across *different* classes — the reason the
  // conservative approach cannot type this query without schema help.
  (void)db.NewObject(xsql::Oid::Atom("curie"), {xsql::Oid::Atom("Scientist")});
  (void)db.AddToSet(xsql::Oid::Atom("curie"),
                    xsql::Oid::Atom("WonNobelPrize"),
                    xsql::Oid::String("physics"));
  (void)db.NewObject(xsql::Oid::Atom("unicef"),
                     {xsql::Oid::Atom("CharityOrg")});
  (void)db.AddToSet(xsql::Oid::Atom("unicef"),
                    xsql::Oid::Atom("WonNobelPrize"),
                    xsql::Oid::String("peace"));

  const std::string query = "SELECT X WHERE X.WonNobelPrize";
  auto stmt = xsql::ParseAndResolve(query, db);
  if (!stmt.ok()) return 1;
  const xsql::Query& q = *stmt->query->simple;
  xsql::TypeChecker checker(db);

  auto report = [&](const char* label, const xsql::TypingResult& res) {
    std::printf("%-28s : %s%s\n", label,
                res.well_typed ? "well-typed" : "ill-typed",
                res.well_typed ? "" : (" (" + res.explanation + ")").c_str());
  };
  report("liberal (§6.2)", checker.Check(q, xsql::TypingMode::kLiberal));
  report("strict (§6.2)", checker.Check(q, xsql::TypingMode::kStrict));
  xsql::ExemptionSet exemptions;
  exemptions.items.push_back(
      xsql::Exemption{xsql::Oid::Atom("WonNobelPrize"), 0});
  report("strict + exemption",
         checker.Check(q, xsql::TypingMode::kStrict, exemptions));

  // Typing is metalogical: the query runs either way.
  xsql::Session session(&db);
  auto rel = session.Query(query);
  std::printf("\nNobel laureates in the database:\n");
  if (rel.ok()) {
    for (const auto& row : rel->rows()) {
      std::printf("  %s\n", row[0].ToString().c_str());
    }
  }

  // A strictly well-typed query exposes its witness: the plan and the
  // variable ranges the evaluator may prune with (Theorem 6.1).
  auto strict_stmt = xsql::ParseAndResolve(
      "SELECT X FROM Vehicle X WHERE X.Manufacturer[M] "
      "and M.President.OwnedVehicles[X]",
      db);
  if (strict_stmt.ok()) {
    xsql::TypingResult witness = checker.Check(
        *strict_stmt->query->simple, xsql::TypingMode::kStrict);
    std::printf("\nfragment (17) strict witness: plan %s\n",
                xsql::PlanToString(witness.plan).c_str());
    for (const auto& [var, range] : witness.ranges) {
      std::printf("  A(%s) = %s\n", var.ToString().c_str(),
                  range.ToString().c_str());
    }
  }
  return 0;
}
