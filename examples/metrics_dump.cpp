// Drives a representative Figure 1 workload through a Session —
// queries, an index build, a view materialization, an F-logic
// translation, a slow-query threshold, an EXPLAIN ANALYZE — then dumps
// the global metrics registry as JSON on stdout. CI captures this
// output as a build artifact, so keep stdout pure JSON (diagnostics go
// to stderr).
//
//   $ ./metrics_dump > metrics.json
#include <cstdio>

#include "eval/session.h"
#include "obs/metrics.h"
#include "parser/parser.h"
#include "store/index.h"
#include "workload/fig1_schema.h"
#include "workload/generator.h"

int main() {
  xsql::Database db;
  if (!xsql::workload::BuildFig1Schema(&db).ok()) return 1;
  xsql::workload::WorkloadParams params;
  if (!xsql::workload::GenerateFig1Data(&db, params).ok()) return 1;

  xsql::SessionOptions options;
  options.slow_query_us = 1;  // everything qualifies: exercises the log
  xsql::Session session(&db, options);

  const char* statements[] = {
      // Fragment (17), the paper's recurring example.
      "SELECT X FROM Vehicle X "
      "WHERE X.Manufacturer[M] and M.President.OwnedVehicles[X]",
      "SELECT Y FROM Person X WHERE X.Residence[Y].City['newyork']",
      // A view definition + a query through it (materializes).
      "CREATE VIEW Presidents AS SUBCLASS OF Object "
      "SIGNATURE P => Person "
      "SELECT P = X.President FROM Company X OID FUNCTION OF X "
      "WHERE X.President[P]",
      "SELECT T FROM Company X WHERE Presidents(X).P[T]",
      // Diagnostics: traced execution and the registry itself.
      "EXPLAIN ANALYZE SELECT C WHERE mary123.Residence.City[C]",
      "SYSTEM METRICS",
  };
  for (const char* stmt : statements) {
    auto out = session.Execute(stmt);
    if (!out.ok()) {
      std::fprintf(stderr, "statement failed: %s\n  %s\n", stmt,
                   out.status().ToString().c_str());
      return 1;
    }
  }
  std::fprintf(stderr, "slow-query log entries: %zu\n",
               session.slow_query_log().size());

  // Path indexes live at the Evaluator layer (EvalOptions::indexes);
  // run one indexed query so the index metrics appear in the dump.
  xsql::PathIndexSet indexes;
  if (!indexes
           .Add(db, xsql::Oid::Atom("Person"),
                {xsql::Oid::Atom("Residence"), xsql::Oid::Atom("City")})
           .ok()) {
    return 1;
  }
  auto stmt = xsql::ParseAndResolve(
      "SELECT X FROM Person X WHERE X.Residence.City['newyork']", db);
  if (!stmt.ok()) return 1;
  xsql::EvalOptions with_index;
  with_index.indexes = &indexes;
  if (!session.evaluator().Run(*stmt->query->simple, with_index).ok()) {
    return 1;
  }

  // Replication metrics live in server/replica code paths this example
  // doesn't exercise; register them at zero so dashboards built on this
  // dump see the full xsql.repl.* family from day one.
  auto& reg = xsql::obs::MetricsRegistry::Global();
  for (const char* name :
       {"xsql.repl.shipped_bytes", "xsql.repl.shipped_records",
        "xsql.repl.snapshot_bootstraps", "xsql.repl.sync_degraded",
        "xsql.repl.refused_writes", "xsql.repl.reconnects",
        "xsql.repl.promotions", "xsql.repl.applied_records",
        "xsql.storage.generations_pruned"}) {
    reg.GetCounter(name);
  }
  for (const char* name : {"xsql.repl.lag_records", "xsql.repl.lag_ms",
                           "xsql.repl.subscribers"}) {
    reg.GetGauge(name);
  }

  std::printf("%s\n", reg.ToJson().c_str());
  return 0;
}
