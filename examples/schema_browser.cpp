// Schema browsing (§1, §3.1): the queries a relational system needs
// catalog tables for, expressed directly in XSQL — class variables,
// method variables, subclassOf, and path variables.
//
//   $ ./schema_browser
#include <cstdio>

#include "eval/session.h"
#include "workload/fig1_schema.h"
#include "workload/generator.h"

namespace {

void Show(xsql::Session* session, const char* title, const char* query) {
  std::printf("-- %s\n   %s\n", title, query);
  auto rel = session->Query(query);
  if (!rel.ok()) {
    std::printf("   error: %s\n\n", rel.status().ToString().c_str());
    return;
  }
  for (const auto& row : rel->rows()) {
    std::printf("   %s\n", row[0].ToString().c_str());
  }
  if (rel->empty()) std::printf("   (empty)\n");
  std::printf("\n");
}

}  // namespace

int main() {
  xsql::Database db;
  if (!xsql::workload::BuildFig1Schema(&db).ok()) return 1;
  xsql::workload::WorkloadParams params;
  if (!xsql::workload::GenerateFig1Data(&db, params).ok()) return 1;
  xsql::Session session(&db);

  // The introduction's "engine types" question: in the object model the
  // engine kinds are *classes*, so the query interrogates the schema.
  Show(&session, "all superclasses of TurboEngine (query (4))",
       "SELECT $X WHERE TurboEngine subclassOf $X");
  Show(&session, "all engine kinds (strict subclasses of PistonEngine)",
       "SELECT $X WHERE $X subclassOf PistonEngine");
  // Engine types actually installed in some automobile: a data query
  // joined with a schema query — the footnote-1 distinction.
  Show(&session, "engine kinds currently installed in automobiles",
       "SELECT $E FROM Automobile A, $E Z "
       "WHERE A.Drivetrain.Engine[Z] and $E subclassOf PistonEngine");
  // Method variables: which attribute connects persons to New York?
  Show(&session, "attributes reaching 'newyork' from a Person (query (3))",
       "SELECT \"Y FROM Person X WHERE X.\"Y.City['newyork']");
  Show(&session, "attributes defined on mary123",
       "SELECT \"M WHERE mary123.\"M");
  // Path variables (the §3.1 extension): no need to know the distance.
  Show(&session, "persons connected to 'newyork' by any attribute path",
       "SELECT X FROM Person X WHERE X.*P.City['newyork']");
  // Classes of an individual, via a class-variable FROM entry.
  Show(&session, "classes containing individuals named 'mary'",
       "SELECT $C FROM $C Y WHERE Y.Name['mary']");
  return 0;
}
