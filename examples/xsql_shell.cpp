// An interactive XSQL shell over a Figure 1 instance — the fifth
// example and the fastest way to explore the language.
//
//   $ ./xsql_shell [scale]
//   xsql> SELECT C WHERE mary123.Residence.City[C]
//   xsql> .explain SELECT X FROM Vehicle X WHERE X.Manufacturer[M] \
//                  and M.President.OwnedVehicles[X]
//   xsql> .schema
//   xsql> .quit
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "common/str_util.h"
#include "eval/session.h"
#include "storage/snapshot.h"
#include "store/catalog.h"
#include "workload/fig1_schema.h"
#include "workload/generator.h"

namespace {

void PrintRelation(const xsql::Relation& rel) {
  if (rel.columns().empty()) return;
  std::string header;
  for (size_t i = 0; i < rel.columns().size(); ++i) {
    if (i > 0) header += " | ";
    header += rel.columns()[i];
  }
  std::printf("%s\n", header.c_str());
  for (const auto& row : rel.rows()) {
    std::string line;
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) line += " | ";
      line += row[i].ToString();
    }
    std::printf("%s\n", line.c_str());
  }
  std::printf("(%zu rows)\n", rel.size());
}

}  // namespace

int main(int argc, char** argv) {
  size_t scale = argc > 1 ? static_cast<size_t>(std::atoi(argv[1])) : 1;
  if (scale == 0) scale = 1;

  xsql::Database db;
  if (!xsql::workload::BuildFig1Schema(&db).ok()) return 1;
  xsql::workload::WorkloadParams params;
  params = params.Scaled(scale);
  auto stats = xsql::workload::GenerateFig1Data(&db, params);
  if (!stats.ok()) return 1;
  xsql::Session session(&db);

  std::printf(
      "XSQL shell — Figure 1 instance at scale %zu "
      "(%zu persons, %zu companies).\n"
      "Statements end at end-of-line. Commands: .schema, .explain <q>, "
      ".save <file>, .load <file>, .quit\n",
      scale, stats->persons, stats->companies);

  std::string line;
  while (true) {
    std::printf("xsql> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    if (line.empty()) continue;
    if (line == ".quit" || line == ".q") break;
    if (line == ".schema") {
      std::printf("%s", xsql::catalog::DumpSchema(db).c_str());
      continue;
    }
    if (xsql::StartsWith(line, ".explain ")) {
      auto report = session.Explain(line.substr(9));
      if (report.ok()) {
        std::printf("%s", report->c_str());
      } else {
        std::printf("error: %s\n", report.status().ToString().c_str());
      }
      continue;
    }
    if (xsql::StartsWith(line, ".save ")) {
      xsql::Status st =
          xsql::storage::SaveSnapshotToFile(db, line.substr(6));
      std::printf("%s\n", st.ok() ? "saved" : st.ToString().c_str());
      continue;
    }
    if (xsql::StartsWith(line, ".load ")) {
      // Loads *into* the current database (additively).
      xsql::Status st =
          xsql::storage::LoadSnapshotFromFile(line.substr(6), &db);
      std::printf("%s\n", st.ok() ? "loaded" : st.ToString().c_str());
      continue;
    }
    auto out = session.Execute(line);
    if (!out.ok()) {
      std::printf("error: %s\n", out.status().ToString().c_str());
      continue;
    }
    PrintRelation(out->relation);
    if (out->objects_created) {
      std::printf("(created %zu objects)\n", out->created.size());
    }
  }
  return 0;
}
