// The XSQL network server — serves a durable database directory over
// the length-prefixed TCP wire protocol (see docs/SERVER.md).
//
//   $ ./xsql_server --dir /tmp/mydb --port 7788
//   xsql server: dir=/tmp/mydb port=7788 max_connections=32
//   (Ctrl-C or SIGTERM for graceful shutdown)
//
// Connect with ./xsql_client or anything speaking the wire protocol.
// Every mutation is group-committed to the WAL before its reply frame
// is sent; concurrent readers run in parallel under a shared latch.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "server/server.h"
#include "storage/recovery.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int) { g_stop = 1; }

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --dir <path> [--port N] [--max-connections N] "
               "[--checkpoint-every N] [--deadline-ms N]\n"
               "          [--max-inflight N] [--idle-timeout-ms N] "
               "[--io-timeout-ms N] [--retry-after-ms N]\n",
               argv0);
}

}  // namespace

int main(int argc, char** argv) {
  std::string dir;
  xsql::server::ServerOptions options;
  options.port = 7788;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--dir") {
      const char* v = next();
      if (!v) return Usage(argv[0]), 1;
      dir = v;
    } else if (arg == "--port") {
      const char* v = next();
      if (!v) return Usage(argv[0]), 1;
      options.port = std::atoi(v);
    } else if (arg == "--max-connections") {
      const char* v = next();
      if (!v) return Usage(argv[0]), 1;
      options.max_connections = std::atoi(v);
    } else if (arg == "--checkpoint-every") {
      const char* v = next();
      if (!v) return Usage(argv[0]), 1;
      options.checkpoint_every =
          static_cast<uint64_t>(std::atoll(v));
    } else if (arg == "--deadline-ms") {
      const char* v = next();
      if (!v) return Usage(argv[0]), 1;
      options.session.limits.deadline_ms =
          static_cast<uint64_t>(std::atoll(v));
    } else if (arg == "--max-inflight") {
      const char* v = next();
      if (!v) return Usage(argv[0]), 1;
      options.max_inflight_statements = std::atoi(v);
    } else if (arg == "--idle-timeout-ms") {
      const char* v = next();
      if (!v) return Usage(argv[0]), 1;
      options.idle_timeout_ms = std::atoi(v);
    } else if (arg == "--io-timeout-ms") {
      const char* v = next();
      if (!v) return Usage(argv[0]), 1;
      options.io_timeout_ms = std::atoi(v);
    } else if (arg == "--retry-after-ms") {
      const char* v = next();
      if (!v) return Usage(argv[0]), 1;
      options.retry_after_hint_ms = std::atoi(v);
    } else {
      Usage(argv[0]);
      return 1;
    }
  }
  if (dir.empty()) {
    Usage(argv[0]);
    return 1;
  }

  auto dd = xsql::storage::DurableDatabase::Open(dir);
  if (!dd.ok()) {
    std::fprintf(stderr, "open %s: %s\n", dir.c_str(),
                 dd.status().ToString().c_str());
    return 1;
  }

  auto server = xsql::server::Server::Start((*dd).get(), options);
  if (!server.ok()) {
    std::fprintf(stderr, "start: %s\n",
                 server.status().ToString().c_str());
    return 1;
  }
  std::printf("xsql server: dir=%s port=%d max_connections=%d\n",
              dir.c_str(), (*server)->port(), options.max_connections);
  std::printf("(Ctrl-C or SIGTERM for graceful shutdown)\n");
  std::fflush(stdout);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (!g_stop) {
    struct timespec ts = {0, 100 * 1000 * 1000};
    nanosleep(&ts, nullptr);
  }

  std::printf("shutting down: draining %llu connections served...\n",
              static_cast<unsigned long long>(
                  (*server)->connections_served()));
  (*server)->Shutdown();
  std::printf("bye\n");
  return 0;
}
