// The XSQL network server — serves a durable database directory over
// the length-prefixed TCP wire protocol (see docs/SERVER.md).
//
//   $ ./xsql_server --dir /tmp/mydb --port 7788
//   xsql server: dir=/tmp/mydb port=7788 max_connections=32
//   (Ctrl-C or SIGTERM for graceful shutdown)
//
// Replication (docs/SERVER.md "Replication"):
//
//   $ ./xsql_server --dir /tmp/replica --port 7789 \
//         --replicate-from 127.0.0.1:7788     # start as a replica
//   $ ./xsql_server --promote 7789            # make it the new primary
//
// Connect with ./xsql_client or anything speaking the wire protocol.
// Every mutation is group-committed to the WAL before its reply frame
// is sent; concurrent readers run latch-free on MVCC snapshots.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "server/client.h"
#include "server/replica.h"
#include "server/server.h"
#include "storage/recovery.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int) { g_stop = 1; }

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --dir <path> [--port N] [--max-connections N] "
               "[--checkpoint-every N] [--deadline-ms N]\n"
               "          [--max-inflight N] [--idle-timeout-ms N] "
               "[--io-timeout-ms N] [--retry-after-ms N]\n"
               "          [--replicate-from HOST:PORT] [--sync-repl] "
               "[--retain N]\n"
               "       %s --promote PORT\n",
               argv0, argv0);
}

void WaitForSignal() {
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (!g_stop) {
    struct timespec ts = {0, 100 * 1000 * 1000};
    nanosleep(&ts, nullptr);
  }
}

/// `--promote PORT`: sends the kPromote admin frame to a local replica
/// and prints its verdict. Exit 0 only if the node accepted.
int Promote(int port) {
  auto conn = xsql::server::Client::Connect("127.0.0.1", port);
  if (!conn.ok()) {
    std::fprintf(stderr, "connect 127.0.0.1:%d: %s\n", port,
                 conn.status().ToString().c_str());
    return 1;
  }
  conn->set_timeout_ms(5000);
  auto reply = conn->Transact(xsql::server::MsgType::kPromote, "");
  if (!reply.ok()) {
    std::fprintf(stderr, "promote: %s\n",
                 reply.status().ToString().c_str());
    return 1;
  }
  if (reply->type != xsql::server::MsgType::kResult) {
    std::fprintf(stderr, "promote refused: %s\n", reply->payload.c_str());
    return 1;
  }
  std::printf("%s\n", reply->payload.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string dir;
  std::string replicate_from;
  int promote_port = 0;
  int retain = 0;
  bool sync_repl = false;
  xsql::server::ServerOptions options;
  options.port = 7788;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--dir") {
      const char* v = next();
      if (!v) return Usage(argv[0]), 1;
      dir = v;
    } else if (arg == "--port") {
      const char* v = next();
      if (!v) return Usage(argv[0]), 1;
      options.port = std::atoi(v);
    } else if (arg == "--max-connections") {
      const char* v = next();
      if (!v) return Usage(argv[0]), 1;
      options.max_connections = std::atoi(v);
    } else if (arg == "--checkpoint-every") {
      const char* v = next();
      if (!v) return Usage(argv[0]), 1;
      options.checkpoint_every =
          static_cast<uint64_t>(std::atoll(v));
    } else if (arg == "--deadline-ms") {
      const char* v = next();
      if (!v) return Usage(argv[0]), 1;
      options.session.limits.deadline_ms =
          static_cast<uint64_t>(std::atoll(v));
    } else if (arg == "--max-inflight") {
      const char* v = next();
      if (!v) return Usage(argv[0]), 1;
      options.max_inflight_statements = std::atoi(v);
    } else if (arg == "--idle-timeout-ms") {
      const char* v = next();
      if (!v) return Usage(argv[0]), 1;
      options.idle_timeout_ms = std::atoi(v);
    } else if (arg == "--io-timeout-ms") {
      const char* v = next();
      if (!v) return Usage(argv[0]), 1;
      options.io_timeout_ms = std::atoi(v);
    } else if (arg == "--retry-after-ms") {
      const char* v = next();
      if (!v) return Usage(argv[0]), 1;
      options.retry_after_hint_ms = std::atoi(v);
    } else if (arg == "--replicate-from") {
      const char* v = next();
      if (!v) return Usage(argv[0]), 1;
      replicate_from = v;
    } else if (arg == "--sync-repl") {
      sync_repl = true;
    } else if (arg == "--retain") {
      const char* v = next();
      if (!v) return Usage(argv[0]), 1;
      retain = std::atoi(v);
    } else if (arg == "--promote") {
      const char* v = next();
      if (!v) return Usage(argv[0]), 1;
      promote_port = std::atoi(v);
    } else {
      Usage(argv[0]);
      return 1;
    }
  }
  if (promote_port != 0) return Promote(promote_port);
  if (dir.empty()) {
    Usage(argv[0]);
    return 1;
  }

  if (!replicate_from.empty()) {
    // Replica mode: subscribe to the primary, serve reads, accept a
    // later --promote.
    const size_t colon = replicate_from.rfind(':');
    if (colon == std::string::npos) {
      std::fprintf(stderr, "--replicate-from wants HOST:PORT, got %s\n",
                   replicate_from.c_str());
      return 1;
    }
    xsql::server::ReplicaOptions ropts;
    ropts.dir = dir;
    ropts.primary_host = replicate_from.substr(0, colon);
    ropts.primary_port = std::atoi(replicate_from.c_str() + colon + 1);
    ropts.server = options;
    if (retain > 0) ropts.durable.retain_generations = retain;
    auto node = xsql::server::ReplicaNode::Start(std::move(ropts));
    if (!node.ok()) {
      std::fprintf(stderr, "replica start: %s\n",
                   node.status().ToString().c_str());
      return 1;
    }
    std::printf("xsql replica: dir=%s port=%d primary=%s\n", dir.c_str(),
                (*node)->port(), replicate_from.c_str());
    std::printf("(Ctrl-C or SIGTERM for graceful shutdown; "
                "--promote %d to take over)\n",
                (*node)->port());
    std::fflush(stdout);
    WaitForSignal();
    std::printf("shutting down replica (applied %llu records)...\n",
                static_cast<unsigned long long>((*node)->applied_records()));
    (*node)->Shutdown();
    std::printf("bye\n");
    return 0;
  }

  xsql::storage::DurableOptions dopts;
  if (retain > 0) dopts.retain_generations = retain;
  auto dd = xsql::storage::DurableDatabase::Open(dir, dopts);
  if (!dd.ok()) {
    std::fprintf(stderr, "open %s: %s\n", dir.c_str(),
                 dd.status().ToString().c_str());
    return 1;
  }

  options.sync_replication = sync_repl;
  auto server = xsql::server::Server::Start((*dd).get(), options);
  if (!server.ok()) {
    std::fprintf(stderr, "start: %s\n",
                 server.status().ToString().c_str());
    return 1;
  }
  std::printf("xsql server: dir=%s port=%d max_connections=%d%s\n",
              dir.c_str(), (*server)->port(), options.max_connections,
              sync_repl ? " sync-repl=on" : "");
  std::printf("(Ctrl-C or SIGTERM for graceful shutdown)\n");
  std::fflush(stdout);

  WaitForSignal();

  std::printf("shutting down: draining %llu connections served...\n",
              static_cast<unsigned long long>(
                  (*server)->connections_served()));
  (*server)->Shutdown();
  std::printf("bye\n");
  return 0;
}
