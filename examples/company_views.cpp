// Views and object creation (§4): the CompSalaries view (9), querying
// through it with id-terms (10), the OID-FUNCTION-as-GROUP-BY pattern
// (8), and the view update translation — the UniSQL 10% raise.
//
//   $ ./company_views
#include <cstdio>

#include "eval/session.h"
#include "workload/fig1_schema.h"
#include "workload/generator.h"

int main() {
  xsql::Database db;
  if (!xsql::workload::BuildFig1Schema(&db).ok()) return 1;
  xsql::workload::WorkloadParams params;
  params.companies = 3;
  if (!xsql::workload::GenerateFig1Data(&db, params).ok()) return 1;
  xsql::Session session(&db);

  // View (9).
  auto created = session.Execute(
      "CREATE VIEW CompSalaries AS SUBCLASS OF Object "
      "SIGNATURE CompName => String, DivName => String, Salary => Numeral "
      "SELECT CompName = X.Name, DivName = Y.Name, Salary = W.Salary "
      "FROM Company X OID FUNCTION OF X,W "
      "WHERE X.Divisions[Y].Employees[W]");
  if (!created.ok()) {
    std::printf("view error: %s\n", created.status().ToString().c_str());
    return 1;
  }
  std::printf("created view CompSalaries\n");

  // Query (10): views and non-views in one query. Materialization of
  // the view happens implicitly when the id-term is resolved.
  auto q10 = session.Query(
      "SELECT X.Manufacturer.Name FROM Automobile X, Employee W "
      "WHERE CompSalaries(X.Manufacturer, W).Salary > 35000");
  if (!q10.ok()) return 1;
  std::printf("\ncompanies with a well-paid employee (via the view):\n");
  for (const auto& row : q10->rows()) {
    std::printf("  %s\n", row[0].ToString().c_str());
  }

  // The view is a class like any other.
  auto through = session.Query(
      "SELECT V.CompName, V.Salary FROM CompSalaries V WHERE V.Salary > 0");
  std::printf("\nview extent holds %zu salary facts\n",
              through.ok() ? through->size() : 0);

  // Query (8): beneficiaries rosters via grouped set attributes.
  auto rosters = session.Execute(
      "SELECT CompName = Y.Name, Beneficiaries = {W} "
      "FROM Company Y OID FUNCTION OF Y "
      "WHERE Y.Retirees[W] or Y.Divisions.Employees.Dependents[W]");
  if (rosters.ok()) {
    std::printf("\nbeneficiary rosters (one object per company):\n");
    for (const xsql::Oid& oid : rosters->created) {
      const xsql::AttrValue* bene =
          db.GetAttribute(oid, xsql::Oid::Atom("Beneficiaries"));
      std::printf("  %s: %zu beneficiaries\n", oid.ToString().c_str(),
                  bene == nullptr ? 0 : bene->set().size());
    }
  }

  // View update translation (§4.2): raise one view object's salary by
  // 10% and watch the base employee change.
  xsql::OidSet extent = db.Extent(xsql::Oid::Atom("CompSalaries"));
  if (!extent.empty()) {
    xsql::Oid view_obj = *extent.begin();
    const xsql::Oid& employee = view_obj.term_args()[1];
    double before = db.GetAttribute(employee, xsql::Oid::Atom("Salary"))
                        ->scalar()
                        .numeric_value();
    xsql::Oid raised =
        xsql::Oid::Int(static_cast<int64_t>(before * 1.10));
    xsql::Status st = session.views().UpdateThroughView(
        view_obj, xsql::Oid::Atom("Salary"), raised);
    double after = db.GetAttribute(employee, xsql::Oid::Atom("Salary"))
                       ->scalar()
                       .numeric_value();
    std::printf("\nview update %s: employee %s salary %.0f -> %.0f\n",
                st.ok() ? "ok" : st.ToString().c_str(),
                employee.ToString().c_str(), before, after);
  }
  return 0;
}
