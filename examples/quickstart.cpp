// Quickstart: build the paper's Figure 1 schema, load a synthetic
// instance, and run the flagship queries of §3 from plain XSQL text.
//
//   $ ./quickstart
#include <cstdio>

#include "eval/session.h"
#include "store/catalog.h"
#include "workload/fig1_schema.h"
#include "workload/generator.h"

namespace {

void RunAndPrint(xsql::Session* session, const char* title,
                 const char* query) {
  std::printf("-- %s\n   %s\n", title, query);
  auto rel = session->Query(query);
  if (!rel.ok()) {
    std::printf("   error: %s\n\n", rel.status().ToString().c_str());
    return;
  }
  size_t shown = 0;
  for (const auto& row : rel->rows()) {
    if (shown++ == 8) {
      std::printf("   ... (%zu rows total)\n", rel->size());
      break;
    }
    std::string line = "   ";
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) line += " | ";
      line += row[i].ToString();
    }
    std::printf("%s\n", line.c_str());
  }
  if (rel->empty()) std::printf("   (empty)\n");
  std::printf("\n");
}

}  // namespace

int main() {
  xsql::Database db;
  if (!xsql::workload::BuildFig1Schema(&db).ok()) return 1;
  xsql::workload::WorkloadParams params;
  auto stats = xsql::workload::GenerateFig1Data(&db, params);
  if (!stats.ok()) {
    std::printf("generator error: %s\n", stats.status().ToString().c_str());
    return 1;
  }
  std::printf("Figure 1 instance: %zu persons, %zu employees, "
              "%zu companies, %zu divisions, %zu automobiles\n\n",
              stats->persons, stats->employees, stats->companies,
              stats->divisions, stats->automobiles);
  std::printf("Schema (excerpt):\n%s\n",
              xsql::catalog::DumpSchema(db).substr(0, 600).c_str());

  xsql::Session session(&db);
  RunAndPrint(&session, "path expression (1)",
              "SELECT C WHERE mary123.Residence.City[C]");
  RunAndPrint(&session, "selection below (1)",
              "SELECT Y FROM Person X WHERE X.Residence[Y].City['newyork']");
  RunAndPrint(&session, "engines of employee-owned automobiles",
              "SELECT Z FROM Employee X, Automobile Y "
              "WHERE X.OwnedVehicles[Y].Drivetrain.Engine[Z]");
  RunAndPrint(&session, "quantified comparison (§3.2)",
              "SELECT X FROM Employee X WHERE X.FamMembers.Age some> 20");
  RunAndPrint(&session, "explicit join (6)",
              "SELECT X, Y FROM Company X "
              "WHERE X.Name =some X.Divisions.Employees[Y].Name");
  RunAndPrint(&session, "aggregate (§3.2)",
              "SELECT X FROM Employee X WHERE count(X.FamMembers) > 4 "
              "and X.Residence =all X.FamMembers.Residence "
              "and X.Salary < 35000");
  RunAndPrint(&session, "relation result (5)",
              "SELECT X.Name, W.Salary FROM Company X "
              "WHERE X.Divisions.Employees[W]");
  return 0;
}
