// The university domain (§2, §6.1): one polymorphic method `earns`
// answering with grades for courses and pays for projects, a Workstudy
// class under both Student and Employee, and a department whose
// workstudy method carries the paper's combined signature.
//
//   $ ./university
#include <cstdio>

#include "workload/university.h"

namespace {

void Show(xsql::Session* session, const char* title, const char* query) {
  std::printf("-- %s\n   %s\n", title, query);
  auto rel = session->Query(query);
  if (!rel.ok()) {
    std::printf("   error: %s\n\n", rel.status().ToString().c_str());
    return;
  }
  for (const auto& row : rel->rows()) {
    std::string line = "   ";
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) line += " | ";
      line += row[i].ToString();
    }
    std::printf("%s\n", line.c_str());
  }
  if (rel->empty()) std::printf("   (empty)\n");
  std::printf("\n");
}

}  // namespace

int main() {
  xsql::Database db;
  xsql::Session session(&db);
  if (!xsql::workload::BuildUniversity(&session).ok()) return 1;

  Show(&session, "earns on a course argument (Grade)",
       "SELECT V WHERE carol.(earns @ cs202)[V]");
  Show(&session, "earns on a project argument (Pay)",
       "SELECT V WHERE carol.(earns @ proj_lyra)[V]");
  Show(&session, "the department's workstudy roster for fall2026",
       "SELECT M WHERE cs_dept.(workstudy @ fall2026)[M]");
  Show(&session, "workstudy members with pay over 1000 and a grade over 80",
       "SELECT X FROM Workstudy X WHERE "
       "X.PayRecords.Pay.Value some> 1000 "
       "and X.GradeRecords.Grade.Value some> 80");
  Show(&session, "everyone the schema allows to earn on a project",
       "SELECT X FROM Person X WHERE earns applicableTo X");
  // Typing: the same method name types differently per argument class.
  auto report = session.Explain(
      "SELECT W FROM Workstudy X, Project P WHERE X.(earns @ P)[W]");
  if (report.ok()) std::printf("%s\n", report->c_str());
  return 0;
}
