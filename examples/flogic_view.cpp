// Theorem 3.1 made visible: print the F-logic translation P(q) for the
// paper's example queries, then model-check it and compare with the
// XSQL evaluator.
//
//   $ ./flogic_view
#include <cstdio>

#include "eval/session.h"
#include "flogic/flogic_eval.h"
#include "flogic/translate.h"
#include "parser/parser.h"
#include "workload/fig1_schema.h"
#include "workload/generator.h"

int main() {
  xsql::Database db;
  if (!xsql::workload::BuildFig1Schema(&db).ok()) return 1;
  xsql::workload::WorkloadParams params;
  params.companies = 1;
  params.divisions_per_company = 1;
  params.employees_per_division = 2;
  params.extra_persons = 2;
  params.automobiles = 2;
  if (!xsql::workload::GenerateFig1Data(&db, params).ok()) return 1;
  xsql::Session session(&db);

  const char* queries[] = {
      "SELECT C WHERE mary123.Residence.City[C]",
      "SELECT Y FROM Person X WHERE X.Residence[Y].City['newyork']",
      "SELECT X FROM Employee X WHERE X.FamMembers.Age some> 20",
      "SELECT $X WHERE TurboEngine subclassOf $X",
      "SELECT \"Y FROM Person X WHERE X.\"Y.City['newyork']",
  };
  for (const char* text : queries) {
    std::printf("XSQL   : %s\n", text);
    auto stmt = xsql::ParseAndResolve(text, db);
    if (!stmt.ok()) continue;
    auto translated = xsql::flogic::TranslateToFLogic(*stmt->query->simple);
    if (!translated.ok()) {
      std::printf("P(q)   : %s\n\n", translated.status().ToString().c_str());
      continue;
    }
    std::printf("P(q)   : %s\n", translated->ToString().c_str());
    auto via_flogic = xsql::flogic::EvaluateFLogic(*translated, &db);
    auto via_xsql = session.Query(text);
    if (via_flogic.ok() && via_xsql.ok()) {
      std::printf("answers: %zu via F-logic, %zu via XSQL — %s\n\n",
                  via_flogic->size(), via_xsql->size(),
                  via_flogic->rows().size() == via_xsql->rows().size()
                      ? "agree (Theorem 3.1)"
                      : "DISAGREE");
    }
  }
  return 0;
}
