file(REMOVE_RECURSE
  "CMakeFiles/bench_typing_cost.dir/bench_typing_cost.cc.o"
  "CMakeFiles/bench_typing_cost.dir/bench_typing_cost.cc.o.d"
  "bench_typing_cost"
  "bench_typing_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_typing_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
