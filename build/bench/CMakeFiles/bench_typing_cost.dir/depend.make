# Empty dependencies file for bench_typing_cost.
# This may be replaced when dependencies are built.
