# Empty compiler generated dependencies file for bench_evaluator_ablation.
# This may be replaced when dependencies are built.
