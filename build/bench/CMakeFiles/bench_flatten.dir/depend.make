# Empty dependencies file for bench_flatten.
# This may be replaced when dependencies are built.
