file(REMOVE_RECURSE
  "CMakeFiles/bench_flatten.dir/bench_flatten.cc.o"
  "CMakeFiles/bench_flatten.dir/bench_flatten.cc.o.d"
  "bench_flatten"
  "bench_flatten.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_flatten.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
