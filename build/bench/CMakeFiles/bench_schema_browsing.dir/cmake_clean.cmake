file(REMOVE_RECURSE
  "CMakeFiles/bench_schema_browsing.dir/bench_schema_browsing.cc.o"
  "CMakeFiles/bench_schema_browsing.dir/bench_schema_browsing.cc.o.d"
  "bench_schema_browsing"
  "bench_schema_browsing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_schema_browsing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
