# Empty dependencies file for bench_schema_browsing.
# This may be replaced when dependencies are built.
