file(REMOVE_RECURSE
  "CMakeFiles/bench_typing_optimization.dir/bench_typing_optimization.cc.o"
  "CMakeFiles/bench_typing_optimization.dir/bench_typing_optimization.cc.o.d"
  "bench_typing_optimization"
  "bench_typing_optimization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_typing_optimization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
