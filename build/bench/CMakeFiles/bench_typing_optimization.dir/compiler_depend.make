# Empty compiler generated dependencies file for bench_typing_optimization.
# This may be replaced when dependencies are built.
