# Empty compiler generated dependencies file for bench_views.
# This may be replaced when dependencies are built.
