file(REMOVE_RECURSE
  "CMakeFiles/bench_views.dir/bench_views.cc.o"
  "CMakeFiles/bench_views.dir/bench_views.cc.o.d"
  "bench_views"
  "bench_views.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_views.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
