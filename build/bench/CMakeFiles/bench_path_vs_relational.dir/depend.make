# Empty dependencies file for bench_path_vs_relational.
# This may be replaced when dependencies are built.
