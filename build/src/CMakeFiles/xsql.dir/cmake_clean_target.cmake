file(REMOVE_RECURSE
  "libxsql.a"
)
