# Empty dependencies file for xsql.
# This may be replaced when dependencies are built.
