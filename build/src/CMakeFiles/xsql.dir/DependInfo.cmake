
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ast/ast.cc" "src/CMakeFiles/xsql.dir/ast/ast.cc.o" "gcc" "src/CMakeFiles/xsql.dir/ast/ast.cc.o.d"
  "/root/repo/src/ast/printer.cc" "src/CMakeFiles/xsql.dir/ast/printer.cc.o" "gcc" "src/CMakeFiles/xsql.dir/ast/printer.cc.o.d"
  "/root/repo/src/baseline/gem_path.cc" "src/CMakeFiles/xsql.dir/baseline/gem_path.cc.o" "gcc" "src/CMakeFiles/xsql.dir/baseline/gem_path.cc.o.d"
  "/root/repo/src/baseline/relational.cc" "src/CMakeFiles/xsql.dir/baseline/relational.cc.o" "gcc" "src/CMakeFiles/xsql.dir/baseline/relational.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/xsql.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/xsql.dir/common/rng.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/xsql.dir/common/status.cc.o" "gcc" "src/CMakeFiles/xsql.dir/common/status.cc.o.d"
  "/root/repo/src/common/str_util.cc" "src/CMakeFiles/xsql.dir/common/str_util.cc.o" "gcc" "src/CMakeFiles/xsql.dir/common/str_util.cc.o.d"
  "/root/repo/src/eval/aggregate.cc" "src/CMakeFiles/xsql.dir/eval/aggregate.cc.o" "gcc" "src/CMakeFiles/xsql.dir/eval/aggregate.cc.o.d"
  "/root/repo/src/eval/binding.cc" "src/CMakeFiles/xsql.dir/eval/binding.cc.o" "gcc" "src/CMakeFiles/xsql.dir/eval/binding.cc.o.d"
  "/root/repo/src/eval/comparator.cc" "src/CMakeFiles/xsql.dir/eval/comparator.cc.o" "gcc" "src/CMakeFiles/xsql.dir/eval/comparator.cc.o.d"
  "/root/repo/src/eval/evaluator.cc" "src/CMakeFiles/xsql.dir/eval/evaluator.cc.o" "gcc" "src/CMakeFiles/xsql.dir/eval/evaluator.cc.o.d"
  "/root/repo/src/eval/introspect.cc" "src/CMakeFiles/xsql.dir/eval/introspect.cc.o" "gcc" "src/CMakeFiles/xsql.dir/eval/introspect.cc.o.d"
  "/root/repo/src/eval/oid_function.cc" "src/CMakeFiles/xsql.dir/eval/oid_function.cc.o" "gcc" "src/CMakeFiles/xsql.dir/eval/oid_function.cc.o.d"
  "/root/repo/src/eval/path_eval.cc" "src/CMakeFiles/xsql.dir/eval/path_eval.cc.o" "gcc" "src/CMakeFiles/xsql.dir/eval/path_eval.cc.o.d"
  "/root/repo/src/eval/relation.cc" "src/CMakeFiles/xsql.dir/eval/relation.cc.o" "gcc" "src/CMakeFiles/xsql.dir/eval/relation.cc.o.d"
  "/root/repo/src/eval/session.cc" "src/CMakeFiles/xsql.dir/eval/session.cc.o" "gcc" "src/CMakeFiles/xsql.dir/eval/session.cc.o.d"
  "/root/repo/src/eval/update.cc" "src/CMakeFiles/xsql.dir/eval/update.cc.o" "gcc" "src/CMakeFiles/xsql.dir/eval/update.cc.o.d"
  "/root/repo/src/eval/view.cc" "src/CMakeFiles/xsql.dir/eval/view.cc.o" "gcc" "src/CMakeFiles/xsql.dir/eval/view.cc.o.d"
  "/root/repo/src/flogic/flogic_eval.cc" "src/CMakeFiles/xsql.dir/flogic/flogic_eval.cc.o" "gcc" "src/CMakeFiles/xsql.dir/flogic/flogic_eval.cc.o.d"
  "/root/repo/src/flogic/formula.cc" "src/CMakeFiles/xsql.dir/flogic/formula.cc.o" "gcc" "src/CMakeFiles/xsql.dir/flogic/formula.cc.o.d"
  "/root/repo/src/flogic/translate.cc" "src/CMakeFiles/xsql.dir/flogic/translate.cc.o" "gcc" "src/CMakeFiles/xsql.dir/flogic/translate.cc.o.d"
  "/root/repo/src/oid/oid.cc" "src/CMakeFiles/xsql.dir/oid/oid.cc.o" "gcc" "src/CMakeFiles/xsql.dir/oid/oid.cc.o.d"
  "/root/repo/src/parser/lexer.cc" "src/CMakeFiles/xsql.dir/parser/lexer.cc.o" "gcc" "src/CMakeFiles/xsql.dir/parser/lexer.cc.o.d"
  "/root/repo/src/parser/parser.cc" "src/CMakeFiles/xsql.dir/parser/parser.cc.o" "gcc" "src/CMakeFiles/xsql.dir/parser/parser.cc.o.d"
  "/root/repo/src/storage/snapshot.cc" "src/CMakeFiles/xsql.dir/storage/snapshot.cc.o" "gcc" "src/CMakeFiles/xsql.dir/storage/snapshot.cc.o.d"
  "/root/repo/src/store/catalog.cc" "src/CMakeFiles/xsql.dir/store/catalog.cc.o" "gcc" "src/CMakeFiles/xsql.dir/store/catalog.cc.o.d"
  "/root/repo/src/store/class_graph.cc" "src/CMakeFiles/xsql.dir/store/class_graph.cc.o" "gcc" "src/CMakeFiles/xsql.dir/store/class_graph.cc.o.d"
  "/root/repo/src/store/database.cc" "src/CMakeFiles/xsql.dir/store/database.cc.o" "gcc" "src/CMakeFiles/xsql.dir/store/database.cc.o.d"
  "/root/repo/src/store/index.cc" "src/CMakeFiles/xsql.dir/store/index.cc.o" "gcc" "src/CMakeFiles/xsql.dir/store/index.cc.o.d"
  "/root/repo/src/store/method.cc" "src/CMakeFiles/xsql.dir/store/method.cc.o" "gcc" "src/CMakeFiles/xsql.dir/store/method.cc.o.d"
  "/root/repo/src/store/object.cc" "src/CMakeFiles/xsql.dir/store/object.cc.o" "gcc" "src/CMakeFiles/xsql.dir/store/object.cc.o.d"
  "/root/repo/src/store/signature.cc" "src/CMakeFiles/xsql.dir/store/signature.cc.o" "gcc" "src/CMakeFiles/xsql.dir/store/signature.cc.o.d"
  "/root/repo/src/typing/plan.cc" "src/CMakeFiles/xsql.dir/typing/plan.cc.o" "gcc" "src/CMakeFiles/xsql.dir/typing/plan.cc.o.d"
  "/root/repo/src/typing/range.cc" "src/CMakeFiles/xsql.dir/typing/range.cc.o" "gcc" "src/CMakeFiles/xsql.dir/typing/range.cc.o.d"
  "/root/repo/src/typing/type_checker.cc" "src/CMakeFiles/xsql.dir/typing/type_checker.cc.o" "gcc" "src/CMakeFiles/xsql.dir/typing/type_checker.cc.o.d"
  "/root/repo/src/typing/type_expr.cc" "src/CMakeFiles/xsql.dir/typing/type_expr.cc.o" "gcc" "src/CMakeFiles/xsql.dir/typing/type_expr.cc.o.d"
  "/root/repo/src/workload/fig1_schema.cc" "src/CMakeFiles/xsql.dir/workload/fig1_schema.cc.o" "gcc" "src/CMakeFiles/xsql.dir/workload/fig1_schema.cc.o.d"
  "/root/repo/src/workload/generator.cc" "src/CMakeFiles/xsql.dir/workload/generator.cc.o" "gcc" "src/CMakeFiles/xsql.dir/workload/generator.cc.o.d"
  "/root/repo/src/workload/university.cc" "src/CMakeFiles/xsql.dir/workload/university.cc.o" "gcc" "src/CMakeFiles/xsql.dir/workload/university.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
