# Empty compiler generated dependencies file for applicable_test.
# This may be replaced when dependencies are built.
