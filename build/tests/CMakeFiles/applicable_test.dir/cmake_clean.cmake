file(REMOVE_RECURSE
  "CMakeFiles/applicable_test.dir/applicable_test.cc.o"
  "CMakeFiles/applicable_test.dir/applicable_test.cc.o.d"
  "applicable_test"
  "applicable_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/applicable_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
