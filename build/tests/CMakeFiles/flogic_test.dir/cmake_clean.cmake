file(REMOVE_RECURSE
  "CMakeFiles/flogic_test.dir/flogic_test.cc.o"
  "CMakeFiles/flogic_test.dir/flogic_test.cc.o.d"
  "flogic_test"
  "flogic_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flogic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
