# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_schema_browser "/root/repo/build/examples/schema_browser")
set_tests_properties(example_schema_browser PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_company_views "/root/repo/build/examples/company_views")
set_tests_properties(example_company_views PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_nobel_typing "/root/repo/build/examples/nobel_typing")
set_tests_properties(example_nobel_typing PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_university "/root/repo/build/examples/university")
set_tests_properties(example_university PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_flogic_view "/root/repo/build/examples/flogic_view")
set_tests_properties(example_flogic_view PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
