# Empty compiler generated dependencies file for xsql_shell.
# This may be replaced when dependencies are built.
