file(REMOVE_RECURSE
  "CMakeFiles/xsql_shell.dir/xsql_shell.cpp.o"
  "CMakeFiles/xsql_shell.dir/xsql_shell.cpp.o.d"
  "xsql_shell"
  "xsql_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xsql_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
