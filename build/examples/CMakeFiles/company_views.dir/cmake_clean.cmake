file(REMOVE_RECURSE
  "CMakeFiles/company_views.dir/company_views.cpp.o"
  "CMakeFiles/company_views.dir/company_views.cpp.o.d"
  "company_views"
  "company_views.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/company_views.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
