file(REMOVE_RECURSE
  "CMakeFiles/schema_browser.dir/schema_browser.cpp.o"
  "CMakeFiles/schema_browser.dir/schema_browser.cpp.o.d"
  "schema_browser"
  "schema_browser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schema_browser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
