# Empty dependencies file for schema_browser.
# This may be replaced when dependencies are built.
