file(REMOVE_RECURSE
  "CMakeFiles/flogic_view.dir/flogic_view.cpp.o"
  "CMakeFiles/flogic_view.dir/flogic_view.cpp.o.d"
  "flogic_view"
  "flogic_view.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flogic_view.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
