# Empty dependencies file for flogic_view.
# This may be replaced when dependencies are built.
