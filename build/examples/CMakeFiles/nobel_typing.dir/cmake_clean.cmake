file(REMOVE_RECURSE
  "CMakeFiles/nobel_typing.dir/nobel_typing.cpp.o"
  "CMakeFiles/nobel_typing.dir/nobel_typing.cpp.o.d"
  "nobel_typing"
  "nobel_typing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nobel_typing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
