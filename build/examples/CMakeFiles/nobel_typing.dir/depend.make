# Empty dependencies file for nobel_typing.
# This may be replaced when dependencies are built.
