// Failure injection and edge cases: cyclic object graphs, method
// recursion limits, malformed statements, unknown names, Status/Result
// plumbing, and referential integrity of the generated workloads.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/str_util.h"
#include "eval/session.h"
#include "workload/fig1_schema.h"
#include "workload/generator.h"

namespace xsql {
namespace {

Oid A(const char* s) { return Oid::Atom(s); }

TEST(StatusTest, CodesAndToString) {
  EXPECT_TRUE(Status::OK().ok());
  EXPECT_EQ(Status::OK().ToString(), "OK");
  Status bad = Status::TypeError("boom");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.code(), StatusCode::kTypeError);
  EXPECT_EQ(bad.ToString(), "TypeError: boom");
  EXPECT_EQ(Status::NotFound("x").ToString(), "NotFound: x");
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::RuntimeError("x").code(), StatusCode::kRuntimeError);
  EXPECT_EQ(Status::InvalidArgument("x").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
}

TEST(ResultTest, ValueAndError) {
  Result<int> ok(7);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 7);
  Result<int> err(Status::NotFound("nope"));
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kNotFound);
  Result<std::string> moved(std::string("abc"));
  std::string taken = std::move(moved).value();
  EXPECT_EQ(taken, "abc");
}

TEST(StrUtilTest, Helpers) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_TRUE(EqualsIgnoreCase("SeLeCt", "select"));
  EXPECT_FALSE(EqualsIgnoreCase("selects", "select"));
  EXPECT_EQ(AsciiToLower("AbC1"), "abc1");
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("fo", "foo"));
}

TEST(RngTest, DeterministicAndBounded) {
  Rng a(42), b(42), c(43);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(Rng(42).Next(), c.Next());
  for (int i = 0; i < 100; ++i) {
    uint64_t v = a.Uniform(10);
    EXPECT_LT(v, 10u);
    int64_t r = a.Range(-5, 5);
    EXPECT_GE(r, -5);
    EXPECT_LE(r, 5);
  }
  EXPECT_EQ(a.Uniform(0), 0u);
}

class RobustnessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(workload::BuildFig1Schema(&db_).ok());
    session_ = std::make_unique<Session>(&db_);
  }

  Database db_;
  std::unique_ptr<Session> session_;
};

// Cyclic composition: two persons who are each other's family. Fixed-
// length paths terminate; path variables respect the depth cap.
TEST_F(RobustnessTest, CyclicObjectGraph) {
  ASSERT_TRUE(db_.NewObject(A("a"), {A("Person")}).ok());
  ASSERT_TRUE(db_.NewObject(A("b"), {A("Person")}).ok());
  ASSERT_TRUE(db_.AddToSet(A("a"), A("FamMembers"), A("b")).ok());
  ASSERT_TRUE(db_.AddToSet(A("b"), A("FamMembers"), A("a")).ok());
  ASSERT_TRUE(db_.SetScalar(A("a"), A("Name"), Oid::String("a")).ok());
  auto rel = session_->Query(
      "SELECT X FROM Person X "
      "WHERE X.FamMembers.FamMembers.FamMembers.FamMembers[X]");
  ASSERT_TRUE(rel.ok()) << rel.status().ToString();
  EXPECT_EQ(rel->size(), 2u);  // both cycle members, via the 4-step loop
  auto star = session_->Query(
      "SELECT X FROM Person X WHERE X.*P.Name['a']");
  ASSERT_TRUE(star.ok()) << star.status().ToString();
  EXPECT_FALSE(star->empty());  // terminated despite the cycle
}

// A recursive query-defined method hits the depth guard instead of
// looping forever.
TEST_F(RobustnessTest, MethodRecursionLimit) {
  ASSERT_TRUE(db_.NewObject(A("c"), {A("Company")}).ok());
  ASSERT_TRUE(session_->Execute(
      "ALTER CLASS Company ADD SIGNATURE Loop => Numeral "
      "SELECT (Loop) = W FROM Company X OID X WHERE X.Loop[W]").ok());
  auto rel = session_->Query("SELECT W WHERE c.Loop[W]");
  ASSERT_FALSE(rel.ok());
  EXPECT_EQ(rel.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(rel.status().message().find("recursion"), std::string::npos);
}

TEST_F(RobustnessTest, UnknownClassInFromYieldsEmpty) {
  // FROM over an undeclared class: no extent, no answers, no crash.
  auto rel = session_->Query("SELECT X FROM Martian X WHERE X.Name");
  ASSERT_TRUE(rel.ok());
  EXPECT_TRUE(rel->empty());
}

TEST_F(RobustnessTest, MalformedStatementsAreParseErrors) {
  for (const char* bad :
       {"", "SELECT", "SELEC X", "SELECT X FROM", "SELECT X WHERE and",
        "UPDATE CLASS", "CREATE VIEW V", "ALTER CLASS X ADD",
        "SELECT X FROM Person X WHERE X..Name",
        "SELECT X FROM Person X WHERE X.Name['unterminated]"}) {
    auto out = session_->Execute(bad);
    EXPECT_FALSE(out.ok()) << "accepted: " << bad;
  }
}

TEST_F(RobustnessTest, EmptyDatabaseQueries) {
  auto rel = session_->Query("SELECT X FROM Person X");
  ASSERT_TRUE(rel.ok());
  EXPECT_TRUE(rel->empty());
  auto schema = session_->Query("SELECT $X WHERE Employee subclassOf $X");
  ASSERT_TRUE(schema.ok());
  EXPECT_FALSE(schema->empty());  // schema queries work without data
}

TEST_F(RobustnessTest, SelfReferentialAttribute) {
  ASSERT_TRUE(db_.NewObject(A("narc"), {A("Person")}).ok());
  ASSERT_TRUE(db_.AddToSet(A("narc"), A("FamMembers"), A("narc")).ok());
  auto rel = session_->Query(
      "SELECT X FROM Person X WHERE X.FamMembers[X]");
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(rel->size(), 1u);
}

TEST_F(RobustnessTest, MultipleInheritanceConflictSurfacesAtQueryTime) {
  ASSERT_TRUE(db_.DeclareClass(A("Student"), {A("Person")}).ok());
  ASSERT_TRUE(
      db_.DeclareClass(A("Workstudy"), {A("Student"), A("Employee")}).ok());
  auto id_body = [](const char* value) {
    return std::make_shared<NativeMethodBody>(
        0, false,
        [value](Database&, const Oid&, const std::vector<Oid>&)
            -> Result<OidSet> {
          OidSet s;
          s.Insert(Oid::String(value));
          return s;
        });
  };
  ASSERT_TRUE(db_.DefineMethod(A("Student"), A("id"), 0, id_body("s")).ok());
  ASSERT_TRUE(db_.DefineMethod(A("Employee"), A("id"), 0, id_body("e")).ok());
  ASSERT_TRUE(db_.NewObject(A("w"), {A("Workstudy")}).ok());
  auto conflicted = session_->Query("SELECT V WHERE w.id[V]");
  ASSERT_FALSE(conflicted.ok());
  EXPECT_EQ(conflicted.status().code(), StatusCode::kRuntimeError);
  // Explicit resolution [MEY88] repairs it.
  ASSERT_TRUE(db_.ResolveMethodConflict(A("Workstudy"), A("id"),
                                        A("Student")).ok());
  auto resolved = session_->Query("SELECT V WHERE w.id[V]");
  ASSERT_TRUE(resolved.ok()) << resolved.status().ToString();
  ASSERT_EQ(resolved->size(), 1u);
  EXPECT_EQ(resolved->rows()[0][0], Oid::String("s"));
}

TEST_F(RobustnessTest, NativeMethodErrorsPropagate) {
  ASSERT_TRUE(db_.DefineMethod(
      A("Person"), A("boom"), 0,
      std::make_shared<NativeMethodBody>(
          0, false,
          [](Database&, const Oid&, const std::vector<Oid>&)
              -> Result<OidSet> {
            return Status::RuntimeError("kaboom");
          })).ok());
  ASSERT_TRUE(db_.NewObject(A("p"), {A("Person")}).ok());
  auto rel = session_->Query("SELECT V WHERE p.boom[V]");
  ASSERT_FALSE(rel.ok());
  EXPECT_NE(rel.status().message().find("kaboom"), std::string::npos);
}

TEST_F(RobustnessTest, DivisionByZeroIsARuntimeError) {
  ASSERT_TRUE(db_.NewObject(A("p"), {A("Person")}).ok());
  ASSERT_TRUE(db_.SetScalar(A("p"), A("Age"), Oid::Int(30)).ok());
  auto rel = session_->Query(
      "SELECT X FROM Person X WHERE X.Age / 0 > 1");
  ASSERT_FALSE(rel.ok());
  EXPECT_EQ(rel.status().code(), StatusCode::kRuntimeError);
}

// Re-running an OID FUNCTION query is deterministic: the same tuples
// map to the same id-terms (the id-function is a function).
TEST_F(RobustnessTest, OidFunctionDeterminism) {
  workload::WorkloadParams params;
  params.companies = 2;
  ASSERT_TRUE(workload::GenerateFig1Data(&db_, params).ok());
  const char* view =
      "CREATE VIEW Sal AS SUBCLASS OF Object "
      "SIGNATURE S => Numeral "
      "SELECT S = W.Salary FROM Company X OID FUNCTION OF X,W "
      "WHERE X.Divisions.Employees[W]";
  ASSERT_TRUE(session_->Execute(view).ok());
  ASSERT_TRUE(session_->views().Materialize("Sal").ok());
  OidSet first = db_.Extent(A("Sal"));
  ASSERT_TRUE(session_->views().Materialize("Sal").ok());
  OidSet second = db_.Extent(A("Sal"));
  EXPECT_EQ(first, second);
}

// Fuzz the parser: random token soups must come back as Status errors
// (or parse), never crash or hang.
TEST_F(RobustnessTest, ParserSurvivesTokenSoup) {
  static const char* kFragments[] = {
      "SELECT", "FROM",  "WHERE", "X",    ".",  "[",     "]",  "(",
      ")",      "{",     "}",     "@",    "=",  "<",     ">",  "and",
      "or",     "not",   "some",  "all",  "$C", "\"M",   "?V", "'s'",
      "42",     "3.5",   ",",     "OID",  "*",  "+",     "/",  "Person",
      "Name",   "UNION", "nil",   "count", "subclassOf", ":",  "=>",
  };
  Rng rng(2026);
  for (int trial = 0; trial < 500; ++trial) {
    std::string soup;
    size_t len = 1 + rng.Uniform(14);
    for (size_t i = 0; i < len; ++i) {
      soup += kFragments[rng.Uniform(std::size(kFragments))];
      soup += ' ';
    }
    auto out = session_->Execute(soup);
    // Either outcome is fine; crashing/hanging is not.
    (void)out;
  }
  SUCCEED();
}

// Fuzz the lexer with raw bytes.
TEST_F(RobustnessTest, LexerSurvivesRawBytes) {
  Rng rng(777);
  for (int trial = 0; trial < 300; ++trial) {
    std::string raw;
    size_t len = rng.Uniform(40);
    for (size_t i = 0; i < len; ++i) {
      raw += static_cast<char>(32 + rng.Uniform(95));  // printable ASCII
    }
    auto out = session_->Execute(raw);
    (void)out;
  }
  SUCCEED();
}

// Referential integrity of generated data: every attribute value whose
// signature declares a class type is an instance of that class.
class GeneratorIntegrityTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GeneratorIntegrityTest, ValuesMatchDeclaredTypes) {
  Database db;
  ASSERT_TRUE(workload::BuildFig1Schema(&db).ok());
  workload::WorkloadParams params;
  params.seed = GetParam();
  auto stats = workload::GenerateFig1Data(&db, params);
  ASSERT_TRUE(stats.ok());
  size_t checked = 0;
  db.ForEachObject([&](const Oid& oid, const Object& object) {
    for (const auto& [attr, value] : object.attrs()) {
      // Find a declared signature for this attribute on a class of oid.
      for (const auto& [cls, sig] : db.signatures().AllFor(attr)) {
        if (sig.args.empty() && db.IsInstanceOf(oid, cls)) {
          for (const Oid& v : value.AsSet()) {
            EXPECT_TRUE(db.IsInstanceOf(v, sig.result))
                << oid.ToString() << "." << attr.ToString() << " = "
                << v.ToString() << " is not a " << sig.result.ToString();
            ++checked;
          }
        }
      }
    }
  });
  EXPECT_GT(checked, 100u);  // the sweep actually checked something
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorIntegrityTest,
                         ::testing::Values(1, 17, 42, 99));

}  // namespace
}  // namespace xsql
