// [BERT89]-style path indexes: correctness against forward evaluation,
// inheritance-awareness, staleness, and the evaluator's reverse-lookup
// integration.
#include <gtest/gtest.h>

#include "eval/session.h"
#include "parser/parser.h"
#include "store/index.h"
#include "workload/fig1_schema.h"
#include "workload/generator.h"

namespace xsql {
namespace {

Oid A(const char* s) { return Oid::Atom(s); }

class IndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(workload::BuildFig1Schema(&db_).ok());
    workload::WorkloadParams params;
    ASSERT_TRUE(workload::GenerateFig1Data(&db_, params).ok());
    session_ = std::make_unique<Session>(&db_);
  }

  Database db_;
  std::unique_ptr<Session> session_;
};

TEST_F(IndexTest, AttributeIndexMatchesScan) {
  PathIndex index(A("Person"), {A("Name")});
  ASSERT_TRUE(index.Build(db_).ok());
  EXPECT_GT(index.distinct_values(), 0u);
  // Every person is found under their name; nothing else is.
  for (const Oid& person : db_.Extent(A("Person"))) {
    const AttrValue* name = db_.GetAttribute(person, A("Name"));
    if (name == nullptr) continue;
    EXPECT_TRUE(index.Lookup(name->scalar()).Contains(person))
        << person.ToString();
  }
  EXPECT_TRUE(index.Lookup(Oid::String("no such name")).empty());
}

TEST_F(IndexTest, PathIndexMatchesQuery) {
  PathIndex index(A("Person"), {A("Residence"), A("City")});
  ASSERT_TRUE(index.Build(db_).ok());
  auto rel = session_->Query(
      "SELECT X FROM Person X WHERE X.Residence.City['newyork']");
  ASSERT_TRUE(rel.ok());
  OidSet expected;
  for (const auto& row : rel->rows()) expected.Insert(row[0]);
  EXPECT_EQ(index.Lookup(Oid::String("newyork")), expected);
}

TEST_F(IndexTest, IndexSeesInheritedDefaults) {
  // A default value on the class-object must be indexed for instances
  // that do not override it (§2 behavioral inheritance of defaults).
  ASSERT_TRUE(db_.SetScalar(A("Person"), A("Planet"),
                            Oid::String("earth")).ok());
  ASSERT_TRUE(db_.NewObject(A("visitor"), {A("Person")}).ok());
  PathIndex index(A("Person"), {A("Planet")});
  ASSERT_TRUE(index.Build(db_).ok());
  EXPECT_TRUE(index.Lookup(Oid::String("earth")).Contains(A("visitor")));
}

TEST_F(IndexTest, StalenessDetected) {
  PathIndexSet indexes;
  ASSERT_TRUE(indexes.Add(db_, A("Person"), {A("Name")}).ok());
  ASSERT_NE(indexes.Find(db_, A("Person"), {A("Name")}), nullptr);
  // Any mutation makes the snapshot stale; Find refuses to serve it.
  ASSERT_TRUE(db_.SetScalar(A("mary123"), A("Name"),
                            Oid::String("maria")).ok());
  EXPECT_EQ(indexes.Find(db_, A("Person"), {A("Name")}), nullptr);
  ASSERT_TRUE(indexes.Refresh(db_).ok());
  const PathIndex* fresh = indexes.Find(db_, A("Person"), {A("Name")});
  ASSERT_NE(fresh, nullptr);
  EXPECT_TRUE(fresh->Lookup(Oid::String("maria")).Contains(A("mary123")));
}

TEST_F(IndexTest, EvaluatorUsesIndexAndAgreesWithScan) {
  PathIndexSet indexes;
  ASSERT_TRUE(indexes.Add(db_, A("Person"), {A("Residence"), A("City")}).ok());
  auto stmt = ParseAndResolve(
      "SELECT X FROM Person X WHERE X.Residence.City['newyork']", db_);
  ASSERT_TRUE(stmt.ok());
  const Query& q = *stmt->query->simple;
  Evaluator evaluator(&db_);
  EvalOptions with_index;
  with_index.indexes = &indexes;
  auto indexed = evaluator.Run(q, with_index);
  ASSERT_TRUE(indexed.ok()) << indexed.status().ToString();
  auto scanned = evaluator.Run(q, EvalOptions{});
  ASSERT_TRUE(scanned.ok());
  EXPECT_EQ(indexed->relation.rows(), scanned->relation.rows());
  EXPECT_FALSE(indexed->relation.empty());
}

TEST_F(IndexTest, StaleIndexIsIgnoredNotWrong) {
  PathIndexSet indexes;
  ASSERT_TRUE(indexes.Add(db_, A("Person"), {A("Residence"), A("City")}).ok());
  // Move someone to New York *after* building; the stale index must not
  // be consulted, so the new resident still shows up.
  ASSERT_TRUE(db_.NewObject(A("addr_new"), {A("Address")}).ok());
  ASSERT_TRUE(db_.SetScalar(A("addr_new"), A("City"),
                            Oid::String("newyork")).ok());
  ASSERT_TRUE(db_.NewObject(A("mover"), {A("Person")}).ok());
  ASSERT_TRUE(db_.SetScalar(A("mover"), A("Residence"), A("addr_new")).ok());
  auto stmt = ParseAndResolve(
      "SELECT X FROM Person X WHERE X.Residence.City['newyork']", db_);
  ASSERT_TRUE(stmt.ok());
  Evaluator evaluator(&db_);
  EvalOptions opts;
  opts.indexes = &indexes;
  auto out = evaluator.Run(*stmt->query->simple, opts);
  ASSERT_TRUE(out.ok());
  OidSet heads;
  for (const auto& row : out->relation.rows()) heads.Insert(row[0]);
  EXPECT_TRUE(heads.Contains(A("mover")));
}

TEST_F(IndexTest, NonMatchingShapesFallBack) {
  PathIndexSet indexes;
  ASSERT_TRUE(indexes.Add(db_, A("Person"), {A("Residence"), A("City")}).ok());
  Evaluator evaluator(&db_);
  EvalOptions opts;
  opts.indexes = &indexes;
  // Intermediate selector: not the indexed shape — must still be right.
  auto stmt = ParseAndResolve(
      "SELECT X, Y FROM Person X WHERE X.Residence[Y].City['newyork']",
      db_);
  ASSERT_TRUE(stmt.ok());
  auto out = evaluator.Run(*stmt->query->simple, opts);
  ASSERT_TRUE(out.ok());
  auto reference = evaluator.Run(*stmt->query->simple, EvalOptions{});
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(out->relation.rows(), reference->relation.rows());
}

TEST_F(IndexTest, SetValuedHopsAreIndexed) {
  PathIndexSet indexes;
  ASSERT_TRUE(indexes
                  .Add(db_, A("Company"),
                       {A("Divisions"), A("Employees"), A("Salary")})
                  .ok());
  const PathIndex* index = indexes.Find(
      db_, A("Company"), {A("Divisions"), A("Employees"), A("Salary")});
  ASSERT_NE(index, nullptr);
  // Every (salary -> company) entry is witnessed by some employee.
  EXPECT_GT(index->entries(), 0u);
  auto rel = session_->Query(
      "SELECT X.Name, W.Salary FROM Company X "
      "WHERE X.Divisions.Employees[W]");
  ASSERT_TRUE(rel.ok());
}

TEST_F(IndexTest, RejectsEmptyPath) {
  PathIndexSet indexes;
  EXPECT_FALSE(indexes.Add(db_, A("Person"), {}).ok());
}

TEST(IndexVersionZeroTest, IndexBuiltAtVersionZeroIsServed) {
  // Regression: built() used to be inferred from `built_at_ != 0`, so
  // an index built against a database that had never been mutated
  // through the version counter (version 0 — the constructor installs
  // builtins without Touch()) looked permanently unbuilt and Find()
  // refused to serve it.
  Database db;
  ASSERT_EQ(db.version(), 0u);
  PathIndexSet indexes;
  ASSERT_TRUE(indexes.Add(db, A("Class"), {A("Name")}).ok());
  // Still at version 0: nothing above went through Touch().
  ASSERT_EQ(db.version(), 0u);
  const PathIndex* index = indexes.Find(db, A("Class"), {A("Name")});
  ASSERT_NE(index, nullptr);
  EXPECT_TRUE(index->built());
  EXPECT_FALSE(index->stale(db));
  // The moment the database moves, the version-0 snapshot goes stale.
  ASSERT_TRUE(
      db.SetScalar(A("Class"), A("Name"), Oid::String("Class")).ok());
  EXPECT_GT(db.version(), 0u);
  EXPECT_EQ(indexes.Find(db, A("Class"), {A("Name")}), nullptr);
}

}  // namespace
}  // namespace xsql
