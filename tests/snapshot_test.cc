// Snapshot persistence: byte-exact oid codec, full database round
// trips, query-equivalence across save/load, and malformed-input
// rejection.
#include <gtest/gtest.h>

#include <cstdio>

#include "eval/session.h"
#include "storage/file.h"
#include "storage/snapshot.h"
#include "workload/fig1_schema.h"
#include "workload/generator.h"

namespace xsql {
namespace {

Oid A(const char* s) { return Oid::Atom(s); }

TEST(OidCodecTest, RoundTripsEveryKind) {
  const Oid cases[] = {
      Oid::Nil(),
      Oid::Bool(true),
      Oid::Bool(false),
      Oid::Int(0),
      Oid::Int(-123456789),
      Oid::Real(3.14159265358979),
      Oid::Real(-0.5),
      Oid::String(""),
      Oid::String("hello world with spaces"),
      Oid::String("punct: []{};:'\" and more"),
      Oid::Atom("mary123"),
      Oid::Term("secretary", {A("dept77")}),
      Oid::Term("f", {Oid::Int(1), Oid::Term("g", {Oid::String("x y")})}),
      Oid::Term("empty", {}),
  };
  for (const Oid& oid : cases) {
    std::string encoded;
    storage::EncodeOid(oid, &encoded);
    size_t pos = 0;
    auto decoded = storage::DecodeOid(encoded, &pos);
    ASSERT_TRUE(decoded.ok()) << oid.ToString() << " / " << encoded;
    EXPECT_EQ(*decoded, oid) << encoded;
    EXPECT_EQ(pos, encoded.size());
  }
}

TEST(OidCodecTest, RoundTripsNewlinesAndBackslashes) {
  // Regression: v1 could not represent payloads with embedded newlines
  // in its line-oriented format; v2 escapes them.
  const Oid cases[] = {
      Oid::String("line one\nline two"),
      Oid::String("trailing newline\n"),
      Oid::String("\n"),
      Oid::String("back\\slash"),
      Oid::String("mix\\n of \\ and \n literal"),
      Oid::Atom("odd\natom"),
      Oid::Term("fn\nwith newline", {Oid::String("arg\n")}),
  };
  for (const Oid& oid : cases) {
    std::string encoded;
    storage::EncodeOid(oid, &encoded);
    EXPECT_EQ(encoded.find('\n'), std::string::npos) << encoded;
    size_t pos = 0;
    auto decoded = storage::DecodeOid(encoded, &pos);
    ASSERT_TRUE(decoded.ok()) << encoded;
    EXPECT_EQ(*decoded, oid) << encoded;
    EXPECT_EQ(pos, encoded.size());
  }
}

TEST(OidCodecTest, RejectsGarbage) {
  for (const char* bad : {"", "x", "i12", "s5:ab", "t3:foo", "b", "szz:"}) {
    size_t pos = 0;
    EXPECT_FALSE(storage::DecodeOid(bad, &pos).ok()) << bad;
  }
  // Non-finite reals would break Oid's total order; the codec rejects
  // them rather than admitting a poisoned value into sorted containers.
  for (const char* bad : {"rnan;", "rinf;", "r-inf;"}) {
    size_t pos = 0;
    EXPECT_FALSE(storage::DecodeOid(bad, &pos).ok()) << bad;
  }
}

class SnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(workload::BuildFig1Schema(&db_).ok());
    workload::WorkloadParams params;
    params.companies = 2;
    ASSERT_TRUE(workload::GenerateFig1Data(&db_, params).ok());
  }

  Database db_;
};

TEST_F(SnapshotTest, FullRoundTrip) {
  std::string snapshot = storage::SaveSnapshot(db_);
  EXPECT_FALSE(snapshot.empty());
  Database restored;
  ASSERT_TRUE(storage::LoadSnapshot(snapshot, &restored).ok());
  // Same classes and IS-A facts.
  EXPECT_EQ(restored.graph().classes().size(), db_.graph().classes().size());
  for (const Oid& cls : db_.graph().classes()) {
    ASSERT_TRUE(restored.graph().IsClass(cls)) << cls.ToString();
    for (const Oid& super : db_.graph().DirectSuperclasses(cls)) {
      EXPECT_TRUE(restored.graph().IsStrictSubclass(cls, super));
    }
  }
  // Same objects, attribute for attribute.
  ASSERT_EQ(restored.object_count(), db_.object_count());
  db_.ForEachObject([&](const Oid& oid, const Object& object) {
    const Object* other = restored.GetObject(oid);
    ASSERT_NE(other, nullptr) << oid.ToString();
    EXPECT_EQ(other->ToString(), object.ToString());
  });
  // Same extents (instance-of restored).
  EXPECT_EQ(restored.Extent(A("Employee")), db_.Extent(A("Employee")));
  EXPECT_EQ(restored.Extent(A("Automobile")), db_.Extent(A("Automobile")));
  // Same signatures.
  EXPECT_EQ(
      restored.signatures().Declared(A("Employee"), A("Salary")).size(),
      db_.signatures().Declared(A("Employee"), A("Salary")).size());
}

TEST_F(SnapshotTest, NewlineInStringAttributeRoundTrips) {
  ASSERT_TRUE(db_.NewObject(A("memo1"), {A("Object")}).ok());
  ASSERT_TRUE(db_.SetScalar(A("memo1"), A("Body"),
                            Oid::String("dear all,\nmeeting at 9\n-- hr"))
                  .ok());
  std::string snapshot = storage::SaveSnapshot(db_);
  Database restored;
  ASSERT_TRUE(storage::LoadSnapshot(snapshot, &restored).ok());
  const Object* memo = restored.GetObject(A("memo1"));
  ASSERT_NE(memo, nullptr);
  const AttrValue* body = memo->Get(A("Body"));
  ASSERT_NE(body, nullptr);
  EXPECT_EQ(body->scalar(), Oid::String("dear all,\nmeeting at 9\n-- hr"));
}

TEST_F(SnapshotTest, CanonicalSnapshotIsByteStable) {
  // Two saves of the same database are byte-identical, and a restored
  // database saves to the exact same bytes (sorted emission makes the
  // unordered backing maps invisible).
  std::string first = storage::SaveSnapshot(db_);
  EXPECT_EQ(first, storage::SaveSnapshot(db_));
  Database restored;
  ASSERT_TRUE(storage::LoadSnapshot(first, &restored).ok());
  EXPECT_EQ(first, storage::SaveSnapshot(restored));
}

TEST_F(SnapshotTest, QueriesAgreeAcrossRoundTrip) {
  std::string snapshot = storage::SaveSnapshot(db_);
  Database restored;
  ASSERT_TRUE(storage::LoadSnapshot(snapshot, &restored).ok());
  Session before(&db_);
  Session after(&restored);
  const char* queries[] = {
      "SELECT Y FROM Person X WHERE X.Residence[Y].City['newyork']",
      "SELECT X.Name, W.Salary FROM Company X "
      "WHERE X.Divisions.Employees[W]",
      "SELECT $X WHERE TurboEngine subclassOf $X",
  };
  for (const char* text : queries) {
    auto a = before.Query(text);
    auto b = after.Query(text);
    ASSERT_TRUE(a.ok()) << text;
    ASSERT_TRUE(b.ok()) << text;
    EXPECT_EQ(a->rows(), b->rows()) << text;
  }
}

TEST_F(SnapshotTest, SnapshotIsStable) {
  // Saving a restored database reproduces an equivalent snapshot
  // (line multisets match; map iteration order may differ).
  std::string first = storage::SaveSnapshot(db_);
  Database restored;
  ASSERT_TRUE(storage::LoadSnapshot(first, &restored).ok());
  std::string second = storage::SaveSnapshot(restored);
  auto lines = [](const std::string& text) {
    std::multiset<std::string> out;
    size_t start = 0;
    while (start < text.size()) {
      size_t end = text.find('\n', start);
      if (end == std::string::npos) end = text.size();
      out.insert(text.substr(start, end - start));
      start = end + 1;
    }
    return out;
  };
  EXPECT_EQ(lines(first), lines(second));
}

TEST_F(SnapshotTest, FileRoundTrip) {
  std::string path = ::testing::TempDir() + "/xsql_snapshot_test.db";
  ASSERT_TRUE(storage::SaveSnapshotToFile(db_, path).ok());
  Database restored;
  ASSERT_TRUE(storage::LoadSnapshotFromFile(path, &restored).ok());
  EXPECT_EQ(restored.object_count(), db_.object_count());
  std::remove(path.c_str());
  EXPECT_FALSE(
      storage::LoadSnapshotFromFile("/no/such/file", &restored).ok());
}

TEST_F(SnapshotTest, RejectsMalformedInput) {
  Database restored;
  EXPECT_FALSE(storage::LoadSnapshot("", &restored).ok());
  EXPECT_FALSE(storage::LoadSnapshot("BOGUS HEADER\n", &restored).ok());
  EXPECT_FALSE(storage::LoadSnapshot("XSQL-SNAPSHOT 1\nNONSENSE a3:foo\n",
                                     &restored).ok());
  EXPECT_FALSE(storage::LoadSnapshot("XSQL-SNAPSHOT 1\nCLASS\n", &restored)
                   .ok());
  EXPECT_FALSE(storage::LoadSnapshot(
                   "XSQL-SNAPSHOT 1\nATTR a1:x a1:y wibble i3;\n", &restored)
                   .ok());
}

TEST(OidCodecTest, EdgePayloads) {
  // Payloads at the codec's corners: empty, nothing-but-escape-fodder,
  // and escapes mixed with the bytes they escape.
  const Oid cases[] = {
      Oid::Atom(""),
      Oid::String(std::string(7, '\\')),
      Oid::Atom(std::string(5, '\\')),
      Oid::String("\\n"),          // literal backslash-n, not a newline
      Oid::String("\\\n"),         // backslash then real newline
      Oid::String(std::string(3, '\n')),
      Oid::Term("", {Oid::String("")}),
  };
  for (const Oid& oid : cases) {
    std::string encoded;
    storage::EncodeOid(oid, &encoded);
    EXPECT_EQ(encoded.find('\n'), std::string::npos) << encoded;
    size_t pos = 0;
    auto decoded = storage::DecodeOid(encoded, &pos);
    ASSERT_TRUE(decoded.ok()) << encoded;
    EXPECT_EQ(*decoded, oid) << encoded;
    EXPECT_EQ(pos, encoded.size());
  }
}

TEST_F(SnapshotTest, MalformedInputReportsLinePositions) {
  auto expect_fail = [](const std::string& text, const std::string& needle) {
    Database fresh;
    Status st = storage::LoadSnapshot(text, &fresh);
    ASSERT_FALSE(st.ok()) << text;
    EXPECT_NE(st.ToString().find(needle), std::string::npos)
        << st.ToString() << " should mention " << needle;
  };
  // Trailing garbage after a complete record.
  expect_fail("XSQL-SNAPSHOT 2\nCLASS a6:Widget extra\n", "line 2");
  expect_fail("XSQL-SNAPSHOT 2\nCLASS a6:Widget extra\n", "trailing");
  // Truncated mid-record: ISA missing its superclass.
  expect_fail("XSQL-SNAPSHOT 2\nISA a6:Widget\n", "line 2");
  // Bad length prefixes inside an oid payload.
  expect_fail("XSQL-SNAPSHOT 2\nCLASS a99:Widget\n", "line 2");
  expect_fail("XSQL-SNAPSHOT 2\nCLASS a-1:Widget\n", "line 2");
  // Negative collection counts.
  expect_fail("XSQL-SNAPSHOT 2\nOBJ a1:x\nATTR a1:x a1:y set -2\n",
              "line 3");
  expect_fail("XSQL-SNAPSHOT 2\nSIG a1:c a1:m -1 a6:String scalar\n",
              "line 2");
  // A signature whose kind is neither set nor scalar.
  expect_fail("XSQL-SNAPSHOT 2\nSIG a1:c a1:m 0 a6:String wibble\n",
              "bad SIG kind");
}

TEST_F(SnapshotTest, TruncatedSnapshotIsRejected) {
  std::string snap = storage::SaveSnapshot(db_);
  // Cutting into the final record's payload must not load silently.
  Database restored;
  EXPECT_FALSE(
      storage::LoadSnapshot(snap.substr(0, snap.size() - 2), &restored)
          .ok());
}

TEST_F(SnapshotTest, FileErrorPathsAreDistinguished) {
  Database restored;
  // Missing file: NotFound, so callers can treat it as "fresh start".
  Status missing =
      storage::LoadSnapshotFromFile("/no/such/dir/snapshot.db", &restored);
  ASSERT_FALSE(missing.ok());
  EXPECT_NE(missing.ToString().find("NotFound"), std::string::npos)
      << missing.ToString();
  // Unreadable target (a directory): a hard error, not NotFound.
  Status dir = storage::LoadSnapshotFromFile(::testing::TempDir(),
                                             &restored);
  ASSERT_FALSE(dir.ok());
  EXPECT_EQ(dir.ToString().find("NotFound"), std::string::npos)
      << dir.ToString();
  // Corrupted file: saved bytes damaged on disk are rejected.
  std::string path = ::testing::TempDir() + "/xsql_corrupt_test.db";
  ASSERT_TRUE(storage::SaveSnapshotToFile(db_, path).ok());
  auto bytes = storage::File::ReadAll(path);
  ASSERT_TRUE(bytes.ok());
  size_t obj = bytes->find("\nOBJ ");
  ASSERT_NE(obj, std::string::npos);
  (*bytes)[obj + 1] = 'Q';  // "QBJ": an unknown record word
  ASSERT_TRUE(storage::File::WriteAtomic(path, *bytes).ok());
  EXPECT_FALSE(storage::LoadSnapshotFromFile(path, &restored).ok());
  std::remove(path.c_str());
}

TEST_F(SnapshotTest, EmptyDatabaseRoundTrips) {
  Database empty;
  std::string snapshot = storage::SaveSnapshot(empty);
  Database restored;
  ASSERT_TRUE(storage::LoadSnapshot(snapshot, &restored).ok());
  EXPECT_TRUE(restored.graph().IsClass(A("Object")));
}

}  // namespace
}  // namespace xsql
