// Execution guardrails: deadline, row/step budgets, cooperative
// cancellation, the unified recursion-depth policy, and the path-var
// length knob. Every tripped guard must report WHICH guard fired via
// the machine-checkable `(guard: <name>)` marker and the dedicated
// status codes.
#include <gtest/gtest.h>

#include <memory>
#include <thread>

#include "common/exec_context.h"
#include "eval/session.h"
#include "workload/fig1_schema.h"
#include "workload/generator.h"

namespace xsql {
namespace {

Oid A(const char* s) { return Oid::Atom(s); }

bool GuardIs(const Status& st, const char* name) {
  return st.message().find(std::string("(guard: ") + name + ")") !=
         std::string::npos;
}

TEST(GuardStatusTest, DedicatedCodesAndNames) {
  Status re = Status::ResourceExhausted("x");
  EXPECT_EQ(re.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(re.ToString(), "ResourceExhausted: x");
  Status ca = Status::Cancelled("y");
  EXPECT_EQ(ca.code(), StatusCode::kCancelled);
  EXPECT_EQ(ca.ToString(), "Cancelled: y");
}

TEST(ExecutionContextTest, StepBudgetTripsAndReportsGuard) {
  ExecLimits limits;
  limits.max_steps = 5;
  ExecutionContext ctx(limits);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(ctx.Step().ok());
  Status st = ctx.Step();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(GuardIs(st, "step-budget")) << st.ToString();
}

TEST(ExecutionContextTest, RowBudgetTripsAndReportsGuard) {
  ExecLimits limits;
  limits.max_rows = 3;
  ExecutionContext ctx(limits);
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(ctx.ChargeRow().ok());
  Status st = ctx.ChargeRow();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(GuardIs(st, "row-budget")) << st.ToString();
}

TEST(ExecutionContextTest, ExpiredDeadlineFiresOnFirstStep) {
  ExecLimits limits;
  limits.deadline_ms = 1;
  ExecutionContext ctx(limits);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  Status st = ctx.Step();  // the first step polls the clock
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(GuardIs(st, "deadline")) << st.ToString();
}

TEST(ExecutionContextTest, RecursionDepthPolicyReportsActivity) {
  ExecLimits limits;
  limits.max_recursion_depth = 2;
  ExecutionContext ctx(limits);
  ASSERT_TRUE(ctx.EnterRecursion("outer").ok());
  ASSERT_TRUE(ctx.EnterRecursion("middle").ok());
  Status st = ctx.EnterRecursion("view expansion V");
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(GuardIs(st, "recursion-depth")) << st.ToString();
  EXPECT_NE(st.message().find("view expansion V"), std::string::npos);
  ctx.LeaveRecursion();
  ctx.LeaveRecursion();
  EXPECT_EQ(ctx.recursion_depth(), 0u);
}

TEST(ExecutionContextTest, CancellationSharedAcrossThreads) {
  auto token = std::make_shared<CancelToken>();
  ExecutionContext ctx(ExecLimits{}, token);
  ASSERT_TRUE(ctx.Step().ok());
  std::thread canceller([token] { token->RequestCancel(); });
  canceller.join();
  Status st = ctx.Step();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kCancelled);
  EXPECT_TRUE(GuardIs(st, "cancellation")) << st.ToString();
}

class GuardrailTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(workload::BuildFig1Schema(&db_).ok());
    workload::WorkloadParams params;
    params.companies = 3;
    ASSERT_TRUE(workload::GenerateFig1Data(&db_, params).ok());
  }

  std::unique_ptr<Session> MakeSession(const ExecLimits& limits,
                                       std::shared_ptr<CancelToken> cancel =
                                           nullptr) {
    SessionOptions options;
    options.limits = limits;
    options.cancel = std::move(cancel);
    return std::make_unique<Session>(&db_, options);
  }

  Database db_;
};

TEST_F(GuardrailTest, RowBudgetExhaustedOnCrossProduct) {
  ExecLimits limits;
  limits.max_rows = 10;
  auto session = MakeSession(limits);
  auto rel = session->Query("SELECT X, Y FROM Person X, Person Y");
  ASSERT_FALSE(rel.ok());
  EXPECT_EQ(rel.status().code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(GuardIs(rel.status(), "row-budget"))
      << rel.status().ToString();
  // The budget applies per statement: a cheap follow-up query succeeds.
  auto cheap = session->Query("SELECT X FROM Company X WHERE X.Name");
  EXPECT_TRUE(cheap.ok()) << cheap.status().ToString();
}

TEST_F(GuardrailTest, StepBudgetExhaustedMidEvaluation) {
  ExecLimits limits;
  limits.max_steps = 50;
  auto session = MakeSession(limits);
  auto rel = session->Query(
      "SELECT X, Y FROM Person X, Person Y WHERE X.Age = Y.Age");
  ASSERT_FALSE(rel.ok());
  EXPECT_EQ(rel.status().code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(GuardIs(rel.status(), "step-budget"))
      << rel.status().ToString();
}

TEST_F(GuardrailTest, DeadlineExpiresMidPathWalk) {
  ExecLimits limits;
  limits.deadline_ms = 1;
  auto session = MakeSession(limits);
  // Three-way product over path predicates: far more than a
  // millisecond of candidate probes, so the 16-step clock poll trips.
  auto rel = session->Query(
      "SELECT X, Y, Z FROM Person X, Person Y, Person Z "
      "WHERE X.Residence.City = Y.Residence.City and "
      "Y.Residence.City = Z.Residence.City");
  ASSERT_FALSE(rel.ok());
  EXPECT_EQ(rel.status().code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(GuardIs(rel.status(), "deadline")) << rel.status().ToString();
}

TEST_F(GuardrailTest, PreCancelledStatementAborts) {
  auto token = std::make_shared<CancelToken>();
  token->RequestCancel();
  auto session = MakeSession(ExecLimits{}, token);
  auto rel = session->Query("SELECT X FROM Person X WHERE X.Name");
  ASSERT_FALSE(rel.ok());
  EXPECT_EQ(rel.status().code(), StatusCode::kCancelled);
  EXPECT_TRUE(GuardIs(rel.status(), "cancellation"))
      << rel.status().ToString();
  // Resetting the token re-enables the session.
  token->Reset();
  auto rel2 = session->Query("SELECT X FROM Person X WHERE X.Name");
  EXPECT_TRUE(rel2.ok()) << rel2.status().ToString();
}

TEST_F(GuardrailTest, CancellationFromAnotherThread) {
  auto token = std::make_shared<CancelToken>();
  auto session = MakeSession(ExecLimits{}, token);
  // A four-way cross product runs for a long time unless cancelled.
  std::thread canceller([token] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    token->RequestCancel();
  });
  auto rel = session->Query(
      "SELECT W, X, Y, Z FROM Person W, Person X, Person Y, Person Z");
  canceller.join();
  ASSERT_FALSE(rel.ok());
  EXPECT_EQ(rel.status().code(), StatusCode::kCancelled);
  EXPECT_TRUE(GuardIs(rel.status(), "cancellation"))
      << rel.status().ToString();
}

TEST_F(GuardrailTest, MethodRecursionUsesConfiguredDepth) {
  ExecLimits limits;
  limits.max_recursion_depth = 4;
  auto session = MakeSession(limits);
  ASSERT_TRUE(db_.NewObject(A("loopco"), {A("Company")}).ok());
  ASSERT_TRUE(session->Execute(
      "ALTER CLASS Company ADD SIGNATURE Loop => Numeral "
      "SELECT (Loop) = W FROM Company X OID X WHERE X.Loop[W]").ok());
  auto rel = session->Query("SELECT W WHERE loopco.Loop[W]");
  ASSERT_FALSE(rel.ok());
  EXPECT_EQ(rel.status().code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(GuardIs(rel.status(), "recursion-depth"))
      << rel.status().ToString();
  EXPECT_NE(rel.status().message().find("query method"), std::string::npos);
}

TEST_F(GuardrailTest, PathVarLengthIsAPolicyKnobNotAnError) {
  ASSERT_TRUE(db_.NewObject(A("p1"), {A("Person")}).ok());
  ASSERT_TRUE(db_.NewObject(A("p2"), {A("Person")}).ok());
  ASSERT_TRUE(db_.NewObject(A("p3"), {A("Person")}).ok());
  ASSERT_TRUE(db_.AddToSet(A("p1"), A("FamMembers"), A("p2")).ok());
  ASSERT_TRUE(db_.AddToSet(A("p2"), A("FamMembers"), A("p3")).ok());
  ASSERT_TRUE(
      db_.SetScalar(A("p3"), A("Name"), Oid::String("zfar")).ok());
  const char* query = "SELECT X FROM Person X WHERE X.*P.Name['zfar']";
  ExecLimits deep;
  deep.max_path_var_len = 3;
  auto far = MakeSession(deep)->Query(query);
  ASSERT_TRUE(far.ok()) << far.status().ToString();
  ExecLimits shallow;
  shallow.max_path_var_len = 1;
  auto near = MakeSession(shallow)->Query(query);
  ASSERT_TRUE(near.ok()) << near.status().ToString();
  // Truncation is silent — shorter horizon, fewer matches, no error.
  EXPECT_LT(near->size(), far->size());
}

TEST_F(GuardrailTest, ExplainAndTypeCheckAreNeverBudgetGated) {
  ExecLimits strangling;
  strangling.max_steps = 1;
  strangling.max_rows = 1;
  strangling.deadline_ms = 1;
  auto token = std::make_shared<CancelToken>();
  token->RequestCancel();
  auto session = MakeSession(strangling, token);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const char* query =
      "SELECT X, Y FROM Person X, Person Y WHERE X.Age = Y.Age";
  auto explain = session->Explain(query);
  EXPECT_TRUE(explain.ok()) << explain.status().ToString();
  auto typing = session->TypeCheck(query, TypingMode::kStrict);
  EXPECT_TRUE(typing.ok()) << typing.status().ToString();
}

TEST_F(GuardrailTest, TrippedBudgetLeavesNoPartialMutation) {
  ExecLimits limits;
  limits.max_steps = 5;
  auto session = MakeSession(limits);
  size_t objects_before = db_.object_count();
  // CREATE VIEW materializes eagerly; exhausting the step budget
  // mid-materialization must fail the whole statement and roll every
  // created object back (statement atomicity) — including the view's
  // catalog entry, so the name resolves as undefined afterwards.
  auto created = session->Execute(
      "CREATE VIEW CoNames AS SUBCLASS OF Object "
      "SIGNATURE TheName => String "
      "SELECT TheName = X.Name FROM Company X "
      "OID FUNCTION OF X");
  ASSERT_FALSE(created.ok());
  EXPECT_EQ(created.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(db_.object_count(), objects_before);
  EXPECT_FALSE(session->views().IsView("CoNames"));
}

}  // namespace
}  // namespace xsql
