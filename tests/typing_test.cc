// §6: type expressions, possession, ranges, and the liberal/strict/
// exemption well-typing spectrum, including the paper's worked typing
// fragments (17)-(20) and the introduction's Nobel-prize example.
#include <gtest/gtest.h>

#include "eval/session.h"
#include "parser/parser.h"
#include "typing/type_checker.h"
#include "typing/type_expr.h"
#include "workload/fig1_schema.h"

namespace xsql {
namespace {

Oid A(const char* s) { return Oid::Atom(s); }

class TypingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(workload::BuildFig1Schema(&db_).ok());
    ASSERT_TRUE(workload::BuildNobelSchema(&db_).ok());
  }

  Query MustParseQuery(const std::string& text) {
    auto stmt = ParseAndResolve(text, db_);
    EXPECT_TRUE(stmt.ok()) << stmt.status().ToString();
    return *stmt->query->simple;
  }

  Database db_;
};

TEST_F(TypingTest, SupertypeRelation) {
  // (15) is a supertype of (14) iff arguments narrow and results widen.
  TypeExpr base;  // President : Company => Person
  base.receiver = A("Company");
  base.result = A("Person");
  TypeExpr wider_result = base;
  wider_result.result = A("Object");
  EXPECT_TRUE(IsSupertypeOf(db_.graph(), wider_result, base));
  EXPECT_FALSE(IsSupertypeOf(db_.graph(), base, wider_result));
  TypeExpr owned;  // OwnedVehicles : Person =>> Vehicle
  owned.receiver = A("Person");
  owned.result = A("Vehicle");
  owned.set_valued = true;
  TypeExpr owned_on_employee = owned;
  owned_on_employee.receiver = A("Employee");
  EXPECT_TRUE(IsSupertypeOf(db_.graph(), owned_on_employee, owned));
  // Arrow kinds must agree.
  TypeExpr scalar_owned = owned_on_employee;
  scalar_owned.set_valued = false;
  EXPECT_FALSE(IsSupertypeOf(db_.graph(), scalar_owned, owned));
  // Reflexive.
  EXPECT_TRUE(IsSupertypeOf(db_.graph(), owned, owned));
}

TEST_F(TypingTest, Possession) {
  TypeExpr at_employee;
  at_employee.receiver = A("Employee");
  at_employee.result = A("Numeral");
  EXPECT_TRUE(Possesses(db_, A("Salary"), at_employee));
  TypeExpr wider = at_employee;
  wider.result = A("Object");
  EXPECT_TRUE(Possesses(db_, A("Salary"), wider));
  TypeExpr at_person = at_employee;
  at_person.receiver = A("Person");
  EXPECT_FALSE(Possesses(db_, A("Salary"), at_person));
}

TEST_F(TypingTest, RangesAndEmptiness) {
  VarRange range;
  range.Add(A("Person"));
  EXPECT_FALSE(range.Empty(db_.graph()));
  EXPECT_TRUE(range.SubrangeOf(db_.graph(), A("Person")));
  EXPECT_FALSE(range.SubrangeOf(db_.graph(), A("Employee")));
  range.Add(A("Employee"));
  EXPECT_TRUE(range.SubrangeOf(db_.graph(), A("Person")));
  // The §6.2 example: {Person, Company} is empty.
  VarRange empty;
  empty.Add(A("Person"));
  empty.Add(A("Company"));
  EXPECT_TRUE(empty.Empty(db_.graph()));
}

TEST_F(TypingTest, SimpleQueryStrictlyWellTyped) {
  // "FROM Person X WHERE X.Name" — the §6.2 warm-up example.
  Query q = MustParseQuery("SELECT X FROM Person X WHERE X.Name");
  TypeChecker checker(db_);
  TypingResult strict = checker.Check(q, TypingMode::kStrict);
  EXPECT_TRUE(strict.well_typed) << strict.explanation;
  Variable x{"X", VarSort::kIndividual};
  ASSERT_TRUE(strict.ranges.contains(x));
  bool has_person = false;
  for (const Oid& cls : strict.ranges.at(x).classes()) {
    if (cls == A("Person")) has_person = true;
  }
  EXPECT_TRUE(has_person);
}

TEST_F(TypingTest, UndeclaredMethodIsIllTyped) {
  Query q = MustParseQuery("SELECT X FROM Person X WHERE X.NoSuchAttr");
  TypeChecker checker(db_);
  TypingResult liberal = checker.Check(q, TypingMode::kLiberal);
  EXPECT_FALSE(liberal.well_typed);
  EXPECT_NE(liberal.explanation.find("no signature"), std::string::npos);
}

TEST_F(TypingTest, TypeErrorPathRejected) {
  // §3.1: mary123.Residence.Salary is a type error — Salary is not an
  // attribute of Address.
  Query q = MustParseQuery("SELECT W WHERE mary123.Residence.Salary[W]");
  TypeChecker checker(db_);
  TypingResult liberal = checker.Check(q, TypingMode::kLiberal);
  EXPECT_FALSE(liberal.well_typed);
}

// The Nobel query (introduction): liberally well-typed, not strictly;
// exempting WonNobelPrize's 0th argument restores strict typing.
TEST_F(TypingTest, NobelSpectrum) {
  Query q = MustParseQuery("SELECT X WHERE X.WonNobelPrize");
  TypeChecker checker(db_);
  TypingResult liberal = checker.Check(q, TypingMode::kLiberal);
  EXPECT_TRUE(liberal.well_typed) << liberal.explanation;
  TypingResult strict = checker.Check(q, TypingMode::kStrict);
  EXPECT_FALSE(strict.well_typed);
  ExemptionSet exemptions;
  exemptions.items.push_back(Exemption{A("WonNobelPrize"), 0});
  TypingResult exempted = checker.Check(q, TypingMode::kStrict, exemptions);
  EXPECT_TRUE(exempted.well_typed) << exempted.explanation;
  // Exempting everything is exactly liberal typing.
  ExemptionSet all;
  all.exempt_all = true;
  EXPECT_TRUE(checker.Check(q, TypingMode::kStrict, all).well_typed);
}

// E17 — fragment (17): two path expressions; with assignment (18) only
// the plan evaluating X.Manufacturer[M] first is coherent.
TEST_F(TypingTest, Fragment17) {
  Query q = MustParseQuery(
      "SELECT X FROM Vehicle X WHERE X.Manufacturer[M] "
      "and M.President.OwnedVehicles[X]");
  TypeChecker checker(db_);
  TypingResult strict = checker.Check(q, TypingMode::kStrict);
  ASSERT_TRUE(strict.well_typed) << strict.explanation;
  ASSERT_EQ(strict.plan.size(), 2u);
  EXPECT_EQ(strict.plan[0], 0u);
  EXPECT_EQ(strict.plan[1], 1u);
  // All witnesses share that order (the reverse plan is incoherent:
  // A'(M) = {Object} is not a subrange of Company/Organization).
  for (const TypingResult& witness : checker.AllStrictWitnesses(q, 16)) {
    ASSERT_EQ(witness.plan.size(), 2u);
    EXPECT_EQ(witness.plan[0], 0u);
  }
}

// E19 — fragment (19): with the Member method, the only coherent plan
// is p2 (OO_Forum.(Member@Year)[M]) -> p1 -> p0, with assignment (20)
// choosing President : Organization => Person.
TEST_F(TypingTest, Fragment19) {
  ASSERT_TRUE(
      db_.NewObject(A("OO_Forum"), {workload::fig1::Association()}).ok());
  Query q = MustParseQuery(
      "SELECT X FROM Numeral Year WHERE X.Manufacturer[M] "
      "and M.President.OwnedVehicles[X] "
      "and OO_Forum.(Member @ Year)[M]");
  TypeChecker checker(db_);
  TypingResult strict = checker.Check(q, TypingMode::kStrict);
  ASSERT_TRUE(strict.well_typed) << strict.explanation;
  std::vector<TypingResult> witnesses = checker.AllStrictWitnesses(q, 64);
  ASSERT_FALSE(witnesses.empty());
  for (const TypingResult& witness : witnesses) {
    ASSERT_EQ(witness.plan.size(), 3u);
    EXPECT_EQ(witness.plan[0], 2u) << "Member path must run first";
    EXPECT_EQ(witness.plan[1], 1u);
    EXPECT_EQ(witness.plan[2], 0u);
    // Assignment (20): President typed Organization => Person.
    const TypeExpr& president = witness.assignment[1][0];
    EXPECT_EQ(president.receiver, A("Organization"));
  }
}

TEST_F(TypingTest, OutsideFragmentIsFlagged) {
  Query q = MustParseQuery(
      "SELECT X FROM Person X WHERE X.Name['a'] or X.Age > 3");
  TypeChecker checker(db_);
  TypingResult res = checker.Check(q, TypingMode::kStrict);
  EXPECT_FALSE(res.in_fragment);
  Query q2 =
      MustParseQuery("SELECT \"Y FROM Person X WHERE X.\"Y.City['newyork']");
  EXPECT_FALSE(checker.Check(q2, TypingMode::kStrict).in_fragment);
}

TEST_F(TypingTest, OrderedComparisonNeedsComparableRange) {
  // Residence (an Address) cannot be ordered against a numeral.
  Query q = MustParseQuery(
      "SELECT X FROM Person X WHERE X.Residence[R] and R > 5");
  TypeChecker checker(db_);
  TypingResult res = checker.Check(q, TypingMode::kLiberal);
  EXPECT_FALSE(res.well_typed);
  Query ok = MustParseQuery("SELECT X FROM Person X WHERE X.Age > 5");
  EXPECT_TRUE(checker.Check(ok, TypingMode::kLiberal).well_typed);
}

TEST_F(TypingTest, EmptyRangeRejects) {
  Query q = MustParseQuery("SELECT X FROM Vehicle X WHERE X.Salary > 0");
  TypeChecker checker(db_);
  TypingResult res = checker.Check(q, TypingMode::kLiberal);
  EXPECT_FALSE(res.well_typed);
  EXPECT_NE(res.explanation.find("empty"), std::string::npos);
}

TEST_F(TypingTest, PolymorphicMethodPicksDeclaredSignature) {
  // earns: project => pay on employee, course => grade on student (§6.1).
  ASSERT_TRUE(db_.DeclareClass(A("Project")).ok());
  ASSERT_TRUE(db_.DeclareClass(A("Course")).ok());
  ASSERT_TRUE(db_.DeclareClass(A("Pay")).ok());
  ASSERT_TRUE(db_.DeclareClass(A("Grade")).ok());
  ASSERT_TRUE(db_.DeclareClass(A("Student"), {A("Person")}).ok());
  Signature on_employee{A("earns"), {A("Project")}, A("Pay"), false};
  Signature on_student{A("earns"), {A("Course")}, A("Grade"), false};
  ASSERT_TRUE(db_.DeclareSignature(A("Employee"), on_employee).ok());
  ASSERT_TRUE(db_.DeclareSignature(A("Student"), on_student).ok());
  ASSERT_TRUE(
      db_.DeclareClass(A("Workstudy"), {A("Student"), A("Employee")}).ok());
  EXPECT_EQ(DeclaredTypeExprs(db_, A("earns")).size(), 2u);

  Query q = MustParseQuery(
      "SELECT W FROM Workstudy X, Project P WHERE X.(earns @ P)[W]");
  TypeChecker checker(db_);
  TypingResult strict = checker.Check(q, TypingMode::kStrict);
  ASSERT_TRUE(strict.well_typed) << strict.explanation;
  EXPECT_EQ(strict.assignment[0][0].args[0], A("Project"));
  EXPECT_EQ(strict.assignment[0][0].result, A("Pay"));
}

TEST_F(TypingTest, PlanEnumeration) {
  EXPECT_EQ(EnumeratePlans(0).size(), 1u);
  EXPECT_EQ(EnumeratePlans(3).size(), 6u);
  EXPECT_EQ(EnumeratePlans(8).size(), 2u);  // capped: identity + reverse
  EXPECT_EQ(PlanToString({2, 0, 1}), "p2 -> p0 -> p1");
}

// Typing is metalogical: an ill-typed query still evaluates — and
// returns no answers, the §6.2 guarantee for ill-typed queries.
TEST_F(TypingTest, IllTypedQueryEvaluatesToEmpty) {
  Session session(&db_);
  auto rel = session.Query("SELECT X FROM Vehicle X WHERE X.Salary > 0");
  ASSERT_TRUE(rel.ok()) << rel.status().ToString();
  EXPECT_TRUE(rel->empty());
  session.mutable_options().enforce_typing = true;
  session.mutable_options().typing_mode = TypingMode::kLiberal;
  auto rejected =
      session.Query("SELECT X FROM Vehicle X WHERE X.Salary > 0");
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kTypeError);
}

}  // namespace
}  // namespace xsql
