// Primary → replica replication end to end: the subscribe/bootstrap/
// ship protocol codecs, the hub's semi-sync accounting, WAL tailing,
// streaming a live primary into a ReplicaNode (byte-prefix invariant),
// read-only serving with a write redirect, mid-stream re-bootstrap on
// checkpoint rotation, controlled promotion carrying the dedup table
// (exactly-once across failover), checkpoint-generation retention GC,
// and the SYSTEM STATUS board. Run under TSan by ci.sh.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/crc32.h"
#include "common/fault.h"
#include "server/client.h"
#include "server/replica.h"
#include "server/replication.h"
#include "server/server.h"
#include "storage/dedup.h"
#include "storage/file.h"
#include "storage/recovery.h"
#include "storage/snapshot.h"
#include "storage/wal.h"

namespace xsql {
namespace server {
namespace {

using storage::BootstrapBundle;
using storage::DurableDatabase;
using storage::DurableOptions;
using storage::File;
using storage::Wal;
using storage::WalPoint;
using storage::WalTailer;

/// Polls `pred` for up to `timeout_ms`; true iff it became true.
bool Eventually(int timeout_ms, const std::function<bool()>& pred) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return pred();
}

// ---------------------------------------------------------------------
// Codecs
// ---------------------------------------------------------------------

TEST(ReplicationCodecTest, SubscribePayloadRoundTrip) {
  WalPoint point;
  point.generation = 7;
  point.records = 1234;
  point.bytes = 0xDEADBEEFCAFEull;
  const std::string payload = EncodeSubscribePayload(point, 0xA5A5A5A5u);
  ASSERT_EQ(payload.size(), 28u);
  WalPoint decoded;
  uint32_t crc = 0;
  ASSERT_TRUE(DecodeSubscribePayload(payload, &decoded, &crc));
  EXPECT_EQ(decoded.generation, 7u);
  EXPECT_EQ(decoded.records, 1234u);
  EXPECT_EQ(decoded.bytes, 0xDEADBEEFCAFEull);
  EXPECT_EQ(crc, 0xA5A5A5A5u);
  // Truncated / oversized payloads are rejected, not misread.
  EXPECT_FALSE(DecodeSubscribePayload(payload.substr(1), &decoded, &crc));
  EXPECT_FALSE(DecodeSubscribePayload(payload + "x", &decoded, &crc));
  EXPECT_FALSE(DecodeSubscribePayload("", &decoded, &crc));
}

TEST(ReplicationCodecTest, PositionRoundTrip) {
  const std::string payload = EncodePosition(3, 99);
  ASSERT_EQ(payload.size(), 16u);
  uint64_t gen = 0, records = 0;
  ASSERT_TRUE(DecodePosition(payload, &gen, &records));
  EXPECT_EQ(gen, 3u);
  EXPECT_EQ(records, 99u);
  EXPECT_FALSE(DecodePosition(payload.substr(0, 15), &gen, &records));
}

TEST(ReplicationCodecTest, BundleRoundTrip) {
  BootstrapBundle bundle;
  bundle.generation = 5;
  bundle.wal_records = 42;
  bundle.snapshot = "SNAPSHOT IMAGE";
  bundle.ddl = std::string("DDL\0WITH NUL", 12);
  bundle.wal = "XSQL-WAL 1\nrecords...";
  bundle.dedup = "";
  const std::string blob = EncodeBundle(bundle);
  BootstrapBundle decoded;
  ASSERT_TRUE(DecodeBundle(blob, &decoded));
  EXPECT_EQ(decoded.generation, 5u);
  EXPECT_EQ(decoded.wal_records, 42u);
  EXPECT_EQ(decoded.snapshot, bundle.snapshot);
  EXPECT_EQ(decoded.ddl, bundle.ddl);
  EXPECT_EQ(decoded.wal, bundle.wal);
  EXPECT_EQ(decoded.dedup, bundle.dedup);
  // A blob whose section lengths disagree with its size is rejected.
  EXPECT_FALSE(DecodeBundle(blob.substr(0, blob.size() - 1), &decoded));
  EXPECT_FALSE(DecodeBundle("short", &decoded));
}

// ---------------------------------------------------------------------
// Hub semantics
// ---------------------------------------------------------------------

TEST(ReplicationHubTest, WaitSemantics) {
  ReplicationHub hub;
  // No subscriber: a semi-sync wait degrades immediately.
  EXPECT_FALSE(hub.WaitReplicated(1, 1, 10));
  EXPECT_FALSE(hub.ever_had_subscriber());

  const uint64_t id = hub.Register();
  EXPECT_TRUE(hub.ever_had_subscriber());
  EXPECT_EQ(hub.live_subscribers(), 1);
  // Subscriber behind: the wait times out.
  EXPECT_FALSE(hub.WaitReplicated(1, 5, 20));
  // Ack catches up mid-wait: the wait resolves true.
  std::thread acker([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    hub.UpdateAck(id, 1, 5);
  });
  EXPECT_TRUE(hub.WaitReplicated(1, 5, 2000));
  acker.join();
  // A later generation counts as caught up for any earlier position.
  hub.UpdateAck(id, 2, 0);
  EXPECT_TRUE(hub.WaitReplicated(1, 1000, 10));

  hub.Unregister(id);
  EXPECT_EQ(hub.live_subscribers(), 0);
  EXPECT_FALSE(hub.WaitReplicated(2, 0, 10));
  EXPECT_TRUE(hub.ever_had_subscriber());  // sticky
}

// ---------------------------------------------------------------------
// WAL tailing
// ---------------------------------------------------------------------

TEST(WalTailerTest, PollSkipAndTornTail) {
  const std::string dir = ::testing::TempDir() + "/xsql_tailer";
  std::filesystem::remove_all(dir);
  ASSERT_TRUE(File::EnsureDir(dir).ok());
  const std::string path = dir + "/tail.wal";
  ASSERT_TRUE(Wal::Create(path).ok());
  auto created = Wal::ScanFile(path);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  auto appender = Wal::OpenAppender(path, created->valid_size);
  ASSERT_TRUE(appender.ok()) << appender.status().ToString();
  for (const char* payload : {"one", "two", "three"}) {
    ASSERT_TRUE(appender->Append(payload).ok());
  }
  const uint64_t durable = appender->synced_size();

  auto tailer = WalTailer::Open(path);
  ASSERT_TRUE(tailer.ok()) << tailer.status().ToString();
  std::string raw;
  std::vector<std::string> payloads;
  ASSERT_TRUE(tailer->Poll(durable, 1 << 20, &raw, &payloads).ok());
  ASSERT_EQ(payloads.size(), 3u);
  EXPECT_EQ(payloads[0], "one");
  EXPECT_EQ(payloads[2], "three");
  EXPECT_EQ(tailer->records(), 3u);
  EXPECT_EQ(tailer->offset(), durable);
  // The raw bytes are exactly the on-disk record region: re-parsing
  // them yields the same payloads (this is what ships in kWalBatch).
  uint64_t consumed = 0;
  std::vector<std::string> reparsed;
  ASSERT_TRUE(Wal::ParseRecords(raw, &consumed, &reparsed).ok());
  EXPECT_EQ(consumed, raw.size());
  EXPECT_EQ(reparsed, payloads);

  // Resume-from-position: a fresh tailer skips the shared prefix.
  auto resumed = WalTailer::Open(path);
  ASSERT_TRUE(resumed.ok());
  ASSERT_TRUE(resumed->SkipRecords(2, durable).ok());
  raw.clear();
  payloads.clear();
  ASSERT_TRUE(resumed->Poll(durable, 1 << 20, &raw, &payloads).ok());
  ASSERT_EQ(payloads.size(), 1u);
  EXPECT_EQ(payloads[0], "three");
  // Skipping past the durable region fails rather than lies.
  auto over = WalTailer::Open(path);
  ASSERT_TRUE(over.ok());
  EXPECT_FALSE(over->SkipRecords(4, durable).ok());

  // A torn tail (durable boundary mid-record) is held back, not shipped.
  std::string image;
  {
    auto all = File::ReadAll(path);
    ASSERT_TRUE(all.ok());
    image = *all;
  }
  auto torn = WalTailer::Open(path);
  ASSERT_TRUE(torn.ok());
  raw.clear();
  payloads.clear();
  ASSERT_TRUE(torn->Poll(image.size() - 3, 1 << 20, &raw, &payloads).ok());
  EXPECT_EQ(payloads.size(), 2u);
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------
// End-to-end streaming, failover, retention
// ---------------------------------------------------------------------

class ReplicationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    root_ = ::testing::TempDir() + "/xsql_repl_" + info->name();
    std::filesystem::remove_all(root_);
    std::filesystem::create_directories(root_);
  }

  void TearDown() override {
    node_.reset();
    server_.reset();
    dd_.reset();
    FaultInjector::Global().Disarm();
    std::filesystem::remove_all(root_);
  }

  /// Opens the primary with a small prelude and starts its server.
  void StartPrimary(ServerOptions options = {}) {
    auto dd = DurableDatabase::Open(root_ + "/primary");
    ASSERT_TRUE(dd.ok()) << dd.status().ToString();
    dd_ = std::move(*dd);
    for (const char* stmt :
         {"ALTER CLASS Person ADD SIGNATURE Name => String",
          "ALTER CLASS Person ADD SIGNATURE Salary => Numeral",
          "UPDATE CLASS Person SET mary.Name = 'mary'",
          "UPDATE CLASS Person SET mary.Salary = 100"}) {
      auto out = dd_->Execute(stmt);
      ASSERT_TRUE(out.ok()) << stmt << ": " << out.status().ToString();
    }
    auto server = Server::Start(dd_.get(), std::move(options));
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    server_ = std::move(*server);
  }

  /// Starts a ReplicaNode following the primary and waits for it to
  /// bootstrap and catch up.
  void StartReplica() {
    ReplicaOptions options;
    options.dir = root_ + "/replica";
    options.primary_port = server_->port();
    auto node = ReplicaNode::Start(std::move(options));
    ASSERT_TRUE(node.ok()) << node.status().ToString();
    node_ = std::move(*node);
    ASSERT_TRUE(AwaitCaughtUp()) << "replica never caught up";
  }

  bool AwaitCaughtUp(int timeout_ms = 10000) {
    return Eventually(timeout_ms, [&] {
      return node_->applied_records() == dd_->wal_records() &&
             node_->durable() != nullptr &&
             node_->durable()->generation() == dd_->generation();
    });
  }

  /// The replica WAL must be a byte-prefix of the primary's (same
  /// generation) — the invariant that makes CRC resume sound.
  void ExpectWalBytePrefix() {
    const uint64_t gen = dd_->generation();
    auto primary = File::ReadAll(
        DurableDatabase::WalPath(root_ + "/primary", gen));
    auto replica = File::ReadAll(
        DurableDatabase::WalPath(root_ + "/replica", gen));
    ASSERT_TRUE(primary.ok()) << primary.status().ToString();
    ASSERT_TRUE(replica.ok()) << replica.status().ToString();
    ASSERT_LE(replica->size(), primary->size());
    EXPECT_EQ(*replica, primary->substr(0, replica->size()));
  }

  std::string root_;
  std::unique_ptr<DurableDatabase> dd_;
  std::unique_ptr<Server> server_;
  std::unique_ptr<ReplicaNode> node_;
};

TEST_F(ReplicationTest, StreamsWritesAndServesReads) {
  StartPrimary();
  StartReplica();
  // The bootstrap carried the prelude: the replica answers reads.
  auto client = Client::Connect("127.0.0.1", node_->port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  auto out = client->Execute("SELECT T WHERE mary.Name[T]");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_NE(out->find("mary"), std::string::npos) << *out;

  // Live writes on the primary ship over and become readable.
  auto primary = Client::Connect("127.0.0.1", server_->port());
  ASSERT_TRUE(primary.ok());
  ASSERT_TRUE(
      primary->Execute("UPDATE CLASS Person SET mary.Salary = 777").ok());
  ASSERT_TRUE(AwaitCaughtUp());
  auto salary = client->Execute("SELECT T WHERE mary.Salary[T]");
  ASSERT_TRUE(salary.ok()) << salary.status().ToString();
  EXPECT_NE(salary->find("777"), std::string::npos) << *salary;

  ExpectWalBytePrefix();
  // Logical states agree once caught up.
  EXPECT_EQ(storage::SaveSnapshot(node_->durable()->db()),
            storage::SaveSnapshot(dd_->db()));
}

TEST_F(ReplicationTest, ReplicaRefusesWritesWithRedirect) {
  StartPrimary();
  StartReplica();
  auto client = Client::Connect("127.0.0.1", node_->port());
  ASSERT_TRUE(client.ok());
  auto out = client->Execute("UPDATE CLASS Person SET mary.Salary = 1");
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kUnavailable)
      << out.status().ToString();
  EXPECT_NE(out.status().message().find("read-only replica"),
            std::string::npos)
      << out.status().ToString();
  // The redirect names the primary.
  EXPECT_NE(out.status().message().find(
                std::to_string(server_->port())),
            std::string::npos)
      << out.status().ToString();
  // Reads still work on the same connection.
  EXPECT_TRUE(client->Execute("SELECT T WHERE mary.Name[T]").ok());
}

TEST_F(ReplicationTest, CheckpointRotationRebootstrapsMidStream) {
  StartPrimary();
  StartReplica();
  const uint64_t gen_before = dd_->generation();
  ASSERT_TRUE(server_->manager().Checkpoint().ok());
  ASSERT_EQ(dd_->generation(), gen_before + 1);
  // The source notices the rotation and re-bootstraps the subscriber
  // on the same connection; the replica follows into the new
  // generation.
  ASSERT_TRUE(AwaitCaughtUp());
  EXPECT_EQ(node_->durable()->generation(), gen_before + 1);

  // And the stream keeps flowing afterwards.
  auto primary = Client::Connect("127.0.0.1", server_->port());
  ASSERT_TRUE(primary.ok());
  ASSERT_TRUE(
      primary->Execute("UPDATE CLASS Person SET mary.Salary = 42").ok());
  ASSERT_TRUE(AwaitCaughtUp());
  ExpectWalBytePrefix();
  EXPECT_EQ(storage::SaveSnapshot(node_->durable()->db()),
            storage::SaveSnapshot(dd_->db()));
}

TEST_F(ReplicationTest, PromotionCarriesDedupForExactlyOnce) {
  ServerOptions options;
  options.sync_replication = true;
  StartPrimary(options);
  StartReplica();

  RetryingClientOptions copts;
  copts.endpoints.push_back({"127.0.0.1", server_->port()});
  copts.endpoints.push_back({"127.0.0.1", node_->port()});
  copts.timeout_ms = 1000;
  copts.max_retries = 20;
  copts.backoff_base_ms = 2;
  copts.backoff_max_ms = 50;
  RetryingClient client(copts);

  const std::string stmt = "UPDATE CLASS Person SET mary.Salary = 555";
  auto acked = client.Execute(stmt);
  ASSERT_TRUE(acked.ok()) << acked.status().ToString();
  const uint64_t seq = client.last_seq();
  ASSERT_TRUE(AwaitCaughtUp());

  // The primary dies (server gone); the replica is promoted.
  server_->Shutdown();
  server_.reset();
  node_->RequestPromote();
  ASSERT_TRUE(node_->AwaitPromoted(10000));
  EXPECT_EQ(node_->server()->role(), ServerRole::kPrimary);

  // Re-driving the acked statement with the SAME (uuid, seq) hits the
  // replicated dedup table: the cached reply comes back and the
  // statement does not execute twice.
  auto replayed = client.ExecuteSeq(seq, stmt);
  ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();
  EXPECT_EQ(*replayed, *acked);
  EXPECT_GE(client.failovers(), 1u);

  auto scan = Wal::ScanFile(DurableDatabase::WalPath(
      root_ + "/replica", node_->durable()->generation()));
  ASSERT_TRUE(scan.ok()) << scan.status().ToString();
  int occurrences = 0;
  for (const std::string& record : scan->records) {
    if (storage::DecodeRidPayload(record).second == stmt) ++occurrences;
  }
  EXPECT_EQ(occurrences, 1);

  // The promoted node now accepts fresh writes.
  auto fresh = client.Execute("UPDATE CLASS Person SET mary.Salary = 556");
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
}

TEST_F(ReplicationTest, SystemStatusReportsRoleAndPositions) {
  StartPrimary();
  StartReplica();
  auto primary = Client::Connect("127.0.0.1", server_->port());
  ASSERT_TRUE(primary.ok());
  ASSERT_TRUE(
      primary->Execute("UPDATE CLASS Person SET mary.Salary = 9").ok());
  ASSERT_TRUE(AwaitCaughtUp());

  auto status = primary->Execute("SYSTEM STATUS");
  ASSERT_TRUE(status.ok()) << status.status().ToString();
  EXPECT_NE(status->find("role"), std::string::npos) << *status;
  EXPECT_NE(status->find("primary"), std::string::npos) << *status;
  EXPECT_NE(status->find("generation"), std::string::npos) << *status;
  EXPECT_NE(status->find("wal_records"), std::string::npos) << *status;
  EXPECT_NE(status->find("dedup_entries"), std::string::npos) << *status;

  auto replica = Client::Connect("127.0.0.1", node_->port());
  ASSERT_TRUE(replica.ok());
  auto rstatus = replica->Execute("SYSTEM STATUS");
  ASSERT_TRUE(rstatus.ok()) << rstatus.status().ToString();
  EXPECT_NE(rstatus->find("replica"), std::string::npos) << *rstatus;
  EXPECT_NE(rstatus->find("repl.applied_records"), std::string::npos)
      << *rstatus;
}

TEST_F(ReplicationTest, SubscribeToReplicaIsRefused) {
  StartPrimary();
  StartReplica();
  auto conn = Client::Connect("127.0.0.1", node_->port());
  ASSERT_TRUE(conn.ok());
  WalPoint fresh;  // empty position: asks for a bootstrap
  auto reply = conn->Transact(MsgType::kSubscribe,
                              EncodeSubscribePayload(fresh, 0));
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->type, MsgType::kError);
}

TEST_F(ReplicationTest, PromoteOnNonReplicaIsRefused) {
  StartPrimary();
  auto conn = Client::Connect("127.0.0.1", server_->port());
  ASSERT_TRUE(conn.ok());
  auto reply = conn->Transact(MsgType::kPromote, "");
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->type, MsgType::kError);
}

TEST_F(ReplicationTest, PromoteOverTheWire) {
  StartPrimary();
  StartReplica();
  server_->Shutdown();
  server_.reset();
  auto conn = Client::Connect("127.0.0.1", node_->port());
  ASSERT_TRUE(conn.ok());
  conn->set_timeout_ms(5000);
  auto reply = conn->Transact(MsgType::kPromote, "");
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->type, MsgType::kResult) << reply->payload;
  ASSERT_TRUE(node_->AwaitPromoted(10000));
  // Writes now land.
  auto out = conn->Execute("UPDATE CLASS Person SET mary.Salary = 3");
  EXPECT_TRUE(out.ok()) << out.status().ToString();
}

// ---------------------------------------------------------------------
// Retention GC
// ---------------------------------------------------------------------

class RetentionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = ::testing::TempDir() + "/xsql_retain_" + info->name();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  static void MustExecute(DurableDatabase* dd, const char* stmt) {
    auto out = dd->Execute(stmt);
    ASSERT_TRUE(out.ok()) << stmt << ": " << out.status().ToString();
  }

  std::string dir_;
};

TEST_F(RetentionTest, DefaultKeepsPreviousGenerationThenPrunes) {
  auto dd = DurableDatabase::Open(dir_);  // retain_generations = 2
  ASSERT_TRUE(dd.ok()) << dd.status().ToString();
  MustExecute(dd->get(),
              "ALTER CLASS Person ADD SIGNATURE Salary => Numeral");
  MustExecute(dd->get(), "UPDATE CLASS Person SET mary.Salary = 1");
  ASSERT_TRUE((*dd)->Checkpoint().ok());
  EXPECT_EQ((*dd)->generation(), 2u);
  // Generation 1 survives the first rotation (a replica may still be
  // bootstrapping from it)...
  EXPECT_TRUE(File::Exists(DurableDatabase::SnapshotPath(dir_, 1)));
  EXPECT_TRUE(File::Exists(DurableDatabase::WalPath(dir_, 1)));

  MustExecute(dd->get(), "UPDATE CLASS Person SET mary.Salary = 2");
  ASSERT_TRUE((*dd)->Checkpoint().ok());
  EXPECT_EQ((*dd)->generation(), 3u);
  // ...and is pruned by the second. Generation 2 is now the kept spare.
  EXPECT_FALSE(File::Exists(DurableDatabase::SnapshotPath(dir_, 1)));
  EXPECT_FALSE(File::Exists(DurableDatabase::WalPath(dir_, 1)));
  EXPECT_FALSE(File::Exists(DurableDatabase::DedupPath(dir_, 1)));
  EXPECT_TRUE(File::Exists(DurableDatabase::SnapshotPath(dir_, 2)));
}

TEST_F(RetentionTest, PinnedGenerationSurvivesPruning) {
  auto dd = DurableDatabase::Open(dir_);
  ASSERT_TRUE(dd.ok());
  MustExecute(dd->get(),
              "ALTER CLASS Person ADD SIGNATURE Salary => Numeral");
  (*dd)->PinGeneration(1);  // a subscriber is bootstrapping from gen 1
  for (int i = 0; i < 3; ++i) {
    MustExecute(dd->get(), "UPDATE CLASS Person SET mary.Salary = 7");
    ASSERT_TRUE((*dd)->Checkpoint().ok());
  }
  EXPECT_EQ((*dd)->generation(), 4u);
  EXPECT_TRUE(File::Exists(DurableDatabase::SnapshotPath(dir_, 1)));
  (*dd)->UnpinGeneration(1);
  ASSERT_TRUE((*dd)->PruneStaleGenerations().ok());
  EXPECT_FALSE(File::Exists(DurableDatabase::SnapshotPath(dir_, 1)));
}

TEST_F(RetentionTest, StaleGenerationsLeftByACrashRecoverAndPrune) {
  // A crash between the CURRENT flip and the prune leaves old
  // generation files behind. Recovery must ignore them and the next
  // open (retain 1) must sweep them.
  {
    auto dd = DurableDatabase::Open(dir_);  // retain 2: gen 1 stays
    ASSERT_TRUE(dd.ok());
    MustExecute(dd->get(),
                "ALTER CLASS Person ADD SIGNATURE Salary => Numeral");
    MustExecute(dd->get(), "UPDATE CLASS Person SET mary.Salary = 5");
    ASSERT_TRUE((*dd)->Checkpoint().ok());
    ASSERT_TRUE(File::Exists(DurableDatabase::SnapshotPath(dir_, 1)));
  }
  std::string acked;
  {
    DurableOptions options;
    options.retain_generations = 1;
    auto dd = DurableDatabase::Open(dir_, options);
    ASSERT_TRUE(dd.ok()) << dd.status().ToString();
    EXPECT_EQ((*dd)->generation(), 2u);
    // Open swept the stale generation; state is intact.
    EXPECT_FALSE(File::Exists(DurableDatabase::SnapshotPath(dir_, 1)));
    EXPECT_FALSE(File::Exists(DurableDatabase::WalPath(dir_, 1)));
    auto out = (*dd)->Query("SELECT T WHERE mary.Salary[T]");
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    ASSERT_EQ(out->size(), 1u);
    acked = storage::SaveSnapshot((*dd)->db());
  }
  auto reopened = DurableDatabase::Open(dir_);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(storage::SaveSnapshot((*reopened)->db()), acked);
}

}  // namespace
}  // namespace server
}  // namespace xsql
