#include <gtest/gtest.h>

#include "store/catalog.h"
#include "store/database.h"

namespace xsql {
namespace {

Oid A(const char* s) { return Oid::Atom(s); }

TEST(ClassGraphTest, DeclareAndSubclass) {
  ClassGraph graph;
  ASSERT_TRUE(graph.AddSubclass(A("Employee"), A("Person")).ok());
  EXPECT_TRUE(graph.IsClass(A("Employee")));
  EXPECT_TRUE(graph.IsClass(A("Person")));
  EXPECT_TRUE(graph.IsStrictSubclass(A("Employee"), A("Person")));
  EXPECT_FALSE(graph.IsStrictSubclass(A("Person"), A("Employee")));
  // subclassOf is strict (§3.1).
  EXPECT_FALSE(graph.IsStrictSubclass(A("Person"), A("Person")));
  EXPECT_TRUE(graph.IsSubclassEq(A("Person"), A("Person")));
}

TEST(ClassGraphTest, TransitiveSubclass) {
  ClassGraph graph;
  ASSERT_TRUE(graph.AddSubclass(A("Turbo"), A("FourStroke")).ok());
  ASSERT_TRUE(graph.AddSubclass(A("FourStroke"), A("Piston")).ok());
  EXPECT_TRUE(graph.IsStrictSubclass(A("Turbo"), A("Piston")));
  OidSet ancestors = graph.Ancestors(A("Turbo"));
  EXPECT_TRUE(ancestors.Contains(A("FourStroke")));
  EXPECT_TRUE(ancestors.Contains(A("Piston")));
  EXPECT_EQ(ancestors.size(), 2u);
  OidSet descendants = graph.Descendants(A("Piston"));
  EXPECT_TRUE(descendants.Contains(A("Turbo")));
}

TEST(ClassGraphTest, RejectsCycles) {
  ClassGraph graph;
  ASSERT_TRUE(graph.AddSubclass(A("B"), A("A")).ok());
  ASSERT_TRUE(graph.AddSubclass(A("C"), A("B")).ok());
  EXPECT_FALSE(graph.AddSubclass(A("A"), A("C")).ok());
  EXPECT_FALSE(graph.AddSubclass(A("A"), A("A")).ok());
}

TEST(ClassGraphTest, InstancesAndExtents) {
  ClassGraph graph;
  ASSERT_TRUE(graph.AddSubclass(A("Employee"), A("Person")).ok());
  ASSERT_TRUE(graph.AddInstance(A("john"), A("Employee")).ok());
  ASSERT_TRUE(graph.AddInstance(A("mary"), A("Person")).ok());
  // Membership closes upward, not downward.
  EXPECT_TRUE(graph.IsInstanceOf(A("john"), A("Person")));
  EXPECT_FALSE(graph.IsInstanceOf(A("mary"), A("Employee")));
  EXPECT_EQ(graph.DirectExtent(A("Person")).size(), 1u);
  EXPECT_EQ(graph.Extent(A("Person")).size(), 2u);
}

TEST(ClassGraphTest, RemoveInstance) {
  ClassGraph graph;
  ASSERT_TRUE(graph.AddInstance(A("x"), A("C")).ok());
  EXPECT_TRUE(graph.IsInstanceOf(A("x"), A("C")));
  graph.RemoveInstance(A("x"), A("C"));
  EXPECT_FALSE(graph.IsInstanceOf(A("x"), A("C")));
  EXPECT_TRUE(graph.Extent(A("C")).empty());
}

TEST(ClassGraphTest, CommonSubclassAndSubrange) {
  ClassGraph graph;
  ASSERT_TRUE(graph.AddSubclass(A("Employee"), A("Person")).ok());
  ASSERT_TRUE(graph.AddSubclass(A("Company"), A("Org")).ok());
  // {Person, Company}: no common subclass (the §6.2 emptiness example).
  EXPECT_FALSE(graph.HaveCommonSubclass({A("Person"), A("Company")}));
  EXPECT_TRUE(graph.HaveCommonSubclass({A("Person"), A("Employee")}));
  EXPECT_TRUE(graph.HaveCommonSubclass({A("Person")}));
  // Subrange: {Employee} is a subrange of Person.
  EXPECT_TRUE(graph.IsSubrange({A("Employee")}, A("Person")));
  EXPECT_FALSE(graph.IsSubrange({A("Person")}, A("Employee")));
  // Vacuous subrange when the range is empty.
  EXPECT_TRUE(graph.IsSubrange({A("Person"), A("Company")}, A("Employee")));
}

TEST(ObjectTest, ScalarAndSetAttributes) {
  Object obj(A("john"));
  obj.SetScalar(A("Age"), Oid::Int(30));
  ASSERT_NE(obj.Get(A("Age")), nullptr);
  EXPECT_EQ(obj.Get(A("Age"))->scalar(), Oid::Int(30));
  EXPECT_EQ(obj.Get(A("Missing")), nullptr);
  ASSERT_TRUE(obj.AddToSet(A("Kids"), A("kid1")).ok());
  ASSERT_TRUE(obj.AddToSet(A("Kids"), A("kid2")).ok());
  EXPECT_EQ(obj.Get(A("Kids"))->set().size(), 2u);
  // Adding to a scalar attribute is an error.
  EXPECT_FALSE(obj.AddToSet(A("Age"), Oid::Int(1)).ok());
  obj.Remove(A("Age"));
  EXPECT_EQ(obj.Get(A("Age")), nullptr);
}

TEST(ObjectTest, AttrValueAsSet) {
  AttrValue scalar = AttrValue::Scalar(Oid::Int(1));
  EXPECT_EQ(scalar.AsSet().size(), 1u);
  AttrValue set = AttrValue::Set(OidSet({Oid::Int(1), Oid::Int(2)}));
  EXPECT_EQ(set.AsSet().size(), 2u);
}

TEST(SignatureTest, StructuralInheritanceAccumulates) {
  ClassGraph graph;
  ASSERT_TRUE(graph.AddSubclass(A("Workstudy"), A("Student")).ok());
  ASSERT_TRUE(graph.AddSubclass(A("Workstudy"), A("Employee")).ok());
  SignatureStore sigs;
  // The paper's earns example: two incomparable signatures.
  Signature earns_student{A("earns"), {A("course")}, A("grade"), false};
  Signature earns_employee{A("earns"), {A("project")}, A("pay"), false};
  ASSERT_TRUE(sigs.Add(A("Student"), earns_student).ok());
  ASSERT_TRUE(sigs.Add(A("Employee"), earns_employee).ok());
  // Workstudy inherits both signatures (covariance, §6.1) — never
  // overridden, only accumulated.
  auto inherited = sigs.Inherited(graph, A("Workstudy"), A("earns"));
  EXPECT_EQ(inherited.size(), 2u);
  EXPECT_EQ(sigs.Declared(A("Workstudy"), A("earns")).size(), 0u);
  EXPECT_TRUE(
      sigs.VisibleMethods(graph, A("Workstudy")).Contains(A("earns")));
}

class CountBody : public MethodBody {
 public:
  explicit CountBody(std::string tag) : tag_(std::move(tag)) {}
  int arity() const override { return 0; }
  bool set_valued() const override { return false; }
  std::string kind() const override { return tag_; }

 private:
  std::string tag_;
};

TEST(MethodRegistryTest, OverridingPicksNearestDefinition) {
  ClassGraph graph;
  ASSERT_TRUE(graph.AddSubclass(A("Employee"), A("Person")).ok());
  MethodRegistry registry;
  ASSERT_TRUE(
      registry.Define(A("Person"), A("greet"), 0,
                      std::make_shared<CountBody>("person")).ok());
  ASSERT_TRUE(
      registry.Define(A("Employee"), A("greet"), 0,
                      std::make_shared<CountBody>("employee")).ok());
  auto via_employee = registry.Resolve(graph, {A("Employee")}, A("greet"), 0);
  ASSERT_TRUE(via_employee.ok());
  EXPECT_EQ(via_employee->defining_class, A("Employee"));
  auto via_person = registry.Resolve(graph, {A("Person")}, A("greet"), 0);
  ASSERT_TRUE(via_person.ok());
  EXPECT_EQ(via_person->defining_class, A("Person"));
}

TEST(MethodRegistryTest, ConflictRequiresExplicitResolution) {
  ClassGraph graph;
  ASSERT_TRUE(graph.AddSubclass(A("Workstudy"), A("Student")).ok());
  ASSERT_TRUE(graph.AddSubclass(A("Workstudy"), A("Employee")).ok());
  MethodRegistry registry;
  ASSERT_TRUE(registry.Define(A("Student"), A("id"), 0,
                              std::make_shared<CountBody>("s")).ok());
  ASSERT_TRUE(registry.Define(A("Employee"), A("id"), 0,
                              std::make_shared<CountBody>("e")).ok());
  auto conflict = registry.Resolve(graph, {A("Workstudy")}, A("id"), 0);
  EXPECT_FALSE(conflict.ok());
  EXPECT_EQ(conflict.status().code(), StatusCode::kRuntimeError);
  // [MEY88]: the schema resolves the conflict explicitly.
  ASSERT_TRUE(
      registry.ResolveConflict(A("Workstudy"), A("id"), A("Student")).ok());
  auto resolved = registry.Resolve(graph, {A("Workstudy")}, A("id"), 0);
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(resolved->defining_class, A("Student"));
}

TEST(MethodRegistryTest, NotFoundWhenUndefined) {
  ClassGraph graph;
  MethodRegistry registry;
  auto missing = registry.Resolve(graph, {A("Person")}, A("greet"), 0);
  EXPECT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

TEST(DatabaseTest, BuiltinsInstalled) {
  Database db;
  EXPECT_TRUE(db.graph().IsClass(builtin::Object()));
  EXPECT_TRUE(db.graph().IsStrictSubclass(builtin::Numeral(),
                                          builtin::Object()));
  // Classes are objects: instances of the meta-class Class.
  EXPECT_TRUE(
      db.graph().IsInstanceOf(builtin::Numeral(), builtin::MetaClass()));
}

TEST(DatabaseTest, LiteralsAreInstancesOfBuiltins) {
  Database db;
  EXPECT_TRUE(db.IsInstanceOf(Oid::Int(20), builtin::Numeral()));
  EXPECT_TRUE(db.IsInstanceOf(Oid::Int(20), builtin::Object()));
  EXPECT_TRUE(db.IsInstanceOf(Oid::String("x"), builtin::String()));
  EXPECT_TRUE(db.IsInstanceOf(Oid::Bool(true), builtin::Boolean()));
  EXPECT_TRUE(db.IsInstanceOf(Oid::Nil(), builtin::NilClass()));
  EXPECT_FALSE(db.IsInstanceOf(Oid::Int(20), builtin::String()));
}

TEST(DatabaseTest, AttributeNamesBecomeMethodObjects) {
  Database db;
  ASSERT_TRUE(db.DeclareClass(A("Person")).ok());
  ASSERT_TRUE(db.NewObject(A("john"), {A("Person")}).ok());
  ASSERT_TRUE(db.SetScalar(A("john"), A("Age"), Oid::Int(30)).ok());
  EXPECT_TRUE(db.graph().IsInstanceOf(A("Age"), builtin::MetaMethod()));
}

TEST(DatabaseTest, DefaultAttributeInheritanceFromClassObjects) {
  Database db;
  ASSERT_TRUE(db.DeclareClass(A("Person")).ok());
  ASSERT_TRUE(db.DeclareClass(A("Employee"), {A("Person")}).ok());
  // Classes are objects: give Person a default LegCount.
  ASSERT_TRUE(db.SetScalar(A("Person"), A("LegCount"), Oid::Int(2)).ok());
  ASSERT_TRUE(db.NewObject(A("john"), {A("Employee")}).ok());
  const AttrValue* inherited = db.GetAttribute(A("john"), A("LegCount"));
  ASSERT_NE(inherited, nullptr);
  EXPECT_EQ(inherited->scalar(), Oid::Int(2));
  // A local value overrides the default.
  ASSERT_TRUE(db.SetScalar(A("john"), A("LegCount"), Oid::Int(1)).ok());
  EXPECT_EQ(db.GetAttribute(A("john"), A("LegCount"))->scalar(), Oid::Int(1));
  // The nearest class wins over a farther one.
  ASSERT_TRUE(db.SetScalar(A("Employee"), A("Badge"), Oid::Int(7)).ok());
  ASSERT_TRUE(db.SetScalar(A("Person"), A("Badge"), Oid::Int(9)).ok());
  EXPECT_EQ(db.GetAttribute(A("john"), A("Badge"))->scalar(), Oid::Int(7));
}

TEST(DatabaseTest, ExtentOfLiteralClassesUsesActiveDomain) {
  Database db;
  ASSERT_TRUE(db.DeclareClass(A("Person")).ok());
  ASSERT_TRUE(db.NewObject(A("john"), {A("Person")}).ok());
  ASSERT_TRUE(db.SetScalar(A("john"), A("Age"), Oid::Int(30)).ok());
  ASSERT_TRUE(db.SetScalar(A("john"), A("Name"), Oid::String("john")).ok());
  OidSet numerals = db.Extent(builtin::Numeral());
  EXPECT_TRUE(numerals.Contains(Oid::Int(30)));
  OidSet strings = db.Extent(builtin::String());
  EXPECT_TRUE(strings.Contains(Oid::String("john")));
  // Object extent covers individuals, including literals in use.
  OidSet objects = db.Extent(builtin::Object());
  EXPECT_TRUE(objects.Contains(A("john")));
  EXPECT_TRUE(objects.Contains(Oid::Int(30)));
}

TEST(DatabaseTest, VersionBumpsOnMutation) {
  Database db;
  uint64_t v0 = db.version();
  ASSERT_TRUE(db.DeclareClass(A("Person")).ok());
  EXPECT_GT(db.version(), v0);
}

TEST(CatalogTest, SchemaBrowsingHelpers) {
  Database db;
  ASSERT_TRUE(db.DeclareClass(A("Person")).ok());
  ASSERT_TRUE(db.DeclareAttribute(A("Person"), A("Name"), builtin::String(),
                                  false).ok());
  ASSERT_TRUE(db.DeclareClass(A("Employee"), {A("Person")}).ok());
  ASSERT_TRUE(db.DeclareAttribute(A("Employee"), A("Salary"),
                                  builtin::Numeral(), false).ok());
  OidSet attrs = catalog::AttributesOf(db, A("Employee"));
  EXPECT_TRUE(attrs.Contains(A("Name")));  // structurally inherited
  EXPECT_TRUE(attrs.Contains(A("Salary")));
  auto classes = catalog::ClassesDeclaring(db, A("Name"));
  ASSERT_EQ(classes.size(), 1u);
  EXPECT_EQ(classes[0], A("Person"));
  EXPECT_TRUE(catalog::ClassUniverse(db).Contains(A("Employee")));
  EXPECT_TRUE(catalog::MethodNameUniverse(db).Contains(A("Salary")));
  EXPECT_FALSE(catalog::DumpSchema(db).empty());
}

}  // namespace
}  // namespace xsql
