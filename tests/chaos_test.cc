// The chaos stress sweep: many seeds × concurrent retrying clients
// through a fault-injected transport (drops, delays, truncations,
// resets, in both directions), asserting the exactly-once contract
// afterwards:
//
//   * every acknowledged mutation appears in the durable history
//     exactly once;
//   * every unacknowledged mutation appears at most once;
//   * the recovered database equals a serial replay of the history;
//   * a mid-sweep crash (simulated process kill inside group commit)
//     plus post-recovery retries of each client's unresolved statement
//     preserves all of the above.
//
// Seed count scales with XSQL_CHAOS_SEEDS (default 24 fault seeds plus
// a crash-mode sweep); ci.sh bounds it for the TSan build.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/fault.h"
#include "server/client.h"
#include "server/server.h"
#include "storage/dedup.h"
#include "storage/recovery.h"
#include "storage/snapshot.h"
#include "storage/wal.h"

namespace xsql {
namespace server {
namespace {

using storage::DurableDatabase;
using storage::Wal;

constexpr int kClientThreads = 4;
constexpr int kStatementsPerThread = 5;

int SeedBudget(int fallback) {
  const char* env = std::getenv("XSQL_CHAOS_SEEDS");
  if (env == nullptr || *env == '\0') return fallback;
  int n = std::atoi(env);
  return n < 1 ? 1 : n;
}

/// What one client thread observed during a sweep.
struct ThreadLog {
  std::vector<std::string> acked_mutations;
  std::vector<std::string> attempted_mutations;
  std::string last_text;  // last statement whose fate may be unresolved
  uint64_t last_seq = 0;
  bool sent_anything = false;
};

class ChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    root_ = ::testing::TempDir() + "/xsql_chaos_" + info->name();
    std::filesystem::remove_all(root_);
    std::filesystem::create_directories(root_);
  }

  void TearDown() override {
    FaultInjector::Global().Disarm();
    std::filesystem::remove_all(root_);
  }

  std::string SeedDir(int seed) {
    return root_ + "/seed" + std::to_string(seed);
  }

  static std::unique_ptr<DurableDatabase> OpenWithPrelude(
      const std::string& dir) {
    auto dd = DurableDatabase::Open(dir);
    EXPECT_TRUE(dd.ok()) << dd.status().ToString();
    if (!dd.ok()) return nullptr;
    for (const char* stmt :
         {"ALTER CLASS Person ADD SIGNATURE Name => String",
          "ALTER CLASS Person ADD SIGNATURE Salary => Numeral",
          "UPDATE CLASS Person SET mary.Name = 'mary'",
          "UPDATE CLASS Person SET mary.Salary = 100"}) {
      auto out = (*dd)->Execute(stmt);
      EXPECT_TRUE(out.ok()) << stmt << ": " << out.status().ToString();
      if (!out.ok()) return nullptr;
    }
    return std::move(*dd);
  }

  /// The full decoded statement history of the live generation's WAL.
  static std::vector<std::string> WalHistory(const std::string& dir,
                                             uint64_t gen) {
    auto scan = Wal::ScanFile(DurableDatabase::WalPath(dir, gen));
    EXPECT_TRUE(scan.ok()) << scan.status().ToString();
    std::vector<std::string> texts;
    if (!scan.ok()) return texts;
    for (const std::string& record : scan->records) {
      texts.push_back(storage::DecodeRidPayload(record).second);
    }
    return texts;
  }

  static std::map<std::string, int> Occurrences(
      const std::vector<std::string>& history) {
    std::map<std::string, int> counts;
    for (const std::string& text : history) ++counts[text];
    return counts;
  }

  /// Runs the concurrent client sweep against `port`. When
  /// `crash_after_ms` >= 0, the main thread arms the simulated process
  /// kill that long into the sweep (mid-flight group commits then die).
  void RunClients(int seed, int port,
                  std::vector<std::unique_ptr<RetryingClient>>* clients,
                  std::vector<ThreadLog>* logs, int crash_after_ms,
                  uint64_t crash_budget) {
    clients->clear();
    logs->assign(kClientThreads, ThreadLog{});
    for (int t = 0; t < kClientThreads; ++t) {
      RetryingClientOptions options;
      options.port = port;
      options.timeout_ms = 300;
      options.max_retries = 10;
      options.backoff_base_ms = 5;
      options.backoff_max_ms = 100;
      options.deadline_ms = 15000;
      options.jitter_seed = static_cast<uint64_t>(seed) * 131 + t + 1;
      clients->push_back(
          std::make_unique<RetryingClient>(std::move(options)));
    }
    std::vector<std::thread> threads;
    for (int t = 0; t < kClientThreads; ++t) {
      threads.emplace_back([&, t] {
        RetryingClient& client = *(*clients)[t];
        ThreadLog& log = (*logs)[t];
        int consecutive_failures = 0;
        for (int i = 0; i < kStatementsPerThread; ++i) {
          const bool is_read = (i % 3 == 2);
          const std::string stmt =
              is_read ? "SELECT T WHERE mary.Salary[T]"
                      : "UPDATE CLASS Person SET mary.Salary = " +
                            std::to_string(100000000ull +
                                           static_cast<uint64_t>(seed) *
                                               100000 +
                                           t * 100 + i);
          log.sent_anything = true;
          if (!is_read) log.attempted_mutations.push_back(stmt);
          auto out = client.Execute(stmt);
          log.last_text = stmt;
          log.last_seq = client.last_seq();
          if (out.ok()) {
            consecutive_failures = 0;
            if (!is_read) log.acked_mutations.push_back(stmt);
          } else if (++consecutive_failures >= 2) {
            break;  // the server is gone; the sweep is over for us
          }
        }
      });
    }
    if (crash_after_ms >= 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(crash_after_ms));
      FaultInjector::Global().ArmCrashAtByte(crash_budget);
    }
    for (std::thread& t : threads) t.join();
  }

  /// Asserts exactly-once over the durable history and that recovery
  /// equals a serial replay of it. Returns the recovered database so
  /// crash mode can keep going.
  std::unique_ptr<DurableDatabase> VerifySeed(
      int seed, const std::string& dir,
      const std::vector<ThreadLog>& logs) {
    auto reopened = DurableDatabase::Open(dir);
    EXPECT_TRUE(reopened.ok())
        << "seed " << seed << ": " << reopened.status().ToString();
    if (!reopened.ok()) return nullptr;
    const std::vector<std::string> history =
        WalHistory(dir, (*reopened)->generation());
    const std::map<std::string, int> counts = Occurrences(history);
    for (const ThreadLog& log : logs) {
      for (const std::string& stmt : log.acked_mutations) {
        auto it = counts.find(stmt);
        EXPECT_TRUE(it != counts.end() && it->second == 1)
            << "seed " << seed << ": acked statement applied "
            << (it == counts.end() ? 0 : it->second) << " times: "
            << stmt;
      }
      for (const std::string& stmt : log.attempted_mutations) {
        auto it = counts.find(stmt);
        EXPECT_LE(it == counts.end() ? 0 : it->second, 1)
            << "seed " << seed << ": statement applied twice: " << stmt;
      }
    }
    // Recovery == serial replay of the durable history into a fresh
    // database (the history IS the acked prefix plus at most the
    // in-doubt tail, each exactly once).
    const std::string replay_dir = dir + "_replay";
    std::filesystem::remove_all(replay_dir);
    auto replayed = DurableDatabase::Open(replay_dir);
    EXPECT_TRUE(replayed.ok()) << replayed.status().ToString();
    if (replayed.ok()) {
      for (const std::string& text : history) {
        auto out = (*replayed)->Execute(text);
        EXPECT_TRUE(out.ok())
            << "seed " << seed << " replay: " << text << ": "
            << out.status().ToString();
      }
      EXPECT_EQ(storage::SaveSnapshot((*reopened)->db()),
                storage::SaveSnapshot((*replayed)->db()))
          << "seed " << seed
          << ": recovered state != serial replay of the WAL history";
    }
    std::filesystem::remove_all(replay_dir);
    return std::move(*reopened);
  }

  std::string root_;
};

TEST_F(ChaosTest, FaultSweepIsExactlyOnce) {
  const int seeds = SeedBudget(24);
  for (int seed = 0; seed < seeds; ++seed) {
    const std::string dir = SeedDir(seed);
    auto dd = OpenWithPrelude(dir);
    ASSERT_NE(dd, nullptr) << "seed " << seed;
    ServerOptions options;
    options.io_timeout_ms = 2000;
    auto server = Server::Start(dd.get(), options);
    ASSERT_TRUE(server.ok()) << server.status().ToString();

    // Both directions, all four fault kinds, seeded.
    FaultInjector::Global().ArmNet(static_cast<uint64_t>(seed) + 1,
                                   /*permille=*/50, kNetAll,
                                   /*max_delay_ms=*/20);
    std::vector<std::unique_ptr<RetryingClient>> clients;
    std::vector<ThreadLog> logs;
    RunClients(seed, (*server)->port(), &clients, &logs,
               /*crash_after_ms=*/-1, 0);
    FaultInjector::Global().Disarm();
    (*server)->Shutdown();
    server->reset();

    const std::string live = storage::SaveSnapshot(dd->db());
    const bool wedged = dd->wedged();
    dd.reset();
    auto recovered = VerifySeed(seed, dir, logs);
    ASSERT_NE(recovered, nullptr);
    if (!wedged) {
      // No crash: the recovered state must equal what the live server
      // had when the sweep ended.
      EXPECT_EQ(storage::SaveSnapshot(recovered->db()), live)
          << "seed " << seed;
    }
    recovered.reset();
    std::filesystem::remove_all(dir);
  }
}

TEST_F(ChaosTest, MidSweepCrashThenRetryIsExactlyOnce) {
  const int seeds = std::max(4, SeedBudget(24) / 3);
  for (int seed = 0; seed < seeds; ++seed) {
    const std::string dir = SeedDir(seed);
    auto dd = OpenWithPrelude(dir);
    ASSERT_NE(dd, nullptr) << "seed " << seed;
    auto server = Server::Start(dd.get(), ServerOptions{});
    ASSERT_TRUE(server.ok()) << server.status().ToString();

    FaultInjector::Global().ArmNet(static_cast<uint64_t>(seed) + 7001,
                                   /*permille=*/40, kNetAll,
                                   /*max_delay_ms=*/15);
    std::vector<std::unique_ptr<RetryingClient>> clients;
    std::vector<ThreadLog> logs;
    // The kill lands a seeded number of persistence units into the
    // sweep: mid-WAL-record, mid-fsync, wherever the budget runs out.
    RunClients(seed, (*server)->port(), &clients, &logs,
               /*crash_after_ms=*/30 + (seed % 5) * 25,
               /*crash_budget=*/1 + (static_cast<uint64_t>(seed) * 37) % 200);
    FaultInjector::Global().Disarm();
    (*server)->Shutdown();
    server->reset();
    dd.reset();

    // Recovery truncates any torn tail and rebuilds the dedup table.
    auto recovered = VerifySeed(seed, dir, logs);
    ASSERT_NE(recovered, nullptr);

    // The survivors reconnect to a fresh server over the recovered
    // database and re-send their unresolved last statement with the
    // SAME sequence number: committed ones must dedup (stay
    // exactly-once), uncommitted ones must apply now, once.
    auto server2 = Server::Start(recovered.get(), ServerOptions{});
    ASSERT_TRUE(server2.ok()) << server2.status().ToString();
    for (int t = 0; t < kClientThreads; ++t) {
      ThreadLog& log = logs[t];
      if (!log.sent_anything) continue;
      clients[t]->set_port((*server2)->port());
      auto out = clients[t]->ExecuteSeq(log.last_seq, log.last_text);
      EXPECT_TRUE(out.ok()) << "seed " << seed << " thread " << t << ": "
                            << out.status().ToString();
    }
    (*server2)->Shutdown();
    server2->reset();

    // Post-retry, the whole history must still be exactly-once.
    const std::vector<std::string> history =
        WalHistory(dir, recovered->generation());
    const std::map<std::string, int> counts = Occurrences(history);
    for (const ThreadLog& log : logs) {
      for (const std::string& stmt : log.attempted_mutations) {
        auto it = counts.find(stmt);
        EXPECT_LE(it == counts.end() ? 0 : it->second, 1)
            << "seed " << seed << ": applied twice after crash+retry: "
            << stmt;
      }
      for (const std::string& stmt : log.acked_mutations) {
        auto it = counts.find(stmt);
        EXPECT_TRUE(it != counts.end() && it->second == 1)
            << "seed " << seed << ": acked statement not exactly-once "
            << "after crash+retry: " << stmt;
      }
      // The re-sent last statement resolved, so it is durable now.
      if (!log.last_text.empty() &&
          log.last_text.rfind("UPDATE", 0) == 0) {
        auto it = counts.find(log.last_text);
        EXPECT_TRUE(it != counts.end() && it->second == 1)
            << "seed " << seed << ": retried statement missing or "
            << "duplicated: " << log.last_text;
      }
    }
    recovered.reset();
    std::filesystem::remove_all(dir);
  }
}

}  // namespace
}  // namespace server
}  // namespace xsql
