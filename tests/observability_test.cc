// The observability layer: metrics registry correctness, span-tree
// shape for a fixed paper query, EXPLAIN / EXPLAIN ANALYZE / SYSTEM
// METRICS statements, the slow-query log, and the durability layer's
// diagnostic exemptions. Experiment id: B12 (overhead numbers live in
// bench_paper_queries).
#include <gtest/gtest.h>

#include <filesystem>

#include "eval/session.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/recovery.h"
#include "storage/snapshot.h"
#include "workload/fig1_schema.h"
#include "workload/generator.h"

namespace xsql {
namespace {

// Fragment (17) of the paper — the EXPLAIN ANALYZE acceptance query.
constexpr const char* kFragment17 =
    "SELECT X FROM Vehicle X "
    "WHERE X.Manufacturer[M] and M.President.OwnedVehicles[X]";

class ObservabilityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(workload::BuildFig1Schema(&db_).ok());
    workload::WorkloadParams params;
    auto stats = workload::GenerateFig1Data(&db_, params);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    session_ = std::make_unique<Session>(&db_);
  }

  /// The relation of an EXPLAIN-style statement as one string per row.
  std::vector<std::string> Lines(const std::string& statement) {
    auto out = session_->Execute(statement);
    EXPECT_TRUE(out.ok()) << statement << "\n -> "
                          << out.status().ToString();
    std::vector<std::string> lines;
    if (!out.ok()) return lines;
    for (const auto& row : out->relation.rows()) {
      lines.push_back(row[0].str());
    }
    return lines;
  }

  Database db_;
  std::unique_ptr<Session> session_;
};

// ---------------------------------------------------------------------
// MetricsRegistry correctness
// ---------------------------------------------------------------------

TEST(MetricsRegistryTest, CounterAndGaugeBasics) {
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.GetCounter("test.counter");
  c.Inc();
  c.Inc(41);
  EXPECT_EQ(c.value(), 42u);
  // Same name, same object: registration is idempotent.
  EXPECT_EQ(&reg.GetCounter("test.counter"), &c);

  obs::Gauge& g = reg.GetGauge("test.gauge");
  g.Set(7);
  g.Add(-3);
  EXPECT_EQ(g.value(), 4);

  std::string text = reg.ToText();
  EXPECT_NE(text.find("test.counter counter value=42"), std::string::npos)
      << text;
  EXPECT_NE(text.find("test.gauge gauge value=4"), std::string::npos)
      << text;
}

TEST(MetricsRegistryTest, HistogramBucketsAndQuantiles) {
  obs::MetricsRegistry reg;
  obs::Histogram& h = reg.GetHistogram("test.hist");
  uint64_t sum = 0;
  for (uint64_t v = 1; v <= 1000; ++v) {
    h.Observe(v);
    sum += v;
  }
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_EQ(h.sum(), sum);
  // bit_width buckets: values 512..1000 land in bucket 10.
  EXPECT_EQ(h.bucket(10), 489u);
  EXPECT_EQ(h.bucket(1), 1u);  // just the value 1
  // Quantiles are bucket upper bounds: monotone, ordered, and within
  // 2x of the true quantile.
  EXPECT_LE(h.Quantile(0.5), h.Quantile(0.99));
  EXPECT_EQ(h.Quantile(0.5), 511u);   // true p50 = 500, bucket [256,511]
  EXPECT_EQ(h.Quantile(0.99), 1023u);  // true p99 = 990, bucket [512,1023]
  EXPECT_EQ(h.Quantile(0.0), 1u);     // the minimum observation's bucket
}

TEST(MetricsRegistryTest, JsonDumpIsWellFormedEnough) {
  obs::MetricsRegistry reg;
  reg.GetCounter("a.count").Inc(3);
  reg.GetHistogram("b.hist").Observe(5);
  std::string json = reg.ToJson();
  EXPECT_NE(json.find("\"a.count\": {\"type\": \"counter\", \"value\": 3"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"b.hist\""), std::string::npos);
  EXPECT_NE(json.find("\"buckets\": {\"3\": 1}"), std::string::npos) << json;
  // Crude structural check: braces balance.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST_F(ObservabilityTest, MetricsFrozenWhileDisabled) {
  // Warm every call site once so lazy registration cannot change the
  // dump between the two snapshots.
  ASSERT_TRUE(session_->Query(kFragment17).ok());
  std::string before = obs::MetricsRegistry::Global().ToText();
  obs::SetMetricsEnabled(false);
  ASSERT_TRUE(session_->Query(kFragment17).ok());
  ASSERT_TRUE(session_->Execute("SYSTEM METRICS").ok());
  std::string frozen = obs::MetricsRegistry::Global().ToText();
  obs::SetMetricsEnabled(true);
  EXPECT_EQ(before, frozen);
  // Re-enabled: the very next statement moves the counters again.
  ASSERT_TRUE(session_->Query(kFragment17).ok());
  EXPECT_NE(obs::MetricsRegistry::Global().ToText(), frozen);
}

// ---------------------------------------------------------------------
// Trace spans
// ---------------------------------------------------------------------

TEST_F(ObservabilityTest, SpanTreeGoldenShapeForFragment17) {
  obs::Tracer tracer;
  {
    obs::ScopedTracer install(&tracer);
    auto rel = session_->Query(kFragment17);
    ASSERT_TRUE(rel.ok());
  }
  // Golden structure (timings stripped): the join order the greedy
  // ready-first driver picks on the Figure 1 corpus is deterministic.
  // `parse`, `typecheck`, and `plan` are siblings of `statement`, not
  // children — preparation happens before the statement's guard context
  // (and its span) is armed, and a cache hit skips all three.
  const char* kGolden =
      "parse\n"
      "typecheck\n"
      "plan SELECT X FROM Vehicle X WHERE (X.Manufacturer[M] and "
      "M.President.OwnedVehicles[X])\n"
      "statement SELECT X FROM Vehicle X WHERE (X.Manufacturer[M] and "
      "M.President.OwnedVehicles[X])\n"
      "  eval/query SELECT X FROM Vehicle X WHERE (X.Manufacturer[M] and "
      "M.President.OwnedVehicles[X])\n"
      "    from Vehicle X\n"
      "      conjunct X.Manufacturer[M]\n"
      "        path/enumerate X.Manufacturer[M]\n"
      "          conjunct M.President.OwnedVehicles[X]\n"
      "            path/enumerate M.President.OwnedVehicles[X]\n";
  EXPECT_EQ(tracer.Render(/*include_stats=*/false), kGolden);
}

TEST_F(ObservabilityTest, SpanCardinalitiesSumConsistently) {
  obs::Tracer tracer;
  size_t actual_rows = 0;
  {
    obs::ScopedTracer install(&tracer);
    auto rel = session_->Query(kFragment17);
    ASSERT_TRUE(rel.ok());
    actual_rows = rel->size();
  }
  // Root children: the parse span and the statement span.
  const obs::SpanNode* statement_ptr = nullptr;
  for (const auto& child : tracer.root().children) {
    if (child->name == "statement") statement_ptr = child.get();
  }
  ASSERT_NE(statement_ptr, nullptr);
  const obs::SpanNode& statement = *statement_ptr;
  EXPECT_EQ(statement.rows, actual_rows);
  // eval/query reports the same cardinality as the relation, and the
  // FROM scan feeding it can only produce at least that many bindings.
  const obs::SpanNode* eval = nullptr;
  for (const auto& child : statement.children) {
    if (child->name == "eval/query") eval = child.get();
  }
  ASSERT_NE(eval, nullptr);
  EXPECT_EQ(eval->rows, actual_rows);
  ASSERT_EQ(eval->children.size(), 1u);
  const obs::SpanNode& from = *eval->children[0];
  EXPECT_EQ(from.name, "from");
  EXPECT_GE(from.rows, actual_rows);
  // The inner conjunct runs once per binding the outer one produced.
  const obs::SpanNode& outer = *from.children[0];
  ASSERT_EQ(outer.name, "conjunct");
  const obs::SpanNode& outer_path = *outer.children[0];
  ASSERT_EQ(outer_path.children.size(), 1u);
  EXPECT_EQ(outer_path.children[0]->count, outer.rows);
}

TEST_F(ObservabilityTest, TracerAggregatesRepeatedStatements) {
  obs::Tracer tracer;
  {
    obs::ScopedTracer install(&tracer);
    ASSERT_TRUE(session_->Query(kFragment17).ok());
    ASSERT_TRUE(session_->Query(kFragment17).ok());
  }
  // Same (name, detail) merges: one node per distinct operator, not a
  // new sibling per execution — the property that keeps EXPLAIN ANALYZE
  // output bounded by distinct operators. The statement span merges to
  // count 2; parse/typecheck/plan ran only once, because the second
  // execution was a plan-cache hit that skipped preparation entirely.
  ASSERT_EQ(tracer.root().children.size(), 4u);
  for (const auto& child : tracer.root().children) {
    if (child->name == "statement") {
      EXPECT_EQ(child->count, 2u) << child->name;
    } else {
      EXPECT_EQ(child->count, 1u) << child->name;
    }
  }
}

TEST(SpanTest, InertWithoutTracer) {
  // No tracer installed: spans must not record anywhere (and must not
  // crash); this is the no-sink fast path benchmarked in B12.
  ASSERT_EQ(obs::CurrentTracer(), nullptr);
  obs::Span span("test/inert", [] { return std::string("detail"); });
  EXPECT_FALSE(span.active());
  span.AddRows(5);
  span.AddSteps(5);
}

// ---------------------------------------------------------------------
// EXPLAIN ANALYZE / EXPLAIN / SYSTEM METRICS statements
// ---------------------------------------------------------------------

TEST_F(ObservabilityTest, ExplainAnalyzeRowCountMatchesQuery) {
  for (const char* query :
       {kFragment17,
        "SELECT Y FROM Person X WHERE X.Residence[Y].City['newyork']",
        "SELECT X.Name, W.Salary FROM Company X "
        "WHERE X.Divisions.Employees[W]"}) {
    auto rel = session_->Query(query);
    ASSERT_TRUE(rel.ok()) << query;
    std::vector<std::string> lines =
        Lines(std::string("EXPLAIN ANALYZE ") + query);
    std::string expected = "rows  : " + std::to_string(rel->size());
    EXPECT_TRUE(std::find(lines.begin(), lines.end(), expected) !=
                lines.end())
        << query << " -> missing '" << expected << "'";
    // The span tree itself is in the output, with the statement node
    // reporting the same cardinality.
    bool found_statement = false;
    for (const std::string& line : lines) {
      if (line.rfind("statement ", 0) == 0 &&
          line.find("rows=" + std::to_string(rel->size())) !=
              std::string::npos) {
        found_statement = true;
      }
    }
    EXPECT_TRUE(found_statement || rel->size() == 0) << query;
  }
}

TEST_F(ObservabilityTest, ExplainAnalyzeLeavesNoTrace) {
  // An OID FUNCTION query creates objects when executed; analyzing it
  // must not (the execution phase is rolled back).
  const char* creating =
      "SELECT CName = X.Name FROM Company X OID FUNCTION OF X";
  std::string before = storage::SaveSnapshot(db_);
  std::vector<std::string> lines =
      Lines(std::string("EXPLAIN ANALYZE ") + creating);
  EXPECT_FALSE(lines.empty());
  EXPECT_EQ(storage::SaveSnapshot(db_), before);
  // ... while actually executing it does create objects.
  auto executed = session_->Execute(creating);
  ASSERT_TRUE(executed.ok());
  EXPECT_TRUE(executed->objects_created);
  EXPECT_NE(storage::SaveSnapshot(db_), before);
}

TEST_F(ObservabilityTest, ExplainVariantsAreGuardExempt) {
  SessionOptions tiny;
  tiny.limits.max_steps = 1;
  Session guarded(&db_, tiny);
  // The real query trips the step budget immediately...
  auto direct = guarded.Query(kFragment17);
  ASSERT_FALSE(direct.ok());
  EXPECT_EQ(direct.status().code(), StatusCode::kResourceExhausted);
  // ...plain EXPLAIN and SYSTEM METRICS never evaluate, so they are
  // exempt and still work under the same budget...
  EXPECT_TRUE(guarded.Execute(std::string("EXPLAIN ") + kFragment17).ok());
  EXPECT_TRUE(guarded.Execute("SYSTEM METRICS").ok());
  // ...and EXPLAIN ANALYZE *executes*, so its execution phase stays
  // guarded: same budget, same trip.
  auto analyzed =
      guarded.Execute(std::string("EXPLAIN ANALYZE ") + kFragment17);
  ASSERT_FALSE(analyzed.ok());
  EXPECT_EQ(analyzed.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(ObservabilityTest, PlainExplainMatchesExplainApi) {
  auto api = session_->Explain(kFragment17);
  ASSERT_TRUE(api.ok());
  std::vector<std::string> lines =
      Lines(std::string("EXPLAIN ") + kFragment17);
  ASSERT_FALSE(lines.empty());
  // Every rendered line comes verbatim from the Explain() report (the
  // relation has set semantics, so duplicate report lines may collapse).
  for (const std::string& line : lines) {
    EXPECT_NE(api->find(line), std::string::npos) << line;
  }
  EXPECT_NE(api->find(lines.front()), std::string::npos);
}

TEST_F(ObservabilityTest, SystemMetricsRelation) {
  ASSERT_TRUE(session_->Query(kFragment17).ok());
  auto out = session_->Execute("SYSTEM METRICS");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->relation.columns(),
            (std::vector<std::string>{"metric", "type", "value"}));
  bool found_statements = false;
  for (const auto& row : out->relation.rows()) {
    ASSERT_EQ(row.size(), 3u);
    EXPECT_TRUE(row[2].is_int()) << row[0].ToString();
    if (row[0].str() == "xsql.session.statements") {
      found_statements = true;
      EXPECT_GE(row[2].int_value(), 1);
      EXPECT_EQ(row[1].str(), "counter");
    }
  }
  EXPECT_TRUE(found_statements);
}

// ---------------------------------------------------------------------
// Slow-query log
// ---------------------------------------------------------------------

TEST_F(ObservabilityTest, SlowQueryLogOffByDefault) {
  ASSERT_TRUE(session_->Query(kFragment17).ok());
  EXPECT_TRUE(session_->slow_query_log().empty());
}

TEST_F(ObservabilityTest, SlowQueryLogTriggersOnThreshold) {
  // 1 µs threshold: any parsed-and-evaluated statement qualifies.
  session_->mutable_options().slow_query_us = 1;
  ASSERT_TRUE(session_->Query(kFragment17).ok());
  ASSERT_EQ(session_->slow_query_log().size(), 1u);
  const SlowQueryEntry entry = session_->slow_query_log()[0];
  EXPECT_EQ(entry.statement, kFragment17);
  EXPECT_TRUE(entry.ok);
  EXPECT_GE(entry.wall_us, 1u);
  // Failing statements are logged too, marked not-ok.
  ASSERT_FALSE(session_->Execute("SELECT FROM WHERE").ok());
  ASSERT_EQ(session_->slow_query_log().size(), 2u);
  EXPECT_FALSE(session_->slow_query_log()[1].ok);
  // An unreachable threshold logs nothing further.
  session_->mutable_options().slow_query_us = ~0ull;
  ASSERT_TRUE(session_->Query(kFragment17).ok());
  EXPECT_EQ(session_->slow_query_log().size(), 2u);
  session_->ClearSlowQueryLog();
  EXPECT_TRUE(session_->slow_query_log().empty());
}

// ---------------------------------------------------------------------
// Durability interplay
// ---------------------------------------------------------------------

TEST(ObservabilityDurabilityTest, DiagnosticsNeverReachTheWal) {
  std::string dir = ::testing::TempDir() + "/xsql_obs_diag_test";
  std::filesystem::remove_all(dir);
  auto dd = storage::DurableDatabase::Open(dir);
  ASSERT_TRUE(dd.ok()) << dd.status().ToString();
  for (const char* stmt :
       {"ALTER CLASS Person ADD SIGNATURE Name => String",
        "UPDATE CLASS Person SET mary.Name = 'mary'"}) {
    auto out = (*dd)->Execute(stmt);
    ASSERT_TRUE(out.ok()) << stmt << ": " << out.status().ToString();
  }
  const uint64_t wal_before = (*dd)->wal_records();
  std::string snap_before = storage::SaveSnapshot((*dd)->db());
  // A diagnostic that *mutates while analyzing*: the OID FUNCTION query
  // creates an object mid-analysis, the rollback withdraws it, and the
  // WAL must not record any of it.
  auto analyzed = (*dd)->Execute(
      "EXPLAIN ANALYZE SELECT N = X.Name FROM Person X "
      "OID FUNCTION OF X WHERE X.Name[N]");
  ASSERT_TRUE(analyzed.ok()) << analyzed.status().ToString();
  EXPECT_TRUE((*dd)->Execute("SYSTEM METRICS").ok());
  EXPECT_TRUE(
      (*dd)->Execute("EXPLAIN SELECT T WHERE mary.Name[T]").ok());
  EXPECT_EQ((*dd)->wal_records(), wal_before);
  EXPECT_EQ(storage::SaveSnapshot((*dd)->db()), snap_before);
  // Reopening replays only the real statements.
  dd->reset();
  auto again = storage::DurableDatabase::Open(dir);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(storage::SaveSnapshot((*again)->db()), snap_before);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace xsql
