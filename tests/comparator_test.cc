// Comparator edge cases: IEEE-754 NaN and infinities through the
// ordered comparators, and quantified comparisons mixing quantifiers
// over sets containing unordered values. Regression suite for the
// CompareOids NaN bug (NaN used to compare equal to everything the
// three-way compare fell through on).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "eval/comparator.h"
#include "oid/oid.h"

namespace xsql {
namespace {

const double kNaN = std::numeric_limits<double>::quiet_NaN();
const double kInf = std::numeric_limits<double>::infinity();

TEST(CompareOidsTest, NaNIsUnorderedAgainstEverything) {
  // The regression: the old three-way compare returned 0 ("equal") for
  // NaN pairs because neither < nor > held.
  EXPECT_EQ(CompareOids(Oid::Real(kNaN), Oid::Real(kNaN)), std::nullopt);
  EXPECT_EQ(CompareOids(Oid::Real(kNaN), Oid::Real(1.0)), std::nullopt);
  EXPECT_EQ(CompareOids(Oid::Real(1.0), Oid::Real(kNaN)), std::nullopt);
  EXPECT_EQ(CompareOids(Oid::Real(kNaN), Oid::Int(7)), std::nullopt);
  EXPECT_EQ(CompareOids(Oid::Int(7), Oid::Real(kNaN)), std::nullopt);
}

TEST(CompareOidsTest, NaNSatisfiesNoOrderedRelation) {
  for (CompOp op :
       {CompOp::kLt, CompOp::kLe, CompOp::kGt, CompOp::kGe}) {
    EXPECT_FALSE(OidsRelate(Oid::Real(kNaN), op, Oid::Real(kNaN)));
    EXPECT_FALSE(OidsRelate(Oid::Real(kNaN), op, Oid::Real(0.0)));
    EXPECT_FALSE(OidsRelate(Oid::Real(0.0), op, Oid::Real(kNaN)));
  }
}

TEST(CompareOidsTest, EqualityIsOidIdentityNotIeee) {
  // `=` in the language is oid identity, not IEEE float equality: the
  // NaN oid IS itself (Oid::Compare is a total order with NaN sorting
  // after every ordered real), but it equals no other real. The old
  // Oid::Compare fell through to 0 for NaN-vs-anything, which made
  // NaN equal to *every* real and merged them on set insertion.
  EXPECT_TRUE(OidsRelate(Oid::Real(kNaN), CompOp::kEq, Oid::Real(kNaN)));
  EXPECT_FALSE(OidsRelate(Oid::Real(kNaN), CompOp::kEq, Oid::Real(0.0)));
  EXPECT_FALSE(OidsRelate(Oid::Real(0.0), CompOp::kEq, Oid::Real(kNaN)));
  EXPECT_TRUE(OidsRelate(Oid::Real(kNaN), CompOp::kNe, Oid::Real(1.0)));
  EXPECT_FALSE(OidsRelate(Oid::Real(kNaN), CompOp::kNe, Oid::Real(kNaN)));
  // A set keeps NaN apart from ordered reals it used to swallow.
  OidSet set;
  set.Insert(Oid::Real(kNaN));
  set.Insert(Oid::Real(0.0));
  EXPECT_EQ(set.size(), 2u);
}

TEST(CompareOidsTest, InfinitiesAreOrdered) {
  EXPECT_EQ(CompareOids(Oid::Real(-kInf), Oid::Real(kInf)), -1);
  EXPECT_EQ(CompareOids(Oid::Real(kInf), Oid::Real(-kInf)), 1);
  EXPECT_EQ(CompareOids(Oid::Real(kInf), Oid::Real(kInf)), 0);
  EXPECT_EQ(CompareOids(Oid::Real(-kInf), Oid::Real(-kInf)), 0);
  EXPECT_EQ(CompareOids(Oid::Real(kInf), Oid::Int(1)), 1);
  EXPECT_EQ(CompareOids(Oid::Int(1), Oid::Real(-kInf)), 1);
  // Infinity is ordered; NaN against infinity is not.
  EXPECT_EQ(CompareOids(Oid::Real(kInf), Oid::Real(kNaN)), std::nullopt);
}

TEST(CompareOidsTest, IntsAndRealsStillMix) {
  EXPECT_EQ(CompareOids(Oid::Int(2), Oid::Real(2.0)), 0);
  EXPECT_EQ(CompareOids(Oid::Int(2), Oid::Real(2.5)), -1);
  EXPECT_EQ(CompareOids(Oid::Real(3.5), Oid::Int(3)), 1);
}

TEST(EvalComparisonTest, SomeQuantifierSkipsNaNElements) {
  // {NaN, 30} some> 20: the NaN pair is unsatisfied, the 30 pair
  // satisfies — the comparison holds through the ordered element.
  OidSet lhs;
  lhs.Insert(Oid::Real(kNaN));
  lhs.Insert(Oid::Real(30.0));
  OidSet rhs;
  rhs.Insert(Oid::Real(20.0));
  EXPECT_TRUE(EvalComparison(lhs, Quant::kSome, CompOp::kGt, Quant::kNone,
                             rhs));
  // {NaN} some> 20 has no satisfying pair at all.
  OidSet only_nan;
  only_nan.Insert(Oid::Real(kNaN));
  EXPECT_FALSE(EvalComparison(only_nan, Quant::kSome, CompOp::kGt,
                              Quant::kNone, rhs));
}

TEST(EvalComparisonTest, AllQuantifierFailsOnNaNElements) {
  // {NaN, 30} all> 20: the NaN pair fails, so the universal fails —
  // under the old "NaN equals everything" bug comparators could let
  // unordered elements slip through quantifiers.
  OidSet lhs;
  lhs.Insert(Oid::Real(kNaN));
  lhs.Insert(Oid::Real(30.0));
  OidSet rhs;
  rhs.Insert(Oid::Real(20.0));
  EXPECT_FALSE(
      EvalComparison(lhs, Quant::kAll, CompOp::kGt, Quant::kNone, rhs));
}

TEST(EvalComparisonTest, MixedQuantifiersWithInfinities) {
  OidSet lhs;  // {-inf, 0}
  lhs.Insert(Oid::Real(-kInf));
  lhs.Insert(Oid::Real(0.0));
  OidSet rhs;  // {1, +inf}
  rhs.Insert(Oid::Real(1.0));
  rhs.Insert(Oid::Real(kInf));
  // some<all: 0 is below every element of the right side.
  EXPECT_TRUE(
      EvalComparison(lhs, Quant::kSome, CompOp::kLt, Quant::kAll, rhs));
  // all<some: every left element is below +inf.
  EXPECT_TRUE(
      EvalComparison(lhs, Quant::kAll, CompOp::kLt, Quant::kSome, rhs));
  // all>all is false: -inf exceeds nothing.
  EXPECT_FALSE(
      EvalComparison(lhs, Quant::kAll, CompOp::kGt, Quant::kAll, rhs));
  // A NaN on the right poisons universals over the right side...
  rhs.Insert(Oid::Real(kNaN));
  EXPECT_FALSE(
      EvalComparison(lhs, Quant::kSome, CompOp::kLt, Quant::kAll, rhs));
  // ...but existentials still find the ordered witnesses.
  EXPECT_TRUE(
      EvalComparison(lhs, Quant::kAll, CompOp::kLt, Quant::kSome, rhs));
}

TEST(EvalComparisonTest, UnquantifiedSidesStillRequireSingletons) {
  OidSet two;
  two.Insert(Oid::Real(1.0));
  two.Insert(Oid::Real(2.0));
  OidSet one;
  one.Insert(Oid::Real(1.0));
  EXPECT_FALSE(
      EvalComparison(two, Quant::kNone, CompOp::kLt, Quant::kNone, one));
  EXPECT_FALSE(EvalComparison(OidSet{}, Quant::kNone, CompOp::kEq,
                              Quant::kNone, one));
  EXPECT_TRUE(
      EvalComparison(one, Quant::kNone, CompOp::kEq, Quant::kNone, one));
}

}  // namespace
}  // namespace xsql
