// MVCC snapshot reads: copy-on-write fork isolation at the store layer,
// the snapshot-isolation stress test (latch-free readers must only ever
// observe committed prefixes of the writers' histories — never a torn
// statement), version garbage collection (superseded versions are freed
// at the last pin release, and a long-lived reader bounds the chain
// instead of growing it), and a crash sweep through a commit proving
// the read head never advances past durable state. Run under ASan and
// TSan by ci.sh (labels: mvcc, concurrency).
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/fault.h"
#include "server/concurrency.h"
#include "storage/recovery.h"
#include "storage/snapshot.h"
#include "storage/version.h"
#include "storage/wal.h"
#include "store/database.h"

namespace xsql {
namespace server {
namespace {

using storage::DurableDatabase;
using storage::SaveSnapshot;
using storage::VersionChain;
using storage::Wal;

Oid A(const std::string& name) { return Oid::Atom(name); }

std::vector<std::string> Prelude() {
  return {
      "ALTER CLASS Person ADD SIGNATURE Name => String",
      "ALTER CLASS Person ADD SIGNATURE Salary => Numeral",
      "UPDATE CLASS Person SET mary.Name = 'mary'",
      "UPDATE CLASS Person SET mary.Salary = 100",
  };
}

class MvccTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = ::testing::TempDir() + "/xsql_mvcc_" + info->name();
    std::filesystem::remove_all(dir_);
  }

  void TearDown() override {
    FaultInjector::Global().Disarm();
    std::filesystem::remove_all(dir_);
  }

  std::unique_ptr<DurableDatabase> MustOpen(const std::string& dir) {
    auto dd = DurableDatabase::Open(dir);
    EXPECT_TRUE(dd.ok()) << dd.status().ToString();
    return dd.ok() ? std::move(*dd) : nullptr;
  }

  void MustExecute(DurableDatabase* dd,
                   const std::vector<std::string>& script) {
    for (const std::string& stmt : script) {
      auto out = dd->Execute(stmt);
      ASSERT_TRUE(out.ok()) << stmt << ": " << out.status().ToString();
    }
  }

  std::string dir_;
};

// ------------------------------------------------------ store-layer COW

// A fork is a frozen copy: mutations on the master after the fork are
// invisible to it, byte for byte.
TEST(DatabaseForkTest, MasterMutationsInvisibleToFork) {
  Database db;
  ASSERT_TRUE(db.DeclareClass(A("Person"), {A("Object")}).ok());
  ASSERT_TRUE(db.NewObject(A("mary"), {A("Person")}).ok());
  ASSERT_TRUE(db.SetScalar(A("mary"), A("Age"), Oid::Int(30)).ok());

  std::unique_ptr<Database> fork = db.Fork();
  db.BeginNewEpoch();  // master keeps mutating
  const std::string frozen = SaveSnapshot(*fork);
  EXPECT_EQ(frozen, SaveSnapshot(db));

  // Attribute overwrite, new object, new class, extent change: all four
  // COW granularities (object shard, class node, instance shard, graph).
  ASSERT_TRUE(db.SetScalar(A("mary"), A("Age"), Oid::Int(31)).ok());
  ASSERT_TRUE(db.NewObject(A("john"), {A("Person")}).ok());
  ASSERT_TRUE(db.DeclareClass(A("Robot"), {A("Object")}).ok());
  ASSERT_TRUE(db.AddInstanceOf(A("mary"), A("Robot")).ok());

  EXPECT_EQ(SaveSnapshot(*fork), frozen);
  EXPECT_NE(SaveSnapshot(db), frozen);
  // The fork still answers queries from its frozen state.
  EXPECT_FALSE(fork->IsInstanceOf(A("mary"), A("Robot")));
  EXPECT_EQ(fork->GetObject(A("john")), nullptr);
  EXPECT_EQ(fork->Extent(A("Person")).size(), 1u);
}

// And the other direction: a private fork (EXPLAIN ANALYZE, stale-view
// scratch) can be mutated freely without the master noticing.
TEST(DatabaseForkTest, ForkMutationsInvisibleToMaster) {
  Database db;
  ASSERT_TRUE(db.DeclareClass(A("Person"), {A("Object")}).ok());
  ASSERT_TRUE(db.NewObject(A("mary"), {A("Person")}).ok());
  const std::string before = SaveSnapshot(db);

  std::unique_ptr<Database> fork = db.Fork();
  ASSERT_TRUE(fork->SetScalar(A("mary"), A("Age"), Oid::Int(99)).ok());
  ASSERT_TRUE(fork->NewObject(A("ghost"), {A("Person")}).ok());
  ASSERT_TRUE(fork->RemoveInstanceOf(A("mary"), A("Person")).ok());

  EXPECT_EQ(SaveSnapshot(db), before);
  EXPECT_EQ(db.GetObject(A("ghost")), nullptr);
  EXPECT_TRUE(db.IsInstanceOf(A("mary"), A("Person")));
}

// Forks of forks: each layer isolates from the ones above and below.
TEST(DatabaseForkTest, ChainedForksStayIndependent) {
  Database db;
  ASSERT_TRUE(db.DeclareClass(A("Person"), {A("Object")}).ok());
  ASSERT_TRUE(db.NewObject(A("o1"), {A("Person")}).ok());
  std::unique_ptr<Database> f1 = db.Fork();
  db.BeginNewEpoch();
  ASSERT_TRUE(db.NewObject(A("o2"), {A("Person")}).ok());
  std::unique_ptr<Database> f2 = db.Fork();
  db.BeginNewEpoch();
  ASSERT_TRUE(db.NewObject(A("o3"), {A("Person")}).ok());

  EXPECT_EQ(f1->Extent(A("Person")).size(), 1u);
  EXPECT_EQ(f2->Extent(A("Person")).size(), 2u);
  EXPECT_EQ(db.Extent(A("Person")).size(), 3u);
}

// ------------------------------------------------- snapshot isolation

// The snapshot-isolation stress test. Four writers commit through the
// manager: writer 0 bumps a contended scalar through a strictly
// increasing sequence; writers 1..3 each create a private run of
// sequentially numbered objects, waiting for each ack before issuing
// the next. Four latch-free readers hammer the extent and the scalar
// concurrently and assert, on every single read:
//   (a) the scalar is one committed value — never absent, torn, or
//       outside the issued sequence, and never going backwards between
//       two reads on the same connection (versions install in WAL
//       order);
//   (b) each writer's objects form a CONTIGUOUS PREFIX of its run — an
//       object can never be visible before its predecessor from the
//       same writer, because every version is a committed prefix of the
//       WAL;
//   (c) per-writer visibility never regresses between reads.
// Afterwards, serial replay of the WAL (recovery) must land on the
// exact live state — MVCC must not have weakened serializability.
TEST_F(MvccTest, SnapshotIsolationStress) {
  constexpr int kWriters = 4;
  constexpr int kReaders = 4;
  constexpr int kCommitsPerWriter = 25;
  constexpr int kReadsPerReader = 120;
  auto dd = MustOpen(dir_);
  ASSERT_NE(dd, nullptr);
  MustExecute(dd.get(), Prelude());
  ConcurrencyManager cm(dd.get());

  std::atomic<bool> writers_done{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;

  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      auto sid = cm.CreateSession(SessionOptions{});
      if (!sid.ok()) {
        failures.fetch_add(1);
        return;
      }
      for (int i = 0; i < kCommitsPerWriter; ++i) {
        std::string stmt =
            w == 0 ? "UPDATE CLASS Person SET mary.Salary = " +
                         std::to_string(1000 + i)
                   : "UPDATE CLASS Person SET w" + std::to_string(w) + "_" +
                         std::to_string(i) + ".Salary = " +
                         std::to_string(i);
        if (!cm.Execute(*sid, stmt).ok()) failures.fetch_add(1);
      }
      cm.CloseSession(*sid);
    });
  }

  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&, r] {
      (void)r;
      auto sid = cm.CreateSession(SessionOptions{});
      if (!sid.ok()) {
        failures.fetch_add(1);
        return;
      }
      int64_t last_salary = -1;
      int last_prefix[kWriters] = {0};
      for (int i = 0; i < kReadsPerReader; ++i) {
        // (a) the contended scalar: exactly one committed value, from
        // the issued set, monotone on this connection.
        auto salary = cm.Execute(*sid, "SELECT T WHERE mary.Salary[T]");
        if (!salary.ok() || salary->relation.size() != 1 ||
            !salary->relation.rows()[0][0].is_numeric()) {
          failures.fetch_add(1);
          break;
        }
        const int64_t v = salary->relation.rows()[0][0].numeric_value();
        const bool issued =
            v == 100 || (v >= 1000 && v < 1000 + kCommitsPerWriter);
        if (!issued || v < last_salary) {
          failures.fetch_add(1);
          break;
        }
        last_salary = v;
        // (b) + (c) the extent: per-writer contiguous prefixes that
        // never shrink.
        auto extent = cm.Execute(*sid, "SELECT X FROM Person X");
        if (!extent.ok()) {
          failures.fetch_add(1);
          break;
        }
        std::set<std::string> names;
        for (const auto& row : extent->relation.rows()) {
          names.insert(row[0].ToString());
        }
        for (int w = 1; w < kWriters; ++w) {
          int count = 0;
          while (names.contains("w" + std::to_string(w) + "_" +
                                std::to_string(count))) {
            ++count;
          }
          // Contiguity: nothing from this writer beyond the first gap.
          for (int k = count + 1; k < kCommitsPerWriter; ++k) {
            if (names.contains("w" + std::to_string(w) + "_" +
                               std::to_string(k))) {
              failures.fetch_add(1);
            }
          }
          if (count < last_prefix[w]) failures.fetch_add(1);  // regressed
          last_prefix[w] = count;
        }
        if (writers_done.load() &&
            i + 20 < kReadsPerReader) {  // writers gone: a few more
          i = kReadsPerReader - 20;      // passes, then stop early
        }
      }
      cm.CloseSession(*sid);
    });
  }

  for (int t = 0; t < kWriters; ++t) threads[t].join();
  writers_done.store(true);
  for (size_t t = kWriters; t < threads.size(); ++t) threads[t].join();
  ASSERT_EQ(failures.load(), 0);

  // Serial replay of the WAL lands on the live state, byte for byte.
  auto reopened = MustOpen(dir_);
  ASSERT_NE(reopened, nullptr);
  EXPECT_EQ(SaveSnapshot(reopened->db()), SaveSnapshot(dd->db()));
  // And the final head snapshot IS that state.
  auto head = cm.PinSnapshot();
  ASSERT_NE(head, nullptr);
  EXPECT_EQ(SaveSnapshot(*head->db), SaveSnapshot(dd->db()));
}

// Read-your-own-writes: a commit is visible to the very next read on
// the same connection (install happens before the acknowledgement).
TEST_F(MvccTest, ReadYourOwnWrites) {
  auto dd = MustOpen(dir_);
  ASSERT_NE(dd, nullptr);
  MustExecute(dd.get(), Prelude());
  ConcurrencyManager cm(dd.get());
  auto sid = cm.CreateSession(SessionOptions{});
  ASSERT_TRUE(sid.ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(cm.Execute(*sid, "UPDATE CLASS Person SET mary.Salary = " +
                                     std::to_string(500 + i))
                    .ok());
    auto read = cm.Execute(*sid, "SELECT T WHERE mary.Salary[T]");
    ASSERT_TRUE(read.ok()) << read.status().ToString();
    ASSERT_EQ(read->relation.size(), 1u);
    EXPECT_EQ(read->relation.rows()[0][0].numeric_value(), 500 + i);
  }
}

// ------------------------------------------------------- version GC

// Superseded versions are freed at the last pin release: a pinned
// snapshot keeps exactly its own version alive through arbitrary writer
// churn (bounded memory), frees it on release, and the chain never
// grows beyond pinned + head + the one in flight.
TEST_F(MvccTest, SupersededVersionsFreedAtLastPinRelease) {
  auto dd = MustOpen(dir_);
  ASSERT_NE(dd, nullptr);
  MustExecute(dd.get(), Prelude());
  ConcurrencyManager cm(dd.get());
  auto sid = cm.CreateSession(SessionOptions{});
  ASSERT_TRUE(sid.ok());

  std::shared_ptr<const storage::DatabaseVersion> pin = cm.PinSnapshot();
  ASSERT_NE(pin, nullptr);
  std::weak_ptr<const storage::DatabaseVersion> watch = pin;
  const std::string pinned_state = SaveSnapshot(*pin->db);
  const int64_t base = VersionChain::live_versions();

  // A long reader holds its snapshot while a writer churns 100 commits.
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(cm.Execute(*sid, "UPDATE CLASS Person SET mary.Salary = " +
                                     std::to_string(i))
                    .ok());
    // Bounded: the pinned version + the current head (+ nothing else
    // once the commit returned). Intermediate versions died as they
    // were superseded, regardless of how long we keep reading.
    EXPECT_LE(VersionChain::live_versions(), base + 1)
        << "version chain grew without bound at commit " << i;
    // The pinned snapshot still reads its original state.
    if (i % 25 == 0) EXPECT_EQ(SaveSnapshot(*pin->db), pinned_state);
  }

  // Release the last pin: the superseded version is freed on the spot.
  pin.reset();
  EXPECT_TRUE(watch.expired());
  EXPECT_EQ(VersionChain::live_versions(), base);

  // The head, of course, survived and serves the newest state.
  auto read = cm.Execute(*sid, "SELECT T WHERE mary.Salary[T]");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->relation.rows()[0][0].numeric_value(), 99);
}

// ---------------------------------------------- crash through install

// Sweep a simulated kill through every byte of a commit's WAL append,
// driven through the manager. Whatever byte the crash lands on, the
// read head must still be the last durable version — a reader can never
// observe state that did not survive the crash. Recovery then exposes
// the committed prefix: the full statement iff every byte reached disk.
TEST_F(MvccTest, CrashSweepNeverAdvancesReadHead) {
  FaultInjector& fi = FaultInjector::Global();
  const std::string stmt = "UPDATE CLASS Person SET mary.Salary = 777";
  const uint64_t units = Wal::kRecordHeader + stmt.size();

  // Clean probe run: learn the pre- and post-statement snapshots.
  std::string pre, post;
  {
    auto dd = MustOpen(dir_);
    ASSERT_NE(dd, nullptr);
    MustExecute(dd.get(), Prelude());
    pre = SaveSnapshot(dd->db());
    ASSERT_TRUE(dd->Execute(stmt).ok());
    post = SaveSnapshot(dd->db());
  }
  ASSERT_NE(pre, post);

  for (uint64_t k = 1; k <= units; ++k) {
    SCOPED_TRACE("crash at byte " + std::to_string(k) + " of " +
                 std::to_string(units));
    std::filesystem::remove_all(dir_);
    auto dd = MustOpen(dir_);
    ASSERT_NE(dd, nullptr);
    MustExecute(dd.get(), Prelude());
    ConcurrencyManager cm(dd.get());
    auto sid = cm.CreateSession(SessionOptions{});
    ASSERT_TRUE(sid.ok());

    fi.ArmCrashAtByte(k);
    auto out = cm.Execute(*sid, stmt);
    EXPECT_FALSE(out.ok());
    EXPECT_TRUE(dd->wedged());
    fi.Disarm();

    // The head never moved: even when every byte reached disk, the
    // commit was not acknowledged, so no reader ever saw it.
    auto head = cm.PinSnapshot();
    ASSERT_NE(head, nullptr);
    EXPECT_EQ(SaveSnapshot(*head->db), pre);
    // A wedged instance refuses reads outright (final error).
    EXPECT_FALSE(cm.Execute(*sid, "SELECT X FROM Person X").ok());

    // Recovery exposes whole statements only.
    auto re = DurableDatabase::Open(dir_);
    ASSERT_TRUE(re.ok()) << re.status().ToString();
    EXPECT_EQ(SaveSnapshot((*re)->db()), k < units ? pre : post);
  }
}

// The replica apply path installs versions too: reads on a replica see
// applied batches atomically.
TEST_F(MvccTest, ApplyReplicatedInstallsNewHead) {
  auto dd = MustOpen(dir_);
  ASSERT_NE(dd, nullptr);
  ConcurrencyManager cm(dd.get());
  const uint64_t seq_before = cm.PinSnapshot()->sequence;
  std::vector<std::string> records = Prelude();
  auto n = cm.ApplyReplicated(records);
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  EXPECT_EQ(*n, records.size());
  auto head = cm.PinSnapshot();
  EXPECT_GT(head->sequence, seq_before);
  EXPECT_EQ(SaveSnapshot(*head->db), SaveSnapshot(dd->db()));

  auto sid = cm.CreateSession(SessionOptions{});
  ASSERT_TRUE(sid.ok());
  auto read = cm.Execute(*sid, "SELECT T WHERE mary.Salary[T]");
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read->relation.rows()[0][0].numeric_value(), 100);
}

}  // namespace
}  // namespace server
}  // namespace xsql
