// Durable sessions end to end: persist/reopen equality, DDL replay of
// views and query-defined methods, checkpoint rotation, and the crash
// property tests — a simulated kill swept through every byte boundary
// of a WAL append, a checkpoint, and an atomic snapshot save, each time
// proving the recovered state is byte-identical to the last durably
// acknowledged snapshot.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "common/fault.h"
#include "storage/file.h"
#include "storage/recovery.h"
#include "storage/snapshot.h"
#include "storage/wal.h"

namespace xsql {
namespace storage {
namespace {

using DD = DurableDatabase;

// Everything a durable test creates must be creatable *by statement*
// (recovery replays statements, not C++ setup). The language's DML
// surface builds objects via UPDATE CLASS (SetScalar creates the
// target), and class-objects — instances of the builtin meta-class
// `Class` — give view/method definitions a populated extent to range
// over without any generator.
std::vector<std::string> Prelude() {
  return {
      "ALTER CLASS Person ADD SIGNATURE Name => String",
      "ALTER CLASS Person ADD SIGNATURE Salary => Numeral",
      "UPDATE CLASS Person SET mary.Name = 'mary'",
      "UPDATE CLASS Person SET mary.Salary = 100",
  };
}

// Definition statements: an attribute on the meta-class, a view over
// the class extent, a materializing query, and a query-defined method.
std::vector<std::string> Definitions() {
  return {
      "ALTER CLASS Class ADD SIGNATURE Motto => String",
      "UPDATE CLASS Class SET Person.Motto = 'people first'",
      "CREATE VIEW Mottos AS SUBCLASS OF Object "
      "SIGNATURE M => String "
      "SELECT M = X.Motto FROM Class X OID FUNCTION OF X WHERE X.Motto[M]",
      "SELECT T FROM Class X WHERE Mottos(X).M[T]",  // materializes
      "ALTER CLASS Class ADD SIGNATURE Shout => String "
      "SELECT (Shout) = N FROM Class X OID X WHERE X.Motto[N]",
  };
}

class DurabilityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = ::testing::TempDir() + "/xsql_durable_" + info->name();
    std::filesystem::remove_all(dir_);
  }

  void TearDown() override {
    FaultInjector::Global().Disarm();
    std::filesystem::remove_all(dir_);
  }

  std::unique_ptr<DD> MustOpen(const std::string& dir,
                               DurableOptions options = {}) {
    auto dd = DD::Open(dir, std::move(options));
    EXPECT_TRUE(dd.ok()) << dd.status().ToString();
    return dd.ok() ? std::move(*dd) : nullptr;
  }

  void MustExecute(DD* dd, const std::vector<std::string>& script) {
    for (const std::string& stmt : script) {
      auto out = dd->Execute(stmt);
      ASSERT_TRUE(out.ok()) << stmt << ": " << out.status().ToString();
    }
  }

  std::string dir_;
};

TEST_F(DurabilityTest, FreshDirectoryInitializes) {
  auto dd = MustOpen(dir_);
  ASSERT_NE(dd, nullptr);
  EXPECT_EQ(dd->generation(), 1u);
  EXPECT_EQ(dd->replayed_statements(), 0u);
  EXPECT_FALSE(dd->recovered_torn_tail());
  EXPECT_TRUE(File::Exists(DD::CurrentPath(dir_)));
  EXPECT_TRUE(File::Exists(DD::SnapshotPath(dir_, 1)));
  EXPECT_TRUE(File::Exists(DD::DdlPath(dir_, 1)));
  EXPECT_TRUE(File::Exists(DD::WalPath(dir_, 1)));
}

TEST_F(DurabilityTest, StatementsPersistAcrossReopen) {
  std::string acked;
  {
    auto dd = MustOpen(dir_);
    ASSERT_NE(dd, nullptr);
    MustExecute(dd.get(), Prelude());
    EXPECT_EQ(dd->wal_records(), 4u);
    acked = SaveSnapshot(dd->db());
  }
  auto dd = MustOpen(dir_);
  ASSERT_NE(dd, nullptr);
  EXPECT_EQ(dd->replayed_statements(), 4u);
  EXPECT_FALSE(dd->recovered_torn_tail());
  EXPECT_EQ(SaveSnapshot(dd->db()), acked);
  auto rel = dd->Query("SELECT T WHERE mary.Name[T]");
  ASSERT_TRUE(rel.ok()) << rel.status().ToString();
  ASSERT_EQ(rel->size(), 1u);
  EXPECT_EQ(rel->rows()[0][0], Oid::String("mary"));
}

TEST_F(DurabilityTest, ReadOnlyStatementsAreNotLogged) {
  auto dd = MustOpen(dir_);
  ASSERT_NE(dd, nullptr);
  MustExecute(dd.get(), Prelude());
  const uint64_t records = dd->wal_records();
  const uint64_t bytes = dd->wal_bytes();
  ASSERT_TRUE(dd->Query("SELECT T WHERE mary.Name[T]").ok());
  ASSERT_TRUE(dd->Query("SELECT $X WHERE Person subclassOf $X").ok());
  EXPECT_EQ(dd->wal_records(), records);
  EXPECT_EQ(dd->wal_bytes(), bytes);
}

TEST_F(DurabilityTest, FailedStatementLeavesNoTrace) {
  auto dd = MustOpen(dir_);
  ASSERT_NE(dd, nullptr);
  MustExecute(dd.get(), Prelude());
  const std::string before = SaveSnapshot(dd->db());
  const uint64_t bytes = dd->wal_bytes();
  // Resolvable class, ill-formed assignment target.
  EXPECT_FALSE(dd->Execute("UPDATE CLASS Person SET mary = 5").ok());
  // Unparseable input.
  EXPECT_FALSE(dd->Execute("SELECT FROM WHERE").ok());
  EXPECT_EQ(SaveSnapshot(dd->db()), before);
  EXPECT_EQ(dd->wal_bytes(), bytes);
  auto size = File::Size(DD::WalPath(dir_, 1));
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, bytes);
}

TEST_F(DurabilityTest, ViewsAndMethodsSurviveReopen) {
  std::string acked;
  {
    auto dd = MustOpen(dir_);
    ASSERT_NE(dd, nullptr);
    MustExecute(dd.get(), Prelude());
    MustExecute(dd.get(), Definitions());
    acked = SaveSnapshot(dd->db());
  }
  auto dd = MustOpen(dir_);
  ASSERT_NE(dd, nullptr);
  EXPECT_EQ(SaveSnapshot(dd->db()), acked);
  // The view extent survived (data) *and* its definition replays
  // (executable): both the materialized instances and a fresh use of
  // the defining query must work.
  auto view = dd->Query("SELECT X.M FROM Mottos X");
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  ASSERT_EQ(view->size(), 1u);
  EXPECT_EQ(view->rows()[0][0], Oid::String("people first"));
  // The query-defined method body is not in any snapshot; only DDL
  // replay can restore it.
  auto method = dd->Query("SELECT T WHERE Person.Shout[T]");
  ASSERT_TRUE(method.ok()) << method.status().ToString();
  ASSERT_EQ(method->size(), 1u);
  EXPECT_EQ(method->rows()[0][0], Oid::String("people first"));
}

TEST_F(DurabilityTest, CheckpointRotatesGenerationAndCompactsReplay) {
  std::string acked;
  {
    // retain_generations = 1 prunes eagerly; the default (2) keeps the
    // previous generation around for replica bootstrap (covered in
    // replication_test).
    DurableOptions options;
    options.retain_generations = 1;
    auto dd = MustOpen(dir_, options);
    ASSERT_NE(dd, nullptr);
    MustExecute(dd.get(), Prelude());
    MustExecute(dd.get(), Definitions());
    acked = SaveSnapshot(dd->db());
    ASSERT_TRUE(dd->Checkpoint().ok());
    EXPECT_EQ(dd->generation(), 2u);
    // Old generation is gone; new one is live.
    EXPECT_FALSE(File::Exists(DD::SnapshotPath(dir_, 1)));
    EXPECT_FALSE(File::Exists(DD::WalPath(dir_, 1)));
    EXPECT_TRUE(File::Exists(DD::SnapshotPath(dir_, 2)));
    // Checkpoint changes no logical state.
    EXPECT_EQ(SaveSnapshot(dd->db()), acked);
    // The instance stays usable after rotation.
    ASSERT_TRUE(
        dd->Execute("UPDATE CLASS Person SET mary.Salary = 200").ok());
    EXPECT_EQ(dd->wal_records(), 1u);
    acked = SaveSnapshot(dd->db());
  }
  auto dd = MustOpen(dir_);
  ASSERT_NE(dd, nullptr);
  EXPECT_EQ(dd->generation(), 2u);
  // Only the post-checkpoint statement replays from the WAL.
  EXPECT_EQ(dd->replayed_statements(), 1u);
  EXPECT_EQ(SaveSnapshot(dd->db()), acked);
  // Definitions came back through the rotated DDL log.
  auto method = dd->Query("SELECT T WHERE Person.Shout[T]");
  ASSERT_TRUE(method.ok()) << method.status().ToString();
  ASSERT_EQ(method->size(), 1u);
}

TEST_F(DurabilityTest, AutoCheckpointAfterEveryNStatements) {
  DurableOptions options;
  options.checkpoint_every = 2;
  std::string acked;
  {
    auto dd = MustOpen(dir_, options);
    ASSERT_NE(dd, nullptr);
    MustExecute(dd.get(), Prelude());  // 4 mutating statements
    EXPECT_EQ(dd->generation(), 3u);   // two rotations
    EXPECT_EQ(dd->wal_records(), 0u);
    acked = SaveSnapshot(dd->db());
  }
  auto dd = MustOpen(dir_);
  ASSERT_NE(dd, nullptr);
  EXPECT_EQ(dd->generation(), 3u);
  EXPECT_EQ(dd->replayed_statements(), 0u);  // everything checkpointed
  EXPECT_EQ(SaveSnapshot(dd->db()), acked);
}

TEST_F(DurabilityTest, TornWalTailIsTruncatedOnRecovery) {
  std::string acked;
  {
    auto dd = MustOpen(dir_);
    ASSERT_NE(dd, nullptr);
    MustExecute(dd.get(), Prelude());
    acked = SaveSnapshot(dd->db());
  }
  // A crash mid-append: half a record's bytes beyond the acked prefix.
  std::string torn =
      Wal::EncodeRecord("UPDATE CLASS Person SET mary.Salary = 999");
  {
    auto f = File::OpenAppend(DD::WalPath(dir_, 1));
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE(f->Write(torn.substr(0, torn.size() - 3)).ok());
    ASSERT_TRUE(f->Sync().ok());
    ASSERT_TRUE(f->Close().ok());
  }
  auto dd = MustOpen(dir_);
  ASSERT_NE(dd, nullptr);
  EXPECT_TRUE(dd->recovered_torn_tail());
  EXPECT_EQ(dd->replayed_statements(), 4u);
  EXPECT_EQ(SaveSnapshot(dd->db()), acked);
  // The tail was physically truncated, so the next append produces a
  // clean log.
  ASSERT_TRUE(
      dd->Execute("UPDATE CLASS Person SET mary.Salary = 300").ok());
  auto scan = Wal::ScanFile(DD::WalPath(dir_, 1));
  ASSERT_TRUE(scan.ok());
  EXPECT_FALSE(scan->torn);
  EXPECT_EQ(scan->records.size(), 5u);
}

TEST_F(DurabilityTest, WedgedAfterCrashUntilReopen) {
  auto dd = MustOpen(dir_);
  ASSERT_NE(dd, nullptr);
  MustExecute(dd.get(), Prelude());
  FaultInjector::Global().ArmCrashAtByte(1);
  EXPECT_FALSE(
      dd->Execute("UPDATE CLASS Person SET mary.Salary = 1").ok());
  EXPECT_TRUE(dd->wedged());
  // Every further call fails, even after disarming: the instance
  // represents a dead process.
  FaultInjector::Global().Disarm();
  EXPECT_FALSE(
      dd->Execute("UPDATE CLASS Person SET mary.Salary = 2").ok());
  EXPECT_FALSE(dd->Checkpoint().ok());
  auto re = MustOpen(dir_);
  ASSERT_NE(re, nullptr);
  EXPECT_FALSE(re->wedged());
}

// ---- The crash-point property tests ----------------------------------

// Sweep a simulated kill through every byte of one WAL append. For
// every crash point strictly inside the record the recovered database
// equals the pre-statement snapshot; at the final byte the record is
// fully durable (acknowledged or not, the recovery contract only ever
// exposes whole statements).
TEST_F(DurabilityTest, CrashSweepThroughWalAppend) {
  FaultInjector& fi = FaultInjector::Global();
  const std::string stmt = "UPDATE CLASS Person SET mary.Salary = 777";
  const uint64_t units = Wal::kRecordHeader + stmt.size();

  // Clean probe run: learn the pre- and post-statement snapshots.
  std::string pre, post;
  {
    auto dd = MustOpen(dir_);
    ASSERT_NE(dd, nullptr);
    MustExecute(dd.get(), Prelude());
    pre = SaveSnapshot(dd->db());
    ASSERT_TRUE(dd->Execute(stmt).ok());
    post = SaveSnapshot(dd->db());
  }
  ASSERT_NE(pre, post);
  std::filesystem::remove_all(dir_);

  for (uint64_t k = 1; k <= units; ++k) {
    SCOPED_TRACE("crash at byte " + std::to_string(k) + " of " +
                 std::to_string(units));
    std::filesystem::remove_all(dir_);
    auto dd = MustOpen(dir_);
    ASSERT_NE(dd, nullptr);
    MustExecute(dd.get(), Prelude());

    fi.ArmCrashAtByte(k);
    auto out = dd->Execute(stmt);
    EXPECT_FALSE(out.ok());
    EXPECT_TRUE(fi.crashed());
    EXPECT_TRUE(dd->wedged());
    fi.Disarm();

    auto re = DD::Open(dir_);
    ASSERT_TRUE(re.ok()) << re.status().ToString();
    if (k < units) {
      // The torn record was discarded; the statement never happened.
      EXPECT_EQ(SaveSnapshot((*re)->db()), pre);
      EXPECT_TRUE((*re)->recovered_torn_tail());
      EXPECT_EQ((*re)->replayed_statements(), 4u);
    } else {
      // Every byte reached disk before the kill: the statement is
      // durable even though it was never acknowledged.
      EXPECT_EQ(SaveSnapshot((*re)->db()), post);
      EXPECT_FALSE((*re)->recovered_torn_tail());
      EXPECT_EQ((*re)->replayed_statements(), 5u);
    }
    // The recovered instance accepts new work.
    ASSERT_TRUE(
        (*re)->Execute("UPDATE CLASS Person SET mary.Salary = 5").ok());
  }
}

// Sweep a simulated kill through every persistence unit of a
// checkpoint. A checkpoint changes no logical state, so whatever the
// crash point — inside the new snapshot, the DDL log, the fresh WAL,
// or the CURRENT flip itself — recovery must always reproduce the
// pre-checkpoint snapshot, from whichever generation survived.
TEST_F(DurabilityTest, CrashSweepThroughCheckpoint) {
  FaultInjector& fi = FaultInjector::Global();
  uint64_t k = 1;
  for (;; ++k) {
    ASSERT_LT(k, 20000u) << "checkpoint never ran clean";
    SCOPED_TRACE("crash at unit " + std::to_string(k));
    std::filesystem::remove_all(dir_);
    auto dd = MustOpen(dir_);
    ASSERT_NE(dd, nullptr);
    MustExecute(dd.get(), Prelude());
    MustExecute(dd.get(), Definitions());
    const std::string acked = SaveSnapshot(dd->db());

    fi.ArmCrashAtByte(k);
    Status st = dd->Checkpoint();
    const bool crashed = fi.crashed();
    fi.Disarm();

    auto re = DD::Open(dir_);
    ASSERT_TRUE(re.ok()) << re.status().ToString();
    EXPECT_EQ(SaveSnapshot((*re)->db()), acked);
    // Definitions survive whichever generation recovery picked.
    auto method = (*re)->Query("SELECT T WHERE Person.Shout[T]");
    ASSERT_TRUE(method.ok()) << method.status().ToString();
    EXPECT_EQ(method->size(), 1u);

    if (!crashed) {
      EXPECT_TRUE(st.ok()) << st.ToString();
      EXPECT_EQ((*re)->generation(), 2u);
      break;  // budget outlived the whole rotation: sweep complete
    }
  }
  EXPECT_GT(k, 100u);  // the sweep really visited many byte positions
}

// Sweep a simulated kill through every byte of an atomic snapshot
// save. The file must always read back as one of the two complete
// snapshots — never truncated, never interleaved.
TEST_F(DurabilityTest, CrashSweepThroughAtomicSnapshotSave) {
  FaultInjector& fi = FaultInjector::Global();
  ASSERT_TRUE(File::EnsureDir(dir_).ok());
  const std::string path = dir_ + "/snapshot.db";

  Database old_db;
  std::string old_snap = SaveSnapshot(old_db);
  ASSERT_TRUE(SaveSnapshotToFile(old_db, path).ok());

  Database new_db;
  ASSERT_TRUE(new_db.DeclareClass(Oid::Atom("Person")).ok());
  ASSERT_TRUE(new_db.SetScalar(Oid::Atom("mary"), Oid::Atom("Name"),
                               Oid::String("mary")).ok());
  std::string new_snap = SaveSnapshot(new_db);
  ASSERT_NE(old_snap, new_snap);

  uint64_t k = 1;
  for (;; ++k) {
    ASSERT_LT(k, 20000u) << "atomic save never ran clean";
    fi.ArmCrashAtByte(k);
    Status st = SaveSnapshotToFile(new_db, path);
    const bool crashed = fi.crashed();
    fi.Disarm();

    auto contents = File::ReadAll(path);
    ASSERT_TRUE(contents.ok()) << "k=" << k;
    EXPECT_TRUE(*contents == old_snap || *contents == new_snap)
        << "k=" << k << ": torn snapshot of " << contents->size()
        << " bytes";
    if (!crashed) {
      EXPECT_TRUE(st.ok());
      EXPECT_EQ(*contents, new_snap);
      break;
    }
    // Re-seed the old file for the next crash point if the new one
    // did not commit.
    if (*contents == old_snap) {
      ASSERT_TRUE(SaveSnapshotToFile(old_db, path).ok());
    } else {
      old_snap = new_snap;  // committed early: old and new now agree
    }
  }
  EXPECT_GT(k, old_snap.size());  // swept at least through the payload
}

// ArmNth transient I/O faults (short write / failed fsync, process
// survives): every failed Execute leaves both the in-memory database
// and the on-disk log exactly as they were, and the same instance
// keeps working.
TEST_F(DurabilityTest, TransientIoFaultSweepOverExecute) {
  FaultInjector& fi = FaultInjector::Global();
  auto dd = MustOpen(dir_);
  ASSERT_NE(dd, nullptr);
  MustExecute(dd.get(), Prelude());
  const std::string pre = SaveSnapshot(dd->db());
  const std::string stmt = "UPDATE CLASS Person SET mary.Salary = 321";

  size_t injected = 0;
  for (uint64_t n = 1;; ++n) {
    ASSERT_LT(n, 100u) << "statement never ran clean";
    auto before = Wal::ScanFile(DD::WalPath(dir_, 1));
    ASSERT_TRUE(before.ok());
    fi.ArmNth(FaultInjector::Domain::kIo, n);
    auto out = dd->Execute(stmt);
    const bool fired = fi.fired();
    fi.Disarm();
    if (out.ok()) {
      EXPECT_FALSE(fired);
      break;
    }
    ++injected;
    EXPECT_FALSE(dd->wedged()) << "transient faults must not wedge";
    EXPECT_EQ(SaveSnapshot(dd->db()), pre) << "n=" << n;
    auto after = Wal::ScanFile(DD::WalPath(dir_, 1));
    ASSERT_TRUE(after.ok());
    EXPECT_EQ(after->records, before->records) << "n=" << n;
    EXPECT_FALSE(after->torn) << "n=" << n;
  }
  EXPECT_GE(injected, 2u);
  EXPECT_NE(SaveSnapshot(dd->db()), pre);  // the clean run committed
}

}  // namespace
}  // namespace storage
}  // namespace xsql
