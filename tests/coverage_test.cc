// Breadth tests for surfaces the focused suites touch lightly: script
// execution, attribute clearing, clause-order flexibility, printing,
// and assorted API edges.
#include <gtest/gtest.h>

#include "eval/session.h"
#include "parser/parser.h"
#include "typing/type_checker.h"
#include "workload/fig1_schema.h"
#include "workload/generator.h"

namespace xsql {
namespace {

Oid A(const char* s) { return Oid::Atom(s); }

class CoverageTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(workload::BuildFig1Schema(&db_).ok());
    workload::WorkloadParams params;
    params.companies = 1;
    ASSERT_TRUE(workload::GenerateFig1Data(&db_, params).ok());
    session_ = std::make_unique<Session>(&db_);
  }

  Database db_;
  std::unique_ptr<Session> session_;
};

TEST_F(CoverageTest, ExecuteScriptRunsStatementsInOrder) {
  auto out = session_->ExecuteScript(
      "ALTER CLASS Employee ADD SIGNATURE Bonus => Numeral;\n"
      "UPDATE CLASS Employee SET _john13.Bonus = 500;\n"
      "SELECT B WHERE _john13.Bonus[B];");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->relation.size(), 1u);
  EXPECT_EQ(out->relation.rows()[0][0], Oid::Int(500));
}

TEST_F(CoverageTest, ExecuteScriptStopsAtFirstError) {
  auto out = session_->ExecuteScript(
      "SELECT X FROM Person X; BROKEN STATEMENT; SELECT X FROM Person X");
  EXPECT_FALSE(out.ok());
  EXPECT_FALSE(session_->ExecuteScript(" ;;  ; ").ok());
  // Semicolons inside strings do not split statements.
  auto quoted = session_->ExecuteScript(
      "SELECT X FROM Person X WHERE X.Name['a;b']");
  ASSERT_TRUE(quoted.ok());
  EXPECT_TRUE(quoted->relation.empty());
}

TEST_F(CoverageTest, ClearAttributeMakesValueUndefined) {
  ASSERT_NE(db_.GetAttribute(A("mary123"), A("Age")), nullptr);
  ASSERT_TRUE(db_.ClearAttribute(A("mary123"), A("Age")).ok());
  EXPECT_EQ(db_.GetAttribute(A("mary123"), A("Age")), nullptr);
  auto rel = session_->Query("SELECT V WHERE mary123.Age[V]");
  ASSERT_TRUE(rel.ok());
  EXPECT_TRUE(rel->empty());
  EXPECT_FALSE(db_.ClearAttribute(A("nosuch"), A("Age")).ok());
}

TEST_F(CoverageTest, ClauseOrderIsFlexible) {
  // The paper writes OID FUNCTION OF between FROM and WHERE; other
  // orders parse as well.
  auto a = session_->Execute(
      "SELECT S = W.Salary FROM Employee W OID FUNCTION OF W "
      "WHERE W.Salary > 0");
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  auto b = session_->Execute(
      "SELECT X FROM Employee X WHERE X.Salary > 0");
  ASSERT_TRUE(b.ok());
}

TEST_F(CoverageTest, ExemptionOfExplicitArgument) {
  // Exempting argument position 1 (not the receiver) of Member lets a
  // query with an untyped argument variable pass strict typing.
  ASSERT_TRUE(
      db_.NewObject(A("OO_Forum"), {workload::fig1::Association()}).ok());
  auto stmt = ParseAndResolve(
      "SELECT M WHERE OO_Forum.(Member @ Y)[M]", db_);
  ASSERT_TRUE(stmt.ok());
  TypeChecker checker(db_);
  TypingResult strict =
      checker.Check(*stmt->query->simple, TypingMode::kStrict);
  EXPECT_FALSE(strict.well_typed);  // Y's range {Object} ⊄ Numeral
  ExemptionSet ex;
  ex.items.push_back(Exemption{A("Member"), 1});
  TypingResult exempted =
      checker.Check(*stmt->query->simple, TypingMode::kStrict, ex);
  EXPECT_TRUE(exempted.well_typed) << exempted.explanation;
}

TEST_F(CoverageTest, AllStrictWitnessesHonorsLimit) {
  auto stmt = ParseAndResolve(
      "SELECT X FROM Person X WHERE X.Name and X.Age", db_);
  ASSERT_TRUE(stmt.ok());
  TypeChecker checker(db_);
  auto witnesses = checker.AllStrictWitnesses(*stmt->query->simple, 1);
  EXPECT_EQ(witnesses.size(), 1u);
  auto more = checker.AllStrictWitnesses(*stmt->query->simple, 8);
  EXPECT_GE(more.size(), 2u);  // both conjunct orders are coherent
}

TEST_F(CoverageTest, ToStringsAreInformative) {
  EXPECT_EQ(OidSet({Oid::Int(1), Oid::Int(2)}).ToString(), "{1, 2}");
  Object obj(A("x"));
  obj.SetScalar(A("a"), Oid::Int(1));
  EXPECT_EQ(obj.ToString(), "x[a -> 1]");
  Signature sig{A("earns"), {A("Course")}, A("Grade"), false};
  EXPECT_EQ(sig.ToString(), "earns : Course => Grade");
  Signature set_sig{A("kids"), {}, A("Person"), true};
  EXPECT_EQ(set_sig.ToString(), "kids =>> Person");
  Binding binding;
  binding.Set(Variable{"X", VarSort::kIndividual}, Oid::Int(1));
  EXPECT_EQ(binding.ToString(), "{X=1}");
  VarRange range;
  range.Add(A("Person"));
  EXPECT_EQ(range.ToString(), "{Object, Person}");
}

TEST_F(CoverageTest, SelectBareLiteralAndSetLiteral) {
  auto rel = session_->Query("SELECT X FROM Company X WHERE "
                             "{'blue'} subsetEq {'blue', 'red'}");
  ASSERT_TRUE(rel.ok()) << rel.status().ToString();
  EXPECT_EQ(rel->size(), db_.Extent(A("Company")).size());
  auto ne = session_->Query(
      "SELECT X FROM Company X WHERE {'blue'} contains {'blue', 'red'}");
  ASSERT_TRUE(ne.ok());
  EXPECT_TRUE(ne->empty());
}

TEST_F(CoverageTest, GetMutableObjectBumpsVersion) {
  uint64_t v = db_.version();
  Object* obj = db_.GetMutableObject(A("mary123"));
  ASSERT_NE(obj, nullptr);
  EXPECT_GT(db_.version(), v);
  EXPECT_EQ(db_.GetMutableObject(A("missing")), nullptr);
}

TEST_F(CoverageTest, SubqueryAsSetComparisonSide) {
  auto rel = session_->Query(
      "SELECT X FROM Company X WHERE "
      "(SELECT C WHERE mary123.Residence.City[C]) subsetEq "
      "{'newyork', 'austin'}");
  ASSERT_TRUE(rel.ok()) << rel.status().ToString();
  EXPECT_EQ(rel->size(), db_.Extent(A("Company")).size());
}

TEST_F(CoverageTest, DdlPrintingRoundTrips) {
  const char* statements[] = {
      "CREATE VIEW Sal AS SUBCLASS OF Object "
      "SIGNATURE S => Numeral "
      "SELECT S = W.Salary FROM Employee W OID FUNCTION OF W",
      "ALTER CLASS Employee ADD SIGNATURE Bonus => Numeral",
      "UPDATE CLASS Division SET div0_0.Function = 'ops'",
  };
  for (const char* text : statements) {
    auto stmt = ParseAndResolve(text, db_);
    ASSERT_TRUE(stmt.ok()) << text;
    std::string printed = stmt->ToString();
    auto reparsed = ParseAndResolve(printed, db_);
    ASSERT_TRUE(reparsed.ok()) << printed;
    EXPECT_EQ(reparsed->ToString(), printed);
  }
}

TEST_F(CoverageTest, NegativeAndRealLiterals) {
  ASSERT_TRUE(db_.SetScalar(A("mary123"), A("Age"), Oid::Int(30)).ok());
  auto rel = session_->Query(
      "SELECT X FROM Person X WHERE X.Age > 29.5 and X.Name['mary']");
  ASSERT_TRUE(rel.ok()) << rel.status().ToString();
  EXPECT_EQ(rel->size(), 1u);
  auto neg = session_->Query(
      "SELECT X FROM Person X WHERE X.Age > 0 - 5 and X.Name['mary']");
  ASSERT_TRUE(neg.ok()) << neg.status().ToString();
  EXPECT_EQ(neg->size(), 1u);
}

}  // namespace
}  // namespace xsql
