// Baselines (GEM-style decomposition, relational flattening) must agree
// with the XSQL evaluation on the same logical queries, and the workload
// generator must produce the advertised shape.
#include <gtest/gtest.h>

#include "baseline/gem_path.h"
#include "baseline/relational.h"
#include "eval/session.h"
#include "workload/fig1_schema.h"
#include "workload/generator.h"

namespace xsql {
namespace {

Oid A(const char* s) { return Oid::Atom(s); }

class BaselineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(workload::BuildFig1Schema(&db_).ok());
    workload::WorkloadParams params;
    ASSERT_TRUE(workload::GenerateFig1Data(&db_, params).ok());
    session_ = std::make_unique<Session>(&db_);
  }

  Database db_;
  std::unique_ptr<Session> session_;
};

TEST_F(BaselineTest, OneSweepEqualsDecomposed) {
  baseline::SimplePathQuery query;
  query.start_class = A("Person");
  query.attrs = {A("Residence"), A("City")};
  size_t tuples = 0;
  OidSet sweep = baseline::EvalOneSweep(db_, query);
  OidSet decomposed = baseline::EvalDecomposed(db_, query, &tuples);
  EXPECT_EQ(sweep, decomposed);
  EXPECT_FALSE(sweep.empty());
  // The decomposed evaluation materialized at least one tuple per hop.
  EXPECT_GT(tuples, sweep.size());
}

TEST_F(BaselineTest, BaselineAgreesWithXsqlOnPathQuery) {
  baseline::SimplePathQuery query;
  query.start_class = A("Person");
  query.attrs = {A("Residence"), A("City")};
  OidSet sweep = baseline::EvalOneSweep(db_, query);
  auto rel = session_->Query("SELECT C FROM Person X WHERE X.Residence.City[C]");
  ASSERT_TRUE(rel.ok());
  OidSet xsql_cities;
  for (const auto& row : rel->rows()) xsql_cities.Insert(row[0]);
  EXPECT_EQ(sweep, xsql_cities);
}

TEST_F(BaselineTest, FinalValueFilter) {
  baseline::SimplePathQuery query;
  query.start_class = A("Person");
  query.attrs = {A("Residence"), A("City")};
  query.final_value = Oid::String("newyork");
  OidSet hit = baseline::EvalOneSweep(db_, query);
  EXPECT_EQ(hit.size(), 1u);
  EXPECT_TRUE(baseline::AnyPath(db_, query));
  query.final_value = Oid::String("atlantis");
  EXPECT_FALSE(baseline::AnyPath(db_, query));
}

TEST_F(BaselineTest, RelationalJoinAgreesWithSweep) {
  baseline::RelationalDb rdb = baseline::RelationalDb::Flatten(db_);
  baseline::SimplePathQuery query;
  query.start_class = A("Employee");
  query.attrs = {A("OwnedVehicles"), A("Drivetrain"), A("Engine")};
  OidSet sweep = baseline::EvalOneSweep(db_, query);
  size_t joined = 0;
  OidSet via_joins =
      rdb.EvalPathJoin(A("Employee"), query.attrs, std::nullopt, &joined);
  EXPECT_EQ(sweep, via_joins);
  EXPECT_GT(rdb.attribute_table_rows(), 0u);
}

TEST_F(BaselineTest, RelationalEqJoinMatchesExplicitJoinQuery) {
  baseline::RelationalDb rdb = baseline::RelationalDb::Flatten(db_);
  auto pairs = rdb.EqJoin(A("Company"), A("Name"), A("Employee"), A("Name"));
  // Query (6) witness: comp0 and the employee named after it.
  bool found = false;
  for (const auto& [company, employee] : pairs) {
    if (company == A("comp0") && employee == A("emp_0_0_1")) found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(BaselineTest, CatalogJoinMatchesSchemaQuery) {
  baseline::RelationalDb rdb = baseline::RelationalDb::Flatten(db_);
  // The §1 "engine types" question, relational style: transitive
  // closure of ISA — must agree with the XSQL subclassOf query.
  std::vector<Oid> supers = rdb.SuperclassesViaCatalog(A("TurboEngine"));
  auto rel = session_->Query("SELECT $X WHERE TurboEngine subclassOf $X");
  ASSERT_TRUE(rel.ok());
  OidSet xsql_supers;
  for (const auto& row : rel->rows()) xsql_supers.Insert(row[0]);
  OidSet catalog_supers;
  for (const Oid& cls : supers) catalog_supers.Insert(cls);
  EXPECT_EQ(catalog_supers, xsql_supers);
  // Attribute catalog.
  std::vector<Oid> with_salary =
      rdb.ClassesWithAttributeViaCatalog(A("Salary"));
  ASSERT_EQ(with_salary.size(), 1u);
  EXPECT_EQ(with_salary[0], A("Employee"));
}

TEST(WorkloadTest, StatsMatchParams) {
  Database db;
  ASSERT_TRUE(workload::BuildFig1Schema(&db).ok());
  workload::WorkloadParams params;
  params.companies = 3;
  params.divisions_per_company = 2;
  params.employees_per_division = 5;
  params.extra_persons = 7;
  params.automobiles = 11;
  params.include_named_individuals = false;
  auto stats = workload::GenerateFig1Data(&db, params);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->companies, 3u);
  EXPECT_EQ(stats->divisions, 6u);
  EXPECT_EQ(stats->employees, 30u);
  EXPECT_EQ(stats->automobiles, 11u);
  EXPECT_EQ(db.Extent(Oid::Atom("Company")).size(), 3u);
  EXPECT_EQ(db.Extent(Oid::Atom("Employee")).size(), 30u);
  // Persons include employees (IS-A).
  EXPECT_EQ(db.Extent(Oid::Atom("Person")).size(), 37u);
}

TEST(WorkloadTest, DeterministicAcrossRuns) {
  workload::WorkloadParams params;
  params.seed = 7;
  Database db1, db2;
  ASSERT_TRUE(workload::BuildFig1Schema(&db1).ok());
  ASSERT_TRUE(workload::BuildFig1Schema(&db2).ok());
  ASSERT_TRUE(workload::GenerateFig1Data(&db1, params).ok());
  ASSERT_TRUE(workload::GenerateFig1Data(&db2, params).ok());
  ASSERT_EQ(db1.object_count(), db2.object_count());
  db1.ForEachObject([&](const Oid& oid, const Object& object) {
    const Object* other = db2.GetObject(oid);
    ASSERT_NE(other, nullptr) << oid.ToString();
    EXPECT_EQ(object.ToString(), other->ToString());
  });
}

TEST(WorkloadTest, ScaledParams) {
  workload::WorkloadParams params;
  workload::WorkloadParams big = params.Scaled(3);
  EXPECT_EQ(big.companies, params.companies * 3);
  EXPECT_EQ(big.automobiles, params.automobiles * 3);
}

TEST(WorkloadTest, Fig1SchemaShape) {
  Database db;
  ASSERT_TRUE(workload::BuildFig1Schema(&db).ok());
  // Spot-check the IS-A chain the paper's query (4) depends on.
  EXPECT_TRUE(db.graph().IsStrictSubclass(A("TurboEngine"),
                                          A("FourStrokeEngine")));
  EXPECT_TRUE(
      db.graph().IsStrictSubclass(A("TurboEngine"), A("PistonEngine")));
  EXPECT_TRUE(db.graph().IsStrictSubclass(A("TurboEngine"), A("Object")));
  EXPECT_FALSE(
      db.graph().IsStrictSubclass(A("TurboEngine"), A("DieselEngine")));
  // President is declared both on Company and Organization (§6.2 (20)).
  EXPECT_EQ(db.signatures().Declared(A("Company"), A("President")).size(),
            1u);
  EXPECT_EQ(
      db.signatures().Declared(A("Organization"), A("President")).size(),
      1u);
}

}  // namespace
}  // namespace xsql
