// Property-based differential tests over seeded random instances:
//  * the production evaluator == the naive §3.4 reference semantics;
//  * the production evaluator == the Theorem 3.1 F-logic translation;
//  * Theorem 6.1(1): all coherent plans produce the same answers;
//  * Theorem 6.1(2): range pruning never changes answers;
//  * store invariants (IS-A upward closure of membership).
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/rng.h"
#include "eval/evaluator.h"
#include "eval/session.h"
#include "flogic/flogic_eval.h"
#include "flogic/translate.h"
#include "parser/parser.h"
#include "typing/type_checker.h"
#include "workload/fig1_schema.h"
#include "workload/generator.h"

namespace xsql {
namespace {

Oid A(const char* s) { return Oid::Atom(s); }

std::multiset<std::vector<Oid>> Rows(const Relation& rel) {
  return {rel.rows().begin(), rel.rows().end()};
}

/// A tiny instance keeps the naive evaluator's full-domain enumeration
/// tractable.
void BuildTinyDb(Database* db, uint64_t seed) {
  ASSERT_TRUE(workload::BuildFig1Schema(db).ok());
  workload::WorkloadParams params;
  params.seed = seed;
  params.companies = 1;
  params.divisions_per_company = 1;
  params.employees_per_division = 2;
  params.extra_persons = 2;
  params.automobiles = 2;
  params.max_family = 2;
  ASSERT_TRUE(workload::GenerateFig1Data(db, params).ok());
}

/// Query templates staying inside the fragment all three evaluators
/// cover (no aggregates/subqueries for F-logic; no path variables for
/// the naive evaluator). %1 is a numeric threshold, %2 a city.
const char* kTemplates[] = {
    "SELECT C WHERE mary123.Residence.City[C]",
    "SELECT X FROM Person X WHERE X.Residence.City['%2']",
    "SELECT Y FROM Person X WHERE X.Residence[Y]",
    "SELECT X FROM Employee X WHERE X.Salary > %1",
    "SELECT X FROM Employee X WHERE X.FamMembers.Age some> %1",
    "SELECT X, W FROM Company X WHERE X.Divisions.Employees[W]",
    "SELECT $C WHERE TwoStrokeEngine subclassOf $C",
    "SELECT W FROM Company Y WHERE Y.Retirees[W] or Y.President[W]",
    "SELECT X FROM Employee X WHERE X.Salary > 0 and "
    "not X.Salary > %1",
    "SELECT X FROM Person X WHERE X.Residence =all "
    "X.FamMembers.Residence",
    "SELECT X, Y FROM Company X WHERE X.Name =some "
    "X.Divisions.Employees[Y].Name",
    "SELECT \"M WHERE mary123.\"M[addr_mary123]",
};

std::string Instantiate(const char* tmpl, Rng* rng) {
  static const char* kCities[] = {"newyork", "austin", "boston"};
  std::string out = tmpl;
  size_t pos;
  while ((pos = out.find("%1")) != std::string::npos) {
    out.replace(pos, 2, std::to_string(rng->Range(10000, 90000)));
  }
  while ((pos = out.find("%2")) != std::string::npos) {
    out.replace(pos, 2, kCities[rng->Uniform(3)]);
  }
  return out;
}

class DifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DifferentialTest, SmartEqualsNaive) {
  Database db;
  BuildTinyDb(&db, GetParam());
  Evaluator evaluator(&db);
  Rng rng(GetParam() * 31 + 7);
  for (const char* tmpl : kTemplates) {
    std::string text = Instantiate(tmpl, &rng);
    auto stmt = ParseAndResolve(text, db);
    ASSERT_TRUE(stmt.ok()) << text;
    const Query& q = *stmt->query->simple;
    auto smart = evaluator.Run(q);
    ASSERT_TRUE(smart.ok()) << text << "\n" << smart.status().ToString();
    auto naive = evaluator.RunNaive(q);
    ASSERT_TRUE(naive.ok()) << text << "\n" << naive.status().ToString();
    EXPECT_EQ(Rows(smart->relation), Rows(naive->relation)) << text;
  }
}

TEST_P(DifferentialTest, SmartEqualsFLogic) {
  Database db;
  BuildTinyDb(&db, GetParam());
  Evaluator evaluator(&db);
  Rng rng(GetParam() * 17 + 3);
  for (const char* tmpl : kTemplates) {
    std::string text = Instantiate(tmpl, &rng);
    auto stmt = ParseAndResolve(text, db);
    ASSERT_TRUE(stmt.ok()) << text;
    const Query& q = *stmt->query->simple;
    auto translated = flogic::TranslateToFLogic(q);
    ASSERT_TRUE(translated.ok()) << text;
    auto flogic_answer = flogic::EvaluateFLogic(*translated, &db);
    ASSERT_TRUE(flogic_answer.ok())
        << text << "\n" << flogic_answer.status().ToString();
    auto smart = evaluator.Run(q);
    ASSERT_TRUE(smart.ok()) << text;
    EXPECT_EQ(Rows(smart->relation), Rows(*flogic_answer)) << text;
  }
}

// Theorem 6.1(1): every coherent (assignment, plan) pair yields the same
// answer; and the explicit conjunct order matching each plan agrees.
TEST_P(DifferentialTest, PlanIndependence) {
  Database db;
  BuildTinyDb(&db, GetParam());
  Evaluator evaluator(&db);
  const char* kStrictQueries[] = {
      "SELECT X FROM Vehicle X WHERE X.Manufacturer[M] "
      "and M.President.OwnedVehicles[X]",
      "SELECT W FROM Company X WHERE X.Divisions[D] "
      "and D.Manager.Salary[W]",
  };
  for (const char* text : kStrictQueries) {
    auto stmt = ParseAndResolve(text, db);
    ASSERT_TRUE(stmt.ok()) << text;
    const Query& q = *stmt->query->simple;
    TypeChecker checker(db);
    std::vector<TypingResult> witnesses = checker.AllStrictWitnesses(q, 32);
    ASSERT_FALSE(witnesses.empty()) << text;
    EvalOptions base;
    auto reference = evaluator.Run(q, base);
    ASSERT_TRUE(reference.ok());
    for (const TypingResult& witness : witnesses) {
      EvalOptions opts;
      opts.conjunct_order = witness.plan;
      opts.ranges = &witness.ranges;
      auto out = evaluator.Run(q, opts);
      ASSERT_TRUE(out.ok()) << text << "\n" << out.status().ToString();
      EXPECT_EQ(Rows(out->relation), Rows(reference->relation)) << text;
    }
  }
}

// Theorem 6.1(2): evaluating with the range restriction gives exactly
// the unrestricted answer for strictly well-typed queries.
TEST_P(DifferentialTest, RangePruningIsSound) {
  Database db;
  BuildTinyDb(&db, GetParam());
  Evaluator evaluator(&db);
  Rng rng(GetParam() * 13 + 1);
  for (const char* tmpl : kTemplates) {
    std::string text = Instantiate(tmpl, &rng);
    auto stmt = ParseAndResolve(text, db);
    ASSERT_TRUE(stmt.ok()) << text;
    const Query& q = *stmt->query->simple;
    TypeChecker checker(db);
    TypingResult strict = checker.Check(q, TypingMode::kStrict);
    if (!strict.well_typed || !strict.in_fragment) continue;
    EvalOptions pruned;
    pruned.ranges = &strict.ranges;
    pruned.use_range_pruning = true;
    EvalOptions unpruned;
    unpruned.use_range_pruning = false;
    auto with = evaluator.Run(q, pruned);
    auto without = evaluator.Run(q, unpruned);
    ASSERT_TRUE(with.ok()) << text;
    ASSERT_TRUE(without.ok()) << text;
    EXPECT_EQ(Rows(with->relation), Rows(without->relation)) << text;
  }
}

// Store invariant: membership closes upward along randomly built DAGs.
TEST_P(DifferentialTest, MembershipClosesUpward) {
  Rng rng(GetParam());
  ClassGraph graph;
  const int kClasses = 12;
  std::vector<Oid> classes;
  for (int i = 0; i < kClasses; ++i) {
    classes.push_back(A(("C" + std::to_string(i)).c_str()));
    ASSERT_TRUE(graph.DeclareClass(classes.back()).ok());
  }
  // Random edges from lower to higher index: guaranteed acyclic; the
  // cycle check must accept them all.
  for (int i = 0; i < kClasses; ++i) {
    for (int j = i + 1; j < kClasses; ++j) {
      if (rng.Percent(25)) {
        ASSERT_TRUE(graph.AddSubclass(classes[i], classes[j]).ok());
      }
    }
  }
  // And any attempt to close a cycle must fail.
  for (int trial = 0; trial < 20; ++trial) {
    size_t a = rng.Uniform(kClasses);
    size_t b = rng.Uniform(kClasses);
    if (graph.IsStrictSubclass(classes[a], classes[b])) {
      EXPECT_FALSE(graph.AddSubclass(classes[b], classes[a]).ok());
    }
  }
  // Instances respect upward closure, and deep extents contain direct
  // extents of descendants.
  for (int i = 0; i < 20; ++i) {
    Oid obj = A(("o" + std::to_string(i)).c_str());
    const Oid& cls = classes[rng.Uniform(kClasses)];
    ASSERT_TRUE(graph.AddInstance(obj, cls).ok());
  }
  for (const Oid& cls : classes) {
    for (const Oid& obj : graph.Extent(cls)) {
      bool member_somewhere = false;
      for (const Oid& direct : graph.DirectClassesOf(obj)) {
        if (graph.IsSubclassEq(direct, cls)) member_somewhere = true;
      }
      EXPECT_TRUE(member_somewhere);
    }
    for (const Oid& sub : graph.Descendants(cls)) {
      for (const Oid& obj : graph.DirectExtent(sub)) {
        EXPECT_TRUE(graph.Extent(cls).Contains(obj));
      }
    }
  }
}

// OidSet algebra laws on random sets.
TEST_P(DifferentialTest, OidSetAlgebraLaws) {
  Rng rng(GetParam() * 97);
  auto random_set = [&rng]() {
    OidSet out;
    size_t n = rng.Uniform(12);
    for (size_t i = 0; i < n; ++i) {
      out.Insert(Oid::Int(static_cast<int64_t>(rng.Uniform(10))));
    }
    return out;
  };
  for (int trial = 0; trial < 50; ++trial) {
    OidSet a = random_set();
    OidSet b = random_set();
    OidSet u = OidSet::Union(a, b);
    OidSet i = OidSet::Intersect(a, b);
    OidSet d = OidSet::Difference(a, b);
    EXPECT_TRUE(a.SubsetOf(u));
    EXPECT_TRUE(i.SubsetOf(a));
    EXPECT_TRUE(i.SubsetOf(b));
    EXPECT_EQ(OidSet::Union(d, i), a);            // partition law
    EXPECT_EQ(u.size() + i.size(), a.size() + b.size());
    EXPECT_EQ(OidSet::Union(a, b), OidSet::Union(b, a));
  }
}

// Structurally random path queries: walk the Figure 1 composition
// hierarchy through schema-valid attribute chains and check the two
// evaluators agree on every generated query.
TEST_P(DifferentialTest, RandomPathQueriesAgree) {
  Database db;
  BuildTinyDb(&db, GetParam());
  Evaluator evaluator(&db);
  Rng rng(GetParam() * 1009 + 11);

  struct Hop {
    const char* attr;
    const char* result;
  };
  static const std::map<std::string, std::vector<Hop>>& kSchema =
      *new std::map<std::string, std::vector<Hop>>{
          {"Person", {{"Residence", "Address"}, {"OwnedVehicles", "Vehicle"}}},
          {"Employee",
           {{"Residence", "Address"},
            {"OwnedVehicles", "Vehicle"},
            {"FamMembers", "Person"},
            {"Dependents", "Person"}}},
          {"Company",
           {{"Divisions", "Division"},
            {"President", "Employee"},
            {"Headquarters", "Address"},
            {"Retirees", "Person"}}},
          {"Division",
           {{"Manager", "Employee"},
            {"Employees", "Employee"},
            {"Location", "Address"}}},
          {"Automobile",
           {{"Drivetrain", "VehicleDrivetrain"},
            {"Manufacturer", "Company"}}},
          {"VehicleDrivetrain", {{"Engine", "PistonEngine"}}},
          {"Vehicle", {{"Manufacturer", "Company"}}},
          {"Address", {}},
          {"PistonEngine", {}},
      };
  static const char* kRoots[] = {"Person",   "Employee", "Company",
                                 "Division", "Automobile"};

  for (int trial = 0; trial < 25; ++trial) {
    std::string cls = kRoots[rng.Uniform(std::size(kRoots))];
    std::string path = "X";
    std::string current = cls;
    size_t hops = 1 + rng.Uniform(3);
    for (size_t h = 0; h < hops; ++h) {
      const auto& edges = kSchema.at(current);
      if (edges.empty()) break;
      const Hop& hop = edges[rng.Uniform(edges.size())];
      path += ".";
      path += hop.attr;
      current = hop.result;
    }
    // Random terminal shape: bare predicate, selector variable, a
    // constant selector, or a comparison when the end is comparable.
    std::string text;
    switch (rng.Uniform(4)) {
      case 0:
        text = "SELECT X FROM " + cls + " X WHERE " + path;
        break;
      case 1:
        text = "SELECT X, End FROM " + cls + " X WHERE " + path + "[End]";
        break;
      case 2:
        if (current == "Address") {
          text = "SELECT X FROM " + cls + " X WHERE " + path +
                 ".City['newyork']";
        } else {
          text = "SELECT X FROM " + cls + " X WHERE " + path;
        }
        break;
      default:
        if (current == "Person" || current == "Employee") {
          text = "SELECT X FROM " + cls + " X WHERE " + path +
                 ".Age some> " + std::to_string(rng.Range(10, 70));
        } else {
          text = "SELECT X, End FROM " + cls + " X WHERE " + path + "[End]";
        }
        break;
    }
    auto stmt = ParseAndResolve(text, db);
    ASSERT_TRUE(stmt.ok()) << text;
    const Query& q = *stmt->query->simple;
    auto smart = evaluator.Run(q);
    ASSERT_TRUE(smart.ok()) << text << "\n" << smart.status().ToString();
    auto naive = evaluator.RunNaive(q);
    ASSERT_TRUE(naive.ok()) << text << "\n" << naive.status().ToString();
    EXPECT_EQ(Rows(smart->relation), Rows(naive->relation)) << text;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace xsql
