// Every numbered example of the paper, run end-to-end (parse -> resolve
// -> type-check -> evaluate) on a synthetic Figure 1 instance. The
// experiment ids (Q1..Q21) follow DESIGN.md's per-experiment index.
#include <gtest/gtest.h>

#include "eval/session.h"
#include "workload/fig1_schema.h"
#include "workload/generator.h"

namespace xsql {
namespace {

Oid A(const char* s) { return Oid::Atom(s); }

class PaperQueriesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(workload::BuildFig1Schema(&db_).ok());
    workload::WorkloadParams params;
    auto stats = workload::GenerateFig1Data(&db_, params);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    session_ = std::make_unique<Session>(&db_);
  }

  Relation MustQuery(const std::string& text) {
    auto result = session_->Query(text);
    EXPECT_TRUE(result.ok()) << text << "\n -> " << result.status().ToString();
    return result.ok() ? std::move(result).value() : Relation{};
  }

  OidSet Column(const Relation& rel, size_t col = 0) {
    OidSet out;
    for (const auto& row : rel.rows()) out.Insert(row[col]);
    return out;
  }

  Database db_;
  std::unique_ptr<Session> session_;
};

// Q1 — path expression (1): mary123.Residence.City.
TEST_F(PaperQueriesTest, Q1_GroundPath) {
  Relation rel = MustQuery("SELECT C WHERE mary123.Residence.City[C]");
  ASSERT_EQ(rel.size(), 1u);
  EXPECT_EQ(rel.rows()[0][0], Oid::String("newyork"));
}

// §3.1: a path over a non-existent object denotes the empty set, not an
// error.
TEST_F(PaperQueriesTest, Q1_MissingObjectYieldsEmpty) {
  Relation rel = MustQuery("SELECT C WHERE nosuchperson.Residence.City[C]");
  EXPECT_TRUE(rel.empty());
}

// Q2 — multi-valued path: uniSQL.President.FamMembers.Name.
TEST_F(PaperQueriesTest, Q2_SetValuedPath) {
  Relation rel =
      MustQuery("SELECT N WHERE uniSQL.President.FamMembers.Name[N]");
  OidSet names = Column(rel);
  EXPECT_TRUE(names.Contains(Oid::String("kid")));
  EXPECT_TRUE(names.Contains(Oid::String("spouse")));
  EXPECT_EQ(names.size(), 2u);
}

// Q3 — the query below (1): residences in New York.
TEST_F(PaperQueriesTest, Q3_SelectionViaSelector) {
  Relation rel = MustQuery(
      "SELECT Y FROM Person X WHERE X.Residence[Y].City['newyork']");
  EXPECT_FALSE(rel.empty());
  EXPECT_TRUE(Column(rel).Contains(A("addr_mary123")));
  for (const auto& row : rel.rows()) {
    const AttrValue* city = db_.GetAttribute(row[0], A("City"));
    ASSERT_NE(city, nullptr);
    EXPECT_EQ(city->scalar(), Oid::String("newyork"));
  }
}

// Q4 — engines of employee-owned automobiles (intermediate v-selector
// restricting the search to Automobile).
TEST_F(PaperQueriesTest, Q4_IntermediateSelector) {
  Relation rel = MustQuery(
      "SELECT Z FROM Employee X, Automobile Y "
      "WHERE X.OwnedVehicles[Y].Drivetrain.Engine[Z]");
  for (const auto& row : rel.rows()) {
    EXPECT_TRUE(db_.IsInstanceOf(row[0], workload::fig1::PistonEngine()))
        << row[0].ToString();
  }
  // The crafted president owns two automobiles with engines.
  EXPECT_FALSE(rel.empty());
}

// Q5 — query (3): attribute variables browse the schema through data.
TEST_F(PaperQueriesTest, Q5_AttributeVariable) {
  Relation rel =
      MustQuery("SELECT \"Y FROM Person X WHERE X.\"Y.City['newyork']");
  OidSet attrs = Column(rel);
  EXPECT_TRUE(attrs.Contains(A("Residence")));
  // With the selector dropped, more attributes may qualify, and the
  // answer must be a superset (the paper's point about ['newyork']).
  Relation broader = MustQuery("SELECT \"Y FROM Person X WHERE X.\"Y.City");
  EXPECT_TRUE(attrs.SubsetOf(Column(broader)));
}

// Q6 — query (4): subclassOf is strict; the answer is exactly
// {FourStrokeEngine, PistonEngine, Object}.
TEST_F(PaperQueriesTest, Q6_SchemaQuery) {
  Relation rel = MustQuery("SELECT $X WHERE TurboEngine subclassOf $X");
  OidSet classes = Column(rel);
  EXPECT_EQ(classes.size(), 3u);
  EXPECT_TRUE(classes.Contains(A("FourStrokeEngine")));
  EXPECT_TRUE(classes.Contains(A("PistonEngine")));
  EXPECT_TRUE(classes.Contains(A("Object")));
}

// Q7 — §3.2 quantified comparison: some>.
TEST_F(PaperQueriesTest, Q7_SomeComparator) {
  // _john13's spouse is 42 > 20.
  Relation rel = MustQuery(
      "SELECT X FROM Employee X WHERE X.FamMembers.Age some> 20");
  EXPECT_TRUE(Column(rel).Contains(A("_john13")));
  Relation john = MustQuery(
      "SELECT X FROM Employee X WHERE X.FamMembers.Age some> 20 "
      "and X.Name['john']");
  EXPECT_EQ(john.size(), 1u);
  // No family member of _john13 is older than 100.
  Relation none = MustQuery(
      "SELECT X FROM Employee X WHERE X.Name['john'] "
      "and X.FamMembers.Age some> 100");
  EXPECT_TRUE(none.empty());
}

// Q8 — §3.2: manufacturers with young presidents owning blue and red.
TEST_F(PaperQueriesTest, Q8_ContainsEq) {
  Relation rel = MustQuery(
      "SELECT X FROM Automobile Y WHERE Y.Manufacturer[X] "
      "and X.President.OwnedVehicles.Color containsEq {'blue', 'red'} "
      "and X.President.Age < 30");
  EXPECT_TRUE(Column(rel).Contains(A("comp0")));
  for (const auto& row : rel.rows()) {
    EXPECT_TRUE(db_.IsInstanceOf(row[0], workload::fig1::Company()));
  }
}

// Q9 — §3.2: =all (family all in the same residence) and all<all.
TEST_F(PaperQueriesTest, Q9_AllQuantifiers) {
  Relation rel = MustQuery(
      "SELECT X FROM Person X WHERE "
      "X.Residence =all X.FamMembers.Residence");
  OidSet same = Column(rel);
  EXPECT_TRUE(same.Contains(A("bigfam_emp")));
  // all<all: verify every returned pair against a manual check.
  Relation pairs = MustQuery(
      "SELECT X, Y FROM Employee X, Employee Y WHERE "
      "Y.FamMembers.Age all<all X.FamMembers.Age and X.Name['john']");
  for (const auto& row : pairs.rows()) {
    const AttrValue* yfam = db_.GetAttribute(row[1], A("FamMembers"));
    if (yfam == nullptr) continue;
    const AttrValue* xfam = db_.GetAttribute(row[0], A("FamMembers"));
    ASSERT_NE(xfam, nullptr);
    for (const Oid& ym : yfam->AsSet()) {
      const AttrValue* yage = db_.GetAttribute(ym, A("Age"));
      for (const Oid& xm : xfam->AsSet()) {
        const AttrValue* xage = db_.GetAttribute(xm, A("Age"));
        EXPECT_LT(yage->scalar().numeric_value(),
                  xage->scalar().numeric_value());
      }
    }
  }
}

// Q10 — §3.2 aggregates: big family, shared house, modest salary.
TEST_F(PaperQueriesTest, Q10_Aggregates) {
  Relation rel = MustQuery(
      "SELECT X FROM Employee X WHERE count(X.FamMembers) > 4 "
      "and X.Residence =all X.FamMembers.Residence "
      "and X.Salary < 35000");
  OidSet result = Column(rel);
  EXPECT_TRUE(result.Contains(A("bigfam_emp")));
}

// Q11 — query (5): two-column relation of company names and salaries.
TEST_F(PaperQueriesTest, Q11_RelationResult) {
  Relation rel = MustQuery(
      "SELECT X.Name, W.Salary FROM Company X "
      "WHERE X.Divisions.Employees[W]");
  ASSERT_EQ(rel.arity(), 2u);
  EXPECT_FALSE(rel.empty());
  for (const auto& row : rel.rows()) {
    EXPECT_TRUE(row[0].is_string());
    EXPECT_TRUE(row[1].is_numeric());
  }
}

// Q12 — query (6): the explicit join on Name.
TEST_F(PaperQueriesTest, Q12_ExplicitJoin) {
  Relation rel = MustQuery(
      "SELECT X, Y FROM Company X "
      "WHERE X.Name =some X.Divisions.Employees[Y].Name");
  bool found = false;
  for (const auto& row : rel.rows()) {
    if (row[0] == A("comp0") && row[1] == A("emp_0_0_1")) found = true;
    EXPECT_EQ(db_.GetAttribute(row[0], A("Name"))->scalar(),
              db_.GetAttribute(row[1], A("Name"))->scalar());
  }
  EXPECT_TRUE(found);
}

// Q13 — §4.1: OID FUNCTION OF X,W mints one object per (company,
// employee) pair; OID FUNCTION OF W one per employee.
TEST_F(PaperQueriesTest, Q13_OidFunctions) {
  auto out = session_->Execute(
      "SELECT EmpSalary = W.Salary FROM Company X OID FUNCTION OF X,W "
      "WHERE X.Divisions.Employees[W]");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_TRUE(out->objects_created);
  EXPECT_FALSE(out->created.empty());
  for (const Oid& oid : out->created) {
    ASSERT_TRUE(oid.is_term());
    EXPECT_EQ(oid.term_args().size(), 2u);
    const AttrValue* salary = db_.GetAttribute(oid, A("EmpSalary"));
    ASSERT_NE(salary, nullptr);
    EXPECT_TRUE(salary->scalar().is_numeric());
  }
  auto per_employee = session_->Execute(
      "SELECT EmpSalary = W.Salary FROM Company X OID FUNCTION OF W "
      "WHERE X.Divisions.Employees[W]");
  ASSERT_TRUE(per_employee.ok()) << per_employee.status().ToString();
  for (const Oid& oid : per_employee->created) {
    EXPECT_EQ(oid.term_args().size(), 1u);
  }
}

// Q14 — §4.1: depending the id only on the company while selecting
// per-employee salaries is an ill-defined query (run-time error).
TEST_F(PaperQueriesTest, Q14_IllDefinedQuery) {
  auto out = session_->Execute(
      "SELECT CompName = X.Name, EmpSalary = W.Salary "
      "FROM Company X OID FUNCTION OF X "
      "WHERE X.Divisions.Employees[W]");
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kRuntimeError);
  EXPECT_NE(out.status().message().find("ill-defined"), std::string::npos);
}

// Q15 — query (7): objects with a set attribute collecting employees.
TEST_F(PaperQueriesTest, Q15_SetAttributeObjects) {
  auto out = session_->Execute(
      "SELECT CompName = Y.Name, Employees = Y.Divisions.Employees "
      "FROM Company Y OID FUNCTION OF Y");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  bool some_nonempty = false;
  for (const Oid& oid : out->created) {
    const AttrValue* employees = db_.GetAttribute(oid, A("Employees"));
    if (employees != nullptr) {
      EXPECT_TRUE(employees->set_valued());
      if (!employees->set().empty()) some_nonempty = true;
    }
  }
  EXPECT_TRUE(some_nonempty);
}

// Q16 — query (8): OID FUNCTION as GROUP BY with a disjunctive WHERE.
TEST_F(PaperQueriesTest, Q16_GroupedBeneficiaries) {
  auto out = session_->Execute(
      "SELECT CompName = Y.Name, Beneficiaries = {W} "
      "FROM Company Y OID FUNCTION OF Y "
      "WHERE Y.Retirees[W] or Y.Divisions.Employees.Dependents[W]");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_FALSE(out->created.empty());
  for (const Oid& oid : out->created) {
    const Oid& company = oid.term_args()[0];
    const AttrValue* bene = db_.GetAttribute(oid, A("Beneficiaries"));
    if (bene == nullptr) continue;
    OidSet expected;
    if (const AttrValue* retirees =
            db_.GetAttribute(company, A("Retirees"))) {
      expected = OidSet::Union(expected, retirees->AsSet());
    }
    if (const AttrValue* divs = db_.GetAttribute(company, A("Divisions"))) {
      for (const Oid& div : divs->AsSet()) {
        if (const AttrValue* emps = db_.GetAttribute(div, A("Employees"))) {
          for (const Oid& emp : emps->AsSet()) {
            if (const AttrValue* deps =
                    db_.GetAttribute(emp, A("Dependents"))) {
              expected = OidSet::Union(expected, deps->AsSet());
            }
          }
        }
      }
    }
    EXPECT_EQ(bene->set(), expected) << "company " << company.ToString();
  }
}

// Q19 — §5 (12): define MngrSalary via ALTER CLASS, then (13): vehicles
// whose manufacturers pay all division managers above a threshold.
TEST_F(PaperQueriesTest, Q19_QueryDefinedMethod) {
  auto alter = session_->Execute(
      "ALTER CLASS Company "
      "ADD SIGNATURE MngrSalary : String => Numeral "
      "SELECT (MngrSalary @ Y.Name) = W "
      "FROM Company X OID X "
      "WHERE X.Divisions[Y].Manager.Salary[W]");
  ASSERT_TRUE(alter.ok()) << alter.status().ToString();

  // Direct invocation: comp0's engineering division manager salary.
  Relation direct =
      MustQuery("SELECT W WHERE comp0.(MngrSalary @ 'engineering')[W]");
  ASSERT_EQ(direct.size(), 1u);
  const AttrValue* divs = db_.GetAttribute(A("comp0"), A("Divisions"));
  ASSERT_NE(divs, nullptr);
  bool matched = false;
  for (const Oid& div : divs->AsSet()) {
    if (db_.GetAttribute(div, A("Name"))->scalar() ==
        Oid::String("engineering")) {
      Oid manager = db_.GetAttribute(div, A("Manager"))->scalar();
      EXPECT_EQ(direct.rows()[0][0],
                db_.GetAttribute(manager, A("Salary"))->scalar());
      matched = true;
    }
  }
  EXPECT_TRUE(matched);

  // Query (13): with an absurd threshold nothing qualifies...
  Relation none = MustQuery(
      "SELECT X FROM Vehicle X WHERE 200000 <all "
      "(SELECT W FROM Division Y WHERE "
      " X.Manufacturer.(MngrSalary @ Y.Name)[W])");
  EXPECT_TRUE(none.empty());
  // ...while with threshold 0 every vehicle with a manufacturer that
  // has divisions qualifies.
  Relation all = MustQuery(
      "SELECT X FROM Vehicle X WHERE 0 <all "
      "(SELECT W FROM Division Y WHERE "
      " X.Manufacturer.(MngrSalary @ Y.Name)[W])");
  EXPECT_FALSE(all.empty());
}

// Q20 — §5: the updating method RaiseMngrSalary with a nested UPDATE.
TEST_F(PaperQueriesTest, Q20_UpdateMethod) {
  ASSERT_TRUE(session_
                  ->Execute("ALTER CLASS Company "
                            "ADD SIGNATURE MngrSalary : String => Numeral "
                            "SELECT (MngrSalary @ Y.Name) = W "
                            "FROM Company X OID X "
                            "WHERE X.Divisions[Y].Manager.Salary[W]")
                  .ok());
  ASSERT_TRUE(session_
                  ->Execute("ALTER CLASS Company "
                            "ADD SIGNATURE RaiseMngrSalary : Numeral => Nil "
                            "SELECT (RaiseMngrSalary @ W) = nil "
                            "FROM Company X, Numeral W "
                            "OID X "
                            "WHERE W < 20 "
                            "and (UPDATE CLASS Company "
                            "     SET X.Divisions[Y].Manager.Salary = "
                            "         (1 + W / 100) * "
                            "         X.(MngrSalary @ Y.Name))")
                  .ok());

  // Record comp1's manager salaries.
  std::vector<std::pair<Oid, double>> before;
  const AttrValue* divs = db_.GetAttribute(A("comp1"), A("Divisions"));
  ASSERT_NE(divs, nullptr);
  for (const Oid& div : divs->AsSet()) {
    Oid manager = db_.GetAttribute(div, A("Manager"))->scalar();
    before.emplace_back(manager,
                        db_.GetAttribute(manager, A("Salary"))
                            ->scalar()
                            .numeric_value());
  }
  // Invoke the method on comp1 with a 10% raise.
  Relation rel = MustQuery(
      "SELECT X FROM Company X WHERE X.Name['company1'] "
      "and X.(RaiseMngrSalary @ 10)");
  EXPECT_EQ(rel.size(), 1u);
  for (const auto& [manager, old_salary] : before) {
    double now =
        db_.GetAttribute(manager, A("Salary"))->scalar().numeric_value();
    EXPECT_NEAR(now, old_salary * 1.10, 1e-6)
        << "manager " << manager.ToString();
  }
  // A raise of 20% or more is guarded out (W < 20).
  Relation guard = MustQuery(
      "SELECT X FROM Company X WHERE X.Name['company1'] "
      "and X.(RaiseMngrSalary @ 25)");
  EXPECT_TRUE(guard.empty());
}

// Q21 — introduction: the Nobel-prize query finds winners across
// classes without naming them.
TEST_F(PaperQueriesTest, Q21_NobelQuery) {
  ASSERT_TRUE(workload::BuildNobelSchema(&db_).ok());
  ASSERT_TRUE(db_.NewObject(A("curie"), {A("Scientist")}).ok());
  ASSERT_TRUE(db_.AddToSet(A("curie"), A("WonNobelPrize"),
                           Oid::String("physics")).ok());
  ASSERT_TRUE(db_.AddToSet(A("curie"), A("WonNobelPrize"),
                           Oid::String("chemistry")).ok());
  ASSERT_TRUE(db_.NewObject(A("unicef"), {A("CharityOrg")}).ok());
  ASSERT_TRUE(db_.AddToSet(A("unicef"), A("WonNobelPrize"),
                           Oid::String("peace")).ok());
  Relation rel = MustQuery("SELECT X WHERE X.WonNobelPrize");
  OidSet winners = Column(rel);
  EXPECT_TRUE(winners.Contains(A("curie")));
  EXPECT_TRUE(winners.Contains(A("unicef")));
  EXPECT_FALSE(winners.Contains(A("mary123")));
}

// §3.3: UNION / MINUS / INTERSECT on computed relations.
TEST_F(PaperQueriesTest, RelationalOperators) {
  Relation employees = MustQuery("SELECT X FROM Employee X");
  Relation persons = MustQuery("SELECT X FROM Person X");
  Relation diff =
      MustQuery("SELECT X FROM Person X MINUS SELECT X FROM Employee X");
  EXPECT_EQ(diff.size(), persons.size() - employees.size());
  Relation uni =
      MustQuery("SELECT X FROM Employee X UNION SELECT X FROM Person X");
  EXPECT_EQ(uni.size(), persons.size());
  Relation inter = MustQuery(
      "SELECT X FROM Person X INTERSECT SELECT X FROM Employee X");
  EXPECT_EQ(inter.size(), employees.size());
}

// §3.1 path-variable extension: X.*P.City finds the connecting
// attribute sequence.
TEST_F(PaperQueriesTest, PathVariables) {
  Relation rel = MustQuery(
      "SELECT X FROM Person X WHERE X.*P.City['newyork'] "
      "and X.Name['mary']");
  EXPECT_TRUE(Column(rel).Contains(A("mary123")));
}

// §3.1 template: FROM $X Y — retrieve the classes of individuals
// satisfying a condition.
TEST_F(PaperQueriesTest, ClassVariableFrom) {
  Relation rel =
      MustQuery("SELECT $C FROM $C Y WHERE Y.Name['mary'] and Y.Residence");
  OidSet classes = Column(rel);
  EXPECT_TRUE(classes.Contains(A("Person")));
  EXPECT_TRUE(classes.Contains(A("Object")));
  EXPECT_FALSE(classes.Contains(A("Employee")));
}

}  // namespace
}  // namespace xsql
