// §4.2 views (Q17/Q18 of DESIGN.md): CREATE VIEW, querying through view
// id-terms, view-to-base update translation; plus UPDATE CLASS and
// ALTER CLASS mechanics.
#include <gtest/gtest.h>

#include "eval/session.h"
#include "workload/fig1_schema.h"
#include "workload/generator.h"

namespace xsql {
namespace {

Oid A(const char* s) { return Oid::Atom(s); }

class ViewTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(workload::BuildFig1Schema(&db_).ok());
    workload::WorkloadParams params;
    params.companies = 2;
    params.divisions_per_company = 2;
    params.employees_per_division = 2;
    ASSERT_TRUE(workload::GenerateFig1Data(&db_, params).ok());
    session_ = std::make_unique<Session>(&db_);
    ASSERT_TRUE(session_->Execute(kCompSalariesView).ok());
  }

  static constexpr const char* kCompSalariesView =
      "CREATE VIEW CompSalaries AS SUBCLASS OF Object "
      "SIGNATURE CompName => String, DivName => String, Salary => Numeral "
      "SELECT CompName = X.Name, DivName = Y.Name, Salary = W.Salary "
      "FROM Company X OID FUNCTION OF X,W "
      "WHERE X.Divisions[Y].Employees[W]";

  Database db_;
  std::unique_ptr<Session> session_;
};

// Q17a — the view is a class: declared, a subclass of Object, with its
// signatures installed.
TEST_F(ViewTest, ViewIsAClass) {
  EXPECT_TRUE(db_.graph().IsClass(A("CompSalaries")));
  EXPECT_TRUE(db_.graph().IsStrictSubclass(A("CompSalaries"), A("Object")));
  auto sigs = db_.signatures().Declared(A("CompSalaries"), A("Salary"));
  ASSERT_EQ(sigs.size(), 1u);
  EXPECT_EQ(sigs[0].result, A("Numeral"));
  EXPECT_TRUE(session_->views().IsView("CompSalaries"));
}

// Q17b — materialization: one view object per (company, employee), with
// only the projected attributes (a security measure, §4.2).
TEST_F(ViewTest, Materialization) {
  ASSERT_TRUE(session_->views().Materialize("CompSalaries").ok());
  OidSet extent = db_.Extent(A("CompSalaries"));
  ASSERT_FALSE(extent.empty());
  for (const Oid& oid : extent) {
    ASSERT_TRUE(oid.is_term());
    EXPECT_EQ(oid.term_fn(), "CompSalaries");
    EXPECT_NE(db_.GetAttribute(oid, A("Salary")), nullptr);
    EXPECT_NE(db_.GetAttribute(oid, A("CompName")), nullptr);
    // The view hides everything else about the employee.
    EXPECT_EQ(db_.GetAttribute(oid, A("FamMembers")), nullptr);
  }
}

// Q17c — query (10): views and non-views mix in one query through the
// id-term CompSalaries(X.Manufacturer, W); materialization is implicit.
TEST_F(ViewTest, QueryThroughViewIdTerm) {
  auto rel = session_->Query(
      "SELECT X.Manufacturer.Name FROM Automobile X, Employee W "
      "WHERE CompSalaries(X.Manufacturer, W).Salary > 35000");
  ASSERT_TRUE(rel.ok()) << rel.status().ToString();
  EXPECT_FALSE(rel->empty());
  for (const auto& row : rel->rows()) {
    EXPECT_TRUE(row[0].is_string());
  }
  // Tightening the threshold beyond every salary empties the answer.
  auto none = session_->Query(
      "SELECT X.Manufacturer.Name FROM Automobile X, Employee W "
      "WHERE CompSalaries(X.Manufacturer, W).Salary > 100000000");
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());
}

// The view can also be queried as a plain class.
TEST_F(ViewTest, ViewAsFromClass) {
  ASSERT_TRUE(session_->views().Materialize("CompSalaries").ok());
  auto rel = session_->Query(
      "SELECT V.CompName, V.Salary FROM CompSalaries V "
      "WHERE V.Salary > 0");
  ASSERT_TRUE(rel.ok()) << rel.status().ToString();
  EXPECT_FALSE(rel->empty());
}

// Q18 — §4.2 view update translation: updating Salary through the view
// updates the underlying employee (the OID FUNCTION variable W).
TEST_F(ViewTest, UpdateThroughView) {
  ASSERT_TRUE(session_->views().Materialize("CompSalaries").ok());
  OidSet extent = db_.Extent(A("CompSalaries"));
  ASSERT_FALSE(extent.empty());
  Oid view_obj = *extent.begin();
  const Oid& employee = view_obj.term_args()[1];
  double old_salary =
      db_.GetAttribute(employee, A("Salary"))->scalar().numeric_value();
  Oid raised = Oid::Int(static_cast<int64_t>(old_salary * 1.10));
  ASSERT_TRUE(session_->views()
                  .UpdateThroughView(view_obj, A("Salary"), raised)
                  .ok());
  EXPECT_EQ(db_.GetAttribute(employee, A("Salary"))->scalar(), raised);
  // The view object is kept in sync.
  EXPECT_EQ(db_.GetAttribute(view_obj, A("Salary"))->scalar(), raised);
}

TEST_F(ViewTest, UpdateThroughViewRejectsNonUpdatable) {
  ASSERT_TRUE(session_->views().Materialize("CompSalaries").ok());
  OidSet extent = db_.Extent(A("CompSalaries"));
  Oid view_obj = *extent.begin();
  // DivName derives from Y, which is not an OID FUNCTION variable.
  Status st = session_->views().UpdateThroughView(view_obj, A("DivName"),
                                                  Oid::String("x"));
  EXPECT_FALSE(st.ok());
  // Unknown attribute.
  EXPECT_FALSE(session_->views()
                   .UpdateThroughView(view_obj, A("Nope"), Oid::Int(1))
                   .ok());
  // Unknown view.
  EXPECT_FALSE(session_->views()
                   .UpdateThroughView(Oid::Term("NoView", {}), A("Salary"),
                                      Oid::Int(1))
                   .ok());
}

TEST_F(ViewTest, RematerializationTracksBaseChanges) {
  ASSERT_TRUE(session_->views().Materialize("CompSalaries").ok());
  size_t before = db_.Extent(A("CompSalaries")).size();
  // Hire someone new into comp0's first division.
  ASSERT_TRUE(db_.NewObject(A("newbie"), {A("Employee")}).ok());
  ASSERT_TRUE(db_.SetScalar(A("newbie"), A("Salary"), Oid::Int(50000)).ok());
  const AttrValue* divs = db_.GetAttribute(A("comp0"), A("Divisions"));
  Oid division = *divs->AsSet().begin();
  ASSERT_TRUE(db_.AddToSet(division, A("Employees"), A("newbie")).ok());
  ASSERT_TRUE(session_->views().EnsureMaterialized("CompSalaries").ok());
  EXPECT_EQ(db_.Extent(A("CompSalaries")).size(), before + 1);
}

TEST_F(ViewTest, DuplicateViewRejected) {
  auto again = session_->Execute(kCompSalariesView);
  EXPECT_FALSE(again.ok());
}

TEST_F(ViewTest, ViewQueryRequiresOidFunction) {
  auto bad = session_->Execute(
      "CREATE VIEW Broken AS SUBCLASS OF Object "
      "SIGNATURE N => String "
      "SELECT N = X.Name FROM Company X");
  EXPECT_FALSE(bad.ok());
}

class UpdateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(workload::BuildFig1Schema(&db_).ok());
    workload::WorkloadParams params;
    params.companies = 1;
    ASSERT_TRUE(workload::GenerateFig1Data(&db_, params).ok());
    session_ = std::make_unique<Session>(&db_);
  }

  Database db_;
  std::unique_ptr<Session> session_;
};

// Standalone UPDATE CLASS with free variables enumerates targets.
TEST_F(UpdateTest, StandaloneUpdate) {
  auto out = session_->Execute(
      "UPDATE CLASS Division SET div0_0.Function = 'mischief'");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(db_.GetAttribute(A("div0_0"), A("Function"))->scalar(),
            Oid::String("mischief"));
}

TEST_F(UpdateTest, UpdateWithPathPrefix) {
  // Set the City of mary123's residence through a path.
  auto out = session_->Execute(
      "UPDATE CLASS Address SET mary123.Residence.City = 'boston'");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(db_.GetAttribute(A("addr_mary123"), A("City"))->scalar(),
            Oid::String("boston"));
}

TEST_F(UpdateTest, UpdateTargetMustBeAttribute) {
  EXPECT_FALSE(session_->Execute("UPDATE CLASS Person SET mary123 = 5").ok());
}

TEST_F(UpdateTest, AlterClassAddsSignatures) {
  auto out = session_->Execute(
      "ALTER CLASS Employee ADD SIGNATURE "
      "Bonus => Numeral, workstudy : String =>> {Person, Employee}");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(db_.signatures().Declared(A("Employee"), A("Bonus")).size(), 1u);
  // The multi-result abbreviation expands to two signatures (§2).
  EXPECT_EQ(db_.signatures().Declared(A("Employee"), A("workstudy")).size(),
            2u);
}

TEST_F(UpdateTest, QueryMethodScalarityEnforced) {
  // A "scalar" method whose body produces several values errors out.
  ASSERT_TRUE(session_->Execute(
      "ALTER CLASS Company ADD SIGNATURE AnySalary => Numeral "
      "SELECT (AnySalary) = W FROM Company X OID X "
      "WHERE X.Divisions.Employees.Salary[W]").ok());
  auto rel = session_->Query("SELECT W WHERE comp0.AnySalary[W]");
  ASSERT_FALSE(rel.ok());
  EXPECT_EQ(rel.status().code(), StatusCode::kRuntimeError);
}

}  // namespace
}  // namespace xsql
