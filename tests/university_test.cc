// The university domain (§2, §6.1): polymorphic `earns`, the Workstudy
// multiple-inheritance diamond with explicit [MEY88] resolution, and
// the combined `workstudy : Semester =>> {Student, Employee}` signature.
#include <gtest/gtest.h>

#include "parser/parser.h"
#include "typing/type_checker.h"
#include "typing/type_expr.h"
#include "workload/university.h"

namespace xsql {
namespace {

Oid A(const char* s) { return Oid::Atom(s); }

class UniversityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    session_ = std::make_unique<Session>(&db_);
    ASSERT_TRUE(workload::BuildUniversity(session_.get()).ok());
  }

  OidSet Column(const Relation& rel) {
    OidSet out;
    for (const auto& row : rel.rows()) out.Insert(row[0]);
    return out;
  }

  Database db_;
  std::unique_ptr<Session> session_;
};

TEST_F(UniversityTest, DiamondHierarchy) {
  EXPECT_TRUE(db_.graph().IsStrictSubclass(A("Workstudy"), A("Student")));
  EXPECT_TRUE(db_.graph().IsStrictSubclass(A("Workstudy"), A("Employee")));
  EXPECT_TRUE(db_.graph().IsStrictSubclass(A("Workstudy"), A("Person")));
  // carol is in every extent along the diamond.
  EXPECT_TRUE(db_.IsInstanceOf(A("carol"), A("Student")));
  EXPECT_TRUE(db_.IsInstanceOf(A("carol"), A("Employee")));
}

TEST_F(UniversityTest, EarnsHasBothTypeExpressions) {
  // §6.1: "earns has two type expressions, employee,project => pay and
  // student,course => grade" — and Workstudy inherits both.
  auto declared = DeclaredTypeExprs(db_, A("earns"));
  EXPECT_EQ(declared.size(), 2u);
  TypeExpr on_workstudy_course;
  on_workstudy_course.receiver = A("Workstudy");
  on_workstudy_course.args = {A("Course")};
  on_workstudy_course.result = A("Grade");
  EXPECT_TRUE(Possesses(db_, A("earns"), on_workstudy_course));
  TypeExpr on_workstudy_project = on_workstudy_course;
  on_workstudy_project.args = {A("Project")};
  on_workstudy_project.result = A("Pay");
  EXPECT_TRUE(Possesses(db_, A("earns"), on_workstudy_project));
}

TEST_F(UniversityTest, PolymorphicDispatchOnArgument) {
  // §6.1: "in the class workstudy ... earns returns an object of class
  // pay when passed a project; if the argument is a course the result
  // is a grade."
  auto grade = session_->Query("SELECT V WHERE carol.(earns @ cs202)[V]");
  ASSERT_TRUE(grade.ok()) << grade.status().ToString();
  ASSERT_EQ(grade->size(), 1u);
  EXPECT_EQ(grade->rows()[0][0], A("grade_c"));
  auto pay = session_->Query("SELECT V WHERE carol.(earns @ proj_lyra)[V]");
  ASSERT_TRUE(pay.ok()) << pay.status().ToString();
  ASSERT_EQ(pay->size(), 1u);
  EXPECT_EQ(pay->rows()[0][0], A("pay_c"));
  // A course carol never took yields nothing.
  auto none = session_->Query("SELECT V WHERE carol.(earns @ cs101)[V]");
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());
}

TEST_F(UniversityTest, PlainClassesUseOwnDefinition) {
  auto alice = session_->Query("SELECT V WHERE alice.(earns @ cs101)[V]");
  ASSERT_TRUE(alice.ok()) << alice.status().ToString();
  ASSERT_EQ(alice->size(), 1u);
  EXPECT_EQ(alice->rows()[0][0], A("grade_a"));
  auto bob = session_->Query("SELECT V WHERE bob.(earns @ proj_orion)[V]");
  ASSERT_TRUE(bob.ok()) << bob.status().ToString();
  ASSERT_EQ(bob->size(), 1u);
  EXPECT_EQ(bob->rows()[0][0], A("pay_b"));
}

TEST_F(UniversityTest, CombinedWorkstudySignature) {
  // §2: workstudy : semester =>> {student, employee} is two signatures.
  EXPECT_EQ(db_.signatures().Declared(A("Department"), A("workstudy")).size(),
            2u);
  auto rel = session_->Query(
      "SELECT M WHERE cs_dept.(workstudy @ fall2026)[M]");
  ASSERT_TRUE(rel.ok()) << rel.status().ToString();
  ASSERT_EQ(rel->size(), 1u);
  EXPECT_EQ(rel->rows()[0][0], A("carol"));
  auto empty = session_->Query(
      "SELECT M WHERE cs_dept.(workstudy @ spring2027)[M]");
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
}

TEST_F(UniversityTest, StrictTypingPicksTheRightSignature) {
  auto stmt = ParseAndResolve(
      "SELECT W FROM Workstudy X, Project P WHERE X.(earns @ P)[W]", db_);
  ASSERT_TRUE(stmt.ok());
  TypeChecker checker(db_);
  TypingResult strict =
      checker.Check(*stmt->query->simple, TypingMode::kStrict);
  ASSERT_TRUE(strict.well_typed) << strict.explanation;
  EXPECT_EQ(strict.assignment[0][0].args[0], A("Project"));
  EXPECT_EQ(strict.assignment[0][0].result, A("Pay"));
  // Through the Course door the same method types to Grade.
  auto stmt2 = ParseAndResolve(
      "SELECT W FROM Workstudy X, Course C WHERE X.(earns @ C)[W]", db_);
  ASSERT_TRUE(stmt2.ok());
  TypingResult strict2 =
      checker.Check(*stmt2->query->simple, TypingMode::kStrict);
  ASSERT_TRUE(strict2.well_typed) << strict2.explanation;
  EXPECT_EQ(strict2.assignment[0][0].result, A("Grade"));
}

TEST_F(UniversityTest, QueryAcrossTheDiamond) {
  // Workstudy members whose pay on some project exceeds 1000 and who
  // also hold a grade above 80 — exercising both parents' vocabulary
  // in one query.
  auto rel = session_->Query(
      "SELECT X FROM Workstudy X WHERE "
      "X.PayRecords.Pay.Value some> 1000 "
      "and X.GradeRecords.Grade.Value some> 80");
  ASSERT_TRUE(rel.ok()) << rel.status().ToString();
  ASSERT_EQ(rel->size(), 1u);
  EXPECT_EQ(rel->rows()[0][0], A("carol"));
}

}  // namespace
}  // namespace xsql
