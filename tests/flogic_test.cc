// Theorem 3.1: the translation procedure P and the F-logic model
// checker; translated queries must agree with the XSQL evaluators.
#include <gtest/gtest.h>

#include "eval/session.h"
#include "flogic/flogic_eval.h"
#include "flogic/translate.h"
#include "parser/parser.h"
#include "workload/fig1_schema.h"
#include "workload/generator.h"

namespace xsql {
namespace {

Oid A(const char* s) { return Oid::Atom(s); }

class FLogicTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(workload::BuildFig1Schema(&db_).ok());
    // Keep the instance tiny: the model checker is the *naive*
    // semantics and quantifies over the whole active domain.
    workload::WorkloadParams params;
    params.companies = 1;
    params.divisions_per_company = 1;
    params.employees_per_division = 2;
    params.extra_persons = 2;
    params.automobiles = 2;
    ASSERT_TRUE(workload::GenerateFig1Data(&db_, params).ok());
    session_ = std::make_unique<Session>(&db_);
  }

  Query MustParseQuery(const std::string& text) {
    auto stmt = ParseAndResolve(text, db_);
    EXPECT_TRUE(stmt.ok()) << stmt.status().ToString();
    return *stmt->query->simple;
  }

  /// Sorted multiset of rows for order-insensitive comparison.
  static std::multiset<std::vector<Oid>> Rows(const Relation& rel) {
    return {rel.rows().begin(), rel.rows().end()};
  }

  void ExpectEquivalent(const std::string& text) {
    Query q = MustParseQuery(text);
    auto translated = flogic::TranslateToFLogic(q);
    ASSERT_TRUE(translated.ok()) << text << "\n"
                                 << translated.status().ToString();
    auto flogic_answer = flogic::EvaluateFLogic(*translated, &db_);
    ASSERT_TRUE(flogic_answer.ok()) << flogic_answer.status().ToString();
    auto xsql_answer = session_->Query(text);
    ASSERT_TRUE(xsql_answer.ok()) << xsql_answer.status().ToString();
    EXPECT_EQ(Rows(*flogic_answer), Rows(*xsql_answer)) << text;
  }

  Database db_;
  std::unique_ptr<Session> session_;
};

TEST_F(FLogicTest, TranslationShape) {
  Query q = MustParseQuery(
      "SELECT Y FROM Person X WHERE X.Residence[Y].City['newyork']");
  auto translated = flogic::TranslateToFLogic(q);
  ASSERT_TRUE(translated.ok());
  ASSERT_EQ(translated->answer_vars.size(), 1u);
  EXPECT_EQ(translated->answer_vars[0].name, "Y");
  std::string rendered = translated->ToString();
  // FROM becomes an isa atom, the path becomes data molecules.
  EXPECT_NE(rendered.find("X : Person"), std::string::npos);
  EXPECT_NE(rendered.find("X[Residence ->> Y]"), std::string::npos);
  EXPECT_NE(rendered.find("Y[City ->>"), std::string::npos);
}

TEST_F(FLogicTest, RejectsNonFirstOrderConstructs) {
  EXPECT_FALSE(flogic::TranslateToFLogic(
                   MustParseQuery("SELECT X FROM Employee X "
                                  "WHERE count(X.FamMembers) > 4"))
                   .ok());
  EXPECT_FALSE(flogic::TranslateToFLogic(
                   MustParseQuery("SELECT S = X.Name FROM Company X "
                                  "OID FUNCTION OF X"))
                   .ok());
}

TEST_F(FLogicTest, GroundPathEquivalence) {
  ExpectEquivalent("SELECT C WHERE mary123.Residence.City[C]");
}

TEST_F(FLogicTest, SelectionEquivalence) {
  ExpectEquivalent(
      "SELECT Y FROM Person X WHERE X.Residence[Y].City['newyork']");
}

TEST_F(FLogicTest, MultiPathEquivalence) {
  ExpectEquivalent(
      "SELECT Z FROM Employee X, Automobile Y "
      "WHERE X.OwnedVehicles[Y].Drivetrain.Engine[Z]");
}

TEST_F(FLogicTest, QuantifiedComparisonEquivalence) {
  ExpectEquivalent(
      "SELECT X FROM Employee X WHERE X.FamMembers.Age some> 20");
  ExpectEquivalent(
      "SELECT X FROM Person X WHERE X.Residence =all "
      "X.FamMembers.Residence");
}

TEST_F(FLogicTest, SetComparatorEquivalence) {
  ExpectEquivalent(
      "SELECT X FROM Automobile Y WHERE Y.Manufacturer[X] and "
      "X.President.OwnedVehicles.Color containsEq {'blue', 'red'}");
}

TEST_F(FLogicTest, SubclassOfEquivalence) {
  ExpectEquivalent("SELECT $X WHERE TurboEngine subclassOf $X");
}

TEST_F(FLogicTest, DisjunctionAndJoinEquivalence) {
  ExpectEquivalent(
      "SELECT W FROM Company Y WHERE Y.Retirees[W] or "
      "Y.Divisions.Employees.Dependents[W]");
  ExpectEquivalent(
      "SELECT X, Y FROM Company X "
      "WHERE X.Name =some X.Divisions.Employees[Y].Name");
}

TEST_F(FLogicTest, MethodVariableEquivalence) {
  ExpectEquivalent(
      "SELECT \"Y FROM Person X WHERE X.\"Y.City['newyork']");
}

TEST_F(FLogicTest, FormulaToStringCoversConnectives) {
  using flogic::Atom;
  using flogic::Formula;
  Atom isa;
  isa.kind = Atom::Kind::kIsa;
  isa.obj = IdTerm::Var(Variable{"X", VarSort::kIndividual});
  isa.value = IdTerm::Const(A("Person"));
  auto f = Formula::Exists(
      Variable{"X", VarSort::kIndividual},
      Formula::Not(Formula::Or({Formula::Make(isa), Formula::Make(isa)})));
  EXPECT_EQ(f->ToString(),
            "EXISTS X (NOT ((X : Person OR X : Person)))");
}

}  // namespace
}  // namespace xsql
