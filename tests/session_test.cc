// Session-level behaviours: Explain, statement dispatch, statelessness
// across repeated queries, correlated subqueries, arithmetic edge
// cases, and printing of results.
#include <gtest/gtest.h>

#include "eval/session.h"
#include "workload/fig1_schema.h"
#include "workload/generator.h"

namespace xsql {
namespace {

Oid A(const char* s) { return Oid::Atom(s); }

class SessionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(workload::BuildFig1Schema(&db_).ok());
    workload::WorkloadParams params;
    params.companies = 2;
    params.divisions_per_company = 2;
    params.employees_per_division = 2;
    ASSERT_TRUE(workload::GenerateFig1Data(&db_, params).ok());
    session_ = std::make_unique<Session>(&db_);
  }

  Database db_;
  std::unique_ptr<Session> session_;
};

TEST_F(SessionTest, ExplainStrictQuery) {
  auto report = session_->Explain(
      "SELECT X FROM Vehicle X WHERE X.Manufacturer[M] "
      "and M.President.OwnedVehicles[X]");
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_NE(report->find("strict  : well-typed"), std::string::npos);
  EXPECT_NE(report->find("plan    : p0 -> p1"), std::string::npos);
  EXPECT_NE(report->find("A(M)"), std::string::npos);
}

TEST_F(SessionTest, ExplainLiberalOnlyQuery) {
  ASSERT_TRUE(workload::BuildNobelSchema(&db_).ok());
  auto report = session_->Explain("SELECT X WHERE X.WonNobelPrize");
  ASSERT_TRUE(report.ok());
  EXPECT_NE(report->find("liberal : well-typed"), std::string::npos);
  EXPECT_NE(report->find("strict  : ill-typed"), std::string::npos);
}

TEST_F(SessionTest, ExplainOutsideFragment) {
  auto report = session_->Explain(
      "SELECT X FROM Person X WHERE X.Name['a'] or X.Age > 1");
  ASSERT_TRUE(report.ok());
  EXPECT_NE(report->find("outside the typed fragment"), std::string::npos);
}

TEST_F(SessionTest, RepeatedQueriesAreStateless) {
  const char* text =
      "SELECT X.Name, W.Salary FROM Company X WHERE X.Divisions.Employees[W]";
  auto first = session_->Query(text);
  ASSERT_TRUE(first.ok());
  auto second = session_->Query(text);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->rows(), second->rows());
}

TEST_F(SessionTest, CorrelatedSubquery) {
  // Companies where some employee earns above the company president's
  // salary (X is free in the subquery).
  auto rel = session_->Query(
      "SELECT X FROM Company X WHERE "
      "X.President.Salary some< "
      "(SELECT W FROM Employee E WHERE X.Divisions.Employees[E] "
      " and E.Salary[W])");
  ASSERT_TRUE(rel.ok()) << rel.status().ToString();
  // Verify each answer manually.
  for (const auto& row : rel->rows()) {
    const Oid& company = row[0];
    Oid president = db_.GetAttribute(company, A("President"))->scalar();
    double pres_salary =
        db_.GetAttribute(president, A("Salary"))->scalar().numeric_value();
    bool some_higher = false;
    for (const Oid& div :
         db_.GetAttribute(company, A("Divisions"))->AsSet()) {
      for (const Oid& emp : db_.GetAttribute(div, A("Employees"))->AsSet()) {
        if (db_.GetAttribute(emp, A("Salary"))->scalar().numeric_value() >
            pres_salary) {
          some_higher = true;
        }
      }
    }
    EXPECT_TRUE(some_higher) << company.ToString();
  }
}

TEST_F(SessionTest, ArithmeticMixesIntAndReal) {
  auto rel = session_->Query(
      "SELECT X FROM Employee X WHERE X.Salary * 1.5 > X.Salary + 1");
  ASSERT_TRUE(rel.ok()) << rel.status().ToString();
  EXPECT_EQ(rel->size(), db_.Extent(A("Employee")).size());
  // Integer arithmetic stays integral.
  auto sum = session_->Query(
      "SELECT X FROM Employee X WHERE X.Salary + 0 = X.Salary");
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(sum->size(), db_.Extent(A("Employee")).size());
}

TEST_F(SessionTest, RelationToStringShowsColumnsAndRows) {
  auto rel = session_->Query("SELECT C WHERE comp0.Name[C]");
  ASSERT_TRUE(rel.ok());
  std::string text = rel->ToString();
  EXPECT_NE(text.find("'company0'"), std::string::npos);
}

TEST_F(SessionTest, DdlResultsReportTargets) {
  auto view = session_->Execute(
      "CREATE VIEW V AS SUBCLASS OF Object SIGNATURE S => Numeral "
      "SELECT S = W.Salary FROM Employee W OID FUNCTION OF W");
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->relation.rows()[0][0], A("V"));
  auto alter = session_->Execute(
      "ALTER CLASS Employee ADD SIGNATURE Bonus => Numeral");
  ASSERT_TRUE(alter.ok());
  EXPECT_EQ(alter->relation.rows()[0][0], A("Employee"));
}

TEST_F(SessionTest, MinMaxAggregates) {
  auto rel = session_->Query(
      "SELECT X FROM Company X WHERE "
      "min(X.Divisions.Employees.Salary) < max(X.Divisions.Employees.Salary)");
  ASSERT_TRUE(rel.ok()) << rel.status().ToString();
  // Both companies have employees with distinct salaries (seeded data).
  EXPECT_FALSE(rel->empty());
  auto avg = session_->Query(
      "SELECT X FROM Company X WHERE "
      "avg(X.Divisions.Employees.Salary) <= "
      "max(X.Divisions.Employees.Salary)");
  ASSERT_TRUE(avg.ok());
  EXPECT_EQ(avg->size(), db_.Extent(A("Company")).size());
}

TEST_F(SessionTest, SumAggregate) {
  auto rel = session_->Query(
      "SELECT X FROM Employee X WHERE "
      "sum(X.Qualifications) > 0");  // sum over strings is an error
  EXPECT_FALSE(rel.ok());
  auto ok = session_->Query(
      "SELECT X FROM Company X WHERE "
      "sum(X.Divisions.Employees.Salary) > 0");
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok->size(), db_.Extent(A("Company")).size());
}

TEST_F(SessionTest, NotConditionFiltersGroundly) {
  auto rel = session_->Query(
      "SELECT X FROM Person X WHERE X.Residence and "
      "not X.Residence.City['newyork']");
  ASSERT_TRUE(rel.ok()) << rel.status().ToString();
  for (const auto& row : rel->rows()) {
    const AttrValue* res = db_.GetAttribute(row[0], A("Residence"));
    ASSERT_NE(res, nullptr);
    const AttrValue* city = db_.GetAttribute(res->scalar(), A("City"));
    if (city != nullptr) {
      EXPECT_NE(city->scalar(), Oid::String("newyork"));
    }
  }
}

}  // namespace
}  // namespace xsql
