// The concurrent-server execution core, minus the sockets: writer
// latch semantics (serialized writers, deadline/cancel-aware waits),
// conservative three-way statement classification (ClassifyMode),
// group-commit batching and its sticky-failure model,
// the multi-threaded serializability stress test (final state must be
// byte-identical to a serial replay of the durable statement history),
// and crash-during-group-commit recovery. Run under TSan by ci.sh.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <memory>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "common/fault.h"
#include "obs/metrics.h"
#include "server/concurrency.h"
#include "storage/recovery.h"
#include "storage/snapshot.h"
#include "storage/wal.h"

namespace xsql {
namespace server {
namespace {

using storage::DurableDatabase;
using storage::DurableOptions;
using storage::GroupCommitter;
using storage::SaveSnapshot;
using storage::Wal;

// The same statement-built fixture the durability suite uses: recovery
// replays statements, so everything must be creatable by statement.
std::vector<std::string> Prelude() {
  return {
      "ALTER CLASS Person ADD SIGNATURE Name => String",
      "ALTER CLASS Person ADD SIGNATURE Salary => Numeral",
      "UPDATE CLASS Person SET mary.Name = 'mary'",
      "UPDATE CLASS Person SET mary.Salary = 100",
  };
}

class ConcurrencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = ::testing::TempDir() + "/xsql_concurrent_" + info->name();
    std::filesystem::remove_all(dir_);
  }

  void TearDown() override {
    FaultInjector::Global().Disarm();
    std::filesystem::remove_all(dir_);
  }

  std::unique_ptr<DurableDatabase> MustOpen(const std::string& dir) {
    auto dd = DurableDatabase::Open(dir);
    EXPECT_TRUE(dd.ok()) << dd.status().ToString();
    return dd.ok() ? std::move(*dd) : nullptr;
  }

  void MustExecute(DurableDatabase* dd,
                   const std::vector<std::string>& script) {
    for (const std::string& stmt : script) {
      auto out = dd->Execute(stmt);
      ASSERT_TRUE(out.ok()) << stmt << ": " << out.status().ToString();
    }
  }

  std::string dir_;
};

// ---------------------------------------------------------------- latch

TEST(StatementLatchTest, SharedHoldersRunInParallel) {
  StatementLatch latch;
  ASSERT_TRUE(latch.AcquireShared(ExecLimits{}, nullptr).ok());
  // A second reader gets in while the first still holds.
  std::atomic<bool> entered{false};
  std::thread reader([&] {
    ASSERT_TRUE(latch.AcquireShared(ExecLimits{}, nullptr).ok());
    entered.store(true);
    latch.ReleaseShared();
  });
  reader.join();
  EXPECT_TRUE(entered.load());
  latch.ReleaseShared();
  EXPECT_EQ(latch.shared_acquires(), 2u);
}

TEST(StatementLatchTest, ExclusiveExcludesReaders) {
  StatementLatch latch;
  ASSERT_TRUE(latch.AcquireExclusive(ExecLimits{}, nullptr).ok());
  std::atomic<bool> entered{false};
  std::thread reader([&] {
    ASSERT_TRUE(latch.AcquireShared(ExecLimits{}, nullptr).ok());
    entered.store(true);
    latch.ReleaseShared();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(entered.load());  // still parked behind the writer
  latch.ReleaseExclusive();
  reader.join();
  EXPECT_TRUE(entered.load());
}

TEST(StatementLatchTest, WaitingWriterBlocksNewReaders) {
  StatementLatch latch;
  ASSERT_TRUE(latch.AcquireShared(ExecLimits{}, nullptr).ok());
  std::atomic<bool> writer_in{false};
  std::atomic<bool> late_reader_in{false};
  std::thread writer([&] {
    ASSERT_TRUE(latch.AcquireExclusive(ExecLimits{}, nullptr).ok());
    writer_in.store(true);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    latch.ReleaseExclusive();
  });
  // Let the writer start waiting, then try to read: writer preference
  // must park this reader even though only a shared hold is active.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  std::thread late_reader([&] {
    ASSERT_TRUE(latch.AcquireShared(ExecLimits{}, nullptr).ok());
    late_reader_in.store(true);
    // The writer must have gone first.
    EXPECT_TRUE(writer_in.load());
    latch.ReleaseShared();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(late_reader_in.load());
  latch.ReleaseShared();  // frees the writer, then the late reader
  writer.join();
  late_reader.join();
  EXPECT_TRUE(late_reader_in.load());
}

TEST(StatementLatchTest, DeadlineTripsWhileWaiting) {
  StatementLatch latch;
  ASSERT_TRUE(latch.AcquireExclusive(ExecLimits{}, nullptr).ok());
  ExecLimits limits;
  limits.deadline_ms = 40;
  Status st = latch.AcquireShared(limits, nullptr);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(st.message().find("(guard: latch-wait)"), std::string::npos)
      << st.ToString();
  latch.ReleaseExclusive();
  // The latch is undamaged: acquisition works again.
  EXPECT_TRUE(latch.AcquireShared(ExecLimits{}, nullptr).ok());
  latch.ReleaseShared();
}

TEST(StatementLatchTest, CancelTripsWhileWaiting) {
  StatementLatch latch;
  ASSERT_TRUE(latch.AcquireShared(ExecLimits{}, nullptr).ok());
  auto cancel = std::make_shared<CancelToken>();
  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    cancel->RequestCancel();
  });
  Status st = latch.AcquireExclusive(ExecLimits{}, cancel);
  canceller.join();
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kCancelled);
  EXPECT_NE(st.message().find("(guard: latch-wait)"), std::string::npos);
  latch.ReleaseShared();
  // An abandoned exclusive wait must not leave readers parked forever.
  EXPECT_TRUE(latch.AcquireShared(ExecLimits{}, nullptr).ok());
  latch.ReleaseShared();
}

// ------------------------------------------------------- classification

TEST_F(ConcurrencyTest, ClassifyModeIsConservative) {
  auto dd = MustOpen(dir_);
  ASSERT_NE(dd, nullptr);
  MustExecute(dd.get(), Prelude());
  const Database& db = dd->db();
  const ViewManager& views = dd->session().views();
  auto mode = [&](const std::string& text) {
    return ClassifyMode(text, storage::ClassifyStatement(text, db), db,
                        views);
  };

  // Reads run latch-free on the shared snapshot.
  EXPECT_EQ(mode("SELECT X FROM Person X"), StatementMode::kSharedRead);
  EXPECT_EQ(mode("SELECT S FROM Person X WHERE X.Salary[S]"),
            StatementMode::kSharedRead);
  EXPECT_EQ(mode("EXPLAIN SELECT X FROM Person X"),
            StatementMode::kSharedRead);
  EXPECT_EQ(mode("SYSTEM METRICS"), StatementMode::kSharedRead);

  // Mutation kinds are writes.
  EXPECT_EQ(mode("UPDATE CLASS Person SET mary.Salary = 200"),
            StatementMode::kWrite);
  EXPECT_EQ(mode("ALTER CLASS Person ADD SIGNATURE Age => Numeral"),
            StatementMode::kWrite);
  // EXPLAIN ANALYZE executes for real before rolling back: scratch
  // writes only, so it runs on a private fork rather than the master.
  EXPECT_EQ(mode("EXPLAIN ANALYZE SELECT X FROM Person X"),
            StatementMode::kPrivateRead);
  // OID FUNCTION queries mint durable objects.
  EXPECT_EQ(mode("SELECT N = X.Name FROM Person X OID FUNCTION OF X "
                 "WHERE X.Name[N]"),
            StatementMode::kWrite);
  // Unresolvable statements are writes by default.
  EXPECT_EQ(mode("THIS IS NOT XSQL"), StatementMode::kWrite);

  // CREATE VIEW materializes eagerly, so a read touching the freshly
  // materialized view is a pure read and stays on the shared snapshot
  // path. (Regression: this used to classify exclusive
  // unconditionally.)
  MustExecute(dd.get(),
              {"ALTER CLASS Class ADD SIGNATURE Motto => String",
               "UPDATE CLASS Class SET Person.Motto = 'people first'",
               "CREATE VIEW Mottos AS SUBCLASS OF Object "
               "SIGNATURE M => String "
               "SELECT M = X.Motto FROM Class X OID FUNCTION OF X "
               "WHERE X.Motto[M]"});
  EXPECT_EQ(mode("SELECT T FROM Class X WHERE Mottos(X).M[T]"),
            StatementMode::kSharedRead);
  EXPECT_EQ(mode("SELECT X FROM Person X"),
            StatementMode::kSharedRead);  // unaffected

  // A later mutation invalidates the materialization: reads mentioning
  // the view re-materialize — into a private fork, never the shared
  // snapshot.
  MustExecute(dd.get(), {"UPDATE CLASS Person SET mary.Salary = 150"});
  EXPECT_EQ(mode("SELECT T FROM Class X WHERE Mottos(X).M[T]"),
            StatementMode::kPrivateRead);

  // Mentioning a query-defined method is private too: invoking it can
  // mint result objects through its OID clause.
  MustExecute(dd.get(),
              {"ALTER CLASS Class ADD SIGNATURE Shout => String "
               "SELECT (Shout) = N FROM Class X OID X WHERE X.Motto[N]"});
  EXPECT_EQ(mode("SELECT S FROM Class X WHERE X.Shout[S]"),
            StatementMode::kPrivateRead);
}

// ------------------------------------------------------- group commit

TEST_F(ConcurrencyTest, GroupCommitterBatchesIntoOneFsync) {
  auto dd = MustOpen(dir_);
  ASSERT_NE(dd, nullptr);
  MustExecute(dd.get(), Prelude());
  GroupCommitter committer(dd->wal());
  const uint64_t records_before = dd->wal_records();
  std::vector<uint64_t> tickets;
  for (int i = 0; i < 5; ++i) {
    tickets.push_back(committer.Enqueue(
        "UPDATE CLASS Person SET mary.Salary = " + std::to_string(i)));
  }
  // One wait for the highest ticket commits the whole batch: one
  // AppendBatch, one fsync, five records.
  ASSERT_TRUE(committer.WaitDurable(tickets.back()).ok());
  EXPECT_EQ(committer.batches_committed(), 1u);
  EXPECT_EQ(dd->wal_records(), records_before + 5);
  // Earlier tickets are durable for free.
  for (uint64_t t : tickets) {
    EXPECT_TRUE(committer.WaitDurable(t).ok());
  }
}

TEST_F(ConcurrencyTest, GroupCommitFailureIsSticky) {
  auto dd = MustOpen(dir_);
  ASSERT_NE(dd, nullptr);
  MustExecute(dd.get(), Prelude());
  GroupCommitter committer(dd->wal());
  uint64_t t1 =
      committer.Enqueue("UPDATE CLASS Person SET mary.Salary = 1");
  FaultInjector::Global().ArmNth(FaultInjector::Domain::kIo, 1);
  Status st = committer.WaitDurable(t1);
  EXPECT_FALSE(st.ok());
  FaultInjector::Global().Disarm();
  // Even with I/O healthy again, the committer refuses: records after
  // the failed batch were built on never-durable state.
  uint64_t t2 =
      committer.Enqueue("UPDATE CLASS Person SET mary.Salary = 2");
  EXPECT_FALSE(committer.WaitDurable(t2).ok());
  EXPECT_FALSE(committer.Drain().ok());
}

// -------------------------------------------------- manager end to end

TEST_F(ConcurrencyTest, ManagerExecutesReadsAndWrites) {
  auto dd = MustOpen(dir_);
  ASSERT_NE(dd, nullptr);
  MustExecute(dd.get(), Prelude());
  ConcurrencyManager cm(dd.get());
  auto sid = cm.CreateSession(SessionOptions{});
  ASSERT_TRUE(sid.ok()) << sid.status().ToString();

  auto read = cm.Execute(*sid, "SELECT T WHERE mary.Salary[T]");
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read->relation.size(), 1u);

  auto write =
      cm.Execute(*sid, "UPDATE CLASS Person SET mary.Salary = 250");
  ASSERT_TRUE(write.ok()) << write.status().ToString();
  // The mutation is durable before the acknowledgement: a reopen of the
  // directory sees it.
  auto reopened = MustOpen(dir_);
  ASSERT_NE(reopened, nullptr);
  EXPECT_EQ(SaveSnapshot(reopened->db()), SaveSnapshot(dd->db()));

  // Statement errors come back as errors, not poisoned sessions.
  EXPECT_FALSE(cm.Execute(*sid, "SELECT FROM WHERE").ok());
  EXPECT_TRUE(
      cm.Execute(*sid, "SELECT X FROM Person X").ok());
  cm.CloseSession(*sid);
  EXPECT_EQ(cm.open_sessions(), 0u);
}

TEST_F(ConcurrencyTest, SharedViewCatalogAcrossSessions) {
  auto dd = MustOpen(dir_);
  ASSERT_NE(dd, nullptr);
  MustExecute(dd.get(),
              {"ALTER CLASS Class ADD SIGNATURE Motto => String",
               "UPDATE CLASS Class SET Person.Motto = 'people first'"});
  ConcurrencyManager cm(dd.get());
  auto s1 = cm.CreateSession(SessionOptions{});
  auto s2 = cm.CreateSession(SessionOptions{});
  ASSERT_TRUE(s1.ok() && s2.ok());
  ASSERT_TRUE(cm.Execute(*s1,
                         "CREATE VIEW Mottos AS SUBCLASS OF Object "
                         "SIGNATURE M => String "
                         "SELECT M = X.Motto FROM Class X "
                         "OID FUNCTION OF X WHERE X.Motto[M]")
                  .ok());
  // The view created on session 1 resolves on session 2.
  auto out =
      cm.Execute(*s2, "SELECT T FROM Class X WHERE Mottos(X).M[T]");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->relation.size(), 1u);
}

// The serializability stress test: N threads × M statements of
// randomized reads and mutations over one shared extent. After the dust
// settles, (a) every acknowledged mutation must be in the WAL, and
// (b) recovery — a *serial* replay of the WAL — must land on a state
// byte-identical to the live one, proving the concurrent execution was
// equivalent to the serial order the WAL records.
TEST_F(ConcurrencyTest, SerializabilityStress) {
  constexpr int kThreads = 4;
  constexpr int kStatements = 40;
  auto dd = MustOpen(dir_);
  ASSERT_NE(dd, nullptr);
  MustExecute(dd.get(), Prelude());
  ConcurrencyManager cm(dd.get());

  std::mutex acked_mu;
  std::vector<std::string> acked;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto sid = cm.CreateSession(SessionOptions{});
      if (!sid.ok()) {
        failures.fetch_add(1);
        return;
      }
      // Deterministic per-thread script, seeded like the fault suites.
      std::mt19937 rng(0xC0FFEE + t);
      for (int i = 0; i < kStatements; ++i) {
        if (rng() % 3 == 0) {
          // Contended write: everyone updates mary; last WAL record
          // wins, and replay must agree.
          std::string stmt = "UPDATE CLASS Person SET mary.Salary = " +
                             std::to_string(rng() % 1000);
          auto out = cm.Execute(*sid, stmt);
          if (out.ok()) {
            std::lock_guard<std::mutex> lock(acked_mu);
            acked.push_back(stmt);
          } else {
            failures.fetch_add(1);
          }
        } else if (rng() % 3 == 1) {
          // Private write: a per-thread object nobody else touches.
          std::string stmt = "UPDATE CLASS Person SET w" +
                             std::to_string(t) + "_" + std::to_string(i) +
                             ".Salary = " + std::to_string(i);
          auto out = cm.Execute(*sid, stmt);
          if (out.ok()) {
            std::lock_guard<std::mutex> lock(acked_mu);
            acked.push_back(stmt);
          } else {
            failures.fetch_add(1);
          }
        } else {
          auto out = cm.Execute(*sid, "SELECT T WHERE mary.Salary[T]");
          if (!out.ok()) failures.fetch_add(1);
        }
      }
      cm.CloseSession(*sid);
    });
  }
  for (auto& th : threads) th.join();
  ASSERT_EQ(failures.load(), 0);

  // (a) Every acknowledged mutation is in the WAL.
  auto scan = Wal::ScanFile(
      DurableDatabase::WalPath(dir_, dd->generation()));
  ASSERT_TRUE(scan.ok()) << scan.status().ToString();
  EXPECT_FALSE(scan->torn);
  std::vector<std::string> wal_records = scan->records;
  for (const std::string& stmt : acked) {
    EXPECT_NE(std::find(wal_records.begin(), wal_records.end(), stmt),
              wal_records.end())
        << "acked statement missing from WAL: " << stmt;
  }

  // (b) Serial replay of the WAL (recovery) matches the live state.
  auto reopened = MustOpen(dir_);
  ASSERT_NE(reopened, nullptr);
  EXPECT_EQ(SaveSnapshot(reopened->db()), SaveSnapshot(dd->db()));
}

// Same stress with checkpoints rotating mid-flight: the WAL-membership
// check no longer applies (earlier records get folded into snapshots),
// but serial-replay equivalence must still hold.
TEST_F(ConcurrencyTest, SerializabilityStressWithCheckpoints) {
  constexpr int kThreads = 4;
  constexpr int kStatements = 30;
  auto dd = MustOpen(dir_);
  ASSERT_NE(dd, nullptr);
  MustExecute(dd.get(), Prelude());
  ConcurrencyManager::Options options;
  options.checkpoint_every = 16;
  ConcurrencyManager cm(dd.get(), options);

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto sid = cm.CreateSession(SessionOptions{});
      if (!sid.ok()) {
        failures.fetch_add(1);
        return;
      }
      std::mt19937 rng(0xBEEF + t);
      for (int i = 0; i < kStatements; ++i) {
        Result<EvalOutput> out =
            (rng() % 2 == 0)
                ? cm.Execute(*sid,
                             "UPDATE CLASS Person SET mary.Salary = " +
                                 std::to_string(rng() % 1000))
                : cm.Execute(*sid, "SELECT T WHERE mary.Salary[T]");
        if (!out.ok()) failures.fetch_add(1);
      }
      cm.CloseSession(*sid);
    });
  }
  for (auto& th : threads) th.join();
  ASSERT_EQ(failures.load(), 0);
  EXPECT_GT(dd->generation(), 1u);  // checkpoints actually rotated

  auto reopened = MustOpen(dir_);
  ASSERT_NE(reopened, nullptr);
  EXPECT_EQ(SaveSnapshot(reopened->db()), SaveSnapshot(dd->db()));
}

// Crash during a group commit: writers race, the fault injector kills
// the process at byte k of durable I/O, and recovery must come back to
// a state that (a) contains every acknowledged statement and (b) equals
// a serial replay of the WAL records that survived.
TEST_F(ConcurrencyTest, CrashDuringGroupCommitRecovers) {
  constexpr int kWriters = 2;
  constexpr int kPerWriter = 6;
  for (uint64_t k = 1; k <= 120; k += 9) {
    std::string dir = dir_ + "_k" + std::to_string(k);
    std::filesystem::remove_all(dir);
    auto dd = MustOpen(dir);
    ASSERT_NE(dd, nullptr);
    MustExecute(dd.get(), Prelude());
    ConcurrencyManager cm(dd.get());

    FaultInjector::Global().ArmCrashAtByte(k);
    std::mutex acked_mu;
    std::vector<std::string> acked;
    std::vector<std::thread> writers;
    for (int t = 0; t < kWriters; ++t) {
      writers.emplace_back([&, t] {
        auto sid = cm.CreateSession(SessionOptions{});
        if (!sid.ok()) return;
        for (int i = 0; i < kPerWriter; ++i) {
          std::string stmt = "UPDATE CLASS Person SET c" +
                             std::to_string(t) + "_" + std::to_string(i) +
                             ".Salary = " + std::to_string(i);
          auto out = cm.Execute(*sid, stmt);
          if (out.ok()) {
            std::lock_guard<std::mutex> lock(acked_mu);
            acked.push_back(stmt);
          }
        }
        cm.CloseSession(*sid);
      });
    }
    for (auto& th : writers) th.join();
    FaultInjector::Global().Disarm();

    // Recovery truncates any torn tail and replays what survived.
    auto reopened = MustOpen(dir);
    ASSERT_NE(reopened, nullptr);

    // (a) Acknowledged ⊆ recovered.
    auto scan =
        Wal::ScanFile(DurableDatabase::WalPath(dir, reopened->generation()));
    ASSERT_TRUE(scan.ok());
    for (const std::string& stmt : acked) {
      EXPECT_NE(
          std::find(scan->records.begin(), scan->records.end(), stmt),
          scan->records.end())
          << "k=" << k << ": acked statement lost: " << stmt;
    }

    // (b) Recovered state == serial replay of the recovered records.
    std::string replay_dir = dir + "_replay";
    std::filesystem::remove_all(replay_dir);
    auto fresh = MustOpen(replay_dir);
    ASSERT_NE(fresh, nullptr);
    for (const std::string& stmt : scan->records) {
      auto out = fresh->Execute(stmt);
      ASSERT_TRUE(out.ok()) << "k=" << k << ": " << stmt << ": "
                            << out.status().ToString();
    }
    EXPECT_EQ(SaveSnapshot(reopened->db()), SaveSnapshot(fresh->db()))
        << "k=" << k;
    std::filesystem::remove_all(replay_dir);
    std::filesystem::remove_all(dir);
  }
}

// The shared prepared-plan cache under contention: parallel readers
// repeat a small statement set (hammering Lookup/Insert on the one
// cache every connection shares) while a writer mutates the schema
// (bumping Database::version(), so cached entries keep going stale and
// being re-prepared). Readers must always see current data — a stale
// plan served after a mutation would return the pre-mutation answer.
// Runs under TSan via ci.sh like the rest of this file.
TEST_F(ConcurrencyTest, PlanCacheStressUnderDdl) {
  constexpr int kReaders = 3;
  constexpr int kRounds = 30;
  auto dd = MustOpen(dir_);
  ASSERT_NE(dd, nullptr);
  MustExecute(dd.get(), Prelude());
  ConcurrencyManager cm(dd.get());

  std::atomic<int> failures{0};
  std::atomic<bool> writer_done{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      auto sid = cm.CreateSession(SessionOptions{});
      if (!sid.ok()) {
        failures.fetch_add(1);
        return;
      }
      const char* statements[] = {
          "SELECT T WHERE mary.Salary[T]",
          "SELECT X FROM Person X",
          "SELECT N WHERE mary.Name[N]",
      };
      int i = 0;
      while (!writer_done.load(std::memory_order_relaxed) || i < kRounds) {
        auto out = cm.Execute(*sid, statements[(t + i) % 3]);
        if (!out.ok()) failures.fetch_add(1);
        ++i;
        if (i > 10000) break;  // paranoia bound
      }
      cm.CloseSession(*sid);
    });
  }
  std::thread writer([&] {
    auto sid = cm.CreateSession(SessionOptions{});
    if (!sid.ok()) {
      failures.fetch_add(1);
      writer_done.store(true);
      return;
    }
    for (int i = 0; i < kRounds; ++i) {
      std::string stmt = "UPDATE CLASS Person SET mary.Salary = " +
                         std::to_string(100 + i);
      auto out = cm.Execute(*sid, stmt);
      if (!out.ok()) failures.fetch_add(1);
      // Read-your-write through whatever the cache serves right now.
      auto check = cm.Execute(*sid, "SELECT T WHERE mary.Salary[T]");
      if (!check.ok() || check->relation.size() != 1u ||
          !check->relation.rows()[0][0].is_numeric() ||
          check->relation.rows()[0][0].numeric_value() != 100 + i) {
        failures.fetch_add(1);
      }
    }
    cm.CloseSession(*sid);
    writer_done.store(true);
  });
  writer.join();
  for (auto& th : readers) th.join();
  EXPECT_EQ(failures.load(), 0);
}

// --------------------------------------------- shared-state regressions

// Histogram dumps must be internally consistent while writers hammer
// the buckets: count derived from the same bucket copy the quantiles
// use (the pre-fix code read count and buckets separately).
TEST(MetricsRaceTest, HistogramSampleIsInternallyConsistent) {
  obs::Histogram h;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 2; ++t) {
    writers.emplace_back([&, t] {
      std::mt19937 rng(7 + static_cast<unsigned>(t));
      while (!stop.load(std::memory_order_relaxed)) {
        h.Observe(rng() % 4096);
      }
    });
  }
  for (int i = 0; i < 2000; ++i) {
    obs::Histogram::Sample s = h.TakeSample();
    uint64_t total = 0;
    for (int b = 0; b < obs::Histogram::kBuckets; ++b) {
      total += s.buckets[b];
    }
    ASSERT_EQ(s.count, total) << "sample count drifted from its buckets";
  }
  stop.store(true);
  for (auto& th : writers) th.join();
}

// The slow-query log's supported concurrent pattern: the session's
// owner thread executes while a monitor thread polls the log.
TEST(MetricsRaceTest, SlowQueryLogIsReadableWhileExecuting) {
  Database db;
  SessionOptions options;
  options.slow_query_us = 1;  // nearly everything qualifies
  Session session(&db, options);
  std::atomic<bool> stop{false};
  std::thread monitor([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      std::vector<SlowQueryEntry> log = session.slow_query_log();
      for (const SlowQueryEntry& e : log) {
        ASSERT_FALSE(e.statement.empty());
      }
    }
  });
  for (int i = 0; i < 50; ++i) {
    (void)session.Execute("UPDATE CLASS Person SET p" + std::to_string(i) +
                          ".Name = 'x'");
    (void)session.Execute("SELECT X FROM Person X");
  }
  stop.store(true);
  monitor.join();
  EXPECT_FALSE(session.slow_query_log().empty());
  session.ClearSlowQueryLog();
  EXPECT_TRUE(session.slow_query_log().empty());
}

}  // namespace
}  // namespace server
}  // namespace xsql
