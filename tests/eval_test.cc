// Unit tests for the evaluation substrate: bindings, relations,
// quantified and set comparators, aggregates, and path-expression
// enumeration/valuation.
#include <gtest/gtest.h>

#include "eval/aggregate.h"
#include "eval/comparator.h"
#include "eval/evaluator.h"
#include "eval/relation.h"
#include "eval/session.h"
#include "parser/parser.h"
#include "workload/fig1_schema.h"

namespace xsql {
namespace {

Oid A(const char* s) { return Oid::Atom(s); }
OidSet Ints(std::initializer_list<int64_t> values) {
  OidSet out;
  for (int64_t v : values) out.Insert(Oid::Int(v));
  return out;
}

TEST(BindingTest, SetGetUnset) {
  Binding binding;
  Variable x{"X", VarSort::kIndividual};
  EXPECT_FALSE(binding.Bound(x));
  EXPECT_TRUE(binding.Set(x, Oid::Int(1)));
  EXPECT_TRUE(binding.Bound(x));
  EXPECT_EQ(binding.Get(x), Oid::Int(1));
  // Rebinding to the same value is fine; to a new value is not.
  EXPECT_TRUE(binding.Set(x, Oid::Int(1)));
  EXPECT_FALSE(binding.Set(x, Oid::Int(2)));
  EXPECT_EQ(binding.Get(x), Oid::Int(1));
  binding.Unset(x);
  EXPECT_FALSE(binding.Bound(x));
  // Variables with the same name but different sorts are distinct.
  Variable cx{"X", VarSort::kClass};
  EXPECT_TRUE(binding.Set(x, Oid::Int(1)));
  EXPECT_TRUE(binding.Set(cx, A("Person")));
  EXPECT_EQ(binding.Get(cx), A("Person"));
}

TEST(BindingTest, ScopeRestoresOnExit) {
  Binding binding;
  Variable x{"X", VarSort::kIndividual};
  {
    BindScope scope(&binding, x, Oid::Int(1));
    EXPECT_TRUE(scope.ok());
    EXPECT_TRUE(binding.Bound(x));
    {
      BindScope conflict(&binding, x, Oid::Int(2));
      EXPECT_FALSE(conflict.ok());
    }
    EXPECT_EQ(binding.Get(x), Oid::Int(1));  // conflict didn't clobber
  }
  EXPECT_FALSE(binding.Bound(x));
}

TEST(RelationTest, SetSemantics) {
  Relation rel({"a", "b"});
  ASSERT_TRUE(rel.AddRow({Oid::Int(1), Oid::Int(2)}).ok());
  ASSERT_TRUE(rel.AddRow({Oid::Int(1), Oid::Int(2)}).ok());  // duplicate
  EXPECT_EQ(rel.size(), 1u);
  EXPECT_FALSE(rel.AddRow({Oid::Int(1)}).ok());  // arity mismatch
  EXPECT_TRUE(rel.ContainsRow({Oid::Int(1), Oid::Int(2)}));
}

TEST(RelationTest, SetOperators) {
  Relation a({"x"});
  Relation b({"x"});
  ASSERT_TRUE(a.AddRow({Oid::Int(1)}).ok());
  ASSERT_TRUE(a.AddRow({Oid::Int(2)}).ok());
  ASSERT_TRUE(b.AddRow({Oid::Int(2)}).ok());
  ASSERT_TRUE(b.AddRow({Oid::Int(3)}).ok());
  auto uni = Relation::Union(a, b);
  ASSERT_TRUE(uni.ok());
  EXPECT_EQ(uni->size(), 3u);
  auto minus = Relation::Minus(a, b);
  ASSERT_TRUE(minus.ok());
  EXPECT_EQ(minus->size(), 1u);
  auto inter = Relation::Intersect(a, b);
  ASSERT_TRUE(inter.ok());
  EXPECT_EQ(inter->size(), 1u);
  Relation wide({"x", "y"});
  EXPECT_FALSE(Relation::Union(a, wide).ok());
  auto as_set = a.AsSet();
  ASSERT_TRUE(as_set.ok());
  EXPECT_EQ(as_set->size(), 2u);
  EXPECT_FALSE(wide.AsSet().ok());
}

TEST(ComparatorTest, CompareOids) {
  EXPECT_EQ(*CompareOids(Oid::Int(1), Oid::Int(2)), -1);
  EXPECT_EQ(*CompareOids(Oid::Int(2), Oid::Real(2.0)), 0);  // numeric mix
  EXPECT_EQ(*CompareOids(Oid::String("b"), Oid::String("a")), 1);
  EXPECT_FALSE(CompareOids(Oid::Int(1), Oid::String("1")).has_value());
  EXPECT_FALSE(CompareOids(A("x"), A("y")).has_value());
}

TEST(ComparatorTest, OidsRelate) {
  EXPECT_TRUE(OidsRelate(Oid::Int(1), CompOp::kLt, Oid::Int(2)));
  EXPECT_TRUE(OidsRelate(A("x"), CompOp::kEq, A("x")));
  EXPECT_TRUE(OidsRelate(A("x"), CompOp::kNe, A("y")));
  // Ordered comparison of incomparables is simply not satisfied.
  EXPECT_FALSE(OidsRelate(A("x"), CompOp::kLt, A("y")));
}

TEST(ComparatorTest, QuantifiedComparisons) {
  OidSet ages = Ints({12, 42});
  OidSet twenty = Ints({20});
  // some>: one family member older than 20.
  EXPECT_TRUE(EvalComparison(ages, Quant::kSome, CompOp::kGt, Quant::kNone,
                             twenty));
  // all>: not all are.
  EXPECT_FALSE(
      EvalComparison(ages, Quant::kAll, CompOp::kGt, Quant::kNone, twenty));
  // all> over the empty set is vacuously true.
  EXPECT_TRUE(EvalComparison(OidSet(), Quant::kAll, CompOp::kGt, Quant::kNone,
                             twenty));
  // some over the empty set is false.
  EXPECT_FALSE(EvalComparison(OidSet(), Quant::kSome, CompOp::kGt,
                              Quant::kNone, twenty));
  // all<all: every lhs below every rhs.
  EXPECT_TRUE(EvalComparison(Ints({1, 2}), Quant::kAll, CompOp::kLt,
                             Quant::kAll, Ints({3, 4})));
  EXPECT_FALSE(EvalComparison(Ints({1, 5}), Quant::kAll, CompOp::kLt,
                              Quant::kAll, Ints({3, 4})));
  // Unquantified sides require singletons.
  EXPECT_FALSE(EvalComparison(Ints({1, 2}), Quant::kNone, CompOp::kEq,
                              Quant::kNone, Ints({1})));
  EXPECT_TRUE(EvalComparison(Ints({1}), Quant::kNone, CompOp::kEq,
                             Quant::kNone, Ints({1})));
  // =all: scalar lhs equal to every rhs element.
  EXPECT_TRUE(EvalComparison(Ints({7}), Quant::kNone, CompOp::kEq,
                             Quant::kAll, Ints({7})));
  EXPECT_FALSE(EvalComparison(Ints({7}), Quant::kNone, CompOp::kEq,
                              Quant::kAll, Ints({7, 8})));
}

TEST(ComparatorTest, SetComparators) {
  OidSet small = Ints({1, 2});
  OidSet big = Ints({1, 2, 3});
  EXPECT_TRUE(EvalSetComparison(big, SetOp::kContains, small));
  EXPECT_FALSE(EvalSetComparison(big, SetOp::kContains, big));  // strict
  EXPECT_TRUE(EvalSetComparison(big, SetOp::kContainsEq, big));
  EXPECT_TRUE(EvalSetComparison(small, SetOp::kSubset, big));
  EXPECT_TRUE(EvalSetComparison(small, SetOp::kSubsetEq, small));
  EXPECT_FALSE(EvalSetComparison(small, SetOp::kSubset, small));
  EXPECT_TRUE(EvalSetComparison(small, SetOp::kSetEq, Ints({2, 1})));
  EXPECT_FALSE(EvalSetComparison(small, SetOp::kSetEq, big));
}

TEST(AggregateTest, AllFunctions) {
  OidSet values = Ints({1, 2, 3});
  EXPECT_EQ(*EvalAggregate(AggFn::kCount, values), Oid::Int(3));
  EXPECT_EQ(*EvalAggregate(AggFn::kSum, values), Oid::Int(6));
  EXPECT_EQ(*EvalAggregate(AggFn::kAvg, values), Oid::Real(2.0));
  EXPECT_EQ(*EvalAggregate(AggFn::kMin, values), Oid::Int(1));
  EXPECT_EQ(*EvalAggregate(AggFn::kMax, values), Oid::Int(3));
  // count works on anything; sum does not.
  OidSet strings;
  strings.Insert(Oid::String("a"));
  EXPECT_EQ(*EvalAggregate(AggFn::kCount, strings), Oid::Int(1));
  EXPECT_FALSE(EvalAggregate(AggFn::kSum, strings).ok());
  // min/max over strings is fine; over mixed kinds it is not.
  EXPECT_EQ(*EvalAggregate(AggFn::kMin, strings), Oid::String("a"));
  OidSet mixed = strings;
  mixed.Insert(Oid::Int(1));
  EXPECT_FALSE(EvalAggregate(AggFn::kMax, mixed).ok());
  // Edge cases.
  EXPECT_EQ(*EvalAggregate(AggFn::kSum, OidSet()), Oid::Int(0));
  EXPECT_FALSE(EvalAggregate(AggFn::kAvg, OidSet()).ok());
  EXPECT_FALSE(EvalAggregate(AggFn::kMin, OidSet()).ok());
}

class PathEvalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(workload::BuildFig1Schema(&db_).ok());
    ASSERT_TRUE(db_.NewObject(A("addr1"), {A("Address")}).ok());
    ASSERT_TRUE(db_.SetScalar(A("addr1"), A("City"),
                              Oid::String("austin")).ok());
    ASSERT_TRUE(db_.NewObject(A("p1"), {A("Person")}).ok());
    ASSERT_TRUE(db_.SetScalar(A("p1"), A("Residence"), A("addr1")).ok());
    ASSERT_TRUE(db_.SetScalar(A("p1"), A("Age"), Oid::Int(30)).ok());
    ASSERT_TRUE(db_.NewObject(A("p2"), {A("Person")}).ok());
    ASSERT_TRUE(db_.AddToSet(A("p1"), A("Friends"), A("p2")).ok());
    evaluator_ = std::make_unique<Evaluator>(&db_);
  }

  PathExpr ParsePath(const std::string& text) {
    auto stmt = ParseAndResolve("SELECT X WHERE " + text, db_);
    EXPECT_TRUE(stmt.ok()) << stmt.status().ToString();
    return stmt->query->simple->where->path;
  }

  Database db_;
  std::unique_ptr<Evaluator> evaluator_;
};

TEST_F(PathEvalTest, GroundValue) {
  PathEvaluator pe(db_, evaluator_.get(), PathEvalOptions{});
  Binding binding;
  auto value = pe.Value(ParsePath("p1.Residence.City"), binding);
  ASSERT_TRUE(value.ok());
  ASSERT_EQ(value->size(), 1u);
  EXPECT_TRUE(value->Contains(Oid::String("austin")));
  // Undefined attribute: empty value, not an error.
  auto undef = pe.Value(ParsePath("p2.Residence.City"), binding);
  ASSERT_TRUE(undef.ok());
  EXPECT_TRUE(undef->empty());
}

TEST_F(PathEvalTest, EnumerateBindsSelectors) {
  PathEvaluator pe(db_, evaluator_.get(), PathEvalOptions{});
  Binding binding;
  // p1.Residence[Y] binds Y to addr1 exactly once.
  PathExpr path = ParsePath("p1.Residence[Y]");
  std::vector<Oid> tails;
  ASSERT_TRUE(pe.Enumerate(path, &binding, [&](const Oid& tail) -> Status {
                  tails.push_back(tail);
                  Variable y{"Y", VarSort::kIndividual};
                  EXPECT_TRUE(binding.Bound(y));
                  EXPECT_EQ(binding.Get(y), tail);
                  return Status::OK();
                }).ok());
  ASSERT_EQ(tails.size(), 1u);
  EXPECT_EQ(tails[0], A("addr1"));
  // Binding restored after enumeration.
  EXPECT_FALSE(binding.Bound(Variable{"Y", VarSort::kIndividual}));
}

TEST_F(PathEvalTest, SelectorFiltering) {
  PathEvaluator pe(db_, evaluator_.get(), PathEvalOptions{});
  Binding binding;
  auto hit = pe.Value(ParsePath("p1.Residence[addr1].City"), binding);
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(hit->size(), 1u);
  auto miss = pe.Value(ParsePath("p1.Residence[p2].City"), binding);
  ASSERT_TRUE(miss.ok());
  EXPECT_TRUE(miss->empty());
}

TEST_F(PathEvalTest, IdTermEvaluation) {
  PathEvaluator pe(db_, evaluator_.get(), PathEvalOptions{});
  Binding binding;
  Variable x{"X", VarSort::kIndividual};
  binding.Set(x, Oid::Int(7));
  auto value = pe.EvalIdTerm(IdTerm::Var(x), binding);
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, Oid::Int(7));
  auto unbound =
      pe.EvalIdTerm(IdTerm::Var(Variable{"Z", VarSort::kIndividual}), binding);
  EXPECT_FALSE(unbound.ok());
  auto apply = pe.EvalIdTerm(
      IdTerm::Apply("f", {IdTerm::Const(Oid::Int(1)), IdTerm::Var(x)}),
      binding);
  ASSERT_TRUE(apply.ok());
  EXPECT_EQ(*apply, Oid::Term("f", {Oid::Int(1), Oid::Int(7)}));
}

TEST_F(PathEvalTest, MethodVariableEnumeration) {
  PathEvaluator pe(db_, evaluator_.get(), PathEvalOptions{});
  Binding binding;
  // p1."M[addr1] — which attributes lead from p1 to addr1?
  auto stmt = ParseAndResolve("SELECT \"M WHERE p1.\"M[addr1]", db_);
  ASSERT_TRUE(stmt.ok());
  const PathExpr& path = stmt->query->simple->where->path;
  OidSet methods;
  Variable m{"M", VarSort::kMethod};
  ASSERT_TRUE(pe.Enumerate(path, &binding, [&](const Oid&) -> Status {
                  methods.Insert(binding.Get(m));
                  return Status::OK();
                }).ok());
  EXPECT_TRUE(methods.Contains(A("Residence")));
  EXPECT_EQ(methods.size(), 1u);
}

TEST_F(PathEvalTest, NaiveAndSmartAgreeOnSmallQuery) {
  auto stmt = ParseAndResolve(
      "SELECT X FROM Person X WHERE X.Residence.City['austin']", db_);
  ASSERT_TRUE(stmt.ok());
  const Query& q = *stmt->query->simple;
  auto smart = evaluator_->Run(q);
  ASSERT_TRUE(smart.ok());
  auto naive = evaluator_->RunNaive(q);
  ASSERT_TRUE(naive.ok()) << naive.status().ToString();
  EXPECT_EQ(smart->relation.rows(), naive->relation.rows());
  EXPECT_EQ(smart->relation.size(), 1u);
}

TEST_F(PathEvalTest, ConjunctOrderDoesNotChangeAnswers) {
  ASSERT_TRUE(db_.SetScalar(A("p2"), A("Residence"), A("addr1")).ok());
  auto stmt = ParseAndResolve(
      "SELECT X, Y FROM Person X, Person Y "
      "WHERE X.Residence[R] and Y.Residence[R] and X.Age > 0",
      db_);
  ASSERT_TRUE(stmt.ok());
  const Query& q = *stmt->query->simple;
  EvalOptions base;
  auto reference = evaluator_->Run(q, base);
  ASSERT_TRUE(reference.ok());
  // All 6 permutations of the three conjuncts give the same relation.
  std::vector<size_t> order = {0, 1, 2};
  do {
    EvalOptions opts;
    opts.conjunct_order = order;
    auto out = evaluator_->Run(q, opts);
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    EXPECT_EQ(out->relation.rows(), reference->relation.rows());
  } while (std::next_permutation(order.begin(), order.end()));
}

}  // namespace
}  // namespace xsql
