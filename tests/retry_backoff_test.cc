// RetryingClient backoff policy, deterministically: a fake sleeper
// records every computed sleep (no wall-clock waits), a fixed
// jitter_seed pins the jitter stream, and a one-frame fake server
// supplies retry-after hints. Asserts the exponential base doubling,
// the max clamp, the jitter bounds, and the server-hint floor.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "server/client.h"
#include "server/wire.h"

namespace xsql {
namespace server {
namespace {

/// Reserves a TCP port and releases it: connecting to it afterwards is
/// refused fast, which drives the connect-failure retry path without
/// any sleeping server.
int ClosedPort() {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  struct sockaddr_in addr;
  memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  EXPECT_EQ(bind(fd, reinterpret_cast<struct sockaddr*>(&addr),
                 sizeof(addr)),
            0);
  socklen_t len = sizeof(addr);
  EXPECT_EQ(getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr),
                        &len),
            0);
  const int port = ntohs(addr.sin_port);
  close(fd);
  return port;
}

/// One-shot unavailability server: accepts connections and answers
/// every frame with kUnavailable carrying `payload` (a retry-after
/// hint), until stopped.
class UnavailableServer {
 public:
  explicit UnavailableServer(std::string payload)
      : payload_(std::move(payload)) {
    fd_ = socket(AF_INET, SOCK_STREAM, 0);
    struct sockaddr_in addr;
    memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    int one = 1;
    setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    bind(fd_, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr));
    socklen_t len = sizeof(addr);
    getsockname(fd_, reinterpret_cast<struct sockaddr*>(&addr), &len);
    port_ = ntohs(addr.sin_port);
    listen(fd_, 8);
    thread_ = std::thread([this] { Loop(); });
  }

  ~UnavailableServer() {
    stop_.store(true);
    shutdown(fd_, SHUT_RDWR);
    close(fd_);
    thread_.join();
  }

  int port() const { return port_; }

 private:
  void Loop() {
    while (!stop_.load()) {
      int conn = accept(fd_, nullptr, nullptr);
      if (conn < 0) return;
      IoOptions io;
      io.idle_timeout_ms = 1000;
      while (true) {
        auto frame = ReadFrame(conn, io);
        if (!frame.ok()) break;
        if (!WriteAll(conn,
                      EncodeFrame(MsgType::kUnavailable, payload_), io)
                 .ok()) {
          break;
        }
      }
      close(conn);
    }
  }

  std::string payload_;
  int fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

std::vector<int64_t> CollectSleeps(RetryingClientOptions options,
                                   Status* final_status) {
  std::vector<int64_t> sleeps;
  options.sleep_fn = [&sleeps](int64_t ms) { sleeps.push_back(ms); };
  RetryingClient client(std::move(options));
  auto out = client.Execute("UPDATE CLASS Person SET mary.Salary = 1");
  EXPECT_FALSE(out.ok());
  if (final_status != nullptr) *final_status = out.status();
  return sleeps;
}

TEST(RetryBackoffTest, ExponentialBaseWithJitterBoundsAndClamp) {
  RetryingClientOptions options;
  options.port = ClosedPort();
  options.max_retries = 12;
  options.backoff_base_ms = 5;
  options.backoff_max_ms = 500;
  options.jitter_seed = 42;
  Status final_status;
  const std::vector<int64_t> sleeps =
      CollectSleeps(options, &final_status);
  // One sleep before each retry; none before the first attempt.
  ASSERT_EQ(sleeps.size(), static_cast<size_t>(options.max_retries));
  bool clamped_any = false;
  for (int k = 1; k <= options.max_retries; ++k) {
    int64_t base = static_cast<int64_t>(options.backoff_base_ms)
                   << (k - 1);
    if (base > options.backoff_max_ms) {
      base = options.backoff_max_ms;
      clamped_any = true;
    }
    const int64_t sleep = sleeps[k - 1];
    // Jitter is uniform in [0, base/2]: sleep ∈ [base, 1.5 * base].
    EXPECT_GE(sleep, base) << "retry " << k;
    EXPECT_LE(sleep, base + base / 2) << "retry " << k;
  }
  // With 12 retries at base 5 the schedule reaches the 500ms clamp
  // (5 << 7 = 640 > 500), so the clamp was actually exercised.
  EXPECT_TRUE(clamped_any);
  EXPECT_LE(sleeps.back(), 750);
  // Exhausted transport retries surface as ResourceExhausted.
  EXPECT_EQ(final_status.code(), StatusCode::kResourceExhausted)
      << final_status.ToString();
}

TEST(RetryBackoffTest, SameSeedSameSchedule) {
  RetryingClientOptions options;
  options.port = ClosedPort();
  options.max_retries = 8;
  options.backoff_base_ms = 3;
  options.backoff_max_ms = 100;
  options.jitter_seed = 7;
  const std::vector<int64_t> first = CollectSleeps(options, nullptr);
  const std::vector<int64_t> second = CollectSleeps(options, nullptr);
  EXPECT_EQ(first, second);

  options.jitter_seed = 8;
  const std::vector<int64_t> other = CollectSleeps(options, nullptr);
  EXPECT_NE(first, other);
}

TEST(RetryBackoffTest, ServerRetryAfterHintIsAFloor) {
  UnavailableServer server("120 drowning in load");
  RetryingClientOptions options;
  options.port = server.port();
  options.max_retries = 5;
  options.backoff_base_ms = 1;  // exponential part stays far below 120
  options.backoff_max_ms = 32;
  options.jitter_seed = 9;
  Status final_status;
  const std::vector<int64_t> sleeps =
      CollectSleeps(options, &final_status);
  ASSERT_EQ(sleeps.size(), 5u);
  for (size_t i = 0; i < sleeps.size(); ++i) {
    // Every attempt got the kUnavailable hint, so every backoff is
    // floored at 120ms even though min(1 << k, 32) never exceeds 48.
    EXPECT_GE(sleeps[i], 120) << "retry " << (i + 1);
    EXPECT_LE(sleeps[i], 120 + 60) << "retry " << (i + 1);
  }
  EXPECT_EQ(final_status.code(), StatusCode::kResourceExhausted)
      << final_status.ToString();
}

TEST(RetryBackoffTest, HintParserBoundsHostileInput) {
  EXPECT_EQ(ParseRetryAfterHint("120 busy"), 120);
  EXPECT_EQ(ParseRetryAfterHint("no digits"), 0);
  EXPECT_EQ(ParseRetryAfterHint(""), 0);
  EXPECT_EQ(ParseRetryAfterHint("999999999999 evil"), 60000);
}

}  // namespace
}  // namespace server
}  // namespace xsql
