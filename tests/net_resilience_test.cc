// Network & overload resilience: the exactly-once request machinery
// (request IDs, the dedup table, WAL stamping, recovery rebuild), the
// kNet fault-injection domain, the retrying client, and the server's
// overload defenses (admission shed, idle reaper, slow-peer deadlines,
// counted-never-fatal reply failures).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/fault.h"
#include "obs/metrics.h"
#include "server/client.h"
#include "server/server.h"
#include "server/wire.h"
#include "storage/dedup.h"
#include "storage/recovery.h"
#include "storage/snapshot.h"
#include "storage/wal.h"

namespace xsql {
namespace server {
namespace {

using storage::DedupTable;
using storage::DurableDatabase;
using storage::RequestId;
using storage::Wal;

RequestId MakeRid(uint8_t tag, uint64_t seq) {
  RequestId rid;
  rid.uuid.fill(tag);
  rid.seq = seq;
  return rid;
}

uint64_t CounterValue(const char* name) {
  return obs::MetricsRegistry::Global().GetCounter(name).value();
}

// ---- Request IDs and WAL stamping -----------------------------------

TEST(RequestIdTest, EncodeDecodeRoundTrip) {
  RequestId rid = MakeRid(0xAB, 0x1122334455667788ull);
  std::string bytes = rid.Encode();
  ASSERT_EQ(bytes.size(), 24u);
  auto back = RequestId::Decode(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->uuid, rid.uuid);
  EXPECT_EQ(back->seq, rid.seq);
  // Short input is rejected, not misparsed.
  EXPECT_FALSE(RequestId::Decode(bytes.substr(0, 23)).has_value());
  // ToString is hex-uuid:seq.
  EXPECT_NE(rid.ToString().find(":1234605616436508552"),
            std::string::npos);
}

TEST(RequestIdTest, RidPayloadStampRoundTrips) {
  RequestId rid = MakeRid(7, 42);
  const std::string text = "UPDATE CLASS Person SET mary.Salary = 1";
  std::string stamped = storage::EncodeRidPayload(rid, text);
  EXPECT_EQ(stamped[0], storage::kRidTag);
  auto [got_rid, got_text] = storage::DecodeRidPayload(stamped);
  ASSERT_TRUE(got_rid.has_value());
  EXPECT_EQ(got_rid->seq, 42u);
  EXPECT_EQ(got_text, text);
  // A bare (legacy) payload passes through untouched.
  auto [none, bare] = storage::DecodeRidPayload(text);
  EXPECT_FALSE(none.has_value());
  EXPECT_EQ(bare, text);
}

// ---- DedupTable protocol --------------------------------------------

TEST(DedupTableTest, ClaimCompleteCachedStale) {
  DedupTable table;
  RequestId r1 = MakeRid(1, 1);
  std::string cached;
  EXPECT_EQ(table.Claim(r1, ExecLimits{}, nullptr, &cached),
            DedupTable::ClaimResult::kExecute);
  table.Complete(r1, "reply-1");
  // A retry of the committed seq returns the cached reply.
  EXPECT_EQ(table.Claim(r1, ExecLimits{}, nullptr, &cached),
            DedupTable::ClaimResult::kCached);
  EXPECT_EQ(cached, "reply-1");
  EXPECT_EQ(table.hits(), 1u);
  // A later seq executes; after it commits, the older seq is stale.
  RequestId r2 = MakeRid(1, 2);
  EXPECT_EQ(table.Claim(r2, ExecLimits{}, nullptr, &cached),
            DedupTable::ClaimResult::kExecute);
  table.Complete(r2, "reply-2");
  EXPECT_EQ(table.Claim(r1, ExecLimits{}, nullptr, &cached),
            DedupTable::ClaimResult::kStale);
  // One entry per client uuid, not per statement.
  EXPECT_EQ(table.entries(), 1u);
}

TEST(DedupTableTest, AbandonAllowsReexecution) {
  DedupTable table;
  RequestId rid = MakeRid(2, 1);
  std::string cached;
  ASSERT_EQ(table.Claim(rid, ExecLimits{}, nullptr, &cached),
            DedupTable::ClaimResult::kExecute);
  table.Abandon(rid);  // failed / read-only: nothing committed
  EXPECT_EQ(table.Claim(rid, ExecLimits{}, nullptr, &cached),
            DedupTable::ClaimResult::kExecute);
  table.Abandon(rid);
}

TEST(DedupTableTest, DuplicateBlocksBehindInflightOriginal) {
  DedupTable table;
  RequestId rid = MakeRid(3, 1);
  std::string cached;
  ASSERT_EQ(table.Claim(rid, ExecLimits{}, nullptr, &cached),
            DedupTable::ClaimResult::kExecute);
  std::atomic<bool> resolved{false};
  std::thread dup([&] {
    std::string dup_cached;
    DedupTable::ClaimResult r =
        table.Claim(rid, ExecLimits{}, nullptr, &dup_cached);
    EXPECT_EQ(r, DedupTable::ClaimResult::kCached);
    EXPECT_EQ(dup_cached, "the-reply");
    EXPECT_TRUE(resolved.load()) << "duplicate ran before the original "
                                    "resolved";
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  resolved.store(true);
  table.Complete(rid, "the-reply");
  dup.join();
}

TEST(DedupTableTest, DuplicateWaitHonorsDeadline) {
  DedupTable table;
  RequestId rid = MakeRid(4, 1);
  std::string cached;
  ASSERT_EQ(table.Claim(rid, ExecLimits{}, nullptr, &cached),
            DedupTable::ClaimResult::kExecute);
  ExecLimits limits;
  limits.deadline_ms = 80;
  const auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(table.Claim(rid, limits, nullptr, &cached),
            DedupTable::ClaimResult::kTimeout);
  const auto waited = std::chrono::steady_clock::now() - start;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(waited)
                .count(),
            5000);
  table.Abandon(rid);
}

TEST(DedupTableTest, SerializeLoadRoundTrip) {
  DedupTable table;
  table.Record(MakeRid(1, 5), "alpha");
  table.Record(MakeRid(2, 9), "beta");
  table.Record(MakeRid(2, 3), "old");  // lower seq: must not clobber
  std::string image = table.Serialize();

  DedupTable loaded;
  ASSERT_TRUE(loaded.Load(image).ok());
  EXPECT_EQ(loaded.entries(), 2u);
  std::string cached;
  EXPECT_EQ(loaded.Claim(MakeRid(2, 9), ExecLimits{}, nullptr, &cached),
            DedupTable::ClaimResult::kCached);
  EXPECT_EQ(cached, "beta");
  EXPECT_EQ(loaded.Claim(MakeRid(2, 3), ExecLimits{}, nullptr, &cached),
            DedupTable::ClaimResult::kStale);

  // A torn image is corruption (the file is written atomically).
  DedupTable corrupt;
  EXPECT_FALSE(corrupt.Load(image.substr(0, image.size() - 3)).ok());
}

TEST(DedupTableTest, OversizedReplyIsExpiredNotCached) {
  DedupTable::Options options;
  options.max_reply_bytes = 8;
  DedupTable table(options);
  RequestId rid = MakeRid(5, 1);
  std::string cached;
  ASSERT_EQ(table.Claim(rid, ExecLimits{}, nullptr, &cached),
            DedupTable::ClaimResult::kExecute);
  table.Complete(rid, std::string(1024, 'x'));
  // The seq is remembered (no re-execution), the reply is not.
  EXPECT_EQ(table.Claim(rid, ExecLimits{}, nullptr, &cached),
            DedupTable::ClaimResult::kExpired);
  EXPECT_EQ(table.reply_entries(), 0u);
  EXPECT_EQ(table.entries(), 1u);
}

TEST(DedupTableTest, LruDemotesRepliesThenDropsTombstones) {
  DedupTable::Options options;
  options.max_reply_entries = 2;
  options.max_entries = 3;
  DedupTable table(options);
  std::string cached;
  for (uint8_t c = 1; c <= 3; ++c) {
    table.Record(MakeRid(c, 1), "reply-" + std::to_string(c));
  }
  // Three clients, two reply slots: the least-recently-touched (client
  // 1) was demoted to a tombstone — expired, NOT re-executable.
  EXPECT_EQ(table.entries(), 3u);
  EXPECT_EQ(table.reply_entries(), 2u);
  EXPECT_EQ(table.Claim(MakeRid(1, 1), ExecLimits{}, nullptr, &cached),
            DedupTable::ClaimResult::kExpired);
  EXPECT_EQ(table.Claim(MakeRid(3, 1), ExecLimits{}, nullptr, &cached),
            DedupTable::ClaimResult::kCached);
  EXPECT_EQ(cached, "reply-3");
  // A fourth client pushes past both caps: client 2 (least recently
  // touched — the Claims above touched 1 and 3) is demoted and then,
  // as the LRU tombstone, dropped entirely.
  table.Record(MakeRid(4, 1), "reply-4");
  EXPECT_EQ(table.entries(), 3u);
  // Whichever uuid was fully dropped re-executes; the others never do.
  int executes = 0;
  for (uint8_t c = 1; c <= 4; ++c) {
    RequestId rid = MakeRid(c, 1);
    if (table.Claim(rid, ExecLimits{}, nullptr, &cached) ==
        DedupTable::ClaimResult::kExecute) {
      ++executes;
      table.Abandon(rid);
    }
  }
  EXPECT_EQ(executes, 1);
}

TEST(DedupTableTest, TombstonesSurviveSerializeLoad) {
  DedupTable::Options options;
  options.max_reply_bytes = 4;
  DedupTable table(options);
  table.Record(MakeRid(1, 7), "ok");
  table.Record(MakeRid(2, 9), "way-too-long-to-cache");
  std::string image = table.Serialize();

  DedupTable loaded;  // default (larger) bounds
  ASSERT_TRUE(loaded.Load(image).ok());
  EXPECT_EQ(loaded.entries(), 2u);
  EXPECT_EQ(loaded.reply_entries(), 1u);
  std::string cached;
  EXPECT_EQ(loaded.Claim(MakeRid(1, 7), ExecLimits{}, nullptr, &cached),
            DedupTable::ClaimResult::kCached);
  EXPECT_EQ(cached, "ok");
  // The tombstone still blocks re-execution after a restart.
  EXPECT_EQ(loaded.Claim(MakeRid(2, 9), ExecLimits{}, nullptr, &cached),
            DedupTable::ClaimResult::kExpired);
}

// ---- kNet fault-injection domain ------------------------------------

TEST(NetFaultTest, NthSchedulesExactlyOneMatchingOp) {
  FaultInjector& fi = FaultInjector::Global();
  fi.ArmNetNth("alpha", NetFault::kDelay, 2, 30);
  EXPECT_EQ(fi.NetNext("net-alpha-read", 10).kind, NetFault::kNone);
  EXPECT_EQ(fi.NetNext("net-beta-read", 10).kind,
            NetFault::kNone);  // filtered out, does not consume
  NetAction hit = fi.NetNext("net-alpha-write", 10);
  EXPECT_EQ(hit.kind, NetFault::kDelay);
  EXPECT_EQ(hit.delay_ms, 30u);
  EXPECT_EQ(fi.NetNext("net-alpha-read", 10).kind, NetFault::kNone);
  EXPECT_EQ(fi.net_faults_fired(), 1u);
  fi.Disarm();
  EXPECT_FALSE(fi.net_armed());
}

TEST(NetFaultTest, RandomScheduleIsDeterministicPerSeed) {
  FaultInjector& fi = FaultInjector::Global();
  auto draw = [&](uint64_t seed) {
    fi.ArmNet(seed, 500, kNetAll, 50);
    std::vector<int> kinds;
    for (int i = 0; i < 32; ++i) {
      kinds.push_back(static_cast<int>(fi.NetNext("net-x-write", 64).kind));
    }
    fi.Disarm();
    return kinds;
  };
  std::vector<int> a = draw(42), b = draw(42), c = draw(43);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);  // astronomically unlikely to collide
  bool any_fault = false;
  for (int k : a) any_fault |= (k != 0);
  EXPECT_TRUE(any_fault);
}

TEST(NetFaultTest, TruncateKeepsAPrefix) {
  FaultInjector& fi = FaultInjector::Global();
  fi.ArmNetNth("w", NetFault::kTruncate, 1);
  NetAction a = fi.NetNext("net-w-write", 100);
  EXPECT_EQ(a.kind, NetFault::kTruncate);
  EXPECT_LT(a.keep_bytes, 100u);
  fi.Disarm();
}

TEST(UnavailableFrameTest, RetryAfterHintParses) {
  EXPECT_EQ(ParseRetryAfterHint("120 server overloaded"), 120);
  EXPECT_EQ(ParseRetryAfterHint("0 now"), 0);
  EXPECT_EQ(ParseRetryAfterHint("junk"), 0);
  EXPECT_EQ(ParseRetryAfterHint("999999999 hostile"), 60000);
}

// ---- Wire-level scenarios against a live server ---------------------

class NetResilienceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = ::testing::TempDir() + "/xsql_net_" + info->name();
    std::filesystem::remove_all(dir_);
    OpenDb();
    for (const char* stmt :
         {"ALTER CLASS Person ADD SIGNATURE Name => String",
          "ALTER CLASS Person ADD SIGNATURE Salary => Numeral",
          "UPDATE CLASS Person SET mary.Name = 'mary'",
          "UPDATE CLASS Person SET mary.Salary = 100"}) {
      auto out = dd_->Execute(stmt);
      ASSERT_TRUE(out.ok()) << stmt << ": " << out.status().ToString();
    }
  }

  void TearDown() override {
    server_.reset();
    dd_.reset();
    FaultInjector::Global().Disarm();
    std::filesystem::remove_all(dir_);
  }

  void OpenDb() {
    auto dd = DurableDatabase::Open(dir_);
    ASSERT_TRUE(dd.ok()) << dd.status().ToString();
    dd_ = std::move(*dd);
  }

  void StartServer(ServerOptions options = {}) {
    auto server = Server::Start(dd_.get(), std::move(options));
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    server_ = std::move(*server);
    ASSERT_GT(server_->port(), 0);
  }

  Client MustConnect() {
    auto client = Client::Connect("127.0.0.1", server_->port());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return client.ok() ? std::move(*client) : Client();
  }

  RetryingClientOptions FastRetryOptions() {
    RetryingClientOptions options;
    options.port = server_->port();
    options.timeout_ms = 300;
    options.max_retries = 10;
    options.backoff_base_ms = 5;
    options.backoff_max_ms = 100;
    options.deadline_ms = 20000;
    return options;
  }

  /// How many live-WAL records carry exactly `text` as their statement.
  int WalOccurrences(const std::string& text) {
    auto scan = Wal::ScanFile(
        DurableDatabase::WalPath(dir_, dd_->generation()));
    EXPECT_TRUE(scan.ok()) << scan.status().ToString();
    if (!scan.ok()) return -1;
    int count = 0;
    for (const std::string& record : scan->records) {
      if (storage::DecodeRidPayload(record).second == text) ++count;
    }
    return count;
  }

  std::string dir_;
  std::unique_ptr<DurableDatabase> dd_;
  std::unique_ptr<Server> server_;
};

TEST_F(NetResilienceTest, ExecuteWithIdDedupsASecondSend) {
  StartServer();
  Client client = MustConnect();
  RequestId rid = MakeRid(0x11, 1);
  const std::string stmt = "UPDATE CLASS Person SET mary.Salary = 31337";
  auto first = client.ExecuteWithId(rid, stmt);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  // Same rid again: cached reply, no second WAL record.
  auto again = client.ExecuteWithId(rid, stmt);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(*again, *first);
  EXPECT_EQ(WalOccurrences(stmt), 1);
  EXPECT_GE(dd_->dedup().hits(), 1u);
}

TEST_F(NetResilienceTest, LostReplyRetryAppliesExactlyOnce) {
  StartServer();
  RetryingClient client(FastRetryOptions());
  // The server's next reply write swallows the frame: the classic
  // lost-acknowledgement. The retry must return the ORIGINAL outcome
  // without running the statement twice.
  const std::string stmt = "UPDATE CLASS Person SET mary.Salary = 41414";
  FaultInjector::Global().ArmNetNth("srv-write", NetFault::kDrop, 1);
  auto out = client.Execute(stmt);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_GE(client.retries(), 1u);
  EXPECT_EQ(WalOccurrences(stmt), 1);
  EXPECT_GE(dd_->dedup().hits(), 1u);
  // The value really is there, once.
  auto check = client.Execute("SELECT T WHERE mary.Salary[T]");
  ASSERT_TRUE(check.ok());
  EXPECT_NE(check->find("41414"), std::string::npos) << *check;
}

TEST_F(NetResilienceTest, RetryAfterServerRestartHitsRecoveredDedup) {
  StartServer();
  RetryingClientOptions options = FastRetryOptions();
  options.max_retries = 0;  // this attempt must NOT recover by itself
  RetryingClient client(options);
  ASSERT_TRUE(client.Execute("UPDATE CLASS Person SET mary.Salary = 1")
                  .ok());

  // The reply to the next statement is dropped; with retries off the
  // client reports failure while the statement is in fact committed.
  const std::string stmt = "UPDATE CLASS Person SET mary.Salary = 52525";
  FaultInjector::Global().ArmNetNth("srv-write", NetFault::kDrop, 1);
  const uint64_t seq = client.last_seq() + 1;
  auto lost = client.ExecuteSeq(seq, stmt);
  EXPECT_FALSE(lost.ok());
  FaultInjector::Global().Disarm();
  EXPECT_EQ(WalOccurrences(stmt), 1);

  // Server restarts: recovery replays the stamped WAL and rebuilds the
  // dedup table from it.
  server_.reset();
  dd_.reset();
  OpenDb();
  ASSERT_NE(dd_, nullptr);
  StartServer();
  client.set_port(server_->port());

  // The client re-sends its unresolved statement with the SAME seq:
  // the recovered table answers from cache instead of re-executing.
  const uint64_t hits_before = dd_->dedup().hits();
  auto retried = client.ExecuteSeq(seq, stmt);
  ASSERT_TRUE(retried.ok()) << retried.status().ToString();
  EXPECT_EQ(WalOccurrences(stmt), 1);
  EXPECT_GT(dd_->dedup().hits(), hits_before);
}

TEST_F(NetResilienceTest, StaleSequenceNumberIsRejectedNotReplayed) {
  StartServer();
  Client client = MustConnect();
  RequestId r1 = MakeRid(0x22, 1);
  RequestId r2 = MakeRid(0x22, 2);
  ASSERT_TRUE(client
                  .ExecuteWithId(
                      r1, "UPDATE CLASS Person SET mary.Salary = 201")
                  .ok());
  ASSERT_TRUE(client
                  .ExecuteWithId(
                      r2, "UPDATE CLASS Person SET mary.Salary = 202")
                  .ok());
  const std::string replay = "UPDATE CLASS Person SET mary.Salary = 203";
  auto stale = client.ExecuteWithId(r1, replay);
  ASSERT_FALSE(stale.ok());
  EXPECT_NE(stale.status().message().find("stale"), std::string::npos)
      << stale.status().ToString();
  EXPECT_EQ(WalOccurrences(replay), 0);  // never executed
}

TEST_F(NetResilienceTest, AdmissionControlShedsWithRetryAfterHint) {
  ServerOptions options;
  options.max_inflight_statements = 1;
  options.retry_after_hint_ms = 25;
  StartServer(options);

  // Establish both sessions BEFORE grabbing the latch: session creation
  // itself runs under the exclusive latch, so a late connection would
  // park there instead of reaching its statement.
  Client a = MustConnect();
  ASSERT_TRUE(a.Ping().ok());
  Client b = MustConnect();
  ASSERT_TRUE(b.Ping().ok());

  // Hold the statement latch exclusively: the next statement parks
  // inside its in-flight slot, deterministically saturating admission.
  ASSERT_TRUE(
      server_->manager().latch().AcquireExclusive(ExecLimits{}, nullptr)
          .ok());
  std::thread holder([&] {
    auto out = a.Execute("UPDATE CLASS Person SET mary.Salary = 300");
    EXPECT_TRUE(out.ok()) << out.status().ToString();
  });
  // Give the holder time to be admitted and park on the latch.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));

  auto shed = b.Execute("SELECT T WHERE mary.Name[T]");
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(static_cast<int>(shed.status().code()),
            static_cast<int>(StatusCode::kUnavailable))
      << shed.status().ToString();
  EXPECT_NE(shed.status().message().find("overloaded"), std::string::npos);
  EXPECT_EQ(ParseRetryAfterHint(shed.status().message()), 25);
  // The shed connection is still usable.
  EXPECT_TRUE(b.Ping().ok());

  // A retrying client parked on the overload succeeds once it clears.
  RetryingClient c(FastRetryOptions());
  std::thread retrier([&] {
    auto out = c.Execute("SELECT T WHERE mary.Name[T]");
    EXPECT_TRUE(out.ok()) << out.status().ToString();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  server_->manager().latch().ReleaseExclusive();
  holder.join();
  retrier.join();
  EXPECT_GE(CounterValue("xsql.server.shed_statements"), 1u);
}

TEST_F(NetResilienceTest, IdleConnectionsAreReaped) {
  const uint64_t reaped_before = CounterValue("xsql.server.idle_reaped");
  ServerOptions options;
  options.idle_timeout_ms = 150;
  StartServer(options);
  Client client = MustConnect();
  ASSERT_TRUE(client.Ping().ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(700));
  // The server reaped the idle connection; the next round trip fails.
  EXPECT_FALSE(client.Ping().ok());
  EXPECT_GT(CounterValue("xsql.server.idle_reaped"), reaped_before);
  // Fresh connections still work.
  Client fresh = MustConnect();
  EXPECT_TRUE(fresh.Ping().ok());
}

TEST_F(NetResilienceTest, SlowPeerMidFrameIsDisconnected) {
  ServerOptions options;
  options.io_timeout_ms = 150;
  StartServer(options);
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  struct sockaddr_in addr;
  memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(server_->port()));
  ASSERT_EQ(connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                    sizeof(addr)),
            0);
  // Start a frame claiming 50 payload bytes, deliver 1, then stall.
  const char partial[] = {50, 0, 0, 0, 0x01};
  ASSERT_EQ(write(fd, partial, sizeof(partial)),
            static_cast<ssize_t>(sizeof(partial)));
  // The io deadline trips server-side and the connection is closed:
  // we observe EOF well before any idle policy could explain it.
  struct pollfd pfd;
  pfd.fd = fd;
  pfd.events = POLLIN;
  pfd.revents = 0;
  ASSERT_GT(poll(&pfd, 1, 5000), 0) << "server never closed the socket";
  char buf[8];
  EXPECT_EQ(read(fd, buf, sizeof(buf)), 0);  // clean EOF, no reply
  close(fd);
}

TEST_F(NetResilienceTest, ReplyWriteFailureIsCountedNotFatal) {
  const uint64_t failures_before =
      CounterValue("xsql.server.write_failures");
  StartServer();
  Client client = MustConnect();
  client.set_timeout_ms(500);
  FaultInjector::Global().ArmNetNth("srv-write", NetFault::kReset, 1);
  // The reply write fails server-side; the connection is closed and
  // the failure counted — the server must neither crash nor wedge.
  auto out = client.Execute("SELECT T WHERE mary.Name[T]");
  EXPECT_FALSE(out.ok());
  FaultInjector::Global().Disarm();
  EXPECT_GT(CounterValue("xsql.server.write_failures"), failures_before);
  Client fresh = MustConnect();
  EXPECT_TRUE(fresh.Ping().ok());
}

TEST_F(NetResilienceTest, WedgedDatabaseFailsFinalNotRetryable) {
  StartServer();
  Client client = MustConnect();
  dd_->Wedge();
  // Wedged needs an operator (reopen the directory): the verdict must
  // arrive as a FINAL kError, not kUnavailable, or retrying clients
  // would burn their whole backoff budget against a dead instance.
  auto out = client.Execute("SELECT T WHERE mary.Name[T]");
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(static_cast<int>(out.status().code()),
            static_cast<int>(StatusCode::kRuntimeError))
      << out.status().ToString();
  EXPECT_NE(out.status().message().find("reopen the directory"),
            std::string::npos);

  RetryingClient retrier(FastRetryOptions());
  auto final_out = retrier.Execute("SELECT T WHERE mary.Name[T]");
  ASSERT_FALSE(final_out.ok());
  EXPECT_EQ(retrier.retries(), 0u) << "wedged must fail fast, not retry";
}

TEST_F(NetResilienceTest, AutoCheckpointPersistsDedupEntryBeforeRotating) {
  // Regression: the mutation below triggers checkpoint_every=1, so the
  // SAME call that commits it also rotates the generation — discarding
  // its rid-stamped WAL record. The dedup entry must be recorded (and
  // therefore serialized into dedup-<gen>.tab) BEFORE that rotation;
  // recording it only after ExecuteInternal returned left a window
  // where a crash-then-retry re-executed a committed statement.
  ServerOptions options;
  options.checkpoint_every = 1;
  StartServer(options);
  Client client = MustConnect();
  RequestId rid = MakeRid(0x44, 1);
  const std::string stmt = "UPDATE CLASS Person SET mary.Salary = 70707";
  ASSERT_TRUE(client.ExecuteWithId(rid, stmt).ok());

  // "Crash": drop the process state, recover purely from disk.
  server_.reset();
  dd_.reset();
  OpenDb();
  ASSERT_NE(dd_, nullptr);
  StartServer();
  Client again = MustConnect();
  const uint64_t hits_before = dd_->dedup().hits();
  auto retried = again.ExecuteWithId(rid, stmt);
  ASSERT_TRUE(retried.ok()) << retried.status().ToString();
  EXPECT_GT(dd_->dedup().hits(), hits_before)
      << "retry re-executed instead of hitting the checkpointed table";
  EXPECT_EQ(WalOccurrences(stmt), 0);  // never re-applied post-rotation
}

TEST_F(NetResilienceTest, ConcurrentCheckpointNeverLosesDedupEntries) {
  // Regression for the racing flavor of the same hole: Complete runs
  // outside the exclusive latch, so an admin Checkpoint() between
  // WaitDurable and Complete could serialize a table missing entries
  // whose stamped WAL records it just rotated away. Checkpoint now
  // drains pending recordings first; hammer the race, then prove every
  // acked rid survives recovery from disk alone.
  StartServer();
  constexpr int kThreads = 4;
  constexpr int kPerThread = 12;
  std::atomic<bool> done{false};
  std::thread checkpointer([&] {
    while (!done.load()) {
      ASSERT_TRUE(server_->manager().Checkpoint().ok());
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  std::vector<std::thread> workers;
  std::atomic<int> acked{0};
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      Client client = MustConnect();
      for (int i = 0; i < kPerThread; ++i) {
        RequestId rid = MakeRid(static_cast<uint8_t>(0x50 + t), i + 1);
        auto out = client.ExecuteWithId(
            rid, "UPDATE CLASS Person SET mary.Salary = " +
                     std::to_string(1000 + t * 100 + i));
        EXPECT_TRUE(out.ok()) << out.status().ToString();
        if (out.ok()) acked.fetch_add(1);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  done.store(true);
  checkpointer.join();
  ASSERT_EQ(acked.load(), kThreads * kPerThread);

  server_.reset();
  dd_.reset();
  OpenDb();
  ASSERT_NE(dd_, nullptr);
  // Every acked (uuid, seq) must answer from the recovered table —
  // kExecute here would mean a post-crash retry re-executes.
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) {
      RequestId rid = MakeRid(static_cast<uint8_t>(0x50 + t), i + 1);
      std::string cached;
      auto claim = dd_->dedup().Claim(rid, ExecLimits{}, nullptr, &cached);
      if (i + 1 == kPerThread) {
        EXPECT_EQ(claim, DedupTable::ClaimResult::kCached)
            << "thread " << t << " seq " << (i + 1);
      } else {
        // Superseded seqs may answer stale; they must never execute.
        EXPECT_NE(claim, DedupTable::ClaimResult::kExecute)
            << "thread " << t << " seq " << (i + 1);
      }
    }
  }
}

TEST_F(NetResilienceTest, DedupSurvivesCheckpointRotation) {
  StartServer(ServerOptions{});
  Client client = MustConnect();
  RequestId rid = MakeRid(0x33, 1);
  const std::string stmt = "UPDATE CLASS Person SET mary.Salary = 60606";
  ASSERT_TRUE(client.ExecuteWithId(rid, stmt).ok());
  // Rotate: the WAL (and its stamps) folds into the snapshot; the
  // dedup entries must travel via dedup-<gen>.tab.
  ASSERT_TRUE(server_->manager().Checkpoint().ok());
  server_.reset();
  dd_.reset();
  OpenDb();
  ASSERT_NE(dd_, nullptr);
  StartServer();
  Client again = MustConnect();
  const uint64_t hits_before = dd_->dedup().hits();
  auto cached = again.ExecuteWithId(rid, stmt);
  ASSERT_TRUE(cached.ok()) << cached.status().ToString();
  EXPECT_GT(dd_->dedup().hits(), hits_before);
  EXPECT_EQ(WalOccurrences(stmt), 0);  // post-rotation WAL stays empty
}

}  // namespace
}  // namespace server
}  // namespace xsql
