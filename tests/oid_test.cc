#include "oid/oid.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace xsql {
namespace {

TEST(OidTest, KindsAndAccessors) {
  EXPECT_TRUE(Oid::Nil().is_nil());
  EXPECT_TRUE(Oid().is_nil());
  EXPECT_TRUE(Oid::Bool(true).bool_value());
  EXPECT_FALSE(Oid::Bool(false).bool_value());
  EXPECT_EQ(Oid::Int(42).int_value(), 42);
  EXPECT_DOUBLE_EQ(Oid::Real(2.5).real_value(), 2.5);
  EXPECT_EQ(Oid::String("ford").str(), "ford");
  EXPECT_EQ(Oid::Atom("mary123").str(), "mary123");
  Oid term = Oid::Term("secretary", {Oid::Atom("dept77")});
  EXPECT_EQ(term.term_fn(), "secretary");
  ASSERT_EQ(term.term_args().size(), 1u);
  EXPECT_EQ(term.term_args()[0], Oid::Atom("dept77"));
}

TEST(OidTest, NumericValueMixesIntAndReal) {
  EXPECT_TRUE(Oid::Int(3).is_numeric());
  EXPECT_TRUE(Oid::Real(3.5).is_numeric());
  EXPECT_FALSE(Oid::String("3").is_numeric());
  EXPECT_DOUBLE_EQ(Oid::Int(3).numeric_value(), 3.0);
}

TEST(OidTest, EqualityIsStructural) {
  EXPECT_EQ(Oid::Atom("a"), Oid::Atom("a"));
  EXPECT_NE(Oid::Atom("a"), Oid::String("a"));
  EXPECT_NE(Oid::Int(1), Oid::Real(1.0));  // distinct logical ids
  EXPECT_EQ(Oid::Term("f", {Oid::Int(1)}), Oid::Term("f", {Oid::Int(1)}));
  EXPECT_NE(Oid::Term("f", {Oid::Int(1)}), Oid::Term("f", {Oid::Int(2)}));
  EXPECT_NE(Oid::Term("f", {}), Oid::Term("g", {}));
}

TEST(OidTest, TotalOrderIsConsistent) {
  std::vector<Oid> oids = {Oid::Nil(),        Oid::Bool(false),
                           Oid::Int(5),       Oid::Real(1.5),
                           Oid::String("x"),  Oid::Atom("x"),
                           Oid::Term("f", {})};
  for (const Oid& a : oids) {
    EXPECT_EQ(a.Compare(a), 0);
    for (const Oid& b : oids) {
      EXPECT_EQ(a.Compare(b), -b.Compare(a));
    }
  }
}

TEST(OidTest, HashAgreesWithEquality) {
  EXPECT_EQ(Oid::Atom("x").Hash(), Oid::Atom("x").Hash());
  EXPECT_EQ(Oid::Term("f", {Oid::Int(1), Oid::Atom("a")}).Hash(),
            Oid::Term("f", {Oid::Int(1), Oid::Atom("a")}).Hash());
  std::unordered_set<Oid, OidHash> set;
  set.insert(Oid::Atom("x"));
  set.insert(Oid::Atom("x"));
  EXPECT_EQ(set.size(), 1u);
}

TEST(OidTest, ToStringMatchesPaperNotation) {
  EXPECT_EQ(Oid::Int(20).ToString(), "20");
  EXPECT_EQ(Oid::String("newyork").ToString(), "'newyork'");
  EXPECT_EQ(Oid::Atom("mary123").ToString(), "mary123");
  EXPECT_EQ(Oid::Term("secretary", {Oid::Atom("dept77")}).ToString(),
            "secretary(dept77)");
  EXPECT_EQ(Oid::Nil().ToString(), "nil");
}

TEST(OidSetTest, InsertSortsAndDedupes) {
  OidSet set;
  set.Insert(Oid::Int(2));
  set.Insert(Oid::Int(1));
  set.Insert(Oid::Int(2));
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.Contains(Oid::Int(1)));
  EXPECT_FALSE(set.Contains(Oid::Int(3)));
}

TEST(OidSetTest, ConstructorNormalizes) {
  OidSet set({Oid::Int(3), Oid::Int(1), Oid::Int(3)});
  EXPECT_EQ(set.size(), 2u);
  EXPECT_EQ(set.elems()[0], Oid::Int(1));
  EXPECT_EQ(set.elems()[1], Oid::Int(3));
}

TEST(OidSetTest, Algebra) {
  OidSet a({Oid::Int(1), Oid::Int(2)});
  OidSet b({Oid::Int(2), Oid::Int(3)});
  EXPECT_EQ(OidSet::Union(a, b).size(), 3u);
  OidSet inter = OidSet::Intersect(a, b);
  EXPECT_EQ(inter.size(), 1u);
  EXPECT_TRUE(inter.Contains(Oid::Int(2)));
  OidSet diff = OidSet::Difference(a, b);
  EXPECT_EQ(diff.size(), 1u);
  EXPECT_TRUE(diff.Contains(Oid::Int(1)));
}

TEST(OidSetTest, SubsetOf) {
  OidSet a({Oid::Int(1)});
  OidSet b({Oid::Int(1), Oid::Int(2)});
  EXPECT_TRUE(a.SubsetOf(b));
  EXPECT_FALSE(b.SubsetOf(a));
  EXPECT_TRUE(OidSet().SubsetOf(a));
  EXPECT_TRUE(a.SubsetOf(a));
}

}  // namespace
}  // namespace xsql
