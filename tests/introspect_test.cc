// The catalog-as-methods interface: classes answer attributes /
// superclasses / subclasses / instances as ordinary set-valued methods
// (§2's catalog-in-the-hierarchy made executable).
#include <gtest/gtest.h>

#include "eval/introspect.h"
#include "eval/session.h"
#include "workload/fig1_schema.h"
#include "workload/generator.h"

namespace xsql {
namespace {

Oid A(const char* s) { return Oid::Atom(s); }

class IntrospectTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(workload::BuildFig1Schema(&db_).ok());
    workload::WorkloadParams params;
    params.companies = 1;
    ASSERT_TRUE(workload::GenerateFig1Data(&db_, params).ok());
    session_ = std::make_unique<Session>(&db_);  // installs introspection
  }

  OidSet Column(const Relation& rel) {
    OidSet out;
    for (const auto& row : rel.rows()) out.Insert(row[0]);
    return out;
  }

  Database db_;
  std::unique_ptr<Session> session_;
};

TEST_F(IntrospectTest, AttributesMethod) {
  auto rel = session_->Query("SELECT A WHERE Employee.attributes[A]");
  ASSERT_TRUE(rel.ok()) << rel.status().ToString();
  OidSet attrs = Column(*rel);
  EXPECT_TRUE(attrs.Contains(A("Salary")));
  EXPECT_TRUE(attrs.Contains(A("Name")));  // structurally inherited
  EXPECT_FALSE(attrs.Contains(A("Divisions")));
}

TEST_F(IntrospectTest, SuperclassesMatchesSubclassOf) {
  auto via_method =
      session_->Query("SELECT S WHERE TurboEngine.superclasses[S]");
  ASSERT_TRUE(via_method.ok()) << via_method.status().ToString();
  auto via_predicate =
      session_->Query("SELECT $S WHERE TurboEngine subclassOf $S");
  ASSERT_TRUE(via_predicate.ok());
  EXPECT_EQ(Column(*via_method), Column(*via_predicate));
}

TEST_F(IntrospectTest, SubclassesAreStrictDescendants) {
  auto rel = session_->Query("SELECT S WHERE PistonEngine.subclasses[S]");
  ASSERT_TRUE(rel.ok());
  OidSet subs = Column(*rel);
  EXPECT_TRUE(subs.Contains(A("TurboEngine")));
  EXPECT_TRUE(subs.Contains(A("DieselEngine")));
  EXPECT_TRUE(subs.Contains(A("FourStrokeEngine")));
  EXPECT_FALSE(subs.Contains(A("PistonEngine")));  // strict
}

TEST_F(IntrospectTest, InstancesIsTheDeepExtent) {
  auto rel = session_->Query("SELECT O WHERE Person.instances[O]");
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(Column(*rel), db_.graph().Extent(A("Person")));
}

TEST_F(IntrospectTest, ComposesWithDataPaths) {
  // Employees of the schema's Employee class earning over 0 — the
  // introspection method feeds an ordinary data path.
  auto rel = session_->Query(
      "SELECT O WHERE Employee.instances[O] and O.Salary > 0");
  ASSERT_TRUE(rel.ok()) << rel.status().ToString();
  EXPECT_EQ(rel->size(), db_.graph().Extent(A("Employee")).size());
}

TEST_F(IntrospectTest, WorksThroughClassVariables) {
  // Which classes have an instance named 'mary'? — method variables on
  // meta-level objects.
  auto rel = session_->Query(
      "SELECT $C FROM Class $C WHERE $C.instances[O] and O.Name['mary']");
  ASSERT_TRUE(rel.ok()) << rel.status().ToString();
  OidSet classes = Column(*rel);
  EXPECT_TRUE(classes.Contains(A("Person")));
  EXPECT_TRUE(classes.Contains(A("Object")));
}

TEST_F(IntrospectTest, InstallationIsIdempotent) {
  EXPECT_TRUE(InstallIntrospection(&db_).ok());
  EXPECT_TRUE(InstallIntrospection(&db_).ok());
  auto rel = session_->Query("SELECT A WHERE Address.attributes[A]");
  ASSERT_TRUE(rel.ok());
  EXPECT_TRUE(Column(*rel).Contains(A("City")));
}

}  // namespace
}  // namespace xsql
