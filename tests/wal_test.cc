// WAL record codec and torn-tail detection: encode/scan round trips,
// a byte-by-byte truncation sweep, checksum corruption, and appender
// behaviour under injected I/O faults.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "common/crc32.h"
#include "common/fault.h"
#include "storage/file.h"
#include "storage/wal.h"

namespace xsql {
namespace storage {
namespace {

const std::string kMagic(Wal::kMagic);

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/xsql_wal_" + name + ".log";
}

class WalTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjector::Global().Disarm(); }
};

TEST_F(WalTest, EncodeScanRoundTrip) {
  const std::vector<std::string> payloads = {
      "UPDATE CLASS Person SET mary.Name = 'mary'",
      "",                              // empty statement is a valid record
      std::string("\x00\x01\xff", 3),  // binary-safe
      "multi\nline\nstatement",
      std::string(10000, 'x'),
  };
  std::string contents = kMagic;
  for (const std::string& p : payloads) contents += Wal::EncodeRecord(p);

  auto scan = Wal::ScanContents(contents);
  ASSERT_TRUE(scan.ok()) << scan.status().ToString();
  EXPECT_EQ(scan->records, payloads);
  EXPECT_EQ(scan->valid_size, contents.size());
  EXPECT_FALSE(scan->torn);
}

TEST_F(WalTest, RecordLayoutIsLenCrcPayload) {
  const std::string payload = "hello";
  std::string record = Wal::EncodeRecord(payload);
  ASSERT_EQ(record.size(), Wal::kRecordHeader + payload.size());
  auto u32 = [&](size_t at) {
    return static_cast<uint32_t>(static_cast<unsigned char>(record[at])) |
           static_cast<uint32_t>(static_cast<unsigned char>(record[at + 1]))
               << 8 |
           static_cast<uint32_t>(static_cast<unsigned char>(record[at + 2]))
               << 16 |
           static_cast<uint32_t>(static_cast<unsigned char>(record[at + 3]))
               << 24;
  };
  EXPECT_EQ(u32(0), payload.size());
  EXPECT_EQ(u32(4), Crc32(payload));
  EXPECT_EQ(record.substr(8), payload);
}

TEST_F(WalTest, RejectsMissingOrWrongMagic) {
  EXPECT_FALSE(Wal::ScanContents("").ok());
  EXPECT_FALSE(Wal::ScanContents("XSQL-WAL 9\n").ok());
  EXPECT_FALSE(Wal::ScanContents("garbage").ok());
  // A strict prefix of the magic is also rejected: the file was never
  // validly created.
  EXPECT_FALSE(Wal::ScanContents(kMagic.substr(0, 4)).ok());
}

// The core torn-tail property: truncating a valid log at *every* byte
// boundary yields exactly the records whose bytes fully fit, with the
// torn flag raised iff a partial record remains.
TEST_F(WalTest, TruncationSweepKeepsExactlyTheFullRecords) {
  const std::vector<std::string> payloads = {"first", "", "third record",
                                             "4\n4"};
  std::string contents = kMagic;
  std::vector<size_t> boundaries = {contents.size()};  // after magic
  for (const std::string& p : payloads) {
    contents += Wal::EncodeRecord(p);
    boundaries.push_back(contents.size());
  }

  for (size_t cut = kMagic.size(); cut <= contents.size(); ++cut) {
    auto scan = Wal::ScanContents(contents.substr(0, cut));
    ASSERT_TRUE(scan.ok()) << "cut=" << cut;
    // Number of records fully contained in the prefix.
    size_t expect = 0;
    while (expect + 1 < boundaries.size() && boundaries[expect + 1] <= cut) {
      ++expect;
    }
    EXPECT_EQ(scan->records.size(), expect) << "cut=" << cut;
    for (size_t i = 0; i < expect; ++i) {
      EXPECT_EQ(scan->records[i], payloads[i]) << "cut=" << cut;
    }
    EXPECT_EQ(scan->valid_size, boundaries[expect]) << "cut=" << cut;
    EXPECT_EQ(scan->torn, cut != boundaries[expect]) << "cut=" << cut;
  }
}

// Flipping any single byte of a record makes it (and everything after
// it) untrusted, while the records before it survive.
TEST_F(WalTest, CorruptionEndsTheValidPrefix) {
  const std::vector<std::string> payloads = {"alpha", "bravo", "charlie"};
  std::string contents = kMagic;
  std::vector<size_t> starts;
  for (const std::string& p : payloads) {
    starts.push_back(contents.size());
    contents += Wal::EncodeRecord(p);
  }

  for (size_t victim = 0; victim < payloads.size(); ++victim) {
    // Corrupt one payload byte of record `victim` (its first byte).
    std::string bad = contents;
    bad[starts[victim] + Wal::kRecordHeader] ^= 0x40;
    auto scan = Wal::ScanContents(bad);
    ASSERT_TRUE(scan.ok());
    EXPECT_EQ(scan->records.size(), victim) << "victim=" << victim;
    EXPECT_TRUE(scan->torn);
    EXPECT_EQ(scan->valid_size, starts[victim]);
    EXPECT_NE(scan->torn_detail.find("checksum"), std::string::npos)
        << scan->torn_detail;
  }
}

TEST_F(WalTest, AbsurdLengthPrefixIsTorn) {
  // A length field beyond kMaxRecordLen is treated as garbage even
  // though 8 header bytes are present.
  std::string contents = kMagic;
  contents += std::string("\xff\xff\xff\xff", 4);  // len = 2^32-1
  contents += std::string("\x00\x00\x00\x00", 4);
  auto scan = Wal::ScanContents(contents);
  ASSERT_TRUE(scan.ok());
  EXPECT_TRUE(scan->torn);
  EXPECT_EQ(scan->valid_size, kMagic.size());
  EXPECT_TRUE(scan->records.empty());
}

TEST_F(WalTest, CreateAppendScanFileRoundTrip) {
  const std::string path = TempPath("roundtrip");
  ASSERT_TRUE(Wal::Create(path).ok());
  auto wal = Wal::OpenAppender(path, kMagic.size());
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  const std::vector<std::string> payloads = {"one", "two", "three"};
  for (const std::string& p : payloads) {
    ASSERT_TRUE(wal->Append(p).ok());
  }
  EXPECT_EQ(wal->records_appended(), payloads.size());

  auto scan = Wal::ScanFile(path);
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan->records, payloads);
  EXPECT_FALSE(scan->torn);
  EXPECT_EQ(scan->valid_size, wal->synced_size());
  std::remove(path.c_str());
}

TEST_F(WalTest, OpenAppenderTruncatesTornTail) {
  const std::string path = TempPath("torntail");
  ASSERT_TRUE(Wal::Create(path).ok());
  {
    auto wal = Wal::OpenAppender(path, kMagic.size());
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal->Append("durable statement").ok());
  }
  auto scan = Wal::ScanFile(path);
  ASSERT_TRUE(scan.ok());
  const uint64_t valid = scan->valid_size;

  // Simulate a crash mid-append: half a record's bytes at the tail.
  std::string torn_bytes = Wal::EncodeRecord("never acknowledged");
  {
    auto f = File::OpenAppend(path);
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE(f->Write(torn_bytes.substr(0, torn_bytes.size() / 2)).ok());
    ASSERT_TRUE(f->Sync().ok());
    ASSERT_TRUE(f->Close().ok());
  }
  auto rescan = Wal::ScanFile(path);
  ASSERT_TRUE(rescan.ok());
  EXPECT_TRUE(rescan->torn);
  EXPECT_EQ(rescan->valid_size, valid);

  // Re-binding the appender repairs the file to the valid prefix.
  auto wal = Wal::OpenAppender(path, rescan->valid_size);
  ASSERT_TRUE(wal.ok());
  auto size = File::Size(path);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, valid);
  ASSERT_TRUE(wal->Append("after repair").ok());
  auto final_scan = Wal::ScanFile(path);
  ASSERT_TRUE(final_scan.ok());
  ASSERT_EQ(final_scan->records.size(), 2u);
  EXPECT_EQ(final_scan->records[1], "after repair");
  EXPECT_FALSE(final_scan->torn);
  std::remove(path.c_str());
}

// ArmNth(kIo) sweep over Append: whenever Append reports an error, the
// on-disk log must be exactly what it was before the call ("error
// implies not durable"), and a later Append must still work.
TEST_F(WalTest, TransientFaultSweepLeavesLogIntact) {
  FaultInjector& fi = FaultInjector::Global();
  const std::string path = TempPath("transient");
  ASSERT_TRUE(Wal::Create(path).ok());
  auto wal = Wal::OpenAppender(path, kMagic.size());
  ASSERT_TRUE(wal.ok());

  size_t injected = 0;
  for (uint64_t n = 1;; ++n) {
    ASSERT_LT(n, 100u) << "append never ran clean";
    auto before = Wal::ScanFile(path);
    ASSERT_TRUE(before.ok());
    fi.ArmNth(FaultInjector::Domain::kIo, n);
    Status st = wal->Append("attempt " + std::to_string(n));
    const bool fired = fi.fired();
    fi.Disarm();
    if (st.ok()) {
      EXPECT_FALSE(fired);
      break;
    }
    ++injected;
    auto after = Wal::ScanFile(path);
    ASSERT_TRUE(after.ok());
    EXPECT_EQ(after->records, before->records) << "n=" << n;
    EXPECT_EQ(after->valid_size, before->valid_size) << "n=" << n;
    EXPECT_FALSE(after->torn) << "n=" << n;
  }
  EXPECT_GE(injected, 2u);  // open + sync are both injection points

  auto scan = Wal::ScanFile(path);
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan->records.size(), 1u);
  std::remove(path.c_str());
}

// ArmCrashAtByte sweep over a single Append: for every k strictly
// inside the record the tail is torn and scan recovers the empty log;
// at k == record size the record is fully durable (though the append
// itself reports the crash — durable but unacknowledged is the one
// legal ambiguity of a crashed commit).
TEST_F(WalTest, CrashSweepThroughAppendBytes) {
  FaultInjector& fi = FaultInjector::Global();
  const std::string payload = "UPDATE CLASS Person SET mary.Salary = 1";
  const uint64_t units = Wal::kRecordHeader + payload.size();

  for (uint64_t k = 1; k <= units; ++k) {
    const std::string path = TempPath("crash" + std::to_string(k));
    ASSERT_TRUE(Wal::Create(path).ok());
    auto wal = Wal::OpenAppender(path, kMagic.size());
    ASSERT_TRUE(wal.ok());

    fi.ArmCrashAtByte(k);
    Status st = wal->Append(payload);
    EXPECT_FALSE(st.ok()) << "k=" << k;
    EXPECT_TRUE(fi.crashed()) << "k=" << k;
    fi.Disarm();

    auto scan = Wal::ScanFile(path);
    ASSERT_TRUE(scan.ok()) << "k=" << k;
    if (k < units) {
      EXPECT_TRUE(scan->records.empty()) << "k=" << k;
      EXPECT_EQ(scan->torn, k > 0) << "k=" << k;
      EXPECT_EQ(scan->valid_size, kMagic.size()) << "k=" << k;
    } else {
      ASSERT_EQ(scan->records.size(), 1u);
      EXPECT_EQ(scan->records[0], payload);
      EXPECT_FALSE(scan->torn);
    }
    std::remove(path.c_str());
  }
}

}  // namespace
}  // namespace storage
}  // namespace xsql
