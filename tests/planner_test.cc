// The cost-based planner and the prepared-plan cache (experiment id
// B14): differential tests proving planned evaluation is answer-
// identical to the naive §3.4 reference semantics, planner unit tests
// (selectivity ordering, hash-join shape detection, §5 UPDATE pinning,
// index-driven cardinality refinement), and plan-cache behavior
// (hit-skips-preparation, DDL invalidation, eviction, disabling,
// cross-session sharing).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "eval/evaluator.h"
#include "eval/plan_cache.h"
#include "eval/session.h"
#include "obs/trace.h"
#include "parser/parser.h"
#include "store/index.h"
#include "typing/planner.h"
#include "typing/type_checker.h"
#include "workload/fig1_schema.h"
#include "workload/generator.h"

namespace xsql {
namespace {

Oid A(const char* s) { return Oid::Atom(s); }

std::multiset<std::vector<Oid>> Rows(const Relation& rel) {
  return {rel.rows().begin(), rel.rows().end()};
}

/// A tiny instance keeps the naive evaluator's full-domain enumeration
/// tractable (same sizing as property_test).
void BuildTinyDb(Database* db, uint64_t seed) {
  ASSERT_TRUE(workload::BuildFig1Schema(db).ok());
  workload::WorkloadParams params;
  params.seed = seed;
  params.companies = 1;
  params.divisions_per_company = 1;
  params.employees_per_division = 2;
  params.extra_persons = 2;
  params.automobiles = 2;
  params.max_family = 2;
  ASSERT_TRUE(workload::GenerateFig1Data(db, params).ok());
}

/// Multi-variable join templates — the queries the hash join and the
/// selectivity ordering actually rewrite. %1 is a numeric threshold.
const char* kJoinTemplates[] = {
    "SELECT X, Y FROM Employee X, Employee Y WHERE X.Salary =some Y.Salary",
    "SELECT X, Y FROM Employee X, Person Y WHERE X.Name =some Y.Name "
    "and X.Salary > %1",
    "SELECT X, Y FROM Person X, Person Y WHERE "
    "X.Residence.City =some Y.Residence.City",
    "SELECT X, Y FROM Employee X, Employee Y WHERE "
    "X.FamMembers.Age =some Y.FamMembers.Age",
    // =all is NOT hash-joinable (vacuous truth on empty sides) — the
    // differential still must hold because the planner refuses it.
    "SELECT X, Y FROM Employee X, Employee Y WHERE X.Salary =all Y.Salary",
    // Three-way: two join conjuncts plus a constant filter.
    "SELECT X, Y, Z FROM Employee X, Employee Y, Company Z WHERE "
    "X.Salary =some Y.Salary and Z.Divisions.Employees[X]",
};

/// Single-variable templates from the paper corpus (subset of the
/// property_test fragment the naive evaluator covers).
const char* kCorpusTemplates[] = {
    "SELECT C WHERE mary123.Residence.City[C]",
    "SELECT Y FROM Person X WHERE X.Residence[Y]",
    "SELECT X FROM Employee X WHERE X.Salary > %1",
    "SELECT X FROM Employee X WHERE X.FamMembers.Age some> %1",
    "SELECT X, W FROM Company X WHERE X.Divisions.Employees[W]",
    "SELECT X FROM Person X WHERE X.Residence =all X.FamMembers.Residence",
    "SELECT X, Y FROM Company X WHERE X.Name =some "
    "X.Divisions.Employees[Y].Name",
    "SELECT W FROM Company Y WHERE Y.Retirees[W] or Y.President[W]",
};

std::string Instantiate(const char* tmpl, Rng* rng) {
  std::string out = tmpl;
  size_t pos;
  while ((pos = out.find("%1")) != std::string::npos) {
    out.replace(pos, 2, std::to_string(rng->Range(10000, 90000)));
  }
  return out;
}

/// Builds the index set the planner consults in the indexed variants.
void AddIndexes(Database* db, PathIndexSet* indexes) {
  ASSERT_TRUE(indexes->Add(*db, A("Person"), {A("Name")}).ok());
  ASSERT_TRUE(indexes->Add(*db, A("Employee"), {A("Salary")}).ok());
  ASSERT_TRUE(
      indexes->Add(*db, A("Person"), {A("Residence"), A("City")}).ok());
}

/// Runs `text` three ways — naive §3.4 reference, planner off, planner
/// on (optionally with indexes) — and requires identical multisets.
void ExpectPlannedEqualsNaive(Database* db, const std::string& text,
                              const PathIndexSet* indexes) {
  auto stmt = ParseAndResolve(text, *db);
  ASSERT_TRUE(stmt.ok()) << text;
  ASSERT_EQ(stmt->kind, Statement::Kind::kQuery);
  const Query& q = *stmt->query->simple;

  Evaluator evaluator(db);
  auto naive = evaluator.RunNaive(q);
  ASSERT_TRUE(naive.ok()) << text << "\n" << naive.status().ToString();

  // Planner off: the greedy ready-first baseline.
  auto baseline = evaluator.Run(q);
  ASSERT_TRUE(baseline.ok()) << text;
  EXPECT_EQ(Rows(baseline->relation), Rows(naive->relation)) << text;

  // Planner on, with the strict witness's ranges when one exists.
  TypeChecker checker(*db);
  TypingResult typing = checker.Check(q, TypingMode::kStrict);
  Planner planner(*db, indexes);
  QueryPlan plan = planner.Plan(
      q, typing.well_typed && typing.in_fragment ? &typing.ranges : nullptr);
  EvalOptions opts;
  opts.plan = &plan;
  opts.indexes = indexes;
  if (typing.well_typed && typing.in_fragment) opts.ranges = &typing.ranges;
  auto planned = evaluator.Run(q, opts);
  ASSERT_TRUE(planned.ok()) << text << "\n" << planned.status().ToString();
  EXPECT_EQ(Rows(planned->relation), Rows(naive->relation)) << text;
}

class PlannerDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PlannerDifferentialTest, PlannedEqualsNaiveOnCorpus) {
  Database db;
  BuildTinyDb(&db, GetParam());
  Rng rng(GetParam() * 31 + 7);
  for (const char* tmpl : kCorpusTemplates) {
    ExpectPlannedEqualsNaive(&db, Instantiate(tmpl, &rng), nullptr);
  }
}

TEST_P(PlannerDifferentialTest, PlannedEqualsNaiveOnJoins) {
  Database db;
  BuildTinyDb(&db, GetParam());
  Rng rng(GetParam() * 17 + 3);
  for (const char* tmpl : kJoinTemplates) {
    ExpectPlannedEqualsNaive(&db, Instantiate(tmpl, &rng), nullptr);
  }
}

TEST_P(PlannerDifferentialTest, PlannedEqualsNaiveWithIndexes) {
  Database db;
  BuildTinyDb(&db, GetParam());
  PathIndexSet indexes;
  AddIndexes(&db, &indexes);
  Rng rng(GetParam() * 13 + 11);
  for (const char* tmpl : kJoinTemplates) {
    ExpectPlannedEqualsNaive(&db, Instantiate(tmpl, &rng), &indexes);
  }
  for (const char* tmpl : kCorpusTemplates) {
    ExpectPlannedEqualsNaive(&db, Instantiate(tmpl, &rng), &indexes);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlannerDifferentialTest,
                         ::testing::Values(1, 2, 3, 5, 8));

// ------------------------------------------------------------- planner

class PlannerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(workload::BuildFig1Schema(&db_).ok());
    workload::WorkloadParams params;
    ASSERT_TRUE(workload::GenerateFig1Data(&db_, params).ok());
    session_ = std::make_unique<Session>(&db_);
  }

  QueryPlan PlanFor(const std::string& text,
                    const PathIndexSet* indexes = nullptr) {
    auto stmt = ParseAndResolve(text, db_);
    EXPECT_TRUE(stmt.ok()) << text;
    Planner planner(db_, indexes);
    return planner.Plan(*stmt->query->simple);
  }

  Database db_;
  std::unique_ptr<Session> session_;
};

TEST_F(PlannerTest, EqualitySomeJoinIsHashJoinable) {
  QueryPlan plan = PlanFor(
      "SELECT X, Y FROM Employee X, Employee Y WHERE "
      "X.Salary =some Y.Salary");
  ASSERT_EQ(plan.hash_joinable.size(), 1u);
  EXPECT_TRUE(plan.hash_joinable[0]);
  EXPECT_TRUE(plan.allow_reorder);
}

TEST_F(PlannerTest, AllQuantifierIsNotHashJoinable) {
  // =all holds vacuously on an empty side; a shared-terminal-value
  // probe cannot see those answers, so the planner must refuse.
  QueryPlan plan = PlanFor(
      "SELECT X, Y FROM Employee X, Employee Y WHERE "
      "X.Salary =all Y.Salary");
  ASSERT_EQ(plan.hash_joinable.size(), 1u);
  EXPECT_FALSE(plan.hash_joinable[0]);
}

TEST_F(PlannerTest, ConstantComparisonIsNotHashJoinable) {
  QueryPlan plan =
      PlanFor("SELECT X FROM Employee X WHERE X.Salary > 100");
  ASSERT_EQ(plan.hash_joinable.size(), 1u);
  EXPECT_FALSE(plan.hash_joinable[0]);
}

TEST_F(PlannerTest, NonEqualityJoinIsNotHashJoinable) {
  QueryPlan plan = PlanFor(
      "SELECT X, Y FROM Employee X, Employee Y WHERE "
      "X.Salary some> Y.Salary");
  ASSERT_EQ(plan.hash_joinable.size(), 1u);
  EXPECT_FALSE(plan.hash_joinable[0]);
}

TEST_F(PlannerTest, FromOrderPutsSmallExtentFirst) {
  // Person dominates Company in the generated instance; the plan must
  // reverse the declaration order.
  QueryPlan plan = PlanFor(
      "SELECT X, Y FROM Person X, Company Y WHERE "
      "Y.Divisions.Employees[X]");
  ASSERT_EQ(plan.from_order.size(), 2u);
  EXPECT_EQ(plan.from_order[0], 1u);  // Company first
  EXPECT_EQ(plan.from_order[1], 0u);
  ASSERT_EQ(plan.from_card.size(), 2u);
  EXPECT_LT(plan.from_card[1], plan.from_card[0]);
}

TEST_F(PlannerTest, NestedUpdatePinsDeclarationOrder) {
  // §5: a nested UPDATE relies on left-to-right evaluation; the plan
  // must tell the evaluator to keep declaration order untouched.
  QueryPlan plan = PlanFor(
      "SELECT X FROM Company X WHERE X.Name['company0'] and "
      "(UPDATE CLASS Division SET div0_0.Function = 'mischief')");
  EXPECT_FALSE(plan.allow_reorder);
}

TEST_F(PlannerTest, FreshIndexRefinesCardinalityAndIsReported) {
  PathIndexSet indexes;
  AddIndexes(&db_, &indexes);
  QueryPlan plan = PlanFor(
      "SELECT X FROM Person X WHERE X.Name['mary']", &indexes);
  bool mentions_index = false;
  for (const std::string& d : plan.decisions) {
    if (d.find("index") != std::string::npos) mentions_index = true;
  }
  EXPECT_TRUE(mentions_index);
  ASSERT_EQ(plan.from_card.size(), 1u);
  // An exact-match probe estimate must be far below the extent size.
  EXPECT_LT(plan.from_card[0], db_.Extent(A("Person")).size());
}

TEST_F(PlannerTest, SessionPlannerMatchesPlannerOffOnFullCorpus) {
  // The whole end-to-end surface on the full Figure 1 instance: a
  // planner-on session and a planner-off session must agree on every
  // read-only paper query (naive is intractable at this scale; the
  // tiny-instance differentials above pin both to the §3.4 semantics).
  SessionOptions off;
  off.use_planner = false;
  off.plan_cache_capacity = 0;
  Session unplanned(&db_, off);
  const char* corpus[] = {
      "SELECT C WHERE mary123.Residence.City[C]",
      "SELECT N WHERE uniSQL.President.FamMembers.Name[N]",
      "SELECT Y FROM Person X WHERE X.Residence[Y].City['newyork']",
      "SELECT Z FROM Employee X, Automobile Y "
      "WHERE X.OwnedVehicles[Y].Drivetrain.Engine[Z]",
      "SELECT X FROM Employee X WHERE X.FamMembers.Age some> 20",
      "SELECT X FROM Automobile Y WHERE Y.Manufacturer[X] "
      "and X.President.OwnedVehicles.Color containsEq {'blue', 'red'} "
      "and X.President.Age < 30",
      "SELECT X FROM Person X WHERE X.Residence =all "
      "X.FamMembers.Residence",
      "SELECT X, Y FROM Employee X, Employee Y WHERE "
      "Y.FamMembers.Age all<all X.FamMembers.Age and X.Name['john']",
      "SELECT X FROM Employee X WHERE count(X.FamMembers) > 4 "
      "and X.Salary < 100000",
      "SELECT X.Name, W.Salary FROM Company X "
      "WHERE X.Divisions.Employees[W].FamMembers.Age some> 60",
      "SELECT X, Y FROM Employee X, Employee Y WHERE "
      "X.Salary =some Y.Salary",
      "SELECT X FROM Vehicle X "
      "WHERE X.Manufacturer[M] and M.President.OwnedVehicles[X]",
      "SELECT X FROM Person X WHERE X.*P.City['newyork'] "
      "and X.Name['mary']",
      "SELECT $C FROM $C Y WHERE Y.Name['mary'] and Y.Residence",
      "SELECT X FROM Person X MINUS SELECT X FROM Employee X",
  };
  for (const char* text : corpus) {
    auto planned = session_->Query(text);
    ASSERT_TRUE(planned.ok()) << text << "\n"
                              << planned.status().ToString();
    auto reference = unplanned.Query(text);
    ASSERT_TRUE(reference.ok()) << text;
    EXPECT_EQ(Rows(*planned), Rows(*reference)) << text;
  }
}

// ---------------------------------------------------------- plan cache

/// Top-level span names of a tracer, in first-seen order.
std::vector<std::string> TopSpans(const obs::Tracer& tracer) {
  std::vector<std::string> names;
  for (const auto& child : tracer.root().children) {
    names.push_back(child->name);
  }
  return names;
}

TEST_F(PlannerTest, CacheHitSkipsParseTypecheckAndPlanning) {
  const char* kQ = "SELECT X FROM Employee X WHERE X.Salary > 50000";
  ASSERT_TRUE(session_->Query(kQ).ok());  // cold: prepares + caches
  obs::Tracer tracer;
  {
    obs::ScopedTracer install(&tracer);
    ASSERT_TRUE(session_->Query(kQ).ok());
  }
  // The hot execution must carry no preparation spans at all.
  EXPECT_EQ(TopSpans(tracer), std::vector<std::string>{"statement"});
  EXPECT_EQ(session_->plan_cache().size(), 1u);
}

TEST_F(PlannerTest, WhitespaceVariantsShareACacheSlot) {
  ASSERT_TRUE(session_->Query("SELECT X FROM Company X").ok());
  ASSERT_TRUE(session_->Query("SELECT   X\nFROM  Company   X").ok());
  EXPECT_EQ(session_->plan_cache().size(), 1u);
  // ...but string-literal content is not normalizable formatting.
  EXPECT_NE(PlanCache::NormalizeText("SELECT 'a  b'"),
            PlanCache::NormalizeText("SELECT 'a b'"));
}

TEST_F(PlannerTest, MutationInvalidatesCachedPlans) {
  const char* kQ = "SELECT X FROM Person X WHERE X.Name['mary']";
  ASSERT_TRUE(session_->Query(kQ).ok());
  // Any mutation bumps Database::version(); the cached entry is stale.
  ASSERT_TRUE(
      session_->Execute("UPDATE CLASS Person SET mary123.Name = 'maria'")
          .ok());
  obs::Tracer tracer;
  {
    obs::ScopedTracer install(&tracer);
    auto rel = session_->Query(kQ);
    ASSERT_TRUE(rel.ok());
    EXPECT_TRUE(rel->empty());  // the rename is visible, not the cache
  }
  // Stale entry dropped: the statement re-prepared from scratch.
  std::vector<std::string> spans = TopSpans(tracer);
  EXPECT_NE(std::find(spans.begin(), spans.end(), "parse"), spans.end());
  EXPECT_NE(std::find(spans.begin(), spans.end(), "typecheck"),
            spans.end());
}

TEST_F(PlannerTest, CapacityZeroDisablesCaching) {
  SessionOptions options;
  options.plan_cache_capacity = 0;
  Session session(&db_, options);
  ASSERT_TRUE(session.Query("SELECT X FROM Company X").ok());
  ASSERT_TRUE(session.Query("SELECT X FROM Company X").ok());
  EXPECT_EQ(session.plan_cache().size(), 0u);
}

TEST_F(PlannerTest, LruEvictionHonorsCapacity) {
  SessionOptions options;
  options.plan_cache_capacity = 2;
  Session session(&db_, options);
  ASSERT_TRUE(session.Query("SELECT X FROM Company X").ok());
  ASSERT_TRUE(session.Query("SELECT X FROM Person X").ok());
  ASSERT_TRUE(session.Query("SELECT X FROM Vehicle X").ok());
  EXPECT_EQ(session.plan_cache().size(), 2u);
}

TEST_F(PlannerTest, SharedCacheServesASecondSession) {
  // The server wiring without the server: two sessions over one cache;
  // a statement prepared on the first is hot on the second.
  Session second(&db_, SessionOptions{}, &session_->views(),
                 &session_->plan_cache());
  const char* kQ = "SELECT X FROM Employee X WHERE X.Salary > 50000";
  ASSERT_TRUE(session_->Query(kQ).ok());
  obs::Tracer tracer;
  {
    obs::ScopedTracer install(&tracer);
    ASSERT_TRUE(second.Query(kQ).ok());
  }
  EXPECT_EQ(TopSpans(tracer), std::vector<std::string>{"statement"});
}

TEST_F(PlannerTest, OnlyPlainQueriesAreCached) {
  ASSERT_TRUE(
      session_->Execute("UPDATE CLASS Person SET mary123.Age = 31").ok());
  EXPECT_EQ(session_->plan_cache().size(), 0u);
  ASSERT_TRUE(session_->Query("SELECT X FROM Company X").ok());
  EXPECT_EQ(session_->plan_cache().size(), 1u);
}

TEST_F(PlannerTest, ExplainReportsPlannerDecisions) {
  auto report = session_->Explain(
      "SELECT X, Y FROM Employee X, Employee Y WHERE "
      "X.Salary =some Y.Salary");
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_NE(report->find("planner"), std::string::npos) << *report;
  EXPECT_NE(report->find("hash join"), std::string::npos) << *report;
}

TEST_F(PlannerTest, ExplainAnalyzeReportsCacheState) {
  const char* kQ =
      "EXPLAIN ANALYZE SELECT X FROM Employee X WHERE X.Salary > 50000";
  auto cold = session_->Execute(kQ);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  std::string cold_text;
  for (const auto& row : cold->relation.rows()) {
    cold_text += row[0].str() + "\n";
  }
  EXPECT_NE(cold_text.find("cache : miss"), std::string::npos)
      << cold_text;
  // EXPLAIN ANALYZE itself does not publish to the cache (it rolls
  // back), but the plain statement does.
  ASSERT_TRUE(
      session_->Query("SELECT X FROM Employee X WHERE X.Salary > 50000")
          .ok());
  auto hot = session_->Execute(kQ);
  ASSERT_TRUE(hot.ok());
  std::string hot_text;
  for (const auto& row : hot->relation.rows()) {
    hot_text += row[0].str() + "\n";
  }
  EXPECT_NE(hot_text.find("cache : hit"), std::string::npos) << hot_text;
}

}  // namespace
}  // namespace xsql
