// Adversarial wire-frame fuzzing against a live server: random byte
// soup, truncated frames, oversized length prefixes, and garbage type
// bytes, interleaved with well-formed traffic. The server must never
// crash, hang, or corrupt the database — every hostile connection ends
// with a clean close and the next honest client works.
//
// Iteration count scales with XSQL_FUZZ_ITERS (default 150).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "server/client.h"
#include "server/server.h"
#include "server/wire.h"
#include "storage/recovery.h"
#include "storage/snapshot.h"

namespace xsql {
namespace server {
namespace {

using storage::DurableDatabase;

int FuzzIters(int fallback) {
  const char* env = std::getenv("XSQL_FUZZ_ITERS");
  if (env == nullptr || *env == '\0') return fallback;
  int n = std::atoi(env);
  return n < 1 ? 1 : n;
}

class WireFuzzTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = ::testing::TempDir() + "/xsql_fuzz_" + info->name();
    std::filesystem::remove_all(dir_);
    auto dd = DurableDatabase::Open(dir_);
    ASSERT_TRUE(dd.ok()) << dd.status().ToString();
    dd_ = std::move(*dd);
    ASSERT_TRUE(
        dd_->Execute("ALTER CLASS Person ADD SIGNATURE Name => String")
            .ok());
    ASSERT_TRUE(
        dd_->Execute("UPDATE CLASS Person SET mary.Name = 'mary'").ok());
    // Short read deadlines so half-sent hostile frames are reaped fast
    // instead of parking a thread per fuzz connection.
    ServerOptions options;
    options.io_timeout_ms = 250;
    options.idle_timeout_ms = 1000;
    auto server = Server::Start(dd_.get(), options);
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    server_ = std::move(*server);
  }

  void TearDown() override {
    server_.reset();
    dd_.reset();
    std::filesystem::remove_all(dir_);
  }

  int RawConnect() {
    int fd = socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    struct sockaddr_in addr;
    memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(server_->port()));
    EXPECT_EQ(connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                      sizeof(addr)),
              0);
    return fd;
  }

  /// Writes `bytes`, then drains whatever the server answers (or its
  /// close) for up to ~600ms so hostile connections fully resolve.
  void SendAndDrain(const std::string& bytes) {
    int fd = RawConnect();
    if (!bytes.empty()) {
      (void)send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL);
    }
    char buf[512];
    struct pollfd pfd{fd, POLLIN, 0};
    for (int spins = 0; spins < 6; ++spins) {
      if (poll(&pfd, 1, 100) <= 0) continue;
      ssize_t n = recv(fd, buf, sizeof(buf), 0);
      if (n <= 0) break;  // server closed on us — the expected ending
    }
    close(fd);
  }

  /// The server still works and the data survived: an honest client
  /// can ping and read mary back.
  void AssertServerHealthy() {
    auto client = Client::Connect("127.0.0.1", server_->port());
    ASSERT_TRUE(client.ok()) << client.status().ToString();
    ASSERT_TRUE(client->Ping().ok());
    auto out = client->Execute("SELECT T WHERE mary.Name[T]");
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    EXPECT_NE(out->find("mary"), std::string::npos) << *out;
    (void)client->Quit();
  }

  std::string dir_;
  std::unique_ptr<DurableDatabase> dd_;
  std::unique_ptr<Server> server_;
};

TEST_F(WireFuzzTest, RandomByteSoup) {
  const int iters = FuzzIters(150);
  Rng rng(0xF022);
  const std::string before = storage::SaveSnapshot(dd_->db());
  for (int i = 0; i < iters; ++i) {
    std::string bytes(rng.Uniform(96), '\0');
    for (char& c : bytes) {
      c = static_cast<char>(rng.Uniform(256));
    }
    SendAndDrain(bytes);
    if (i % 25 == 0) AssertServerHealthy();
  }
  AssertServerHealthy();
  // Garbage never mutates the database.
  EXPECT_EQ(storage::SaveSnapshot(dd_->db()), before);
}

TEST_F(WireFuzzTest, TruncatedFramesEveryPrefix) {
  const std::string frame =
      EncodeFrame(MsgType::kExecute, "SELECT T WHERE mary.Name[T]");
  // Every strict prefix of a valid frame, including the empty one:
  // the server must time the connection out or see EOF, never hang.
  for (size_t cut = 0; cut < frame.size(); ++cut) {
    SendAndDrain(frame.substr(0, cut));
  }
  AssertServerHealthy();
}

TEST_F(WireFuzzTest, OversizedAndZeroLengthPrefixes) {
  for (uint32_t len : {0u, kMaxFrame + 1, 0x7FFFFFFFu, 0xFFFFFFFFu}) {
    std::string header(5, '\0');
    header[0] = static_cast<char>(len & 0xFF);
    header[1] = static_cast<char>((len >> 8) & 0xFF);
    header[2] = static_cast<char>((len >> 16) & 0xFF);
    header[3] = static_cast<char>((len >> 24) & 0xFF);
    header[4] = static_cast<char>(MsgType::kExecute);
    SendAndDrain(header + "trailing");
  }
  AssertServerHealthy();
}

TEST_F(WireFuzzTest, GarbageTypeBytesGetAnErrorNotACrash) {
  Rng rng(0xBEEF);
  for (int i = 0; i < 40; ++i) {
    uint8_t type = static_cast<uint8_t>(rng.Uniform(256));
    std::string payload(rng.Uniform(32), 'x');
    // EncodeFrame-equivalent with an arbitrary type byte.
    uint32_t len = static_cast<uint32_t>(payload.size()) + 1;
    std::string frame;
    frame.push_back(static_cast<char>(len & 0xFF));
    frame.push_back(static_cast<char>((len >> 8) & 0xFF));
    frame.push_back(static_cast<char>((len >> 16) & 0xFF));
    frame.push_back(static_cast<char>((len >> 24) & 0xFF));
    frame.push_back(static_cast<char>(type));
    frame += payload;
    SendAndDrain(frame);
  }
  AssertServerHealthy();
}

TEST_F(WireFuzzTest, MalformedExecuteIdPayloads) {
  // kExecuteId needs >= 24 bytes of request-ID header; shorter payloads
  // must produce a clean error frame, not an out-of-bounds read.
  for (size_t n : {0u, 1u, 8u, 16u, 23u}) {
    SendAndDrain(EncodeFrame(MsgType::kExecuteId, std::string(n, 'z')));
  }
  // And a well-formed header with hostile statement text still parses.
  SendAndDrain(EncodeFrame(MsgType::kExecuteId,
                           std::string(24, '\x01') + "\x00\xff garbage"));
  AssertServerHealthy();
}

}  // namespace
}  // namespace server
}  // namespace xsql
