// The TCP layer end to end over localhost: wire-frame encoding, the
// request/reply protocol (execute, ping, quit, errors), concurrent
// clients sharing one database, the connection cap, and graceful
// shutdown draining in-flight statements. Run under TSan by ci.sh.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/fault.h"
#include "server/client.h"
#include "server/server.h"
#include "server/wire.h"
#include "storage/recovery.h"
#include "storage/snapshot.h"

namespace xsql {
namespace server {
namespace {

using storage::DurableDatabase;

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = ::testing::TempDir() + "/xsql_server_" + info->name();
    std::filesystem::remove_all(dir_);
    auto dd = DurableDatabase::Open(dir_);
    ASSERT_TRUE(dd.ok()) << dd.status().ToString();
    dd_ = std::move(*dd);
    for (const char* stmt :
         {"ALTER CLASS Person ADD SIGNATURE Name => String",
          "ALTER CLASS Person ADD SIGNATURE Salary => Numeral",
          "UPDATE CLASS Person SET mary.Name = 'mary'",
          "UPDATE CLASS Person SET mary.Salary = 100"}) {
      auto out = dd_->Execute(stmt);
      ASSERT_TRUE(out.ok()) << stmt << ": " << out.status().ToString();
    }
  }

  void TearDown() override {
    server_.reset();  // Shutdown before the database goes away
    dd_.reset();
    FaultInjector::Global().Disarm();
    std::filesystem::remove_all(dir_);
  }

  void StartServer(ServerOptions options = {}) {
    auto server = Server::Start(dd_.get(), std::move(options));
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    server_ = std::move(*server);
    ASSERT_GT(server_->port(), 0);
  }

  Client MustConnect() {
    auto client = Client::Connect("127.0.0.1", server_->port());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return client.ok() ? std::move(*client) : Client();
  }

  std::string dir_;
  std::unique_ptr<DurableDatabase> dd_;
  std::unique_ptr<Server> server_;
};

TEST(WireTest, FrameRoundTripShape) {
  std::string frame = EncodeFrame(MsgType::kExecute, "SELECT");
  // [len=7 LE][type][payload]
  ASSERT_EQ(frame.size(), 4u + 1u + 6u);
  EXPECT_EQ(static_cast<unsigned char>(frame[0]), 7u);
  EXPECT_EQ(static_cast<unsigned char>(frame[4]),
            static_cast<unsigned char>(MsgType::kExecute));
  EXPECT_EQ(frame.substr(5), "SELECT");
}

TEST_F(ServerTest, PingAndQuit) {
  StartServer();
  Client client = MustConnect();
  auto pong = client.Ping();
  ASSERT_TRUE(pong.ok()) << pong.status().ToString();
  EXPECT_EQ(*pong, "pong");
  EXPECT_TRUE(client.Quit().ok());
  EXPECT_FALSE(client.connected());
}

TEST_F(ServerTest, ExecuteOverTheWire) {
  StartServer();
  Client client = MustConnect();
  auto out = client.Execute("SELECT T WHERE mary.Name[T]");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_NE(out->find("mary"), std::string::npos) << *out;
  EXPECT_NE(out->find("(1 rows)"), std::string::npos) << *out;

  // A mutation over the wire is durable before the reply frame lands.
  ASSERT_TRUE(client.Execute("UPDATE CLASS Person SET mary.Salary = 777")
                  .ok());
  auto reopened = DurableDatabase::Open(dir_);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(storage::SaveSnapshot((*reopened)->db()),
            storage::SaveSnapshot(dd_->db()));
}

TEST_F(ServerTest, RemoteErrorsCarryTheStatus) {
  StartServer();
  Client client = MustConnect();
  auto out = client.Execute("SELECT FROM WHERE");
  ASSERT_FALSE(out.ok());
  // The remote status text travels in the error frame.
  EXPECT_NE(out.status().message().find("ParseError"), std::string::npos)
      << out.status().ToString();
  // The connection survives an error.
  EXPECT_TRUE(client.Ping().ok());
}

TEST_F(ServerTest, ConcurrentClientsShareOneDatabase) {
  constexpr int kClients = 4;
  constexpr int kStatements = 20;
  StartServer();
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&, t] {
      auto client = Client::Connect("127.0.0.1", server_->port());
      if (!client.ok()) {
        failures.fetch_add(1);
        return;
      }
      for (int i = 0; i < kStatements; ++i) {
        Result<std::string> out =
            (i % 4 == 0)
                ? client->Execute("UPDATE CLASS Person SET q" +
                                  std::to_string(t) + "_" +
                                  std::to_string(i) + ".Salary = 1")
                : client->Execute(
                      "SELECT T WHERE mary.Salary[T]");
        if (!out.ok()) failures.fetch_add(1);
      }
      (void)client->Quit();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GE(server_->connections_served(), static_cast<uint64_t>(kClients));

  // Everything the clients were told succeeded is really on disk.
  server_.reset();
  auto reopened = DurableDatabase::Open(dir_);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(storage::SaveSnapshot((*reopened)->db()),
            storage::SaveSnapshot(dd_->db()));
}

TEST_F(ServerTest, ConnectionCapRejectsLoudly) {
  ServerOptions options;
  options.max_connections = 1;
  StartServer(options);
  Client first = MustConnect();
  ASSERT_TRUE(first.Ping().ok());  // the slot is definitely taken
  // Second connection: the listener accepts just long enough to push a
  // kUnavailable frame (with the retry-after hint) and close. Read it
  // with a raw socket and no preceding write — writing first could
  // race the server's close into a TCP reset that eats the frame.
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  struct sockaddr_in addr;
  memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(server_->port()));
  ASSERT_EQ(connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                    sizeof(addr)),
            0);
  auto frame = ReadFrame(fd, nullptr);
  close(fd);
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(static_cast<int>(frame->type),
            static_cast<int>(MsgType::kUnavailable));
  EXPECT_NE(frame->payload.find("capacity"), std::string::npos)
      << frame->payload;
  // The payload leads with a parseable retry-after hint.
  EXPECT_GT(ParseRetryAfterHint(frame->payload), 0) << frame->payload;
}

TEST_F(ServerTest, GracefulShutdownDrainsInFlight) {
  StartServer();
  Client client = MustConnect();
  ASSERT_TRUE(client.Ping().ok());
  // Shutdown with a connection parked mid-protocol: must not hang.
  server_->Shutdown();
  // The server is gone; the next round trip fails cleanly.
  EXPECT_FALSE(client.Ping().ok());
  // Shutdown is idempotent.
  server_->Shutdown();
}

TEST_F(ServerTest, PerConnectionDeadlineTripsOnTheWire) {
  ServerOptions options;
  options.session.limits.deadline_ms = 1;
  options.session.limits.max_steps = 1;  // trip fast and deterministically
  StartServer(options);
  Client client = MustConnect();
  auto out = client.Execute(
      "SELECT T WHERE mary.Name[T] AND mary.Salary[S]");
  ASSERT_FALSE(out.ok());
  EXPECT_NE(out.status().message().find("guard"), std::string::npos)
      << out.status().ToString();
}

}  // namespace
}  // namespace server
}  // namespace xsql
