#include "parser/parser.h"

#include <gtest/gtest.h>

#include <functional>

#include "parser/lexer.h"
#include "workload/fig1_schema.h"

namespace xsql {
namespace {

TEST(LexerTest, BasicTokens) {
  auto tokens = Lex("SELECT X.Residence[Y].City['newyork'] $C \"M ?V 3 2.5");
  ASSERT_TRUE(tokens.ok());
  std::vector<TokenType> types;
  for (const Token& t : *tokens) types.push_back(t.type);
  EXPECT_EQ(types[0], TokenType::kIdent);     // SELECT
  EXPECT_EQ(types[1], TokenType::kIdent);     // X
  EXPECT_EQ(types[2], TokenType::kDot);
  EXPECT_EQ(types[3], TokenType::kIdent);     // Residence
  EXPECT_EQ(types[4], TokenType::kLBracket);
  EXPECT_EQ(types[5], TokenType::kIdent);     // Y
  EXPECT_EQ(types[6], TokenType::kRBracket);
  EXPECT_EQ(types[7], TokenType::kDot);
  EXPECT_EQ(types[8], TokenType::kIdent);     // City
  EXPECT_EQ(types[9], TokenType::kLBracket);
  EXPECT_EQ(types[10], TokenType::kString);
  EXPECT_EQ((*tokens)[10].text, "newyork");
  EXPECT_EQ(types[11], TokenType::kRBracket);
  EXPECT_EQ(types[12], TokenType::kClassVar);
  EXPECT_EQ((*tokens)[12].text, "C");
  EXPECT_EQ(types[13], TokenType::kMethodVar);
  EXPECT_EQ(types[14], TokenType::kExplicitVar);
  EXPECT_EQ(types[15], TokenType::kInt);
  EXPECT_EQ(types[16], TokenType::kReal);
}

TEST(LexerTest, OperatorsAndArrows) {
  auto tokens = Lex("= != < <= > >= => =>> -> ->> + - * / @ : , ( ) { }");
  ASSERT_TRUE(tokens.ok());
  std::vector<TokenType> expected = {
      TokenType::kEq,     TokenType::kNe,        TokenType::kLt,
      TokenType::kLe,     TokenType::kGt,        TokenType::kGe,
      TokenType::kArrow,  TokenType::kDoubleArrow, TokenType::kArrow,
      TokenType::kDoubleArrow, TokenType::kPlus, TokenType::kMinus,
      TokenType::kStar,   TokenType::kSlash,     TokenType::kAt,
      TokenType::kColon,  TokenType::kComma,     TokenType::kLParen,
      TokenType::kRParen, TokenType::kLBrace,    TokenType::kRBrace,
      TokenType::kEnd};
  ASSERT_EQ(tokens->size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ((*tokens)[i].type, expected[i]) << "token " << i;
  }
}

TEST(LexerTest, CommentsAndErrors) {
  auto tokens = Lex("SELECT X -- this is a comment\nFROM Person X");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[2].text, "FROM");
  EXPECT_FALSE(Lex("'unterminated").ok());
  EXPECT_FALSE(Lex("a ! b").ok());
  EXPECT_FALSE(Lex("$ x").ok());
}

class ParserTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(workload::BuildFig1Schema(&db_).ok());
    ASSERT_TRUE(db_.NewObject(Oid::Atom("uniSQL"),
                              {workload::fig1::Company()}).ok());
  }

  Statement MustParse(const std::string& text) {
    auto result = ParseAndResolve(text, db_);
    EXPECT_TRUE(result.ok()) << text << " -> " << result.status().ToString();
    return result.ok() ? std::move(result).value() : Statement{};
  }

  Database db_;
};

TEST_F(ParserTest, SimpleQuery) {
  Statement stmt = MustParse(
      "SELECT Y FROM Person X WHERE X.Residence[Y].City['newyork']");
  ASSERT_EQ(stmt.kind, Statement::Kind::kQuery);
  const Query& q = *stmt.query->simple;
  ASSERT_EQ(q.select.size(), 1u);
  ASSERT_EQ(q.from.size(), 1u);
  EXPECT_EQ(q.from[0].cls.value, Oid::Atom("Person"));
  EXPECT_EQ(q.from[0].var.name, "X");
  ASSERT_NE(q.where, nullptr);
  ASSERT_EQ(q.where->kind, Condition::Kind::kStandalonePath);
  const PathExpr& path = q.where->path;
  ASSERT_TRUE(path.head.is_var());
  EXPECT_EQ(path.head.var.name, "X");
  ASSERT_EQ(path.steps.size(), 2u);
  EXPECT_EQ(path.steps[0].method.name, Oid::Atom("Residence"));
  ASSERT_TRUE(path.steps[0].selector.has_value());
  EXPECT_TRUE(path.steps[0].selector->is_var());
  ASSERT_TRUE(path.steps[1].selector.has_value());
  EXPECT_EQ(path.steps[1].selector->value, Oid::String("newyork"));
}

TEST_F(ParserTest, NameResolutionRules) {
  // uniSQL exists in the database -> constant; W is uppercase-unknown ->
  // variable; mary123 is lowercase-unknown -> constant atom.
  Statement stmt = MustParse(
      "SELECT W WHERE uniSQL.President.FamMembers[W] and "
      "mary123.Residence.City['austin']");
  const Query& q = *stmt.query->simple;
  ASSERT_EQ(q.where->kind, Condition::Kind::kAnd);
  const PathExpr& p0 = q.where->children[0]->path;
  EXPECT_TRUE(p0.head.is_const());
  EXPECT_EQ(p0.head.value, Oid::Atom("uniSQL"));
  const PathExpr& p1 = q.where->children[1]->path;
  EXPECT_TRUE(p1.head.is_const());
  EXPECT_EQ(p1.head.value, Oid::Atom("mary123"));
}

TEST_F(ParserTest, ClassAndMethodVariables) {
  Statement stmt =
      MustParse("SELECT $X WHERE TurboEngine subclassOf $X");
  const Query& q = *stmt.query->simple;
  ASSERT_EQ(q.where->kind, Condition::Kind::kSubclassOf);
  EXPECT_TRUE(q.where->sub.is_const());
  EXPECT_EQ(q.where->sub.value, Oid::Atom("TurboEngine"));
  ASSERT_TRUE(q.where->super.is_var());
  EXPECT_EQ(q.where->super.var.sort, VarSort::kClass);

  Statement stmt2 = MustParse(
      "SELECT \"Y FROM Person X WHERE X.\"Y.City['newyork']");
  const Query& q2 = *stmt2.query->simple;
  const PathExpr& path = q2.where->path;
  ASSERT_TRUE(path.steps[0].method.name_is_var);
  EXPECT_EQ(path.steps[0].method.name_var.sort, VarSort::kMethod);
}

TEST_F(ParserTest, QuantifiedComparators) {
  Statement stmt = MustParse(
      "SELECT X FROM Employee X WHERE X.FamMembers.Age some> 20");
  const Query& q = *stmt.query->simple;
  ASSERT_EQ(q.where->kind, Condition::Kind::kComparison);
  EXPECT_EQ(q.where->lquant, Quant::kSome);
  EXPECT_EQ(q.where->rquant, Quant::kNone);
  EXPECT_EQ(q.where->comp_op, CompOp::kGt);

  Statement stmt2 = MustParse(
      "SELECT X FROM Person X WHERE "
      "X.Residence =all X.FamMembers.Residence");
  EXPECT_EQ(stmt2.query->simple->where->rquant, Quant::kAll);

  Statement stmt3 = MustParse(
      "SELECT X, Y FROM Person X, Person Y WHERE "
      "Y.FamMembers.Age all<all X.FamMembers.Age");
  EXPECT_EQ(stmt3.query->simple->where->lquant, Quant::kAll);
  EXPECT_EQ(stmt3.query->simple->where->rquant, Quant::kAll);
}

TEST_F(ParserTest, SetComparatorsAndBooleans) {
  Statement stmt = MustParse(
      "SELECT X FROM Automobile Y WHERE Y.Manufacturer[X] "
      "and X.President.OwnedVehicles.Color containsEq {'blue', 'red'} "
      "and X.President.Age < 30");
  const Query& q = *stmt.query->simple;
  ASSERT_EQ(q.where->kind, Condition::Kind::kAnd);
  ASSERT_EQ(q.where->children.size(), 3u);
  EXPECT_EQ(q.where->children[1]->kind, Condition::Kind::kSetComparison);
  EXPECT_EQ(q.where->children[1]->set_op, SetOp::kContainsEq);
  EXPECT_EQ(q.where->children[1]->rhs.kind, ValueExpr::Kind::kSetLiteral);
}

TEST_F(ParserTest, AggregatesAndArithmetic) {
  Statement stmt = MustParse(
      "SELECT X FROM Employee X WHERE count(X.FamMembers) > 4 "
      "and X.Salary < 35000");
  const Query& q = *stmt.query->simple;
  const Condition& agg = *q.where->children[0];
  EXPECT_EQ(agg.lhs.kind, ValueExpr::Kind::kAggregate);
  EXPECT_EQ(agg.lhs.agg_fn, AggFn::kCount);

  Statement stmt2 = MustParse("SELECT X FROM Employee X WHERE "
                              "X.Salary > (1 + 2) * 1000");
  const Condition& cmp = *stmt2.query->simple->where;
  EXPECT_EQ(cmp.rhs.kind, ValueExpr::Kind::kArith);
  EXPECT_EQ(cmp.rhs.arith_op, ArithOp::kMul);
}

TEST_F(ParserTest, OidFunctionClause) {
  Statement stmt = MustParse(
      "SELECT EmpSalary = W.Salary FROM Company X OID FUNCTION OF X,W "
      "WHERE X.Divisions.Employees[W]");
  const Query& q = *stmt.query->simple;
  ASSERT_TRUE(q.oid_function_of.has_value());
  ASSERT_EQ(q.oid_function_of->size(), 2u);
  EXPECT_EQ((*q.oid_function_of)[0].name, "X");
  ASSERT_EQ(q.select.size(), 1u);
  EXPECT_EQ(*q.select[0].out_attr, Oid::Atom("EmpSalary"));
}

TEST_F(ParserTest, GroupedSetAttribute) {
  Statement stmt = MustParse(
      "SELECT CompName = Y.Name, Beneficiaries = {W} FROM Company Y "
      "OID FUNCTION OF Y "
      "WHERE Y.Retirees[W] or Y.Divisions.Employees.Dependents[W]");
  const Query& q = *stmt.query->simple;
  ASSERT_EQ(q.select.size(), 2u);
  EXPECT_EQ(q.select[1].kind, SelectItem::Kind::kSetOfVar);
  EXPECT_EQ(q.select[1].set_var.name, "W");
  EXPECT_EQ(q.where->kind, Condition::Kind::kOr);
}

TEST_F(ParserTest, CreateView) {
  Statement stmt = MustParse(
      "CREATE VIEW CompSalaries AS SUBCLASS OF Object "
      "SIGNATURE CompName => String, DivName => String, Salary => Numeral "
      "SELECT CompName = X.Name, DivName = Y.Name, Salary = W.Salary "
      "FROM Company X OID FUNCTION OF X,W "
      "WHERE X.Divisions[Y].Employees[W]");
  ASSERT_EQ(stmt.kind, Statement::Kind::kCreateView);
  const CreateViewStmt& view = *stmt.create_view;
  EXPECT_EQ(view.name, Oid::Atom("CompSalaries"));
  EXPECT_EQ(view.superclass, Oid::Atom("Object"));
  ASSERT_EQ(view.signatures.size(), 3u);
  EXPECT_EQ(view.signatures[2].results[0], Oid::Atom("Numeral"));
  EXPECT_EQ(view.query.oid_fn_name, "CompSalaries");
}

TEST_F(ParserTest, ViewIdTermInQuery) {
  Statement stmt = MustParse(
      "SELECT X.Manufacturer.Name FROM Automobile X, Employee W "
      "WHERE CompSalaries(X.Manufacturer, W).Salary > 35000");
  const Query& q = *stmt.query->simple;
  // The path argument X.Manufacturer is desugared into a fresh variable
  // plus a conjunct, so WHERE became a conjunction.
  ASSERT_EQ(q.where->kind, Condition::Kind::kAnd);
  bool found_apply = false;
  for (const auto& child : q.where->children) {
    if (child->kind == Condition::Kind::kComparison &&
        child->lhs.kind == ValueExpr::Kind::kPath &&
        child->lhs.path.head.is_apply()) {
      found_apply = true;
      EXPECT_EQ(child->lhs.path.head.fn, "CompSalaries");
      EXPECT_EQ(child->lhs.path.head.args.size(), 2u);
    }
  }
  EXPECT_TRUE(found_apply);
}

TEST_F(ParserTest, AlterClassMethodDefinition) {
  Statement stmt = MustParse(
      "ALTER CLASS Company "
      "ADD SIGNATURE MngrSalary : String => Numeral "
      "SELECT (MngrSalary @ Y.Name) = W "
      "FROM Company X OID X "
      "WHERE X.Divisions[Y].Manager.Salary[W]");
  ASSERT_EQ(stmt.kind, Statement::Kind::kAlterClass);
  const AlterClassStmt& alter = *stmt.alter_class;
  EXPECT_EQ(alter.cls, Oid::Atom("Company"));
  ASSERT_EQ(alter.add_signatures.size(), 1u);
  EXPECT_EQ(alter.add_signatures[0].args.size(), 1u);
  ASSERT_TRUE(alter.method_def.has_value());
  const Query& def = *alter.method_def;
  ASSERT_EQ(def.select.size(), 1u);
  EXPECT_EQ(def.select[0].kind, SelectItem::Kind::kMethodHead);
  EXPECT_EQ(def.select[0].method, Oid::Atom("MngrSalary"));
  // (MngrSalary @ Y.Name) desugars: the argument becomes a variable.
  ASSERT_EQ(def.select[0].method_args.size(), 1u);
  EXPECT_TRUE(def.select[0].method_args[0].is_var());
  ASSERT_TRUE(def.oid_function_of.has_value());
  EXPECT_EQ((*def.oid_function_of)[0].name, "X");
}

TEST_F(ParserTest, UpdateClassNestedInWhere) {
  Statement stmt = MustParse(
      "ALTER CLASS Company "
      "ADD SIGNATURE RaiseMngrSalary : Numeral => Nil "
      "SELECT (RaiseMngrSalary @ W) = nil "
      "FROM Company X, Numeral W "
      "OID X "
      "WHERE W < 20 "
      "and (UPDATE CLASS Company "
      "     SET X.Divisions[Y].Manager.Salary = "
      "         (1 + W/100) * X.(MngrSalary @ Y.Name))");
  ASSERT_EQ(stmt.kind, Statement::Kind::kAlterClass);
  const Query& def = *stmt.alter_class->method_def;
  ASSERT_EQ(def.where->kind, Condition::Kind::kAnd);
  // The desugared `Y.Name[Z]` conjunct may wrap the original AND, so
  // search recursively.
  std::function<const Condition*(const Condition&)> find_update =
      [&](const Condition& cond) -> const Condition* {
    if (cond.kind == Condition::Kind::kUpdate) return &cond;
    for (const auto& child : cond.children) {
      if (const Condition* hit = find_update(*child)) return hit;
    }
    return nullptr;
  };
  const Condition* update = find_update(*def.where);
  ASSERT_NE(update, nullptr);
  ASSERT_EQ(update->update->assignments.size(), 1u);
  EXPECT_EQ(update->update->assignments[0].value.kind,
            ValueExpr::Kind::kArith);
}

TEST_F(ParserTest, SetOperators) {
  Statement stmt = MustParse(
      "SELECT X FROM Person X UNION SELECT Y FROM Employee Y");
  ASSERT_EQ(stmt.query->kind, QueryExpr::Kind::kUnion);
  Statement stmt2 = MustParse(
      "SELECT X FROM Person X MINUS SELECT Y FROM Employee Y");
  ASSERT_EQ(stmt2.query->kind, QueryExpr::Kind::kMinus);
}

TEST_F(ParserTest, Subquery) {
  Statement stmt = MustParse(
      "SELECT X FROM Vehicle X WHERE 200000 <all "
      "(SELECT W FROM Division Y WHERE "
      " X.Manufacturer.(MngrSalary @ Y.Name)[W])");
  const Query& q = *stmt.query->simple;
  ASSERT_EQ(q.where->kind, Condition::Kind::kComparison);
  EXPECT_EQ(q.where->rquant, Quant::kAll);
  EXPECT_EQ(q.where->rhs.kind, ValueExpr::Kind::kSubquery);
}

TEST_F(ParserTest, PathVariableExtension) {
  Statement stmt = MustParse(
      "SELECT X FROM Person X WHERE X.*P.City['newyork']");
  const PathExpr& path = stmt.query->simple->where->path;
  ASSERT_EQ(path.steps.size(), 2u);
  EXPECT_EQ(path.steps[0].kind, PathStep::Kind::kPathVar);
  EXPECT_EQ(path.steps[0].path_var.sort, VarSort::kPath);
}

TEST_F(ParserTest, PrinterRoundTrips) {
  const char* queries[] = {
      "SELECT Y FROM Person X WHERE X.Residence[Y].City['newyork']",
      "SELECT X FROM Employee X WHERE X.FamMembers.Age some> 20",
      "SELECT $X WHERE TurboEngine subclassOf $X",
  };
  for (const char* text : queries) {
    Statement stmt = MustParse(text);
    std::string printed = stmt.ToString();
    auto reparsed = ParseAndResolve(printed, db_);
    ASSERT_TRUE(reparsed.ok()) << printed;
    EXPECT_EQ(reparsed->ToString(), printed);
  }
}

TEST_F(ParserTest, Errors) {
  EXPECT_FALSE(Parse("SELECT").ok());
  EXPECT_FALSE(Parse("SELECT X FROM").ok());
  EXPECT_FALSE(Parse("FOO BAR").ok());
  EXPECT_FALSE(Parse("SELECT X WHERE X.").ok());
  EXPECT_FALSE(Parse("SELECT X WHERE X some").ok());
  EXPECT_FALSE(Parse("CREATE VIEW V AS Object SELECT X").ok());
  EXPECT_FALSE(Parse("SELECT X FROM Person X trailing").ok());
}

}  // namespace
}  // namespace xsql
