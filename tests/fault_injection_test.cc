// Fault injection and statement-level atomicity. The centerpiece is a
// sweep property test: for a script of DDL/DML statements, arm the
// injector to fail the 1st, 2nd, 3rd, ... mutation check of each
// statement in turn, and prove that after every injected failure the
// database snapshot is byte-identical to the pre-statement snapshot —
// i.e. rollback visited *every* mutation point and missed nothing.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/fault.h"
#include "common/rng.h"
#include "eval/session.h"
#include "storage/snapshot.h"
#include "workload/fig1_schema.h"
#include "workload/generator.h"

namespace xsql {
namespace {

using Domain = FaultInjector::Domain;

Oid A(const char* s) { return Oid::Atom(s); }

class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultInjector::Global().Disarm();
    ASSERT_TRUE(workload::BuildFig1Schema(&db_).ok());
    workload::WorkloadParams params;
    params.companies = 1;
    ASSERT_TRUE(workload::GenerateFig1Data(&db_, params).ok());
    session_ = std::make_unique<Session>(&db_);
  }

  void TearDown() override { FaultInjector::Global().Disarm(); }

  Database db_;
  std::unique_ptr<Session> session_;
};

TEST_F(FaultInjectionTest, InjectorCountsAndFires) {
  FaultInjector& fi = FaultInjector::Global();
  fi.ArmNth(Domain::kMutation, 2);
  EXPECT_TRUE(fi.armed());
  EXPECT_FALSE(fi.fired());
  EXPECT_TRUE(fi.Check(Domain::kMutation, "one").ok());
  Status st = fi.Check(Domain::kMutation, "two");
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("injected fault"), std::string::npos);
  EXPECT_NE(st.message().find("two"), std::string::npos);
  EXPECT_TRUE(fi.fired());
  EXPECT_EQ(fi.fired_site(), "two");
  EXPECT_EQ(fi.checks(Domain::kMutation), 2u);
  fi.Disarm();
  EXPECT_FALSE(fi.armed());
  EXPECT_FALSE(fi.fired());
  EXPECT_EQ(fi.checks(Domain::kMutation), 0u);
}

TEST_F(FaultInjectionTest, DomainsAreIndependent) {
  FaultInjector& fi = FaultInjector::Global();
  fi.ArmNth(Domain::kGuard, 1);
  // Mutation-domain checks sail through a guard-domain schedule.
  EXPECT_TRUE(fi.Check(Domain::kMutation, "m").ok());
  EXPECT_FALSE(fi.Check(Domain::kGuard, "g").ok());
  EXPECT_EQ(fi.checks(Domain::kMutation), 1u);
  EXPECT_EQ(fi.checks(Domain::kGuard), 1u);
}

TEST_F(FaultInjectionTest, RandomScheduleIsDeterministic) {
  FaultInjector& fi = FaultInjector::Global();
  auto run = [&fi](uint64_t seed) {
    fi.ArmRandom(Domain::kMutation, seed, 300);
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) {
      fired.push_back(!fi.Check(Domain::kMutation, "s").ok());
    }
    fi.Disarm();
    return fired;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));
}

// ---- Per-mutator undo: record, roll back, compare snapshots ----------

class UndoUnitTest : public FaultInjectionTest {
 protected:
  // Runs `mutate` inside an undo log, rolls back, and asserts the
  // snapshot is byte-identical to before.
  void ExpectUndone(const std::function<Status()>& mutate) {
    std::string before = storage::SaveSnapshot(db_);
    UndoLog undo;
    db_.BeginUndo(&undo);
    Status st = mutate();
    db_.EndUndo();
    ASSERT_TRUE(st.ok()) << st.ToString();
    db_.Rollback(&undo);
    EXPECT_EQ(storage::SaveSnapshot(db_), before);
  }
};

TEST_F(UndoUnitTest, DeclareClassAndSubclass) {
  ExpectUndone([&] { return db_.DeclareClass(A("Spaceship")); });
  ExpectUndone([&] {
    return db_.DeclareClass(A("Hovercraft"), {A("Vehicle"), A("Object")});
  });
  ExpectUndone([&] { return db_.AddSubclass(A("NewSub"), A("NewSuper")); });
  ExpectUndone([&] { return db_.AddSubclass(A("Employee"), A("Vehicle")); });
}

TEST_F(UndoUnitTest, SignaturesAndAttributes) {
  ExpectUndone([&] {
    Signature sig;
    sig.method = A("Mood");
    sig.result = A("String");
    return db_.DeclareSignature(A("Person"), std::move(sig));
  });
  ExpectUndone([&] {
    return db_.DeclareAttribute(A("Person"), A("Shoe"), A("Numeral"),
                                /*set_valued=*/false);
  });
}

TEST_F(UndoUnitTest, ObjectsAndValues) {
  ExpectUndone([&] { return db_.NewObject(A("obj9"), {A("Person")}); });
  ExpectUndone([&] { return db_.AddInstanceOf(A("mary123"), A("Employee")); });
  // Overwrite of an existing scalar restores the prior value.
  ExpectUndone(
      [&] { return db_.SetScalar(A("mary123"), A("Age"), Oid::Int(99)); });
  // Fresh attribute on an existing object is removed again.
  ExpectUndone(
      [&] { return db_.SetScalar(A("mary123"), A("Lucky"), Oid::Int(7)); });
  ExpectUndone([&] {
    OidSet values;
    values.Insert(A("mary123"));
    return db_.SetSet(A("_john13"), A("FamMembers"), std::move(values));
  });
  ExpectUndone(
      [&] { return db_.AddToSet(A("_john13"), A("FamMembers"), A("mary123")); });
  ExpectUndone([&] { return db_.ClearAttribute(A("mary123"), A("Age")); });
  ExpectUndone([&] { return db_.RemoveInstanceOf(A("mary123"), A("Person")); });
}

TEST_F(UndoUnitTest, MethodDefinitionsRestored) {
  // Method bodies are not part of snapshots; check the registry directly.
  auto body = std::make_shared<NativeMethodBody>(
      0, /*set_valued=*/false,
      [](Database&, const Oid&, const std::vector<Oid>&) -> Result<OidSet> {
        return OidSet();
      });
  ASSERT_TRUE(db_.DefineMethod(A("Person"), A("Probe"), 0, body).ok());
  auto prior = db_.methods().Definition(A("Person"), A("Probe"), 0);
  ASSERT_NE(prior, nullptr);

  UndoLog undo;
  db_.BeginUndo(&undo);
  auto body2 = std::make_shared<NativeMethodBody>(
      0, /*set_valued=*/false,
      [](Database&, const Oid&, const std::vector<Oid>&) -> Result<OidSet> {
        return OidSet();
      });
  ASSERT_TRUE(db_.DefineMethod(A("Person"), A("Probe"), 0, body2).ok());
  ASSERT_TRUE(db_.ResolveMethodConflict(A("Person"), A("Probe"),
                                        A("Object")).ok());
  db_.EndUndo();
  db_.Rollback(&undo);

  EXPECT_EQ(db_.methods().Definition(A("Person"), A("Probe"), 0), prior);
  EXPECT_FALSE(
      db_.methods().ConflictChoice(A("Person"), A("Probe")).has_value());
}

// ---- The sweep property test -----------------------------------------

// Statements covering every DDL/DML path: signature and method-defining
// ALTER CLASS, scalar and path UPDATEs, CREATE VIEW, and a query that
// materializes the view (mutating the store as a side effect).
std::vector<std::string> SweepStatements() {
  return {
      "ALTER CLASS Employee ADD SIGNATURE Bonus => Numeral",
      "UPDATE CLASS Employee SET _john13.Bonus = 500",
      "ALTER CLASS Company ADD SIGNATURE Motto => String "
      "SELECT (Motto) = N FROM Company X OID X WHERE X.Name[N]",
      "CREATE VIEW CoNames AS SUBCLASS OF Object "
      "SIGNATURE TheName => String "
      "SELECT TheName = X.Name FROM Company X OID FUNCTION OF X",
      // The id-term CoNames(X) implicitly materializes the view, which
      // mutates the store mid-query.
      "SELECT X.Name FROM Company X WHERE CoNames(X).TheName",
      "UPDATE CLASS Division SET div0_0.Function = 'ops'",
      "UPDATE CLASS Address SET mary123.Residence.City = 'boston'",
  };
}

// The sweep itself: for each statement, arm the injector at mutation
// check 1, 2, 3, ... until a run completes without firing. After every
// injected failure the snapshot must be byte-identical to the
// pre-statement snapshot; the first clean run commits and the sweep
// moves to the next statement. Returns the number of injected faults.
size_t SweepEveryMutationPoint(Database* db, Session* session,
                               const std::vector<std::string>& script) {
  FaultInjector& fi = FaultInjector::Global();
  size_t injected_failures = 0;
  for (const std::string& stmt : script) {
    for (uint64_t n = 1;; ++n) {
      EXPECT_LT(n, 500u) << "statement never ran clean: " << stmt;
      if (n >= 500) return injected_failures;
      std::string before = storage::SaveSnapshot(*db);
      fi.ArmNth(Domain::kMutation, n);
      auto out = session->Execute(stmt);
      bool fired = fi.fired();
      std::string site = fi.fired_site();
      fi.Disarm();
      if (!fired) {
        // All mutation points of this statement have been visited; this
        // run completed cleanly and its effects stay.
        EXPECT_TRUE(out.ok()) << stmt << ": " << out.status().ToString();
        break;
      }
      ++injected_failures;
      EXPECT_FALSE(out.ok()) << stmt << " (fault at " << site << ")";
      EXPECT_NE(out.status().message().find("injected fault"),
                std::string::npos)
          << out.status().ToString();
      std::string after = storage::SaveSnapshot(*db);
      EXPECT_EQ(after, before)
          << stmt << ": rollback not byte-identical after fault at " << site
          << " (check #" << n << ")";
      if (after != before) return injected_failures;
    }
  }
  return injected_failures;
}

TEST_F(FaultInjectionTest, EveryMutationPointRollsBackByteIdentical) {
  size_t injected = SweepEveryMutationPoint(&db_, session_.get(),
                                            SweepStatements());
  // The sweep must actually have exercised injection points.
  EXPECT_GT(injected, 10u);
}

// Randomly generated scripts: statement templates instantiated with
// seeded random classes/attributes/values, swept the same way.
std::vector<std::string> GenerateScript(uint64_t seed) {
  Rng rng(seed);
  auto pick = [&rng](const std::vector<std::string>& pool) {
    return pool[rng.Uniform(pool.size())];
  };
  const std::vector<std::string> classes = {"Person", "Employee",
                                            "Company", "Vehicle"};
  std::vector<std::string> script;
  std::string cls = pick(classes);
  std::string attr = "Gen" + std::to_string(rng.Uniform(1000));
  std::string view = "GenView" + std::to_string(rng.Uniform(1000));
  script.push_back("ALTER CLASS " + cls + " ADD SIGNATURE " + attr +
                   " => Numeral");
  script.push_back("UPDATE CLASS Employee SET _john13." + attr + " = " +
                   std::to_string(rng.Range(1, 100000)));
  script.push_back("UPDATE CLASS Person SET mary123." + attr + " = " +
                   std::to_string(rng.Range(1, 100000)));
  script.push_back("ALTER CLASS Company ADD SIGNATURE M" + attr +
                   " => String SELECT (M" + attr +
                   ") = N FROM Company X OID X WHERE X.Name[N]");
  script.push_back("CREATE VIEW " + view +
                   " AS SUBCLASS OF Object SIGNATURE T => String "
                   "SELECT T = X.Name FROM Company X OID FUNCTION OF X");
  script.push_back("SELECT X.Name FROM Company X WHERE " + view +
                   "(X).T");
  script.push_back("UPDATE CLASS Division SET div0_0.Function = '" +
                   pick({"ops", "r&d", "audit"}) + "'");
  return script;
}

TEST_F(FaultInjectionTest, GeneratedScriptsRollBackByteIdentical) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    Database db;
    ASSERT_TRUE(workload::BuildFig1Schema(&db).ok());
    workload::WorkloadParams params;
    params.seed = seed;
    params.companies = 1;
    ASSERT_TRUE(workload::GenerateFig1Data(&db, params).ok());
    Session session(&db);
    size_t injected =
        SweepEveryMutationPoint(&db, &session, GenerateScript(seed));
    EXPECT_GT(injected, 10u) << "seed " << seed;
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST_F(FaultInjectionTest, RandomFaultsNeverLeavePartialState) {
  FaultInjector& fi = FaultInjector::Global();
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    // Fresh database per seed: the script is not idempotent.
    Database db;
    ASSERT_TRUE(workload::BuildFig1Schema(&db).ok());
    workload::WorkloadParams params;
    params.companies = 1;
    ASSERT_TRUE(workload::GenerateFig1Data(&db, params).ok());
    Session session(&db);
    for (const std::string& stmt : SweepStatements()) {
      std::string before = storage::SaveSnapshot(db);
      fi.ArmRandom(Domain::kMutation, seed, 200);
      auto out = session.Execute(stmt);
      bool fired = fi.fired();
      fi.Disarm();
      if (!out.ok()) {
        ASSERT_TRUE(fired) << stmt << ": " << out.status().ToString();
        EXPECT_EQ(storage::SaveSnapshot(db), before) << stmt;
        // Re-run cleanly so later statements see their prerequisites.
        auto retry = session.Execute(stmt);
        ASSERT_TRUE(retry.ok()) << stmt << ": " << retry.status().ToString();
      }
    }
  }
}

TEST_F(FaultInjectionTest, GuardDomainFaultsFailStatementsCleanly) {
  FaultInjector& fi = FaultInjector::Global();
  std::string before = storage::SaveSnapshot(db_);
  fi.ArmNth(Domain::kGuard, 1);
  auto out = session_->Execute("SELECT X FROM Person X WHERE X.Name");
  bool fired = fi.fired();
  fi.Disarm();
  ASSERT_TRUE(fired);
  ASSERT_FALSE(out.ok());
  EXPECT_NE(out.status().message().find("injected fault"), std::string::npos);
  EXPECT_EQ(storage::SaveSnapshot(db_), before);
}

// ---- Script-level transactions ---------------------------------------

TEST_F(FaultInjectionTest, NonAtomicScriptKeepsPrefix) {
  std::string script =
      "ALTER CLASS Employee ADD SIGNATURE Bonus => Numeral;"
      "UPDATE CLASS Employee SET _john13.Bonus = 500;"
      "THIS IS NOT A STATEMENT";
  auto out = session_->ExecuteScript(script);
  ASSERT_FALSE(out.ok());
  // Default mode: completed statements persist.
  auto bonus = session_->Query("SELECT B WHERE _john13.Bonus[B]");
  ASSERT_TRUE(bonus.ok()) << bonus.status().ToString();
  EXPECT_EQ(bonus->size(), 1u);
}

TEST_F(FaultInjectionTest, AtomicScriptRollsBackWholePrefix) {
  std::string before = storage::SaveSnapshot(db_);
  std::string script =
      "ALTER CLASS Employee ADD SIGNATURE Bonus => Numeral;"
      "UPDATE CLASS Employee SET _john13.Bonus = 500;"
      "THIS IS NOT A STATEMENT";
  auto out = session_->ExecuteScript(script, /*atomic=*/true);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(storage::SaveSnapshot(db_), before);
  // The signature from statement 1 is gone too.
  EXPECT_TRUE(db_.signatures().Declared(A("Employee"), A("Bonus")).empty());
}

TEST_F(FaultInjectionTest, AtomicScriptCommitsOnSuccess) {
  auto out = session_->ExecuteScript(
      "ALTER CLASS Employee ADD SIGNATURE Bonus => Numeral;"
      "UPDATE CLASS Employee SET _john13.Bonus = 500",
      /*atomic=*/true);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  auto bonus = session_->Query("SELECT B WHERE _john13.Bonus[B]");
  ASSERT_TRUE(bonus.ok());
  EXPECT_EQ(bonus->size(), 1u);
}

TEST_F(FaultInjectionTest, NestedAtomicScriptRejected) {
  UndoLog outer;
  db_.BeginUndo(&outer);
  auto out = session_->ExecuteScript("SELECT X FROM Person X",
                                     /*atomic=*/true);
  db_.EndUndo();
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(out.status().message().find("nested"), std::string::npos);
}

}  // namespace
}  // namespace xsql
