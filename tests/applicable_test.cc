// The applicableTo predicate — §3.1's distinction between an attribute
// being *defined* on an object (it has a value) and being *applicable*
// (a signature covers the object's class; the value may be null). The
// paper defers this to [KSK92]; here it is executable.
#include <gtest/gtest.h>

#include "eval/session.h"
#include "parser/parser.h"
#include "workload/fig1_schema.h"

namespace xsql {
namespace {

Oid A(const char* s) { return Oid::Atom(s); }

class ApplicableTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(workload::BuildFig1Schema(&db_).ok());
    ASSERT_TRUE(workload::BuildNobelSchema(&db_).ok());
    // curie: a Scientist who has NOT won (yet) — WonNobelPrize is
    // applicable but undefined.
    ASSERT_TRUE(db_.NewObject(A("curie"), {A("Scientist")}).ok());
    ASSERT_TRUE(db_.SetScalar(A("curie"), A("Name"),
                              Oid::String("curie")).ok());
    // planck: a Scientist who has won.
    ASSERT_TRUE(db_.NewObject(A("planck"), {A("Scientist")}).ok());
    ASSERT_TRUE(db_.AddToSet(A("planck"), A("WonNobelPrize"),
                             Oid::String("physics")).ok());
    // An Address: WonNobelPrize is inapplicable there.
    ASSERT_TRUE(db_.NewObject(A("addr1"), {A("Address")}).ok());
    session_ = std::make_unique<Session>(&db_);
  }

  OidSet Column(const Relation& rel) {
    OidSet out;
    for (const auto& row : rel.rows()) out.Insert(row[0]);
    return out;
  }

  Database db_;
  std::unique_ptr<Session> session_;
};

TEST_F(ApplicableTest, DefinedVersusApplicable) {
  // Defined: only the actual winner.
  auto defined = session_->Query(
      "SELECT X FROM Scientist X WHERE X.WonNobelPrize");
  ASSERT_TRUE(defined.ok()) << defined.status().ToString();
  EXPECT_TRUE(Column(*defined).Contains(A("planck")));
  EXPECT_FALSE(Column(*defined).Contains(A("curie")));
  // Applicable: every scientist, winner or not.
  auto applicable = session_->Query(
      "SELECT X FROM Scientist X WHERE WonNobelPrize applicableTo X");
  ASSERT_TRUE(applicable.ok()) << applicable.status().ToString();
  EXPECT_TRUE(Column(*applicable).Contains(A("planck")));
  EXPECT_TRUE(Column(*applicable).Contains(A("curie")));
}

TEST_F(ApplicableTest, InapplicableIsExcluded) {
  auto rel = session_->Query(
      "SELECT X FROM Address X WHERE WonNobelPrize applicableTo X");
  ASSERT_TRUE(rel.ok()) << rel.status().ToString();
  EXPECT_TRUE(rel->empty());
}

TEST_F(ApplicableTest, MethodVariableEnumeratesApplicableAttributes) {
  // Which attributes are applicable to curie? Person's attributes plus
  // WonNobelPrize — even though most are undefined on her.
  auto rel = session_->Query(
      "SELECT \"M WHERE \"M applicableTo curie");
  ASSERT_TRUE(rel.ok()) << rel.status().ToString();
  OidSet methods = Column(*rel);
  EXPECT_TRUE(methods.Contains(A("WonNobelPrize")));
  EXPECT_TRUE(methods.Contains(A("Age")));        // inherited from Person
  EXPECT_TRUE(methods.Contains(A("Residence")));
  EXPECT_FALSE(methods.Contains(A("Salary")));    // Employee-only
  // The defined attributes are a subset of the applicable ones here.
  auto defined = session_->Query("SELECT \"M WHERE curie.\"M");
  ASSERT_TRUE(defined.ok());
  EXPECT_TRUE(Column(*defined).Contains(A("Name")));
}

TEST_F(ApplicableTest, CombinesWithOtherConjuncts) {
  // Scientists for whom the prize is applicable but not defined — the
  // "could still win" query.
  auto rel = session_->Query(
      "SELECT X FROM Scientist X WHERE WonNobelPrize applicableTo X "
      "and not X.WonNobelPrize");
  ASSERT_TRUE(rel.ok()) << rel.status().ToString();
  EXPECT_TRUE(Column(*rel).Contains(A("curie")));
  EXPECT_FALSE(Column(*rel).Contains(A("planck")));
}

TEST_F(ApplicableTest, PrintsAndReparses) {
  auto stmt = ParseAndResolve(
      "SELECT X FROM Scientist X WHERE WonNobelPrize applicableTo X", db_);
  ASSERT_TRUE(stmt.ok());
  std::string printed = stmt->ToString();
  EXPECT_NE(printed.find("applicableTo"), std::string::npos);
  auto reparsed = ParseAndResolve(printed, db_);
  ASSERT_TRUE(reparsed.ok()) << printed;
}

}  // namespace
}  // namespace xsql
