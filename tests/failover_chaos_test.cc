// The failover chaos sweep: a primary with a live streaming replica, a
// retrying client that knows both endpoints, and a path-scoped
// simulated kill of the primary's storage tree at a seed-varied byte
// budget — landing the crash at different ship/apply/promote stages
// across the sweep. A monitor promotes the replica once the primary
// wedges; the client keeps driving with the same (uuid, seq) stamps.
//
// Asserted afterwards, per seed:
//
//   * with semi-synchronous replication and zero degraded acks, every
//     client-acked mutation appears in the promoted replica's durable
//     history exactly once (the acked-exactly-once failover contract);
//   * every attempted mutation appears at most once — retries that
//     straddled the failover deduplicated on the promoted replica;
//   * the promoted replica's recovered state equals a serial replay of
//     its own WAL history (no torn or reordered application);
//   * under additional client-side network faults the same holds.
//
// Seed count scales with XSQL_CHAOS_SEEDS (ci.sh bounds it for TSan).
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/fault.h"
#include "obs/metrics.h"
#include "server/client.h"
#include "server/replica.h"
#include "server/server.h"
#include "storage/dedup.h"
#include "storage/recovery.h"
#include "storage/snapshot.h"
#include "storage/wal.h"

namespace xsql {
namespace server {
namespace {

using storage::DurableDatabase;
using storage::Wal;

constexpr int kStatements = 8;

int SeedBudget(int fallback) {
  const char* env = std::getenv("XSQL_CHAOS_SEEDS");
  if (env == nullptr || *env == '\0') return fallback;
  int n = std::atoi(env);
  return n < 1 ? 1 : n;
}

struct SweepLog {
  std::vector<std::string> acked;
  std::vector<std::string> attempted;
};

class FailoverChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    root_ = ::testing::TempDir() + "/xsql_failover_" + info->name();
    std::filesystem::remove_all(root_);
    std::filesystem::create_directories(root_);
  }

  void TearDown() override {
    FaultInjector::Global().Disarm();
    std::filesystem::remove_all(root_);
  }

  static std::unique_ptr<DurableDatabase> OpenWithPrelude(
      const std::string& dir) {
    auto dd = DurableDatabase::Open(dir);
    EXPECT_TRUE(dd.ok()) << dd.status().ToString();
    if (!dd.ok()) return nullptr;
    for (const char* stmt :
         {"ALTER CLASS Person ADD SIGNATURE Name => String",
          "ALTER CLASS Person ADD SIGNATURE Salary => Numeral",
          "UPDATE CLASS Person SET mary.Name = 'mary'",
          "UPDATE CLASS Person SET mary.Salary = 100"}) {
      auto out = (*dd)->Execute(stmt);
      EXPECT_TRUE(out.ok()) << stmt << ": " << out.status().ToString();
      if (!out.ok()) return nullptr;
    }
    return std::move(*dd);
  }

  static std::map<std::string, int> WalOccurrences(const std::string& dir,
                                                   uint64_t gen) {
    std::map<std::string, int> counts;
    auto scan = Wal::ScanFile(DurableDatabase::WalPath(dir, gen));
    EXPECT_TRUE(scan.ok()) << scan.status().ToString();
    if (!scan.ok()) return counts;
    for (const std::string& record : scan->records) {
      ++counts[storage::DecodeRidPayload(record).second];
    }
    return counts;
  }

  /// One seed of the sweep. `client_faults` additionally randomizes
  /// the client⇄server transport (site "cli") while leaving the
  /// replication stream clean.
  void RunSeed(int seed, bool client_faults) {
    const std::string primary_dir =
        root_ + "/seed" + std::to_string(seed) + "_p";
    const std::string replica_dir =
        root_ + "/seed" + std::to_string(seed) + "_r";

    auto dd = OpenWithPrelude(primary_dir);
    ASSERT_NE(dd, nullptr) << "seed " << seed;
    ServerOptions options;
    options.sync_replication = true;
    options.sync_replication_timeout_ms = 4000;
    options.io_timeout_ms = 2000;
    auto server = Server::Start(dd.get(), options);
    ASSERT_TRUE(server.ok()) << server.status().ToString();

    ReplicaOptions ropts;
    ropts.dir = replica_dir;
    ropts.primary_port = (*server)->port();
    auto node = ReplicaNode::Start(std::move(ropts));
    ASSERT_TRUE(node.ok()) << node.status().ToString();
    {
      const auto deadline = std::chrono::steady_clock::now() +
                            std::chrono::seconds(15);
      while ((*node)->applied_records() < dd->wal_records() &&
             std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
      ASSERT_EQ((*node)->applied_records(), dd->wal_records())
          << "seed " << seed << ": replica never caught up";
    }

    auto& degraded_counter = obs::MetricsRegistry::Global().GetCounter(
        "xsql.repl.sync_degraded");
    const uint64_t degraded_before = degraded_counter.value();

    if (client_faults) {
      FaultInjector::Global().ArmNet(static_cast<uint64_t>(seed) + 31,
                                     /*permille=*/40, kNetAll,
                                     /*max_delay_ms=*/15, "cli");
    }

    // The kill lands after a seed-varied number of primary storage
    // bytes — early seeds die during the first shipped statements,
    // later ones between ship and promote, the largest budgets after
    // the sweep (no crash, plain replication).
    const uint64_t crash_budget = 200 + static_cast<uint64_t>(seed) * 333;
    FaultInjector::Global().ArmCrashAtByte(crash_budget, primary_dir);

    SweepLog log;
    std::thread writer([&] {
      RetryingClientOptions copts;
      copts.endpoints.push_back({"127.0.0.1", (*server)->port()});
      copts.endpoints.push_back({"127.0.0.1", (*node)->port()});
      copts.timeout_ms = 1000;
      copts.max_retries = 40;
      copts.backoff_base_ms = 2;
      copts.backoff_max_ms = 50;
      copts.deadline_ms = 30000;
      copts.jitter_seed = static_cast<uint64_t>(seed) * 977 + 1;
      RetryingClient client(copts);
      int consecutive_failures = 0;
      for (int i = 0; i < kStatements; ++i) {
        const std::string stmt =
            "UPDATE CLASS Person SET mary.Salary = " +
            std::to_string(500000000ull +
                           static_cast<uint64_t>(seed) * 1000 + i);
        log.attempted.push_back(stmt);
        auto out = client.Execute(stmt);
        if (out.ok()) {
          consecutive_failures = 0;
          log.acked.push_back(stmt);
        } else if (++consecutive_failures >= 2) {
          break;  // both endpoints are gone; the sweep is over for us
        }
      }
    });

    // The failover monitor: when the primary's storage tree dies, the
    // operator (us) promotes the replica. The client's in-flight
    // statements straddle the hand-off.
    bool promoted = false;
    {
      const auto deadline = std::chrono::steady_clock::now() +
                            std::chrono::seconds(10);
      while (!dd->wedged() &&
             std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
      if (dd->wedged()) {
        (*node)->RequestPromote();
        promoted = (*node)->AwaitPromoted(20000);
        EXPECT_TRUE(promoted)
            << "seed " << seed << ": promotion never completed";
      }
    }
    writer.join();
    FaultInjector::Global().Disarm();

    const uint64_t degraded =
        degraded_counter.value() - degraded_before;
    (*server)->Shutdown();
    server->reset();

    // Pick the authoritative survivor: the promoted replica, or the
    // primary when the budget outlived the sweep.
    std::string dir = primary_dir;
    if (promoted) {
      dir = replica_dir;
      EXPECT_EQ((*node)->server()->role(), ServerRole::kPrimary);
    }
    (*node)->Shutdown();
    node->reset();
    dd.reset();

    auto survivor = DurableDatabase::Open(dir);
    ASSERT_TRUE(survivor.ok())
        << "seed " << seed << ": " << survivor.status().ToString();
    const uint64_t gen = (*survivor)->generation();
    const std::map<std::string, int> counts = WalOccurrences(dir, gen);

    for (const std::string& stmt : log.attempted) {
      auto it = counts.find(stmt);
      EXPECT_LE(it == counts.end() ? 0 : it->second, 1)
          << "seed " << seed << ": statement applied twice: " << stmt;
    }
    if (degraded == 0) {
      // Every ack was either executed here or synchronously
      // replicated here before the primary died: exactly once.
      for (const std::string& stmt : log.acked) {
        auto it = counts.find(stmt);
        EXPECT_TRUE(it != counts.end() && it->second == 1)
            << "seed " << seed << " (promoted=" << promoted
            << "): acked statement applied "
            << (it == counts.end() ? 0 : it->second) << " times: "
            << stmt;
      }
    }

    // Survivor state == serial replay of its own durable history.
    auto scan = Wal::ScanFile(DurableDatabase::WalPath(dir, gen));
    ASSERT_TRUE(scan.ok()) << scan.status().ToString();
    const std::string replay_dir = dir + "_replay";
    std::filesystem::remove_all(replay_dir);
    auto replayed = DurableDatabase::Open(replay_dir);
    ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();
    for (const std::string& record : scan->records) {
      const std::string text = storage::DecodeRidPayload(record).second;
      auto out = (*replayed)->Execute(text);
      EXPECT_TRUE(out.ok()) << "seed " << seed << " replay: " << text
                            << ": " << out.status().ToString();
    }
    EXPECT_EQ(storage::SaveSnapshot((*survivor)->db()),
              storage::SaveSnapshot((*replayed)->db()))
        << "seed " << seed
        << ": survivor state != serial replay of its WAL";

    survivor->reset();
    replayed->reset();
    std::filesystem::remove_all(replay_dir);
    std::filesystem::remove_all(primary_dir);
    std::filesystem::remove_all(replica_dir);
  }

  std::string root_;
};

TEST_F(FailoverChaosTest, KillPrimaryAtEveryStage) {
  const int seeds = SeedBudget(12);
  for (int seed = 0; seed < seeds; ++seed) {
    RunSeed(seed, /*client_faults=*/false);
    if (HasFatalFailure()) return;
  }
}

TEST_F(FailoverChaosTest, KillPrimaryUnderClientNetworkFaults) {
  const int seeds = std::max(3, SeedBudget(12) / 2);
  for (int seed = 0; seed < seeds; ++seed) {
    RunSeed(seed, /*client_faults=*/true);
    if (HasFatalFailure()) return;
  }
}

}  // namespace
}  // namespace server
}  // namespace xsql
