// B2 — path expressions vs relational joins (§1, §3.3): the same
// logical query — engines of employee-owned vehicles — evaluated by
// (a) one-sweep pointer chasing over the composition hierarchy and
// (b) hash joins over the flattened 1NF tables. The expected shape:
// pointer chasing wins for deep paths; the join pays per-hop hash-table
// probes and intermediate materialization.
#include <benchmark/benchmark.h>

#include "baseline/gem_path.h"
#include "baseline/relational.h"
#include "bench_util.h"

namespace xsql {
namespace bench {
namespace {

Oid A(const char* s) { return Oid::Atom(s); }

const std::vector<Oid>& DeepPath() {
  static const std::vector<Oid>& path = *new std::vector<Oid>{
      A("OwnedVehicles"), A("Drivetrain"), A("Engine")};
  return path;
}

void BM_ObjectPathSweep(benchmark::State& state) {
  ScaledDb& scaled = GetScaledDb(static_cast<size_t>(state.range(0)));
  baseline::SimplePathQuery query;
  query.start_class = A("Employee");
  query.attrs = DeepPath();
  size_t results = 0;
  for (auto _ : state) {
    OidSet out = baseline::EvalOneSweep(*scaled.db, query);
    results = out.size();
    benchmark::DoNotOptimize(out);
  }
  state.counters["results"] = static_cast<double>(results);
}

BENCHMARK(BM_ObjectPathSweep)->Arg(1)->Arg(4)->Arg(16)
    ->Unit(benchmark::kMicrosecond);

void BM_RelationalPathJoin(benchmark::State& state) {
  ScaledDb& scaled = GetScaledDb(static_cast<size_t>(state.range(0)));
  // Flattening happens once, outside the timed region (the relational
  // system would have the tables already).
  static std::map<size_t, baseline::RelationalDb>& flattened =
      *new std::map<size_t, baseline::RelationalDb>();
  auto it = flattened.find(state.range(0));
  if (it == flattened.end()) {
    it = flattened
             .emplace(state.range(0),
                      baseline::RelationalDb::Flatten(*scaled.db))
             .first;
  }
  size_t results = 0;
  size_t joined = 0;
  for (auto _ : state) {
    OidSet out =
        it->second.EvalPathJoin(A("Employee"), DeepPath(), std::nullopt,
                                &joined);
    results = out.size();
    benchmark::DoNotOptimize(out);
  }
  state.counters["results"] = static_cast<double>(results);
  state.counters["joined_tuples"] = static_cast<double>(joined);
}

BENCHMARK(BM_RelationalPathJoin)->Arg(1)->Arg(4)->Arg(16)
    ->Unit(benchmark::kMicrosecond);

// The §3.3 explicit join (query (6)): XSQL comparison-in-path form vs
// a classic relational hash join on the Name columns.
void BM_ExplicitJoinXsql(benchmark::State& state) {
  ScaledDb& scaled = GetScaledDb(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto rel = scaled.session->Query(
        "SELECT X, Y FROM Company X "
        "WHERE X.Name =some X.Divisions.Employees[Y].Name");
    if (!rel.ok()) {
      state.SkipWithError(rel.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(rel);
  }
}

BENCHMARK(BM_ExplicitJoinXsql)->Arg(1)->Arg(4)->Arg(16)
    ->Unit(benchmark::kMicrosecond);

void BM_ExplicitJoinRelational(benchmark::State& state) {
  ScaledDb& scaled = GetScaledDb(static_cast<size_t>(state.range(0)));
  baseline::RelationalDb rdb = baseline::RelationalDb::Flatten(*scaled.db);
  for (auto _ : state) {
    auto pairs = rdb.EqJoin(A("Company"), A("Name"), A("Employee"),
                            A("Name"));
    benchmark::DoNotOptimize(pairs);
  }
}

BENCHMARK(BM_ExplicitJoinRelational)->Arg(1)->Arg(4)->Arg(16)
    ->Unit(benchmark::kMicrosecond);

// The cost the warm relational numbers hide: flattening the object
// database into 1NF tables is a full scan, paid upfront and again after
// every update batch. The object engine reads only the objects a query
// touches.
void BM_FlattenCost(benchmark::State& state) {
  ScaledDb& scaled = GetScaledDb(static_cast<size_t>(state.range(0)));
  size_t rows = 0;
  for (auto _ : state) {
    baseline::RelationalDb rdb = baseline::RelationalDb::Flatten(*scaled.db);
    rows = rdb.attribute_table_rows();
    benchmark::DoNotOptimize(rdb);
  }
  state.counters["table_rows"] = static_cast<double>(rows);
}

BENCHMARK(BM_FlattenCost)->Arg(1)->Arg(4)->Arg(16)
    ->Unit(benchmark::kMicrosecond);

// Cold relational evaluation: flatten + join per query, the total cost
// when data changed since the last query.
void BM_RelationalPathJoinCold(benchmark::State& state) {
  ScaledDb& scaled = GetScaledDb(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    baseline::RelationalDb rdb = baseline::RelationalDb::Flatten(*scaled.db);
    size_t joined = 0;
    OidSet out = rdb.EvalPathJoin(A("Employee"), DeepPath(), std::nullopt,
                                  &joined);
    benchmark::DoNotOptimize(out);
  }
}

BENCHMARK(BM_RelationalPathJoinCold)->Arg(1)->Arg(4)->Arg(16)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace bench
}  // namespace xsql
