// Ablation of the evaluator's ordering choices (DESIGN.md §5):
//  * integrated FROM handling (paths bind variables, FROM entries become
//    membership filters) vs the eager cartesian FROM product;
//  * good vs bad conjunct orders under Theorem 6.1(1) (same answers,
//    different cost).
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "parser/parser.h"

namespace xsql {
namespace bench {
namespace {

// Q4: two FROM entries whose product is quadratic, while the path binds
// Y and Z itself.
constexpr const char* kDeepPath =
    "SELECT Z FROM Employee X, Automobile Y "
    "WHERE X.OwnedVehicles[Y].Drivetrain.Engine[Z]";

void BM_IntegratedFrom(benchmark::State& state) {
  ScaledDb& scaled = GetScaledDb(static_cast<size_t>(state.range(0)));
  auto stmt = ParseAndResolve(kDeepPath, *scaled.db);
  const Query& query = *stmt->query->simple;
  Evaluator evaluator(scaled.db.get());
  for (auto _ : state) {
    EvalOptions opts;  // empty conjunct_order => integrated mode
    auto out = evaluator.Run(query, opts);
    if (!out.ok()) {
      state.SkipWithError(out.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(out);
  }
}

BENCHMARK(BM_IntegratedFrom)->Arg(1)->Arg(4)->Arg(16)
    ->Unit(benchmark::kMicrosecond);

void BM_EagerCartesianFrom(benchmark::State& state) {
  ScaledDb& scaled = GetScaledDb(static_cast<size_t>(state.range(0)));
  auto stmt = ParseAndResolve(kDeepPath, *scaled.db);
  const Query& query = *stmt->query->simple;
  Evaluator evaluator(scaled.db.get());
  for (auto _ : state) {
    EvalOptions opts;
    opts.conjunct_order = {0};  // explicit order => eager FROM loops
    auto out = evaluator.Run(query, opts);
    if (!out.ok()) {
      state.SkipWithError(out.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(out);
  }
}

BENCHMARK(BM_EagerCartesianFrom)->Arg(1)->Arg(4)->Arg(16)
    ->Unit(benchmark::kMicrosecond);

// Fragment (17) under its two conjunct orders: the coherent plan
// (Manufacturer first) vs the reverse (enumerate M first). Answers are
// identical — Theorem 6.1(1) — costs are not.
constexpr const char* kFragment17 =
    "SELECT X FROM Vehicle X WHERE X.Manufacturer[M] "
    "and M.President.OwnedVehicles[X]";

void BM_ConjunctOrder(benchmark::State& state) {
  ScaledDb& scaled = GetScaledDb(static_cast<size_t>(state.range(0)));
  auto stmt = ParseAndResolve(kFragment17, *scaled.db);
  const Query& query = *stmt->query->simple;
  Evaluator evaluator(scaled.db.get());
  std::vector<size_t> order =
      state.range(1) == 0 ? std::vector<size_t>{0, 1}
                          : std::vector<size_t>{1, 0};
  for (auto _ : state) {
    EvalOptions opts;
    opts.conjunct_order = order;
    auto out = evaluator.Run(query, opts);
    if (!out.ok()) {
      state.SkipWithError(out.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(out);
  }
  state.SetLabel(state.range(1) == 0 ? "coherent-plan-order"
                                     : "reverse-order");
}

BENCHMARK(BM_ConjunctOrder)
    ->Args({4, 0})
    ->Args({4, 1})
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace bench
}  // namespace xsql
