// Concurrent-server throughput: read QPS on the latch-free MVCC
// snapshot path as client threads grow, durable mutation throughput
// with the per-statement fsync (serial DurableDatabase::Execute)
// versus the group-commit path (ConcurrencyManager::Execute) at 1/4/8
// writers, and the headline MVCC number — read QPS scaling with reader
// threads while a writer churns commits in the background (B15).
// Companion numbers live in EXPERIMENTS.md (B13, B15).
//
// Threaded benchmarks share one ConcurrencyManager through a
// magic-static environment: google-benchmark invokes the function once
// per thread, so all setup hides behind a thread-safe static and each
// thread creates (and closes) its own session.
#include <benchmark/benchmark.h>

#include <atomic>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>

#include "server/concurrency.h"
#include "storage/recovery.h"

namespace xsql {
namespace bench {
namespace {

std::string FreshDir(const std::string& name) {
  std::string dir =
      (std::filesystem::temp_directory_path() / ("xsql_bench_" + name))
          .string();
  std::filesystem::remove_all(dir);
  return dir;
}

void Prime(storage::DurableDatabase* dd) {
  const char* prelude[] = {
      "ALTER CLASS Person ADD SIGNATURE Name => String",
      "ALTER CLASS Person ADD SIGNATURE Salary => Numeral",
      "UPDATE CLASS Person SET mary.Name = 'mary'",
      "UPDATE CLASS Person SET mary.Salary = 100",
  };
  for (const char* stmt : prelude) (void)dd->Execute(stmt);
}

const char kRead[] = "SELECT T WHERE mary.Salary[T]";
const char kUpdate[] = "UPDATE CLASS Person SET mary.Salary = 100";

struct ServerEnv {
  std::string dir;
  std::unique_ptr<storage::DurableDatabase> dd;
  std::unique_ptr<server::ConcurrencyManager> cm;
};

// Shared across all threads of every threaded benchmark; leaked on
// purpose so no thread ever sees a torn-down environment.
ServerEnv* SharedEnv() {
  static ServerEnv* env = [] {
    auto* e = new ServerEnv;
    e->dir = FreshDir("server_shared");
    auto dd = storage::DurableDatabase::Open(e->dir);
    if (!dd.ok()) return e;
    e->dd = std::move(*dd);
    Prime(e->dd.get());
    e->cm = std::make_unique<server::ConcurrencyManager>(e->dd.get());
    return e;
  }();
  return env;
}

// Read QPS through the full concurrency protocol (classification +
// snapshot pin + execution), per-thread sessions over one database.
// NOTE: this host may be single-core; the interesting result is then
// "no latch collapse" (aggregate QPS holds as threads grow), not a
// multicore speedup.
void BM_ConcurrentReads(benchmark::State& state) {
  ServerEnv* env = SharedEnv();
  if (!env->cm) {
    state.SkipWithError("durable open failed");
    return;
  }
  auto sid = env->cm->CreateSession({});
  if (!sid.ok()) {
    state.SkipWithError(sid.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    auto out = env->cm->Execute(*sid, kRead);
    if (!out.ok()) state.SkipWithError(out.status().ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations());
  env->cm->CloseSession(*sid);
}
BENCHMARK(BM_ConcurrentReads)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

// Baseline: durable mutations one at a time, each paying its own
// fsync inline (the pre-server DurableDatabase::Execute path).
void BM_DurableMutationSerial(benchmark::State& state) {
  std::string dir = FreshDir("mutation_serial");
  auto dd = storage::DurableDatabase::Open(dir);
  if (!dd.ok()) {
    state.SkipWithError(dd.status().ToString().c_str());
    return;
  }
  Prime(dd->get());
  for (auto _ : state) {
    auto out = (*dd)->Execute(kUpdate);
    if (!out.ok()) state.SkipWithError(out.status().ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations());
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_DurableMutationSerial)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

// Group commit: N writer threads through the ConcurrencyManager.
// Execution still serializes on the exclusive latch, but each writer
// releases the latch before waiting for durability, so one fsync
// covers every statement that queued behind the leader.
void BM_DurableMutationGroupCommit(benchmark::State& state) {
  ServerEnv* env = SharedEnv();
  if (!env->cm) {
    state.SkipWithError("durable open failed");
    return;
  }
  auto sid = env->cm->CreateSession({});
  if (!sid.ok()) {
    state.SkipWithError(sid.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    auto out = env->cm->Execute(*sid, kUpdate);
    if (!out.ok()) state.SkipWithError(out.status().ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    state.counters["group_commit_batches"] = static_cast<double>(
        env->cm->committer().batches_committed());
  }
  env->cm->CloseSession(*sid);
}
BENCHMARK(BM_DurableMutationGroupCommit)
    ->Threads(1)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

// B15, the MVCC headline: read QPS scaling with reader threads WHILE a
// writer churns durable commits in the background. Before MVCC the
// writer-preferring latch parked every reader behind every writer, so
// aggregate read QPS collapsed toward the write rate; with snapshot
// reads the readers never block and the curve should track
// BM_ConcurrentReads. Thread 0 owns the background writer; the
// measured threads are all pure readers.
void BM_SnapshotReadsUnderWriter(benchmark::State& state) {
  ServerEnv* env = SharedEnv();
  if (!env->cm) {
    state.SkipWithError("durable open failed");
    return;
  }
  // One background writer for the whole benchmark family, started on
  // first use and leaked with the environment (google-benchmark offers
  // no global teardown hook for threaded benchmarks; the writer is
  // idempotent UPDATEs, so a hard exit mid-commit is harmless).
  static std::atomic<bool>* churn = [] {
    auto* running = new std::atomic<bool>(true);
    std::thread([running] {
      ServerEnv* e = SharedEnv();
      auto wsid = e->cm->CreateSession({});
      if (!wsid.ok()) return;
      uint64_t i = 0;
      while (running->load(std::memory_order_relaxed)) {
        (void)e->cm->Execute(
            *wsid, "UPDATE CLASS Person SET mary.Salary = " +
                       std::to_string(100 + (i++ % 100)));
      }
      e->cm->CloseSession(*wsid);
    }).detach();
    return running;
  }();
  (void)churn;
  auto sid = env->cm->CreateSession({});
  if (!sid.ok()) {
    state.SkipWithError(sid.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    auto out = env->cm->Execute(*sid, kRead);
    if (!out.ok()) state.SkipWithError(out.status().ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    state.counters["writer_commits"] = static_cast<double>(
        env->cm->committer().batches_committed());
  }
  env->cm->CloseSession(*sid);
}
BENCHMARK(BM_SnapshotReadsUnderWriter)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace bench
}  // namespace xsql
