#ifndef XSQL_BENCH_BENCH_UTIL_H_
#define XSQL_BENCH_BENCH_UTIL_H_

#include <map>
#include <memory>

#include "eval/session.h"
#include "store/database.h"
#include "workload/fig1_schema.h"
#include "workload/generator.h"

namespace xsql {
namespace bench {

/// Session options with every guardrail armed at generous thresholds —
/// what a defensive production deployment would run with. Used to
/// measure guardrail overhead against the default (disarmed) session.
inline SessionOptions GuardedSessionOptions() {
  SessionOptions options;
  options.limits.deadline_ms = 60'000;
  options.limits.max_rows = 1ull << 40;
  options.limits.max_steps = 1ull << 50;
  options.cancel = std::make_shared<CancelToken>();
  return options;
}

/// A cached Figure-1 instance at a given scale factor; benchmarks share
/// instances so iteration time measures query work, not data loading.
struct ScaledDb {
  std::unique_ptr<Database> db;
  std::unique_ptr<Session> session;
  /// Same database, but with all execution guardrails armed.
  std::unique_ptr<Session> guarded_session;
  /// Planner and plan cache both off: the greedy ready-first baseline
  /// every B14 planned number is compared against.
  std::unique_ptr<Session> unplanned_session;
  /// Planner on, plan cache off: isolates the prepare (parse +
  /// typecheck + plan) cost the cache saves on a hit.
  std::unique_ptr<Session> uncached_session;
  workload::WorkloadStats stats;
};

inline ScaledDb& GetScaledDb(size_t scale) {
  static std::map<size_t, ScaledDb>& cache = *new std::map<size_t, ScaledDb>();
  auto it = cache.find(scale);
  if (it == cache.end()) {
    ScaledDb entry;
    entry.db = std::make_unique<Database>();
    (void)workload::BuildFig1Schema(entry.db.get());
    workload::WorkloadParams params;
    params = params.Scaled(scale);
    auto stats = workload::GenerateFig1Data(entry.db.get(), params);
    entry.stats = stats.ok() ? *stats : workload::WorkloadStats{};
    entry.session = std::make_unique<Session>(entry.db.get());
    entry.guarded_session =
        std::make_unique<Session>(entry.db.get(), GuardedSessionOptions());
    SessionOptions unplanned;
    unplanned.use_planner = false;
    unplanned.plan_cache_capacity = 0;
    entry.unplanned_session =
        std::make_unique<Session>(entry.db.get(), unplanned);
    SessionOptions uncached;
    uncached.plan_cache_capacity = 0;
    entry.uncached_session =
        std::make_unique<Session>(entry.db.get(), uncached);
    it = cache.emplace(scale, std::move(entry)).first;
  }
  return it->second;
}

}  // namespace bench
}  // namespace xsql

#endif  // XSQL_BENCH_BENCH_UTIL_H_
