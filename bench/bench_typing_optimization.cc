// B1 — Theorem 6.1(2): restricting v-selector instantiation to the
// range A(X) of a strict-typing witness vs. enumerating the active
// domain. The paper calls this "a potentially very powerful
// optimization"; the expected shape is pruned << unpruned, with the gap
// growing with database size.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "parser/parser.h"
#include "typing/type_checker.h"

namespace xsql {
namespace bench {
namespace {

// The fragment-(17) query, with the plan *fixed* to evaluate the second
// path first so its head variable M must be enumerated: pruning limits
// M to Extent(Company); without it M ranges over the active domain.
constexpr const char* kQuery =
    "SELECT X FROM Vehicle X WHERE M.President.OwnedVehicles[X] "
    "and X.Manufacturer[M]";

void BM_RangePruning(benchmark::State& state) {
  ScaledDb& scaled = GetScaledDb(static_cast<size_t>(state.range(0)));
  const bool pruned = state.range(1) != 0;
  auto stmt = ParseAndResolve(kQuery, *scaled.db);
  if (!stmt.ok()) {
    state.SkipWithError(stmt.status().ToString().c_str());
    return;
  }
  const Query& query = *stmt->query->simple;
  TypeChecker checker(*scaled.db);
  TypingResult strict = checker.Check(query, TypingMode::kStrict);
  if (!strict.well_typed) {
    state.SkipWithError(strict.explanation.c_str());
    return;
  }
  Evaluator evaluator(scaled.db.get());
  size_t rows = 0;
  for (auto _ : state) {
    EvalOptions opts;
    opts.conjunct_order = {0, 1};  // force the M-headed path first
    opts.use_range_pruning = pruned;
    opts.ranges = pruned ? &strict.ranges : nullptr;
    auto out = evaluator.Run(query, opts);
    if (!out.ok()) {
      state.SkipWithError(out.status().ToString().c_str());
      return;
    }
    rows = out->relation.size();
  }
  state.SetLabel(pruned ? "pruned(A(M))" : "unpruned(active-domain)");
  state.counters["rows"] = static_cast<double>(rows);
  state.counters["active_domain"] =
      static_cast<double>(scaled.db->ActiveDomain().size());
}

BENCHMARK(BM_RangePruning)
    ->Args({1, 0})
    ->Args({1, 1})
    ->Args({4, 0})
    ->Args({4, 1})
    ->Args({8, 0})
    ->Args({8, 1})
    ->Unit(benchmark::kMicrosecond);

// Ablation: FROM-variable pruning. `X.Salary` narrows Person to
// Employee, so the pruned run filters the FROM extent.
void BM_FromRangePruning(benchmark::State& state) {
  ScaledDb& scaled = GetScaledDb(static_cast<size_t>(state.range(0)));
  const bool pruned = state.range(1) != 0;
  auto stmt = ParseAndResolve(
      "SELECT X FROM Person X WHERE X.Salary > 50000", *scaled.db);
  const Query& query = *stmt->query->simple;
  TypeChecker checker(*scaled.db);
  TypingResult strict = checker.Check(query, TypingMode::kStrict);
  Evaluator evaluator(scaled.db.get());
  for (auto _ : state) {
    EvalOptions opts;
    opts.use_range_pruning = pruned;
    opts.ranges = strict.well_typed && pruned ? &strict.ranges : nullptr;
    auto out = evaluator.Run(query, opts);
    benchmark::DoNotOptimize(out);
  }
  state.SetLabel(pruned ? "pruned" : "unpruned");
}

BENCHMARK(BM_FromRangePruning)
    ->Args({1, 0})
    ->Args({1, 1})
    ->Args({8, 0})
    ->Args({8, 1})
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace bench
}  // namespace xsql
