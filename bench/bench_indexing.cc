// B9 — nested-object indexing [BERT89], the access-method substrate the
// paper cites for path-expression queries. Compares the selection query
// `X.Residence.City['newyork']` evaluated by forward sweep vs reverse
// path-index lookup, plus the build cost the index amortizes.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "parser/parser.h"
#include "store/index.h"

namespace xsql {
namespace bench {
namespace {

Oid A(const char* s) { return Oid::Atom(s); }

constexpr const char* kSelection =
    "SELECT X FROM Person X WHERE X.Residence.City['newyork']";

PathIndexSet& GetIndexes(Database* db, size_t scale) {
  static std::map<size_t, PathIndexSet>& cache =
      *new std::map<size_t, PathIndexSet>();
  auto it = cache.find(scale);
  if (it == cache.end()) {
    it = cache.emplace(scale, PathIndexSet()).first;
    (void)it->second.Add(*db, A("Person"), {A("Residence"), A("City")});
  }
  (void)it->second.Refresh(*db);
  return it->second;
}

void BM_SelectionForwardSweep(benchmark::State& state) {
  ScaledDb& scaled = GetScaledDb(static_cast<size_t>(state.range(0)));
  auto stmt = ParseAndResolve(kSelection, *scaled.db);
  const Query& query = *stmt->query->simple;
  Evaluator evaluator(scaled.db.get());
  size_t rows = 0;
  for (auto _ : state) {
    auto out = evaluator.Run(query, EvalOptions{});
    if (!out.ok()) {
      state.SkipWithError(out.status().ToString().c_str());
      return;
    }
    rows = out->relation.size();
  }
  state.counters["rows"] = static_cast<double>(rows);
  state.counters["persons"] = static_cast<double>(scaled.stats.persons);
}

BENCHMARK(BM_SelectionForwardSweep)->Arg(1)->Arg(4)->Arg(16)
    ->Unit(benchmark::kMicrosecond);

void BM_SelectionPathIndex(benchmark::State& state) {
  ScaledDb& scaled = GetScaledDb(static_cast<size_t>(state.range(0)));
  PathIndexSet& indexes =
      GetIndexes(scaled.db.get(), static_cast<size_t>(state.range(0)));
  auto stmt = ParseAndResolve(kSelection, *scaled.db);
  const Query& query = *stmt->query->simple;
  Evaluator evaluator(scaled.db.get());
  size_t rows = 0;
  for (auto _ : state) {
    EvalOptions opts;
    opts.indexes = &indexes;
    auto out = evaluator.Run(query, opts);
    if (!out.ok()) {
      state.SkipWithError(out.status().ToString().c_str());
      return;
    }
    rows = out->relation.size();
  }
  state.counters["rows"] = static_cast<double>(rows);
  state.counters["persons"] = static_cast<double>(scaled.stats.persons);
}

BENCHMARK(BM_SelectionPathIndex)->Arg(1)->Arg(4)->Arg(16)
    ->Unit(benchmark::kMicrosecond);

void BM_IndexBuild(benchmark::State& state) {
  ScaledDb& scaled = GetScaledDb(static_cast<size_t>(state.range(0)));
  size_t entries = 0;
  for (auto _ : state) {
    PathIndex index(A("Person"), {A("Residence"), A("City")});
    if (!index.Build(*scaled.db).ok()) {
      state.SkipWithError("build failed");
      return;
    }
    entries = index.entries();
    benchmark::DoNotOptimize(index);
  }
  state.counters["entries"] = static_cast<double>(entries);
}

BENCHMARK(BM_IndexBuild)->Arg(1)->Arg(4)->Arg(16)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace bench
}  // namespace xsql
