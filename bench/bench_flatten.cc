// B3 — intro feature 4: extended path expressions "flatten any nested
// structure in one sweep"; earlier proposals decompose the path and
// apply a collapse per set-valued hop, materializing each intermediate.
// The gap is expected to grow with path length.
#include <benchmark/benchmark.h>

#include "baseline/gem_path.h"
#include "bench_util.h"

namespace xsql {
namespace bench {
namespace {

Oid A(const char* s) { return Oid::Atom(s); }

/// Paths of increasing length through the Figure 1 composition
/// hierarchy, starting from Company (the bushiest root).
baseline::SimplePathQuery PathOfLength(int length) {
  baseline::SimplePathQuery query;
  query.start_class = A("Company");
  const Oid chain[] = {A("Divisions"), A("Employees"), A("OwnedVehicles"),
                       A("Drivetrain"), A("Engine")};
  for (int i = 0; i < length; ++i) query.attrs.push_back(chain[i]);
  return query;
}

void BM_OneSweep(benchmark::State& state) {
  ScaledDb& scaled = GetScaledDb(static_cast<size_t>(state.range(1)));
  baseline::SimplePathQuery query =
      PathOfLength(static_cast<int>(state.range(0)));
  size_t results = 0;
  for (auto _ : state) {
    OidSet out = baseline::EvalOneSweep(*scaled.db, query);
    results = out.size();
    benchmark::DoNotOptimize(out);
  }
  state.counters["results"] = static_cast<double>(results);
  state.counters["path_len"] = static_cast<double>(state.range(0));
}

void BM_DecomposedCollapse(benchmark::State& state) {
  ScaledDb& scaled = GetScaledDb(static_cast<size_t>(state.range(1)));
  baseline::SimplePathQuery query =
      PathOfLength(static_cast<int>(state.range(0)));
  size_t results = 0;
  size_t tuples = 0;
  for (auto _ : state) {
    OidSet out = baseline::EvalDecomposed(*scaled.db, query, &tuples);
    results = out.size();
    benchmark::DoNotOptimize(out);
  }
  state.counters["results"] = static_cast<double>(results);
  state.counters["materialized_tuples"] = static_cast<double>(tuples);
  state.counters["path_len"] = static_cast<double>(state.range(0));
}

void LengthArgs(benchmark::internal::Benchmark* b) {
  for (long len = 1; len <= 5; ++len) {
    b->Args({len, 8});
  }
}

BENCHMARK(BM_OneSweep)->Apply(LengthArgs)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_DecomposedCollapse)
    ->Apply(LengthArgs)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace bench
}  // namespace xsql
