// Durability costs: what a per-statement WAL fsync adds to mutation
// latency, what raw record appends cost, how recovery time scales with
// WAL length, and what a checkpoint rotation costs. Companion numbers
// live in EXPERIMENTS.md.
#include <benchmark/benchmark.h>

#include <filesystem>
#include <string>

#include "eval/session.h"
#include "storage/file.h"
#include "storage/recovery.h"
#include "storage/wal.h"
#include "store/database.h"

namespace xsql {
namespace bench {
namespace {

std::string FreshDir(const std::string& name) {
  std::string dir =
      (std::filesystem::temp_directory_path() / ("xsql_bench_" + name))
          .string();
  std::filesystem::remove_all(dir);
  return dir;
}

// A durable database only ever holds statement-built state (recovery
// replays statements), so benchmarks prime it through Execute.
void Prime(storage::DurableDatabase* dd) {
  const char* prelude[] = {
      "ALTER CLASS Person ADD SIGNATURE Name => String",
      "ALTER CLASS Person ADD SIGNATURE Salary => Numeral",
      "UPDATE CLASS Person SET mary.Name = 'mary'",
  };
  for (const char* stmt : prelude) (void)dd->Execute(stmt);
}

const char kUpdate[] = "UPDATE CLASS Person SET mary.Salary = 100";

// Baseline: the same statement through a plain in-memory session.
void BM_UpdatePlain(benchmark::State& state) {
  Database db;
  Session session(&db);
  (void)session.Execute("ALTER CLASS Person ADD SIGNATURE Name => String");
  (void)session.Execute("ALTER CLASS Person ADD SIGNATURE Salary => Numeral");
  (void)session.Execute("UPDATE CLASS Person SET mary.Name = 'mary'");
  for (auto _ : state) {
    auto out = session.Execute(kUpdate);
    if (!out.ok()) state.SkipWithError(out.status().ToString().c_str());
  }
}
BENCHMARK(BM_UpdatePlain)->Unit(benchmark::kMicrosecond);

// The durable path: statement + WAL append + fsync before the ack.
void BM_UpdateDurable(benchmark::State& state) {
  std::string dir = FreshDir("update_durable");
  auto dd = storage::DurableDatabase::Open(dir);
  if (!dd.ok()) {
    state.SkipWithError(dd.status().ToString().c_str());
    return;
  }
  Prime(dd->get());
  for (auto _ : state) {
    auto out = (*dd)->Execute(kUpdate);
    if (!out.ok()) state.SkipWithError(out.status().ToString().c_str());
  }
  state.counters["wal_bytes"] =
      static_cast<double>((*dd)->wal_bytes());
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_UpdateDurable)->Unit(benchmark::kMicrosecond);

// Raw WAL record append + fsync, isolating the log from the executor.
void BM_WalAppendRaw(benchmark::State& state) {
  std::string dir = FreshDir("wal_raw");
  (void)storage::File::EnsureDir(dir);
  std::string path = dir + "/bench.wal";
  (void)storage::Wal::Create(path);
  auto wal = storage::Wal::OpenAppender(
      path, sizeof(storage::Wal::kMagic) - 1);
  if (!wal.ok()) {
    state.SkipWithError(wal.status().ToString().c_str());
    return;
  }
  const std::string payload(static_cast<size_t>(state.range(0)), 's');
  for (auto _ : state) {
    Status st = wal->Append(payload);
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
  }
  state.SetBytesProcessed(
      static_cast<int64_t>(state.iterations()) *
      static_cast<int64_t>(payload.size() + storage::Wal::kRecordHeader));
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_WalAppendRaw)->Arg(64)->Arg(1024)->Unit(benchmark::kMicrosecond);

// Recovery latency against WAL length: open a directory whose log
// holds `records` unreplayed statements.
void BM_Recovery(benchmark::State& state) {
  const int64_t records = state.range(0);
  std::string dir =
      FreshDir("recovery_" + std::to_string(records));
  {
    auto dd = storage::DurableDatabase::Open(dir);
    if (!dd.ok()) {
      state.SkipWithError(dd.status().ToString().c_str());
      return;
    }
    Prime(dd->get());
    for (int64_t i = 0; i < records; ++i) {
      auto out = (*dd)->Execute(
          "UPDATE CLASS Person SET mary.Salary = " + std::to_string(i));
      if (!out.ok()) {
        state.SkipWithError(out.status().ToString().c_str());
        return;
      }
    }
  }
  for (auto _ : state) {
    auto dd = storage::DurableDatabase::Open(dir);
    if (!dd.ok()) state.SkipWithError(dd.status().ToString().c_str());
    benchmark::DoNotOptimize(dd);
  }
  state.counters["replayed"] = static_cast<double>(records);
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_Recovery)
    ->Arg(0)
    ->Arg(100)
    ->Arg(1000)
    ->Unit(benchmark::kMillisecond);

// A checkpoint rotation (write snapshot + DDL log + WAL, flip
// CURRENT). Each iteration rotates to a fresh generation.
void BM_Checkpoint(benchmark::State& state) {
  std::string dir = FreshDir("checkpoint");
  auto dd = storage::DurableDatabase::Open(dir);
  if (!dd.ok()) {
    state.SkipWithError(dd.status().ToString().c_str());
    return;
  }
  Prime(dd->get());
  for (auto _ : state) {
    Status st = (*dd)->Checkpoint();
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
  }
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_Checkpoint)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace bench
}  // namespace xsql
