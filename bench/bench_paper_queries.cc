// B6 — every representative paper query end-to-end at scale. There is
// no table of absolute numbers in the paper to match; this harness
// regenerates the *behaviour*: all queries stay tractable and scale
// with the data they touch, not with the whole database.
#include <benchmark/benchmark.h>

#include <filesystem>

#include "bench_util.h"
#include "obs/trace.h"
#include "storage/recovery.h"

namespace xsql {
namespace bench {
namespace {

struct NamedQuery {
  const char* id;
  const char* text;
};

const NamedQuery kQueries[] = {
    {"Q1_ground_path", "SELECT C WHERE mary123.Residence.City[C]"},
    {"Q3_selection",
     "SELECT Y FROM Person X WHERE X.Residence[Y].City['newyork']"},
    {"Q4_deep_path",
     "SELECT Z FROM Employee X, Automobile Y "
     "WHERE X.OwnedVehicles[Y].Drivetrain.Engine[Z]"},
    {"Q5_attr_variable",
     "SELECT \"Y FROM Person X WHERE X.\"Y.City['newyork']"},
    {"Q6_schema", "SELECT $X WHERE TurboEngine subclassOf $X"},
    {"Q7_some_gt",
     "SELECT X FROM Employee X WHERE X.FamMembers.Age some> 20"},
    {"Q8_contains_eq",
     "SELECT X FROM Automobile Y WHERE Y.Manufacturer[X] "
     "and X.President.OwnedVehicles.Color containsEq {'blue', 'red'} "
     "and X.President.Age < 30"},
    {"Q10_aggregate",
     "SELECT X FROM Employee X WHERE count(X.FamMembers) > 4 "
     "and X.Salary < 35000"},
    {"Q11_relation",
     "SELECT X.Name, W.Salary FROM Company X "
     "WHERE X.Divisions.Employees[W]"},
    {"Q12_explicit_join",
     "SELECT X, Y FROM Company X "
     "WHERE X.Name =some X.Divisions.Employees[Y].Name"},
};

void BM_PaperQuery(benchmark::State& state) {
  const NamedQuery& query = kQueries[state.range(0)];
  ScaledDb& scaled = GetScaledDb(static_cast<size_t>(state.range(1)));
  state.SetLabel(query.id);
  size_t rows = 0;
  for (auto _ : state) {
    auto rel = scaled.session->Query(query.text);
    if (!rel.ok()) {
      state.SkipWithError(rel.status().ToString().c_str());
      return;
    }
    rows = rel->size();
    benchmark::DoNotOptimize(rows);
  }
  state.counters["rows"] = static_cast<double>(rows);
  state.counters["persons"] = static_cast<double>(scaled.stats.persons);
}

void PaperQueryArgs(benchmark::internal::Benchmark* b) {
  for (size_t q = 0; q < std::size(kQueries); ++q) {
    for (size_t scale : {1, 4, 16}) {
      b->Args({static_cast<long>(q), static_cast<long>(scale)});
    }
  }
}

BENCHMARK(BM_PaperQuery)->Apply(PaperQueryArgs)->Unit(benchmark::kMicrosecond);

// Same queries with every guardrail armed (deadline, row/step budgets,
// cancel token): comparing against BM_PaperQuery gives the guardrail
// overhead, which EXPERIMENTS.md records at under 2%.
void BM_PaperQueryGuarded(benchmark::State& state) {
  const NamedQuery& query = kQueries[state.range(0)];
  ScaledDb& scaled = GetScaledDb(static_cast<size_t>(state.range(1)));
  state.SetLabel(query.id);
  size_t rows = 0;
  for (auto _ : state) {
    auto rel = scaled.guarded_session->Query(query.text);
    if (!rel.ok()) {
      state.SkipWithError(rel.status().ToString().c_str());
      return;
    }
    rows = rel->size();
    benchmark::DoNotOptimize(rows);
  }
  state.counters["rows"] = static_cast<double>(rows);
  state.counters["persons"] = static_cast<double>(scaled.stats.persons);
}

BENCHMARK(BM_PaperQueryGuarded)
    ->Apply(PaperQueryArgs)
    ->Unit(benchmark::kMicrosecond);

// B12 — the observability contract. BM_PaperQuery above *is* the
// no-sink configuration (spans compiled in, no tracer installed, so
// every Span is a thread-local load and a branch); this variant
// installs a fresh tracer per iteration, the EXPLAIN ANALYZE hot path.
// Comparing the two gives the with-sink cost; comparing BM_PaperQuery
// across the commit that introduced spans gives the no-sink overhead,
// recorded in EXPERIMENTS.md at under 2%.
void BM_PaperQueryTraced(benchmark::State& state) {
  const NamedQuery& query = kQueries[state.range(0)];
  ScaledDb& scaled = GetScaledDb(static_cast<size_t>(state.range(1)));
  state.SetLabel(query.id);
  size_t rows = 0;
  for (auto _ : state) {
    obs::Tracer tracer;
    obs::ScopedTracer install(&tracer);
    auto rel = scaled.session->Query(query.text);
    if (!rel.ok()) {
      state.SkipWithError(rel.status().ToString().c_str());
      return;
    }
    rows = rel->size();
    benchmark::DoNotOptimize(rows);
  }
  state.counters["rows"] = static_cast<double>(rows);
  state.counters["persons"] = static_cast<double>(scaled.stats.persons);
}

BENCHMARK(BM_PaperQueryTraced)
    ->Apply(PaperQueryArgs)
    ->Unit(benchmark::kMicrosecond);

// The inert-span micro-cost in isolation: constructing and destroying
// a span (detail lambda never invoked) with no tracer installed.
void BM_SpanNoSink(benchmark::State& state) {
  for (auto _ : state) {
    obs::Span span("bench/no-sink",
                   [] { return std::string("never built"); });
    benchmark::DoNotOptimize(span.active());
  }
}
BENCHMARK(BM_SpanNoSink)->Unit(benchmark::kNanosecond);

// The workload's mutation statement in memory, as a baseline for the
// durable variant below: their gap is the price of a checksummed WAL
// append + fsync per acknowledged statement (see bench_durability for
// the decomposition, EXPERIMENTS.md for recorded numbers).
void BM_PaperMutation(benchmark::State& state) {
  ScaledDb& scaled = GetScaledDb(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto out = scaled.session->Execute(
        "UPDATE CLASS Division SET div0_0.Function = 'ops'");
    if (!out.ok()) {
      state.SkipWithError(out.status().ToString().c_str());
      return;
    }
  }
}
BENCHMARK(BM_PaperMutation)->Arg(1)->Arg(4)->Unit(benchmark::kMicrosecond);

// The same statement through a durable session: every iteration
// appends one WAL record and fsyncs it before the ack.
void BM_PaperMutationDurable(benchmark::State& state) {
  std::string dir = (std::filesystem::temp_directory_path() /
                     "xsql_bench_paper_mutation")
                        .string();
  std::filesystem::remove_all(dir);
  auto dd = storage::DurableDatabase::Open(dir);
  if (!dd.ok()) {
    state.SkipWithError(dd.status().ToString().c_str());
    return;
  }
  auto prime = (*dd)->Execute(
      "ALTER CLASS Division ADD SIGNATURE Function => String");
  if (!prime.ok()) {
    state.SkipWithError(prime.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    auto out = (*dd)->Execute(
        "UPDATE CLASS Division SET div0_0.Function = 'ops'");
    if (!out.ok()) {
      state.SkipWithError(out.status().ToString().c_str());
      return;
    }
  }
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_PaperMutationDurable)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace bench
}  // namespace xsql
