// B6 — every representative paper query end-to-end at scale. There is
// no table of absolute numbers in the paper to match; this harness
// regenerates the *behaviour*: all queries stay tractable and scale
// with the data they touch, not with the whole database.
#include <benchmark/benchmark.h>

#include <filesystem>

#include "bench_util.h"
#include "obs/trace.h"
#include "storage/recovery.h"

namespace xsql {
namespace bench {
namespace {

struct NamedQuery {
  const char* id;
  const char* text;
};

const NamedQuery kQueries[] = {
    {"Q1_ground_path", "SELECT C WHERE mary123.Residence.City[C]"},
    {"Q3_selection",
     "SELECT Y FROM Person X WHERE X.Residence[Y].City['newyork']"},
    {"Q4_deep_path",
     "SELECT Z FROM Employee X, Automobile Y "
     "WHERE X.OwnedVehicles[Y].Drivetrain.Engine[Z]"},
    {"Q5_attr_variable",
     "SELECT \"Y FROM Person X WHERE X.\"Y.City['newyork']"},
    {"Q6_schema", "SELECT $X WHERE TurboEngine subclassOf $X"},
    {"Q7_some_gt",
     "SELECT X FROM Employee X WHERE X.FamMembers.Age some> 20"},
    {"Q8_contains_eq",
     "SELECT X FROM Automobile Y WHERE Y.Manufacturer[X] "
     "and X.President.OwnedVehicles.Color containsEq {'blue', 'red'} "
     "and X.President.Age < 30"},
    {"Q10_aggregate",
     "SELECT X FROM Employee X WHERE count(X.FamMembers) > 4 "
     "and X.Salary < 35000"},
    {"Q11_relation",
     "SELECT X.Name, W.Salary FROM Company X "
     "WHERE X.Divisions.Employees[W]"},
    {"Q12_explicit_join",
     "SELECT X, Y FROM Company X "
     "WHERE X.Name =some X.Divisions.Employees[Y].Name"},
};

void BM_PaperQuery(benchmark::State& state) {
  const NamedQuery& query = kQueries[state.range(0)];
  ScaledDb& scaled = GetScaledDb(static_cast<size_t>(state.range(1)));
  state.SetLabel(query.id);
  size_t rows = 0;
  for (auto _ : state) {
    auto rel = scaled.session->Query(query.text);
    if (!rel.ok()) {
      state.SkipWithError(rel.status().ToString().c_str());
      return;
    }
    rows = rel->size();
    benchmark::DoNotOptimize(rows);
  }
  state.counters["rows"] = static_cast<double>(rows);
  state.counters["persons"] = static_cast<double>(scaled.stats.persons);
}

void PaperQueryArgs(benchmark::internal::Benchmark* b) {
  for (size_t q = 0; q < std::size(kQueries); ++q) {
    for (size_t scale : {1, 4, 16}) {
      b->Args({static_cast<long>(q), static_cast<long>(scale)});
    }
  }
}

BENCHMARK(BM_PaperQuery)->Apply(PaperQueryArgs)->Unit(benchmark::kMicrosecond);

// Same queries with every guardrail armed (deadline, row/step budgets,
// cancel token): comparing against BM_PaperQuery gives the guardrail
// overhead, which EXPERIMENTS.md records at under 2%.
void BM_PaperQueryGuarded(benchmark::State& state) {
  const NamedQuery& query = kQueries[state.range(0)];
  ScaledDb& scaled = GetScaledDb(static_cast<size_t>(state.range(1)));
  state.SetLabel(query.id);
  size_t rows = 0;
  for (auto _ : state) {
    auto rel = scaled.guarded_session->Query(query.text);
    if (!rel.ok()) {
      state.SkipWithError(rel.status().ToString().c_str());
      return;
    }
    rows = rel->size();
    benchmark::DoNotOptimize(rows);
  }
  state.counters["rows"] = static_cast<double>(rows);
  state.counters["persons"] = static_cast<double>(scaled.stats.persons);
}

BENCHMARK(BM_PaperQueryGuarded)
    ->Apply(PaperQueryArgs)
    ->Unit(benchmark::kMicrosecond);

// B12 — the observability contract. BM_PaperQuery above *is* the
// no-sink configuration (spans compiled in, no tracer installed, so
// every Span is a thread-local load and a branch); this variant
// installs a fresh tracer per iteration, the EXPLAIN ANALYZE hot path.
// Comparing the two gives the with-sink cost; comparing BM_PaperQuery
// across the commit that introduced spans gives the no-sink overhead,
// recorded in EXPERIMENTS.md at under 2%.
void BM_PaperQueryTraced(benchmark::State& state) {
  const NamedQuery& query = kQueries[state.range(0)];
  ScaledDb& scaled = GetScaledDb(static_cast<size_t>(state.range(1)));
  state.SetLabel(query.id);
  size_t rows = 0;
  for (auto _ : state) {
    obs::Tracer tracer;
    obs::ScopedTracer install(&tracer);
    auto rel = scaled.session->Query(query.text);
    if (!rel.ok()) {
      state.SkipWithError(rel.status().ToString().c_str());
      return;
    }
    rows = rel->size();
    benchmark::DoNotOptimize(rows);
  }
  state.counters["rows"] = static_cast<double>(rows);
  state.counters["persons"] = static_cast<double>(scaled.stats.persons);
}

BENCHMARK(BM_PaperQueryTraced)
    ->Apply(PaperQueryArgs)
    ->Unit(benchmark::kMicrosecond);

// B14 — cost-based planning. Multi-variable equality joins, where the
// planner's hash join replaces the nested-loop quadratic probe, run
// planned (default session) vs unplanned (use_planner=false): the gap
// is the headline B14 speedup. The single-variable corpus above runs
// through the planned session too, bounding the planner's overhead on
// queries it cannot improve.
const NamedQuery kJoinQueries[] = {
    {"J1_salary_selfjoin",
     "SELECT X, Y FROM Employee X, Employee Y "
     "WHERE X.Salary =some Y.Salary"},
    {"J2_name_join",
     "SELECT X, Y FROM Employee X, Person Y WHERE X.Name =some Y.Name"},
    {"J3_city_join",
     "SELECT X, Y FROM Person X, Person Y "
     "WHERE X.Residence.City =some Y.Residence.City"},
    {"J4_join_plus_filter",
     "SELECT X, Y FROM Employee X, Employee Y "
     "WHERE X.Salary =some Y.Salary and X.FamMembers.Age some> 60"},
};

template <bool planned>
void BM_JoinQuery(benchmark::State& state) {
  const NamedQuery& query = kJoinQueries[state.range(0)];
  ScaledDb& scaled = GetScaledDb(static_cast<size_t>(state.range(1)));
  Session* session =
      planned ? scaled.session.get() : scaled.unplanned_session.get();
  state.SetLabel(query.id);
  size_t rows = 0;
  for (auto _ : state) {
    auto rel = session->Query(query.text);
    if (!rel.ok()) {
      state.SkipWithError(rel.status().ToString().c_str());
      return;
    }
    rows = rel->size();
    benchmark::DoNotOptimize(rows);
  }
  state.counters["rows"] = static_cast<double>(rows);
  state.counters["persons"] = static_cast<double>(scaled.stats.persons);
}

void JoinQueryArgs(benchmark::internal::Benchmark* b) {
  for (size_t q = 0; q < std::size(kJoinQueries); ++q) {
    // Scale stops at 4: the unplanned nested loop is quadratic, and
    // scale 16 would spend the whole bench budget proving the point.
    for (size_t scale : {1, 4}) {
      b->Args({static_cast<long>(q), static_cast<long>(scale)});
    }
  }
}

void BM_JoinQueryPlanned(benchmark::State& state) {
  BM_JoinQuery<true>(state);
}
void BM_JoinQueryUnplanned(benchmark::State& state) {
  BM_JoinQuery<false>(state);
}
BENCHMARK(BM_JoinQueryPlanned)
    ->Apply(JoinQueryArgs)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_JoinQueryUnplanned)
    ->Apply(JoinQueryArgs)
    ->Unit(benchmark::kMicrosecond);

// B14 — the prepared-plan cache. The same statement repeated against a
// caching session (every iteration after the first is a hit: no parse,
// no typecheck, no planning) vs a cache-disabled session that
// re-prepares each time. The gap is what a server connection pool saves
// on its hot statements.
template <bool cached>
void BM_RepeatedStatement(benchmark::State& state) {
  const NamedQuery& query = kQueries[state.range(0)];
  ScaledDb& scaled = GetScaledDb(static_cast<size_t>(state.range(1)));
  Session* session =
      cached ? scaled.session.get() : scaled.uncached_session.get();
  state.SetLabel(query.id);
  size_t rows = 0;
  for (auto _ : state) {
    auto rel = session->Query(query.text);
    if (!rel.ok()) {
      state.SkipWithError(rel.status().ToString().c_str());
      return;
    }
    rows = rel->size();
    benchmark::DoNotOptimize(rows);
  }
  state.counters["rows"] = static_cast<double>(rows);
}

void CacheBenchArgs(benchmark::internal::Benchmark* b) {
  // Q1 (trivial evaluation: prepare dominates) and Q8 (long statement
  // text, heavier typecheck) at scale 1.
  b->Args({0, 1});
  b->Args({6, 1});
}

void BM_RepeatedStatementCached(benchmark::State& state) {
  BM_RepeatedStatement<true>(state);
}
void BM_RepeatedStatementUncached(benchmark::State& state) {
  BM_RepeatedStatement<false>(state);
}
BENCHMARK(BM_RepeatedStatementCached)
    ->Apply(CacheBenchArgs)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_RepeatedStatementUncached)
    ->Apply(CacheBenchArgs)
    ->Unit(benchmark::kMicrosecond);

// The inert-span micro-cost in isolation: constructing and destroying
// a span (detail lambda never invoked) with no tracer installed.
void BM_SpanNoSink(benchmark::State& state) {
  for (auto _ : state) {
    obs::Span span("bench/no-sink",
                   [] { return std::string("never built"); });
    benchmark::DoNotOptimize(span.active());
  }
}
BENCHMARK(BM_SpanNoSink)->Unit(benchmark::kNanosecond);

// The workload's mutation statement in memory, as a baseline for the
// durable variant below: their gap is the price of a checksummed WAL
// append + fsync per acknowledged statement (see bench_durability for
// the decomposition, EXPERIMENTS.md for recorded numbers).
void BM_PaperMutation(benchmark::State& state) {
  ScaledDb& scaled = GetScaledDb(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto out = scaled.session->Execute(
        "UPDATE CLASS Division SET div0_0.Function = 'ops'");
    if (!out.ok()) {
      state.SkipWithError(out.status().ToString().c_str());
      return;
    }
  }
}
BENCHMARK(BM_PaperMutation)->Arg(1)->Arg(4)->Unit(benchmark::kMicrosecond);

// The same statement through a durable session: every iteration
// appends one WAL record and fsyncs it before the ack.
void BM_PaperMutationDurable(benchmark::State& state) {
  std::string dir = (std::filesystem::temp_directory_path() /
                     "xsql_bench_paper_mutation")
                        .string();
  std::filesystem::remove_all(dir);
  auto dd = storage::DurableDatabase::Open(dir);
  if (!dd.ok()) {
    state.SkipWithError(dd.status().ToString().c_str());
    return;
  }
  auto prime = (*dd)->Execute(
      "ALTER CLASS Division ADD SIGNATURE Function => String");
  if (!prime.ok()) {
    state.SkipWithError(prime.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    auto out = (*dd)->Execute(
        "UPDATE CLASS Division SET div0_0.Function = 'ops'");
    if (!out.ok()) {
      state.SkipWithError(out.status().ToString().c_str());
      return;
    }
  }
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_PaperMutationDurable)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace bench
}  // namespace xsql
