// B5 — §4.2: querying through a view id-term vs the inlined base query,
// plus the one-time materialization cost. Expected shape: after
// materialization the view costs a small constant (id-term resolution)
// over the inlined query; materialization itself is linear in the view.
#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace xsql {
namespace bench {
namespace {

constexpr const char* kView =
    "CREATE VIEW CompSalaries AS SUBCLASS OF Object "
    "SIGNATURE CompName => String, DivName => String, Salary => Numeral "
    "SELECT CompName = X.Name, DivName = Y.Name, Salary = W.Salary "
    "FROM Company X OID FUNCTION OF X,W "
    "WHERE X.Divisions[Y].Employees[W]";

struct ViewDb {
  std::unique_ptr<Database> db;
  std::unique_ptr<Session> session;
};

ViewDb& GetViewDb(size_t scale) {
  static std::map<size_t, ViewDb>& cache = *new std::map<size_t, ViewDb>();
  auto it = cache.find(scale);
  if (it == cache.end()) {
    ViewDb entry;
    entry.db = std::make_unique<Database>();
    (void)workload::BuildFig1Schema(entry.db.get());
    workload::WorkloadParams params;
    params = params.Scaled(scale);
    (void)workload::GenerateFig1Data(entry.db.get(), params);
    entry.session = std::make_unique<Session>(entry.db.get());
    (void)entry.session->Execute(kView);
    (void)entry.session->views().Materialize("CompSalaries");
    it = cache.emplace(scale, std::move(entry)).first;
  }
  return it->second;
}

void BM_QueryThroughView(benchmark::State& state) {
  ViewDb& vdb = GetViewDb(static_cast<size_t>(state.range(0)));
  size_t rows = 0;
  for (auto _ : state) {
    auto rel = vdb.session->Query(
        "SELECT X.Manufacturer.Name FROM Automobile X, Employee W "
        "WHERE CompSalaries(X.Manufacturer, W).Salary > 35000");
    if (!rel.ok()) {
      state.SkipWithError(rel.status().ToString().c_str());
      return;
    }
    rows = rel->size();
  }
  state.counters["rows"] = static_cast<double>(rows);
}

BENCHMARK(BM_QueryThroughView)->Arg(1)->Arg(4)->Unit(benchmark::kMicrosecond);

void BM_QueryInlined(benchmark::State& state) {
  ViewDb& vdb = GetViewDb(static_cast<size_t>(state.range(0)));
  size_t rows = 0;
  for (auto _ : state) {
    auto rel = vdb.session->Query(
        "SELECT X.Manufacturer.Name FROM Automobile X "
        "WHERE X.Manufacturer.Divisions.Employees[W].Salary > 35000");
    if (!rel.ok()) {
      state.SkipWithError(rel.status().ToString().c_str());
      return;
    }
    rows = rel->size();
  }
  state.counters["rows"] = static_cast<double>(rows);
}

BENCHMARK(BM_QueryInlined)->Arg(1)->Arg(4)->Unit(benchmark::kMicrosecond);

void BM_Materialization(benchmark::State& state) {
  ViewDb& vdb = GetViewDb(static_cast<size_t>(state.range(0)));
  size_t view_objects = 0;
  for (auto _ : state) {
    Status st = vdb.session->views().Materialize("CompSalaries");
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      return;
    }
    view_objects = vdb.db->Extent(Oid::Atom("CompSalaries")).size();
  }
  state.counters["view_objects"] = static_cast<double>(view_objects);
}

BENCHMARK(BM_Materialization)->Arg(1)->Arg(4)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace bench
}  // namespace xsql
