// B4 — §1: querying the schema in the data language (subclassOf with a
// class variable) vs the relational route (transitive closure of the
// ISA catalog table by iterated self-joins). The in-language query is
// bound by the schema's *relevant* slice; the catalog join scans the
// ISA table once per closure step, so it degrades as the schema widens.
#include <benchmark/benchmark.h>

#include "baseline/relational.h"
#include "bench_util.h"

namespace xsql {
namespace bench {
namespace {

Oid A(const char* s) { return Oid::Atom(s); }

/// Widens the schema with `extra` unrelated classes (each with a couple
/// of attributes), simulating a large application schema.
void WidenSchema(Database* db, int extra) {
  for (int i = 0; i < extra; ++i) {
    Oid cls = A(("Widget" + std::to_string(i)).c_str());
    (void)db->DeclareClass(cls);
    (void)db->DeclareAttribute(cls, A(("w" + std::to_string(i)).c_str()),
                               A("String"), false);
  }
}

struct WideDb {
  std::unique_ptr<Database> db;
  std::unique_ptr<Session> session;
};

WideDb& GetWideDb(int extra) {
  static std::map<int, WideDb>& cache = *new std::map<int, WideDb>();
  auto it = cache.find(extra);
  if (it == cache.end()) {
    WideDb entry;
    entry.db = std::make_unique<Database>();
    (void)workload::BuildFig1Schema(entry.db.get());
    workload::WorkloadParams params;
    (void)workload::GenerateFig1Data(entry.db.get(), params);
    WidenSchema(entry.db.get(), extra);
    entry.session = std::make_unique<Session>(entry.db.get());
    it = cache.emplace(extra, std::move(entry)).first;
  }
  return it->second;
}

void BM_SchemaQueryXsql(benchmark::State& state) {
  WideDb& wide = GetWideDb(static_cast<int>(state.range(0)));
  size_t rows = 0;
  for (auto _ : state) {
    auto rel =
        wide.session->Query("SELECT $X WHERE TurboEngine subclassOf $X");
    if (!rel.ok()) {
      state.SkipWithError(rel.status().ToString().c_str());
      return;
    }
    rows = rel->size();
  }
  state.counters["rows"] = static_cast<double>(rows);
  state.counters["classes"] =
      static_cast<double>(wide.db->graph().classes().size());
}

BENCHMARK(BM_SchemaQueryXsql)->Arg(0)->Arg(100)->Arg(1000)
    ->Unit(benchmark::kMicrosecond);

void BM_SchemaQueryCatalogJoin(benchmark::State& state) {
  WideDb& wide = GetWideDb(static_cast<int>(state.range(0)));
  baseline::RelationalDb rdb = baseline::RelationalDb::Flatten(*wide.db);
  size_t rows = 0;
  for (auto _ : state) {
    auto supers = rdb.SuperclassesViaCatalog(A("TurboEngine"));
    rows = supers.size();
    benchmark::DoNotOptimize(supers);
  }
  state.counters["rows"] = static_cast<double>(rows);
  state.counters["classes"] =
      static_cast<double>(wide.db->graph().classes().size());
}

BENCHMARK(BM_SchemaQueryCatalogJoin)->Arg(0)->Arg(100)->Arg(1000)
    ->Unit(benchmark::kMicrosecond);

// Which classes define a given attribute — the conservative approach's
// prerequisite for the Nobel query (§1).
void BM_ClassesDefiningAttribute(benchmark::State& state) {
  WideDb& wide = GetWideDb(static_cast<int>(state.range(0)));
  baseline::RelationalDb rdb = baseline::RelationalDb::Flatten(*wide.db);
  for (auto _ : state) {
    auto classes = rdb.ClassesWithAttributeViaCatalog(A("Salary"));
    benchmark::DoNotOptimize(classes);
  }
}

BENCHMARK(BM_ClassesDefiningAttribute)->Arg(0)->Arg(1000)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace bench
}  // namespace xsql
