// B7 — the static cost of the typing spectrum (§6.2): liberal checking
// (assignment search only) vs strict checking (assignment x plan
// search). Strict costs more — that is the price of unlocking the
// Theorem 6.1(2) pruning measured in B1.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "parser/parser.h"
#include "typing/type_checker.h"

namespace xsql {
namespace bench {
namespace {

const char* kQueries[] = {
    "SELECT X FROM Person X WHERE X.Name",
    "SELECT X FROM Vehicle X WHERE X.Manufacturer[M] "
    "and M.President.OwnedVehicles[X]",
    "SELECT X FROM Numeral Year WHERE X.Manufacturer[M] "
    "and M.President.OwnedVehicles[X] "
    "and OO_Forum.(Member @ Year)[M]",
    "SELECT W FROM Company X WHERE X.Divisions[D] "
    "and D.Manager.Salary[W] and D.Name['engineering']",
};

void BM_TypeCheck(benchmark::State& state) {
  ScaledDb& scaled = GetScaledDb(1);
  const char* text = kQueries[state.range(0)];
  const TypingMode mode =
      state.range(1) == 0 ? TypingMode::kLiberal : TypingMode::kStrict;
  auto stmt = ParseAndResolve(text, *scaled.db);
  if (!stmt.ok()) {
    state.SkipWithError(stmt.status().ToString().c_str());
    return;
  }
  const Query& query = *stmt->query->simple;
  TypeChecker checker(*scaled.db);
  bool well_typed = false;
  for (auto _ : state) {
    TypingResult res = checker.Check(query, mode);
    well_typed = res.well_typed;
    benchmark::DoNotOptimize(res);
  }
  state.SetLabel(std::string(mode == TypingMode::kLiberal ? "liberal"
                                                          : "strict") +
                 (well_typed ? "/well-typed" : "/ill-typed"));
}

void TypeCheckArgs(benchmark::internal::Benchmark* b) {
  for (long q = 0; q < 4; ++q) {
    b->Args({q, 0});
    b->Args({q, 1});
  }
}

BENCHMARK(BM_TypeCheck)->Apply(TypeCheckArgs)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace bench
}  // namespace xsql
