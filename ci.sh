#!/usr/bin/env bash
# CI entry point: a documentation link check, plain build + tests, an
# ASan+UBSan build + tests, and a TSan build running the
# concurrent-server and MVCC suites.
# Usage: ./ci.sh [--plain-only|--sanitize-only|--tsan-only]
set -euo pipefail
cd "$(dirname "$0")"

JOBS="$(nproc 2>/dev/null || echo 4)"
MODE="${1:-all}"

# Dead-link check over the documentation: every relative markdown link
# in README.md and docs/*.md must point at a file that exists (anchors
# stripped; http(s) and mailto links are out of scope). Keeps the docs
# map honest as files move.
doc_link_check() {
  echo "==> doc link check"
  local failed=0 doc target resolved
  for doc in README.md docs/*.md; do
    [[ -f "$doc" ]] || continue
    while IFS= read -r target; do
      [[ -z "$target" ]] && continue
      case "$target" in
        http://*|https://*|mailto:*|\#*) continue ;;
      esac
      resolved="$(dirname "$doc")/${target%%#*}"
      if [[ ! -e "$resolved" ]]; then
        echo "dead link in $doc: $target" >&2
        failed=1
      fi
    done < <(grep -o '](\([^)]*\))' "$doc" | sed 's/^](//; s/)$//')
  done
  return "$failed"
}
doc_link_check

run_suite() {
  local dir="$1"; shift
  cmake -B "$dir" -S . "$@"
  cmake --build "$dir" -j "$JOBS"
  ctest --test-dir "$dir" -j "$JOBS" --output-on-failure
  # The crash-recovery suite again, serially and by name: the crash
  # injector is process-global state, so this run proves the durability
  # properties hold without test-level parallelism in the mix.
  echo "==> crash-recovery suite ($dir)"
  ctest --test-dir "$dir" -L durability --output-on-failure
  # The observability suite again, serially: the metrics enable-flag and
  # the global registry are process-global, so the freeze/unfreeze test
  # must not race other tests in the same binary re-run.
  echo "==> observability suite ($dir)"
  ctest --test-dir "$dir" -R '^observability_test$' --output-on-failure
  # The planner suite again, serially and by label: the differential
  # planned-vs-naive and plan-cache tests are the correctness gate for
  # the cost-based planner in every sanitized build.
  echo "==> planner suite ($dir)"
  ctest --test-dir "$dir" -L planner --output-on-failure
  # The replication suite again, serially: WAL shipping, promotion, and
  # the failover chaos sweep share the process-global fault injector, so
  # the acked-exactly-once failover contract is proven without
  # test-level parallelism in the mix (XSQL_CHAOS_SEEDS scales it).
  echo "==> replication suite ($dir)"
  ctest --test-dir "$dir" -L replication --output-on-failure
  # The MVCC suite again, serially and by label: copy-on-write fork
  # isolation, snapshot-isolation stress, version GC under pins, and
  # the crash sweep through version install. Under ASan this is the
  # use-after-free gate for retired versions; the crash sweep also
  # shares the process-global fault injector.
  echo "==> mvcc suite ($dir)"
  ctest --test-dir "$dir" -L mvcc --output-on-failure
  # Dump the metrics of a representative workload as a build artifact
  # ($dir/metrics.json) — a quick diffable health check across commits.
  echo "==> metrics artifact ($dir/metrics.json)"
  "./$dir/examples/metrics_dump" > "$dir/metrics.json"
  # Wire-protocol smoke test: a real server and client over localhost.
  echo "==> server/client smoke test ($dir)"
  server_smoke "$dir"
}

# Boots xsql_server on an ephemeral-ish port, runs three statements
# through xsql_client (DDL, mutation, read), and shuts the server down
# gracefully with SIGINT. Fails if the read does not come back with
# one row.
server_smoke() {
  local dir="$1"
  local dbdir port out
  dbdir="$(mktemp -d)"
  port=$((20000 + RANDOM % 20000))
  "./$dir/examples/xsql_server" --dir "$dbdir/db" --port "$port" &
  local server_pid=$!
  local rc=0
  for _ in $(seq 1 50); do
    if "./$dir/examples/xsql_client" --port "$port" \
        --execute "SELECT C FROM Class C" > /dev/null 2>&1; then
      break
    fi
    sleep 0.1
  done
  out=""
  "./$dir/examples/xsql_client" --port "$port" \
      --execute "ALTER CLASS Person ADD SIGNATURE Name => String" \
      > /dev/null &&
    "./$dir/examples/xsql_client" --port "$port" \
      --execute "UPDATE CLASS Person SET mary.Name = 'mary'" \
      > /dev/null &&
    out="$("./$dir/examples/xsql_client" --port "$port" \
      --execute "SELECT T WHERE mary.Name[T]")" || rc=1
  # Exit-code contract: --execute must fail loudly so shell pipelines
  # can trust it. A statement the server rejects and a server that is
  # not there must both return nonzero.
  if "./$dir/examples/xsql_client" --port "$port" \
      --execute "SELECT FROM WHERE" > /dev/null 2>&1; then
    echo "xsql_client exit-code check failed: bad statement exited 0" >&2
    rc=1
  fi
  kill -INT "$server_pid" 2>/dev/null || true
  wait "$server_pid" || rc=1
  if "./$dir/examples/xsql_client" --port "$port" --retries 0 \
      --execute "SELECT C FROM Class C" > /dev/null 2>&1; then
    echo "xsql_client exit-code check failed: dead server exited 0" >&2
    rc=1
  fi
  rm -rf "$dbdir"
  if [[ "$rc" != 0 || "$out" != *"(1 rows)"* ]]; then
    echo "server smoke test failed: unexpected output: $out" >&2
    return 1
  fi
}

if [[ "$MODE" != "--sanitize-only" && "$MODE" != "--tsan-only" ]]; then
  echo "==> plain build + tests"
  run_suite build
fi

if [[ "$MODE" != "--plain-only" && "$MODE" != "--tsan-only" ]]; then
  echo "==> ASan+UBSan build + tests"
  run_suite build-asan -DXSQL_SANITIZE=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo
fi

if [[ "$MODE" != "--plain-only" && "$MODE" != "--sanitize-only" ]]; then
  # ThreadSanitizer over the concurrent-server suite only: TSan's
  # runtime is incompatible with ASan and slows everything ~10x, so it
  # runs exactly the tests whose job is to race.
  echo "==> TSan build + concurrency suite"
  cmake -B build-tsan -S . -DXSQL_TSAN=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build build-tsan -j "$JOBS"
  ctest --test-dir build-tsan -L concurrency --output-on-failure
  # The MVCC suite under TSan: latch-free snapshot readers racing
  # copy-on-write writers is the exact interleaving TSan exists to
  # check — any reader touching writer-side state is a hard failure.
  echo "==> TSan mvcc suite"
  ctest --test-dir build-tsan -L mvcc --output-on-failure
  # The replication suite under TSan: the shipping source, the applier
  # thread, the semi-sync hub, and promotion are the raciest code in the
  # tree, so they run here at full strength.
  echo "==> TSan replication suite"
  XSQL_CHAOS_SEEDS="${XSQL_CHAOS_SEEDS:-4}" \
    ctest --test-dir build-tsan -L replication --output-on-failure
  # The network-chaos sweep under TSan, with the seed and fuzz budgets
  # bounded: TSan is ~10x, so CI proves the exactly-once contract on a
  # handful of seeds and leaves the full default sweep to plain ctest.
  echo "==> TSan chaos sweep (bounded)"
  XSQL_CHAOS_SEEDS="${XSQL_CHAOS_SEEDS:-4}" \
  XSQL_FUZZ_ITERS="${XSQL_FUZZ_ITERS:-40}" \
    ctest --test-dir build-tsan -L chaos --output-on-failure
fi

echo "==> CI OK"
