#!/usr/bin/env bash
# CI entry point: plain build + tests, then an ASan+UBSan build + tests.
# Usage: ./ci.sh [--plain-only|--sanitize-only]
set -euo pipefail
cd "$(dirname "$0")"

JOBS="$(nproc 2>/dev/null || echo 4)"
MODE="${1:-all}"

run_suite() {
  local dir="$1"; shift
  cmake -B "$dir" -S . "$@"
  cmake --build "$dir" -j "$JOBS"
  ctest --test-dir "$dir" -j "$JOBS" --output-on-failure
  # The crash-recovery suite again, serially and by name: the crash
  # injector is process-global state, so this run proves the durability
  # properties hold without test-level parallelism in the mix.
  echo "==> crash-recovery suite ($dir)"
  ctest --test-dir "$dir" -L durability --output-on-failure
}

if [[ "$MODE" != "--sanitize-only" ]]; then
  echo "==> plain build + tests"
  run_suite build
fi

if [[ "$MODE" != "--plain-only" ]]; then
  echo "==> ASan+UBSan build + tests"
  run_suite build-asan -DXSQL_SANITIZE=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo
fi

echo "==> CI OK"
