#!/usr/bin/env bash
# CI entry point: plain build + tests, then an ASan+UBSan build + tests.
# Usage: ./ci.sh [--plain-only|--sanitize-only]
set -euo pipefail
cd "$(dirname "$0")"

JOBS="$(nproc 2>/dev/null || echo 4)"
MODE="${1:-all}"

run_suite() {
  local dir="$1"; shift
  cmake -B "$dir" -S . "$@"
  cmake --build "$dir" -j "$JOBS"
  ctest --test-dir "$dir" -j "$JOBS" --output-on-failure
  # The crash-recovery suite again, serially and by name: the crash
  # injector is process-global state, so this run proves the durability
  # properties hold without test-level parallelism in the mix.
  echo "==> crash-recovery suite ($dir)"
  ctest --test-dir "$dir" -L durability --output-on-failure
  # The observability suite again, serially: the metrics enable-flag and
  # the global registry are process-global, so the freeze/unfreeze test
  # must not race other tests in the same binary re-run.
  echo "==> observability suite ($dir)"
  ctest --test-dir "$dir" -R '^observability_test$' --output-on-failure
  # Dump the metrics of a representative workload as a build artifact
  # ($dir/metrics.json) — a quick diffable health check across commits.
  echo "==> metrics artifact ($dir/metrics.json)"
  "./$dir/examples/metrics_dump" > "$dir/metrics.json"
}

if [[ "$MODE" != "--sanitize-only" ]]; then
  echo "==> plain build + tests"
  run_suite build
fi

if [[ "$MODE" != "--plain-only" ]]; then
  echo "==> ASan+UBSan build + tests"
  run_suite build-asan -DXSQL_SANITIZE=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo
fi

echo "==> CI OK"
