#include "eval/update.h"

#include <memory>

#include "eval/evaluator.h"

namespace xsql {

Status ApplySignatureDecl(Database* db, const Oid& cls,
                          const SignatureDecl& decl) {
  for (const Oid& result : decl.results) {
    Signature sig;
    sig.method = decl.method;
    sig.args = decl.args;
    sig.result = result;
    sig.set_valued = decl.set_valued;
    XSQL_RETURN_IF_ERROR(db->DeclareSignature(cls, std::move(sig)));
  }
  return Status::OK();
}

Status ApplyAlterClass(Database* db, const AlterClassStmt& stmt) {
  if (!db->graph().IsClass(stmt.cls)) {
    XSQL_RETURN_IF_ERROR(db->DeclareClass(stmt.cls));
  }
  for (const SignatureDecl& decl : stmt.add_signatures) {
    XSQL_RETURN_IF_ERROR(ApplySignatureDecl(db, stmt.cls, decl));
  }
  if (!stmt.method_def.has_value()) return Status::OK();

  const Query& def = *stmt.method_def;
  // The defining query's single SELECT item is the method head
  // `(M @ p1,...,pk) = expr`; `OID X` named the receiver variable.
  if (def.select.size() != 1 ||
      def.select[0].kind != SelectItem::Kind::kMethodHead) {
    return Status::InvalidArgument(
        "ALTER CLASS method definition needs a single (M @ ...) = expr "
        "SELECT item");
  }
  if (!def.oid_function_of.has_value() || def.oid_function_of->size() != 1) {
    return Status::InvalidArgument(
        "ALTER CLASS method definition needs an OID <var> clause naming "
        "the receiver");
  }
  const SelectItem& head = def.select[0];
  std::vector<Variable> params;
  for (const IdTerm& arg : head.method_args) {
    if (!arg.is_var() || arg.var.sort != VarSort::kIndividual) {
      return Status::InvalidArgument(
          "method parameters must be individual variables (path arguments "
          "are desugared by the parser)");
    }
    params.push_back(arg.var);
  }
  bool set_valued = false;
  for (const SignatureDecl& decl : stmt.add_signatures) {
    if (decl.method == head.method) set_valued = decl.set_valued;
  }
  auto body = std::make_shared<QueryMethodBody>(
      head.method, std::move(params), (*def.oid_function_of)[0], head.expr,
      def.from, def.where, set_valued);
  return db->DefineMethod(stmt.cls, head.method,
                          static_cast<int>(head.method_args.size()),
                          std::move(body));
}

}  // namespace xsql
