#ifndef XSQL_EVAL_PLAN_CACHE_H_
#define XSQL_EVAL_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

#include "ast/ast.h"
#include "typing/planner.h"
#include "typing/type_checker.h"

namespace xsql {

/// Everything the session computes for a statement before evaluation:
/// the parsed and name-resolved AST, the typing verdict (with the
/// Theorem 6.1(2) range witness), and the cost-based plan. Immutable
/// once published to the cache — concurrent snapshot readers
/// execute straight off one instance.
struct PreparedPlan {
  Statement stmt;
  /// Typing ran (simple queries only; UNION trees and DDL skip it).
  bool has_typing = false;
  TypingResult typing;
  /// Planning ran (implies has_typing).
  bool has_plan = false;
  QueryPlan plan;
  /// Database::version() the preparation read; any mutation since makes
  /// the entry stale (name resolution, ranges, extents all depend on
  /// the schema and the instance).
  uint64_t db_version = 0;
};

/// A shared LRU cache of prepared statements keyed by normalized
/// statement text + typing configuration. Hits skip parse, typecheck,
/// and planning entirely; entries are invalidated by version mismatch
/// at lookup time, so DDL or any mutation (which bumps
/// `Database::version()`) can never serve a stale preparation.
///
/// Thread safety: every operation takes the internal mutex. The server
/// shares one cache across all connection sessions; parallel readers
/// under the shared statement latch hit it concurrently, writers run
/// under the exclusive latch and simply repopulate after bumping the
/// version.
class PlanCache {
 public:
  /// `capacity` 0 disables the cache (lookups miss, inserts drop).
  explicit PlanCache(size_t capacity = 64) : capacity_(capacity) {}

  /// The fresh entry for `key` at `db_version`, or null. A version
  /// mismatch erases the entry (counted as an invalidation, not a
  /// miss-reuse); a hit refreshes LRU order.
  std::shared_ptr<const PreparedPlan> Lookup(const std::string& key,
                                             uint64_t db_version);

  /// Read-only probe: no LRU update, no metrics. For EXPLAIN surfacing.
  bool Contains(const std::string& key, uint64_t db_version) const;

  /// Publishes a preparation (replacing any entry under the same key);
  /// evicts the least-recently-used entry beyond capacity.
  void Insert(const std::string& key,
              std::shared_ptr<const PreparedPlan> prepared);

  void Clear();
  size_t size() const;
  size_t capacity() const { return capacity_; }

  /// Whitespace-normalized statement text: runs collapse to one space,
  /// ends trimmed. `SELECT  X ...` and `select` differ — normalization
  /// is deliberately conservative (no case folding: identifiers are
  /// case-sensitive).
  static std::string NormalizeText(const std::string& text);

 private:
  using Entry = std::pair<std::string, std::shared_ptr<const PreparedPlan>>;

  const size_t capacity_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<std::string, std::list<Entry>::iterator> by_key_;
};

}  // namespace xsql

#endif  // XSQL_EVAL_PLAN_CACHE_H_
