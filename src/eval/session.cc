#include "eval/session.h"

#include <cctype>

#include "eval/update.h"
#include "parser/parser.h"

namespace xsql {

namespace {

/// Arms the evaluator and the view manager with a statement's context
/// for the duration of one Execute call.
class ScopedExecContext {
 public:
  ScopedExecContext(Evaluator* evaluator, ViewManager* views,
                    ExecutionContext* ctx)
      : evaluator_(evaluator), views_(views) {
    evaluator_->set_exec_context(ctx);
    views_->set_exec_context(ctx);
  }
  ~ScopedExecContext() {
    evaluator_->set_exec_context(nullptr);
    views_->set_exec_context(nullptr);
  }

 private:
  Evaluator* evaluator_;
  ViewManager* views_;
};

}  // namespace

Result<EvalOutput> Session::Execute(const std::string& text) {
  // One guardrail context per statement: the deadline countdown starts
  // here and budgets reset.
  ExecutionContext ctx(options_.limits, options_.cancel);
  ScopedExecContext scoped(&evaluator_, &views_, &ctx);
  // Statement-level atomicity: unless an enclosing transaction (atomic
  // ExecuteScript) is already recording, this statement records its own
  // undo log and rolls back on any failure.
  UndoLog undo;
  const bool own_txn = !db_->undo_active();
  if (own_txn) db_->BeginUndo(&undo);
  Result<EvalOutput> out = ExecuteStatement(text);
  if (own_txn) {
    db_->EndUndo();
    if (!out.ok()) db_->Rollback(&undo);
  }
  return out;
}

Result<EvalOutput> Session::ExecuteStatement(const std::string& text) {
  XSQL_ASSIGN_OR_RETURN(Statement stmt, ParseAndResolve(text, *db_));
  switch (stmt.kind) {
    case Statement::Kind::kQuery: {
      EvalOptions opts;
      opts.use_range_pruning = options_.use_range_pruning;
      TypingResult typing;
      if (stmt.query->kind == QueryExpr::Kind::kSimple) {
        TypeChecker checker(*db_);
        typing = checker.Check(*stmt.query->simple, options_.typing_mode,
                               options_.exemptions);
        if (!typing.well_typed && options_.enforce_typing &&
            typing.in_fragment) {
          return Status::TypeError("query is not well-typed (" +
                                   typing.explanation + ")");
        }
        if (typing.well_typed && typing.in_fragment) {
          opts.ranges = &typing.ranges;  // Theorem 6.1(2)
        }
        return evaluator_.Run(*stmt.query->simple, opts);
      }
      XSQL_ASSIGN_OR_RETURN(Relation rel,
                            evaluator_.RunQueryExpr(*stmt.query, opts));
      EvalOutput out;
      out.relation = std::move(rel);
      return out;
    }
    case Statement::Kind::kCreateView: {
      XSQL_RETURN_IF_ERROR(views_.Create(*stmt.create_view));
      EvalOutput out;
      out.relation = Relation({"view"});
      XSQL_RETURN_IF_ERROR(out.relation.AddRow({stmt.create_view->name}));
      return out;
    }
    case Statement::Kind::kAlterClass: {
      XSQL_RETURN_IF_ERROR(ApplyAlterClass(db_, *stmt.alter_class));
      EvalOutput out;
      out.relation = Relation({"class"});
      XSQL_RETURN_IF_ERROR(out.relation.AddRow({stmt.alter_class->cls}));
      return out;
    }
    case Statement::Kind::kUpdateClass: {
      Binding binding;
      XSQL_RETURN_IF_ERROR(
          evaluator_.ExecuteUpdate(*stmt.update_class, &binding));
      EvalOutput out;
      out.relation = Relation({"updated"});
      XSQL_RETURN_IF_ERROR(out.relation.AddRow({Oid::Bool(true)}));
      return out;
    }
  }
  return Status::RuntimeError("unknown statement kind");
}

Result<EvalOutput> Session::ExecuteScript(const std::string& script,
                                          bool atomic) {
  if (atomic) {
    if (db_->undo_active()) {
      return Status::InvalidArgument(
          "nested script transaction (atomic ExecuteScript inside an "
          "active transaction)");
    }
    // Script-level transaction: one undo log spans every statement;
    // per-statement Execute sees undo_active() and does not roll back
    // individually.
    UndoLog undo;
    db_->BeginUndo(&undo);
    Result<EvalOutput> out = ExecuteScript(script, /*atomic=*/false);
    db_->EndUndo();
    if (!out.ok()) db_->Rollback(&undo);
    return out;
  }
  EvalOutput last;
  std::string current;
  bool in_string = false;
  bool any = false;
  auto flush = [&]() -> Status {
    // Skip blank statements (trailing semicolons, empty lines).
    bool blank = true;
    for (char c : current) {
      if (!std::isspace(static_cast<unsigned char>(c))) blank = false;
    }
    if (!blank) {
      XSQL_ASSIGN_OR_RETURN(last, Execute(current));
      any = true;
    }
    current.clear();
    return Status::OK();
  };
  for (char c : script) {
    if (c == '\'') in_string = !in_string;
    if (c == ';' && !in_string) {
      XSQL_RETURN_IF_ERROR(flush());
    } else {
      current.push_back(c);
    }
  }
  XSQL_RETURN_IF_ERROR(flush());
  if (!any) return Status::InvalidArgument("empty script");
  return last;
}

Result<Relation> Session::Query(const std::string& text) {
  XSQL_ASSIGN_OR_RETURN(EvalOutput out, Execute(text));
  return std::move(out.relation);
}

Result<std::string> Session::Explain(const std::string& text) {
  XSQL_ASSIGN_OR_RETURN(Statement stmt, ParseAndResolve(text, *db_));
  if (stmt.kind != Statement::Kind::kQuery ||
      stmt.query->kind != QueryExpr::Kind::kSimple) {
    return Status::InvalidArgument("Explain expects a simple query");
  }
  // `::xsql::Query` the AST type, not the member function Session::Query.
  const ::xsql::Query& query = *stmt.query->simple;
  TypeChecker checker(*db_);
  TypingResult liberal = checker.Check(query, TypingMode::kLiberal,
                                       options_.exemptions);
  TypingResult strict = checker.Check(query, TypingMode::kStrict,
                                      options_.exemptions);
  std::string out = "query   : " + query.ToString() + "\n";
  if (!strict.in_fragment) {
    out += "fragment: outside the typed fragment (" + strict.explanation +
           "); evaluated as liberally typed\n";
    return out;
  }
  out += "liberal : ";
  out += liberal.well_typed ? "well-typed" : "ill-typed (" +
                                                 liberal.explanation + ")";
  out += "\nstrict  : ";
  out += strict.well_typed ? "well-typed" : "ill-typed (" +
                                                strict.explanation + ")";
  out += "\n";
  const TypingResult& witness = strict.well_typed ? strict : liberal;
  if (witness.well_typed) {
    if (!witness.plan.empty()) {
      out += "plan    : " + PlanToString(witness.plan) + "\n";
    }
    for (size_t p = 0; p < witness.assignment.size(); ++p) {
      for (size_t s = 0; s < witness.assignment[p].size(); ++s) {
        out += "assign  : p" + std::to_string(p) + "/step" +
               std::to_string(s) + " : " +
               witness.assignment[p][s].ToString() + "\n";
      }
    }
    for (const auto& [var, range] : witness.ranges) {
      out += "range   : A(" + var.ToString() + ") = " + range.ToString() +
             "\n";
    }
  }
  return out;
}

Result<TypingResult> Session::TypeCheck(const std::string& text,
                                        TypingMode mode) {
  XSQL_ASSIGN_OR_RETURN(Statement stmt, ParseAndResolve(text, *db_));
  if (stmt.kind != Statement::Kind::kQuery ||
      stmt.query->kind != QueryExpr::Kind::kSimple) {
    return Status::InvalidArgument("TypeCheck expects a simple query");
  }
  TypeChecker checker(*db_);
  return checker.Check(*stmt.query->simple, mode, options_.exemptions);
}

}  // namespace xsql
