#include "eval/session.h"

#include <cctype>
#include <chrono>
#include <cstdint>

#include "eval/update.h"
#include "obs/metrics.h"
#include "obs/status.h"
#include "obs/trace.h"
#include "parser/parser.h"

namespace xsql {

namespace {

/// Arms the evaluator and the view manager with a statement's context
/// for the duration of one Execute call.
class ScopedExecContext {
 public:
  /// `views` may be null: read-only statements on a shared view catalog
  /// leave its context hook alone (concurrent readers would race on it).
  ScopedExecContext(Evaluator* evaluator, ViewManager* views,
                    ExecutionContext* ctx)
      : evaluator_(evaluator), views_(views) {
    evaluator_->set_exec_context(ctx);
    if (views_ != nullptr) views_->set_exec_context(ctx);
  }
  ~ScopedExecContext() {
    evaluator_->set_exec_context(nullptr);
    if (views_ != nullptr) views_->set_exec_context(nullptr);
  }

 private:
  Evaluator* evaluator_;
  ViewManager* views_;
};

Status AddLines(const std::string& text, Relation* relation) {
  std::string line;
  for (char c : text) {
    if (c == '\n') {
      XSQL_RETURN_IF_ERROR(relation->AddRow({Oid::String(line)}));
      line.clear();
    } else {
      line.push_back(c);
    }
  }
  if (!line.empty()) {
    XSQL_RETURN_IF_ERROR(relation->AddRow({Oid::String(line)}));
  }
  return Status::OK();
}

}  // namespace

Result<EvalOutput> Session::Execute(const std::string& text) {
  return ExecuteTimed(text, /*read_only=*/false);
}

Result<EvalOutput> Session::ExecuteReadOnly(const std::string& text) {
  return ExecuteTimed(text, /*read_only=*/true);
}

Result<EvalOutput> Session::ExecuteTimed(const std::string& text,
                                         bool read_only) {
  static obs::Counter& statements =
      obs::MetricsRegistry::Global().GetCounter("xsql.session.statements");
  static obs::Counter& failures =
      obs::MetricsRegistry::Global().GetCounter("xsql.session.failures");
  static obs::Counter& slow_queries =
      obs::MetricsRegistry::Global().GetCounter("xsql.session.slow_queries");
  static obs::Histogram& statement_us =
      obs::MetricsRegistry::Global().GetHistogram(
          "xsql.session.statement_us");
  const auto start = std::chrono::steady_clock::now();
  statements.Inc();
  Result<EvalOutput> out = ExecuteParsed(text, read_only);
  const uint64_t wall_us = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  statement_us.Observe(wall_us);
  if (!out.ok()) failures.Inc();
  if (options_.slow_query_us != 0 && wall_us >= options_.slow_query_us) {
    slow_queries.Inc();
    std::lock_guard<std::mutex> lock(slow_query_mu_);
    slow_query_log_.push_back({text, wall_us, out.ok()});
  }
  return out;
}

Result<EvalOutput> Session::ExecuteParsed(const std::string& text,
                                          bool read_only) {
  XSQL_ASSIGN_OR_RETURN(std::shared_ptr<const PreparedPlan> prepared,
                        Prepare(text));
  const Statement& stmt = prepared->stmt;
  switch (stmt.kind) {
    case Statement::Kind::kExplain:
      return stmt.analyze ? ExecuteExplainAnalyze(stmt)
                          : ExecuteExplain(stmt);
    case Statement::Kind::kSystemMetrics:
      return SystemMetricsOutput();
    case Statement::Kind::kSystemStatus:
      return SystemStatusOutput();
    default:
      return ExecuteGuarded(stmt, /*rollback_always=*/false, read_only,
                            prepared.get());
  }
}

std::string Session::CacheKey(const std::string& text) const {
  std::string key = PlanCache::NormalizeText(text);
  key += options_.typing_mode == TypingMode::kStrict ? "|strict" : "|liberal";
  if (options_.exemptions.exempt_all) {
    key += "|exempt=*";
  } else {
    for (const Exemption& e : options_.exemptions.items) {
      key += "|exempt=" + e.method.ToString() + "/" +
             std::to_string(e.arg_index);
    }
  }
  // Different index sets plan differently; the pointer identifies the
  // set (its *contents* are version-guarded like everything else: a
  // rebuild at a new version invalidates by version mismatch).
  if (options_.indexes != nullptr) {
    key += "|idx=" + std::to_string(
                         reinterpret_cast<uintptr_t>(options_.indexes));
  }
  return key;
}

Result<std::shared_ptr<const PreparedPlan>> Session::Prepare(
    const std::string& text) {
  const std::string key = CacheKey(text);
  // Version read before parsing: everything below reads the catalogs at
  // (or after) this version, so publishing under it can only ever
  // under-approximate freshness.
  const uint64_t version = db_->version();
  if (std::shared_ptr<const PreparedPlan> hit = plans_->Lookup(key, version)) {
    return hit;
  }
  auto prepared = std::make_shared<PreparedPlan>();
  prepared->db_version = version;
  XSQL_ASSIGN_OR_RETURN(prepared->stmt, ParseAndResolve(text, *db_));
  PrepareStatement(prepared.get());
  // Only plain queries are worth publishing: DDL/DML executions bump
  // the version, so their entries would be born stale; diagnostics are
  // cheap wrappers around a query that gets its own entry.
  if (prepared->stmt.kind == Statement::Kind::kQuery) {
    plans_->Insert(key, prepared);
  }
  return std::shared_ptr<const PreparedPlan>(std::move(prepared));
}

void Session::PrepareStatement(PreparedPlan* prepared) {
  const Statement& stmt = prepared->stmt;
  if (stmt.kind != Statement::Kind::kQuery || stmt.query == nullptr ||
      stmt.query->kind != QueryExpr::Kind::kSimple) {
    return;
  }
  {
    obs::Span span("typecheck");
    TypeChecker checker(*db_);
    prepared->typing = checker.Check(*stmt.query->simple,
                                     options_.typing_mode,
                                     options_.exemptions);
    prepared->has_typing = true;
  }
  static obs::Counter& prepares =
      obs::MetricsRegistry::Global().GetCounter("xsql.plan.prepares");
  prepares.Inc();
  obs::Span span("plan", [&] { return stmt.query->simple->ToString(); });
  Planner planner(*db_, options_.indexes);
  const RangeMap* ranges =
      prepared->typing.well_typed && prepared->typing.in_fragment
          ? &prepared->typing.ranges
          : nullptr;
  prepared->plan = planner.Plan(*stmt.query->simple, ranges);
  prepared->has_plan = true;
}

Result<EvalOutput> Session::ExecuteGuarded(const Statement& stmt,
                                           bool rollback_always,
                                           bool read_only,
                                           const PreparedPlan* prepared) {
  // One guardrail context per statement: the deadline countdown starts
  // here and budgets reset.
  ExecutionContext ctx(options_.limits, options_.cancel);
  ScopedExecContext scoped(&evaluator_, read_only ? nullptr : views_, &ctx);
  obs::Span span("statement", [&] { return stmt.ToString(); });
  // Statement-level atomicity: unless an enclosing transaction (atomic
  // ExecuteScript) is already recording, this statement records its own
  // undo log and rolls back on any failure. Read-only statements have
  // nothing to roll back and skip the (shared) undo pointer entirely —
  // concurrent snapshot readers would race on it.
  UndoLog undo;
  const bool own_txn = !read_only && !db_->undo_active();
  if (own_txn) db_->BeginUndo(&undo);
  Result<EvalOutput> out = ExecuteStatement(stmt, prepared);
  span.AddSteps(ctx.steps());
  if (out.ok()) span.AddRows(out->relation.size());
  if (own_txn) {
    db_->EndUndo();
    if (!out.ok() || rollback_always) db_->Rollback(&undo);
  }
  return out;
}

Result<EvalOutput> Session::ExecuteStatement(const Statement& stmt,
                                             const PreparedPlan* prepared) {
  switch (stmt.kind) {
    case Statement::Kind::kQuery: {
      EvalOptions opts;
      opts.use_range_pruning = options_.use_range_pruning;
      opts.indexes = options_.indexes;
      TypingResult local_typing;
      if (stmt.query->kind == QueryExpr::Kind::kSimple) {
        const TypingResult* typing = nullptr;
        if (prepared != nullptr && prepared->has_typing) {
          typing = &prepared->typing;
        } else {
          // Legacy inline path (no preparation happened).
          obs::Span span("typecheck");
          TypeChecker checker(*db_);
          local_typing = checker.Check(*stmt.query->simple,
                                       options_.typing_mode,
                                       options_.exemptions);
          typing = &local_typing;
        }
        if (!typing->well_typed && options_.enforce_typing &&
            typing->in_fragment) {
          return Status::TypeError("query is not well-typed (" +
                                   typing->explanation + ")");
        }
        if (typing->well_typed && typing->in_fragment) {
          opts.ranges = &typing->ranges;  // Theorem 6.1(2)
        }
        if (options_.use_planner && prepared != nullptr &&
            prepared->has_plan) {
          opts.plan = &prepared->plan;
        }
      }
      if (stmt.query->kind == QueryExpr::Kind::kSimple) {
        return evaluator_.Run(*stmt.query->simple, opts);
      }
      XSQL_ASSIGN_OR_RETURN(Relation rel,
                            evaluator_.RunQueryExpr(*stmt.query, opts));
      EvalOutput out;
      out.relation = std::move(rel);
      return out;
    }
    case Statement::Kind::kCreateView: {
      XSQL_RETURN_IF_ERROR(views_->Create(*stmt.create_view));
      // Eager materialization at DDL time (MVCC): a freshly created view
      // is immediately readable on the latch-free snapshot path instead
      // of escalating the first read that mentions it. The minted view
      // objects are deterministic id-terms, so recovery replay and
      // replicas converge on identical state. A failed materialization
      // fails the whole CREATE VIEW: the undo log withdraws the
      // database-side state, and the catalog entry is dropped here.
      Status materialized =
          views_->Materialize(stmt.create_view->name.str());
      if (!materialized.ok()) {
        views_->Drop(stmt.create_view->name.str());
        return materialized;
      }
      EvalOutput out;
      out.relation = Relation({"view"});
      XSQL_RETURN_IF_ERROR(out.relation.AddRow({stmt.create_view->name}));
      return out;
    }
    case Statement::Kind::kAlterClass: {
      XSQL_RETURN_IF_ERROR(ApplyAlterClass(db_, *stmt.alter_class));
      EvalOutput out;
      out.relation = Relation({"class"});
      XSQL_RETURN_IF_ERROR(out.relation.AddRow({stmt.alter_class->cls}));
      return out;
    }
    case Statement::Kind::kUpdateClass: {
      Binding binding;
      XSQL_RETURN_IF_ERROR(
          evaluator_.ExecuteUpdate(*stmt.update_class, &binding));
      EvalOutput out;
      out.relation = Relation({"updated"});
      XSQL_RETURN_IF_ERROR(out.relation.AddRow({Oid::Bool(true)}));
      return out;
    }
    case Statement::Kind::kExplain:
    case Statement::Kind::kSystemMetrics:
    case Statement::Kind::kSystemStatus:
      break;  // dispatched before ExecuteGuarded; unreachable here
  }
  return Status::RuntimeError("unknown statement kind");
}

Result<EvalOutput> Session::ExecuteExplain(const Statement& stmt) {
  // Diagnostic: nothing is evaluated, so no guardrail context is armed
  // (a session with a tiny budget can still explain its queries).
  if (stmt.query->kind != QueryExpr::Kind::kSimple) {
    return Status::InvalidArgument(
        "EXPLAIN expects a simple query (EXPLAIN ANALYZE handles "
        "UNION/MINUS/INTERSECT trees)");
  }
  XSQL_ASSIGN_OR_RETURN(std::string report,
                        ExplainReport(*stmt.query->simple));
  EvalOutput out;
  out.relation = Relation({"explain"});
  XSQL_RETURN_IF_ERROR(AddLines(report, &out.relation));
  return out;
}

Result<EvalOutput> Session::ExecuteExplainAnalyze(const Statement& stmt) {
  static obs::Counter& analyzes =
      obs::MetricsRegistry::Global().GetCounter("xsql.session.explain_analyze");
  analyzes.Inc();
  PreparedPlan prepared;
  prepared.db_version = db_->version();
  prepared.stmt.kind = Statement::Kind::kQuery;
  prepared.stmt.query = stmt.query;
  // Would a plain execution of this query hit the shared cache right
  // now? Reported below; ToString() is how the cache would see it.
  const bool cached = plans_->Contains(CacheKey(stmt.query->ToString()),
                                       prepared.db_version);
  PrepareStatement(&prepared);
  // Execution phase: fully guarded (budgets, deadline, cancellation all
  // apply) and traced. `rollback_always` withdraws any mutations the
  // query made — OID FUNCTION queries create objects — so analyzing is
  // side-effect-free.
  obs::Tracer tracer;
  obs::ScopedTracer install(&tracer);
  Result<EvalOutput> executed =
      ExecuteGuarded(prepared.stmt, /*rollback_always=*/true,
                     /*read_only=*/false, &prepared);
  if (!executed.ok()) return executed.status();
  // Render phase: guard-exempt — the work already happened; rendering
  // is proportional to the number of distinct operators.
  EvalOutput out;
  out.relation = Relation({"explain analyze"});
  std::string header = "query : " + stmt.query->ToString() + "\n" +
                       "rows  : " +
                       std::to_string(executed->relation.size()) + "\n" +
                       "cache : " + (cached ? "hit" : "miss") + "\n";
  if (prepared.has_plan) {
    for (const std::string& d : prepared.plan.decisions) {
      header += "plan  : " + d + "\n";
    }
  }
  XSQL_RETURN_IF_ERROR(AddLines(header, &out.relation));
  XSQL_RETURN_IF_ERROR(
      AddLines(tracer.Render(/*include_stats=*/true), &out.relation));
  return out;
}

Result<EvalOutput> Session::SystemMetricsOutput() {
  // Diagnostic and guard-exempt, like EXPLAIN: a wedged-on-budget
  // session must still be introspectable. Histograms flatten into one
  // row per field (`name.count`, `name.sum`, `name.p50`, `name.p99`).
  EvalOutput out;
  out.relation = Relation({"metric", "type", "value"});
  for (const obs::MetricSample& s :
       obs::MetricsRegistry::Global().Snapshot()) {
    if (s.type == "histogram") {
      for (const auto& [field, value] : s.fields) {
        XSQL_RETURN_IF_ERROR(out.relation.AddRow(
            {Oid::String(s.name + "." + field), Oid::String(s.type),
             Oid::Int(value)}));
      }
    } else {
      XSQL_RETURN_IF_ERROR(
          out.relation.AddRow({Oid::String(s.name), Oid::String(s.type),
                               Oid::Int(s.fields[0].second)}));
    }
  }
  return out;
}

Result<EvalOutput> Session::SystemStatusOutput() {
  // Diagnostic and guard-exempt, like SYSTEM METRICS. A process that
  // never wrote the board (embedded library use) still answers with
  // its role, so "am I primary?" always has a deterministic reply.
  EvalOutput out;
  out.relation = Relation({"field", "value"});
  const obs::StatusRegistry& board = options_.status != nullptr
                                         ? *options_.status
                                         : obs::StatusRegistry::Global();
  auto snapshot = board.Snapshot();
  bool has_role = false;
  for (const auto& [key, value] : snapshot) {
    if (key == "role") has_role = true;
  }
  if (!has_role) {
    XSQL_RETURN_IF_ERROR(out.relation.AddRow(
        {Oid::String("role"), Oid::String("standalone")}));
  }
  for (const auto& [key, value] : snapshot) {
    XSQL_RETURN_IF_ERROR(
        out.relation.AddRow({Oid::String(key), Oid::String(value)}));
  }
  return out;
}

Result<EvalOutput> Session::ExecuteScript(const std::string& script,
                                          bool atomic) {
  if (atomic) {
    if (db_->undo_active()) {
      return Status::InvalidArgument(
          "nested script transaction (atomic ExecuteScript inside an "
          "active transaction)");
    }
    // Script-level transaction: one undo log spans every statement;
    // per-statement Execute sees undo_active() and does not roll back
    // individually.
    UndoLog undo;
    db_->BeginUndo(&undo);
    Result<EvalOutput> out = ExecuteScript(script, /*atomic=*/false);
    db_->EndUndo();
    if (!out.ok()) db_->Rollback(&undo);
    return out;
  }
  EvalOutput last;
  std::string current;
  bool in_string = false;
  bool any = false;
  auto flush = [&]() -> Status {
    // Skip blank statements (trailing semicolons, empty lines).
    bool blank = true;
    for (char c : current) {
      if (!std::isspace(static_cast<unsigned char>(c))) blank = false;
    }
    if (!blank) {
      XSQL_ASSIGN_OR_RETURN(last, Execute(current));
      any = true;
    }
    current.clear();
    return Status::OK();
  };
  for (char c : script) {
    if (c == '\'') in_string = !in_string;
    if (c == ';' && !in_string) {
      XSQL_RETURN_IF_ERROR(flush());
    } else {
      current.push_back(c);
    }
  }
  XSQL_RETURN_IF_ERROR(flush());
  if (!any) return Status::InvalidArgument("empty script");
  return last;
}

Result<Relation> Session::Query(const std::string& text) {
  XSQL_ASSIGN_OR_RETURN(EvalOutput out, Execute(text));
  return std::move(out.relation);
}

Result<std::string> Session::Explain(const std::string& text) {
  XSQL_ASSIGN_OR_RETURN(Statement stmt, ParseAndResolve(text, *db_));
  const bool explainable =
      (stmt.kind == Statement::Kind::kQuery ||
       stmt.kind == Statement::Kind::kExplain) &&
      stmt.query != nullptr && stmt.query->kind == QueryExpr::Kind::kSimple;
  if (!explainable) {
    return Status::InvalidArgument("Explain expects a simple query");
  }
  return ExplainReport(*stmt.query->simple);
}

Result<std::string> Session::ExplainReport(const ::xsql::Query& query) {
  TypeChecker checker(*db_);
  TypingResult liberal = checker.Check(query, TypingMode::kLiberal,
                                       options_.exemptions);
  TypingResult strict = checker.Check(query, TypingMode::kStrict,
                                      options_.exemptions);
  // The cost-based plan the evaluator would follow (outside-fragment
  // queries plan from raw extent sizes: no range witness to refine
  // them).
  auto planner_lines = [&](const RangeMap* ranges) {
    std::string lines;
    Planner planner(*db_, options_.indexes);
    QueryPlan qp = planner.Plan(query, ranges);
    for (const std::string& d : qp.decisions) {
      lines += "planner : " + d + "\n";
    }
    return lines;
  };
  std::string out = "query   : " + query.ToString() + "\n";
  if (!strict.in_fragment) {
    out += "fragment: outside the typed fragment (" + strict.explanation +
           "); evaluated as liberally typed\n";
    out += planner_lines(nullptr);
    return out;
  }
  out += "liberal : ";
  out += liberal.well_typed ? "well-typed" : "ill-typed (" +
                                                 liberal.explanation + ")";
  out += "\nstrict  : ";
  out += strict.well_typed ? "well-typed" : "ill-typed (" +
                                                strict.explanation + ")";
  out += "\n";
  const TypingResult& witness = strict.well_typed ? strict : liberal;
  if (witness.well_typed) {
    if (!witness.plan.empty()) {
      out += "plan    : " + PlanToString(witness.plan) + "\n";
    }
    for (size_t p = 0; p < witness.assignment.size(); ++p) {
      for (size_t s = 0; s < witness.assignment[p].size(); ++s) {
        out += "assign  : p" + std::to_string(p) + "/step" +
               std::to_string(s) + " : " +
               witness.assignment[p][s].ToString() + "\n";
      }
    }
    for (const auto& [var, range] : witness.ranges) {
      out += "range   : A(" + var.ToString() + ") = " + range.ToString() +
             "\n";
    }
  }
  out += planner_lines(witness.well_typed ? &witness.ranges : nullptr);
  return out;
}

Result<TypingResult> Session::TypeCheck(const std::string& text,
                                        TypingMode mode) {
  XSQL_ASSIGN_OR_RETURN(Statement stmt, ParseAndResolve(text, *db_));
  if (stmt.kind != Statement::Kind::kQuery ||
      stmt.query->kind != QueryExpr::Kind::kSimple) {
    return Status::InvalidArgument("TypeCheck expects a simple query");
  }
  TypeChecker checker(*db_);
  return checker.Check(*stmt.query->simple, mode, options_.exemptions);
}

}  // namespace xsql
