#ifndef XSQL_EVAL_AGGREGATE_H_
#define XSQL_EVAL_AGGREGATE_H_

#include "ast/ast.h"
#include "common/status.h"
#include "oid/oid.h"

namespace xsql {

/// Applies an aggregate function to a path expression's value set
/// (§3.2: "passing path expressions as arguments to aggregate functions,
/// such as sum, count, average").
///
/// count works on any set; sum/avg require all-numeric elements; min/max
/// work on mutually comparable elements (all numeric or all strings).
/// avg of the empty set is an error; sum of the empty set is 0.
Result<Oid> EvalAggregate(AggFn fn, const OidSet& values);

}  // namespace xsql

#endif  // XSQL_EVAL_AGGREGATE_H_
