#ifndef XSQL_EVAL_VIEW_H_
#define XSQL_EVAL_VIEW_H_

#include <map>
#include <string>
#include <vector>

#include "ast/ast.h"
#include "common/status.h"
#include "eval/evaluator.h"
#include "store/database.h"

namespace xsql {

/// One registered view (§4.2): a virtual class, its declared signatures,
/// and the defining query whose OID FUNCTION gives view objects their
/// identity.
struct ViewDef {
  Oid name;
  Oid superclass;
  std::vector<SignatureDecl> signatures;
  Query query;
  uint64_t materialized_at = 0;  // db version stamp; 0 = never
  std::vector<Oid> created;      // oids created by the last materialization
};

/// Manages views: creation, on-demand materialization (id-terms like
/// `CompSalaries(c, w)` resolve against materialized view objects), and
/// the §4.2 view-update translation.
///
/// Views are constructed via queries, exactly like relations in the
/// relational model; because the id-function records which base objects
/// each view object was generated from, updates through the view can be
/// translated to base updates whenever the updated attribute's value is
/// drawn from an OID FUNCTION variable's object (the paper's one-to-one
/// correspondence condition).
class ViewManager : public ViewResolver {
 public:
  explicit ViewManager(Database* db) : db_(db) {}

  /// Rebinds a copy of `src`'s catalog (definitions, materialization
  /// stamps, created-oid bookkeeping) to `db`. MVCC snapshots carry a
  /// clone of the primary catalog bound to the snapshot database, so
  /// latch-free readers resolve views against frozen state.
  ViewManager(Database* db, const ViewManager& src)
      : db_(db), views_(src.views_) {}

  /// Guardrail context applied to view materialization (the defining
  /// query runs under it, and nested view expansion counts against the
  /// recursion-depth policy). Null restores unlimited execution.
  void set_exec_context(ExecutionContext* ctx) { ctx_ = ctx; }

  /// Declares the view class (a subclass of the given superclass), adds
  /// its signatures, and registers the defining query.
  Status Create(const CreateViewStmt& stmt);

  /// Unregisters a view definition. The database-side state (the view
  /// class, signatures, any materialized objects) is *not* touched —
  /// callers that need it gone roll it back through the undo log. Used
  /// by the durability layer when a CREATE VIEW executed in memory but
  /// its WAL record could not be made durable.
  void Drop(const std::string& name) { views_.erase(name); }

  bool IsView(const std::string& fn) const override {
    return views_.contains(fn);
  }

  /// True when `fn` is a view whose last materialization is still valid
  /// at the bound database's current version: reading it is a pure read
  /// (EnsureMaterialized is a no-op). The server's statement classifier
  /// uses this to keep reads of fresh views on the latch-free snapshot
  /// path instead of escalating them.
  bool IsMaterializedFresh(const std::string& fn) const {
    auto it = views_.find(fn);
    return it != views_.end() && it->second.materialized_at != 0 &&
           it->second.materialized_at >= db_->version();
  }

  /// Materializes the view if it was never computed or the database has
  /// changed since (objects from the previous materialization are
  /// detached from the view class first).
  Status EnsureMaterialized(const std::string& fn) override;

  /// Forces recomputation.
  Status Materialize(const std::string& name);

  const ViewDef* Get(const std::string& name) const {
    auto it = views_.find(name);
    return it == views_.end() ? nullptr : &it->second;
  }

  /// §4.2 view update: sets attribute `attr` of the view object
  /// `view_oid` (an id-term of this view's function) to `value`,
  /// translated to an update of the base object the attribute's value
  /// came from. Fails when the attribute's provenance is not a direct
  /// attribute of an OID FUNCTION variable (not updatable).
  Status UpdateThroughView(const Oid& view_oid, const Oid& attr,
                           const Oid& value);

  std::vector<std::string> ViewNames() const;

 private:
  Database* db_;
  ExecutionContext* ctx_ = nullptr;
  std::map<std::string, ViewDef> views_;
  bool materializing_ = false;
};

}  // namespace xsql

#endif  // XSQL_EVAL_VIEW_H_
