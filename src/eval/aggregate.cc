#include "eval/aggregate.h"

#include <cmath>

#include "eval/comparator.h"

namespace xsql {

Result<Oid> EvalAggregate(AggFn fn, const OidSet& values) {
  switch (fn) {
    case AggFn::kCount:
      return Oid::Int(static_cast<int64_t>(values.size()));
    case AggFn::kSum:
    case AggFn::kAvg: {
      double total = 0;
      bool all_int = true;
      for (const Oid& v : values) {
        if (!v.is_numeric()) {
          return Status::RuntimeError("sum/avg over non-numeric value " +
                                      v.ToString());
        }
        if (!v.is_int()) all_int = false;
        total += v.numeric_value();
      }
      if (fn == AggFn::kSum) {
        if (all_int) return Oid::Int(static_cast<int64_t>(total));
        return Oid::Real(total);
      }
      if (values.empty()) {
        return Status::RuntimeError("avg of empty set");
      }
      return Oid::Real(total / static_cast<double>(values.size()));
    }
    case AggFn::kMin:
    case AggFn::kMax: {
      if (values.empty()) {
        return Status::RuntimeError("min/max of empty set");
      }
      Oid best = *values.begin();
      for (const Oid& v : values) {
        std::optional<int> c = CompareOids(v, best);
        if (!c.has_value()) {
          return Status::RuntimeError("min/max over incomparable values");
        }
        if ((fn == AggFn::kMin && *c < 0) || (fn == AggFn::kMax && *c > 0)) {
          best = v;
        }
      }
      return best;
    }
  }
  return Status::RuntimeError("unknown aggregate");
}

}  // namespace xsql
