#include "eval/relation.h"

namespace xsql {

Status Relation::AddRow(std::vector<Oid> row) {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument(
        "row width " + std::to_string(row.size()) + " != arity " +
        std::to_string(columns_.size()));
  }
  if (index_.insert(row).second) rows_.push_back(std::move(row));
  return Status::OK();
}

Result<OidSet> Relation::AsSet() const {
  if (arity() != 1) {
    return Status::RuntimeError("relation used as set must have one column");
  }
  OidSet out;
  for (const auto& row : rows_) out.Insert(row[0]);
  return out;
}

Result<Relation> Relation::Union(const Relation& a, const Relation& b) {
  if (a.arity() != b.arity()) {
    return Status::RuntimeError("UNION arity mismatch");
  }
  Relation out(a.columns());
  for (const auto& row : a.rows()) XSQL_RETURN_IF_ERROR(out.AddRow(row));
  for (const auto& row : b.rows()) XSQL_RETURN_IF_ERROR(out.AddRow(row));
  return out;
}

Result<Relation> Relation::Minus(const Relation& a, const Relation& b) {
  if (a.arity() != b.arity()) {
    return Status::RuntimeError("MINUS arity mismatch");
  }
  Relation out(a.columns());
  for (const auto& row : a.rows()) {
    if (!b.ContainsRow(row)) XSQL_RETURN_IF_ERROR(out.AddRow(row));
  }
  return out;
}

Result<Relation> Relation::Intersect(const Relation& a, const Relation& b) {
  if (a.arity() != b.arity()) {
    return Status::RuntimeError("INTERSECT arity mismatch");
  }
  Relation out(a.columns());
  for (const auto& row : a.rows()) {
    if (b.ContainsRow(row)) XSQL_RETURN_IF_ERROR(out.AddRow(row));
  }
  return out;
}

std::string Relation::ToString() const {
  std::string out;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += " | ";
    out += columns_[i];
  }
  out += "\n";
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += " | ";
      out += row[i].ToString();
    }
    out += "\n";
  }
  return out;
}

}  // namespace xsql
