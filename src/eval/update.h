#ifndef XSQL_EVAL_UPDATE_H_
#define XSQL_EVAL_UPDATE_H_

#include "ast/ast.h"
#include "common/status.h"
#include "store/database.h"

namespace xsql {

/// Adds the signatures of a declaration to `cls`, expanding the paper's
/// multi-result abbreviation `M : A ->> {student, employee}` into one
/// signature per result class (§2 "Types").
Status ApplySignatureDecl(Database* db, const Oid& cls,
                          const SignatureDecl& decl);

/// Applies an ALTER CLASS statement (§5): adds the declared signatures
/// and, when a method-definition SELECT is present, installs a
/// query-defined method body on the class.
Status ApplyAlterClass(Database* db, const AlterClassStmt& stmt);

}  // namespace xsql

#endif  // XSQL_EVAL_UPDATE_H_
