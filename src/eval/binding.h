#ifndef XSQL_EVAL_BINDING_H_
#define XSQL_EVAL_BINDING_H_

#include <map>
#include <string>

#include "ast/ast.h"
#include "oid/oid.h"

namespace xsql {

/// A substitution of oids for variables (§3.4). Evaluation extends and
/// retracts bindings in place (backtracking), so `Set` returns the
/// previous state for restoration.
class Binding {
 public:
  bool Bound(const Variable& var) const { return map_.contains(var); }

  /// The bound value; only valid when `Bound(var)`.
  const Oid& Get(const Variable& var) const { return map_.at(var); }

  /// Binds `var` to `oid`. Returns false (and leaves the binding
  /// unchanged) when `var` is already bound to a different oid.
  bool Set(const Variable& var, const Oid& oid) {
    auto [it, inserted] = map_.emplace(var, oid);
    return inserted || it->second == oid;
  }

  /// Removes the binding of `var` (no-op when unbound).
  void Unset(const Variable& var) { map_.erase(var); }

  size_t size() const { return map_.size(); }
  const std::map<Variable, Oid>& entries() const { return map_; }

  std::string ToString() const {
    std::string out = "{";
    bool first = true;
    for (const auto& [var, oid] : map_) {
      if (!first) out += ", ";
      first = false;
      out += var.ToString() + "=" + oid.ToString();
    }
    out += "}";
    return out;
  }

 private:
  std::map<Variable, Oid> map_;
};

/// RAII scope guard: unbinds `var` on destruction if this frame bound it.
class BindScope {
 public:
  BindScope(Binding* binding, const Variable& var, const Oid& oid)
      : binding_(binding), var_(var) {
    was_bound_ = binding->Bound(var);
    ok_ = binding->Set(var, oid);
  }
  ~BindScope() {
    if (ok_ && !was_bound_) binding_->Unset(var_);
  }
  BindScope(const BindScope&) = delete;
  BindScope& operator=(const BindScope&) = delete;

  /// False when the variable was already bound to a conflicting value.
  bool ok() const { return ok_; }

 private:
  Binding* binding_;
  Variable var_;
  bool was_bound_;
  bool ok_;
};

}  // namespace xsql

#endif  // XSQL_EVAL_BINDING_H_
