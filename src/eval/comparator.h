#ifndef XSQL_EVAL_COMPARATOR_H_
#define XSQL_EVAL_COMPARATOR_H_

#include <optional>

#include "ast/ast.h"
#include "oid/oid.h"

namespace xsql {

/// Comparable-value comparison: numerals compare numerically (ints and
/// reals mix), strings lexicographically, booleans false<true; atoms and
/// id-terms support only equality. nullopt means "not comparable under
/// an ordered comparator" (the comparison is then simply not satisfied —
/// at runtime an inapplicable comparison yields no answers; *static*
/// type errors are the type checker's business, §6).
std::optional<int> CompareOids(const Oid& a, const Oid& b);

/// True if the single pair (a, b) stands in relation `op`.
bool OidsRelate(const Oid& a, CompOp op, const Oid& b);

/// Quantified comparison of two value sets (§3.2): each side is a path
/// expression's value; `some`/`all` quantify over the side's elements.
/// An unquantified side must be a singleton (the paper only omits the
/// quantifier when the value is known to be a singleton, e.g. `20`);
/// empty or multi-valued unquantified sides make the comparison false.
bool EvalComparison(const OidSet& lhs, Quant lq, CompOp op, Quant rq,
                    const OidSet& rhs);

/// Set comparators (§3.2): contains / containsEq / subset / subsetEq /
/// setEq on value sets.
bool EvalSetComparison(const OidSet& lhs, SetOp op, const OidSet& rhs);

}  // namespace xsql

#endif  // XSQL_EVAL_COMPARATOR_H_
