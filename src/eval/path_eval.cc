#include "eval/path_eval.h"

#include "obs/metrics.h"
#include "obs/trace.h"
#include "store/catalog.h"

namespace xsql {

bool PathEvaluator::SortAdmits(const Variable& var, const Oid& oid) const {
  switch (var.sort) {
    case VarSort::kIndividual:
      return true;
    case VarSort::kClass:
      return db_.graph().IsClass(oid);
    case VarSort::kMethod:
      return db_.graph().IsInstanceOf(oid, builtin::MetaMethod());
    case VarSort::kPath:
      return oid.is_term() && oid.term_fn() == "path";
  }
  return false;
}

OidSet PathEvaluator::DomainFor(const Variable& var) const {
  switch (var.sort) {
    case VarSort::kClass:
      return db_.graph().Extent(builtin::MetaClass());
    case VarSort::kMethod:
      return db_.graph().Extent(builtin::MetaMethod());
    default:
      if (opts_.var_domain) return opts_.var_domain(var);
      return db_.ActiveDomain();
  }
}

Result<Oid> PathEvaluator::EvalIdTerm(const IdTerm& term,
                                      const Binding& binding) {
  switch (term.kind) {
    case IdTerm::Kind::kConst:
      return term.value;
    case IdTerm::Kind::kVar:
      if (!binding.Bound(term.var)) {
        return Status::RuntimeError("unbound variable " + term.var.ToString());
      }
      return binding.Get(term.var);
    case IdTerm::Kind::kApply: {
      std::vector<Oid> args;
      args.reserve(term.args.size());
      for (const IdTerm& arg : term.args) {
        XSQL_ASSIGN_OR_RETURN(Oid value, EvalIdTerm(arg, binding));
        args.push_back(std::move(value));
      }
      return invoker_->ResolveIdFunction(term.fn, std::move(args));
    }
    case IdTerm::Kind::kNameRef:
      return Status::RuntimeError("unresolved name '" + term.name +
                                  "' (run ResolveNames)");
  }
  return Status::RuntimeError("bad id-term");
}

Status PathEvaluator::Enumerate(const PathExpr& path, Binding* binding,
                                const TailCallback& cb) {
  static obs::Counter& enumerations =
      obs::MetricsRegistry::Global().GetCounter("xsql.path.enumerations");
  enumerations.Inc();
  obs::Span span("path/enumerate", [&] { return path.ToString(); });
  if (span.active()) {
    // Count the tails this enumeration yields; only pay the wrapper
    // when a tracer is listening.
    TailCallback counted = [&](const Oid& tail) -> Status {
      span.AddRows(1);
      return cb(tail);
    };
    return EnumerateImpl(path, binding, counted);
  }
  return EnumerateImpl(path, binding, cb);
}

Status PathEvaluator::EnumerateImpl(const PathExpr& path, Binding* binding,
                                    const TailCallback& cb) {
  const IdTerm& head = path.head;
  if (head.is_var() && !binding->Bound(head.var)) {
    // Unbound head: iterate candidate oids (Theorem 6.1(2) plugs range
    // pruning in via opts_.var_domain).
    for (const Oid& candidate : DomainFor(head.var)) {
      if (!SortAdmits(head.var, candidate)) continue;
      BindScope scope(binding, head.var, candidate);
      XSQL_RETURN_IF_ERROR(StartFrom(path, candidate, binding, cb));
    }
    return Status::OK();
  }
  XSQL_ASSIGN_OR_RETURN(Oid start, EvalIdTerm(head, *binding));
  return StartFrom(path, start, binding, cb);
}

Status PathEvaluator::StartFrom(const PathExpr& path, const Oid& head,
                                Binding* binding, const TailCallback& cb) {
  return Walk(path, 0, head, binding, cb);
}

Status PathEvaluator::Walk(const PathExpr& path, size_t step_index,
                           const Oid& obj, Binding* binding,
                           const TailCallback& cb) {
  XSQL_RETURN_IF_ERROR(ctx_->Step());
  if (step_index == path.steps.size()) return cb(obj);
  const PathStep& step = path.steps[step_index];

  if (step.kind == PathStep::Kind::kPathVar) {
    const Variable& pvar = step.path_var;
    if (binding->Bound(pvar)) {
      // Replay the bound attribute sequence.
      const Oid& bound = binding->Get(pvar);
      if (!bound.is_term() || bound.term_fn() != "path") {
        return Status::OK();
      }
      OidSet frontier;
      frontier.Insert(obj);
      for (const Oid& attr : bound.term_args()) {
        OidSet next;
        for (const Oid& cur : frontier) {
          XSQL_ASSIGN_OR_RETURN(OidSet values, invoker_->Invoke(cur, attr, {}));
          next = OidSet::Union(next, values);
        }
        frontier = std::move(next);
      }
      return Continue(path, step_index, frontier, step.selector, binding, cb);
    }
    std::vector<Oid> seq;
    return WalkPathVar(path, step_index, obj, &seq, 0, binding, cb);
  }

  // Method expression step.
  std::vector<Oid> args;
  args.reserve(step.method.args.size());
  for (const IdTerm& arg : step.method.args) {
    XSQL_ASSIGN_OR_RETURN(Oid value, EvalIdTerm(arg, *binding));
    args.push_back(std::move(value));
  }

  auto invoke_and_continue = [&](const Oid& method) -> Status {
    XSQL_ASSIGN_OR_RETURN(OidSet values, invoker_->Invoke(obj, method, args));
    return Continue(path, step_index, values, step.selector, binding, cb);
  };

  if (step.method.name_is_var) {
    const Variable& mvar = step.method.name_var;
    if (binding->Bound(mvar)) return invoke_and_continue(binding->Get(mvar));
    for (const Oid& method : invoker_->MethodsOn(obj, args.size())) {
      BindScope scope(binding, mvar, method);
      XSQL_RETURN_IF_ERROR(invoke_and_continue(method));
    }
    return Status::OK();
  }
  return invoke_and_continue(step.method.name);
}

Status PathEvaluator::WalkPathVar(const PathExpr& path, size_t step_index,
                                  const Oid& obj, std::vector<Oid>* seq,
                                  size_t depth, Binding* binding,
                                  const TailCallback& cb) {
  // Bind the sequence collected so far and continue with the rest of the
  // path from `obj` (path variables match sequences of length >= 0).
  {
    Oid bound = Oid::Term("path", *seq);
    BindScope scope(binding, path.steps[step_index].path_var, bound);
    OidSet singleton;
    singleton.Insert(obj);
    XSQL_RETURN_IF_ERROR(Continue(path, step_index, singleton,
                                  path.steps[step_index].selector, binding,
                                  cb));
  }
  // The length cap is a language-semantics policy (a path variable
  // matches sequences up to this length), so truncation is silent.
  if (depth >= ctx_->limits().max_path_var_len) return Status::OK();
  for (const Oid& attr : invoker_->MethodsOn(obj, 0)) {
    XSQL_ASSIGN_OR_RETURN(OidSet values, invoker_->Invoke(obj, attr, {}));
    for (const Oid& next : values) {
      seq->push_back(attr);
      Status st = WalkPathVar(path, step_index, next, seq, depth + 1, binding, cb);
      seq->pop_back();
      XSQL_RETURN_IF_ERROR(st);
    }
  }
  return Status::OK();
}

Status PathEvaluator::Continue(const PathExpr& path, size_t step_index,
                               const OidSet& values,
                               const std::optional<IdTerm>& selector,
                               Binding* binding, const TailCallback& cb) {
  if (!selector.has_value()) {
    for (const Oid& v : values) {
      XSQL_RETURN_IF_ERROR(Walk(path, step_index + 1, v, binding, cb));
    }
    return Status::OK();
  }
  const IdTerm& sel = *selector;
  if (sel.is_var() && !binding->Bound(sel.var)) {
    for (const Oid& v : values) {
      if (!SortAdmits(sel.var, v)) continue;
      BindScope scope(binding, sel.var, v);
      XSQL_RETURN_IF_ERROR(Walk(path, step_index + 1, v, binding, cb));
    }
    return Status::OK();
  }
  XSQL_ASSIGN_OR_RETURN(Oid target, EvalIdTerm(sel, *binding));
  if (values.Contains(target)) {
    return Walk(path, step_index + 1, target, binding, cb);
  }
  return Status::OK();
}

Result<OidSet> PathEvaluator::Value(const PathExpr& path,
                                    const Binding& binding) {
  static obs::Counter& values =
      obs::MetricsRegistry::Global().GetCounter("xsql.path.values");
  values.Inc();
  // A ground path's value: run Enumerate with an (already complete)
  // binding and collect tails. Unbound variables surface as errors from
  // EvalIdTerm / as enumeration — forbid the latter by checking first.
  OidSet tails;
  Binding scratch = binding;
  Status st = EnumerateImpl(path, &scratch,
                        [&tails](const Oid& tail) -> Status {
                          tails.Insert(tail);
                          return Status::OK();
                        });
  if (!st.ok()) return st;
  return tails;
}

}  // namespace xsql
