#include "eval/oid_function.h"

namespace xsql {

Status OidFunctionTable::RecordScalar(const Oid& oid, const Oid& attr,
                                      const Oid& value) {
  auto& attrs = objects_[oid];
  auto it = attrs.find(attr);
  if (it == attrs.end()) {
    attrs.emplace(attr, AttrValue::Scalar(value));
    return Status::OK();
  }
  if (it->second.set_valued() || !(it->second.scalar() == value)) {
    return Status::RuntimeError(
        "ill-defined query: object " + oid.ToString() +
        " receives conflicting values for attribute " + attr.ToString() +
        " (" + it->second.ToString() + " vs " + value.ToString() + ")");
  }
  return Status::OK();
}

Status OidFunctionTable::RecordSet(const Oid& oid, const Oid& attr,
                                   const OidSet& value) {
  auto& attrs = objects_[oid];
  auto it = attrs.find(attr);
  if (it == attrs.end()) {
    attrs.emplace(attr, AttrValue::Set(value));
    return Status::OK();
  }
  if (!it->second.set_valued() || !(it->second.set() == value)) {
    return Status::RuntimeError(
        "ill-defined query: object " + oid.ToString() +
        " receives conflicting values for set attribute " + attr.ToString());
  }
  return Status::OK();
}

Status OidFunctionTable::Accumulate(const Oid& oid, const Oid& attr,
                                    const Oid& elem) {
  auto& attrs = objects_[oid];
  auto it = attrs.find(attr);
  if (it == attrs.end()) {
    OidSet s;
    s.Insert(elem);
    attrs.emplace(attr, AttrValue::Set(std::move(s)));
    return Status::OK();
  }
  if (!it->second.set_valued()) {
    return Status::RuntimeError("attribute " + attr.ToString() +
                                " mixes scalar and grouped-set uses");
  }
  it->second.mutable_set().Insert(elem);
  return Status::OK();
}

}  // namespace xsql
