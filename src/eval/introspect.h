#ifndef XSQL_EVAL_INTROSPECT_H_
#define XSQL_EVAL_INTROSPECT_H_

#include "common/status.h"
#include "store/database.h"

namespace xsql {

/// Installs the catalog-as-methods interface (§2: "the system catalogue
/// [is] part of the class hierarchy"). Classes are objects — instances
/// of the meta-class `Class` — so giving that meta-class ordinary
/// (native) methods makes the schema queryable with the very same
/// path-expression machinery used for data:
///
///   SELECT A WHERE Person.attributes[A]       -- visible attributes
///   SELECT S WHERE TurboEngine.superclasses[S]
///   SELECT S WHERE PistonEngine.subclasses[S]
///   SELECT O FROM Class C WHERE C.instances[O] and ...
///
/// `superclasses`/`subclasses` are strict, matching the paper's
/// subclassOf. Signatures are declared on the meta-class so the typing
/// machinery treats these like any other method.
Status InstallIntrospection(Database* db);

}  // namespace xsql

#endif  // XSQL_EVAL_INTROSPECT_H_
