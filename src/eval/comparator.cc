#include "eval/comparator.h"

#include <cmath>

namespace xsql {

std::optional<int> CompareOids(const Oid& a, const Oid& b) {
  if (a.is_numeric() && b.is_numeric()) {
    double x = a.numeric_value();
    double y = b.numeric_value();
    // NaN is unordered against everything (itself included): report
    // "incomparable" rather than a bogus 0, which would make both
    // `NaN <= v` and `NaN >= v` hold.
    if (std::isnan(x) || std::isnan(y)) return std::nullopt;
    return x < y ? -1 : (x > y ? 1 : 0);
  }
  if (a.is_string() && b.is_string()) {
    int c = a.str().compare(b.str());
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  if (a.is_bool() && b.is_bool()) {
    int x = a.bool_value() ? 1 : 0;
    int y = b.bool_value() ? 1 : 0;
    return x - y;
  }
  return std::nullopt;
}

bool OidsRelate(const Oid& a, CompOp op, const Oid& b) {
  if (op == CompOp::kEq) return a == b;
  if (op == CompOp::kNe) return !(a == b);
  std::optional<int> c = CompareOids(a, b);
  if (!c.has_value()) return false;
  switch (op) {
    case CompOp::kLt:
      return *c < 0;
    case CompOp::kLe:
      return *c <= 0;
    case CompOp::kGt:
      return *c > 0;
    case CompOp::kGe:
      return *c >= 0;
    default:
      return false;
  }
}

namespace {

/// Tests `a op RHS` where RHS is quantified.
bool RelateToSet(const Oid& a, CompOp op, Quant rq, const OidSet& rhs) {
  switch (rq) {
    case Quant::kNone:
      return rhs.size() == 1 && OidsRelate(a, op, *rhs.begin());
    case Quant::kSome:
      for (const Oid& b : rhs) {
        if (OidsRelate(a, op, b)) return true;
      }
      return false;
    case Quant::kAll:
      for (const Oid& b : rhs) {
        if (!OidsRelate(a, op, b)) return false;
      }
      return true;
  }
  return false;
}

}  // namespace

bool EvalComparison(const OidSet& lhs, Quant lq, CompOp op, Quant rq,
                    const OidSet& rhs) {
  switch (lq) {
    case Quant::kNone:
      return lhs.size() == 1 && RelateToSet(*lhs.begin(), op, rq, rhs);
    case Quant::kSome:
      for (const Oid& a : lhs) {
        if (RelateToSet(a, op, rq, rhs)) return true;
      }
      return false;
    case Quant::kAll:
      for (const Oid& a : lhs) {
        if (!RelateToSet(a, op, rq, rhs)) return false;
      }
      return true;
  }
  return false;
}

bool EvalSetComparison(const OidSet& lhs, SetOp op, const OidSet& rhs) {
  switch (op) {
    case SetOp::kContains:
      return rhs.SubsetOf(lhs) && lhs.size() > rhs.size();
    case SetOp::kContainsEq:
      return rhs.SubsetOf(lhs);
    case SetOp::kSubset:
      return lhs.SubsetOf(rhs) && lhs.size() < rhs.size();
    case SetOp::kSubsetEq:
      return lhs.SubsetOf(rhs);
    case SetOp::kSetEq:
      return lhs == rhs;
  }
  return false;
}

}  // namespace xsql
