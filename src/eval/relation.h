#ifndef XSQL_EVAL_RELATION_H_
#define XSQL_EVAL_RELATION_H_

#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "oid/oid.h"

namespace xsql {

/// A query answer: a set of tuples of oids (§3.3). Duplicates are not
/// allowed (the paper's queries return relations with set semantics);
/// insertion order of first occurrences is preserved for stable output.
class Relation {
 public:
  Relation() = default;
  explicit Relation(std::vector<std::string> columns)
      : columns_(std::move(columns)) {}

  const std::vector<std::string>& columns() const { return columns_; }
  size_t arity() const { return columns_.size(); }
  const std::vector<std::vector<Oid>>& rows() const { return rows_; }
  size_t size() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }

  /// Adds a row unless already present. Row width must match arity.
  Status AddRow(std::vector<Oid> row);

  bool ContainsRow(const std::vector<Oid>& row) const {
    return index_.contains(row);
  }

  /// Single-column relations used as sets (subquery results, §5).
  Result<OidSet> AsSet() const;

  /// SQL set operators on computed relations (§3.3). Arity must agree.
  static Result<Relation> Union(const Relation& a, const Relation& b);
  static Result<Relation> Minus(const Relation& a, const Relation& b);
  static Result<Relation> Intersect(const Relation& a, const Relation& b);

  std::string ToString() const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<Oid>> rows_;
  std::set<std::vector<Oid>> index_;
};

}  // namespace xsql

#endif  // XSQL_EVAL_RELATION_H_
