#ifndef XSQL_EVAL_EVALUATOR_H_
#define XSQL_EVAL_EVALUATOR_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "ast/ast.h"
#include "common/exec_context.h"
#include "common/status.h"
#include "eval/binding.h"
#include "eval/path_eval.h"
#include "eval/relation.h"
#include "oid/oid.h"
#include "store/database.h"
#include "store/index.h"
#include "store/method.h"
#include "typing/planner.h"
#include "typing/range.h"

namespace xsql {

/// A method implemented by a native C++ function.
class NativeMethodBody : public MethodBody {
 public:
  using Fn = std::function<Result<OidSet>(Database&, const Oid& receiver,
                                          const std::vector<Oid>& args)>;

  NativeMethodBody(int arity, bool set_valued, Fn fn)
      : arity_(arity), set_valued_(set_valued), fn_(std::move(fn)) {}

  int arity() const override { return arity_; }
  bool set_valued() const override { return set_valued_; }
  std::string kind() const override { return "native"; }
  const Fn& fn() const { return fn_; }

 private:
  int arity_;
  bool set_valued_;
  Fn fn_;
};

/// A method defined by an XSQL query (§5, the ALTER CLASS ... SELECT
/// (M @ args) = expr ... OID X ... form). Invocation binds the receiver
/// variable and the parameters, evaluates the WHERE clause (left to
/// right — nested UPDATEs rely on that order, §5) and collects the
/// values of the result expression.
class QueryMethodBody : public MethodBody {
 public:
  QueryMethodBody(Oid method, std::vector<Variable> params,
                  Variable receiver_var, ValueExpr result_expr,
                  std::vector<FromEntry> from,
                  std::shared_ptr<Condition> where, bool set_valued)
      : method_(std::move(method)),
        params_(std::move(params)),
        receiver_var_(std::move(receiver_var)),
        result_expr_(std::move(result_expr)),
        from_(std::move(from)),
        where_(std::move(where)),
        set_valued_(set_valued) {}

  int arity() const override { return static_cast<int>(params_.size()); }
  bool set_valued() const override { return set_valued_; }
  std::string kind() const override { return "query"; }

  const Oid& method() const { return method_; }
  const std::vector<Variable>& params() const { return params_; }
  const Variable& receiver_var() const { return receiver_var_; }
  const ValueExpr& result_expr() const { return result_expr_; }
  const std::vector<FromEntry>& from() const { return from_; }
  const std::shared_ptr<Condition>& where() const { return where_; }

 private:
  Oid method_;
  std::vector<Variable> params_;
  Variable receiver_var_;
  ValueExpr result_expr_;
  std::vector<FromEntry> from_;
  std::shared_ptr<Condition> where_;
  bool set_valued_;
};

/// Hook the evaluator uses to resolve view id-functions (§4.2); the
/// Session's ViewManager implements it.
class ViewResolver {
 public:
  virtual ~ViewResolver() = default;
  virtual bool IsView(const std::string& fn) const = 0;
  virtual Status EnsureMaterialized(const std::string& fn) = 0;
};

/// Evaluation controls.
struct EvalOptions {
  /// Theorem 6.1(2): restrict v-selector instantiation to A(X).
  bool use_range_pruning = true;
  /// Ranges from a strict-typing witness (null: no pruning possible).
  const RangeMap* ranges = nullptr;
  /// Explicit order of the top-level WHERE conjuncts (a permutation of
  /// their indices); used by the Theorem 6.1(1) plan-independence tests.
  std::vector<size_t> conjunct_order;
  /// Class whose instances created objects become (OID FUNCTION
  /// queries); defaults to the builtin Object class, views pass their
  /// view class.
  std::optional<Oid> result_class;
  /// Optional [BERT89]-style path indexes. A conjunct of the shape
  /// `X.a1...an[value]` whose head variable is FROM-declared with a
  /// matching fresh index is answered by reverse lookup instead of a
  /// forward sweep. Stale indexes are ignored (never incorrect).
  const PathIndexSet* indexes = nullptr;
  /// Cost-based plan for this query (see Planner): selectivity order
  /// over the FROM extents, ranks over the WHERE conjuncts, hash-join
  /// markings. Advisory — the conjunct driver validates it against the
  /// query's shape and ignores it on any mismatch (or when
  /// `allow_reorder` is off, or when `conjunct_order` fixes an explicit
  /// order). Must outlive the evaluation.
  const QueryPlan* plan = nullptr;
};

/// The result of running one query.
struct EvalOutput {
  Relation relation;
  /// When the query had an OID FUNCTION OF clause: the created objects'
  /// oids, now materialized in the database.
  std::vector<Oid> created;
  bool objects_created = false;
};

/// Renders an execution result as the human-readable text the server
/// ships in kResult frames (also what the client REPLs print). Lives
/// here rather than in the server so recovery can re-render replies
/// while rebuilding the request-dedup table from the WAL.
std::string RenderEvalOutput(const EvalOutput& out);

/// Query evaluation engine (§3.4, §5 semantics).
///
/// `Run` is the production evaluator: nested loops driven by the FROM
/// clause and by path-expression enumeration, with the Theorem 6.1(2)
/// range pruning when a strict-typing witness is supplied. `RunNaive`
/// is the literal §3.4 semantics — enumerate *all* substitutions over
/// the active domain and test — kept as the reference implementation
/// for differential testing.
class Evaluator : public MethodInvoker {
 public:
  explicit Evaluator(Database* db, ViewResolver* views = nullptr,
                     ExecutionContext* ctx = nullptr)
      : db_(db),
        views_(views),
        ctx_(ctx != nullptr ? ctx : ExecutionContext::Unlimited()) {}

  /// Rebinds the guardrail context (null restores Unlimited()). The
  /// Session points a long-lived evaluator at each statement's context.
  void set_exec_context(ExecutionContext* ctx) {
    ctx_ = ctx != nullptr ? ctx : ExecutionContext::Unlimited();
  }
  ExecutionContext* exec_context() { return ctx_; }

  /// Evaluates a query; `outer` supplies bindings of correlated
  /// variables (subqueries, method bodies).
  Result<EvalOutput> Run(const Query& query, const EvalOptions& opts = {},
                         const Binding* outer = nullptr);

  /// Evaluates a query expression (UNION/MINUS/INTERSECT tree).
  Result<Relation> RunQueryExpr(const QueryExpr& expr,
                                const EvalOptions& opts = {},
                                const Binding* outer = nullptr);

  /// Reference evaluator: full substitution enumeration (§3.4).
  Result<EvalOutput> RunNaive(const Query& query);

  /// Executes an UPDATE CLASS statement under `binding` (§5); free
  /// variables in the target paths are enumerated.
  Status ExecuteUpdate(const UpdateClassStmt& update, Binding* binding);

  /// Ground truth test of a condition (all variables bound).
  Result<bool> TestCondition(const Condition& cond, Binding* binding);

  /// Value of a value expression under a binding.
  Result<OidSet> EvalValue(const ValueExpr& expr, Binding* binding,
                           const EvalOptions& opts = {});

  // --- MethodInvoker ---
  Result<OidSet> Invoke(const Oid& receiver, const Oid& method,
                        const std::vector<Oid>& args) override;
  OidSet MethodsOn(const Oid& receiver, size_t arity) override;
  Result<Oid> ResolveIdFunction(const std::string& fn,
                                const std::vector<Oid>& args) override;

  Database* db() { return db_; }

 private:
  friend class ConjunctDriver;

  /// The body of Run; the public wrapper adds the trace span and the
  /// eval metrics around it.
  Result<EvalOutput> RunImpl(const Query& query, const EvalOptions& opts,
                             const Binding* outer);

  PathEvaluator MakePathEvaluator(const EvalOptions& opts);

  /// Runs the FROM loops and the WHERE conjunct driver, calling `cb`
  /// once per solution (binding extended in place).
  Status ForEachSolution(const std::vector<FromEntry>& from,
                         const std::shared_ptr<Condition>& where,
                         Binding* binding, const EvalOptions& opts,
                         PathEvaluator* pe, std::vector<size_t> order,
                         const std::function<Status()>& cb);

  /// Runs a query-defined method body.
  Result<OidSet> InvokeQueryMethod(const QueryMethodBody& body,
                                   const Oid& receiver,
                                   const std::vector<Oid>& args);

  /// Direct classes of an oid for method resolution, including the
  /// builtin class of literals.
  std::vector<Oid> ClassesForInvoke(const Oid& oid) const;

  Database* db_;
  ViewResolver* views_;
  ExecutionContext* ctx_;
  int next_query_id_ = 0;
};

}  // namespace xsql

#endif  // XSQL_EVAL_EVALUATOR_H_
