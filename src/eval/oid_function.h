#ifndef XSQL_EVAL_OID_FUNCTION_H_
#define XSQL_EVAL_OID_FUNCTION_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "oid/oid.h"
#include "store/object.h"

namespace xsql {

/// Assembles the objects created by a query with an OID FUNCTION OF
/// clause (§4.1).
///
/// The id-function is the functional id-term constructor: the object
/// generated from bindings x, w is `f(x, w)` [KW89]. Two result tuples
/// mapping to the same oid must describe the same object — conflicting
/// scalar attribute values make the query *ill-defined*, a run-time
/// error (§4.1). Set attributes built with the `{W}` syntax accumulate
/// instead, which is how OID FUNCTION OF doubles as GROUP BY.
class OidFunctionTable {
 public:
  explicit OidFunctionTable(std::string fn_name)
      : fn_name_(std::move(fn_name)) {}

  /// The oid for one binding of the OID FUNCTION OF variables.
  Oid MakeOid(const std::vector<Oid>& args) const {
    return Oid::Term(fn_name_, args);
  }

  /// Records a scalar attribute of the object `oid`; a differing
  /// existing value is an ill-defined query.
  Status RecordScalar(const Oid& oid, const Oid& attr, const Oid& value);

  /// Records a whole set value for the attribute (conflicts as above).
  Status RecordSet(const Oid& oid, const Oid& attr, const OidSet& value);

  /// Accumulates one element into a grouped set attribute (`{W}`).
  Status Accumulate(const Oid& oid, const Oid& attr, const Oid& elem);

  /// Marks an object as existing even if no attribute was recorded yet.
  void Touch(const Oid& oid) { objects_[oid]; }

  /// The assembled objects, keyed by created oid.
  const std::map<Oid, std::map<Oid, AttrValue>>& objects() const {
    return objects_;
  }

  const std::string& fn_name() const { return fn_name_; }

 private:
  std::string fn_name_;
  std::map<Oid, std::map<Oid, AttrValue>> objects_;
};

}  // namespace xsql

#endif  // XSQL_EVAL_OID_FUNCTION_H_
