#include "eval/evaluator.h"

#include <algorithm>
#include <memory>
#include <unordered_map>

#include "eval/aggregate.h"
#include "eval/comparator.h"
#include "eval/oid_function.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "store/catalog.h"

namespace xsql {

std::string RenderEvalOutput(const EvalOutput& out) {
  std::string text;
  if (out.objects_created) {
    text += "(" + std::to_string(out.created.size()) + " objects created)\n";
  }
  const Relation& rel = out.relation;
  if (rel.columns().empty()) return text;
  for (size_t i = 0; i < rel.columns().size(); ++i) {
    if (i > 0) text += " | ";
    text += rel.columns()[i];
  }
  text += "\n";
  for (const auto& row : rel.rows()) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) text += " | ";
      text += row[i].ToString();
    }
    text += "\n";
  }
  text += "(" + std::to_string(rel.size()) + " rows)\n";
  return text;
}

}  // namespace xsql

namespace xsql {

namespace {

bool PathHasUnboundVar(const PathExpr& path, const Binding& binding) {
  auto scan_term = [&](const IdTerm& t, auto&& self) -> bool {
    if (t.is_var()) return !binding.Bound(t.var);
    if (t.is_apply()) {
      for (const IdTerm& a : t.args) {
        if (self(a, self)) return true;
      }
    }
    return false;
  };
  if (scan_term(path.head, scan_term)) return true;
  for (const PathStep& step : path.steps) {
    if (step.kind == PathStep::Kind::kPathVar) {
      if (!binding.Bound(step.path_var)) return true;
    } else {
      if (step.method.name_is_var && !binding.Bound(step.method.name_var)) {
        return true;
      }
      for (const IdTerm& a : step.method.args) {
        if (scan_term(a, scan_term)) return true;
      }
    }
    if (step.selector.has_value() && scan_term(*step.selector, scan_term)) {
      return true;
    }
  }
  return false;
}

/// §3.1 applicability: some declared signature of `method` covers a
/// class of `obj` — the attribute may be undefined (null) yet still
/// applicable; outside every signature it is inapplicable (type error).
bool IsApplicable(const Database& db, const Oid& method, const Oid& obj) {
  for (const auto& [cls, sig] : db.signatures().AllFor(method)) {
    if (db.IsInstanceOf(obj, cls)) return true;
  }
  return false;
}

/// First path (document order) in a value expression that still has an
/// unbound variable, or nullptr.
const PathExpr* FirstOpenPath(const ValueExpr& expr, const Binding& binding) {
  std::vector<const PathExpr*> paths;
  CollectPathExprs(expr, &paths);
  for (const PathExpr* p : paths) {
    if (PathHasUnboundVar(*p, binding)) return p;
  }
  return nullptr;
}

}  // namespace

// ---------------------------------------------------------------------
// Conjunct driver
// ---------------------------------------------------------------------

/// Enumerates the solutions of a conjunction by treating path
/// expressions (and OR groups of them) as binding generators and
/// everything else as filters, in a greedy ready-first order (or the
/// explicit order the caller fixed). This is the "sequence of nested
/// loops" evaluation §6.2 describes.
class ConjunctDriver {
 public:
  ConjunctDriver(Evaluator* ev, PathEvaluator* pe,
                 std::vector<const Condition*> conjuncts,
                 std::vector<size_t> order,
                 std::vector<const FromEntry*> froms = {},
                 const EvalOptions* opts = nullptr)
      : ev_(ev),
        pe_(pe),
        conjuncts_(std::move(conjuncts)),
        froms_(std::move(froms)),
        opts_(opts) {
    if (!order.empty() && order.size() == conjuncts_.size()) {
      fixed_order_ = std::move(order);
    }
    used_.assign(conjuncts_.size(), false);
    from_used_.assign(froms_.size(), false);
    // A plan applies only when its shape matches this driver's: same
    // conjunct and FROM counts, reordering allowed, and no explicit
    // order overriding it. Anything else silently falls back to the
    // greedy ready-first schedule — a plan can reorder work, never
    // change what work means.
    if (opts_ != nullptr && opts_->plan != nullptr && fixed_order_.empty() &&
        opts_->plan->allow_reorder &&
        opts_->plan->conjunct_rank.size() == conjuncts_.size() &&
        opts_->plan->hash_joinable.size() == conjuncts_.size() &&
        opts_->plan->from_order.size() == froms_.size()) {
      plan_ = opts_->plan;
    }
  }

  Status Enumerate(Binding* binding, const std::function<Status()>& done) {
    return Step(0, binding, done);
  }

 private:
  struct PickResult {
    enum class Kind : uint8_t { kConjunct, kFrom, kHashJoin };
    Kind kind = Kind::kConjunct;
    size_t index = 0;      // conjunct index (kConjunct, kHashJoin)
    size_t lhs_from = 0;   // kHashJoin: FROM slot of the lhs head var
    size_t rhs_from = 0;   // kHashJoin: FROM slot of the rhs head var
  };

  Status Step(size_t used_count, Binding* binding,
              const std::function<Status()>& done) {
    if (used_count == conjuncts_.size() + froms_.size()) return done();
    PickResult pick = Pick(*binding);
    if (pick.kind == PickResult::Kind::kHashJoin) {
      // One hash join consumes the conjunct and both FROM entries: the
      // join binds both variables and already checked extent
      // membership, so the entries must not re-enumerate.
      used_[pick.index] = true;
      from_used_[pick.lhs_from] = true;
      from_used_[pick.rhs_from] = true;
      Status st = EvalHashJoin(
          conjuncts_[pick.index], pick.lhs_from, pick.rhs_from, binding,
          [&]() -> Status { return Step(used_count + 3, binding, done); });
      used_[pick.index] = false;
      from_used_[pick.lhs_from] = false;
      from_used_[pick.rhs_from] = false;
      return st;
    }
    auto continue_step = [&]() -> Status {
      return Step(used_count + 1, binding, done);
    };
    if (pick.kind == PickResult::Kind::kFrom) {
      from_used_[pick.index] = true;
      Status st = EvalFromEntry(*froms_[pick.index], binding, continue_step);
      from_used_[pick.index] = false;
      return st;
    }
    used_[pick.index] = true;
    Status st = EvalConjunct(conjuncts_[pick.index], binding, continue_step);
    used_[pick.index] = false;
    return st;
  }

  static PickResult PickConjunct(size_t i) {
    return {PickResult::Kind::kConjunct, i, 0, 0};
  }
  static PickResult PickFrom(size_t j) {
    return {PickResult::Kind::kFrom, j, 0, 0};
  }

  PickResult Pick(const Binding& binding) const {
    if (!fixed_order_.empty()) {
      for (size_t i : fixed_order_) {
        if (!used_[i]) return PickConjunct(i);
      }
    }
    // 1. Cheap filters: FROM entries whose variable is already bound
    //    (instance-of membership check, §3.4 consistency).
    for (size_t j = 0; j < froms_.size(); ++j) {
      if (!from_used_[j] && binding.Bound(froms_[j]->var)) {
        return PickFrom(j);
      }
    }
    // 2. A conjunct whose evaluation will not fall back to active-domain
    //    enumeration: a path with a determined head, a bound filter.
    //    With a plan, the cheapest-ranked ready conjunct wins; without,
    //    the first ready one (the historical greedy order).
    {
      size_t best = conjuncts_.size();
      for (size_t i = 0; i < conjuncts_.size(); ++i) {
        if (used_[i]) continue;
        if (!Ready(conjuncts_[i], binding)) continue;
        if (plan_ == nullptr) return PickConjunct(i);
        if (best == conjuncts_.size() ||
            plan_->conjunct_rank[i] < plan_->conjunct_rank[best]) {
          best = i;
        }
      }
      if (best != conjuncts_.size()) return PickConjunct(best);
    }
    // 2b. A planned hash join whose head variables are both still free:
    //    binds two variables at once for the price of one pass over
    //    each side instead of the nested-loop product stage 3 would
    //    start.
    if (plan_ != nullptr) {
      for (size_t i = 0; i < conjuncts_.size(); ++i) {
        if (used_[i] || !plan_->hash_joinable[i]) continue;
        size_t lhs_from = 0;
        size_t rhs_from = 0;
        if (HashJoinSlots(conjuncts_[i], binding, &lhs_from, &rhs_from)) {
          return {PickResult::Kind::kHashJoin, i, lhs_from, rhs_from};
        }
      }
    }
    // 3. A FROM extent as generator — preferring one that unblocks some
    //    pending path conjunct (its variable is an unbound path head).
    //    With a plan, ties and the fallback follow the selectivity
    //    order (smallest candidate set first).
    std::vector<size_t> from_order;
    if (plan_ != nullptr) {
      from_order = plan_->from_order;
    } else {
      from_order.resize(froms_.size());
      for (size_t j = 0; j < froms_.size(); ++j) from_order[j] = j;
    }
    size_t first_from = froms_.size();
    for (size_t j : from_order) {
      if (from_used_[j]) continue;
      if (first_from == froms_.size()) first_from = j;
      for (size_t i = 0; i < conjuncts_.size(); ++i) {
        if (used_[i]) continue;
        if (BlockedOnHead(conjuncts_[i], froms_[j]->var, binding)) {
          return PickFrom(j);
        }
      }
    }
    if (first_from != froms_.size()) return PickFrom(first_from);
    // 4. Fallback: any remaining conjunct (enumerates a domain) — the
    //    cheapest-ranked one under a plan.
    {
      size_t best = conjuncts_.size();
      for (size_t i = 0; i < conjuncts_.size(); ++i) {
        if (used_[i]) continue;
        if (plan_ == nullptr) return PickConjunct(i);
        if (best == conjuncts_.size() ||
            plan_->conjunct_rank[i] < plan_->conjunct_rank[best]) {
          best = i;
        }
      }
      if (best != conjuncts_.size()) return PickConjunct(best);
    }
    return PickConjunct(0);
  }

  /// Resolves a hash-joinable conjunct's head variables to their FROM
  /// slots. Fails (returns false) unless both variables are unbound,
  /// declared over constant classes, and their entries still unused —
  /// the preconditions for the join to replace the two extent loops.
  bool HashJoinSlots(const Condition* cond, const Binding& binding,
                     size_t* lhs_from, size_t* rhs_from) const {
    if (cond->kind != Condition::Kind::kComparison ||
        cond->lhs.kind != ValueExpr::Kind::kPath ||
        cond->rhs.kind != ValueExpr::Kind::kPath ||
        !cond->lhs.path.head.is_var() || !cond->rhs.path.head.is_var()) {
      return false;
    }
    const Variable& lvar = cond->lhs.path.head.var;
    const Variable& rvar = cond->rhs.path.head.var;
    if (lvar == rvar) return false;
    if (binding.Bound(lvar) || binding.Bound(rvar)) return false;
    auto slot = [&](const Variable& var, size_t* out) -> bool {
      for (size_t j = 0; j < froms_.size(); ++j) {
        if (from_used_[j]) continue;
        if (froms_[j]->var == var && froms_[j]->cls.is_const()) {
          *out = j;
          return true;
        }
      }
      return false;
    };
    return slot(lvar, lhs_from) && slot(rvar, rhs_from);
  }

  /// True when `cond` has a path headed by the unbound variable `var` —
  /// enumerating var's FROM extent unblocks it.
  static bool BlockedOnHead(const Condition* cond, const Variable& var,
                            const Binding& binding) {
    if (binding.Bound(var)) return false;
    std::vector<const PathExpr*> paths;
    switch (cond->kind) {
      case Condition::Kind::kStandalonePath:
        paths.push_back(&cond->path);
        break;
      case Condition::Kind::kComparison:
      case Condition::Kind::kSetComparison:
        CollectPathExprs(cond->lhs, &paths);
        CollectPathExprs(cond->rhs, &paths);
        break;
      default:
        return false;
    }
    for (const PathExpr* p : paths) {
      if (p->head.is_var() && p->head.var == var) return true;
    }
    return false;
  }

  Status EvalFromEntry(const FromEntry& entry, Binding* binding,
                       const std::function<Status()>& next) {
    obs::Span span("from", [&] { return entry.ToString(); });
    Database* db = ev_->db();
    auto with_class = [&](const Oid& cls) -> Status {
      if (binding->Bound(entry.var)) {
        if (!db->IsInstanceOf(binding->Get(entry.var), cls)) {
          return Status::OK();
        }
        span.AddRows(1);
        return next();
      }
      const VarRange* range = nullptr;
      if (opts_ != nullptr && opts_->use_range_pruning &&
          opts_->ranges != nullptr) {
        auto it = opts_->ranges->find(entry.var);
        if (it != opts_->ranges->end()) range = &it->second;
      }
      for (const Oid& oid : db->Extent(cls)) {
        XSQL_RETURN_IF_ERROR(ev_->ctx_->Step());
        if (range != nullptr && !range->Within(*db, oid)) continue;
        BindScope scope(binding, entry.var, oid);
        span.AddRows(1);
        XSQL_RETURN_IF_ERROR(next());
      }
      return Status::OK();
    };
    if (entry.cls.is_var()) {
      const Variable& cvar = entry.cls.var;
      if (binding->Bound(cvar)) return with_class(binding->Get(cvar));
      for (const Oid& cls : db->graph().Extent(builtin::MetaClass())) {
        XSQL_RETURN_IF_ERROR(ev_->ctx_->Step());
        BindScope scope(binding, cvar, cls);
        XSQL_RETURN_IF_ERROR(with_class(cls));
      }
      return Status::OK();
    }
    if (!entry.cls.is_const()) {
      return Status::RuntimeError("FROM class must be a name or variable");
    }
    return with_class(entry.cls.value);
  }

  /// True when the path can evaluate without falling back to domain
  /// enumeration and without hitting unbound method/id-term arguments.
  static bool PathReady(const PathExpr& path, const Binding& binding,
                        bool head_may_enumerate) {
    auto term_args_bound = [&binding](const IdTerm& t, auto&& self) -> bool {
      if (t.is_var()) return binding.Bound(t.var);
      if (t.is_apply()) {
        for (const IdTerm& a : t.args) {
          if (!self(a, self)) return false;
        }
      }
      return true;
    };
    if (path.head.is_var()) {
      if (!head_may_enumerate && !binding.Bound(path.head.var)) return false;
    } else if (!term_args_bound(path.head, term_args_bound)) {
      return false;
    }
    for (const PathStep& step : path.steps) {
      if (step.kind != PathStep::Kind::kMethod) continue;
      for (const IdTerm& arg : step.method.args) {
        if (!term_args_bound(arg, term_args_bound)) return false;
      }
    }
    return true;
  }

  /// The fresh index answering this standalone-path conjunct by reverse
  /// lookup, or nullptr: shape `X.a1...an[v]` with X an unbound
  /// FROM-declared variable, constant attribute names, no arguments, no
  /// intermediate selectors, and an evaluable terminal selector.
  const PathIndex* IndexFor(const Condition* cond,
                            const Binding& binding) const {
    if (opts_ == nullptr || opts_->indexes == nullptr) return nullptr;
    if (cond->kind != Condition::Kind::kStandalonePath) return nullptr;
    const PathExpr& path = cond->path;
    if (!path.head.is_var() || binding.Bound(path.head.var)) return nullptr;
    if (path.steps.empty()) return nullptr;
    std::vector<Oid> attrs;
    for (size_t i = 0; i < path.steps.size(); ++i) {
      const PathStep& step = path.steps[i];
      if (step.kind != PathStep::Kind::kMethod || step.method.name_is_var ||
          !step.method.args.empty()) {
        return nullptr;
      }
      const bool last = i + 1 == path.steps.size();
      if (step.selector.has_value() != last) return nullptr;
      if (last) {
        const IdTerm& sel = *step.selector;
        if (!(sel.is_const() ||
              (sel.is_var() && binding.Bound(sel.var)))) {
          return nullptr;
        }
      }
      attrs.push_back(step.method.name);
    }
    // Anchor class: the head variable's FROM declaration.
    for (const FromEntry* entry : froms_) {
      if (entry->var == path.head.var && entry->cls.is_const()) {
        return opts_->indexes->Find(*ev_->db(), entry->cls.value, attrs);
      }
    }
    return nullptr;
  }

  bool Ready(const Condition* cond, const Binding& binding) const {
    switch (cond->kind) {
      case Condition::Kind::kStandalonePath: {
        const IdTerm& head = cond->path.head;
        if (head.is_var() && !binding.Bound(head.var)) {
          return IndexFor(cond, binding) != nullptr;
        }
        return PathReady(cond->path, binding, /*head_may_enumerate=*/false);
      }
      case Condition::Kind::kComparison:
      case Condition::Kind::kSetComparison: {
        // Ready when every contained path has a determined head and no
        // unbound method/id-term arguments.
        for (const ValueExpr* side : {&cond->lhs, &cond->rhs}) {
          std::vector<const PathExpr*> paths;
          CollectPathExprs(*side, &paths);
          for (const PathExpr* p : paths) {
            if (!PathReady(*p, binding, /*head_may_enumerate=*/false)) {
              return false;
            }
          }
        }
        return true;
      }
      case Condition::Kind::kNot: {
        std::vector<Variable> vars;
        // Negation is safe only when ground.
        Query probe;
        probe.where = cond->children[0];
        for (const Variable& v : CollectVariables(probe)) {
          if (!binding.Bound(v)) return false;
        }
        return true;
      }
      case Condition::Kind::kOr: {
        for (const auto& child : cond->children) {
          if (!Ready(child.get(), binding)) return false;
        }
        return true;
      }
      default:
        return true;
    }
  }

  Status EvalConjunct(const Condition* cond, Binding* binding,
                      const std::function<Status()>& next) {
    obs::Span span("conjunct", [&] { return cond->ToString(); });
    switch (cond->kind) {
      case Condition::Kind::kStandalonePath: {
        if (const PathIndex* index = IndexFor(cond, *binding)) {
          static obs::Counter& lookups =
              obs::MetricsRegistry::Global().GetCounter("xsql.index.lookups");
          lookups.Inc();
          obs::Span index_span("index/lookup",
                               [&] { return cond->path.ToString(); });
          // Reverse evaluation via the [BERT89] path index: bind the
          // head variable to each object reaching the terminal value.
          PathEvaluator pe(*ev_->db(), ev_, PathEvalOptions{ev_->ctx_});
          const IdTerm& sel = *cond->path.steps.back().selector;
          XSQL_ASSIGN_OR_RETURN(Oid value, pe.EvalIdTerm(sel, *binding));
          for (const Oid& head : index->Lookup(value)) {
            BindScope scope(binding, cond->path.head.var, head);
            index_span.AddRows(1);
            XSQL_RETURN_IF_ERROR(next());
          }
          return Status::OK();
        }
        return pe_->Enumerate(cond->path, binding,
                              [&](const Oid&) -> Status {
                                span.AddRows(1);
                                return next();
                              });
      }
      case Condition::Kind::kAnd: {
        std::vector<const Condition*> subs;
        FlattenAnd(*cond, &subs);
        ConjunctDriver sub(ev_, pe_, std::move(subs), {});
        return sub.Enumerate(binding, next);
      }
      case Condition::Kind::kOr: {
        for (const auto& child : cond->children) {
          XSQL_RETURN_IF_ERROR(EvalConjunct(child.get(), binding, next));
        }
        return Status::OK();
      }
      case Condition::Kind::kNot: {
        XSQL_ASSIGN_OR_RETURN(bool truth,
                              ev_->TestCondition(*cond->children[0], binding));
        return truth ? Status::OK() : next();
      }
      case Condition::Kind::kComparison:
      case Condition::Kind::kSetComparison:
        return EnumerateComparison(cond, binding, next);
      case Condition::Kind::kSubclassOf:
        return EnumerateSubclassOf(cond, binding, next);
      case Condition::Kind::kApplicable:
        return EnumerateApplicable(cond, binding, next);
      case Condition::Kind::kUpdate: {
        XSQL_RETURN_IF_ERROR(ev_->ExecuteUpdate(*cond->update, binding));
        return next();
      }
    }
    return Status::RuntimeError("unexpected condition kind");
  }

  /// The Theorem 6.1(2) range for a FROM variable, or null.
  const VarRange* RangeFor(const Variable& var) const {
    if (opts_ == nullptr || !opts_->use_range_pruning ||
        opts_->ranges == nullptr) {
      return nullptr;
    }
    auto it = opts_->ranges->find(var);
    return it == opts_->ranges->end() ? nullptr : &it->second;
  }

  /// Evaluates a variable-variable equality conjunct as a hash join:
  /// builds a table from terminal values to head objects over the
  /// smaller side's candidates, probes it with the larger side's, and
  /// re-tests the exact §3.2 comparison on every candidate pair. The
  /// probe is a *complete* filter for `=` under kNone/kSome quantifiers
  /// — a true comparison needs a shared element — so no solution is
  /// lost; the ground re-test keeps the singleton requirement of kNone
  /// exact. Replaces the O(|L|·|R|) nested loop with O(|L|+|R|) side
  /// evaluations plus output pairs.
  Status EvalHashJoin(const Condition* cond, size_t lhs_from,
                      size_t rhs_from, Binding* binding,
                      const std::function<Status()>& next) {
    static obs::Counter& joins =
        obs::MetricsRegistry::Global().GetCounter("xsql.plan.hash_joins");
    joins.Inc();
    obs::Span span("plan/hash-join", [&] { return cond->ToString(); });
    Database* db = ev_->db();
    auto candidates = [&](const FromEntry& entry) -> Result<std::vector<Oid>> {
      std::vector<Oid> out;
      const VarRange* range = RangeFor(entry.var);
      for (const Oid& oid : db->Extent(entry.cls.value)) {
        XSQL_RETURN_IF_ERROR(ev_->ctx_->Step());
        if (range != nullptr && !range->Within(*db, oid)) continue;
        out.push_back(oid);
      }
      return out;
    };
    XSQL_ASSIGN_OR_RETURN(std::vector<Oid> lhs_cands,
                          candidates(*froms_[lhs_from]));
    XSQL_ASSIGN_OR_RETURN(std::vector<Oid> rhs_cands,
                          candidates(*froms_[rhs_from]));
    // Build over the smaller candidate set, probe with the larger.
    const bool build_left = lhs_cands.size() <= rhs_cands.size();
    const FromEntry& build_entry =
        build_left ? *froms_[lhs_from] : *froms_[rhs_from];
    const FromEntry& probe_entry =
        build_left ? *froms_[rhs_from] : *froms_[lhs_from];
    const ValueExpr& build_expr = build_left ? cond->lhs : cond->rhs;
    const ValueExpr& probe_expr = build_left ? cond->rhs : cond->lhs;
    const std::vector<Oid>& build_cands = build_left ? lhs_cands : rhs_cands;
    const std::vector<Oid>& probe_cands = build_left ? rhs_cands : lhs_cands;

    // Terminal value -> positions (in candidate order) of build heads
    // reaching it.
    std::unordered_map<Oid, std::vector<size_t>, OidHash> table;
    for (size_t bi = 0; bi < build_cands.size(); ++bi) {
      XSQL_RETURN_IF_ERROR(ev_->ctx_->Step());
      BindScope scope(binding, build_entry.var, build_cands[bi]);
      XSQL_ASSIGN_OR_RETURN(OidSet values,
                            ev_->EvalValue(build_expr, binding, *opts_));
      for (const Oid& v : values) table[v].push_back(bi);
    }
    for (const Oid& probe_oid : probe_cands) {
      XSQL_RETURN_IF_ERROR(ev_->ctx_->Step());
      BindScope probe_scope(binding, probe_entry.var, probe_oid);
      XSQL_ASSIGN_OR_RETURN(OidSet values,
                            ev_->EvalValue(probe_expr, binding, *opts_));
      // Distinct partners in candidate order: a pair must surface once
      // no matter how many terminal values it shares.
      std::vector<size_t> partners;
      for (const Oid& v : values) {
        auto it = table.find(v);
        if (it == table.end()) continue;
        partners.insert(partners.end(), it->second.begin(), it->second.end());
      }
      std::sort(partners.begin(), partners.end());
      partners.erase(std::unique(partners.begin(), partners.end()),
                     partners.end());
      for (size_t bi : partners) {
        BindScope build_scope(binding, build_entry.var, build_cands[bi]);
        XSQL_ASSIGN_OR_RETURN(bool truth,
                              ev_->TestCondition(*cond, binding));
        if (!truth) continue;
        span.AddRows(1);
        XSQL_RETURN_IF_ERROR(next());
      }
    }
    return Status::OK();
  }

  /// Binds the free variables of a comparison by enumerating its path
  /// expressions, then tests the ground comparison (§3.4).
  Status EnumerateComparison(const Condition* cond, Binding* binding,
                             const std::function<Status()>& next) {
    const PathExpr* open = FirstOpenPath(cond->lhs, *binding);
    if (open == nullptr) open = FirstOpenPath(cond->rhs, *binding);
    if (open == nullptr) {
      XSQL_ASSIGN_OR_RETURN(bool truth, ev_->TestCondition(*cond, binding));
      return truth ? next() : Status::OK();
    }
    return pe_->Enumerate(*open, binding, [&](const Oid&) -> Status {
      return EnumerateComparison(cond, binding, next);
    });
  }

  /// `"M applicableTo X`: enumerates method-objects for an unbound
  /// method term and tests applicability against the signature store.
  Status EnumerateApplicable(const Condition* cond, Binding* binding,
                             const std::function<Status()>& next) {
    const Database& db = *ev_->db();
    auto with_object = [&](const Oid& method) -> Status {
      auto test = [&](const Oid& obj) -> Status {
        if (IsApplicable(db, method, obj)) return next();
        return Status::OK();
      };
      const IdTerm& target = cond->super;
      if (target.is_var() && !binding->Bound(target.var)) {
        for (const Oid& obj : db.ActiveDomain()) {
          BindScope scope(binding, target.var, obj);
          XSQL_RETURN_IF_ERROR(test(obj));
        }
        return Status::OK();
      }
      PathEvaluator pe(db, ev_, PathEvalOptions{ev_->ctx_});
      XSQL_ASSIGN_OR_RETURN(Oid obj, pe.EvalIdTerm(target, *binding));
      return test(obj);
    };
    const IdTerm& method_term = cond->sub;
    if (method_term.is_var() && !binding->Bound(method_term.var)) {
      for (const Oid& method :
           db.graph().Extent(builtin::MetaMethod())) {
        BindScope scope(binding, method_term.var, method);
        XSQL_RETURN_IF_ERROR(with_object(method));
      }
      return Status::OK();
    }
    PathEvaluator pe(db, ev_, PathEvalOptions{ev_->ctx_});
    XSQL_ASSIGN_OR_RETURN(Oid method, pe.EvalIdTerm(method_term, *binding));
    return with_object(method);
  }

  Status EnumerateSubclassOf(const Condition* cond, Binding* binding,
                             const std::function<Status()>& next) {
    const Database& db = *ev_->db();
    auto with_term = [&](const IdTerm& term,
                         auto&& body) -> Status {  // body(Oid)
      if (term.is_var() && !binding->Bound(term.var)) {
        for (const Oid& cls : db.graph().Extent(builtin::MetaClass())) {
          BindScope scope(binding, term.var, cls);
          XSQL_RETURN_IF_ERROR(body(cls));
        }
        return Status::OK();
      }
      PathEvaluator pe(db, ev_, PathEvalOptions{ev_->ctx_});
      XSQL_ASSIGN_OR_RETURN(Oid value, pe.EvalIdTerm(term, *binding));
      return body(value);
    };
    return with_term(cond->sub, [&](const Oid& sub) -> Status {
      return with_term(cond->super, [&](const Oid& super) -> Status {
        if (db.graph().IsStrictSubclass(sub, super)) return next();
        return Status::OK();
      });
    });
  }

  Evaluator* ev_;
  PathEvaluator* pe_;
  std::vector<const Condition*> conjuncts_;
  std::vector<const FromEntry*> froms_;
  const EvalOptions* opts_;
  /// Validated against this driver's shape in the constructor; null
  /// means greedy ready-first scheduling (the historical behavior).
  const QueryPlan* plan_ = nullptr;
  std::vector<size_t> fixed_order_;
  std::vector<bool> used_;
  std::vector<bool> from_used_;
};

// ---------------------------------------------------------------------
// Evaluator
// ---------------------------------------------------------------------

PathEvaluator Evaluator::MakePathEvaluator(const EvalOptions& opts) {
  PathEvalOptions peo;
  peo.ctx = ctx_;
  if (opts.use_range_pruning && opts.ranges != nullptr) {
    // Theorem 6.1(2): restrict instantiations of each v-selector X to
    // oids within A(X). Candidates are cached per variable.
    const RangeMap* ranges = opts.ranges;
    Database* db = db_;
    auto cache = std::make_shared<std::map<Variable, OidSet>>();
    peo.var_domain = [ranges, db, cache](const Variable& var) -> OidSet {
      auto it = ranges->find(var);
      if (it == ranges->end()) return db->ActiveDomain();
      auto cached = cache->find(var);
      if (cached != cache->end()) return cached->second;
      OidSet candidates = it->second.CandidateOids(*db);
      cache->emplace(var, candidates);
      return candidates;
    };
  }
  return PathEvaluator(*db_, this, std::move(peo));
}

std::vector<Oid> Evaluator::ClassesForInvoke(const Oid& oid) const {
  std::vector<Oid> classes = db_->graph().DirectClassesOf(oid);
  if (oid.is_numeric()) classes.push_back(builtin::Numeral());
  if (oid.is_string()) classes.push_back(builtin::String());
  if (oid.is_bool()) classes.push_back(builtin::Boolean());
  if (oid.is_nil()) classes.push_back(builtin::NilClass());
  return classes;
}

Result<OidSet> Evaluator::Invoke(const Oid& receiver, const Oid& method,
                                 const std::vector<Oid>& args) {
  XSQL_RETURN_IF_ERROR(ctx_->Step());
  if (args.empty()) {
    // Stored attribute value (with behavioral inheritance of defaults).
    if (const AttrValue* value = db_->GetAttribute(receiver, method)) {
      return value->AsSet();
    }
  }
  auto resolution = db_->methods().Resolve(db_->graph(),
                                           ClassesForInvoke(receiver), method,
                                           static_cast<int>(args.size()));
  if (!resolution.ok()) {
    if (resolution.status().code() == StatusCode::kNotFound) {
      // Undefined or inapplicable: no value, hence no database paths.
      return OidSet();
    }
    return resolution.status();  // unresolved inheritance conflict
  }
  const MethodBody* body = resolution->body.get();
  if (const auto* native = dynamic_cast<const NativeMethodBody*>(body)) {
    return native->fn()(*db_, receiver, args);
  }
  if (const auto* query = dynamic_cast<const QueryMethodBody*>(body)) {
    return InvokeQueryMethod(*query, receiver, args);
  }
  return Status::RuntimeError("unknown method body kind: " + body->kind());
}

OidSet Evaluator::MethodsOn(const Oid& receiver, size_t arity) {
  OidSet out;
  if (arity == 0) {
    if (const Object* obj = db_->GetObject(receiver)) {
      for (const auto& [attr, value] : obj->attrs()) out.Insert(attr);
    }
    for (const Oid& cls : db_->graph().AllClassesOf(receiver)) {
      if (const Object* class_obj = db_->GetObject(cls)) {
        for (const auto& [attr, value] : class_obj->attrs()) out.Insert(attr);
      }
    }
  }
  for (const MethodRegistry::Entry& entry : db_->methods().AllDefinitions()) {
    if (entry.arity == static_cast<int>(arity) &&
        db_->IsInstanceOf(receiver, entry.cls)) {
      out.Insert(entry.method);
    }
  }
  return out;
}

Result<Oid> Evaluator::ResolveIdFunction(const std::string& fn,
                                         const std::vector<Oid>& args) {
  if (views_ != nullptr && views_->IsView(fn)) {
    XSQL_RETURN_IF_ERROR(views_->EnsureMaterialized(fn));
  }
  return Oid::Term(fn, args);
}

Result<OidSet> Evaluator::InvokeQueryMethod(const QueryMethodBody& body,
                                            const Oid& receiver,
                                            const std::vector<Oid>& args) {
  static obs::Counter& method_calls =
      obs::MetricsRegistry::Global().GetCounter("xsql.eval.method_calls");
  method_calls.Inc();
  obs::Span span("method/invoke", [&] { return body.method().ToString(); });
  RecursionScope depth(ctx_, "query method " + body.method().ToString());
  XSQL_RETURN_IF_ERROR(depth.status());
  if (args.size() != body.params().size()) {
    return Status::RuntimeError("arity mismatch invoking " +
                                body.method().ToString());
  }

  Binding binding;
  binding.Set(body.receiver_var(), receiver);
  for (size_t i = 0; i < args.size(); ++i) {
    if (!binding.Set(body.params()[i], args[i])) return OidSet();
  }

  EvalOptions opts;
  PathEvaluator pe = MakePathEvaluator(opts);
  OidSet results;
  auto solution = [&]() -> Status {
    XSQL_ASSIGN_OR_RETURN(OidSet value,
                          EvalValue(body.result_expr(), &binding, opts));
    results = OidSet::Union(results, value);
    return Status::OK();
  };
  XSQL_RETURN_IF_ERROR(
      ForEachSolution(body.from(), body.where(), &binding, opts, &pe,
                      /*order=*/{}, solution));
  if (!body.set_valued() && results.size() > 1) {
    return Status::RuntimeError("scalar method " + body.method().ToString() +
                                " produced " + std::to_string(results.size()) +
                                " values");
  }
  return results;
}

Status Evaluator::ForEachSolution(const std::vector<FromEntry>& from,
                                  const std::shared_ptr<Condition>& where,
                                  Binding* binding, const EvalOptions& opts,
                                  PathEvaluator* pe,
                                  std::vector<size_t> order,
                                  const std::function<Status()>& cb) {
  std::vector<const Condition*> conjuncts;
  if (where != nullptr) FlattenAnd(*where, &conjuncts);

  if (order.empty()) {
    // Integrated mode: FROM entries join the ready-first driver, so a
    // path expression can bind a variable and the FROM entry degrades
    // to a membership filter — no eager cartesian product.
    std::vector<const FromEntry*> froms;
    froms.reserve(from.size());
    for (const FromEntry& entry : from) froms.push_back(&entry);
    ConjunctDriver driver(this, pe, std::move(conjuncts), {},
                          std::move(froms), &opts);
    return driver.Enumerate(binding, cb);
  }

  // Explicit-order mode (plan experiments): FROM loops run eagerly, and
  // the conjuncts follow the caller's order exactly.
  ConjunctDriver driver(this, pe, std::move(conjuncts), std::move(order), {},
                        &opts);
  std::function<Status(size_t)> from_loop = [&](size_t idx) -> Status {
    if (idx == from.size()) return driver.Enumerate(binding, cb);
    const FromEntry& entry = from[idx];
    auto with_class = [&](const Oid& cls) -> Status {
      if (binding->Bound(entry.var)) {
        // §3.4 consistency with the FROM clause.
        if (!db_->IsInstanceOf(binding->Get(entry.var), cls)) {
          return Status::OK();
        }
        return from_loop(idx + 1);
      }
      OidSet extent = db_->Extent(cls);
      const VarRange* range = nullptr;
      if (opts.use_range_pruning && opts.ranges != nullptr) {
        auto it = opts.ranges->find(entry.var);
        if (it != opts.ranges->end()) range = &it->second;
      }
      for (const Oid& oid : extent) {
        XSQL_RETURN_IF_ERROR(ctx_->Step());
        if (range != nullptr && !range->Within(*db_, oid)) continue;
        BindScope scope(binding, entry.var, oid);
        XSQL_RETURN_IF_ERROR(from_loop(idx + 1));
      }
      return Status::OK();
    };
    if (entry.cls.is_var()) {
      const Variable& cvar = entry.cls.var;
      if (binding->Bound(cvar)) return with_class(binding->Get(cvar));
      for (const Oid& cls : db_->graph().Extent(builtin::MetaClass())) {
        BindScope scope(binding, cvar, cls);
        XSQL_RETURN_IF_ERROR(with_class(cls));
      }
      return Status::OK();
    }
    if (!entry.cls.is_const()) {
      return Status::RuntimeError("FROM class must be a name or variable");
    }
    return with_class(entry.cls.value);
  };
  return from_loop(0);
}

Result<EvalOutput> Evaluator::Run(const Query& query, const EvalOptions& opts,
                                  const Binding* outer) {
  static obs::Counter& queries =
      obs::MetricsRegistry::Global().GetCounter("xsql.eval.queries");
  static obs::Counter& rows =
      obs::MetricsRegistry::Global().GetCounter("xsql.eval.rows");
  queries.Inc();
  obs::Span span("eval/query", [&] { return query.ToString(); });
  const uint64_t steps_before = ctx_->steps();
  Result<EvalOutput> out = RunImpl(query, opts, outer);
  span.AddSteps(ctx_->steps() - steps_before);
  if (out.ok()) {
    span.AddRows(out->relation.size());
    rows.Inc(out->relation.size());
  }
  return out;
}

Result<EvalOutput> Evaluator::RunImpl(const Query& query,
                                      const EvalOptions& opts,
                                      const Binding* outer) {
  Binding binding;
  if (outer != nullptr) binding = *outer;
  PathEvaluator pe = MakePathEvaluator(opts);

  const bool creates_objects = query.oid_function_of.has_value();
  std::string fn_name = query.oid_fn_name.empty()
                            ? "q" + std::to_string(next_query_id_++)
                            : query.oid_fn_name;
  OidFunctionTable table(fn_name);

  std::vector<std::string> columns;
  if (creates_objects) {
    columns.push_back("oid");
  } else {
    for (const SelectItem& item : query.select) {
      columns.push_back(item.out_attr.has_value() ? item.out_attr->ToString()
                                                  : item.ToString());
    }
  }
  EvalOutput out;
  out.relation = Relation(columns);

  auto output_attr = [this](const SelectItem& item,
                            size_t index) -> std::pair<Oid, bool> {
    // Returns (attribute oid, declared-set-valued?).
    Oid attr = item.out_attr.has_value()
                   ? *item.out_attr
                   : Oid::Atom("col" + std::to_string(index));
    bool set_valued = false;
    if (item.kind == SelectItem::Kind::kExpr &&
        item.expr.kind == ValueExpr::Kind::kPath &&
        !item.expr.path.trivial()) {
      const PathStep& last = item.expr.path.steps.back();
      if (last.kind == PathStep::Kind::kMethod && !last.method.name_is_var) {
        for (const auto& [cls, sig] :
             db_->signatures().AllFor(last.method.name)) {
          if (sig.set_valued) set_valued = true;
        }
      }
    }
    return {attr, set_valued};
  };

  auto emit = [&]() -> Status {
    XSQL_RETURN_IF_ERROR(ctx_->ChargeRow());
    if (creates_objects) {
      std::vector<Oid> fn_args;
      for (const Variable& v : *query.oid_function_of) {
        if (!binding.Bound(v)) {
          return Status::RuntimeError("OID FUNCTION OF variable " + v.name +
                                      " unbound in a solution");
        }
        fn_args.push_back(binding.Get(v));
      }
      Oid oid = table.MakeOid(fn_args);
      table.Touch(oid);
      for (size_t i = 0; i < query.select.size(); ++i) {
        const SelectItem& item = query.select[i];
        auto [attr, declared_set] = output_attr(item, i);
        switch (item.kind) {
          case SelectItem::Kind::kSetOfVar: {
            if (!binding.Bound(item.set_var)) {
              return Status::RuntimeError("grouped variable " +
                                          item.set_var.name + " unbound");
            }
            XSQL_RETURN_IF_ERROR(
                table.Accumulate(oid, attr, binding.Get(item.set_var)));
            break;
          }
          case SelectItem::Kind::kExpr: {
            XSQL_ASSIGN_OR_RETURN(OidSet value,
                                  EvalValue(item.expr, &binding, opts));
            if (declared_set) {
              XSQL_RETURN_IF_ERROR(table.RecordSet(oid, attr, value));
            } else if (value.size() == 1) {
              XSQL_RETURN_IF_ERROR(
                  table.RecordScalar(oid, attr, *value.begin()));
            } else if (value.size() > 1) {
              XSQL_RETURN_IF_ERROR(table.RecordSet(oid, attr, value));
            }
            // Empty scalar value: the attribute stays undefined (a null,
            // §2), not an empty set.
            break;
          }
          case SelectItem::Kind::kMethodHead:
            return Status::RuntimeError(
                "method-definition SELECT outside ALTER CLASS");
        }
      }
      return Status::OK();
    }
    // Plain relational result: cartesian product over item value sets.
    std::vector<OidSet> cells(query.select.size());
    for (size_t i = 0; i < query.select.size(); ++i) {
      const SelectItem& item = query.select[i];
      if (item.kind == SelectItem::Kind::kSetOfVar) {
        if (!binding.Bound(item.set_var)) {
          return Status::RuntimeError("grouped variable outside an OID "
                                      "FUNCTION query");
        }
        cells[i].Insert(binding.Get(item.set_var));
      } else if (item.kind == SelectItem::Kind::kExpr) {
        XSQL_ASSIGN_OR_RETURN(cells[i], EvalValue(item.expr, &binding, opts));
      } else {
        return Status::RuntimeError(
            "method-definition SELECT outside ALTER CLASS");
      }
    }
    std::vector<Oid> row(query.select.size());
    std::function<Status(size_t)> cartesian = [&](size_t i) -> Status {
      if (i == row.size()) return out.relation.AddRow(row);
      for (const Oid& v : cells[i]) {
        row[i] = v;
        XSQL_RETURN_IF_ERROR(cartesian(i + 1));
      }
      return Status::OK();
    };
    return cartesian(0);
  };

  XSQL_RETURN_IF_ERROR(ForEachSolution(query.from, query.where, &binding,
                                       opts, &pe, opts.conjunct_order, emit));

  if (creates_objects) {
    Oid result_class =
        opts.result_class.has_value() ? *opts.result_class : builtin::Object();
    for (const auto& [oid, attrs] : table.objects()) {
      XSQL_RETURN_IF_ERROR(db_->NewObject(oid, {result_class}));
      for (const auto& [attr, value] : attrs) {
        if (value.set_valued()) {
          XSQL_RETURN_IF_ERROR(db_->SetSet(oid, attr, value.set()));
        } else {
          XSQL_RETURN_IF_ERROR(db_->SetScalar(oid, attr, value.scalar()));
        }
      }
      out.created.push_back(oid);
      XSQL_RETURN_IF_ERROR(out.relation.AddRow({oid}));
    }
    out.objects_created = true;
  }
  return out;
}

Result<Relation> Evaluator::RunQueryExpr(const QueryExpr& expr,
                                         const EvalOptions& opts,
                                         const Binding* outer) {
  switch (expr.kind) {
    case QueryExpr::Kind::kSimple: {
      XSQL_ASSIGN_OR_RETURN(EvalOutput out, Run(*expr.simple, opts, outer));
      return out.relation;
    }
    default: {
      XSQL_ASSIGN_OR_RETURN(Relation lhs,
                            RunQueryExpr(*expr.lhs, opts, outer));
      XSQL_ASSIGN_OR_RETURN(Relation rhs,
                            RunQueryExpr(*expr.rhs, opts, outer));
      switch (expr.kind) {
        case QueryExpr::Kind::kUnion:
          return Relation::Union(lhs, rhs);
        case QueryExpr::Kind::kMinus:
          return Relation::Minus(lhs, rhs);
        case QueryExpr::Kind::kIntersect:
          return Relation::Intersect(lhs, rhs);
        default:
          return Status::RuntimeError("bad query expression");
      }
    }
  }
}

Result<EvalOutput> Evaluator::RunNaive(const Query& query) {
  static obs::Counter& naive_runs =
      obs::MetricsRegistry::Global().GetCounter("xsql.eval.naive_runs");
  naive_runs.Inc();
  obs::Span span("eval/naive", [&] { return query.ToString(); });
  std::vector<Variable> vars = CollectVariables(query);
  for (const Variable& v : vars) {
    if (v.sort == VarSort::kPath) {
      return Status::Unimplemented(
          "naive evaluator does not enumerate path variables");
    }
  }
  // Domains per sort (§3.4: substitutions respect sorts; the active
  // domain stands in for the infinite universe).
  std::vector<OidSet> domains;
  for (const Variable& v : vars) {
    switch (v.sort) {
      case VarSort::kClass:
        domains.push_back(db_->graph().Extent(builtin::MetaClass()));
        break;
      case VarSort::kMethod:
        domains.push_back(db_->graph().Extent(builtin::MetaMethod()));
        break;
      default:
        domains.push_back(db_->ActiveDomain());
        break;
    }
  }

  EvalOptions opts;
  opts.use_range_pruning = false;
  const bool creates_objects = query.oid_function_of.has_value();
  std::string fn_name = query.oid_fn_name.empty()
                            ? "q" + std::to_string(next_query_id_++)
                            : query.oid_fn_name;
  OidFunctionTable table(fn_name);
  std::vector<std::string> columns;
  if (creates_objects) {
    columns.push_back("oid");
  } else {
    for (const SelectItem& item : query.select) {
      columns.push_back(item.out_attr.has_value() ? item.out_attr->ToString()
                                                  : item.ToString());
    }
  }
  EvalOutput out;
  out.relation = Relation(columns);

  Binding binding;
  std::function<Status(size_t)> loop = [&](size_t idx) -> Status {
    if (idx == vars.size()) {
      // Consistency with FROM.
      for (const FromEntry& entry : query.from) {
        Oid cls;
        if (entry.cls.is_const()) {
          cls = entry.cls.value;
        } else if (entry.cls.is_var()) {
          cls = binding.Get(entry.cls.var);
        } else {
          return Status::RuntimeError("bad FROM class term");
        }
        if (!db_->IsInstanceOf(binding.Get(entry.var), cls)) {
          return Status::OK();
        }
      }
      bool truth = true;
      if (query.where != nullptr) {
        XSQL_ASSIGN_OR_RETURN(truth, TestCondition(*query.where, &binding));
      }
      if (!truth) return Status::OK();
      XSQL_RETURN_IF_ERROR(ctx_->ChargeRow());
      if (creates_objects) {
        std::vector<Oid> fn_args;
        for (const Variable& v : *query.oid_function_of) {
          fn_args.push_back(binding.Get(v));
        }
        Oid oid = table.MakeOid(fn_args);
        table.Touch(oid);
        for (size_t i = 0; i < query.select.size(); ++i) {
          const SelectItem& item = query.select[i];
          Oid attr = item.out_attr.has_value()
                         ? *item.out_attr
                         : Oid::Atom("col" + std::to_string(i));
          if (item.kind == SelectItem::Kind::kSetOfVar) {
            XSQL_RETURN_IF_ERROR(
                table.Accumulate(oid, attr, binding.Get(item.set_var)));
          } else {
            XSQL_ASSIGN_OR_RETURN(OidSet value,
                                  EvalValue(item.expr, &binding, opts));
            if (value.size() == 1) {
              XSQL_RETURN_IF_ERROR(
                  table.RecordScalar(oid, attr, *value.begin()));
            } else if (value.size() > 1) {
              XSQL_RETURN_IF_ERROR(table.RecordSet(oid, attr, value));
            }
          }
        }
        return Status::OK();
      }
      std::vector<OidSet> cells(query.select.size());
      for (size_t i = 0; i < query.select.size(); ++i) {
        const SelectItem& item = query.select[i];
        if (item.kind == SelectItem::Kind::kSetOfVar) {
          cells[i].Insert(binding.Get(item.set_var));
        } else {
          XSQL_ASSIGN_OR_RETURN(cells[i],
                                EvalValue(item.expr, &binding, opts));
        }
      }
      std::vector<Oid> row(query.select.size());
      std::function<Status(size_t)> cartesian = [&](size_t i) -> Status {
        if (i == row.size()) return out.relation.AddRow(row);
        for (const Oid& v : cells[i]) {
          row[i] = v;
          XSQL_RETURN_IF_ERROR(cartesian(i + 1));
        }
        return Status::OK();
      };
      return cartesian(0);
    }
    for (const Oid& candidate : domains[idx]) {
      XSQL_RETURN_IF_ERROR(ctx_->Step());
      BindScope scope(&binding, vars[idx], candidate);
      XSQL_RETURN_IF_ERROR(loop(idx + 1));
    }
    return Status::OK();
  };
  XSQL_RETURN_IF_ERROR(loop(0));

  if (creates_objects) {
    for (const auto& [oid, attrs] : table.objects()) {
      XSQL_RETURN_IF_ERROR(db_->NewObject(oid, {builtin::Object()}));
      for (const auto& [attr, value] : attrs) {
        if (value.set_valued()) {
          XSQL_RETURN_IF_ERROR(db_->SetSet(oid, attr, value.set()));
        } else {
          XSQL_RETURN_IF_ERROR(db_->SetScalar(oid, attr, value.scalar()));
        }
      }
      out.created.push_back(oid);
      XSQL_RETURN_IF_ERROR(out.relation.AddRow({oid}));
    }
    out.objects_created = true;
  }
  return out;
}

Result<bool> Evaluator::TestCondition(const Condition& cond,
                                      Binding* binding) {
  EvalOptions opts;
  switch (cond.kind) {
    case Condition::Kind::kAnd:
      for (const auto& child : cond.children) {
        XSQL_ASSIGN_OR_RETURN(bool truth, TestCondition(*child, binding));
        if (!truth) return false;
      }
      return true;
    case Condition::Kind::kOr:
      for (const auto& child : cond.children) {
        XSQL_ASSIGN_OR_RETURN(bool truth, TestCondition(*child, binding));
        if (truth) return true;
      }
      return false;
    case Condition::Kind::kNot: {
      XSQL_ASSIGN_OR_RETURN(bool truth,
                            TestCondition(*cond.children[0], binding));
      return !truth;
    }
    case Condition::Kind::kComparison: {
      XSQL_ASSIGN_OR_RETURN(OidSet lhs, EvalValue(cond.lhs, binding, opts));
      XSQL_ASSIGN_OR_RETURN(OidSet rhs, EvalValue(cond.rhs, binding, opts));
      return EvalComparison(lhs, cond.lquant, cond.comp_op, cond.rquant, rhs);
    }
    case Condition::Kind::kSetComparison: {
      XSQL_ASSIGN_OR_RETURN(OidSet lhs, EvalValue(cond.lhs, binding, opts));
      XSQL_ASSIGN_OR_RETURN(OidSet rhs, EvalValue(cond.rhs, binding, opts));
      return EvalSetComparison(lhs, cond.set_op, rhs);
    }
    case Condition::Kind::kStandalonePath: {
      PathEvaluator pe = MakePathEvaluator(opts);
      XSQL_ASSIGN_OR_RETURN(OidSet value, pe.Value(cond.path, *binding));
      return !value.empty();
    }
    case Condition::Kind::kSubclassOf: {
      PathEvaluator pe = MakePathEvaluator(opts);
      XSQL_ASSIGN_OR_RETURN(Oid sub, pe.EvalIdTerm(cond.sub, *binding));
      XSQL_ASSIGN_OR_RETURN(Oid super, pe.EvalIdTerm(cond.super, *binding));
      return db_->graph().IsStrictSubclass(sub, super);
    }
    case Condition::Kind::kApplicable: {
      PathEvaluator pe = MakePathEvaluator(opts);
      XSQL_ASSIGN_OR_RETURN(Oid method, pe.EvalIdTerm(cond.sub, *binding));
      XSQL_ASSIGN_OR_RETURN(Oid obj, pe.EvalIdTerm(cond.super, *binding));
      return IsApplicable(*db_, method, obj);
    }
    case Condition::Kind::kUpdate:
      XSQL_RETURN_IF_ERROR(ExecuteUpdate(*cond.update, binding));
      return true;
  }
  return Status::RuntimeError("unexpected condition kind");
}

Result<OidSet> Evaluator::EvalValue(const ValueExpr& expr, Binding* binding,
                                    const EvalOptions& opts) {
  switch (expr.kind) {
    case ValueExpr::Kind::kPath: {
      PathEvaluator pe = MakePathEvaluator(opts);
      return pe.Value(expr.path, *binding);
    }
    case ValueExpr::Kind::kAggregate: {
      PathEvaluator pe = MakePathEvaluator(opts);
      XSQL_ASSIGN_OR_RETURN(OidSet values, pe.Value(expr.path, *binding));
      XSQL_ASSIGN_OR_RETURN(Oid result, EvalAggregate(expr.agg_fn, values));
      OidSet out;
      out.Insert(result);
      return out;
    }
    case ValueExpr::Kind::kArith: {
      XSQL_ASSIGN_OR_RETURN(OidSet lhs, EvalValue(*expr.lhs, binding, opts));
      XSQL_ASSIGN_OR_RETURN(OidSet rhs, EvalValue(*expr.rhs, binding, opts));
      if (lhs.empty() || rhs.empty()) return OidSet();
      if (lhs.size() != 1 || rhs.size() != 1) {
        return Status::RuntimeError("arithmetic on non-singleton sets");
      }
      const Oid& a = *lhs.begin();
      const Oid& b = *rhs.begin();
      if (!a.is_numeric() || !b.is_numeric()) {
        return Status::RuntimeError("arithmetic on non-numeric values");
      }
      double x = a.numeric_value();
      double y = b.numeric_value();
      double r = 0;
      switch (expr.arith_op) {
        case ArithOp::kAdd:
          r = x + y;
          break;
        case ArithOp::kSub:
          r = x - y;
          break;
        case ArithOp::kMul:
          r = x * y;
          break;
        case ArithOp::kDiv:
          if (y == 0) return Status::RuntimeError("division by zero");
          r = x / y;
          break;
      }
      OidSet out;
      if (a.is_int() && b.is_int() && expr.arith_op != ArithOp::kDiv) {
        out.Insert(Oid::Int(static_cast<int64_t>(r)));
      } else {
        out.Insert(Oid::Real(r));
      }
      return out;
    }
    case ValueExpr::Kind::kSubquery: {
      XSQL_ASSIGN_OR_RETURN(Relation rel,
                            RunQueryExpr(*expr.subquery, opts, binding));
      return rel.AsSet();
    }
    case ValueExpr::Kind::kSetLiteral: {
      OidSet out;
      for (const ValueExpr& e : expr.set_elems) {
        XSQL_ASSIGN_OR_RETURN(OidSet value, EvalValue(e, binding, opts));
        out = OidSet::Union(out, value);
      }
      return out;
    }
  }
  return Status::RuntimeError("unexpected value expression");
}

Status Evaluator::ExecuteUpdate(const UpdateClassStmt& update,
                                Binding* binding) {
  EvalOptions opts;
  PathEvaluator pe = MakePathEvaluator(opts);
  for (const UpdateClassStmt::Assignment& assign : update.assignments) {
    if (assign.target.trivial()) {
      return Status::RuntimeError("UPDATE target must name an attribute");
    }
    const PathStep& last = assign.target.steps.back();
    if (last.kind != PathStep::Kind::kMethod || !last.method.args.empty()) {
      return Status::RuntimeError(
          "UPDATE target must end in an attribute expression");
    }
    Oid attr;
    if (last.method.name_is_var) {
      if (!binding->Bound(last.method.name_var)) {
        return Status::RuntimeError("unbound attribute variable in UPDATE");
      }
      attr = binding->Get(last.method.name_var);
    } else {
      attr = last.method.name;
    }
    PathExpr prefix;
    prefix.head = assign.target.head;
    prefix.steps.assign(assign.target.steps.begin(),
                        assign.target.steps.end() - 1);
    // Collect targets first, then apply: mutating while walking the
    // composition graph could interact with the enumeration. The
    // update-scoped conditions (desugared path arguments) are driven
    // per target so their variables see the prefix bindings.
    std::vector<const Condition*> scoped;
    if (update.where != nullptr) FlattenAnd(*update.where, &scoped);
    std::vector<std::pair<Oid, OidSet>> writes;
    XSQL_RETURN_IF_ERROR(
        pe.Enumerate(prefix, binding, [&](const Oid& target) -> Status {
          ConjunctDriver driver(this, &pe, scoped, {});
          return driver.Enumerate(binding, [&]() -> Status {
            XSQL_ASSIGN_OR_RETURN(OidSet value,
                                  EvalValue(assign.value, binding, opts));
            writes.emplace_back(target, std::move(value));
            return Status::OK();
          });
        }));
    for (const auto& [target, value] : writes) {
      if (value.empty()) continue;
      if (value.size() == 1) {
        XSQL_RETURN_IF_ERROR(db_->SetScalar(target, attr, *value.begin()));
      } else {
        XSQL_RETURN_IF_ERROR(db_->SetSet(target, attr, value));
      }
    }
  }
  return Status::OK();
}

}  // namespace xsql
