#ifndef XSQL_EVAL_SESSION_H_
#define XSQL_EVAL_SESSION_H_

#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/exec_context.h"
#include "common/status.h"
#include "eval/evaluator.h"
#include "eval/introspect.h"
#include "eval/plan_cache.h"
#include "eval/view.h"
#include "store/database.h"
#include "store/index.h"
#include "typing/planner.h"
#include "typing/type_checker.h"

namespace xsql {

namespace obs {
class StatusRegistry;
}  // namespace obs

/// Session-wide policy knobs.
struct SessionOptions {
  /// Which well-typing notion gates queries (§6.2). Strict is the
  /// default because its witness unlocks the Theorem 6.1(2) pruning;
  /// queries that fail strict typing still run (typing is metalogical)
  /// unless `enforce_typing` is set.
  TypingMode typing_mode = TypingMode::kStrict;
  /// Reject queries that are not well-typed under `typing_mode`.
  bool enforce_typing = false;
  /// Apply the Theorem 6.1(2) range restriction when a strict witness
  /// exists.
  bool use_range_pruning = true;
  /// §6.2 exemptions (the middle ground between liberal and strict).
  ExemptionSet exemptions;
  /// Execution guardrails, applied per statement: deadline, row/step
  /// budgets, recursion-depth policy (see ExecLimits). Defaults have no
  /// budgets armed.
  ExecLimits limits;
  /// Cooperative cancellation: any thread holding the token can abort
  /// the running statement. Null means not cancellable.
  std::shared_ptr<CancelToken> cancel;
  /// Slow-query log threshold in microseconds; 0 (the default)
  /// disables the log. Statements whose wall time meets the threshold
  /// are appended to `Session::slow_query_log()`.
  uint64_t slow_query_us = 0;
  /// Cost-based planning (selectivity-ordered enumeration, conjunct
  /// ranks, hash joins). Off restores the greedy ready-first schedule —
  /// the Theorem 6.1(1) baseline the differential tests compare
  /// against.
  bool use_planner = true;
  /// Prepared-plan cache entries this session's (owned) cache keeps;
  /// 0 disables caching, so every statement re-parses and re-plans.
  /// Ignored when the session binds to a shared cache.
  size_t plan_cache_capacity = 64;
  /// [BERT89] path indexes the planner and evaluator may consult. Must
  /// outlive the session; null means no indexes. Stale indexes are
  /// ignored, never incorrect.
  const PathIndexSet* indexes = nullptr;
  /// The status board `SYSTEM STATUS` renders. Null means the process-
  /// global one; a server hosting several nodes in one process (the
  /// failover tests run primary and replica side by side) points each
  /// connection's sessions at its own board. Must outlive the session.
  const obs::StatusRegistry* status = nullptr;
};

/// One slow-query log entry (see SessionOptions::slow_query_us).
struct SlowQueryEntry {
  std::string statement;
  uint64_t wall_us = 0;
  bool ok = true;
};

/// The top-level API a user of the library drives: text in, relations
/// and objects out. Owns the view catalog and wires parsing, name
/// resolution, typing, and evaluation together.
class Session {
 public:
  explicit Session(Database* db, SessionOptions options = {})
      : Session(db, std::move(options), /*shared_views=*/nullptr) {}

  /// Binds the session to a view catalog (and optionally a prepared-
  /// plan cache) owned elsewhere. The concurrent server gives every
  /// connection its own Session (own guardrails, own slow-query log,
  /// own evaluator scratch state) over ONE database, ONE view catalog,
  /// and ONE plan cache, so a view created on any connection resolves
  /// on all of them and a statement prepared by any connection skips
  /// parse+typecheck on all of them. `shared_views` / `shared_plans`
  /// must outlive the session; null means the session owns private
  /// ones (the historical behavior).
  Session(Database* db, SessionOptions options, ViewManager* shared_views,
          PlanCache* shared_plans = nullptr)
      : db_(db),
        options_(std::move(options)),
        owned_views_(shared_views == nullptr
                         ? std::make_unique<ViewManager>(db)
                         : nullptr),
        views_(shared_views != nullptr ? shared_views : owned_views_.get()),
        owned_plans_(shared_plans == nullptr
                         ? std::make_unique<PlanCache>(
                               options_.plan_cache_capacity)
                         : nullptr),
        plans_(shared_plans != nullptr ? shared_plans : owned_plans_.get()),
        evaluator_(db, views_) {
    // Catalog-as-methods (§2): classes answer attributes/superclasses/
    // subclasses/instances like ordinary objects. Idempotent.
    (void)InstallIntrospection(db);
  }

  /// Parses and executes one statement (query or DDL/DML) under the
  /// session's guardrails. Statements are *atomic*: on any failure —
  /// including a tripped guardrail — every mutation the statement made
  /// is rolled back before the error is returned.
  Result<EvalOutput> Execute(const std::string& text);

  /// Executes one statement the caller GUARANTEES is read-only — the
  /// concurrent server's latch-free snapshot-read path (see
  /// server::ClassifyMode and docs/CONCURRENCY.md).
  /// Skips the statement-level undo log (nothing to roll back) and
  /// leaves the shared view catalog's execution-context hook untouched:
  /// concurrent readers would race on both. Guardrails still apply
  /// through the session's own evaluator.
  Result<EvalOutput> ExecuteReadOnly(const std::string& text);

  /// Executes a `;`-separated script (quotes respected, `--` comments
  /// stripped by the lexer). Stops at the first error; returns the last
  /// statement's output. With `atomic` set the whole script is one
  /// transaction: a failure anywhere rolls back every statement.
  Result<EvalOutput> ExecuteScript(const std::string& script,
                                   bool atomic = false);

  /// Convenience: execute and return just the relation.
  Result<Relation> Query(const std::string& text);

  /// Type-checks a query without running it.
  Result<TypingResult> TypeCheck(const std::string& text, TypingMode mode);

  /// Human-readable typing/plan report for a query: fragment status,
  /// liberal and strict verdicts, the witness execution plan, the
  /// witness type assignment, and the variable ranges A(X) that the
  /// Theorem 6.1(2) pruning would use.
  Result<std::string> Explain(const std::string& text);

  /// Statements that met the `slow_query_us` threshold, oldest first.
  /// Returns a copy: the log sink is written by the executing thread and
  /// read by whoever monitors the session (the server's admin surface),
  /// so both sides go through `slow_query_mu_` and no reference into the
  /// live vector ever escapes.
  std::vector<SlowQueryEntry> slow_query_log() const {
    std::lock_guard<std::mutex> lock(slow_query_mu_);
    return slow_query_log_;
  }
  void ClearSlowQueryLog() {
    std::lock_guard<std::mutex> lock(slow_query_mu_);
    slow_query_log_.clear();
  }

  Database& db() { return *db_; }
  ViewManager& views() { return *views_; }
  PlanCache& plan_cache() { return *plans_; }
  Evaluator& evaluator() { return evaluator_; }
  const SessionOptions& options() const { return options_; }
  SessionOptions& mutable_options() { return options_; }

 private:
  /// The shared body of Execute / ExecuteReadOnly: metrics, timing, and
  /// the slow-query log around one ExecuteParsed call.
  Result<EvalOutput> ExecuteTimed(const std::string& text, bool read_only);

  /// Prepare + dispatch: diagnostic statements (EXPLAIN, EXPLAIN
  /// ANALYZE, SYSTEM METRICS) take their own paths; everything else
  /// runs guarded and atomic through ExecuteGuarded.
  Result<EvalOutput> ExecuteParsed(const std::string& text,
                                   bool read_only = false);

  /// The prepared form of `text`: from the plan cache when a fresh
  /// entry exists (skipping parse, typecheck, and planning — and their
  /// spans), otherwise parse + PrepareStatement, publishing plain
  /// queries back to the cache. Preparation is guard-exempt like
  /// EXPLAIN: it reads the catalogs, evaluates nothing.
  Result<std::shared_ptr<const PreparedPlan>> Prepare(
      const std::string& text);

  /// Fills typing + plan for an already-parsed statement (simple
  /// queries; other kinds pass through).
  void PrepareStatement(PreparedPlan* prepared);

  /// The cache key for a statement text under this session's typing
  /// configuration (mode, exemptions, index set identity).
  std::string CacheKey(const std::string& text) const;

  /// Runs one non-diagnostic statement under a fresh guardrail context
  /// and an undo log. With `rollback_always` the statement's mutations
  /// are withdrawn even on success (EXPLAIN ANALYZE executes for real
  /// but must leave no trace). With `read_only` the undo log and the
  /// shared view-catalog context hook are skipped (see ExecuteReadOnly).
  /// `prepared` carries the typing/plan computed at prepare time; null
  /// makes kQuery statements type-check inline (legacy path).
  Result<EvalOutput> ExecuteGuarded(const Statement& stmt,
                                    bool rollback_always,
                                    bool read_only = false,
                                    const PreparedPlan* prepared = nullptr);

  /// The per-kind body: dispatch (context already armed).
  Result<EvalOutput> ExecuteStatement(const Statement& stmt,
                                      const PreparedPlan* prepared);

  /// `EXPLAIN <q>`: the typing/plan report as a relation. Guard-exempt —
  /// nothing is evaluated.
  Result<EvalOutput> ExecuteExplain(const Statement& stmt);
  /// `EXPLAIN ANALYZE <q>`: execute under a tracer (guarded), roll the
  /// mutations back, render the span tree (render is guard-exempt).
  Result<EvalOutput> ExecuteExplainAnalyze(const Statement& stmt);
  /// `SYSTEM METRICS`: the global metrics registry as a relation.
  Result<EvalOutput> SystemMetricsOutput();
  /// `SYSTEM STATUS`: the global status board as a relation.
  Result<EvalOutput> SystemStatusOutput();
  /// The typing report body shared by Explain() and EXPLAIN.
  /// (`::xsql::Query` the AST type, not the member function Query.)
  Result<std::string> ExplainReport(const ::xsql::Query& query);

  Database* db_;
  SessionOptions options_;
  /// Set iff this session owns its catalog; `views_` points either here
  /// or at the shared catalog passed to the constructor.
  std::unique_ptr<ViewManager> owned_views_;
  ViewManager* views_;
  /// Same ownership pattern for the prepared-plan cache.
  std::unique_ptr<PlanCache> owned_plans_;
  PlanCache* plans_;
  Evaluator evaluator_;
  mutable std::mutex slow_query_mu_;
  std::vector<SlowQueryEntry> slow_query_log_;
};

}  // namespace xsql

#endif  // XSQL_EVAL_SESSION_H_
