#include "eval/introspect.h"

#include <memory>

#include "eval/evaluator.h"
#include "store/catalog.h"

namespace xsql {

namespace {

Status Install(Database* db, const char* name,
               Result<OidSet> (*fn)(Database&, const Oid&)) {
  auto body = std::make_shared<NativeMethodBody>(
      0, /*set_valued=*/true,
      [fn](Database& database, const Oid& receiver,
           const std::vector<Oid>&) { return fn(database, receiver); });
  XSQL_RETURN_IF_ERROR(
      db->DefineMethod(builtin::MetaClass(), Oid::Atom(name), 0, body));
  Signature sig;
  sig.method = Oid::Atom(name);
  sig.result = builtin::Object();
  sig.set_valued = true;
  return db->DeclareSignature(builtin::MetaClass(), sig);
}

Result<OidSet> Attributes(Database& db, const Oid& cls) {
  return catalog::AttributesOf(db, cls);
}

Result<OidSet> Superclasses(Database& db, const Oid& cls) {
  return db.graph().Ancestors(cls);
}

Result<OidSet> Subclasses(Database& db, const Oid& cls) {
  return db.graph().Descendants(cls);
}

Result<OidSet> Instances(Database& db, const Oid& cls) {
  return db.graph().Extent(cls);
}

}  // namespace

Status InstallIntrospection(Database* db) {
  // Presence check first: Session construction calls this on every
  // database it binds — including immutable MVCC snapshots shared by
  // concurrent readers, which must not be written to (and whose version
  // counter must not advance). Install is deterministic, so one probe
  // decides for all four methods.
  if (db->methods().Definition(builtin::MetaClass(), Oid::Atom("instances"),
                               0) != nullptr) {
    return Status::OK();
  }
  XSQL_RETURN_IF_ERROR(Install(db, "attributes", Attributes));
  XSQL_RETURN_IF_ERROR(Install(db, "superclasses", Superclasses));
  XSQL_RETURN_IF_ERROR(Install(db, "subclasses", Subclasses));
  XSQL_RETURN_IF_ERROR(Install(db, "instances", Instances));
  return Status::OK();
}

}  // namespace xsql
