#include "eval/plan_cache.h"

#include <cctype>

#include "obs/metrics.h"

namespace xsql {

namespace {

obs::Counter& HitCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("xsql.plan.cache_hits");
  return c;
}
obs::Counter& MissCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("xsql.plan.cache_misses");
  return c;
}
obs::Counter& InvalidationCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "xsql.plan.cache_invalidations");
  return c;
}
obs::Counter& EvictionCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("xsql.plan.cache_evictions");
  return c;
}

/// Registers every cache counter at once. Called on the first cache
/// touch so the registry's metric SET is stable from then on — a hit
/// must not be the first registration (it could land inside a frozen-
/// metrics window and change the dump's shape, not just its values).
void RegisterCounters() {
  HitCounter();
  MissCounter();
  InvalidationCounter();
  EvictionCounter();
}

}  // namespace

std::shared_ptr<const PreparedPlan> PlanCache::Lookup(const std::string& key,
                                                      uint64_t db_version) {
  RegisterCounters();
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_key_.find(key);
  if (it == by_key_.end()) {
    MissCounter().Inc();
    return nullptr;
  }
  if (it->second->second->db_version != db_version) {
    // Stale: the database moved since preparation. Drop the entry so
    // the re-preparation can take its slot.
    lru_.erase(it->second);
    by_key_.erase(it);
    InvalidationCounter().Inc();
    MissCounter().Inc();
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  HitCounter().Inc();
  return it->second->second;
}

bool PlanCache::Contains(const std::string& key, uint64_t db_version) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_key_.find(key);
  return it != by_key_.end() && it->second->second->db_version == db_version;
}

void PlanCache::Insert(const std::string& key,
                       std::shared_ptr<const PreparedPlan> prepared) {
  if (capacity_ == 0 || prepared == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_key_.find(key);
  if (it != by_key_.end()) {
    lru_.erase(it->second);
    by_key_.erase(it);
  }
  lru_.emplace_front(key, std::move(prepared));
  by_key_[key] = lru_.begin();
  while (lru_.size() > capacity_) {
    by_key_.erase(lru_.back().first);
    lru_.pop_back();
    EvictionCounter().Inc();
  }
}

void PlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  by_key_.clear();
}

size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

std::string PlanCache::NormalizeText(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  bool pending_space = false;
  bool in_string = false;
  for (char c : text) {
    if (c == '\'') in_string = !in_string;
    // Whitespace inside a string literal is content, not formatting:
    // `'a  b'` and `'a b'` must not share a cache slot.
    if (!in_string && std::isspace(static_cast<unsigned char>(c))) {
      if (!out.empty()) pending_space = true;
      continue;
    }
    if (pending_space) {
      out.push_back(' ');
      pending_space = false;
    }
    out.push_back(c);
  }
  return out;
}

}  // namespace xsql
