#include "eval/binding.h"

// Binding is header-only; this translation unit anchors the target.
