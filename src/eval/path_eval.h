#ifndef XSQL_EVAL_PATH_EVAL_H_
#define XSQL_EVAL_PATH_EVAL_H_

#include <functional>
#include <vector>

#include "ast/ast.h"
#include "common/exec_context.h"
#include "common/status.h"
#include "eval/binding.h"
#include "oid/oid.h"
#include "store/database.h"

namespace xsql {

/// How the path evaluator runs methods and id-functions. Implemented by
/// the Evaluator (query-defined methods need query evaluation, view
/// id-terms need materialization), keeping path mechanics independent of
/// the query driver.
class MethodInvoker {
 public:
  virtual ~MethodInvoker() = default;

  /// Invokes `method` on `receiver` with `args` and returns the result
  /// as a set (a scalar result is a singleton, an undefined or
  /// inapplicable invocation is the empty set — at run time both simply
  /// yield no database paths, §2/§3.1).
  virtual Result<OidSet> Invoke(const Oid& receiver, const Oid& method,
                                const std::vector<Oid>& args) = 0;

  /// The method-name objects a method variable may take in the scope of
  /// `receiver` for the given arity: attributes with defined values
  /// (local or inherited defaults) and resolvable method definitions.
  virtual OidSet MethodsOn(const Oid& receiver, size_t arity) = 0;

  /// Resolves an id-function application `fn(args...)` to an oid
  /// (§4.2). For view names this materializes the view first.
  virtual Result<Oid> ResolveIdFunction(const std::string& fn,
                                        const std::vector<Oid>& args) = 0;
};

/// Tuning knobs for path evaluation.
struct PathEvalOptions {
  /// Guardrails (step budget, deadline, cancellation, and the
  /// path-variable length policy). Null falls back to
  /// ExecutionContext::Unlimited().
  ExecutionContext* ctx = nullptr;
  /// Candidate oids for an unbound head variable; when unset the
  /// database's active domain is used. The Theorem 6.1(2) optimization
  /// plugs range-restricted candidates in here.
  std::function<OidSet(const Variable&)> var_domain;
};

/// Evaluates extended path expressions (§3.1, §5).
///
/// Two modes correspond to the two roles a path expression plays:
///  * `Enumerate` — the path as a *generator*: finds every database path
///    satisfying some ground instance of the expression consistent with
///    the current (partial) binding, extending the binding over the
///    expression's variables and reporting each tail;
///  * `Value` — the path as a *ground term*: with all variables bound,
///    computes the value (the set of tails of satisfying paths, §3.2).
class PathEvaluator {
 public:
  PathEvaluator(const Database& db, MethodInvoker* invoker,
                PathEvalOptions opts)
      : db_(db),
        invoker_(invoker),
        opts_(std::move(opts)),
        ctx_(opts_.ctx != nullptr ? opts_.ctx
                                  : ExecutionContext::Unlimited()) {}

  /// Callback receives the tail object of one satisfying database path;
  /// the binding (as extended for that path) is visible during the call.
  using TailCallback = std::function<Status(const Oid& tail)>;

  Status Enumerate(const PathExpr& path, Binding* binding,
                   const TailCallback& cb);

  Result<OidSet> Value(const PathExpr& path, const Binding& binding);

  /// Evaluates an id-term; every variable must be bound.
  Result<Oid> EvalIdTerm(const IdTerm& term, const Binding& binding);

 private:
  /// The body of Enumerate; the public wrapper adds the trace span and
  /// the enumeration metric around it.
  Status EnumerateImpl(const PathExpr& path, Binding* binding,
                       const TailCallback& cb);

  Status StartFrom(const PathExpr& path, const Oid& head, Binding* binding,
                   const TailCallback& cb);
  Status Walk(const PathExpr& path, size_t step_index, const Oid& obj,
              Binding* binding, const TailCallback& cb);
  Status WalkPathVar(const PathExpr& path, size_t step_index, const Oid& obj,
                     std::vector<Oid>* seq, size_t depth, Binding* binding,
                     const TailCallback& cb);
  Status Continue(const PathExpr& path, size_t step_index, const OidSet& values,
                  const std::optional<IdTerm>& selector, Binding* binding,
                  const TailCallback& cb);

  /// True when binding `var` to `oid` respects the variable's sort
  /// (class variables bind classes, method variables bind
  /// method-objects; individual variables are unrestricted).
  bool SortAdmits(const Variable& var, const Oid& oid) const;

  OidSet DomainFor(const Variable& var) const;

  const Database& db_;
  MethodInvoker* invoker_;
  PathEvalOptions opts_;
  ExecutionContext* ctx_;
};

}  // namespace xsql

#endif  // XSQL_EVAL_PATH_EVAL_H_
