#include "eval/view.h"

#include "eval/update.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace xsql {

Status ViewManager::Create(const CreateViewStmt& stmt) {
  if (views_.contains(stmt.name.str())) {
    return Status::InvalidArgument("view " + stmt.name.ToString() +
                                   " already exists");
  }
  XSQL_RETURN_IF_ERROR(db_->DeclareClass(stmt.name, {stmt.superclass}));
  for (const SignatureDecl& decl : stmt.signatures) {
    XSQL_RETURN_IF_ERROR(ApplySignatureDecl(db_, stmt.name, decl));
  }
  ViewDef def;
  def.name = stmt.name;
  def.superclass = stmt.superclass;
  def.signatures = stmt.signatures;
  def.query = stmt.query;
  if (!def.query.oid_function_of.has_value()) {
    return Status::InvalidArgument(
        "view query must have an OID FUNCTION OF clause");
  }
  views_.emplace(stmt.name.str(), std::move(def));
  return Status::OK();
}

Status ViewManager::EnsureMaterialized(const std::string& fn) {
  auto it = views_.find(fn);
  if (it == views_.end()) return Status::NotFound("no view " + fn);
  if (materializing_) return Status::OK();  // re-entrant resolution
  if (it->second.materialized_at == 0 ||
      it->second.materialized_at < db_->version()) {
    return Materialize(fn);
  }
  return Status::OK();
}

Status ViewManager::Materialize(const std::string& name) {
  static obs::Counter& materializations =
      obs::MetricsRegistry::Global().GetCounter("xsql.view.materializations");
  materializations.Inc();
  obs::Span span("view/materialize", [&] { return name; });
  auto it = views_.find(name);
  if (it == views_.end()) return Status::NotFound("no view " + name);
  ViewDef& def = it->second;
  ExecutionContext* ctx =
      ctx_ != nullptr ? ctx_ : ExecutionContext::Unlimited();
  RecursionScope depth(ctx, "view expansion " + def.name.ToString());
  XSQL_RETURN_IF_ERROR(depth.status());
  // Detach the previous materialization from the view class (undoable:
  // a failed statement re-attaches them, so keep `created` in sync by
  // restoring it on any failure path).
  std::vector<Oid> previous = std::move(def.created);
  def.created.clear();
  auto fail = [&](Status st) {
    def.created = std::move(previous);
    return st;
  };
  for (const Oid& oid : previous) {
    Status st = db_->RemoveInstanceOf(oid, def.name);
    if (!st.ok()) return fail(std::move(st));
  }
  materializing_ = true;
  Evaluator evaluator(db_, this, ctx);
  EvalOptions opts;
  opts.result_class = def.name;
  Result<EvalOutput> out = evaluator.Run(def.query, opts);
  materializing_ = false;
  if (!out.ok()) return fail(out.status());
  def.created = out->created;
  def.materialized_at = db_->version();
  return Status::OK();
}

Status ViewManager::UpdateThroughView(const Oid& view_oid, const Oid& attr,
                                      const Oid& value) {
  if (!view_oid.is_term()) {
    return Status::InvalidArgument("view object oid must be an id-term");
  }
  auto it = views_.find(view_oid.term_fn());
  if (it == views_.end()) {
    return Status::NotFound("no view named " + view_oid.term_fn());
  }
  const ViewDef& def = it->second;
  // Find the select item defining `attr` and check its provenance: it
  // must be a one-step path `V.baseAttr` whose head V is one of the OID
  // FUNCTION variables, so the view object determines the base object.
  for (const SelectItem& item : def.query.select) {
    if (item.kind != SelectItem::Kind::kExpr || !item.out_attr.has_value() ||
        !(*item.out_attr == attr)) {
      continue;
    }
    if (item.expr.kind != ValueExpr::Kind::kPath ||
        item.expr.path.steps.size() != 1 ||
        !item.expr.path.head.is_var()) {
      return Status::InvalidArgument(
          "attribute " + attr.ToString() +
          " of view " + def.name.ToString() + " is not updatable");
    }
    const PathStep& step = item.expr.path.steps[0];
    if (step.kind != PathStep::Kind::kMethod || step.method.name_is_var ||
        !step.method.args.empty()) {
      return Status::InvalidArgument("attribute " + attr.ToString() +
                                     " is not updatable");
    }
    const std::vector<Variable>& fn_vars = *def.query.oid_function_of;
    for (size_t i = 0; i < fn_vars.size(); ++i) {
      if (fn_vars[i] == item.expr.path.head.var) {
        if (i >= view_oid.term_args().size()) {
          return Status::RuntimeError("malformed view oid " +
                                      view_oid.ToString());
        }
        const Oid& base = view_oid.term_args()[i];
        XSQL_RETURN_IF_ERROR(
            db_->SetScalar(base, step.method.name, value));
        // Keep the materialized view object in sync.
        XSQL_RETURN_IF_ERROR(db_->SetScalar(view_oid, attr, value));
        return Status::OK();
      }
    }
    return Status::InvalidArgument(
        "attribute " + attr.ToString() +
        " does not derive from an OID FUNCTION variable; not updatable");
  }
  return Status::NotFound("view " + def.name.ToString() +
                          " has no attribute " + attr.ToString());
}

std::vector<std::string> ViewManager::ViewNames() const {
  std::vector<std::string> out;
  out.reserve(views_.size());
  for (const auto& [name, def] : views_) out.push_back(name);
  return out;
}

}  // namespace xsql
