#ifndef XSQL_STORAGE_SNAPSHOT_H_
#define XSQL_STORAGE_SNAPSHOT_H_

#include <string>

#include "common/status.h"
#include "oid/oid.h"
#include "store/database.h"

namespace xsql {
namespace storage {

/// Durable snapshots of a Database: a line-oriented text format holding
/// the full schema (classes, IS-A edges, signatures), the instance-of
/// relation, and every object with its attribute values. Oids are
/// encoded self-delimiting (length-prefixed payloads), so arbitrary
/// strings and nested id-terms round-trip byte-exactly.
///
/// Not persisted (by design, documented): method *bodies* (native
/// functions cannot be serialized; query-defined methods and views are
/// re-installed by replaying their DDL, which callers own) and the
/// version counter (a loaded database starts fresh).
///
/// Format version 2: payloads escape `\` as `\\` and newline as `\n`
/// (length prefixes count escaped bytes), so strings and atoms with
/// embedded newlines round-trip. Version-1 snapshots still load. Output
/// is canonical — sections backed by unordered containers are emitted
/// in sorted oid order — so two equal databases (and a database before
/// a statement vs. after that statement rolled back) snapshot to
/// byte-identical text.

/// Serializes the database.
std::string SaveSnapshot(const Database& db);

/// Restores a snapshot produced by SaveSnapshot into `db`, which should
/// be freshly constructed (builtins are reconciled, everything else is
/// added). Fails with InvalidArgument on malformed input.
Status LoadSnapshot(const std::string& text, Database* db);

/// File convenience wrappers.
Status SaveSnapshotToFile(const Database& db, const std::string& path);
Status LoadSnapshotFromFile(const std::string& path, Database* db);

/// Self-delimiting oid codec (exposed for tests).
void EncodeOid(const Oid& oid, std::string* out);
Result<Oid> DecodeOid(const std::string& text, size_t* pos);

}  // namespace storage
}  // namespace xsql

#endif  // XSQL_STORAGE_SNAPSHOT_H_
