#include "storage/version.h"

#include <atomic>
#include <utility>

#include "obs/metrics.h"

namespace xsql {
namespace storage {

namespace {

/// Metrics can be disabled process-wide, but the GC tests need an exact
/// count, so the live-version census is a plain atomic beside the gauge.
std::atomic<int64_t> g_live_versions{0};

obs::Gauge& LiveGauge() {
  static obs::Gauge& g =
      obs::MetricsRegistry::Global().GetGauge("xsql.mvcc.live_versions");
  return g;
}

}  // namespace

DatabaseVersion::DatabaseVersion(uint64_t seq,
                                 std::unique_ptr<Database> database,
                                 std::unique_ptr<ViewManager> view_catalog)
    : sequence(seq), db(std::move(database)), views(std::move(view_catalog)) {
  LiveGauge().Set(g_live_versions.fetch_add(1, std::memory_order_relaxed) +
                  1);
}

DatabaseVersion::~DatabaseVersion() {
  static obs::Counter& retired =
      obs::MetricsRegistry::Global().GetCounter("xsql.mvcc.versions_retired");
  retired.Inc();
  LiveGauge().Set(g_live_versions.fetch_sub(1, std::memory_order_relaxed) -
                  1);
}

std::shared_ptr<DatabaseVersion> VersionChain::Prepare(
    std::unique_ptr<Database> db, std::unique_ptr<ViewManager> views) {
  std::lock_guard<std::mutex> lock(mu_);
  return std::make_shared<DatabaseVersion>(++next_sequence_, std::move(db),
                                           std::move(views));
}

void VersionChain::Install(std::shared_ptr<DatabaseVersion> v) {
  static obs::Counter& installed = obs::MetricsRegistry::Global().GetCounter(
      "xsql.mvcc.versions_installed");
  std::lock_guard<std::mutex> lock(mu_);
  if (head_ != nullptr && head_->sequence >= v->sequence) return;
  head_ = std::move(v);
  installed.Inc();
}

std::shared_ptr<const DatabaseVersion> VersionChain::Head() const {
  std::lock_guard<std::mutex> lock(mu_);
  return head_;
}

uint64_t VersionChain::head_sequence() const {
  std::lock_guard<std::mutex> lock(mu_);
  return head_ == nullptr ? 0 : head_->sequence;
}

int64_t VersionChain::live_versions() {
  return g_live_versions.load(std::memory_order_relaxed);
}

}  // namespace storage
}  // namespace xsql
