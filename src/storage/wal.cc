#include "storage/wal.h"

#include <cstring>

#include "common/crc32.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/file.h"

namespace xsql {
namespace storage {

namespace {

constexpr uint64_t kMagicLen = sizeof(Wal::kMagic) - 1;  // strip the NUL

void PutU32(uint32_t v, std::string* out) {
  out->push_back(static_cast<char>(v & 0xFF));
  out->push_back(static_cast<char>((v >> 8) & 0xFF));
  out->push_back(static_cast<char>((v >> 16) & 0xFF));
  out->push_back(static_cast<char>((v >> 24) & 0xFF));
}

uint32_t GetU32(const char* p) {
  const auto* b = reinterpret_cast<const unsigned char*>(p);
  return static_cast<uint32_t>(b[0]) | (static_cast<uint32_t>(b[1]) << 8) |
         (static_cast<uint32_t>(b[2]) << 16) |
         (static_cast<uint32_t>(b[3]) << 24);
}

}  // namespace

std::string Wal::EncodeRecord(const std::string& payload) {
  std::string out;
  out.reserve(kRecordHeader + payload.size());
  PutU32(static_cast<uint32_t>(payload.size()), &out);
  PutU32(Crc32(payload), &out);
  out.append(payload);
  return out;
}

Result<Wal::Scan> Wal::ScanContents(const std::string& contents) {
  if (contents.size() < kMagicLen ||
      contents.compare(0, kMagicLen, kMagic) != 0) {
    return Status::InvalidArgument(
        "not an XSQL WAL (bad or truncated magic header)");
  }
  Scan scan;
  uint64_t pos = kMagicLen;
  while (pos < contents.size()) {
    uint64_t remaining = contents.size() - pos;
    if (remaining < kRecordHeader) {
      scan.torn = true;
      scan.torn_detail = "torn record header at offset " +
                         std::to_string(pos) + " (" +
                         std::to_string(remaining) + " bytes)";
      break;
    }
    uint32_t len = GetU32(contents.data() + pos);
    uint32_t crc = GetU32(contents.data() + pos + 4);
    if (len > kMaxRecordLen || remaining - kRecordHeader < len) {
      scan.torn = true;
      scan.torn_detail = "torn record payload at offset " +
                         std::to_string(pos) + " (length " +
                         std::to_string(len) + ", " +
                         std::to_string(remaining - kRecordHeader) +
                         " bytes remain)";
      break;
    }
    std::string payload = contents.substr(pos + kRecordHeader, len);
    if (Crc32(payload) != crc) {
      scan.torn = true;
      scan.torn_detail = "checksum mismatch at offset " +
                         std::to_string(pos);
      break;
    }
    scan.records.push_back(std::move(payload));
    pos += kRecordHeader + len;
  }
  scan.valid_size = scan.torn ? pos : contents.size();
  return scan;
}

Status Wal::ParseRecords(const std::string& buf, uint64_t* consumed,
                         std::vector<std::string>* out) {
  uint64_t pos = 0;
  while (buf.size() - pos >= kRecordHeader) {
    uint32_t len = GetU32(buf.data() + pos);
    uint32_t crc = GetU32(buf.data() + pos + 4);
    if (len > kMaxRecordLen) {
      return Status::InvalidArgument(
          "corrupt WAL record (length " + std::to_string(len) +
          ") at stream offset " + std::to_string(pos));
    }
    if (buf.size() - pos - kRecordHeader < len) break;  // incomplete tail
    std::string payload = buf.substr(pos + kRecordHeader, len);
    if (Crc32(payload) != crc) {
      return Status::InvalidArgument(
          "corrupt WAL record (checksum mismatch) at stream offset " +
          std::to_string(pos));
    }
    out->push_back(std::move(payload));
    pos += kRecordHeader + len;
  }
  *consumed = pos;
  return Status::OK();
}

Result<Wal::Scan> Wal::ScanFile(const std::string& path) {
  XSQL_ASSIGN_OR_RETURN(std::string contents, File::ReadAll(path));
  return ScanContents(contents);
}

Status Wal::Create(const std::string& path) {
  XSQL_ASSIGN_OR_RETURN(File file, File::Create(path));
  XSQL_RETURN_IF_ERROR(file.Write(kMagic));
  XSQL_RETURN_IF_ERROR(file.Sync());
  return file.Close();
}

Result<Wal> Wal::OpenAppender(const std::string& path,
                              uint64_t synced_size) {
  XSQL_ASSIGN_OR_RETURN(uint64_t actual, File::Size(path));
  if (actual < synced_size) {
    return Status::InvalidArgument(
        "WAL " + path + " shorter than its valid prefix (" +
        std::to_string(actual) + " < " + std::to_string(synced_size) + ")");
  }
  if (actual > synced_size) {
    // Torn tail from a previous crash: discard it.
    XSQL_RETURN_IF_ERROR(File::Truncate(path, synced_size));
  }
  return Wal(path, synced_size);
}

Status Wal::Append(const std::string& payload) {
  obs::Span span("wal/append");
  return AppendBatch({payload});
}

Status Wal::AppendBatch(const std::vector<std::string>& payloads) {
  static obs::Counter& appends =
      obs::MetricsRegistry::Global().GetCounter("xsql.storage.wal_appends");
  static obs::Counter& append_bytes =
      obs::MetricsRegistry::Global().GetCounter("xsql.storage.wal_bytes");
  if (payloads.empty()) return Status::OK();
  obs::Span span("wal/append-batch");
  span.AddRows(payloads.size());
  std::string buf;
  for (const std::string& payload : payloads) {
    buf += EncodeRecord(payload);
  }
  Result<File> file = File::OpenAppend(path_);
  if (!file.ok()) return file.status();
  Status st = file->Write(buf);
  if (st.ok()) st = file->Sync();
  if (!st.ok()) {
    (void)file->Close();
    // Repair the torn append so a reported error implies "not durable".
    // Under a simulated crash the truncate fails too (the process is
    // dead); recovery's scan will discard the tail instead.
    (void)File::Truncate(path_, synced_size_.load(std::memory_order_relaxed));
    return st;
  }
  XSQL_RETURN_IF_ERROR(file->Close());
  synced_size_.fetch_add(buf.size(), std::memory_order_release);
  records_appended_.fetch_add(payloads.size(), std::memory_order_release);
  appends.Inc(payloads.size());
  append_bytes.Inc(buf.size());
  return Status::OK();
}

Result<WalTailer> WalTailer::Open(const std::string& path) {
  XSQL_ASSIGN_OR_RETURN(std::string head,
                        File::ReadRange(path, 0, kMagicLen));
  if (head.size() < kMagicLen ||
      head.compare(0, kMagicLen, Wal::kMagic) != 0) {
    return Status::InvalidArgument(
        "not an XSQL WAL (bad or truncated magic header): " + path);
  }
  return WalTailer(path, kMagicLen);
}

Status WalTailer::Poll(uint64_t durable_size, uint64_t max_bytes,
                       std::string* raw,
                       std::vector<std::string>* payloads) {
  if (durable_size <= offset_) return Status::OK();
  uint64_t want = durable_size - offset_;
  if (want > max_bytes) want = max_bytes;
  XSQL_ASSIGN_OR_RETURN(std::string buf,
                        File::ReadRange(path_, offset_, want));
  uint64_t consumed = 0;
  size_t before = payloads->size();
  XSQL_RETURN_IF_ERROR(Wal::ParseRecords(buf, &consumed, payloads));
  // A record straddling the max_bytes window parses next poll; a record
  // straddling durable_size cannot happen (appends land whole-batch).
  raw->append(buf, 0, static_cast<size_t>(consumed));
  offset_ += consumed;
  records_ += payloads->size() - before;
  return Status::OK();
}

Status WalTailer::SkipRecords(uint64_t n, uint64_t durable_size) {
  while (n > 0) {
    if (durable_size <= offset_) {
      return Status::InvalidArgument(
          "WAL " + path_ + " holds fewer records than the resume position");
    }
    uint64_t want = durable_size - offset_;
    if (want > (1u << 22)) want = 1u << 22;
    XSQL_ASSIGN_OR_RETURN(std::string buf,
                          File::ReadRange(path_, offset_, want));
    uint64_t pos = 0;
    uint64_t skipped = 0;
    while (n > 0 && buf.size() - pos >= Wal::kRecordHeader) {
      uint32_t len = GetU32(buf.data() + pos);
      if (len > Wal::kMaxRecordLen ||
          buf.size() - pos - Wal::kRecordHeader < len) {
        break;
      }
      pos += Wal::kRecordHeader + len;
      --n;
      ++skipped;
    }
    if (skipped == 0) {
      return Status::InvalidArgument(
          "WAL " + path_ + " holds fewer records than the resume position");
    }
    offset_ += pos;
    records_ += skipped;
  }
  return Status::OK();
}

uint64_t GroupCommitter::Enqueue(std::string payload) {
  std::lock_guard<std::mutex> lock(mu_);
  pending_.push_back(std::move(payload));
  return ++next_ticket_;
}

Status GroupCommitter::WaitDurable(uint64_t ticket) {
  static obs::Counter& batches = obs::MetricsRegistry::Global().GetCounter(
      "xsql.storage.group_commit_batches");
  static obs::Histogram& batch_size =
      obs::MetricsRegistry::Global().GetHistogram(
          "xsql.storage.group_commit_batch_size");
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (!failure_.ok()) return failure_;
    if (durable_seq_ >= ticket) return Status::OK();
    if (leader_active_) {
      // A batch is in flight (or another waiter is leading); our record
      // either rides in it or queues for the next leader.
      cv_.wait(lock);
      continue;
    }
    // Become the leader: take everything pending — FIFO enqueue order
    // is commit order, so durable_seq_ advances by exactly the batch
    // size. Our own record is in there (it was enqueued before this
    // wait), so one round suffices unless a follower shows up late.
    leader_active_ = true;
    std::vector<std::string> batch = std::move(pending_);
    pending_.clear();
    lock.unlock();
    Status st = wal_->AppendBatch(batch);
    lock.lock();
    leader_active_ = false;
    if (!st.ok()) {
      failure_ = st;  // sticky: later records built on never-durable state
      cv_.notify_all();
      return st;
    }
    durable_seq_ += batch.size();
    ++batches_committed_;
    batches.Inc();
    batch_size.Observe(batch.size());
    cv_.notify_all();
  }
}

Status GroupCommitter::Drain() {
  uint64_t last;
  {
    std::lock_guard<std::mutex> lock(mu_);
    last = next_ticket_;
  }
  return last == 0 ? Status::OK() : WaitDurable(last);
}

void GroupCommitter::Rebind(Wal* wal) {
  std::lock_guard<std::mutex> lock(mu_);
  wal_ = wal;
}

uint64_t GroupCommitter::batches_committed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return batches_committed_;
}

}  // namespace storage
}  // namespace xsql
