#ifndef XSQL_STORAGE_WAL_H_
#define XSQL_STORAGE_WAL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace xsql {
namespace storage {

/// Statement-level write-ahead log.
///
/// File layout: the magic line `XSQL-WAL 1\n`, then a sequence of
/// binary records
///
///     [u32 len | little-endian]
///     [u32 crc | little-endian, CRC-32 of the payload bytes]
///     [len payload bytes]
///
/// The payload is an executable statement (the exact text the session
/// ran). Records are append-only and each append is fsynced before the
/// statement is acknowledged, so an acknowledged statement survives any
/// later crash.
///
/// A crash during an append can leave a *torn tail*: a trailing record
/// whose length field, payload, or checksum is incomplete. `Scan`
/// detects this — the first record that does not fit or whose CRC
/// mismatches ends the valid prefix — and recovery truncates the file
/// back to `valid_size`, discarding the tail. Nothing after a bad
/// record is ever trusted: a torn record is by construction the last
/// thing written.
class Wal {
 public:
  static constexpr const char kMagic[] = "XSQL-WAL 1\n";
  /// Length + CRC prefix per record.
  static constexpr uint64_t kRecordHeader = 8;
  /// Records above this length are treated as torn garbage on scan.
  static constexpr uint64_t kMaxRecordLen = 1ull << 30;

  /// Encodes one record (header + payload) ready for appending.
  static std::string EncodeRecord(const std::string& payload);

  /// What a scan of an existing log found.
  struct Scan {
    std::vector<std::string> records;  // valid payloads, in order
    uint64_t valid_size = 0;           // bytes of magic + valid records
    bool torn = false;                 // a torn/corrupt tail follows
    std::string torn_detail;           // why the tail was rejected
  };

  /// Validates `contents` (a full WAL file image) record by record.
  /// Fails only when the magic header itself is missing or wrong; a
  /// bad record merely ends the valid prefix and sets `torn`.
  static Result<Scan> ScanContents(const std::string& contents);

  /// Parses complete records out of `buf` — a slice of the record
  /// stream with NO magic header, as shipped in a replication batch or
  /// read mid-file by a tailer. Stops cleanly at an incomplete tail
  /// (`*consumed` is the bytes of whole records parsed); a CRC
  /// mismatch or oversized length is InvalidArgument, because inside
  /// the durable prefix there is no honest way to get one.
  static Status ParseRecords(const std::string& buf, uint64_t* consumed,
                             std::vector<std::string>* out);

  /// Reads and scans the log at `path`.
  static Result<Scan> ScanFile(const std::string& path);

  /// Creates an empty log (magic only) at `path`, fsynced.
  static Status Create(const std::string& path);

  /// Binds an appender to an existing log whose valid prefix is
  /// `synced_size` bytes (from a scan). If the file is longer — a torn
  /// tail — it is truncated back to the valid prefix first.
  static Result<Wal> OpenAppender(const std::string& path,
                                  uint64_t synced_size);

  /// Appends one record and fsyncs it. On a transient I/O failure the
  /// file is truncated back to its pre-append size so "error" implies
  /// "not durable"; on a simulated crash the torn bytes stay for
  /// recovery to find.
  Status Append(const std::string& payload);

  /// Appends `payloads` as consecutive records with ONE write and ONE
  /// fsync — the group-commit primitive. All-or-nothing at the API
  /// level: on failure the file is truncated back to its pre-batch
  /// size (best effort; a simulated crash leaves the torn bytes for
  /// recovery, which keeps whatever record prefix survived intact).
  Status AppendBatch(const std::vector<std::string>& payloads);

  const std::string& path() const { return path_; }

  /// Durable byte length (magic + synced records). Atomic so the
  /// replication shipper can read the position while a group-commit
  /// leader appends; the value only ever grows and a reader acting on
  /// a slightly stale length just ships the extra records next poll.
  uint64_t synced_size() const {
    return synced_size_.load(std::memory_order_acquire);
  }
  uint64_t records_appended() const {
    return records_appended_.load(std::memory_order_acquire);
  }

  /// An unbound appender, so Wal can travel through Result<>.
  Wal() = default;

  // Moves are hand-written because the counters are atomic. Only safe
  // while nothing else references the source (construction-time
  // plumbing); the appender is externally synchronized once shared.
  Wal(Wal&& other) noexcept
      : path_(std::move(other.path_)),
        synced_size_(other.synced_size_.load(std::memory_order_relaxed)),
        records_appended_(
            other.records_appended_.load(std::memory_order_relaxed)) {}
  Wal& operator=(Wal&& other) noexcept {
    if (this != &other) {
      path_ = std::move(other.path_);
      synced_size_.store(other.synced_size_.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
      records_appended_.store(
          other.records_appended_.load(std::memory_order_relaxed),
          std::memory_order_relaxed);
    }
    return *this;
  }

 private:
  Wal(std::string path, uint64_t synced_size)
      : path_(std::move(path)), synced_size_(synced_size) {}

  std::string path_;
  std::atomic<uint64_t> synced_size_{0};
  std::atomic<uint64_t> records_appended_{0};
};

/// Streams committed records out of a WAL file in group-commit order —
/// the primary's side of WAL shipping. The tailer holds a byte offset
/// into the record stream and polls: each `Poll` reads whole records in
/// `[offset, durable_size)` (the caller passes the appender's current
/// `synced_size()`, so the tailer never reads past what is durable and
/// never sees a torn tail). Reads go through `File::ReadRange` by path,
/// not a held descriptor, so a tailer tolerates the file growing under
/// it and costs nothing between polls.
class WalTailer {
 public:
  /// Binds a tailer to the WAL at `path`, positioned at the first
  /// record (validates the magic header).
  static Result<WalTailer> Open(const std::string& path);

  /// Reads complete records in `[offset(), durable_size)`, at most
  /// `max_bytes` of them per call. `raw` receives the exact encoded
  /// bytes (headers included) for re-shipping; `payloads` the decoded
  /// statements. Both are appended to. Advances the offset past what
  /// was returned. No new records is not an error (both stay empty).
  Status Poll(uint64_t durable_size, uint64_t max_bytes, std::string* raw,
              std::vector<std::string>* payloads);

  /// Skips `n` records without returning them (resume-from-position:
  /// the subscriber already has a durable prefix). Fails if fewer than
  /// `n` whole records exist below `durable_size`.
  Status SkipRecords(uint64_t n, uint64_t durable_size);

  /// Current byte offset into the file (magic + records consumed).
  uint64_t offset() const { return offset_; }
  /// Records streamed (or skipped) so far.
  uint64_t records() const { return records_; }

  WalTailer() = default;

 private:
  explicit WalTailer(std::string path, uint64_t offset)
      : path_(std::move(path)), offset_(offset) {}

  std::string path_;
  uint64_t offset_ = 0;
  uint64_t records_ = 0;
};

/// Batches WAL appends from concurrent committers into shared fsyncs —
/// the classic leader/follower group commit. Callers `Enqueue` their
/// record (producing a *ticket*, the record's position in commit
/// order) and then `WaitDurable(ticket)`. The first waiter whose
/// ticket is not yet durable becomes the leader: it takes *every*
/// pending record, writes them with one `Wal::AppendBatch` (one
/// fsync), and wakes the followers whose records rode along. Records
/// that arrive while a batch's fsync is in flight queue up for the
/// next leader, so the fsync latency itself is the batching window —
/// no timer, no configuration, and a lone writer degenerates to
/// exactly the serial one-fsync-per-statement path.
///
/// Ordering contract: callers must enqueue in the same order they
/// applied their statements to the shared in-memory database (the
/// server enqueues while still holding the exclusive statement latch).
/// Batching then preserves that order on disk, so recovery replays a
/// prefix of the real execution history.
///
/// Failure contract: a failed batch is *sticky*. Records after the
/// failed batch were acknowledged-to-enqueue on top of in-memory state
/// that will never be durable, so no later batch is allowed to commit;
/// every current and future waiter gets the failure. The owner is
/// expected to wedge the database (see DurableDatabase::Wedge) and
/// force a reopen, which recovers the durable prefix.
class GroupCommitter {
 public:
  /// Binds to the WAL appender; `wal` must outlive the committer (or be
  /// replaced via Rebind before it dies).
  explicit GroupCommitter(Wal* wal) : wal_(wal) {}
  GroupCommitter(const GroupCommitter&) = delete;
  GroupCommitter& operator=(const GroupCommitter&) = delete;

  /// Adds one record to the pending batch; returns its ticket (1-based
  /// position in commit order). Never blocks on I/O.
  uint64_t Enqueue(std::string payload);

  /// Blocks until every record with a ticket ≤ `ticket` is durable, or
  /// returns the sticky failure. `ticket` 0 (read-only statement) is
  /// immediately durable by definition.
  Status WaitDurable(uint64_t ticket);

  /// Flushes everything enqueued so far (one final batch if needed).
  /// Used before checkpoints and at shutdown.
  Status Drain();

  /// Re-points the committer at a rotated WAL appender. The caller
  /// must have Drained and must hold the exclusive statement latch, so
  /// no batch is in flight and nothing is pending.
  void Rebind(Wal* wal);

  /// Batches fsynced so far (each is one fsync shared by ≥1 records).
  uint64_t batches_committed() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  Wal* wal_;
  std::vector<std::string> pending_;  // enqueued, not yet written
  uint64_t next_ticket_ = 0;          // records enqueued
  uint64_t durable_seq_ = 0;          // records durable (prefix length)
  uint64_t batches_committed_ = 0;
  bool leader_active_ = false;
  Status failure_ = Status::OK();  // sticky once set
};

}  // namespace storage
}  // namespace xsql

#endif  // XSQL_STORAGE_WAL_H_
