#ifndef XSQL_STORAGE_WAL_H_
#define XSQL_STORAGE_WAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace xsql {
namespace storage {

/// Statement-level write-ahead log.
///
/// File layout: the magic line `XSQL-WAL 1\n`, then a sequence of
/// binary records
///
///     [u32 len | little-endian]
///     [u32 crc | little-endian, CRC-32 of the payload bytes]
///     [len payload bytes]
///
/// The payload is an executable statement (the exact text the session
/// ran). Records are append-only and each append is fsynced before the
/// statement is acknowledged, so an acknowledged statement survives any
/// later crash.
///
/// A crash during an append can leave a *torn tail*: a trailing record
/// whose length field, payload, or checksum is incomplete. `Scan`
/// detects this — the first record that does not fit or whose CRC
/// mismatches ends the valid prefix — and recovery truncates the file
/// back to `valid_size`, discarding the tail. Nothing after a bad
/// record is ever trusted: a torn record is by construction the last
/// thing written.
class Wal {
 public:
  static constexpr const char kMagic[] = "XSQL-WAL 1\n";
  /// Length + CRC prefix per record.
  static constexpr uint64_t kRecordHeader = 8;
  /// Records above this length are treated as torn garbage on scan.
  static constexpr uint64_t kMaxRecordLen = 1ull << 30;

  /// Encodes one record (header + payload) ready for appending.
  static std::string EncodeRecord(const std::string& payload);

  /// What a scan of an existing log found.
  struct Scan {
    std::vector<std::string> records;  // valid payloads, in order
    uint64_t valid_size = 0;           // bytes of magic + valid records
    bool torn = false;                 // a torn/corrupt tail follows
    std::string torn_detail;           // why the tail was rejected
  };

  /// Validates `contents` (a full WAL file image) record by record.
  /// Fails only when the magic header itself is missing or wrong; a
  /// bad record merely ends the valid prefix and sets `torn`.
  static Result<Scan> ScanContents(const std::string& contents);

  /// Reads and scans the log at `path`.
  static Result<Scan> ScanFile(const std::string& path);

  /// Creates an empty log (magic only) at `path`, fsynced.
  static Status Create(const std::string& path);

  /// Binds an appender to an existing log whose valid prefix is
  /// `synced_size` bytes (from a scan). If the file is longer — a torn
  /// tail — it is truncated back to the valid prefix first.
  static Result<Wal> OpenAppender(const std::string& path,
                                  uint64_t synced_size);

  /// Appends one record and fsyncs it. On a transient I/O failure the
  /// file is truncated back to its pre-append size so "error" implies
  /// "not durable"; on a simulated crash the torn bytes stay for
  /// recovery to find.
  Status Append(const std::string& payload);

  const std::string& path() const { return path_; }
  uint64_t synced_size() const { return synced_size_; }
  uint64_t records_appended() const { return records_appended_; }

  /// An unbound appender, so Wal can travel through Result<>.
  Wal() = default;

 private:
  Wal(std::string path, uint64_t synced_size)
      : path_(std::move(path)), synced_size_(synced_size) {}

  std::string path_;
  uint64_t synced_size_ = 0;
  uint64_t records_appended_ = 0;
};

}  // namespace storage
}  // namespace xsql

#endif  // XSQL_STORAGE_WAL_H_
