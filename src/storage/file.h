#ifndef XSQL_STORAGE_FILE_H_
#define XSQL_STORAGE_FILE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace xsql {
namespace storage {

/// The single gateway for durable file I/O. Every byte the durability
/// layer writes — snapshots, WAL records, the CURRENT pointer — goes
/// through this class, which is what lets `FaultInjector`'s `kIo`
/// domain inject the three storage failure modes deterministically:
///
///  * transient faults (`ArmNth`/`ArmRandom` on `Domain::kIo`): the
///    n-th I/O operation fails and the process lives. A failed Sync
///    models a short write — half the pending bytes reach the file
///    before the error — so callers must repair (truncate) or abandon
///    (temp file) the partial state;
///  * simulated crash (`ArmCrashAtByte(k)`): writes are buffered in
///    user space and only reach the file during `Sync`, which charges
///    the byte count against the crash budget. When the budget runs
///    out mid-sync, only the granted prefix lands (a torn write) and
///    from then on every File operation fails without touching disk —
///    the moral equivalent of `kill -9` plus loss of the page cache.
///    Metadata operations (`Rename`, `Sync` of a directory) charge one
///    unit each, so a crash can also land *between* file operations.
///
/// Unsynced buffered data is deliberately dropped on Close: durability
/// is only ever claimed for bytes that survived a `Sync`.
class File {
 public:
  /// An empty (closed) handle, so File can travel through Result<>.
  File() = default;

  File(File&& other) noexcept;
  File& operator=(File&& other) noexcept;
  ~File();

  File(const File&) = delete;
  File& operator=(const File&) = delete;

  /// Creates/truncates `path` for writing.
  static Result<File> Create(const std::string& path);

  /// Opens `path` for appending (must exist).
  static Result<File> OpenAppend(const std::string& path);

  /// Buffers `data`; nothing reaches the file until Sync.
  Status Write(const std::string& data);

  /// Flushes the buffer to the file and fsyncs. All injection happens
  /// here: a transient fault writes half the buffer and errors; a
  /// crash writes the budget-granted prefix and errors.
  Status Sync();

  /// Closes the descriptor, dropping any unsynced buffered bytes.
  Status Close();

  /// Bytes successfully synced through this handle.
  uint64_t synced_bytes() const { return synced_bytes_; }

  // ---- Whole-file and metadata helpers ------------------------------

  /// Reads the full contents. NotFound when the file does not exist;
  /// RuntimeError (with errno detail) for any other failure, including
  /// unreadable files and directories.
  static Result<std::string> ReadAll(const std::string& path);

  /// Reads up to `len` bytes starting at `offset`. A short (or empty)
  /// result at end-of-file is not an error — the WAL tailer polls past
  /// the current end all the time. Like ReadAll, reads take no fault
  /// checks: reading is free, only persistence is instrumented.
  static Result<std::string> ReadRange(const std::string& path,
                                       uint64_t offset, uint64_t len);

  /// Crash-safe whole-file replacement: write `path`.tmp, Sync, rename
  /// over `path`, fsync the parent directory. A crash at any byte
  /// leaves either the old complete file or the new complete file.
  static Status WriteAtomic(const std::string& path,
                            const std::string& data);

  /// Atomically renames `from` onto `to` and fsyncs the parent
  /// directory (one metadata unit against the crash budget).
  static Status Rename(const std::string& from, const std::string& to);

  /// Truncates `path` to `size` bytes and fsyncs. Used to repair a
  /// torn tail; only the crashed check applies (no transient fault, so
  /// the repair path itself stays reliable under Nth sweeps).
  static Status Truncate(const std::string& path, uint64_t size);

  static bool Exists(const std::string& path);
  static Result<uint64_t> Size(const std::string& path);

  /// Best-effort delete; fails only when crashed (a dead process
  /// removes nothing).
  static Status Remove(const std::string& path);

  /// Creates `dir` if missing (single level).
  static Status EnsureDir(const std::string& dir);

  /// Lists the entry names in `dir` (no "." / ".."), unsorted.
  static Result<std::vector<std::string>> ListDir(const std::string& dir);

 private:
  File(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}

  int fd_ = -1;
  std::string path_;
  std::string buffer_;
  uint64_t synced_bytes_ = 0;
};

}  // namespace storage
}  // namespace xsql

#endif  // XSQL_STORAGE_FILE_H_
