#include "storage/snapshot.h"

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "storage/file.h"

namespace xsql {
namespace storage {

namespace {

// Version 2 escapes newlines/backslashes in payloads; version 1 (no
// escaping, could not represent embedded newlines) is still loadable.
constexpr const char* kHeader = "XSQL-SNAPSHOT 2";
constexpr const char* kHeaderV1 = "XSQL-SNAPSHOT 1";

Status Malformed(const std::string& what, size_t pos) {
  return Status::InvalidArgument("malformed snapshot: " + what +
                                 " at offset " + std::to_string(pos));
}

// Payload escaping keeps the format line-oriented: `\` -> `\\` and
// newline -> `\n`. The length prefix counts *escaped* bytes, so the
// payload remains self-delimiting.
void EscapeInto(const std::string& raw, std::string* out) {
  for (char c : raw) {
    if (c == '\\') {
      out->append("\\\\");
    } else if (c == '\n') {
      out->append("\\n");
    } else {
      out->push_back(c);
    }
  }
}

std::string Unescape(const std::string& payload) {
  std::string out;
  out.reserve(payload.size());
  for (size_t i = 0; i < payload.size(); ++i) {
    if (payload[i] == '\\' && i + 1 < payload.size()) {
      char next = payload[i + 1];
      if (next == '\\') {
        out.push_back('\\');
        ++i;
        continue;
      }
      if (next == 'n') {
        out.push_back('\n');
        ++i;
        continue;
      }
    }
    // Lone backslashes pass through, so v1 payloads (no escaping) that
    // contain a backslash not followed by `\` or `n` still load.
    out.push_back(payload[i]);
  }
  return out;
}

}  // namespace

void EncodeOid(const Oid& oid, std::string* out) {
  switch (oid.kind()) {
    case OidKind::kNil:
      out->push_back('n');
      break;
    case OidKind::kBool:
      out->push_back('b');
      out->push_back(oid.bool_value() ? '1' : '0');
      break;
    case OidKind::kInt:
      out->push_back('i');
      out->append(std::to_string(oid.int_value()));
      out->push_back(';');
      break;
    case OidKind::kReal: {
      char buf[40];
      std::snprintf(buf, sizeof(buf), "r%.17g;", oid.real_value());
      out->append(buf);
      break;
    }
    case OidKind::kString:
    case OidKind::kAtom: {
      std::string escaped;
      EscapeInto(oid.str(), &escaped);
      out->push_back(oid.is_string() ? 's' : 'a');
      out->append(std::to_string(escaped.size()));
      out->push_back(':');
      out->append(escaped);
      break;
    }
    case OidKind::kTerm: {
      std::string escaped;
      EscapeInto(oid.term_fn(), &escaped);
      out->push_back('t');
      out->append(std::to_string(escaped.size()));
      out->push_back(':');
      out->append(escaped);
      out->append(std::to_string(oid.term_args().size()));
      out->push_back(';');
      for (const Oid& arg : oid.term_args()) EncodeOid(arg, out);
      break;
    }
  }
}

namespace {

Result<int64_t> DecodeInt(const std::string& text, size_t* pos,
                          char terminator) {
  size_t start = *pos;
  size_t end = text.find(terminator, start);
  if (end == std::string::npos) return Malformed("unterminated number", start);
  errno = 0;
  char* stop = nullptr;
  std::string digits = text.substr(start, end - start);
  int64_t value = std::strtoll(digits.c_str(), &stop, 10);
  if (errno != 0 || stop == digits.c_str() || *stop != '\0') {
    return Malformed("bad number", start);
  }
  *pos = end + 1;
  return value;
}

Result<std::string> DecodePayload(const std::string& text, size_t* pos) {
  XSQL_ASSIGN_OR_RETURN(int64_t len, DecodeInt(text, pos, ':'));
  if (len < 0 || *pos + static_cast<size_t>(len) > text.size()) {
    return Malformed("payload overruns input", *pos);
  }
  std::string payload = text.substr(*pos, static_cast<size_t>(len));
  *pos += static_cast<size_t>(len);
  return Unescape(payload);
}

}  // namespace

Result<Oid> DecodeOid(const std::string& text, size_t* pos) {
  if (*pos >= text.size()) return Malformed("truncated oid", *pos);
  char tag = text[(*pos)++];
  switch (tag) {
    case 'n':
      return Oid::Nil();
    case 'b': {
      if (*pos >= text.size()) return Malformed("truncated bool", *pos);
      char v = text[(*pos)++];
      return Oid::Bool(v == '1');
    }
    case 'i': {
      XSQL_ASSIGN_OR_RETURN(int64_t value, DecodeInt(text, pos, ';'));
      return Oid::Int(value);
    }
    case 'r': {
      size_t start = *pos;
      size_t end = text.find(';', start);
      if (end == std::string::npos) return Malformed("unterminated real", start);
      errno = 0;
      char* stop = nullptr;
      std::string digits = text.substr(start, end - start);
      double value = std::strtod(digits.c_str(), &stop);
      if (errno != 0 || stop == digits.c_str() || *stop != '\0' ||
          !std::isfinite(value)) {
        // Non-finite reals would break Oid's total order.
        return Malformed("bad real", start);
      }
      *pos = end + 1;
      return Oid::Real(value);
    }
    case 's': {
      XSQL_ASSIGN_OR_RETURN(std::string payload, DecodePayload(text, pos));
      return Oid::String(std::move(payload));
    }
    case 'a': {
      XSQL_ASSIGN_OR_RETURN(std::string payload, DecodePayload(text, pos));
      return Oid::Atom(std::move(payload));
    }
    case 't': {
      XSQL_ASSIGN_OR_RETURN(std::string fn, DecodePayload(text, pos));
      XSQL_ASSIGN_OR_RETURN(int64_t argc, DecodeInt(text, pos, ';'));
      if (argc < 0 || argc > 1 << 20) return Malformed("bad arity", *pos);
      std::vector<Oid> args;
      args.reserve(static_cast<size_t>(argc));
      for (int64_t i = 0; i < argc; ++i) {
        XSQL_ASSIGN_OR_RETURN(Oid arg, DecodeOid(text, pos));
        args.push_back(std::move(arg));
      }
      return Oid::Term(std::move(fn), std::move(args));
    }
    default:
      return Malformed(std::string("unknown oid tag '") + tag + "'",
                       *pos - 1);
  }
}

std::string SaveSnapshot(const Database& db) {
  std::string out = kHeader;
  out += '\n';
  auto emit_oid = [&out](const Oid& oid) { EncodeOid(oid, &out); };

  for (const Oid& cls : db.graph().classes()) {
    out += "CLASS ";
    emit_oid(cls);
    out += '\n';
  }
  for (const Oid& cls : db.graph().classes()) {
    for (const Oid& super : db.graph().DirectSuperclasses(cls)) {
      out += "ISA ";
      emit_oid(cls);
      out += ' ';
      emit_oid(super);
      out += '\n';
    }
  }
  // SIG/INST/OBJ/ATTR sections come from unordered maps; emit them in
  // sorted order so equal databases produce byte-identical snapshots
  // (CLASS and ISA already iterate stable declaration-order vectors).
  std::vector<Oid> sig_classes = db.signatures().DeclaringClasses();
  std::sort(sig_classes.begin(), sig_classes.end());
  for (const Oid& cls : sig_classes) {
    for (const Oid& method : db.signatures().DeclaredMethods(cls)) {
      for (const Signature& sig : db.signatures().Declared(cls, method)) {
        out += "SIG ";
        emit_oid(cls);
        out += ' ';
        emit_oid(sig.method);
        out += ' ';
        out += std::to_string(sig.args.size());
        for (const Oid& arg : sig.args) {
          out += ' ';
          emit_oid(arg);
        }
        out += ' ';
        emit_oid(sig.result);
        out += sig.set_valued ? " set" : " scalar";
        out += '\n';
      }
    }
  }
  std::vector<std::pair<Oid, Oid>> inst = db.graph().AllInstancePairs();
  std::sort(inst.begin(), inst.end());
  for (const auto& [obj, cls] : inst) {
    out += "INST ";
    emit_oid(obj);
    out += ' ';
    emit_oid(cls);
    out += '\n';
  }
  std::vector<std::pair<const Oid*, const Object*>> object_entries;
  object_entries.reserve(db.object_count());
  db.ForEachObject([&](const Oid& oid, const Object& object) {
    object_entries.emplace_back(&oid, &object);
  });
  std::sort(object_entries.begin(), object_entries.end(),
            [](const auto& a, const auto& b) { return *a.first < *b.first; });
  for (const auto& [oid_ptr, object_ptr] : object_entries) {
    const Oid& oid = *oid_ptr;
    const Object& object = *object_ptr;
    out += "OBJ ";
    emit_oid(oid);
    out += '\n';
    for (const auto& [attr, value] : object.attrs()) {
      out += "ATTR ";
      emit_oid(oid);
      out += ' ';
      emit_oid(attr);
      if (value.set_valued()) {
        out += " set " + std::to_string(value.set().size());
        for (const Oid& v : value.set()) {
          out += ' ';
          emit_oid(v);
        }
      } else {
        out += " scalar ";
        emit_oid(value.scalar());
      }
      out += '\n';
    }
  }
  return out;
}

namespace {

/// Token cursor over one snapshot line. Owns its text: callers pass
/// substr temporaries.
class LineCursor {
 public:
  explicit LineCursor(std::string line) : line_(std::move(line)) {}

  Result<Oid> NextOid() {
    SkipSpace();
    return DecodeOid(line_, &pos_);
  }

  Result<int64_t> NextCount() {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < line_.size() && line_[pos_] != ' ') ++pos_;
    errno = 0;
    char* stop = nullptr;
    std::string digits = line_.substr(start, pos_ - start);
    int64_t value = std::strtoll(digits.c_str(), &stop, 10);
    if (errno != 0 || stop == digits.c_str() || *stop != '\0') {
      return Malformed("bad count", start);
    }
    return value;
  }

  Result<std::string> NextWord() {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < line_.size() && line_[pos_] != ' ') ++pos_;
    if (start == pos_) return Malformed("missing word", start);
    return line_.substr(start, pos_ - start);
  }

  /// A record must consume its whole line: trailing garbage would load
  /// "successfully" while silently dropping data, so reject it.
  Status ExpectEnd() {
    SkipSpace();
    if (pos_ < line_.size()) {
      return Malformed("trailing garbage '" + line_.substr(pos_) + "'",
                       pos_);
    }
    return Status::OK();
  }

 private:
  void SkipSpace() {
    while (pos_ < line_.size() && line_[pos_] == ' ') ++pos_;
  }

  std::string line_;
  size_t pos_ = 0;
};

}  // namespace

namespace {

/// Parses and applies one snapshot record line (sans the leading record
/// word). Every error is InvalidArgument; the caller stamps the line
/// number on.
Status ApplyLine(const std::string& record, LineCursor* cursor,
                 Database* db) {
  if (record == "CLASS") {
    XSQL_ASSIGN_OR_RETURN(Oid cls, cursor->NextOid());
    XSQL_RETURN_IF_ERROR(cursor->ExpectEnd());
    return db->mutable_graph().DeclareClass(cls);
  }
  if (record == "ISA") {
    XSQL_ASSIGN_OR_RETURN(Oid sub, cursor->NextOid());
    XSQL_ASSIGN_OR_RETURN(Oid super, cursor->NextOid());
    XSQL_RETURN_IF_ERROR(cursor->ExpectEnd());
    return db->mutable_graph().AddSubclass(sub, super);
  }
  if (record == "SIG") {
    XSQL_ASSIGN_OR_RETURN(Oid cls, cursor->NextOid());
    Signature sig;
    XSQL_ASSIGN_OR_RETURN(sig.method, cursor->NextOid());
    XSQL_ASSIGN_OR_RETURN(int64_t argc, cursor->NextCount());
    if (argc < 0) return Malformed("negative SIG arity", 0);
    for (int64_t i = 0; i < argc; ++i) {
      XSQL_ASSIGN_OR_RETURN(Oid arg, cursor->NextOid());
      sig.args.push_back(std::move(arg));
    }
    XSQL_ASSIGN_OR_RETURN(sig.result, cursor->NextOid());
    XSQL_ASSIGN_OR_RETURN(std::string kind, cursor->NextWord());
    if (kind != "set" && kind != "scalar") {
      return Malformed("bad SIG kind '" + kind + "'", 0);
    }
    sig.set_valued = kind == "set";
    XSQL_RETURN_IF_ERROR(cursor->ExpectEnd());
    return db->DeclareSignature(cls, std::move(sig));
  }
  if (record == "INST") {
    XSQL_ASSIGN_OR_RETURN(Oid obj, cursor->NextOid());
    XSQL_ASSIGN_OR_RETURN(Oid cls, cursor->NextOid());
    XSQL_RETURN_IF_ERROR(cursor->ExpectEnd());
    return db->mutable_graph().AddInstance(obj, cls);
  }
  if (record == "OBJ") {
    XSQL_ASSIGN_OR_RETURN(Oid oid, cursor->NextOid());
    XSQL_RETURN_IF_ERROR(cursor->ExpectEnd());
    return db->NewObject(oid, {});
  }
  if (record == "ATTR") {
    XSQL_ASSIGN_OR_RETURN(Oid oid, cursor->NextOid());
    XSQL_ASSIGN_OR_RETURN(Oid attr, cursor->NextOid());
    XSQL_ASSIGN_OR_RETURN(std::string kind, cursor->NextWord());
    if (kind == "scalar") {
      XSQL_ASSIGN_OR_RETURN(Oid value, cursor->NextOid());
      XSQL_RETURN_IF_ERROR(cursor->ExpectEnd());
      return db->SetScalar(oid, attr, value);
    }
    if (kind == "set") {
      XSQL_ASSIGN_OR_RETURN(int64_t count, cursor->NextCount());
      if (count < 0) return Malformed("negative set count", 0);
      OidSet values;
      for (int64_t i = 0; i < count; ++i) {
        XSQL_ASSIGN_OR_RETURN(Oid value, cursor->NextOid());
        values.Insert(value);
      }
      XSQL_RETURN_IF_ERROR(cursor->ExpectEnd());
      return db->SetSet(oid, attr, std::move(values));
    }
    return Malformed("bad ATTR kind '" + kind + "'", 0);
  }
  return Malformed("unknown record '" + record + "'", 0);
}

}  // namespace

Status LoadSnapshot(const std::string& text, Database* db) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || (line != kHeader && line != kHeaderV1)) {
    return Status::InvalidArgument("not an XSQL snapshot (bad header)");
  }
  size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    size_t space = line.find(' ');
    if (space == std::string::npos) {
      return Malformed("record '" + line + "' without payload (line " +
                       std::to_string(line_no) + ")", 0);
    }
    std::string record = line.substr(0, space);
    LineCursor cursor(line.substr(space + 1));
    Status st = ApplyLine(record, &cursor, db);
    if (!st.ok()) {
      // Offsets inside messages are relative to the line's payload;
      // stamp the line number so corrupt files pinpoint themselves.
      return Status(st.code(),
                    st.message() + " (line " + std::to_string(line_no) + ")");
    }
  }
  return Status::OK();
}

Status SaveSnapshotToFile(const Database& db, const std::string& path) {
  // Crash-safe replacement: the snapshot lands in a temp file in the
  // same directory, is fsynced, and only then renamed over the target.
  // A crash at any point leaves either the old or the new snapshot
  // complete — never a truncated hybrid.
  return File::WriteAtomic(path, SaveSnapshot(db));
}

Status LoadSnapshotFromFile(const std::string& path, Database* db) {
  XSQL_ASSIGN_OR_RETURN(std::string text, File::ReadAll(path));
  return LoadSnapshot(text, db);
}

}  // namespace storage
}  // namespace xsql
