#ifndef XSQL_STORAGE_VERSION_H_
#define XSQL_STORAGE_VERSION_H_

#include <cstdint>
#include <memory>
#include <mutex>

#include "eval/view.h"
#include "store/database.h"

namespace xsql {
namespace storage {

/// One immutable, consistent database version: a structurally-shared
/// fork of the master database (see Database::Fork) plus a clone of the
/// view catalog rebound to it. Built by a writer under the exclusive
/// latch, published to the version chain *after* its group commit is
/// durable, and from then on read by any number of threads with no
/// synchronization — nothing here is ever mutated after Install.
///
/// `sequence` is assigned under the writer latch in WAL-enqueue order,
/// so version order == WAL order == replication order; the chain only
/// ever moves its head forward along it.
///
/// Lifetime is the GC: readers pin a version by holding the shared_ptr;
/// when the chain's head moves on and the last pin drops, the version —
/// and every COW shard only it references — is freed on the releasing
/// thread. The destructor counts that reclaim.
struct DatabaseVersion {
  uint64_t sequence = 0;
  std::unique_ptr<Database> db;
  std::unique_ptr<ViewManager> views;

  DatabaseVersion(uint64_t seq, std::unique_ptr<Database> database,
                  std::unique_ptr<ViewManager> view_catalog);
  ~DatabaseVersion();

  DatabaseVersion(const DatabaseVersion&) = delete;
  DatabaseVersion& operator=(const DatabaseVersion&) = delete;
};

/// The MVCC version chain: hands out sequence numbers to writers (under
/// their latch), installs durable versions in order, and serves the
/// current head to latch-free readers.
class VersionChain {
 public:
  /// Wraps a forked database + rebound view catalog as the next version.
  /// MUST be called under the writer's exclusive latch, immediately
  /// after the statement executed (and, for durable writes, after its
  /// WAL record was enqueued): the sequence assigned here is what keeps
  /// version order equal to WAL order.
  std::shared_ptr<DatabaseVersion> Prepare(
      std::unique_ptr<Database> db, std::unique_ptr<ViewManager> views);

  /// Publishes `v` as the new head iff it is newer than the installed
  /// head. Called by the committing writer *after* WaitDurable succeeds
  /// — group-commit wakeups can arrive out of ticket order, so a stale
  /// sequence is simply dropped (its state is a prefix of the head's).
  /// Readers that pinned the old head keep it alive; everyone arriving
  /// later sees `v`.
  void Install(std::shared_ptr<DatabaseVersion> v);

  /// The current head — the latch-free reader entry point. Never null
  /// after the first Install.
  std::shared_ptr<const DatabaseVersion> Head() const;

  uint64_t head_sequence() const;

  /// Versions currently alive (installed, not yet destructed. The head
  /// and any reader-pinned superseded versions). Backs the version-GC
  /// tests and the xsql.mvcc.live_versions gauge.
  static int64_t live_versions();

 private:
  mutable std::mutex mu_;
  std::shared_ptr<const DatabaseVersion> head_;
  uint64_t next_sequence_ = 0;
};

}  // namespace storage
}  // namespace xsql

#endif  // XSQL_STORAGE_VERSION_H_
