#include "storage/file.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/fault.h"
#include "obs/metrics.h"

namespace xsql {
namespace storage {

namespace {

Status ErrnoError(const std::string& what, const std::string& path) {
  return Status::RuntimeError(what + " " + path + ": " +
                              std::strerror(errno));
}

std::string ParentDir(const std::string& path) {
  size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

// Writes all of `data` to `fd`, looping over partial writes.
Status WriteFully(int fd, const char* data, size_t len,
                  const std::string& path) {
  size_t done = 0;
  while (done < len) {
    ssize_t n = ::write(fd, data + done, len - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoError("write", path);
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

// Fsyncs the directory containing `path` so a just-renamed entry is
// durable. Consumes no budget of its own: it is part of the rename (or
// the atomic-write) metadata unit.
Status SyncParentDir(const std::string& path) {
  std::string dir = ParentDir(path);
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return ErrnoError("open dir", dir);
  int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return ErrnoError("fsync dir", dir);
  return Status::OK();
}

}  // namespace

File::File(File&& other) noexcept
    : fd_(other.fd_),
      path_(std::move(other.path_)),
      buffer_(std::move(other.buffer_)),
      synced_bytes_(other.synced_bytes_) {
  other.fd_ = -1;
}

File& File::operator=(File&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    path_ = std::move(other.path_);
    buffer_ = std::move(other.buffer_);
    synced_bytes_ = other.synced_bytes_;
    other.fd_ = -1;
  }
  return *this;
}

File::~File() {
  if (fd_ >= 0) ::close(fd_);
}

Result<File> File::Create(const std::string& path) {
  FaultInjector& fi = FaultInjector::Global();
  if (fi.crashed_for(path)) {
    return FaultInjector::CrashedStatus("File::Create");
  }
  XSQL_RETURN_IF_ERROR(fi.Check(FaultInjector::Domain::kIo, "io-create"));
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return ErrnoError("create", path);
  return File(fd, path);
}

Result<File> File::OpenAppend(const std::string& path) {
  FaultInjector& fi = FaultInjector::Global();
  if (fi.crashed_for(path)) {
    return FaultInjector::CrashedStatus("File::OpenAppend");
  }
  XSQL_RETURN_IF_ERROR(fi.Check(FaultInjector::Domain::kIo, "io-open-append"));
  int fd = ::open(path.c_str(), O_WRONLY | O_APPEND);
  if (fd < 0) {
    if (errno == ENOENT) return Status::NotFound("cannot open " + path);
    return ErrnoError("open append", path);
  }
  return File(fd, path);
}

Status File::Write(const std::string& data) {
  if (fd_ < 0) return Status::RuntimeError("write on closed file " + path_);
  if (FaultInjector::Global().crashed_for(path_)) {
    return FaultInjector::CrashedStatus("File::Write");
  }
  buffer_.append(data);
  return Status::OK();
}

Status File::Sync() {
  if (fd_ < 0) return Status::RuntimeError("sync on closed file " + path_);
  FaultInjector& fi = FaultInjector::Global();
  if (fi.crashed_for(path_)) return FaultInjector::CrashedStatus("File::Sync");
  Status injected = fi.Check(FaultInjector::Domain::kIo, "io-sync");
  if (!injected.ok()) {
    // Transient fault: model a short write — half the pending bytes
    // land, no fsync, the buffer stays pending. The caller owns repair.
    size_t half = buffer_.size() / 2;
    (void)WriteFully(fd_, buffer_.data(), half, path_);
    return injected;
  }
  uint64_t allowed = fi.ConsumePersistBudget(buffer_.size(), path_);
  if (allowed < buffer_.size() ||
      (fi.crash_armed() && fi.crashed_for(path_))) {
    // Crash mid-sync: the granted torn prefix reaches the file (and is
    // treated as durable — the sweep relies on exact byte placement),
    // then the process is dead.
    (void)WriteFully(fd_, buffer_.data(), static_cast<size_t>(allowed),
                     path_);
    (void)::fsync(fd_);
    if (allowed == buffer_.size()) {
      // Boundary case: every byte persisted, then the process died
      // before acknowledging. Account them as synced.
      synced_bytes_ += allowed;
      buffer_.clear();
    }
    return FaultInjector::CrashedStatus("File::Sync");
  }
  XSQL_RETURN_IF_ERROR(WriteFully(fd_, buffer_.data(), buffer_.size(),
                                  path_));
  if (::fsync(fd_) != 0) return ErrnoError("fsync", path_);
  static obs::Counter& fsyncs =
      obs::MetricsRegistry::Global().GetCounter("xsql.storage.fsyncs");
  static obs::Counter& synced_bytes =
      obs::MetricsRegistry::Global().GetCounter("xsql.storage.synced_bytes");
  fsyncs.Inc();
  synced_bytes.Inc(buffer_.size());
  synced_bytes_ += buffer_.size();
  buffer_.clear();
  return Status::OK();
}

Status File::Close() {
  if (fd_ < 0) return Status::OK();
  int rc = ::close(fd_);
  fd_ = -1;
  buffer_.clear();
  if (rc != 0) return ErrnoError("close", path_);
  return Status::OK();
}

Result<std::string> File::ReadAll(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return Status::NotFound("cannot open " + path);
    return ErrnoError("open", path);
  }
  std::string out;
  char buf[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      Status st = ErrnoError("read", path);
      ::close(fd);
      return st;
    }
    if (n == 0) break;
    out.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return out;
}

Result<std::string> File::ReadRange(const std::string& path,
                                    uint64_t offset, uint64_t len) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return Status::NotFound("cannot open " + path);
    return ErrnoError("open", path);
  }
  std::string out;
  out.reserve(static_cast<size_t>(len < (1u << 20) ? len : (1u << 20)));
  uint64_t pos = offset;
  while (out.size() < len) {
    char buf[1 << 16];
    size_t want = sizeof(buf);
    if (len - out.size() < want) want = static_cast<size_t>(len - out.size());
    ssize_t n = ::pread(fd, buf, want, static_cast<off_t>(pos));
    if (n < 0) {
      if (errno == EINTR) continue;
      Status st = ErrnoError("pread", path);
      ::close(fd);
      return st;
    }
    if (n == 0) break;  // end of file: a short read is fine
    out.append(buf, static_cast<size_t>(n));
    pos += static_cast<uint64_t>(n);
  }
  ::close(fd);
  return out;
}

Status File::WriteAtomic(const std::string& path, const std::string& data) {
  const std::string tmp = path + ".tmp";
  auto cleanup = [&tmp]() {
    if (!FaultInjector::Global().crashed_for(tmp)) {
      (void)::unlink(tmp.c_str());
    }
  };
  Result<File> file = Create(tmp);
  if (!file.ok()) {
    cleanup();
    return file.status();
  }
  Status st = file->Write(data);
  if (st.ok()) st = file->Sync();
  if (st.ok()) st = file->Close();
  if (st.ok()) st = Rename(tmp, path);
  if (!st.ok()) cleanup();
  return st;
}

Status File::Rename(const std::string& from, const std::string& to) {
  FaultInjector& fi = FaultInjector::Global();
  if (fi.crashed_for(to)) return FaultInjector::CrashedStatus("File::Rename");
  XSQL_RETURN_IF_ERROR(fi.Check(FaultInjector::Domain::kIo, "io-rename"));
  if (fi.ConsumePersistBudget(1, to) < 1) {
    // Crash on the metadata unit: the rename never happened.
    return FaultInjector::CrashedStatus("File::Rename");
  }
  if (::rename(from.c_str(), to.c_str()) != 0) {
    return ErrnoError("rename " + from + " ->", to);
  }
  return SyncParentDir(to);
}

Status File::Truncate(const std::string& path, uint64_t size) {
  FaultInjector& fi = FaultInjector::Global();
  if (fi.crashed_for(path)) {
    return FaultInjector::CrashedStatus("File::Truncate");
  }
  if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
    return ErrnoError("truncate", path);
  }
  int fd = ::open(path.c_str(), O_WRONLY);
  if (fd < 0) return ErrnoError("open", path);
  int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return ErrnoError("fsync", path);
  return Status::OK();
}

bool File::Exists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

Result<uint64_t> File::Size(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    if (errno == ENOENT) return Status::NotFound("no such file " + path);
    return ErrnoError("stat", path);
  }
  return static_cast<uint64_t>(st.st_size);
}

Status File::Remove(const std::string& path) {
  if (FaultInjector::Global().crashed_for(path)) {
    return FaultInjector::CrashedStatus("File::Remove");
  }
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    return ErrnoError("unlink", path);
  }
  return Status::OK();
}

Status File::EnsureDir(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return ErrnoError("mkdir", dir);
  }
  return Status::OK();
}

Result<std::vector<std::string>> File::ListDir(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    if (errno == ENOENT) return Status::NotFound("no such directory " + dir);
    return ErrnoError("opendir", dir);
  }
  std::vector<std::string> names;
  for (;;) {
    errno = 0;
    struct dirent* ent = ::readdir(d);
    if (ent == nullptr) {
      if (errno != 0) {
        Status st = ErrnoError("readdir", dir);
        ::closedir(d);
        return st;
      }
      break;
    }
    std::string name = ent->d_name;
    if (name == "." || name == "..") continue;
    names.push_back(std::move(name));
  }
  ::closedir(d);
  return names;
}

}  // namespace storage
}  // namespace xsql
