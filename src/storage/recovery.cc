#include "storage/recovery.h"

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <optional>

#include "common/fault.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "parser/parser.h"
#include "storage/file.h"
#include "storage/snapshot.h"

namespace xsql {
namespace storage {

namespace {

/// True iff any SELECT block in the expression tree carries an OID
/// FUNCTION clause — evaluating such a query mints objects.
bool TreeCreatesObjects(const QueryExpr& expr) {
  switch (expr.kind) {
    case QueryExpr::Kind::kSimple:
      return expr.simple != nullptr &&
             expr.simple->oid_function_of.has_value();
    default:
      return (expr.lhs != nullptr && TreeCreatesObjects(*expr.lhs)) ||
             (expr.rhs != nullptr && TreeCreatesObjects(*expr.rhs));
  }
}

Status WedgedStatus() {
  return Status::RuntimeError(
      "durable database crashed; reopen the directory to recover");
}

}  // namespace

StatementClass ClassifyStatement(const std::string& text,
                                 const Database& db) {
  StatementClass out;
  Result<Statement> parsed = ParseAndResolve(text, db);
  if (!parsed.ok()) return out;  // unparseable cannot execute either
  out.parse_ok = true;
  switch (parsed->kind) {
    case Statement::Kind::kCreateView:
      out.is_definition = true;
      out.is_create_view = true;
      out.is_mutation_kind = true;
      out.view_name = parsed->create_view->name.str();
      break;
    case Statement::Kind::kAlterClass:
      // Plain ADD SIGNATURE is fully captured by the snapshot's SIG
      // section; only a method-defining SELECT needs DDL replay.
      out.is_definition = parsed->alter_class->method_def.has_value();
      out.is_mutation_kind = true;
      break;
    case Statement::Kind::kUpdateClass:
      out.is_mutation_kind = true;
      break;
    case Statement::Kind::kExplain:
    case Statement::Kind::kSystemMetrics:
    case Statement::Kind::kSystemStatus:
      out.is_diagnostic = true;
      out.is_explain_analyze = parsed->analyze;
      break;
    case Statement::Kind::kQuery:
      out.creates_objects =
          parsed->query != nullptr && TreeCreatesObjects(*parsed->query);
      break;
  }
  return out;
}

std::string DurableDatabase::CurrentPath(const std::string& dir) {
  return dir + "/CURRENT";
}
std::string DurableDatabase::SnapshotPath(const std::string& dir,
                                          uint64_t gen) {
  return dir + "/snapshot-" + std::to_string(gen) + ".db";
}
std::string DurableDatabase::DdlPath(const std::string& dir, uint64_t gen) {
  return dir + "/ddl-" + std::to_string(gen) + ".log";
}
std::string DurableDatabase::WalPath(const std::string& dir, uint64_t gen) {
  return dir + "/wal-" + std::to_string(gen) + ".log";
}
std::string DurableDatabase::DedupPath(const std::string& dir,
                                       uint64_t gen) {
  return dir + "/dedup-" + std::to_string(gen) + ".tab";
}

Result<std::unique_ptr<DurableDatabase>> DurableDatabase::Open(
    const std::string& dir, DurableOptions options) {
  std::unique_ptr<DurableDatabase> db(
      new DurableDatabase(dir, std::move(options)));
  XSQL_RETURN_IF_ERROR(db->Recover());
  return db;
}

Status DurableDatabase::InitializeFreshDir() {
  // Generation 1 of an empty database. CURRENT is written last: a
  // crash mid-initialization leaves stray generation files that the
  // next open simply overwrites.
  Database fresh;
  XSQL_RETURN_IF_ERROR(
      File::WriteAtomic(SnapshotPath(dir_, 1), SaveSnapshot(fresh)));
  XSQL_RETURN_IF_ERROR(File::WriteAtomic(DdlPath(dir_, 1), Wal::kMagic));
  XSQL_RETURN_IF_ERROR(File::WriteAtomic(WalPath(dir_, 1), Wal::kMagic));
  return File::WriteAtomic(CurrentPath(dir_), "1\n");
}

Status DurableDatabase::Recover() {
  static obs::Counter& recoveries =
      obs::MetricsRegistry::Global().GetCounter("xsql.storage.recoveries");
  static obs::Counter& replays = obs::MetricsRegistry::Global().GetCounter(
      "xsql.storage.replayed_statements");
  static obs::Histogram& recovery_us =
      obs::MetricsRegistry::Global().GetHistogram(
          "xsql.storage.recovery_us");
  obs::Span span("recovery", [&] { return dir_; });
  const auto recover_start = std::chrono::steady_clock::now();
  XSQL_RETURN_IF_ERROR(File::EnsureDir(dir_));
  if (!File::Exists(CurrentPath(dir_))) {
    XSQL_RETURN_IF_ERROR(InitializeFreshDir());
  }
  XSQL_ASSIGN_OR_RETURN(std::string current,
                        File::ReadAll(CurrentPath(dir_)));
  errno = 0;
  char* stop = nullptr;
  uint64_t gen = std::strtoull(current.c_str(), &stop, 10);
  if (errno != 0 || stop == current.c_str() || gen == 0) {
    return Status::InvalidArgument("corrupt CURRENT file in " + dir_ +
                                   ": '" + current + "'");
  }

  db_ = std::make_unique<Database>();
  XSQL_ASSIGN_OR_RETURN(std::string snapshot,
                        File::ReadAll(SnapshotPath(dir_, gen)));
  XSQL_RETURN_IF_ERROR(LoadSnapshot(snapshot, db_.get()));
  session_ = std::make_unique<Session>(db_.get(), options_.session);

  // Re-install view definitions and query-defined method bodies: the
  // snapshot holds their *data* (classes, signatures, materialized
  // objects) but not their executable definitions.
  std::optional<obs::Span> ddl_span;
  ddl_span.emplace("recovery/ddl-replay");
  XSQL_ASSIGN_OR_RETURN(Wal::Scan ddl, Wal::ScanFile(DdlPath(dir_, gen)));
  if (ddl.torn) {
    // The DDL log is replaced atomically at checkpoint, never appended
    // to, so a torn tail means real corruption, not a crash artifact.
    return Status::InvalidArgument("corrupt DDL log " + DdlPath(dir_, gen) +
                                   ": " + ddl.torn_detail);
  }
  for (size_t i = 0; i < ddl.records.size(); ++i) {
    Result<EvalOutput> replay = session_->Execute(ddl.records[i]);
    if (!replay.ok()) {
      return Status::InvalidArgument(
          "DDL replay failed at record " + std::to_string(i) + " ('" +
          ddl.records[i] + "'): " + replay.status().ToString());
    }
    ddl_statements_.push_back(ddl.records[i]);
  }
  ddl_span->AddRows(ddl.records.size());
  ddl_span.reset();

  // Re-seed the exactly-once table from the last checkpoint's
  // snapshot of it (absent in pre-dedup directories: empty table).
  if (File::Exists(DedupPath(dir_, gen))) {
    XSQL_ASSIGN_OR_RETURN(std::string dedup_image,
                          File::ReadAll(DedupPath(dir_, gen)));
    XSQL_RETURN_IF_ERROR(dedup_.Load(dedup_image));
  }

  // Replay the WAL tail; a torn last record (crash mid-append) is
  // truncated away — it was never acknowledged. Request-ID-stamped
  // records also rebuild their dedup entry, re-rendering the reply the
  // original execution produced, so a client that retries into this
  // freshly recovered process gets the cached reply, not a second
  // execution.
  obs::Span wal_span("recovery/wal-replay");
  XSQL_ASSIGN_OR_RETURN(Wal::Scan scan, Wal::ScanFile(WalPath(dir_, gen)));
  recovered_torn_tail_ = scan.torn;
  for (size_t i = 0; i < scan.records.size(); ++i) {
    auto [rid, stmt] = DecodeRidPayload(scan.records[i]);
    StatementClass cls = ClassifyStatement(stmt, *db_);
    Result<EvalOutput> replay = session_->Execute(stmt);
    if (!replay.ok()) {
      return Status::InvalidArgument(
          "WAL replay failed at record " + std::to_string(i) + " ('" +
          stmt + "'): " + replay.status().ToString());
    }
    if (rid.has_value()) dedup_.Record(*rid, RenderEvalOutput(*replay));
    if (cls.is_definition) ddl_statements_.push_back(stmt);
  }
  replayed_statements_ = scan.records.size();
  wal_span.AddRows(scan.records.size());
  replays.Inc(ddl.records.size() + scan.records.size());

  XSQL_ASSIGN_OR_RETURN(Wal appender,
                        Wal::OpenAppender(WalPath(dir_, gen),
                                          scan.valid_size));
  {
    std::lock_guard<std::mutex> lock(wal_mu_);
    wal_ = std::make_unique<Wal>(std::move(appender));
    wal_base_records_ = scan.records.size();
    generation_.store(gen, std::memory_order_release);
  }
  // A crash between a checkpoint's CURRENT flip and its prune left the
  // stale generations behind; finish the job now.
  (void)PruneStaleGenerations();
  recoveries.Inc();
  recovery_us.Observe(static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - recover_start)
          .count()));
  return Status::OK();
}

Result<EvalOutput> DurableDatabase::Execute(const std::string& text) {
  if (wedged()) return WedgedStatus();
  StatementClass cls = ClassifyStatement(text, *db_);
  const bool view_existed =
      cls.is_create_view && session_->views().IsView(cls.view_name);

  // Run the statement atomically in memory, holding the undo log open
  // past Session::Execute so the effect can still be withdrawn if the
  // WAL append fails: acknowledged ⇒ durable, failed ⇒ no trace.
  const uint64_t version_before = db_->version();
  UndoLog undo;
  db_->BeginUndo(&undo);
  Result<EvalOutput> out = session_->Execute(text);
  db_->EndUndo();
  auto withdraw = [&]() {
    db_->Rollback(&undo);
    if (cls.is_create_view && !view_existed) {
      session_->views().Drop(cls.view_name);
    }
  };
  if (!out.ok()) {
    withdraw();
    return out;
  }
  if (cls.is_diagnostic) {
    // Diagnostics never reach the WAL. EXPLAIN ANALYZE's scratch
    // mutations were recorded in this undo log (the session saw an
    // enclosing transaction and left rollback to us): withdraw them so
    // analyzing a mutating query durably leaves no trace.
    if (db_->version() != version_before) withdraw();
    return out;
  }
  if (db_->version() == version_before) return out;  // read-only

  Status append = wal_->Append(text);
  if (!append.ok()) {
    withdraw();
    if (FaultInjector::Global().crashed_for(dir_)) Wedge();
    return append;
  }
  ++records_since_checkpoint_;
  if (cls.is_definition) ddl_statements_.push_back(text);

  if (options_.checkpoint_every != 0 &&
      records_since_checkpoint_ >= options_.checkpoint_every) {
    // The statement is already durable in the current generation; a
    // failed rotation only matters if the process died.
    Status rotated = Checkpoint();
    (void)rotated;
  }
  return out;
}

Result<Relation> DurableDatabase::Query(const std::string& text) {
  XSQL_ASSIGN_OR_RETURN(EvalOutput out, Execute(text));
  return std::move(out.relation);
}

Result<EvalOutput> DurableDatabase::ExecuteForCommit(
    Session* session, const std::string& text, GroupCommitter* committer,
    uint64_t* ticket, const RequestId* rid) {
  *ticket = 0;
  if (wedged()) return WedgedStatus();
  StatementClass cls = ClassifyStatement(text, *db_);
  const bool view_existed =
      cls.is_create_view && session->views().IsView(cls.view_name);

  // Same in-memory atomicity as Execute: hold the undo log open past
  // Session::Execute so a failed statement leaves no trace. Durability
  // differs — instead of an inline fsync, the record is enqueued for
  // group commit and the caller waits for its ticket after releasing
  // the statement latch.
  const uint64_t version_before = db_->version();
  UndoLog undo;
  db_->BeginUndo(&undo);
  Result<EvalOutput> out = session->Execute(text);
  db_->EndUndo();
  auto withdraw = [&]() {
    db_->Rollback(&undo);
    if (cls.is_create_view && !view_existed) {
      session->views().Drop(cls.view_name);
    }
  };
  if (!out.ok()) {
    withdraw();
    return out;
  }
  if (cls.is_diagnostic) {
    // Diagnostics never reach the WAL; withdraw EXPLAIN ANALYZE's
    // scratch mutations (see Execute).
    if (db_->version() != version_before) withdraw();
    return out;
  }
  if (db_->version() == version_before) return out;  // read-only

  // Enqueue while the caller still holds the exclusive latch: ticket
  // order == execution order, which recovery's serial replay needs.
  // DDL bookkeeping happens here too — if the batch later fails the
  // whole instance wedges, so a bookkeeping entry for a never-durable
  // statement can never leak into a checkpoint.
  *ticket = committer->Enqueue(
      rid == nullptr ? text : EncodeRidPayload(*rid, text));
  ++records_since_checkpoint_;
  if (cls.is_definition) ddl_statements_.push_back(text);
  return out;
}

Status DurableDatabase::Checkpoint() {
  static obs::Counter& checkpoints =
      obs::MetricsRegistry::Global().GetCounter("xsql.storage.checkpoints");
  obs::Span span("checkpoint", [&] { return dir_; });
  if (wedged()) return WedgedStatus();
  const uint64_t next = generation() + 1;
  auto fail = [&](Status st) {
    if (FaultInjector::Global().crashed_for(dir_)) {
      Wedge();
    } else {
      // The rotation never committed; drop the half-built generation.
      (void)File::Remove(SnapshotPath(dir_, next));
      (void)File::Remove(DdlPath(dir_, next));
      (void)File::Remove(WalPath(dir_, next));
      (void)File::Remove(DedupPath(dir_, next));
    }
    return st;
  };

  Status st = File::WriteAtomic(SnapshotPath(dir_, next),
                                SaveSnapshot(*db_));
  if (!st.ok()) return fail(std::move(st));
  std::string ddl(Wal::kMagic);
  for (const std::string& stmt : ddl_statements_) {
    ddl += Wal::EncodeRecord(stmt);
  }
  st = File::WriteAtomic(DdlPath(dir_, next), ddl);
  if (!st.ok()) return fail(std::move(st));
  st = File::WriteAtomic(WalPath(dir_, next), Wal::kMagic);
  if (!st.ok()) return fail(std::move(st));
  // The dedup table travels with the checkpoint: rotation folds the
  // WAL (and its request-ID stamps) into the snapshot, so the entries
  // must be carried explicitly or a post-checkpoint retry would
  // re-execute an already-committed statement.
  st = File::WriteAtomic(DedupPath(dir_, next), dedup_.Serialize());
  if (!st.ok()) return fail(std::move(st));
  // The commit point: flipping CURRENT atomically adopts the new
  // generation. Before this rename, recovery uses the old files (all
  // untouched); after it, the new ones.
  st = File::WriteAtomic(CurrentPath(dir_), std::to_string(next) + "\n");
  if (!st.ok()) return fail(std::move(st));

  records_since_checkpoint_ = 0;
  Result<Wal> appender =
      Wal::OpenAppender(WalPath(dir_, next), sizeof(Wal::kMagic) - 1);
  if (!appender.ok()) {
    // Rotation committed but the appender could not bind; state on
    // disk is consistent, so force a reopen rather than limp on.
    generation_.store(next, std::memory_order_release);
    Wedge();
    return appender.status();
  }
  {
    // Swap the whole position triple at once so a concurrent
    // DurableWalPoint never pairs the new generation with the old
    // WAL's counters (or vice versa).
    std::lock_guard<std::mutex> lock(wal_mu_);
    wal_ = std::make_unique<Wal>(std::move(*appender));
    wal_base_records_ = 0;
    generation_.store(next, std::memory_order_release);
  }
  checkpoints.Inc();
  // Best-effort cleanup; stray old-generation files are harmless (a
  // crash landing here is exactly the flip-without-prune case Recover
  // finishes).
  (void)PruneStaleGenerations();
  return Status::OK();
}

WalPoint DurableDatabase::DurableWalPoint() const {
  std::lock_guard<std::mutex> lock(wal_mu_);
  WalPoint point;
  point.generation = generation_.load(std::memory_order_relaxed);
  point.records =
      wal_base_records_ + (wal_ ? wal_->records_appended() : 0);
  point.bytes = wal_ ? wal_->synced_size() : 0;
  return point;
}

Result<uint64_t> DurableDatabase::ApplyReplicated(
    const std::vector<std::string>& records) {
  static obs::Counter& applied = obs::MetricsRegistry::Global().GetCounter(
      "xsql.repl.applied_records");
  if (wedged()) return WedgedStatus();
  if (records.empty()) return static_cast<uint64_t>(0);
  obs::Span span("recovery/apply-replicated");
  span.AddRows(records.size());
  for (const std::string& record : records) {
    auto [rid, stmt] = DecodeRidPayload(record);
    StatementClass cls = ClassifyStatement(stmt, *db_);
    Result<EvalOutput> out = session_->Execute(stmt);
    if (!out.ok()) {
      // The primary committed this statement; a replica that cannot
      // reproduce it has diverged and must not serve or promote.
      Wedge();
      return Status::RuntimeError("replicated apply failed ('" + stmt +
                                  "'): " + out.status().ToString());
    }
    if (rid.has_value()) dedup_.Record(*rid, RenderEvalOutput(*out));
    if (cls.is_definition) ddl_statements_.push_back(stmt);
  }
  // The shipped records land verbatim — the replica WAL stays a
  // byte-prefix of the primary's — with one write and one fsync.
  Status append = wal_->AppendBatch(records);
  if (!append.ok()) {
    Wedge();
    return append;
  }
  records_since_checkpoint_ += records.size();
  applied.Inc(records.size());
  return static_cast<uint64_t>(records.size());
}

Result<BootstrapBundle> DurableDatabase::ReadBootstrapBundle() {
  if (wedged()) return WedgedStatus();
  obs::Span span("recovery/read-bootstrap", [&] { return dir_; });
  BootstrapBundle bundle;
  bundle.generation = generation();
  XSQL_ASSIGN_OR_RETURN(bundle.snapshot,
                        File::ReadAll(SnapshotPath(dir_, bundle.generation)));
  XSQL_ASSIGN_OR_RETURN(bundle.ddl,
                        File::ReadAll(DdlPath(dir_, bundle.generation)));
  XSQL_ASSIGN_OR_RETURN(bundle.wal,
                        File::ReadAll(WalPath(dir_, bundle.generation)));
  if (File::Exists(DedupPath(dir_, bundle.generation))) {
    XSQL_ASSIGN_OR_RETURN(bundle.dedup,
                          File::ReadAll(DedupPath(dir_, bundle.generation)));
  }
  XSQL_ASSIGN_OR_RETURN(Wal::Scan scan, Wal::ScanContents(bundle.wal));
  if (scan.torn) {
    // Caller holds the latch with the committer drained; a torn file
    // here is corruption, not concurrency.
    return Status::InvalidArgument("bootstrap read found a torn WAL: " +
                                   scan.torn_detail);
  }
  bundle.wal_records = scan.records.size();
  PinGeneration(bundle.generation);
  return bundle;
}

Status DurableDatabase::InstallBootstrapBundle(const std::string& dir,
                                               const BootstrapBundle& b) {
  XSQL_RETURN_IF_ERROR(File::EnsureDir(dir));
  XSQL_RETURN_IF_ERROR(
      File::WriteAtomic(SnapshotPath(dir, b.generation), b.snapshot));
  XSQL_RETURN_IF_ERROR(File::WriteAtomic(DdlPath(dir, b.generation), b.ddl));
  XSQL_RETURN_IF_ERROR(File::WriteAtomic(WalPath(dir, b.generation), b.wal));
  if (!b.dedup.empty()) {
    XSQL_RETURN_IF_ERROR(
        File::WriteAtomic(DedupPath(dir, b.generation), b.dedup));
  } else {
    // A stale table from a previous life of this directory must not
    // resurrect under the bundle's generation number.
    XSQL_RETURN_IF_ERROR(File::Remove(DedupPath(dir, b.generation)));
  }
  // The commit point, exactly like a checkpoint's flip.
  return File::WriteAtomic(CurrentPath(dir),
                           std::to_string(b.generation) + "\n");
}

void DurableDatabase::PinGeneration(uint64_t gen) {
  std::lock_guard<std::mutex> lock(pin_mu_);
  ++pinned_generations_[gen];
}

void DurableDatabase::UnpinGeneration(uint64_t gen) {
  std::lock_guard<std::mutex> lock(pin_mu_);
  auto it = pinned_generations_.find(gen);
  if (it == pinned_generations_.end()) return;
  if (--it->second == 0) pinned_generations_.erase(it);
}

Status DurableDatabase::PruneStaleGenerations() {
  static obs::Counter& pruned = obs::MetricsRegistry::Global().GetCounter(
      "xsql.storage.generations_pruned");
  const uint64_t current = generation();
  const uint64_t retain =
      options_.retain_generations < 1 ? 1 : options_.retain_generations;
  // Keep (current - retain, current]; never touch the live generation
  // or anything newer (a half-built rotation in flight).
  const uint64_t keep_above = current > retain ? current - retain : 0;
  Result<std::vector<std::string>> names = File::ListDir(dir_);
  if (!names.ok()) return names.status();
  // Which generations have files on disk, parsed from the four
  // per-generation name shapes.
  auto parse_gen = [](const std::string& name, const char* prefix,
                      const char* suffix, uint64_t* gen) {
    size_t plen = std::strlen(prefix), slen = std::strlen(suffix);
    if (name.size() <= plen + slen) return false;
    if (name.compare(0, plen, prefix) != 0) return false;
    if (name.compare(name.size() - slen, slen, suffix) != 0) return false;
    uint64_t value = 0;
    for (size_t i = plen; i < name.size() - slen; ++i) {
      if (name[i] < '0' || name[i] > '9') return false;
      value = value * 10 + static_cast<uint64_t>(name[i] - '0');
    }
    *gen = value;
    return true;
  };
  Status result = Status::OK();
  for (const std::string& name : names.value()) {
    uint64_t gen = 0;
    if (!parse_gen(name, "snapshot-", ".db", &gen) &&
        !parse_gen(name, "ddl-", ".log", &gen) &&
        !parse_gen(name, "wal-", ".log", &gen) &&
        !parse_gen(name, "dedup-", ".tab", &gen)) {
      continue;
    }
    if (gen > keep_above) continue;
    {
      std::lock_guard<std::mutex> lock(pin_mu_);
      if (pinned_generations_.count(gen) != 0) continue;
    }
    Status st = File::Remove(dir_ + "/" + name);
    if (st.ok()) {
      pruned.Inc();
    } else if (result.ok()) {
      result = st;
    }
  }
  return result;
}

}  // namespace storage
}  // namespace xsql
