#ifndef XSQL_STORAGE_DEDUP_H_
#define XSQL_STORAGE_DEDUP_H_

#include <array>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <utility>

#include "common/exec_context.h"
#include "common/status.h"

namespace xsql {
namespace storage {

/// The identity of one client request: a 16-byte session UUID the
/// client mints at startup plus a per-session sequence number it bumps
/// for every *new* statement (a retry re-sends the same seq). The pair
/// names a statement across connections, reconnects, and server
/// restarts, which is what exactly-once retries hang off.
struct RequestId {
  std::array<uint8_t, 16> uuid{};
  uint64_t seq = 0;

  /// The UUID as a 16-byte binary string (map key).
  std::string UuidKey() const;
  /// "hex-uuid:seq" for logs and errors.
  std::string ToString() const;

  /// Serializes to the 24-byte wire/WAL form: uuid then u64 seq (LE).
  std::string Encode() const;
  /// Parses the leading 24 bytes; null on short input.
  static std::optional<RequestId> Decode(const std::string& bytes,
                                         size_t offset = 0);
};

/// ---- WAL payload stamping -------------------------------------------
///
/// A WAL record payload is normally the bare statement text. A
/// statement executed on behalf of a client request ID is stamped:
///
///     [0x01] [16-byte uuid] [u64 seq LE] [statement text]
///
/// Statement text never begins with byte 0x01 (the lexer rejects
/// control characters), so the two forms are unambiguous and old logs
/// (all bare text) keep replaying. Recovery uses the stamp to rebuild
/// the dedup table: replaying a stamped record re-renders its reply
/// and re-records the (uuid, seq) → reply entry, so a client retrying
/// into a freshly recovered server still gets the cached reply instead
/// of a second execution.
constexpr char kRidTag = 0x01;

/// Stamps `text` with `rid` in the WAL payload form above.
std::string EncodeRidPayload(const RequestId& rid, const std::string& text);

/// Splits a WAL payload into its optional request ID and the statement
/// text. Bare payloads return {nullopt, payload}.
std::pair<std::optional<RequestId>, std::string> DecodeRidPayload(
    const std::string& payload);

/// The server-side exactly-once table: per client session UUID, the
/// highest committed sequence number and its rendered reply, plus the
/// set of requests currently executing.
///
/// Protocol (ConcurrencyManager::ExecuteIdempotent drives it):
///   1. `Claim(rid)` — kExecute: this thread owns the request and must
///      finish with Complete (committed) or Abandon (failed / not a
///      mutation). kCached: the statement already committed; the
///      cached reply is returned without re-executing. kExpired: the
///      statement committed but its reply was evicted (see bounds
///      below) — the caller must surface a final error, never
///      re-execute. kStale: an older seq than the last committed one —
///      it was applied, but its reply has been discarded. A duplicate
///      that arrives while the original is still executing *blocks*
///      (deadline/cancel aware) until the original resolves, then
///      re-claims.
///   2. On commit, `Complete(rid, reply)` records the outcome; only
///      the latest seq per UUID is retained — a client has at most one
///      statement in flight, so an older entry can never be retried
///      by a correct client (and an incorrect one gets kStale, never
///      a re-execution).
///   3. `Record(rid, reply)` is the replay path: recovery rebuilding
///      the table from stamped WAL records, no claim involved.
///
/// Memory bounds (Options): at most `max_reply_entries` UUIDs hold a
/// cached reply; beyond that the least-recently-touched entry is
/// *demoted* to a tombstone — its seq survives (retries answer
/// kExpired instead of re-executing) but the reply bytes are freed.
/// Replies above `max_reply_bytes` are tombstoned immediately. At most
/// `max_entries` UUIDs are tracked at all; beyond that the
/// least-recently-touched tombstone is dropped entirely, so a client
/// idle past both horizons re-executes on retry — that horizon is the
/// documented limit of the at-most-once guarantee, in exchange for
/// bounded memory under client churn or hostile UUID minting.
class DedupTable {
 public:
  struct Options {
    /// UUIDs allowed to hold a full cached reply (LRU beyond it is
    /// demoted to a tombstone).
    uint64_t max_reply_entries = 4096;
    /// Total UUIDs tracked, replies + tombstones (LRU tombstone beyond
    /// it is dropped).
    uint64_t max_entries = 65536;
    /// Replies larger than this are never cached — the entry is
    /// recorded as a tombstone (retry => kExpired, not re-execution).
    uint64_t max_reply_bytes = 1 << 20;
  };

  enum class ClaimResult { kExecute, kCached, kExpired, kStale, kTimeout };

  DedupTable() = default;
  explicit DedupTable(Options options) : options_(options) {}

  /// See protocol above. Blocks while the same rid is in flight on
  /// another thread, polling `limits.deadline_ms` / `cancel` like the
  /// statement latch; a tripped wait returns kTimeout.
  ClaimResult Claim(const RequestId& rid, const ExecLimits& limits,
                    const std::shared_ptr<CancelToken>& cancel,
                    std::string* cached_reply);

  /// Releases the claim and records the committed reply.
  void Complete(const RequestId& rid, std::string reply);

  /// Releases the claim without recording (failed statement, read-only
  /// statement, load-shed). A retry will re-execute, which is safe:
  /// nothing committed.
  void Abandon(const RequestId& rid);

  /// Replay path: records a committed outcome with no claim dance.
  /// Keeps the highest seq per UUID (WAL order can interleave).
  void Record(const RequestId& rid, std::string reply);

  /// Snapshot of the committed entries as a WAL-format file image
  /// (magic + one record per UUID: [uuid][seq][flags][reply], flags
  /// bit0 = reply present — tombstones persist too); written as
  /// `dedup-<gen>.tab` at checkpoint so entries survive WAL rotation.
  std::string Serialize() const;

  /// Loads a Serialize image, replacing current entries. A missing
  /// file (old directories) is represented by loading nothing.
  Status Load(const std::string& contents);

  uint64_t entries() const;
  uint64_t reply_entries() const;
  uint64_t hits() const;

 private:
  struct Outcome {
    uint64_t seq = 0;
    std::string reply;
    bool has_reply = false;
    uint64_t stamp = 0;  // LRU clock at last touch
  };

  /// The shared Complete/Record body: keeps the highest seq per UUID,
  /// applies the reply-size cap, then the LRU caps. Caller holds mu_.
  void StoreLocked(const RequestId& rid, std::string reply);
  /// Demotes/evicts LRU entries until both caps hold. Caller holds mu_.
  void EnforceCapsLocked();

  Options options_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::string, Outcome> committed_;    // uuid key → last outcome
  std::set<std::string> inflight_;              // uuid key + seq bytes
  uint64_t hits_ = 0;
  uint64_t clock_ = 0;          // bumped on every touch
  uint64_t reply_holders_ = 0;  // entries with has_reply
};

}  // namespace storage
}  // namespace xsql

#endif  // XSQL_STORAGE_DEDUP_H_
