#include "storage/dedup.h"

#include <chrono>

#include "storage/wal.h"

namespace xsql {
namespace storage {

namespace {

/// In-flight waits poll in short slices, like the statement latch, so
/// a duplicate parked behind a slow original honors its deadline.
constexpr std::chrono::milliseconds kWaitSlice(10);

using Clock = std::chrono::steady_clock;

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

uint64_t GetU64(const std::string& in, size_t offset) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(
             static_cast<unsigned char>(in[offset + i]))
         << (8 * i);
  }
  return v;
}

}  // namespace

std::string RequestId::UuidKey() const {
  return std::string(reinterpret_cast<const char*>(uuid.data()),
                     uuid.size());
}

std::string RequestId::ToString() const {
  static const char* hex = "0123456789abcdef";
  std::string out;
  out.reserve(32 + 1 + 20);
  for (uint8_t b : uuid) {
    out.push_back(hex[b >> 4]);
    out.push_back(hex[b & 0xF]);
  }
  out.push_back(':');
  out += std::to_string(seq);
  return out;
}

std::string RequestId::Encode() const {
  std::string out = UuidKey();
  PutU64(&out, seq);
  return out;
}

std::optional<RequestId> RequestId::Decode(const std::string& bytes,
                                           size_t offset) {
  if (bytes.size() < offset + 24) return std::nullopt;
  RequestId rid;
  for (size_t i = 0; i < 16; ++i) {
    rid.uuid[i] = static_cast<uint8_t>(bytes[offset + i]);
  }
  rid.seq = GetU64(bytes, offset + 16);
  return rid;
}

std::string EncodeRidPayload(const RequestId& rid,
                             const std::string& text) {
  std::string out;
  out.reserve(1 + 24 + text.size());
  out.push_back(kRidTag);
  out += rid.Encode();
  out += text;
  return out;
}

std::pair<std::optional<RequestId>, std::string> DecodeRidPayload(
    const std::string& payload) {
  if (payload.empty() || payload[0] != kRidTag) {
    return {std::nullopt, payload};
  }
  std::optional<RequestId> rid = RequestId::Decode(payload, 1);
  if (!rid.has_value()) return {std::nullopt, payload};  // corrupt stamp
  return {rid, payload.substr(1 + 24)};
}

DedupTable::ClaimResult DedupTable::Claim(
    const RequestId& rid, const ExecLimits& limits,
    const std::shared_ptr<CancelToken>& cancel, std::string* cached_reply) {
  const std::string key = rid.UuidKey();
  const std::string flight_key = rid.Encode();
  std::optional<Clock::time_point> deadline;
  if (limits.deadline_ms != 0) {
    deadline = Clock::now() + std::chrono::milliseconds(limits.deadline_ms);
  }
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    auto it = committed_.find(key);
    if (it != committed_.end() && rid.seq <= it->second.seq) {
      if (rid.seq == it->second.seq) {
        ++hits_;
        if (cached_reply != nullptr) *cached_reply = it->second.reply;
        return ClaimResult::kCached;
      }
      return ClaimResult::kStale;
    }
    if (inflight_.count(flight_key) == 0) {
      inflight_.insert(flight_key);
      return ClaimResult::kExecute;
    }
    // The original is still executing on another thread; wait for it
    // to resolve, then look again.
    if (cancel != nullptr && cancel->cancelled()) {
      return ClaimResult::kTimeout;
    }
    if (deadline.has_value() && Clock::now() >= *deadline) {
      return ClaimResult::kTimeout;
    }
    cv_.wait_for(lock, kWaitSlice);
  }
}

void DedupTable::Complete(const RequestId& rid, std::string reply) {
  std::lock_guard<std::mutex> lock(mu_);
  inflight_.erase(rid.Encode());
  Outcome& out = committed_[rid.UuidKey()];
  if (rid.seq >= out.seq) {
    out.seq = rid.seq;
    out.reply = std::move(reply);
  }
  cv_.notify_all();
}

void DedupTable::Abandon(const RequestId& rid) {
  std::lock_guard<std::mutex> lock(mu_);
  inflight_.erase(rid.Encode());
  cv_.notify_all();
}

void DedupTable::Record(const RequestId& rid, std::string reply) {
  std::lock_guard<std::mutex> lock(mu_);
  Outcome& out = committed_[rid.UuidKey()];
  if (rid.seq >= out.seq) {
    out.seq = rid.seq;
    out.reply = std::move(reply);
  }
}

std::string DedupTable::Serialize() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out(Wal::kMagic);
  for (const auto& [key, outcome] : committed_) {
    std::string record = key;
    PutU64(&record, outcome.seq);
    record += outcome.reply;
    out += Wal::EncodeRecord(record);
  }
  return out;
}

Status DedupTable::Load(const std::string& contents) {
  XSQL_ASSIGN_OR_RETURN(Wal::Scan scan, Wal::ScanContents(contents));
  if (scan.torn) {
    // Written atomically at checkpoint, never appended: a torn tail is
    // real corruption, like the DDL log.
    return Status::InvalidArgument("corrupt dedup table: " +
                                   scan.torn_detail);
  }
  std::lock_guard<std::mutex> lock(mu_);
  committed_.clear();
  for (const std::string& record : scan.records) {
    if (record.size() < 24) {
      return Status::InvalidArgument("corrupt dedup record (short)");
    }
    Outcome out;
    out.seq = GetU64(record, 16);
    out.reply = record.substr(24);
    committed_[record.substr(0, 16)] = std::move(out);
  }
  return Status::OK();
}

uint64_t DedupTable::entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return committed_.size();
}

uint64_t DedupTable::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

}  // namespace storage
}  // namespace xsql
