#include "storage/dedup.h"

#include <chrono>

#include "storage/wal.h"

namespace xsql {
namespace storage {

namespace {

/// In-flight waits poll in short slices, like the statement latch, so
/// a duplicate parked behind a slow original honors its deadline.
constexpr std::chrono::milliseconds kWaitSlice(10);

using Clock = std::chrono::steady_clock;

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

uint64_t GetU64(const std::string& in, size_t offset) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(
             static_cast<unsigned char>(in[offset + i]))
         << (8 * i);
  }
  return v;
}

}  // namespace

std::string RequestId::UuidKey() const {
  return std::string(reinterpret_cast<const char*>(uuid.data()),
                     uuid.size());
}

std::string RequestId::ToString() const {
  static const char* hex = "0123456789abcdef";
  std::string out;
  out.reserve(32 + 1 + 20);
  for (uint8_t b : uuid) {
    out.push_back(hex[b >> 4]);
    out.push_back(hex[b & 0xF]);
  }
  out.push_back(':');
  out += std::to_string(seq);
  return out;
}

std::string RequestId::Encode() const {
  std::string out = UuidKey();
  PutU64(&out, seq);
  return out;
}

std::optional<RequestId> RequestId::Decode(const std::string& bytes,
                                           size_t offset) {
  if (bytes.size() < offset + 24) return std::nullopt;
  RequestId rid;
  for (size_t i = 0; i < 16; ++i) {
    rid.uuid[i] = static_cast<uint8_t>(bytes[offset + i]);
  }
  rid.seq = GetU64(bytes, offset + 16);
  return rid;
}

std::string EncodeRidPayload(const RequestId& rid,
                             const std::string& text) {
  std::string out;
  out.reserve(1 + 24 + text.size());
  out.push_back(kRidTag);
  out += rid.Encode();
  out += text;
  return out;
}

std::pair<std::optional<RequestId>, std::string> DecodeRidPayload(
    const std::string& payload) {
  if (payload.empty() || payload[0] != kRidTag) {
    return {std::nullopt, payload};
  }
  std::optional<RequestId> rid = RequestId::Decode(payload, 1);
  if (!rid.has_value()) return {std::nullopt, payload};  // corrupt stamp
  return {rid, payload.substr(1 + 24)};
}

DedupTable::ClaimResult DedupTable::Claim(
    const RequestId& rid, const ExecLimits& limits,
    const std::shared_ptr<CancelToken>& cancel, std::string* cached_reply) {
  const std::string key = rid.UuidKey();
  const std::string flight_key = rid.Encode();
  std::optional<Clock::time_point> deadline;
  if (limits.deadline_ms != 0) {
    deadline = Clock::now() + std::chrono::milliseconds(limits.deadline_ms);
  }
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    auto it = committed_.find(key);
    if (it != committed_.end() && rid.seq <= it->second.seq) {
      it->second.stamp = ++clock_;
      if (rid.seq == it->second.seq) {
        if (!it->second.has_reply) return ClaimResult::kExpired;
        ++hits_;
        if (cached_reply != nullptr) *cached_reply = it->second.reply;
        return ClaimResult::kCached;
      }
      return ClaimResult::kStale;
    }
    if (inflight_.count(flight_key) == 0) {
      inflight_.insert(flight_key);
      return ClaimResult::kExecute;
    }
    // The original is still executing on another thread; wait for it
    // to resolve, then look again.
    if (cancel != nullptr && cancel->cancelled()) {
      return ClaimResult::kTimeout;
    }
    if (deadline.has_value() && Clock::now() >= *deadline) {
      return ClaimResult::kTimeout;
    }
    cv_.wait_for(lock, kWaitSlice);
  }
}

void DedupTable::StoreLocked(const RequestId& rid, std::string reply) {
  Outcome& out = committed_[rid.UuidKey()];
  out.stamp = ++clock_;
  if (rid.seq < out.seq) return;
  if (out.has_reply) --reply_holders_;
  out.seq = rid.seq;
  if (reply.size() > options_.max_reply_bytes) {
    // Too big to cache: tombstone right away. The original attempt
    // still ships the full reply; only a retry pays (kExpired).
    out.reply.clear();
    out.has_reply = false;
  } else {
    out.reply = std::move(reply);
    out.has_reply = true;
    ++reply_holders_;
  }
  EnforceCapsLocked();
}

void DedupTable::Complete(const RequestId& rid, std::string reply) {
  std::lock_guard<std::mutex> lock(mu_);
  inflight_.erase(rid.Encode());
  StoreLocked(rid, std::move(reply));
  cv_.notify_all();
}

void DedupTable::Abandon(const RequestId& rid) {
  std::lock_guard<std::mutex> lock(mu_);
  inflight_.erase(rid.Encode());
  cv_.notify_all();
}

void DedupTable::Record(const RequestId& rid, std::string reply) {
  std::lock_guard<std::mutex> lock(mu_);
  StoreLocked(rid, std::move(reply));
}

void DedupTable::EnforceCapsLocked() {
  // LRU scans run only when a cap is exceeded — once per demotion or
  // drop, over a table bounded by the caps themselves.
  auto lru = [&](bool with_reply) {
    auto best = committed_.end();
    for (auto it = committed_.begin(); it != committed_.end(); ++it) {
      if (it->second.has_reply != with_reply) continue;
      if (best == committed_.end() ||
          it->second.stamp < best->second.stamp) {
        best = it;
      }
    }
    return best;
  };
  while (reply_holders_ > options_.max_reply_entries) {
    auto it = lru(true);
    if (it == committed_.end()) break;
    it->second.reply.clear();
    it->second.has_reply = false;
    --reply_holders_;
  }
  while (committed_.size() > options_.max_entries) {
    auto it = lru(false);
    if (it == committed_.end()) it = lru(true);
    if (it == committed_.end()) break;
    if (it->second.has_reply) --reply_holders_;
    committed_.erase(it);
  }
}

std::string DedupTable::Serialize() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out(Wal::kMagic);
  for (const auto& [key, outcome] : committed_) {
    std::string record = key;
    PutU64(&record, outcome.seq);
    record.push_back(outcome.has_reply ? 1 : 0);
    record += outcome.reply;
    out += Wal::EncodeRecord(record);
  }
  return out;
}

Status DedupTable::Load(const std::string& contents) {
  XSQL_ASSIGN_OR_RETURN(Wal::Scan scan, Wal::ScanContents(contents));
  if (scan.torn) {
    // Written atomically at checkpoint, never appended: a torn tail is
    // real corruption, like the DDL log.
    return Status::InvalidArgument("corrupt dedup table: " +
                                   scan.torn_detail);
  }
  std::lock_guard<std::mutex> lock(mu_);
  committed_.clear();
  reply_holders_ = 0;
  for (const std::string& record : scan.records) {
    if (record.size() < 25) {
      return Status::InvalidArgument("corrupt dedup record (short)");
    }
    Outcome out;
    out.seq = GetU64(record, 16);
    out.has_reply = record[24] != 0;
    if (out.has_reply) out.reply = record.substr(25);
    out.stamp = ++clock_;
    Outcome& slot = committed_[record.substr(0, 16)];
    // Serialize never emits duplicate UUIDs, but count defensively.
    if (slot.has_reply) --reply_holders_;
    if (out.has_reply) ++reply_holders_;
    slot = std::move(out);
  }
  EnforceCapsLocked();
  return Status::OK();
}

uint64_t DedupTable::entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return committed_.size();
}

uint64_t DedupTable::reply_entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reply_holders_;
}

uint64_t DedupTable::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

}  // namespace storage
}  // namespace xsql
