#ifndef XSQL_STORAGE_RECOVERY_H_
#define XSQL_STORAGE_RECOVERY_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "eval/session.h"
#include "storage/dedup.h"
#include "storage/wal.h"
#include "store/database.h"

namespace xsql {
namespace storage {

/// How a statement interacts with the durability and concurrency
/// layers. Definition statements install state (view definitions,
/// query-defined method bodies) that snapshots cannot carry, so they
/// are carried forward in the per-generation DDL log and replayed on
/// open. Mutation-kind and object-creating statements tell the server
/// which latch mode a statement needs *before* running it.
struct StatementClass {
  /// The text parsed and resolved. Unparseable statements cannot
  /// execute either, so every other field is trustworthy only when set.
  bool parse_ok = false;
  bool is_definition = false;
  bool is_create_view = false;
  /// EXPLAIN [ANALYZE] / SYSTEM METRICS: never appended to the WAL.
  /// EXPLAIN ANALYZE may bump the in-memory version counter while it
  /// executes-and-rolls-back, so the version check alone cannot be
  /// trusted to classify it as read-only.
  bool is_diagnostic = false;
  /// EXPLAIN ANALYZE specifically: executes for real (then rolls back),
  /// so the server must treat it as a writer even though it is
  /// diagnostic.
  bool is_explain_analyze = false;
  /// Statement kinds that mutate by construction (CREATE VIEW, ALTER
  /// CLASS, UPDATE CLASS), independent of the runtime version check.
  bool is_mutation_kind = false;
  /// A query with an OID FUNCTION clause anywhere in its expression
  /// tree: evaluating it mints objects, i.e. a SELECT that writes.
  bool creates_objects = false;
  std::string view_name;
};

/// Classifies `text` against the current schema. Used by recovery (DDL
/// carry-forward), the durable Execute path (WAL append decision), and
/// the concurrent server (statement-mode classification).
StatementClass ClassifyStatement(const std::string& text,
                                 const Database& db);

/// Options for a durable database directory.
struct DurableOptions {
  /// Session policy (typing mode, guardrails, ...) for both replay and
  /// live execution.
  SessionOptions session;
  /// Automatically checkpoint after this many statements have been
  /// appended to the WAL since open / the last checkpoint. 0 = manual
  /// checkpoints only.
  uint64_t checkpoint_every = 0;
  /// Bounds for the exactly-once dedup table (LRU caps + reply-size
  /// cap; see DedupTable::Options).
  DedupTable::Options dedup;
  /// How many checkpoint generations to keep on disk (the live one
  /// included). Older generations are pruned after each rotation and
  /// on open — unless pinned by a replica still bootstrapping from
  /// them. Minimum 1 (the live generation is never pruned).
  uint64_t retain_generations = 2;
};

/// A coordinate in the durable statement history: generation `g`,
/// `records` committed records in `wal-g.log`, spanning `bytes` bytes
/// of that file (magic included). Replication subscribes from, acks,
/// and measures lag in these.
struct WalPoint {
  uint64_t generation = 0;
  uint64_t records = 0;
  uint64_t bytes = 0;
};

/// A complete, self-consistent copy of one generation's on-disk files,
/// taken under the exclusive latch with the group committer drained so
/// disk ≡ memory at the instant of capture. A replica installs the
/// four images verbatim and runs ordinary recovery on them; its WAL is
/// then a byte-prefix of the primary's, which is what lets a local
/// record count double as a replication position.
struct BootstrapBundle {
  uint64_t generation = 0;
  uint64_t wal_records = 0;  // records in `wal` (the resume position)
  std::string snapshot;
  std::string ddl;
  std::string wal;
  std::string dedup;  // empty when the generation has no dedup table
};

/// A Database + Session bound to an on-disk directory, with durable,
/// crash-recoverable statement execution.
///
/// Directory layout (generation `g`, an incrementing integer):
///
///     CURRENT          "g\n" — which generation is live
///     snapshot-g.db    canonical snapshot at the last checkpoint
///     ddl-g.log        definition statements (CREATE VIEW / method-
///                      defining ALTER CLASS) executed before the
///                      checkpoint, in WAL record format — snapshots
///                      cannot carry view/method *bodies*, so recovery
///                      re-installs them by replaying their DDL
///     wal-g.log        statements executed after the checkpoint
///
/// Opening = load `snapshot-g.db`, replay `ddl-g.log`, then replay the
/// valid prefix of `wal-g.log`, truncating any torn tail at the first
/// bad length/checksum. Execute = run the statement atomically in
/// memory; if it mutated the database, append it to the WAL and fsync
/// *before* acknowledging — on append failure the in-memory effect is
/// rolled back, so an acknowledged statement is durable and a failed
/// one leaves no trace. Checkpoint = write generation g+1's files,
/// then atomically flip CURRENT; a crash at any byte of the rotation
/// leaves either generation fully intact.
class DurableDatabase {
 public:
  /// Opens (or initializes) the durable directory and recovers.
  static Result<std::unique_ptr<DurableDatabase>> Open(
      const std::string& dir, DurableOptions options = {});

  /// Executes one statement with durable acknowledgement (see above).
  /// After a simulated crash the instance is wedged: every call fails
  /// until the directory is reopened, like a real dead process.
  Result<EvalOutput> Execute(const std::string& text);

  /// Convenience: execute and return just the relation.
  Result<Relation> Query(const std::string& text);

  /// The group-commit half of Execute: runs the statement atomically in
  /// memory through `session` (a per-connection session sharing this
  /// database and its view catalog), and — if it mutated the database —
  /// *enqueues* its WAL record on `committer` instead of fsyncing
  /// inline, storing the commit ticket in `*ticket`. Read-only,
  /// diagnostic, and failed statements leave `*ticket == 0`.
  ///
  /// The caller owns the rest of the protocol: it must (a) call this
  /// under the exclusive statement latch for any statement that might
  /// mutate, so enqueue order equals execution order; (b) release the
  /// latch and then `committer->WaitDurable(*ticket)` before
  /// acknowledging; (c) `Wedge()` this database if the wait fails —
  /// in-memory state is then ahead of durable state with no way back,
  /// exactly the simulated-crash situation. Auto-checkpointing is
  /// disabled on this path (rotation must be coordinated with the
  /// latch; see ConcurrencyManager::Checkpoint).
  ///
  /// When `rid` is non-null the statement carries a client request ID:
  /// its WAL record is stamped with it (see EncodeRidPayload), so
  /// recovery can rebuild the exactly-once dedup table. The *caller*
  /// records the reply in `dedup()` once the ticket is durable — an
  /// entry must never exist for an unacknowledgeable statement, and it
  /// must exist before any checkpoint serializes the table (or the
  /// rotation would discard the statement's stamped WAL record while
  /// the persisted table still lacks its entry).
  Result<EvalOutput> ExecuteForCommit(Session* session,
                                      const std::string& text,
                                      GroupCommitter* committer,
                                      uint64_t* ticket,
                                      const RequestId* rid = nullptr);

  /// Rotates snapshot + DDL log + WAL into a new generation. Logical
  /// state is unchanged; a crash mid-rotation is always recoverable.
  Status Checkpoint();

  // ---- Replication ---------------------------------------------------

  /// Replays a batch of stamped WAL records shipped from a primary:
  /// executes each statement through this database's session, records
  /// request-ID-stamped replies in the dedup table (so exactly-once
  /// survives promotion), then appends the raw records to the local
  /// WAL with ONE fsync. The caller must hold the exclusive statement
  /// latch. Any failure wedges the instance — replica state would
  /// otherwise silently diverge from the shipped history — and the
  /// replica heals by reopening from its own durable prefix and
  /// resubscribing. Returns the records applied.
  Result<uint64_t> ApplyReplicated(const std::vector<std::string>& records);

  /// The durable position: generation + committed record count +
  /// byte length of the live WAL, read as one consistent triple.
  /// Thread-safe (this is what the replication shipper polls).
  WalPoint DurableWalPoint() const;

  /// Captures the current generation's four files for replica
  /// bootstrap. The caller must hold the exclusive latch with the
  /// committer drained (disk ≡ memory). Pins the generation against
  /// pruning; the caller unpins when the transfer is over.
  Result<BootstrapBundle> ReadBootstrapBundle();

  /// Installs a bundle into `dir` (fresh or stale replica directory),
  /// making it byte-identical to the primary's generation files.
  /// Ordinary Open/Recover then brings the replica to the bundle's
  /// logical state.
  static Status InstallBootstrapBundle(const std::string& dir,
                                       const BootstrapBundle& bundle);

  /// Pins `gen` against pruning (refcounted) / releases one pin.
  void PinGeneration(uint64_t gen);
  void UnpinGeneration(uint64_t gen);

  /// Removes generation files outside the retention window (keeping
  /// the newest `retain_generations`, the live generation always, and
  /// anything pinned). Called after every rotation and on open, so a
  /// crash between flip and prune just leaves work for next time.
  Status PruneStaleGenerations();

  Database& db() { return *db_; }
  Session& session() { return *session_; }
  const std::string& dir() const { return dir_; }
  uint64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }
  /// Statements appended to the live WAL since open/last checkpoint.
  uint64_t wal_records() const {
    std::lock_guard<std::mutex> lock(wal_mu_);
    return wal_ ? wal_->records_appended() : 0;
  }
  uint64_t wal_bytes() const {
    std::lock_guard<std::mutex> lock(wal_mu_);
    return wal_ ? wal_->synced_size() : 0;
  }
  /// Whether recovery found (and truncated) a torn WAL tail on open.
  bool recovered_torn_tail() const { return recovered_torn_tail_; }
  /// Statements replayed from the WAL during open.
  uint64_t replayed_statements() const { return replayed_statements_; }
  bool wedged() const { return wedged_.load(std::memory_order_acquire); }
  /// Marks the instance dead: every later Execute/Checkpoint fails
  /// until the directory is reopened. Used by the server when a group
  /// commit fails (in-memory state is ahead of durable state) and by
  /// the fault injector's simulated crashes.
  void Wedge() { wedged_.store(true, std::memory_order_release); }
  /// The live WAL appender (rebind GroupCommitter after Checkpoint).
  Wal* wal() { return wal_.get(); }

  /// The exactly-once request table: rebuilt on open from the
  /// checkpointed `dedup-<gen>.tab` plus the stamped WAL tail, and
  /// persisted at every checkpoint. The server consults it before
  /// executing any request-ID-stamped statement.
  DedupTable& dedup() { return dedup_; }

  // File-name helpers, exposed for tests.
  static std::string CurrentPath(const std::string& dir);
  static std::string SnapshotPath(const std::string& dir, uint64_t gen);
  static std::string DdlPath(const std::string& dir, uint64_t gen);
  static std::string WalPath(const std::string& dir, uint64_t gen);
  static std::string DedupPath(const std::string& dir, uint64_t gen);

 private:
  explicit DurableDatabase(std::string dir, DurableOptions options)
      : dir_(std::move(dir)),
        options_(std::move(options)),
        dedup_(options_.dedup) {}

  Status Recover();
  Status InitializeFreshDir();

  std::string dir_;
  DurableOptions options_;
  /// Atomic because the replication shipper reads it off-latch; the
  /// full consistent triple lives behind `wal_mu_`.
  std::atomic<uint64_t> generation_{0};
  std::unique_ptr<Database> db_;
  std::unique_ptr<Session> session_;
  /// Guards `wal_` (rebound at checkpoint) together with `generation_`
  /// and `wal_base_records_`, so DurableWalPoint reads one consistent
  /// {generation, records, bytes} triple while rotation swaps all
  /// three.
  mutable std::mutex wal_mu_;
  std::unique_ptr<Wal> wal_;
  /// Records already in the live WAL file when the appender was bound
  /// (replayed on open; 0 after a rotation). File total = base +
  /// appended.
  uint64_t wal_base_records_ = 0;
  /// Generation pin refcounts (replicas mid-bootstrap).
  mutable std::mutex pin_mu_;
  std::map<uint64_t, uint64_t> pinned_generations_;
  DedupTable dedup_;
  /// Definition statements to carry into the next checkpoint's DDL log.
  std::vector<std::string> ddl_statements_;
  uint64_t records_since_checkpoint_ = 0;
  uint64_t replayed_statements_ = 0;
  bool recovered_torn_tail_ = false;
  /// Atomic because the server reads it from acker threads racing the
  /// statement threads that set it (all under their own latches, but
  /// not a common one).
  std::atomic<bool> wedged_{false};
};

}  // namespace storage
}  // namespace xsql

#endif  // XSQL_STORAGE_RECOVERY_H_
