#include "oid/oid.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <functional>

namespace xsql {

Oid Oid::Bool(bool b) {
  Oid o;
  o.kind_ = OidKind::kBool;
  o.int_ = b ? 1 : 0;
  return o;
}

Oid Oid::Int(int64_t v) {
  Oid o;
  o.kind_ = OidKind::kInt;
  o.int_ = v;
  return o;
}

Oid Oid::Real(double v) {
  Oid o;
  o.kind_ = OidKind::kReal;
  o.real_ = v;
  return o;
}

Oid Oid::String(std::string s) {
  Oid o;
  o.kind_ = OidKind::kString;
  o.str_ = std::make_shared<const std::string>(std::move(s));
  return o;
}

Oid Oid::Atom(std::string name) {
  Oid o;
  o.kind_ = OidKind::kAtom;
  o.str_ = std::make_shared<const std::string>(std::move(name));
  return o;
}

Oid Oid::Term(std::string fn, std::vector<Oid> args) {
  Oid o;
  o.kind_ = OidKind::kTerm;
  o.term_ = std::make_shared<const TermRep>(TermRep{std::move(fn), std::move(args)});
  return o;
}

const std::string& Oid::term_fn() const { return term_->fn; }
const std::vector<Oid>& Oid::term_args() const { return term_->args; }

bool Oid::operator==(const Oid& other) const { return Compare(other) == 0; }

int Oid::Compare(const Oid& other) const {
  if (kind_ != other.kind_) return kind_ < other.kind_ ? -1 : 1;
  switch (kind_) {
    case OidKind::kNil:
      return 0;
    case OidKind::kBool:
    case OidKind::kInt:
      return int_ < other.int_ ? -1 : (int_ > other.int_ ? 1 : 0);
    case OidKind::kReal: {
      // Compare is a TOTAL order (OidSet dedup and sorting depend on
      // it), so NaN cannot be "unordered" here the way CompareOids
      // reports it: a bare IEEE compare returns 0 for NaN vs anything,
      // which used to merge NaN with arbitrary reals on set insertion.
      // Order NaN after every ordered real instead.
      const bool a_nan = std::isnan(real_);
      const bool b_nan = std::isnan(other.real_);
      if (a_nan || b_nan) return a_nan == b_nan ? 0 : (a_nan ? 1 : -1);
      return real_ < other.real_ ? -1 : (real_ > other.real_ ? 1 : 0);
    }
    case OidKind::kString:
    case OidKind::kAtom: {
      int c = str_->compare(*other.str_);
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    case OidKind::kTerm: {
      int c = term_->fn.compare(other.term_->fn);
      if (c != 0) return c < 0 ? -1 : 1;
      const auto& a = term_->args;
      const auto& b = other.term_->args;
      for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
        int e = a[i].Compare(b[i]);
        if (e != 0) return e;
      }
      return a.size() < b.size() ? -1 : (a.size() > b.size() ? 1 : 0);
    }
  }
  return 0;
}

size_t Oid::Hash() const {
  size_t h = static_cast<size_t>(kind_) * 0x9E3779B97F4A7C15ULL;
  auto mix = [&h](size_t v) {
    h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
  };
  switch (kind_) {
    case OidKind::kNil:
      break;
    case OidKind::kBool:
    case OidKind::kInt:
      mix(std::hash<int64_t>{}(int_));
      break;
    case OidKind::kReal:
      mix(std::hash<double>{}(real_));
      break;
    case OidKind::kString:
    case OidKind::kAtom:
      mix(std::hash<std::string>{}(*str_));
      break;
    case OidKind::kTerm:
      mix(std::hash<std::string>{}(term_->fn));
      for (const Oid& a : term_->args) mix(a.Hash());
      break;
  }
  return h;
}

std::string Oid::ToString() const {
  switch (kind_) {
    case OidKind::kNil:
      return "nil";
    case OidKind::kBool:
      return int_ ? "true" : "false";
    case OidKind::kInt:
      return std::to_string(int_);
    case OidKind::kReal: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", real_);
      return buf;
    }
    case OidKind::kString:
      return "'" + *str_ + "'";
    case OidKind::kAtom:
      return *str_;
    case OidKind::kTerm: {
      std::string out = term_->fn;
      out += '(';
      for (size_t i = 0; i < term_->args.size(); ++i) {
        if (i > 0) out += ',';
        out += term_->args[i].ToString();
      }
      out += ')';
      return out;
    }
  }
  return "?";
}

OidSet::OidSet(std::vector<Oid> elems) : elems_(std::move(elems)) {
  std::sort(elems_.begin(), elems_.end());
  elems_.erase(std::unique(elems_.begin(), elems_.end()), elems_.end());
}

void OidSet::Insert(const Oid& oid) {
  auto it = std::lower_bound(elems_.begin(), elems_.end(), oid);
  if (it == elems_.end() || !(*it == oid)) elems_.insert(it, oid);
}

bool OidSet::Contains(const Oid& oid) const {
  return std::binary_search(elems_.begin(), elems_.end(), oid);
}

bool OidSet::SubsetOf(const OidSet& other) const {
  return std::includes(other.elems_.begin(), other.elems_.end(),
                       elems_.begin(), elems_.end());
}

OidSet OidSet::Union(const OidSet& a, const OidSet& b) {
  OidSet out;
  out.elems_.reserve(a.size() + b.size());
  std::set_union(a.elems_.begin(), a.elems_.end(), b.elems_.begin(),
                 b.elems_.end(), std::back_inserter(out.elems_));
  return out;
}

OidSet OidSet::Intersect(const OidSet& a, const OidSet& b) {
  OidSet out;
  std::set_intersection(a.elems_.begin(), a.elems_.end(), b.elems_.begin(),
                        b.elems_.end(), std::back_inserter(out.elems_));
  return out;
}

OidSet OidSet::Difference(const OidSet& a, const OidSet& b) {
  OidSet out;
  std::set_difference(a.elems_.begin(), a.elems_.end(), b.elems_.begin(),
                      b.elems_.end(), std::back_inserter(out.elems_));
  return out;
}

std::string OidSet::ToString() const {
  std::string out = "{";
  for (size_t i = 0; i < elems_.size(); ++i) {
    if (i > 0) out += ", ";
    out += elems_[i].ToString();
  }
  out += '}';
  return out;
}

}  // namespace xsql
