#ifndef XSQL_OID_OID_H_
#define XSQL_OID_OID_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace xsql {

/// The syntactic category of a logical object id (§2, "Objects and object
/// identity").
///
/// Logical oids are *terms in the query language*: atoms such as
/// `mary123`, literals such as `20` or `'Ford Motor Co.'` (a number or a
/// string is the logical id of the abstract object with the usual
/// properties of that number/string), the special object `nil` (§5), and
/// functional *id-terms* `f(t1,...,tn)` built from id-functions [KW89],
/// which the language uses to mint ids for view/query-result objects (§4).
enum class OidKind : uint8_t {
  kNil = 0,
  kBool,
  kInt,
  kReal,
  kString,
  kAtom,
  kTerm,
};

/// An immutable logical object id.
///
/// `Oid` is a small value type: cheap to copy (strings and term bodies are
/// shared), totally ordered (kind-major, then value) so it can key sorted
/// containers, and hashable. Identity of the *object* is identity of the
/// logical id; two distinct ids may denote the same conceptual entity
/// (the paper explicitly permits `_mary65 == secretary(dept77)` at the
/// conceptual level), but the store — like the paper's semantics — works
/// with logical ids.
class Oid {
 public:
  /// Default-constructs `nil`.
  Oid() : kind_(OidKind::kNil), int_(0), real_(0) {}

  static Oid Nil() { return Oid(); }
  static Oid Bool(bool b);
  static Oid Int(int64_t v);
  static Oid Real(double v);
  static Oid String(std::string s);
  static Oid Atom(std::string name);
  /// Functional id-term `fn(args...)`. `fn` is the id-function symbol.
  static Oid Term(std::string fn, std::vector<Oid> args);

  OidKind kind() const { return kind_; }
  bool is_nil() const { return kind_ == OidKind::kNil; }
  bool is_bool() const { return kind_ == OidKind::kBool; }
  bool is_int() const { return kind_ == OidKind::kInt; }
  bool is_real() const { return kind_ == OidKind::kReal; }
  bool is_string() const { return kind_ == OidKind::kString; }
  bool is_atom() const { return kind_ == OidKind::kAtom; }
  bool is_term() const { return kind_ == OidKind::kTerm; }
  /// Int or Real.
  bool is_numeric() const { return is_int() || is_real(); }

  bool bool_value() const { return int_ != 0; }
  int64_t int_value() const { return int_; }
  double real_value() const { return real_; }
  /// Numeric value as double (valid when is_numeric()).
  double numeric_value() const { return is_int() ? static_cast<double>(int_) : real_; }
  /// String payload (valid for kString and kAtom).
  const std::string& str() const { return *str_; }
  /// Function symbol of an id-term (valid for kTerm).
  const std::string& term_fn() const;
  /// Argument list of an id-term (valid for kTerm).
  const std::vector<Oid>& term_args() const;

  /// Structural equality of logical ids.
  bool operator==(const Oid& other) const;
  bool operator!=(const Oid& other) const { return !(*this == other); }
  /// Total order: kind-major, then value; for use in sorted containers.
  bool operator<(const Oid& other) const { return Compare(other) < 0; }
  /// Three-way structural comparison (-1/0/+1).
  int Compare(const Oid& other) const;

  size_t Hash() const;

  /// Renders the id the way the paper writes it: atoms bare, strings in
  /// single quotes, id-terms as `f(a,b)`.
  std::string ToString() const;

 private:
  struct TermRep {
    std::string fn;
    std::vector<Oid> args;
  };

  OidKind kind_;
  int64_t int_;  // also stores bool
  double real_;
  std::shared_ptr<const std::string> str_;
  std::shared_ptr<const TermRep> term_;
};

/// Hash functor for unordered containers keyed by Oid.
struct OidHash {
  size_t operator()(const Oid& oid) const { return oid.Hash(); }
};

/// A set of oids as a sorted, deduplicated vector.
///
/// Attribute values, path-expression values, and query answers are all
/// oid sets; sorted vectors keep them cache-friendly and make set algebra
/// (union/intersection/difference, §3.2) linear merges.
class OidSet {
 public:
  OidSet() = default;
  explicit OidSet(std::vector<Oid> elems);

  void Insert(const Oid& oid);
  bool Contains(const Oid& oid) const;
  bool empty() const { return elems_.empty(); }
  size_t size() const { return elems_.size(); }
  const std::vector<Oid>& elems() const { return elems_; }
  auto begin() const { return elems_.begin(); }
  auto end() const { return elems_.end(); }

  bool operator==(const OidSet& other) const { return elems_ == other.elems_; }

  /// True if every element of this set is in `other` (subsetEq).
  bool SubsetOf(const OidSet& other) const;

  static OidSet Union(const OidSet& a, const OidSet& b);
  static OidSet Intersect(const OidSet& a, const OidSet& b);
  static OidSet Difference(const OidSet& a, const OidSet& b);

  std::string ToString() const;

 private:
  std::vector<Oid> elems_;
};

}  // namespace xsql

#endif  // XSQL_OID_OID_H_
