#include "parser/lexer.h"

#include <cctype>

#include "common/str_util.h"

namespace xsql {

bool Token::IsKeyword(const char* kw) const {
  return type == TokenType::kIdent && EqualsIgnoreCase(text, kw);
}

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

Result<std::vector<Token>> Lex(const std::string& input) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = input.size();
  auto push = [&tokens](TokenType type, size_t pos, std::string text = "") {
    Token t;
    t.type = type;
    t.pos = pos;
    t.text = std::move(text);
    tokens.push_back(std::move(t));
  };

  while (i < n) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // -- comment to end of line.
    if (c == '-' && i + 1 < n && input[i + 1] == '-') {
      while (i < n && input[i] != '\n') ++i;
      continue;
    }
    const size_t start = i;
    if (IsIdentStart(c)) {
      size_t j = i;
      while (j < n && IsIdentChar(input[j])) ++j;
      push(TokenType::kIdent, start, input.substr(i, j - i));
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t j = i;
      bool is_real = false;
      while (j < n && std::isdigit(static_cast<unsigned char>(input[j]))) ++j;
      if (j < n && input[j] == '.' && j + 1 < n &&
          std::isdigit(static_cast<unsigned char>(input[j + 1]))) {
        is_real = true;
        ++j;
        while (j < n && std::isdigit(static_cast<unsigned char>(input[j]))) ++j;
      }
      Token t;
      t.pos = start;
      t.text = input.substr(i, j - i);
      if (is_real) {
        t.type = TokenType::kReal;
        t.real_value = std::stod(t.text);
      } else {
        t.type = TokenType::kInt;
        t.int_value = std::stoll(t.text);
      }
      tokens.push_back(std::move(t));
      i = j;
      continue;
    }
    switch (c) {
      case '\'': {
        size_t j = i + 1;
        std::string body;
        while (j < n && input[j] != '\'') body += input[j++];
        if (j >= n) {
          return Status::ParseError("unterminated string literal at offset " +
                                    std::to_string(start));
        }
        push(TokenType::kString, start, std::move(body));
        i = j + 1;
        continue;
      }
      case '$':
      case '"':
      case '?': {
        size_t j = i + 1;
        if (j >= n || !IsIdentStart(input[j])) {
          return Status::ParseError(std::string("expected identifier after '") +
                                    c + "' at offset " + std::to_string(start));
        }
        size_t k = j;
        while (k < n && IsIdentChar(input[k])) ++k;
        TokenType type = c == '$'   ? TokenType::kClassVar
                         : c == '"' ? TokenType::kMethodVar
                                    : TokenType::kExplicitVar;
        push(type, start, input.substr(j, k - j));
        i = k;
        continue;
      }
      case '.':
        push(TokenType::kDot, start);
        break;
      case ',':
        push(TokenType::kComma, start);
        break;
      case '(':
        push(TokenType::kLParen, start);
        break;
      case ')':
        push(TokenType::kRParen, start);
        break;
      case '[':
        push(TokenType::kLBracket, start);
        break;
      case ']':
        push(TokenType::kRBracket, start);
        break;
      case '{':
        push(TokenType::kLBrace, start);
        break;
      case '}':
        push(TokenType::kRBrace, start);
        break;
      case '@':
        push(TokenType::kAt, start);
        break;
      case ':':
        push(TokenType::kColon, start);
        break;
      case '+':
        push(TokenType::kPlus, start);
        break;
      case '*':
        push(TokenType::kStar, start);
        break;
      case '/':
        push(TokenType::kSlash, start);
        break;
      case '=':
        if (i + 2 < n && input[i + 1] == '>' && input[i + 2] == '>') {
          push(TokenType::kDoubleArrow, start);
          i += 2;
        } else if (i + 1 < n && input[i + 1] == '>') {
          push(TokenType::kArrow, start);
          i += 1;
        } else {
          push(TokenType::kEq, start);
        }
        break;
      case '!':
        if (i + 1 < n && input[i + 1] == '=') {
          push(TokenType::kNe, start);
          i += 1;
        } else {
          return Status::ParseError("stray '!' at offset " +
                                    std::to_string(start));
        }
        break;
      case '<':
        if (i + 1 < n && input[i + 1] == '=') {
          push(TokenType::kLe, start);
          i += 1;
        } else {
          push(TokenType::kLt, start);
        }
        break;
      case '>':
        if (i + 1 < n && input[i + 1] == '=') {
          push(TokenType::kGe, start);
          i += 1;
        } else {
          push(TokenType::kGt, start);
        }
        break;
      case '-':
        if (i + 2 < n && input[i + 1] == '>' && input[i + 2] == '>') {
          push(TokenType::kDoubleArrow, start);
          i += 2;
        } else if (i + 1 < n && input[i + 1] == '>') {
          push(TokenType::kArrow, start);
          i += 1;
        } else {
          push(TokenType::kMinus, start);
        }
        break;
      default:
        return Status::ParseError(std::string("unexpected character '") + c +
                                  "' at offset " + std::to_string(start));
    }
    ++i;
  }
  push(TokenType::kEnd, n);
  return tokens;
}

}  // namespace xsql
