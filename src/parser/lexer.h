#ifndef XSQL_PARSER_LEXER_H_
#define XSQL_PARSER_LEXER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace xsql {

/// Token categories of the XSQL surface syntax.
enum class TokenType : uint8_t {
  kEnd,
  kIdent,       // bare identifier: mary123, Residence, _john13, OO_Forum
  kClassVar,    // $X
  kMethodVar,   // "X
  kExplicitVar, // ?X — explicit individual variable (our extension)
  kString,      // 'newyork'
  kInt,
  kReal,
  kDot,
  kComma,
  kLParen,
  kRParen,
  kLBracket,
  kRBracket,
  kLBrace,
  kRBrace,
  kAt,
  kEq,          // =
  kNe,          // !=
  kLt,
  kLe,
  kGt,
  kGe,
  kPlus,
  kMinus,       // also the keyword MINUS is an ident; '-' is this token
  kStar,
  kSlash,
  kColon,
  kArrow,       // => / ->  (scalar signature arrow)
  kDoubleArrow, // =>> / ->> (set signature arrow)
};

/// One lexed token with its source position (byte offset) for errors.
struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;   // identifier / variable name / string body
  int64_t int_value = 0;
  double real_value = 0;
  size_t pos = 0;

  /// Case-insensitive keyword test for identifier tokens.
  bool IsKeyword(const char* kw) const;
};

/// Tokenizes XSQL text. `--` comments run to end of line.
Result<std::vector<Token>> Lex(const std::string& input);

}  // namespace xsql

#endif  // XSQL_PARSER_LEXER_H_
