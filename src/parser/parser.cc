#include "parser/parser.h"

#include <cctype>
#include <set>

#include "common/str_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "parser/lexer.h"

namespace xsql {

namespace {

/// Words that cannot be used as bare attribute/class/object identifiers.
bool IsReserved(const std::string& text) {
  static const char* kWords[] = {
      // "function" is NOT reserved: it only matters right after OID,
      // and Figure 1 has an attribute named Function.
      "select",    "from",     "where",     "and",       "or",
      "not",       "oid",      "union",     "minus",
      "intersect", "create",   "view",      "alter",     "update",
      "set",       "add",      "class",     "as",        "subclass",
      "of",        "signature", "subclassof", "applicableto", "contains", "containseq",
      "subset",    "subseteq", "seteq",     "some",      "all",
      "nil",       "true",     "false",     "count",     "sum",
      "avg",       "min",      "max",
  };
  for (const char* w : kWords) {
    if (EqualsIgnoreCase(text, w)) return true;
  }
  return false;
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Statement> ParseStatement() {
    Statement stmt;
    if (PeekKw("create")) {
      XSQL_ASSIGN_OR_RETURN(CreateViewStmt view, ParseCreateView());
      stmt.kind = Statement::Kind::kCreateView;
      stmt.create_view = std::make_shared<CreateViewStmt>(std::move(view));
    } else if (PeekKw("alter")) {
      XSQL_ASSIGN_OR_RETURN(AlterClassStmt alter, ParseAlterClass());
      stmt.kind = Statement::Kind::kAlterClass;
      stmt.alter_class = std::make_shared<AlterClassStmt>(std::move(alter));
    } else if (PeekKw("update")) {
      XSQL_ASSIGN_OR_RETURN(UpdateClassStmt update, ParseUpdateClass());
      stmt.kind = Statement::Kind::kUpdateClass;
      stmt.update_class = std::make_shared<UpdateClassStmt>(std::move(update));
    } else if (PeekKw("explain")) {
      // `explain`/`analyze` are only special in statement position, so
      // Figure 1 attribute names keep working inside queries.
      Advance();
      stmt.kind = Statement::Kind::kExplain;
      stmt.analyze = MatchKw("analyze");
      XSQL_ASSIGN_OR_RETURN(std::shared_ptr<QueryExpr> q, ParseQueryExpr());
      stmt.query = std::move(q);
    } else if (PeekKw("system") && PeekKw("metrics", 1)) {
      Advance();
      Advance();
      stmt.kind = Statement::Kind::kSystemMetrics;
    } else if (PeekKw("system") && PeekKw("status", 1)) {
      Advance();
      Advance();
      stmt.kind = Statement::Kind::kSystemStatus;
    } else {
      XSQL_ASSIGN_OR_RETURN(std::shared_ptr<QueryExpr> q, ParseQueryExpr());
      stmt.kind = Statement::Kind::kQuery;
      stmt.query = std::move(q);
    }
    if (!AtEnd()) {
      return Status::ParseError("trailing input at offset " +
                                std::to_string(Peek().pos));
    }
    return stmt;
  }

 private:
  // ---- cursor helpers ----
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  bool AtEnd() const { return Peek().type == TokenType::kEnd; }
  const Token& Advance() { return tokens_[pos_++]; }
  bool Check(TokenType type) const { return Peek().type == type; }
  bool Match(TokenType type) {
    if (!Check(type)) return false;
    ++pos_;
    return true;
  }
  bool PeekKw(const char* kw, size_t ahead = 0) const {
    return Peek(ahead).IsKeyword(kw);
  }
  bool MatchKw(const char* kw) {
    if (!PeekKw(kw)) return false;
    ++pos_;
    return true;
  }
  Status Expect(TokenType type, const char* what) {
    if (Match(type)) return Status::OK();
    return Status::ParseError(std::string("expected ") + what +
                              " at offset " + std::to_string(Peek().pos));
  }
  Status ExpectKw(const char* kw) {
    if (MatchKw(kw)) return Status::OK();
    return Status::ParseError(std::string("expected keyword '") + kw +
                              "' at offset " + std::to_string(Peek().pos));
  }

  std::string FreshVarName() {
    return "_g" + std::to_string(fresh_counter_++);
  }

  void AddPendingConjunct(std::shared_ptr<Condition> cond) {
    if (!pending_.empty()) pending_.back().push_back(std::move(cond));
  }

  // ---- statements ----

  Result<std::shared_ptr<QueryExpr>> ParseQueryExpr() {
    XSQL_ASSIGN_OR_RETURN(Query q, ParseQuery());
    auto expr = std::make_shared<QueryExpr>();
    expr->kind = QueryExpr::Kind::kSimple;
    expr->simple = std::make_shared<Query>(std::move(q));
    while (PeekKw("union") || PeekKw("minus") || PeekKw("intersect")) {
      QueryExpr::Kind kind = PeekKw("union")   ? QueryExpr::Kind::kUnion
                             : PeekKw("minus") ? QueryExpr::Kind::kMinus
                                               : QueryExpr::Kind::kIntersect;
      Advance();
      XSQL_ASSIGN_OR_RETURN(Query rhs, ParseQuery());
      auto combined = std::make_shared<QueryExpr>();
      combined->kind = kind;
      combined->lhs = std::move(expr);
      combined->rhs = std::make_shared<QueryExpr>();
      combined->rhs->kind = QueryExpr::Kind::kSimple;
      combined->rhs->simple = std::make_shared<Query>(std::move(rhs));
      expr = std::move(combined);
    }
    return expr;
  }

  Result<Query> ParseQuery() {
    XSQL_RETURN_IF_ERROR(ExpectKw("select"));
    pending_.emplace_back();
    Query query;
    // SELECT list.
    for (;;) {
      XSQL_ASSIGN_OR_RETURN(SelectItem item, ParseSelectItem());
      query.select.push_back(std::move(item));
      if (!Match(TokenType::kComma)) break;
    }
    // Optional clauses in any of the paper's orders.
    for (;;) {
      if (MatchKw("from")) {
        for (;;) {
          XSQL_ASSIGN_OR_RETURN(FromEntry entry, ParseFromEntry());
          query.from.push_back(std::move(entry));
          if (!Match(TokenType::kComma)) break;
        }
      } else if (PeekKw("oid")) {
        Advance();
        if (MatchKw("function")) XSQL_RETURN_IF_ERROR(ExpectKw("of"));
        std::vector<Variable> vars;
        for (;;) {
          XSQL_ASSIGN_OR_RETURN(Variable v, ParseVarName());
          vars.push_back(std::move(v));
          if (!Match(TokenType::kComma)) break;
        }
        query.oid_function_of = std::move(vars);
      } else if (MatchKw("where")) {
        XSQL_ASSIGN_OR_RETURN(std::shared_ptr<Condition> cond,
                              ParseCondition());
        query.where = std::move(cond);
      } else {
        break;
      }
    }
    // Fold desugaring conjuncts into WHERE.
    std::vector<std::shared_ptr<Condition>> extra = std::move(pending_.back());
    pending_.pop_back();
    if (!extra.empty()) {
      if (query.where != nullptr) extra.insert(extra.begin(), query.where);
      query.where =
          extra.size() == 1 ? extra[0] : Condition::And(std::move(extra));
    }
    return query;
  }

  Result<Variable> ParseVarName() {
    if (Check(TokenType::kExplicitVar) || Check(TokenType::kIdent)) {
      const Token& t = Advance();
      return Variable{t.text, VarSort::kIndividual};
    }
    if (Check(TokenType::kClassVar)) {
      const Token& t = Advance();
      return Variable{t.text, VarSort::kClass};
    }
    if (Check(TokenType::kMethodVar)) {
      const Token& t = Advance();
      return Variable{t.text, VarSort::kMethod};
    }
    return Status::ParseError("expected variable at offset " +
                              std::to_string(Peek().pos));
  }

  Result<SelectItem> ParseSelectItem() {
    SelectItem item;
    // Method-definition head: `(M @ args) = expr` or `(M) = expr`.
    if (Check(TokenType::kLParen) && Peek(1).type == TokenType::kIdent &&
        !IsReserved(Peek(1).text) &&
        (Peek(2).type == TokenType::kAt ||
         (Peek(2).type == TokenType::kRParen &&
          Peek(3).type == TokenType::kEq))) {
      Advance();  // (
      item.kind = SelectItem::Kind::kMethodHead;
      item.method = Oid::Atom(Advance().text);
      if (Match(TokenType::kAt)) {
        for (;;) {
          XSQL_ASSIGN_OR_RETURN(IdTerm arg, ParseArgAsIdTerm());
          item.method_args.push_back(std::move(arg));
          if (!Match(TokenType::kComma)) break;
        }
      }
      XSQL_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
      XSQL_RETURN_IF_ERROR(Expect(TokenType::kEq, "'='"));
      XSQL_ASSIGN_OR_RETURN(item.expr, ParseValueExpr());
      return item;
    }
    // Named output attribute: `Name = ...`.
    if (Check(TokenType::kIdent) && !IsReserved(Peek().text) &&
        Peek(1).type == TokenType::kEq) {
      item.out_attr = Oid::Atom(Advance().text);
      Advance();  // =
    }
    // Grouped set attribute: `{W}`.
    if (Check(TokenType::kLBrace) &&
        (Peek(1).type == TokenType::kIdent ||
         Peek(1).type == TokenType::kExplicitVar) &&
        Peek(2).type == TokenType::kRBrace) {
      Advance();  // {
      item.kind = SelectItem::Kind::kSetOfVar;
      item.set_var = Variable{Advance().text, VarSort::kIndividual};
      Advance();  // }
      return item;
    }
    item.kind = SelectItem::Kind::kExpr;
    XSQL_ASSIGN_OR_RETURN(item.expr, ParseValueExpr());
    return item;
  }

  Result<FromEntry> ParseFromEntry() {
    FromEntry entry;
    if (Check(TokenType::kClassVar)) {
      entry.cls = IdTerm::Var(Variable{Advance().text, VarSort::kClass});
    } else if (Check(TokenType::kIdent) &&
               (!IsReserved(Peek().text) ||
                EqualsIgnoreCase(Peek().text, "class"))) {
      // "Class" is a keyword elsewhere but names the meta-class here:
      // `FROM Class $C` ranges over the class-objects.
      entry.cls = IdTerm::Const(Oid::Atom(Advance().text));
    } else {
      return Status::ParseError("expected class in FROM at offset " +
                                std::to_string(Peek().pos));
    }
    XSQL_ASSIGN_OR_RETURN(entry.var, ParseVarName());
    // Individual variables are the norm; class variables are allowed so
    // `FROM Class $C` ranges over the class-objects (§2: classes are
    // objects and can be queried like them).
    if (entry.var.sort == VarSort::kMethod ||
        entry.var.sort == VarSort::kPath) {
      return Status::ParseError(
          "FROM variable must be an individual or class variable");
    }
    return entry;
  }

  // ---- conditions ----

  Result<std::shared_ptr<Condition>> ParseCondition() {
    XSQL_ASSIGN_OR_RETURN(std::shared_ptr<Condition> lhs, ParseAndCond());
    if (!PeekKw("or")) return lhs;
    std::vector<std::shared_ptr<Condition>> parts{std::move(lhs)};
    while (MatchKw("or")) {
      XSQL_ASSIGN_OR_RETURN(std::shared_ptr<Condition> next, ParseAndCond());
      parts.push_back(std::move(next));
    }
    return Condition::Or(std::move(parts));
  }

  Result<std::shared_ptr<Condition>> ParseAndCond() {
    XSQL_ASSIGN_OR_RETURN(std::shared_ptr<Condition> lhs, ParseUnaryCond());
    if (!PeekKw("and")) return lhs;
    std::vector<std::shared_ptr<Condition>> parts{std::move(lhs)};
    while (MatchKw("and")) {
      XSQL_ASSIGN_OR_RETURN(std::shared_ptr<Condition> next, ParseUnaryCond());
      parts.push_back(std::move(next));
    }
    return Condition::And(std::move(parts));
  }

  Result<std::shared_ptr<Condition>> ParseUnaryCond() {
    if (MatchKw("not")) {
      XSQL_ASSIGN_OR_RETURN(std::shared_ptr<Condition> child, ParseUnaryCond());
      return Condition::Not(std::move(child));
    }
    // Nested `(UPDATE CLASS ...)` condition (§5).
    if (Check(TokenType::kLParen) && PeekKw("update", 1)) {
      Advance();
      XSQL_ASSIGN_OR_RETURN(UpdateClassStmt update, ParseUpdateClass());
      XSQL_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
      auto cond = std::make_shared<Condition>();
      cond->kind = Condition::Kind::kUpdate;
      cond->update = std::make_shared<UpdateClassStmt>(std::move(update));
      return cond;
    }
    // Parenthesized condition, disambiguated from a parenthesized value
    // by backtracking: if after `( cond )` a comparator follows, the
    // parenthesis was a value grouping.
    if (Check(TokenType::kLParen) && !PeekKw("select", 1)) {
      size_t snapshot = pos_;
      Advance();
      auto attempt = ParseCondition();
      if (attempt.ok() && Check(TokenType::kRParen)) {
        Advance();
        if (!IsComparatorNext()) return std::move(attempt).value();
      }
      pos_ = snapshot;
    }
    return ParsePrimaryCond();
  }

  bool IsComparatorNext() const {
    switch (Peek().type) {
      case TokenType::kEq:
      case TokenType::kNe:
      case TokenType::kLt:
      case TokenType::kLe:
      case TokenType::kGt:
      case TokenType::kGe:
      case TokenType::kPlus:
      case TokenType::kMinus:
      case TokenType::kStar:
      case TokenType::kSlash:
        return true;
      case TokenType::kIdent:
        return PeekKw("some") || PeekKw("all") || PeekKw("contains") ||
               PeekKw("containseq") || PeekKw("subset") ||
               PeekKw("subseteq") || PeekKw("seteq") || PeekKw("subclassof");
      default:
        return false;
    }
  }

  Result<std::shared_ptr<Condition>> ParsePrimaryCond() {
    XSQL_ASSIGN_OR_RETURN(ValueExpr lhs, ParseValueExpr());
    // subclassOf predicate.
    if (MatchKw("subclassof")) {
      if (lhs.kind != ValueExpr::Kind::kPath || !lhs.path.trivial()) {
        return Status::ParseError("subclassOf expects an id-term on the left");
      }
      XSQL_ASSIGN_OR_RETURN(ValueExpr rhs, ParseValueExpr());
      if (rhs.kind != ValueExpr::Kind::kPath || !rhs.path.trivial()) {
        return Status::ParseError(
            "subclassOf expects an id-term on the right");
      }
      return Condition::SubclassOf(lhs.path.head, rhs.path.head);
    }
    // applicableTo predicate (§3.1's applicable-vs-defined distinction).
    if (MatchKw("applicableto")) {
      if (lhs.kind != ValueExpr::Kind::kPath || !lhs.path.trivial()) {
        return Status::ParseError(
            "applicableTo expects a method term on the left");
      }
      XSQL_ASSIGN_OR_RETURN(ValueExpr rhs, ParseValueExpr());
      if (rhs.kind != ValueExpr::Kind::kPath || !rhs.path.trivial()) {
        return Status::ParseError(
            "applicableTo expects an id-term on the right");
      }
      auto cond = std::make_shared<Condition>();
      cond->kind = Condition::Kind::kApplicable;
      cond->sub = lhs.path.head;
      cond->super = rhs.path.head;
      return cond;
    }
    // Set comparators.
    for (const auto& [kw, op] :
         std::initializer_list<std::pair<const char*, SetOp>>{
             {"containseq", SetOp::kContainsEq},
             {"contains", SetOp::kContains},
             {"subseteq", SetOp::kSubsetEq},
             {"subset", SetOp::kSubset},
             {"seteq", SetOp::kSetEq}}) {
      if (MatchKw(kw)) {
        XSQL_ASSIGN_OR_RETURN(ValueExpr rhs, ParseValueExpr());
        return Condition::SetComparison(std::move(lhs), op, std::move(rhs));
      }
    }
    // Quantified comparison: [some|all] op [some|all].
    Quant lq = Quant::kNone;
    if (MatchKw("some")) {
      lq = Quant::kSome;
    } else if (MatchKw("all")) {
      lq = Quant::kAll;
    }
    CompOp op;
    bool has_op = true;
    switch (Peek().type) {
      case TokenType::kEq:
        op = CompOp::kEq;
        break;
      case TokenType::kNe:
        op = CompOp::kNe;
        break;
      case TokenType::kLt:
        op = CompOp::kLt;
        break;
      case TokenType::kLe:
        op = CompOp::kLe;
        break;
      case TokenType::kGt:
        op = CompOp::kGt;
        break;
      case TokenType::kGe:
        op = CompOp::kGe;
        break;
      default:
        has_op = false;
        op = CompOp::kEq;
        break;
    }
    if (!has_op) {
      if (lq != Quant::kNone) {
        return Status::ParseError("quantifier without comparator at offset " +
                                  std::to_string(Peek().pos));
      }
      // Standalone path expression used as a Boolean predicate.
      if (lhs.kind != ValueExpr::Kind::kPath) {
        return Status::ParseError(
            "expected comparison or path expression at offset " +
            std::to_string(Peek().pos));
      }
      return Condition::Standalone(std::move(lhs.path));
    }
    Advance();
    Quant rq = Quant::kNone;
    if (MatchKw("some")) {
      rq = Quant::kSome;
    } else if (MatchKw("all")) {
      rq = Quant::kAll;
    }
    XSQL_ASSIGN_OR_RETURN(ValueExpr rhs, ParseValueExpr());
    return Condition::Comparison(std::move(lhs), lq, op, rq, std::move(rhs));
  }

  // ---- value expressions ----

  Result<ValueExpr> ParseValueExpr() { return ParseAdditive(); }

  Result<ValueExpr> ParseAdditive() {
    XSQL_ASSIGN_OR_RETURN(ValueExpr lhs, ParseMultiplicative());
    while (Check(TokenType::kPlus) || Check(TokenType::kMinus)) {
      ArithOp op = Check(TokenType::kPlus) ? ArithOp::kAdd : ArithOp::kSub;
      Advance();
      XSQL_ASSIGN_OR_RETURN(ValueExpr rhs, ParseMultiplicative());
      lhs = ValueExpr::Arith(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ValueExpr> ParseMultiplicative() {
    XSQL_ASSIGN_OR_RETURN(ValueExpr lhs, ParseUnaryValue());
    while (Check(TokenType::kStar) || Check(TokenType::kSlash)) {
      ArithOp op = Check(TokenType::kStar) ? ArithOp::kMul : ArithOp::kDiv;
      Advance();
      XSQL_ASSIGN_OR_RETURN(ValueExpr rhs, ParseUnaryValue());
      lhs = ValueExpr::Arith(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ValueExpr> ParseUnaryValue() {
    const Token& t = Peek();
    switch (t.type) {
      case TokenType::kInt:
        Advance();
        return MaybePathFromConst(Oid::Int(t.int_value));
      case TokenType::kReal:
        Advance();
        return MaybePathFromConst(Oid::Real(t.real_value));
      case TokenType::kString:
        Advance();
        return MaybePathFromConst(Oid::String(t.text));
      case TokenType::kLBrace: {
        Advance();
        std::vector<ValueExpr> elems;
        if (!Check(TokenType::kRBrace)) {
          for (;;) {
            XSQL_ASSIGN_OR_RETURN(ValueExpr e, ParseValueExpr());
            elems.push_back(std::move(e));
            if (!Match(TokenType::kComma)) break;
          }
        }
        XSQL_RETURN_IF_ERROR(Expect(TokenType::kRBrace, "'}'"));
        return ValueExpr::SetLiteral(std::move(elems));
      }
      case TokenType::kLParen: {
        if (PeekKw("select", 1)) {
          Advance();
          XSQL_ASSIGN_OR_RETURN(std::shared_ptr<QueryExpr> sub,
                                ParseQueryExpr());
          XSQL_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
          return ValueExpr::Subquery(std::move(sub));
        }
        // Either parenthesized arithmetic or a parenthesized method
        // expression starting a path; try the path route first because
        // `(MngrSalary @ X)` is not an arithmetic expression.
        if (Peek(1).type == TokenType::kIdent &&
            (Peek(2).type == TokenType::kAt)) {
          XSQL_ASSIGN_OR_RETURN(PathExpr p, ParsePathFromMethodParen());
          return ValueExpr::Path(std::move(p));
        }
        Advance();
        XSQL_ASSIGN_OR_RETURN(ValueExpr inner, ParseValueExpr());
        XSQL_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
        return inner;
      }
      case TokenType::kIdent:
        if (PeekKw("count") || PeekKw("sum") || PeekKw("avg") ||
            PeekKw("min") || PeekKw("max")) {
          if (Peek(1).type == TokenType::kLParen) {
            AggFn fn = PeekKw("count") ? AggFn::kCount
                       : PeekKw("sum") ? AggFn::kSum
                       : PeekKw("avg") ? AggFn::kAvg
                       : PeekKw("min") ? AggFn::kMin
                                       : AggFn::kMax;
            Advance();
            Advance();  // (
            XSQL_ASSIGN_OR_RETURN(PathExpr p, ParsePathExpr());
            XSQL_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
            return ValueExpr::Agg(fn, std::move(p));
          }
        }
        if (PeekKw("nil")) {
          Advance();
          return MaybePathFromConst(Oid::Nil());
        }
        if (PeekKw("true")) {
          Advance();
          return MaybePathFromConst(Oid::Bool(true));
        }
        if (PeekKw("false")) {
          Advance();
          return MaybePathFromConst(Oid::Bool(false));
        }
        [[fallthrough]];
      default: {
        XSQL_ASSIGN_OR_RETURN(PathExpr p, ParsePathExpr());
        return ValueExpr::Path(std::move(p));
      }
    }
  }

  /// A literal may still start a path (`20` is a legal trivial path and
  /// even `'x'.Length` would be syntactically fine), so wrap and continue.
  Result<ValueExpr> MaybePathFromConst(Oid oid) {
    PathExpr p;
    p.head = IdTerm::Const(std::move(oid));
    XSQL_RETURN_IF_ERROR(ParsePathTail(&p));
    return ValueExpr::Path(std::move(p));
  }

  /// Path starting with a parenthesized method expression — occurs when a
  /// method is invoked on the *result* position of a SELECT head (rare);
  /// treated as a path whose head is a fresh variable is not meaningful,
  /// so instead this only appears in value position and we reject heads:
  /// the practical case `X.Manufacturer.(MngrSalary @ Y)` is handled by
  /// ParsePathTail. Here we parse `(M @ args)` applied to nothing, which
  /// the paper never writes; return an error that points the user at the
  /// dotted form.
  Result<PathExpr> ParsePathFromMethodParen() {
    return Status::ParseError(
        "a method expression must follow a '.' in a path expression");
  }

  // ---- path expressions ----

  Result<PathExpr> ParsePathExpr() {
    PathExpr path;
    XSQL_ASSIGN_OR_RETURN(path.head, ParseHeadTerm());
    XSQL_RETURN_IF_ERROR(ParsePathTail(&path));
    return path;
  }

  Result<IdTerm> ParseHeadTerm() {
    const Token& t = Peek();
    switch (t.type) {
      case TokenType::kIdent: {
        if (IsReserved(t.text)) {
          return Status::ParseError("unexpected keyword '" + t.text +
                                    "' at offset " + std::to_string(t.pos));
        }
        Advance();
        if (Check(TokenType::kLParen)) {
          // Id-function application, e.g. CompSalaries(X.Manufacturer, W).
          Advance();
          std::vector<IdTerm> args;
          if (!Check(TokenType::kRParen)) {
            for (;;) {
              XSQL_ASSIGN_OR_RETURN(IdTerm arg, ParseArgAsIdTerm());
              args.push_back(std::move(arg));
              if (!Match(TokenType::kComma)) break;
            }
          }
          XSQL_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
          return IdTerm::Apply(t.text, std::move(args));
        }
        return IdTerm::NameRef(t.text);
      }
      case TokenType::kExplicitVar:
        Advance();
        return IdTerm::Var(Variable{t.text, VarSort::kIndividual});
      case TokenType::kClassVar:
        Advance();
        return IdTerm::Var(Variable{t.text, VarSort::kClass});
      case TokenType::kMethodVar:
        Advance();
        return IdTerm::Var(Variable{t.text, VarSort::kMethod});
      case TokenType::kInt:
        Advance();
        return IdTerm::Const(Oid::Int(t.int_value));
      case TokenType::kReal:
        Advance();
        return IdTerm::Const(Oid::Real(t.real_value));
      case TokenType::kString:
        Advance();
        return IdTerm::Const(Oid::String(t.text));
      default:
        return Status::ParseError("expected id-term at offset " +
                                  std::to_string(t.pos));
    }
  }

  Status ParsePathTail(PathExpr* path) {
    while (Match(TokenType::kDot)) {
      PathStep step;
      if (Match(TokenType::kStar)) {
        // Path variable `*Y` (§3.1 extension).
        if (!Check(TokenType::kIdent)) {
          return Status::ParseError("expected identifier after '.*'");
        }
        step.kind = PathStep::Kind::kPathVar;
        step.path_var = Variable{Advance().text, VarSort::kPath};
      } else if (Match(TokenType::kLParen)) {
        // Method expression `(M @ a1,...,ak)`.
        step.kind = PathStep::Kind::kMethod;
        if (Check(TokenType::kMethodVar)) {
          step.method.name_is_var = true;
          step.method.name_var = Variable{Advance().text, VarSort::kMethod};
        } else if (Check(TokenType::kIdent) && !IsReserved(Peek().text)) {
          step.method.name = Oid::Atom(Advance().text);
        } else {
          return Status::ParseError("expected method name at offset " +
                                    std::to_string(Peek().pos));
        }
        if (Match(TokenType::kAt)) {
          for (;;) {
            XSQL_ASSIGN_OR_RETURN(IdTerm arg, ParseArgAsIdTerm());
            step.method.args.push_back(std::move(arg));
            if (!Match(TokenType::kComma)) break;
          }
        }
        XSQL_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
      } else if (Check(TokenType::kMethodVar)) {
        step.kind = PathStep::Kind::kMethod;
        step.method.name_is_var = true;
        step.method.name_var = Variable{Advance().text, VarSort::kMethod};
      } else if (Check(TokenType::kIdent) && !IsReserved(Peek().text)) {
        step.kind = PathStep::Kind::kMethod;
        step.method.name = Oid::Atom(Advance().text);
      } else {
        return Status::ParseError("expected attribute expression at offset " +
                                  std::to_string(Peek().pos));
      }
      if (Match(TokenType::kLBracket)) {
        XSQL_ASSIGN_OR_RETURN(IdTerm sel, ParseArgAsIdTerm());
        step.selector = std::move(sel);
        XSQL_RETURN_IF_ERROR(Expect(TokenType::kRBracket, "']'"));
      }
      path->steps.push_back(std::move(step));
    }
    return Status::OK();
  }

  /// Parses an argument/selector position. The grammar allows id-terms
  /// only, but the paper sanctions path shorthands like
  /// `(MngrSalary @ Y.Name)`: we parse a full path expression and, when
  /// it is not trivial, desugar it to a fresh variable Z plus the WHERE
  /// conjunct `Y.Name[Z]` (§5).
  Result<IdTerm> ParseArgAsIdTerm() {
    XSQL_ASSIGN_OR_RETURN(PathExpr p, ParsePathExpr());
    if (p.trivial()) return p.head;
    if (pending_.empty()) {
      return Status::ParseError(
          "path shorthand argument outside a query context");
    }
    PathStep& last = p.steps.back();
    if (last.selector.has_value()) {
      return Status::ParseError(
          "path shorthand argument must not end in a selector");
    }
    Variable fresh{FreshVarName(), VarSort::kIndividual};
    last.selector = IdTerm::Var(fresh);
    AddPendingConjunct(Condition::Standalone(std::move(p)));
    return IdTerm::Var(fresh);
  }

  // ---- DDL / DML ----

  Result<SignatureDecl> ParseSignatureDecl() {
    SignatureDecl decl;
    if (!Check(TokenType::kIdent) || IsReserved(Peek().text)) {
      return Status::ParseError("expected method name in signature");
    }
    decl.method = Oid::Atom(Advance().text);
    if (Match(TokenType::kColon)) {
      for (;;) {
        if (!Check(TokenType::kIdent)) {
          return Status::ParseError("expected argument class in signature");
        }
        decl.args.push_back(Oid::Atom(Advance().text));
        if (!Match(TokenType::kComma)) break;
      }
    }
    if (Match(TokenType::kDoubleArrow)) {
      decl.set_valued = true;
    } else {
      XSQL_RETURN_IF_ERROR(Expect(TokenType::kArrow, "'=>' or '=>>'"));
    }
    if (Match(TokenType::kLBrace)) {
      for (;;) {
        if (!Check(TokenType::kIdent)) {
          return Status::ParseError("expected result class in signature");
        }
        decl.results.push_back(Oid::Atom(Advance().text));
        if (!Match(TokenType::kComma)) break;
      }
      XSQL_RETURN_IF_ERROR(Expect(TokenType::kRBrace, "'}'"));
    } else {
      if (!Check(TokenType::kIdent)) {
        return Status::ParseError("expected result class in signature");
      }
      decl.results.push_back(Oid::Atom(Advance().text));
    }
    return decl;
  }

  Result<CreateViewStmt> ParseCreateView() {
    XSQL_RETURN_IF_ERROR(ExpectKw("create"));
    XSQL_RETURN_IF_ERROR(ExpectKw("view"));
    CreateViewStmt stmt;
    if (!Check(TokenType::kIdent)) {
      return Status::ParseError("expected view name");
    }
    stmt.name = Oid::Atom(Advance().text);
    XSQL_RETURN_IF_ERROR(ExpectKw("as"));
    XSQL_RETURN_IF_ERROR(ExpectKw("subclass"));
    XSQL_RETURN_IF_ERROR(ExpectKw("of"));
    if (!Check(TokenType::kIdent)) {
      return Status::ParseError("expected superclass name");
    }
    stmt.superclass = Oid::Atom(Advance().text);
    if (MatchKw("signature")) {
      for (;;) {
        XSQL_ASSIGN_OR_RETURN(SignatureDecl decl, ParseSignatureDecl());
        stmt.signatures.push_back(std::move(decl));
        if (!Match(TokenType::kComma)) break;
      }
    }
    XSQL_ASSIGN_OR_RETURN(stmt.query, ParseQuery());
    stmt.query.oid_fn_name = stmt.name.str();
    return stmt;
  }

  Result<AlterClassStmt> ParseAlterClass() {
    XSQL_RETURN_IF_ERROR(ExpectKw("alter"));
    XSQL_RETURN_IF_ERROR(ExpectKw("class"));
    AlterClassStmt stmt;
    if (!Check(TokenType::kIdent)) {
      return Status::ParseError("expected class name");
    }
    stmt.cls = Oid::Atom(Advance().text);
    if (MatchKw("add")) {
      XSQL_RETURN_IF_ERROR(ExpectKw("signature"));
      for (;;) {
        XSQL_ASSIGN_OR_RETURN(SignatureDecl decl, ParseSignatureDecl());
        stmt.add_signatures.push_back(std::move(decl));
        if (!Match(TokenType::kComma)) break;
      }
    }
    if (PeekKw("select")) {
      XSQL_ASSIGN_OR_RETURN(Query q, ParseQuery());
      stmt.method_def = std::move(q);
    }
    return stmt;
  }

  Result<UpdateClassStmt> ParseUpdateClass() {
    XSQL_RETURN_IF_ERROR(ExpectKw("update"));
    XSQL_RETURN_IF_ERROR(ExpectKw("class"));
    UpdateClassStmt stmt;
    if (!Check(TokenType::kIdent)) {
      return Status::ParseError("expected class name");
    }
    stmt.cls = Oid::Atom(Advance().text);
    XSQL_RETURN_IF_ERROR(ExpectKw("set"));
    // Desugared path-argument conjuncts stay scoped to the update: their
    // variables are bound per enumerated target, not in the enclosing
    // query's WHERE.
    pending_.emplace_back();
    Status parse_status = Status::OK();
    for (;;) {
      UpdateClassStmt::Assignment assign;
      auto target = ParsePathExpr();
      if (!target.ok()) {
        parse_status = target.status();
        break;
      }
      assign.target = std::move(target).value();
      parse_status = Expect(TokenType::kEq, "'='");
      if (!parse_status.ok()) break;
      auto value = ParseValueExpr();
      if (!value.ok()) {
        parse_status = value.status();
        break;
      }
      assign.value = std::move(value).value();
      stmt.assignments.push_back(std::move(assign));
      if (!Match(TokenType::kComma)) break;
    }
    std::vector<std::shared_ptr<Condition>> scoped = std::move(pending_.back());
    pending_.pop_back();
    XSQL_RETURN_IF_ERROR(parse_status);
    if (!scoped.empty()) {
      stmt.where =
          scoped.size() == 1 ? scoped[0] : Condition::And(std::move(scoped));
    }
    return stmt;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  int fresh_counter_ = 0;
  // Desugaring conjuncts per enclosing query.
  std::vector<std::vector<std::shared_ptr<Condition>>> pending_;
};

}  // namespace

Result<Statement> Parse(const std::string& text) {
  XSQL_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(text));
  Parser parser(std::move(tokens));
  return parser.ParseStatement();
}

// ---------------------------------------------------------------------
// Name resolution
// ---------------------------------------------------------------------

namespace {

/// Scope stack of individual-variable names during resolution.
class Scope {
 public:
  void Push() { frames_.emplace_back(); }
  void Pop() { frames_.pop_back(); }
  void Declare(const std::string& name) { frames_.back().insert(name); }
  bool Contains(const std::string& name) const {
    for (auto it = frames_.rbegin(); it != frames_.rend(); ++it) {
      if (it->contains(name)) return true;
    }
    return false;
  }

 private:
  std::vector<std::set<std::string>> frames_;
};

class Resolver {
 public:
  explicit Resolver(const Database& db) : db_(db) {}

  Status ResolveStatement(Statement* stmt) {
    switch (stmt->kind) {
      case Statement::Kind::kQuery:
      case Statement::Kind::kExplain:
        return ResolveQueryExpr(stmt->query.get());
      case Statement::Kind::kSystemMetrics:
      case Statement::Kind::kSystemStatus:
        return Status::OK();
      case Statement::Kind::kCreateView:
        return ResolveQuery(&stmt->create_view->query);
      case Statement::Kind::kAlterClass:
        if (stmt->alter_class->method_def.has_value()) {
          return ResolveQuery(&*stmt->alter_class->method_def);
        }
        return Status::OK();
      case Statement::Kind::kUpdateClass:
        scope_.Push();
        {
          Status st = ResolveUpdate(stmt->update_class.get());
          scope_.Pop();
          return st;
        }
    }
    return Status::OK();
  }

 private:
  Status ResolveQueryExpr(QueryExpr* expr) {
    switch (expr->kind) {
      case QueryExpr::Kind::kSimple:
        return ResolveQuery(expr->simple.get());
      default:
        XSQL_RETURN_IF_ERROR(ResolveQueryExpr(expr->lhs.get()));
        return ResolveQueryExpr(expr->rhs.get());
    }
  }

  Status ResolveQuery(Query* query) {
    scope_.Push();
    // Declared names: FROM variables, bare SELECT names, `{W}` variables,
    // OID FUNCTION OF variables.
    for (const FromEntry& entry : query->from) scope_.Declare(entry.var.name);
    for (const SelectItem& item : query->select) {
      if (item.kind == SelectItem::Kind::kSetOfVar) {
        scope_.Declare(item.set_var.name);
      } else if (item.kind == SelectItem::Kind::kExpr &&
                 item.expr.kind == ValueExpr::Kind::kPath &&
                 item.expr.path.trivial() &&
                 item.expr.path.head.kind == IdTerm::Kind::kNameRef) {
        scope_.Declare(item.expr.path.head.name);
      }
    }
    if (query->oid_function_of.has_value()) {
      for (const Variable& v : *query->oid_function_of) {
        if (v.sort == VarSort::kIndividual) scope_.Declare(v.name);
      }
    }
    Status st = ResolveQueryBody(query);
    scope_.Pop();
    return st;
  }

  Status ResolveQueryBody(Query* query) {
    for (FromEntry& entry : query->from) {
      if (entry.cls.kind == IdTerm::Kind::kNameRef) {
        entry.cls = IdTerm::Const(Oid::Atom(entry.cls.name));
      }
    }
    for (SelectItem& item : query->select) {
      switch (item.kind) {
        case SelectItem::Kind::kExpr:
          XSQL_RETURN_IF_ERROR(ResolveValue(&item.expr));
          break;
        case SelectItem::Kind::kSetOfVar:
          break;
        case SelectItem::Kind::kMethodHead:
          for (IdTerm& arg : item.method_args) {
            XSQL_RETURN_IF_ERROR(ResolveIdTerm(&arg));
          }
          XSQL_RETURN_IF_ERROR(ResolveValue(&item.expr));
          break;
      }
    }
    if (query->where != nullptr) {
      XSQL_RETURN_IF_ERROR(ResolveCondition(query->where.get()));
    }
    return Status::OK();
  }

  Status ResolveCondition(Condition* cond) {
    switch (cond->kind) {
      case Condition::Kind::kAnd:
      case Condition::Kind::kOr:
      case Condition::Kind::kNot:
        for (auto& child : cond->children) {
          XSQL_RETURN_IF_ERROR(ResolveCondition(child.get()));
        }
        return Status::OK();
      case Condition::Kind::kComparison:
      case Condition::Kind::kSetComparison:
        XSQL_RETURN_IF_ERROR(ResolveValue(&cond->lhs));
        return ResolveValue(&cond->rhs);
      case Condition::Kind::kStandalonePath:
        return ResolvePath(&cond->path);
      case Condition::Kind::kSubclassOf:
        XSQL_RETURN_IF_ERROR(ResolveIdTermAsClass(&cond->sub));
        return ResolveIdTermAsClass(&cond->super);
      case Condition::Kind::kApplicable:
        // Bare left name = a method-name constant; the right side
        // follows the normal rules.
        XSQL_RETURN_IF_ERROR(ResolveIdTermAsClass(&cond->sub));
        return ResolveIdTerm(&cond->super);
      case Condition::Kind::kUpdate:
        return ResolveUpdate(cond->update.get());
    }
    return Status::OK();
  }

  Status ResolveUpdate(UpdateClassStmt* update) {
    for (auto& assign : update->assignments) {
      XSQL_RETURN_IF_ERROR(ResolvePath(&assign.target));
      XSQL_RETURN_IF_ERROR(ResolveValue(&assign.value));
    }
    if (update->where != nullptr) {
      XSQL_RETURN_IF_ERROR(ResolveCondition(update->where.get()));
    }
    return Status::OK();
  }

  Status ResolveValue(ValueExpr* expr) {
    switch (expr->kind) {
      case ValueExpr::Kind::kPath:
      case ValueExpr::Kind::kAggregate:
        return ResolvePath(&expr->path);
      case ValueExpr::Kind::kArith:
        XSQL_RETURN_IF_ERROR(ResolveValue(expr->lhs.get()));
        return ResolveValue(expr->rhs.get());
      case ValueExpr::Kind::kSubquery:
        return ResolveQueryExpr(expr->subquery.get());
      case ValueExpr::Kind::kSetLiteral:
        for (ValueExpr& e : expr->set_elems) {
          XSQL_RETURN_IF_ERROR(ResolveValue(&e));
        }
        return Status::OK();
    }
    return Status::OK();
  }

  Status ResolvePath(PathExpr* path) {
    XSQL_RETURN_IF_ERROR(ResolveIdTerm(&path->head));
    for (PathStep& step : path->steps) {
      if (step.kind == PathStep::Kind::kMethod) {
        for (IdTerm& arg : step.method.args) {
          XSQL_RETURN_IF_ERROR(ResolveIdTerm(&arg));
        }
      }
      if (step.selector.has_value()) {
        XSQL_RETURN_IF_ERROR(ResolveIdTerm(&*step.selector));
      }
    }
    return Status::OK();
  }

  /// In subclassOf positions bare names are class constants unless they
  /// are scope variables.
  Status ResolveIdTermAsClass(IdTerm* term) {
    if (term->kind == IdTerm::Kind::kNameRef) {
      if (scope_.Contains(term->name)) {
        *term = IdTerm::Var(Variable{term->name, VarSort::kIndividual});
      } else {
        *term = IdTerm::Const(Oid::Atom(term->name));
      }
      return Status::OK();
    }
    return ResolveIdTerm(term);
  }

  Status ResolveIdTerm(IdTerm* term) {
    switch (term->kind) {
      case IdTerm::Kind::kNameRef: {
        const std::string& name = term->name;
        if (scope_.Contains(name)) {
          *term = IdTerm::Var(Variable{name, VarSort::kIndividual});
        } else if (KnownToDatabase(name)) {
          *term = IdTerm::Const(Oid::Atom(name));
        } else if (!name.empty() &&
                   std::isupper(static_cast<unsigned char>(name[0]))) {
          *term = IdTerm::Var(Variable{name, VarSort::kIndividual});
        } else {
          *term = IdTerm::Const(Oid::Atom(name));
        }
        return Status::OK();
      }
      case IdTerm::Kind::kApply:
        for (IdTerm& arg : term->args) {
          XSQL_RETURN_IF_ERROR(ResolveIdTerm(&arg));
        }
        return Status::OK();
      default:
        return Status::OK();
    }
  }

  bool KnownToDatabase(const std::string& name) const {
    Oid atom = Oid::Atom(name);
    return db_.HasObject(atom) || db_.graph().IsClass(atom) ||
           db_.ActiveDomain().Contains(atom);
  }

  const Database& db_;
  Scope scope_;
};

}  // namespace

Status ResolveNames(Statement* stmt, const Database& db) {
  Resolver resolver(db);
  return resolver.ResolveStatement(stmt);
}

Result<Statement> ParseAndResolve(const std::string& text,
                                  const Database& db) {
  static obs::Counter& statements =
      obs::MetricsRegistry::Global().GetCounter("xsql.parse.statements");
  static obs::Counter& errors =
      obs::MetricsRegistry::Global().GetCounter("xsql.parse.errors");
  obs::Span span("parse");
  auto run = [&]() -> Result<Statement> {
    XSQL_ASSIGN_OR_RETURN(Statement stmt, Parse(text));
    XSQL_RETURN_IF_ERROR(ResolveNames(&stmt, db));
    return stmt;
  };
  Result<Statement> out = run();
  (out.ok() ? statements : errors).Inc();
  return out;
}

}  // namespace xsql
