#ifndef XSQL_PARSER_PARSER_H_
#define XSQL_PARSER_PARSER_H_

#include <string>

#include "ast/ast.h"
#include "common/status.h"
#include "store/database.h"

namespace xsql {

/// Parses one XSQL statement (query, CREATE VIEW, ALTER CLASS or UPDATE
/// CLASS). The returned AST may contain unresolved `kNameRef` id-terms;
/// run `ResolveNames` before type checking or evaluation.
///
/// Two paper-prescribed desugarings happen during parsing:
///  * a non-trivial path used as a method argument or id-function
///    argument (e.g. `(MngrSalary @ Y.Name)`) is replaced by a fresh
///    variable plus the conjunct `Y.Name[Z]` added to the WHERE clause
///    (§5, discussion after query (12); §4.2 for id-terms);
///  * `OID X` is parsed as `OID FUNCTION OF X`.
Result<Statement> Parse(const std::string& text);

/// Resolves every bare identifier (`kNameRef`) to a constant or an
/// individual variable. The rule, documented in README (the paper leaves
/// bare identifiers' sorting to context):
///  * names declared by the enclosing FROM clauses, appearing bare in a
///    SELECT list, listed in OID FUNCTION OF, or grouped in `{W}` are
///    individual variables;
///  * names known to the database (a class, an existing object, or any
///    oid in the active domain) are constants;
///  * remaining names starting with an upper-case letter are individual
///    variables (the paper's `X`, `Y`, `W` style);
///  * everything else is a constant atom (so `mary123` on an empty
///    database denotes a non-existent object and yields empty answers,
///    exactly as §3.1 discusses).
Status ResolveNames(Statement* stmt, const Database& db);

/// Convenience: parse then resolve.
Result<Statement> ParseAndResolve(const std::string& text, const Database& db);

}  // namespace xsql

#endif  // XSQL_PARSER_PARSER_H_
