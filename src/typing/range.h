#ifndef XSQL_TYPING_RANGE_H_
#define XSQL_TYPING_RANGE_H_

#include <map>
#include <string>
#include <vector>

#include "ast/ast.h"
#include "store/database.h"

namespace xsql {

/// The range A(X) of a variable under a type assignment (§6.2): the set
/// of classes every binding of X must belong to. Always contains
/// `Object` (each individual variable is restricted to Object).
class VarRange {
 public:
  VarRange();

  /// Adds a class constraint (deduplicating).
  void Add(const Oid& cls);

  const std::vector<Oid>& classes() const { return classes_; }

  /// An oid is *within* the range if it is an instance of every class.
  bool Within(const Database& db, const Oid& oid) const;

  /// §6.2 emptiness: no oid could ever satisfy all classes — decided
  /// statically as "the classes have no common subclass".
  bool Empty(const ClassGraph& graph) const;

  /// §6.2 subrange test against a single class.
  bool SubrangeOf(const ClassGraph& graph, const Oid& cls) const;

  /// The candidate oids for a variable with this range: the extent of
  /// the most restrictive intersection — computed as the intersection of
  /// the class extents. This is Theorem 6.1(2)'s optimization handle.
  OidSet CandidateOids(const Database& db) const;

  std::string ToString() const;

 private:
  std::vector<Oid> classes_;
};

/// Ranges for all individual variables of a query.
using RangeMap = std::map<Variable, VarRange>;

}  // namespace xsql

#endif  // XSQL_TYPING_RANGE_H_
