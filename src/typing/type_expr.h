#ifndef XSQL_TYPING_TYPE_EXPR_H_
#define XSQL_TYPING_TYPE_EXPR_H_

#include <string>
#include <vector>

#include "oid/oid.h"
#include "store/database.h"
#include "store/signature.h"

namespace xsql {

/// A type expression `A0, A1, ..., Ak ~> R` (§6.1 formula (14)): the
/// receiver class A0, argument classes A1..Ak, result class R, and the
/// arrow kind. Signatures attached to a class become type expressions by
/// making the declaring class the explicit 0th argument.
struct TypeExpr {
  Oid receiver;
  std::vector<Oid> args;
  Oid result;
  bool set_valued = false;

  /// Builds the type expression of a signature declared on `cls`.
  static TypeExpr FromSignature(const Oid& cls, const Signature& sig);

  size_t arity() const { return args.size(); }

  bool operator==(const TypeExpr& other) const {
    return receiver == other.receiver && args == other.args &&
           result == other.result && set_valued == other.set_valued;
  }

  std::string ToString() const;
};

/// §6.1: `sup` is a supertype of `sub` iff every argument class of `sup`
/// (including the receiver) is a — possibly nonstrict — subclass of the
/// corresponding argument class of `sub`, `sup`'s result is a superclass
/// of `sub`'s result, and the arrow kinds agree. ("Supertype" reads as
/// "superset of the described function sets".)
bool IsSupertypeOf(const ClassGraph& graph, const TypeExpr& sup,
                   const TypeExpr& sub);

/// §6.1 possession: method `method` possesses `type` iff some declared
/// signature of `method` (anywhere in the schema) has a type expression
/// of which `type` is a supertype. Structural inheritance (covariance)
/// is reflected by the closure under the supertype relationship.
bool Possesses(const Database& db, const Oid& method, const TypeExpr& type);

/// All base type expressions of `method`: one per declared signature,
/// with the declaring class as receiver. These are the candidate
/// assignments the type checker searches over (the possessed closure is
/// generated from them by `IsSupertypeOf`).
std::vector<TypeExpr> DeclaredTypeExprs(const Database& db, const Oid& method);

}  // namespace xsql

#endif  // XSQL_TYPING_TYPE_EXPR_H_
