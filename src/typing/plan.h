#ifndef XSQL_TYPING_PLAN_H_
#define XSQL_TYPING_PLAN_H_

#include <cstddef>
#include <string>
#include <vector>

namespace xsql {

/// An execution plan (§6.2) orders the path expressions of a WHERE
/// clause. The paper defines a plan as a partial order; for checking
/// coherence it suffices to consider total orders, because extending a
/// coherent partial order only *adds* assigned occurrences to each
/// restriction A', which shrinks ranges and can only make the subrange
/// conditions easier to satisfy. A plan is therefore a permutation of
/// path-expression indices.
using ExecutionPlan = std::vector<size_t>;

/// All permutations of {0..n-1} when n <= max_exhaustive; otherwise just
/// the identity and the reversed order (a pragmatic cap — real queries
/// have a handful of path expressions).
std::vector<ExecutionPlan> EnumeratePlans(size_t n,
                                          size_t max_exhaustive = 6);

/// Renders a plan like "p2 -> p0 -> p1" for diagnostics.
std::string PlanToString(const ExecutionPlan& plan);

}  // namespace xsql

#endif  // XSQL_TYPING_PLAN_H_
