#include "typing/planner.h"

#include <algorithm>
#include <limits>
#include <map>
#include <numeric>

namespace xsql {

namespace {

/// Coarse cost ranks. Only the relative order matters: among ready
/// conjuncts the driver picks the lowest rank, so index probes run
/// before selective filters, filters before joins, joins before pure
/// generators, and the non-conjunctive forms (OR, NOT) last.
constexpr int kRankIndexProbe = 0;
constexpr int kRankSelectorPath = 10;
constexpr int kRankConstComparison = 20;
constexpr int kRankHashJoin = 25;
constexpr int kRankComparison = 30;
constexpr int kRankGeneratorPath = 40;
constexpr int kRankSchema = 50;
constexpr int kRankNot = 60;
constexpr int kRankOr = 70;
constexpr int kRankUpdate = 90;

/// Does any nested UPDATE hide in this condition tree? §5 queries with
/// update conditions observe left-to-right WHERE evaluation (the paper's
/// nested-update examples depend on it), so they disable reordering.
bool ContainsUpdate(const Condition& cond) {
  if (cond.kind == Condition::Kind::kUpdate) return true;
  for (const auto& child : cond.children) {
    if (child != nullptr && ContainsUpdate(*child)) return true;
  }
  return false;
}

bool IdTermHasVar(const IdTerm& t) {
  if (t.is_var()) return true;
  if (t.is_apply()) {
    for (const IdTerm& a : t.args) {
      if (IdTermHasVar(a)) return true;
    }
  }
  return false;
}

/// True when the path's only variable is its head (an individual
/// variable): constant method names without arguments containing
/// variables, constant selectors, no path variables. Binding the head
/// makes such a path ground, so its value is a pure function of the
/// head object — exactly what a hash join builds its table over.
bool OnlyHeadVar(const PathExpr& path) {
  if (!path.head.is_var()) return false;
  if (path.head.var.sort != VarSort::kIndividual) return false;
  for (const PathStep& step : path.steps) {
    if (step.kind != PathStep::Kind::kMethod) return false;
    if (step.method.name_is_var) return false;
    for (const IdTerm& arg : step.method.args) {
      if (IdTermHasVar(arg)) return false;
    }
    if (step.selector.has_value() && !step.selector->is_const()) {
      return false;
    }
  }
  return true;
}

/// True when no path under `expr` mentions a variable (a ground side of
/// a comparison — a constant to filter against).
bool SideIsGround(const ValueExpr& expr) {
  std::vector<const PathExpr*> paths;
  CollectPathExprs(expr, &paths);
  for (const PathExpr* p : paths) {
    if (IdTermHasVar(p->head)) return false;
    for (const PathStep& step : p->steps) {
      if (step.kind == PathStep::Kind::kPathVar) return false;
      if (step.method.name_is_var) return false;
      for (const IdTerm& arg : step.method.args) {
        if (IdTermHasVar(arg)) return false;
      }
      if (step.selector.has_value() && IdTermHasVar(*step.selector)) {
        return false;
      }
    }
  }
  return expr.kind != ValueExpr::Kind::kSubquery;
}

/// The attribute chain of an index-answerable standalone path —
/// `X.a1...an[sel]` with constant no-argument attribute steps and the
/// selector only on the last step — or empty when the shape does not
/// match. Mirrors the evaluator's runtime test, minus bindings.
std::vector<Oid> IndexableAttrs(const PathExpr& path) {
  if (!path.head.is_var() || path.steps.empty()) return {};
  std::vector<Oid> attrs;
  for (size_t i = 0; i < path.steps.size(); ++i) {
    const PathStep& step = path.steps[i];
    if (step.kind != PathStep::Kind::kMethod || step.method.name_is_var ||
        !step.method.args.empty()) {
      return {};
    }
    const bool last = i + 1 == path.steps.size();
    if (step.selector.has_value() != last) return {};
    if (last && !(step.selector->is_const() || step.selector->is_var())) {
      return {};
    }
    attrs.push_back(step.method.name);
  }
  return attrs;
}

std::string CardToString(size_t card) {
  if (card == std::numeric_limits<size_t>::max()) return "?";
  return std::to_string(card);
}

}  // namespace

bool Planner::HashJoinableShape(const Condition& cond) {
  if (cond.kind != Condition::Kind::kComparison) return false;
  if (cond.comp_op != CompOp::kEq) return false;
  if (cond.lquant == Quant::kAll || cond.rquant == Quant::kAll) return false;
  if (cond.lhs.kind != ValueExpr::Kind::kPath ||
      cond.rhs.kind != ValueExpr::Kind::kPath) {
    return false;
  }
  if (!OnlyHeadVar(cond.lhs.path) || !OnlyHeadVar(cond.rhs.path)) {
    return false;
  }
  // `X = Y` over bare heads is a cheap filter already; a hash table
  // only pays for itself when at least one side walks attributes.
  if (cond.lhs.path.trivial() && cond.rhs.path.trivial()) return false;
  return !(cond.lhs.path.head.var == cond.rhs.path.head.var);
}

QueryPlan Planner::Plan(const Query& query, const RangeMap* ranges) const {
  QueryPlan plan;
  if (query.where != nullptr && ContainsUpdate(*query.where)) {
    plan.allow_reorder = false;
    plan.decisions.push_back(
        "order kept: nested UPDATE pins declaration order (§5)");
    return plan;
  }

  std::vector<const Condition*> conjuncts;
  if (query.where != nullptr) FlattenAnd(*query.where, &conjuncts);

  // FROM-declared variables over constant classes, for index anchoring
  // and hash-join eligibility.
  std::map<Variable, size_t> from_of_var;
  for (size_t i = 0; i < query.from.size(); ++i) {
    if (query.from[i].cls.is_const()) from_of_var[query.from[i].var] = i;
  }

  // Estimated candidate cardinality per FROM entry: the class extent,
  // refined to the Theorem 6.1(2) candidate set when a range witness
  // narrows it.
  const size_t kUnknown = std::numeric_limits<size_t>::max();
  plan.from_card.assign(query.from.size(), kUnknown);
  for (size_t i = 0; i < query.from.size(); ++i) {
    const FromEntry& entry = query.from[i];
    if (!entry.cls.is_const()) continue;  // class variable: unknown
    size_t card = db_.Extent(entry.cls.value).size();
    if (ranges != nullptr) {
      auto it = ranges->find(entry.var);
      if (it != ranges->end()) {
        card = std::min(card, it->second.CandidateOids(db_).size());
      }
    }
    plan.from_card[i] = card;
  }

  plan.conjunct_rank.assign(conjuncts.size(), kRankComparison);
  plan.hash_joinable.assign(conjuncts.size(), false);
  for (size_t i = 0; i < conjuncts.size(); ++i) {
    const Condition& cond = *conjuncts[i];
    int rank = kRankComparison;
    switch (cond.kind) {
      case Condition::Kind::kStandalonePath: {
        const PathExpr& path = cond.path;
        const bool has_selector = !path.steps.empty() &&
                                  path.steps.back().selector.has_value();
        rank = has_selector ? kRankSelectorPath : kRankGeneratorPath;
        std::vector<Oid> attrs = IndexableAttrs(path);
        if (!attrs.empty() && indexes_ != nullptr) {
          auto it = from_of_var.find(path.head.var);
          if (it != from_of_var.end()) {
            const FromEntry& entry = query.from[it->second];
            const PathIndex* index =
                indexes_->Find(db_, entry.cls.value, attrs);
            if (index != nullptr) {
              rank = kRankIndexProbe;
              // Index selectivity also refines the head's cardinality:
              // one probe yields entries/distinct heads on average.
              const size_t avg =
                  index->entries() /
                  std::max<size_t>(1, index->distinct_values());
              plan.from_card[it->second] =
                  std::min(plan.from_card[it->second], std::max<size_t>(1, avg));
              plan.decisions.push_back(
                  "index " + index->Key() + " serves p" + std::to_string(i) +
                  " (" + std::to_string(index->distinct_values()) +
                  " values, " + std::to_string(index->entries()) +
                  " entries)");
            }
          }
        }
        break;
      }
      case Condition::Kind::kComparison: {
        if (HashJoinableShape(cond) &&
            from_of_var.count(cond.lhs.path.head.var) != 0 &&
            from_of_var.count(cond.rhs.path.head.var) != 0) {
          rank = kRankHashJoin;
          plan.hash_joinable[i] = true;
          plan.decisions.push_back(
              "hash join p" + std::to_string(i) + ": " +
              cond.lhs.path.head.var.ToString() + " with " +
              cond.rhs.path.head.var.ToString() + " on shared terminal values");
        } else if (SideIsGround(cond.lhs) || SideIsGround(cond.rhs)) {
          rank = kRankConstComparison;
        } else {
          rank = kRankComparison;
        }
        break;
      }
      case Condition::Kind::kSetComparison:
        rank = kRankComparison;
        break;
      case Condition::Kind::kSubclassOf:
      case Condition::Kind::kApplicable:
        rank = kRankSchema;
        break;
      case Condition::Kind::kNot:
        rank = kRankNot;
        break;
      case Condition::Kind::kOr:
        rank = kRankOr;
        break;
      case Condition::Kind::kUpdate:
        rank = kRankUpdate;  // unreachable: ContainsUpdate returned above
        break;
      case Condition::Kind::kAnd:
        rank = kRankComparison;  // FlattenAnd leaves no kAnd at top level
        break;
    }
    plan.conjunct_rank[i] = rank;
  }

  // Enumeration order: smallest candidate set first (stable, so equal
  // estimates keep declaration order).
  plan.from_order.resize(query.from.size());
  std::iota(plan.from_order.begin(), plan.from_order.end(), 0);
  std::stable_sort(plan.from_order.begin(), plan.from_order.end(),
                   [&](size_t a, size_t b) {
                     return plan.from_card[a] < plan.from_card[b];
                   });
  if (query.from.size() > 1) {
    std::string order = "order:";
    for (size_t idx : plan.from_order) {
      order += " " + query.from[idx].var.ToString() + "(" +
               CardToString(plan.from_card[idx]) + ")";
    }
    plan.decisions.push_back(order);
  }
  return plan;
}

}  // namespace xsql
