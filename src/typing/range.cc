#include "typing/range.h"

#include "store/catalog.h"

namespace xsql {

VarRange::VarRange() { classes_.push_back(builtin::Object()); }

void VarRange::Add(const Oid& cls) {
  for (const Oid& have : classes_) {
    if (have == cls) return;
  }
  classes_.push_back(cls);
}

bool VarRange::Within(const Database& db, const Oid& oid) const {
  for (const Oid& cls : classes_) {
    if (!db.IsInstanceOf(oid, cls)) return false;
  }
  return true;
}

bool VarRange::Empty(const ClassGraph& graph) const {
  return !graph.HaveCommonSubclass(classes_);
}

bool VarRange::SubrangeOf(const ClassGraph& graph, const Oid& cls) const {
  return graph.IsSubrange(classes_, cls);
}

OidSet VarRange::CandidateOids(const Database& db) const {
  bool first = true;
  OidSet out;
  for (const Oid& cls : classes_) {
    OidSet extent = db.Extent(cls);
    if (first) {
      out = std::move(extent);
      first = false;
    } else {
      out = OidSet::Intersect(out, extent);
    }
  }
  return out;
}

std::string VarRange::ToString() const {
  std::string out = "{";
  for (size_t i = 0; i < classes_.size(); ++i) {
    if (i > 0) out += ", ";
    out += classes_[i].ToString();
  }
  out += "}";
  return out;
}

}  // namespace xsql
