#include "typing/type_expr.h"

namespace xsql {

TypeExpr TypeExpr::FromSignature(const Oid& cls, const Signature& sig) {
  TypeExpr t;
  t.receiver = cls;
  t.args = sig.args;
  t.result = sig.result;
  t.set_valued = sig.set_valued;
  return t;
}

std::string TypeExpr::ToString() const {
  std::string out = receiver.ToString();
  for (const Oid& a : args) {
    out += ",";
    out += a.ToString();
  }
  out += set_valued ? " =>> " : " => ";
  out += result.ToString();
  return out;
}

bool IsSupertypeOf(const ClassGraph& graph, const TypeExpr& sup,
                   const TypeExpr& sub) {
  if (sup.set_valued != sub.set_valued) return false;
  if (sup.args.size() != sub.args.size()) return false;
  if (!graph.IsSubclassEq(sup.receiver, sub.receiver)) return false;
  for (size_t i = 0; i < sup.args.size(); ++i) {
    if (!graph.IsSubclassEq(sup.args[i], sub.args[i])) return false;
  }
  return graph.IsSubclassEq(sub.result, sup.result);
}

bool Possesses(const Database& db, const Oid& method, const TypeExpr& type) {
  for (const auto& [cls, sig] : db.signatures().AllFor(method)) {
    if (IsSupertypeOf(db.graph(), type, TypeExpr::FromSignature(cls, sig))) {
      return true;
    }
  }
  return false;
}

std::vector<TypeExpr> DeclaredTypeExprs(const Database& db,
                                        const Oid& method) {
  std::vector<TypeExpr> out;
  for (const auto& [cls, sig] : db.signatures().AllFor(method)) {
    TypeExpr t = TypeExpr::FromSignature(cls, sig);
    bool dup = false;
    for (const TypeExpr& have : out) {
      if (have == t) {
        dup = true;
        break;
      }
    }
    if (!dup) out.push_back(std::move(t));
  }
  return out;
}

}  // namespace xsql
