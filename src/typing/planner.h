#ifndef XSQL_TYPING_PLANNER_H_
#define XSQL_TYPING_PLANNER_H_

#include <cstddef>
#include <string>
#include <vector>

#include "ast/ast.h"
#include "store/database.h"
#include "store/index.h"
#include "typing/range.h"

namespace xsql {

/// The product of cost-based planning for one simple query: how to
/// order the FROM extents, how to rank the top-level WHERE conjuncts,
/// and which conjuncts can run as hash joins. Slots index into
/// `FlattenAnd(*query.where)` and `query.from` respectively; the
/// evaluator validates both sizes against the query it is running and
/// falls back to the greedy ready-first order on any mismatch, so a
/// plan can never be *applied* to the wrong query.
struct QueryPlan {
  /// FROM-entry indices, smallest estimated candidate set first.
  std::vector<size_t> from_order;
  /// Estimated candidate cardinality per FROM entry, declaration order.
  /// SIZE_MAX marks "unknown" (class-variable FROM entries).
  std::vector<size_t> from_card;
  /// Cost rank per top-level conjunct: among simultaneously-ready
  /// conjuncts the lowest rank runs first.
  std::vector<int> conjunct_rank;
  /// Conjuncts evaluable as variable-variable equality hash joins
  /// (both head variables FROM-declared over constant classes).
  std::vector<bool> hash_joinable;
  /// False when §5 semantics pin declaration order: a nested UPDATE
  /// anywhere in the condition relies on left-to-right evaluation, so
  /// the evaluator must ignore the plan entirely.
  bool allow_reorder = true;
  /// Human-readable decisions for EXPLAIN / EXPLAIN ANALYZE.
  std::vector<std::string> decisions;
};

/// Selectivity-driven planner: turns the Theorem 6.1(2) range witness
/// and the [BERT89] path-index statistics into (a) an enumeration order
/// over the FROM extents, (b) a cost rank over WHERE conjuncts, and
/// (c) hash-join markings for variable-variable equality conjuncts.
/// Planning is advisory — every decision only reorders or re-implements
/// work the evaluator would do anyway, never changes the §3.4 answer.
class Planner {
 public:
  explicit Planner(const Database& db, const PathIndexSet* indexes = nullptr)
      : db_(db), indexes_(indexes) {}

  /// Plans a simple query. `ranges` (from a strict-typing witness)
  /// refines raw extent sizes to Theorem 6.1(2) candidate-set sizes;
  /// null plans from extents alone.
  QueryPlan Plan(const Query& query, const RangeMap* ranges = nullptr) const;

  /// True when `cond` has the shape a hash join can serve: an equality
  /// `P1 =... P2` with no kAll quantifier, both sides plain path
  /// expressions whose only variable is the (distinct) head variable.
  /// kAll is excluded because an empty side satisfies it vacuously,
  /// which the shared-terminal-value filter cannot see.
  static bool HashJoinableShape(const Condition& cond);

 private:
  const Database& db_;
  const PathIndexSet* indexes_;
};

}  // namespace xsql

#endif  // XSQL_TYPING_PLANNER_H_
