#include "typing/type_checker.h"

#include <functional>

#include "store/catalog.h"

namespace xsql {

namespace {

// ---------------------------------------------------------------------
// Normalization
// ---------------------------------------------------------------------

class Normalizer {
 public:
  NormalizedQuery Run(const Query& query) {
    for (const FromEntry& entry : query.from) {
      if (entry.cls.is_const()) {
        out_.from_types.emplace_back(entry.var, entry.cls.value);
      } else {
        Fail("class-variable FROM entry");
      }
    }
    for (const SelectItem& item : query.select) {
      switch (item.kind) {
        case SelectItem::Kind::kExpr:
          HandleValueSide(item.expr, /*from_select=*/true);
          break;
        case SelectItem::Kind::kSetOfVar:
          break;
        case SelectItem::Kind::kMethodHead:
          HandleValueSide(item.expr, /*from_select=*/true);
          break;
      }
    }
    if (query.where != nullptr) HandleCondition(*query.where);
    return std::move(out_);
  }

 private:
  void Fail(const std::string& reason) {
    if (out_.fragment_ok) {
      out_.fragment_ok = false;
      out_.fragment_reason = reason;
    }
  }

  IdTerm FreshVar() {
    return IdTerm::Var(
        Variable{"_t" + std::to_string(fresh_++), VarSort::kIndividual});
  }

  /// Adds the path to the normalized set; returns the id-term denoting
  /// its end (the final selector, inserted fresh when absent), or
  /// nullopt when the path is outside the fragment.
  std::optional<IdTerm> AddPath(const PathExpr& path, bool from_select) {
    if (path.head.kind == IdTerm::Kind::kApply) {
      Fail("id-term head selector");
      return std::nullopt;
    }
    if (path.trivial()) return path.head;
    NormalizedPath np;
    np.head = path.head;
    np.from_select = from_select;
    for (const PathStep& step : path.steps) {
      if (step.kind == PathStep::Kind::kPathVar) {
        Fail("path variable");
        return std::nullopt;
      }
      if (step.method.name_is_var) {
        Fail("method variable in method position");
        return std::nullopt;
      }
      NormalizedStep ns;
      ns.method = step.method.name;
      for (const IdTerm& arg : step.method.args) {
        if (arg.kind == IdTerm::Kind::kApply) {
          Fail("id-term method argument");
          return std::nullopt;
        }
        ns.args.push_back(arg);
      }
      if (step.selector.has_value()) {
        if (step.selector->kind == IdTerm::Kind::kApply) {
          Fail("id-term selector");
          return std::nullopt;
        }
        ns.selector = *step.selector;
      } else {
        ns.selector = FreshVar();
      }
      np.steps.push_back(std::move(ns));
    }
    IdTerm end = np.steps.back().selector;
    out_.paths.push_back(std::move(np));
    return end;
  }

  NormalizedComparison::Side HandleValueSide(const ValueExpr& expr,
                                             bool from_select = false) {
    NormalizedComparison::Side side;
    switch (expr.kind) {
      case ValueExpr::Kind::kPath: {
        std::optional<IdTerm> end = AddPath(expr.path, from_select);
        if (end.has_value()) {
          if (end->is_const()) {
            side.constant = end->value;
          } else if (end->is_var() &&
                     end->var.sort == VarSort::kIndividual) {
            side.var = end->var;
          }
        }
        break;
      }
      case ValueExpr::Kind::kAggregate:
        AddPath(expr.path, from_select);
        side.numeric_expr = true;
        break;
      case ValueExpr::Kind::kArith:
        if (expr.lhs) HandleValueSide(*expr.lhs, from_select);
        if (expr.rhs) HandleValueSide(*expr.rhs, from_select);
        side.numeric_expr = true;
        break;
      case ValueExpr::Kind::kSubquery:
        // Subqueries are typed on their own (§6.2 assumes them away);
        // the outer comparison treats the side as opaque.
        side.numeric_expr = true;
        break;
      case ValueExpr::Kind::kSetLiteral:
        for (const ValueExpr& e : expr.set_elems) {
          HandleValueSide(e, from_select);
        }
        break;
    }
    return side;
  }

  void HandleCondition(const Condition& cond) {
    switch (cond.kind) {
      case Condition::Kind::kAnd:
        for (const auto& child : cond.children) HandleCondition(*child);
        break;
      case Condition::Kind::kOr:
        Fail("disjunction in WHERE (typed fragment is conjunctive)");
        break;
      case Condition::Kind::kNot:
        Fail("negation in WHERE (typed fragment is conjunctive)");
        break;
      case Condition::Kind::kComparison: {
        NormalizedComparison nc;
        nc.op = cond.comp_op;
        nc.lhs = HandleValueSide(cond.lhs);
        nc.rhs = HandleValueSide(cond.rhs);
        out_.comparisons.push_back(std::move(nc));
        break;
      }
      case Condition::Kind::kSetComparison:
        HandleValueSide(cond.lhs);
        HandleValueSide(cond.rhs);
        break;
      case Condition::Kind::kStandalonePath:
        AddPath(cond.path, /*from_select=*/false);
        break;
      case Condition::Kind::kSubclassOf:
      case Condition::Kind::kApplicable:
        break;  // schema-level, no data typing
      case Condition::Kind::kUpdate:
        Fail("nested UPDATE in typed fragment");
        break;
    }
  }

  NormalizedQuery out_;
  int fresh_ = 0;
};

// ---------------------------------------------------------------------
// Assignment search
// ---------------------------------------------------------------------

/// The id-term playing the receiver role of step `i` of `path`: the head
/// for the first step, otherwise the previous step's selector.
const IdTerm& ReceiverTerm(const NormalizedPath& path, size_t step) {
  return step == 0 ? path.head : path.steps[step - 1].selector;
}

bool IsIndividualVar(const IdTerm& term) {
  return term.is_var() && term.var.sort == VarSort::kIndividual;
}

class CheckerImpl {
 public:
  CheckerImpl(const Database& db, const NormalizedQuery& nq, TypingMode mode,
              const ExemptionSet& exemptions, size_t witness_limit)
      : db_(db),
        nq_(nq),
        mode_(mode),
        exemptions_(exemptions),
        witness_limit_(witness_limit) {
    for (size_t p = 0; p < nq_.paths.size(); ++p) {
      if (!nq_.paths[p].from_select) where_paths_.push_back(p);
      for (size_t s = 0; s < nq_.paths[p].steps.size(); ++s) {
        occurrences_.emplace_back(p, s);
      }
    }
  }

  /// Runs the search; returns collected witnesses (at least one element,
  /// possibly a failure explanation, when none found).
  std::vector<TypingResult> Run() {
    // Candidate type expressions per occurrence.
    candidates_.resize(occurrences_.size());
    for (size_t i = 0; i < occurrences_.size(); ++i) {
      const auto& [p, s] = occurrences_[i];
      const NormalizedStep& step = nq_.paths[p].steps[s];
      for (TypeExpr& t : DeclaredTypeExprs(db_, step.method)) {
        if (t.arity() == step.args.size()) {
          candidates_[i].push_back(std::move(t));
        }
      }
      if (candidates_[i].empty()) {
        TypingResult fail;
        fail.well_typed = false;
        fail.explanation = "no signature declared for method " +
                           step.method.ToString() + "/" +
                           std::to_string(step.args.size());
        return {std::move(fail)};
      }
    }
    chosen_.resize(occurrences_.size());
    Assign(0);
    if (witnesses_.empty()) {
      TypingResult fail;
      fail.well_typed = false;
      fail.explanation = failure_.empty()
                             ? "no valid and complete type assignment"
                             : failure_;
      return {std::move(fail)};
    }
    return std::move(witnesses_);
  }

 private:
  void Assign(size_t index) {
    if (witnesses_.size() >= witness_limit_) return;
    if (index == occurrences_.size()) {
      CheckComplete();
      return;
    }
    const auto& [p, s] = occurrences_[index];
    for (const TypeExpr& t : candidates_[index]) {
      if (!LocallyValid(nq_.paths[p], s, t)) continue;
      chosen_[index] = &t;
      Assign(index + 1);
      if (witnesses_.size() >= witness_limit_) return;
    }
  }

  /// Constant-instance validity checks for one occurrence (§6.2 validity
  /// clauses 2 and 3 plus the result side for constant selectors).
  bool LocallyValid(const NormalizedPath& path, size_t s,
                    const TypeExpr& t) const {
    const IdTerm& receiver = ReceiverTerm(path, s);
    if (receiver.is_const() && !db_.IsInstanceOf(receiver.value, t.receiver)) {
      return false;
    }
    const NormalizedStep& step = path.steps[s];
    for (size_t j = 0; j < step.args.size(); ++j) {
      if (step.args[j].is_const() &&
          !db_.IsInstanceOf(step.args[j].value, t.args[j])) {
        return false;
      }
    }
    if (step.selector.is_const() &&
        !db_.IsInstanceOf(step.selector.value, t.result)) {
      return false;
    }
    return true;
  }

  const TypeExpr& ChosenFor(size_t p, size_t s) const {
    for (size_t i = 0; i < occurrences_.size(); ++i) {
      if (occurrences_[i].first == p && occurrences_[i].second == s) {
        return *chosen_[i];
      }
    }
    static const TypeExpr kDummy;
    return kDummy;
  }

  /// Folds the forced type constraints of one assigned occurrence into
  /// `ranges` (§6.2 "forces type assignments to selectors and
  /// arguments").
  void AddForced(size_t p, size_t s, const TypeExpr& t,
                 RangeMap* ranges) const {
    const NormalizedPath& path = nq_.paths[p];
    const IdTerm& receiver = ReceiverTerm(path, s);
    if (IsIndividualVar(receiver)) (*ranges)[receiver.var].Add(t.receiver);
    const NormalizedStep& step = path.steps[s];
    for (size_t j = 0; j < step.args.size(); ++j) {
      if (IsIndividualVar(step.args[j])) {
        (*ranges)[step.args[j].var].Add(t.args[j]);
      }
    }
    if (IsIndividualVar(step.selector)) {
      (*ranges)[step.selector.var].Add(t.result);
    }
  }

  RangeMap BaseRanges() const {
    RangeMap ranges;
    for (const auto& [var, cls] : nq_.from_types) ranges[var].Add(cls);
    // Ensure every variable appearing in a path or comparison has an
    // entry (with at least the Object constraint).
    for (const NormalizedPath& path : nq_.paths) {
      if (IsIndividualVar(path.head)) ranges[path.head.var];
      for (const NormalizedStep& step : path.steps) {
        for (const IdTerm& arg : step.args) {
          if (IsIndividualVar(arg)) ranges[arg.var];
        }
        if (IsIndividualVar(step.selector)) ranges[step.selector.var];
      }
    }
    for (const NormalizedComparison& nc : nq_.comparisons) {
      if (nc.lhs.var.has_value()) ranges[*nc.lhs.var];
      if (nc.rhs.var.has_value()) ranges[*nc.rhs.var];
    }
    return ranges;
  }

  RangeMap FullRanges() const {
    RangeMap ranges = BaseRanges();
    for (size_t i = 0; i < occurrences_.size(); ++i) {
      AddForced(occurrences_[i].first, occurrences_[i].second, *chosen_[i],
                &ranges);
    }
    return ranges;
  }

  bool ComparisonsWellDefined(const RangeMap& ranges, std::string* why) const {
    for (const NormalizedComparison& nc : nq_.comparisons) {
      if (nc.op == CompOp::kEq || nc.op == CompOp::kNe) continue;
      for (const NormalizedComparison::Side* side : {&nc.lhs, &nc.rhs}) {
        if (side->numeric_expr) continue;
        if (side->constant.has_value()) {
          if (!side->constant->is_numeric() && !side->constant->is_string()) {
            *why = "ordered comparison with non-comparable constant " +
                   side->constant->ToString();
            return false;
          }
          continue;
        }
        if (side->var.has_value()) {
          auto it = ranges.find(*side->var);
          if (it == ranges.end()) continue;
          if (!it->second.SubrangeOf(db_.graph(), builtin::Numeral()) &&
              !it->second.SubrangeOf(db_.graph(), builtin::String())) {
            *why = "ordered comparison on variable " + side->var->name +
                   " whose range " + it->second.ToString() +
                   " is not numeric or string";
            return false;
          }
        }
      }
    }
    return true;
  }

  void CheckComplete() {
    RangeMap ranges = FullRanges();
    for (const auto& [var, range] : ranges) {
      if (range.Empty(db_.graph())) {
        failure_ = "range of " + var.ToString() + " = " + range.ToString() +
                   " is empty";
        return;
      }
    }
    std::string why;
    if (!ComparisonsWellDefined(ranges, &why)) {
      failure_ = why;
      return;
    }
    if (mode_ == TypingMode::kLiberal) {
      EmitWitness(ranges, /*plan=*/{});
      return;
    }
    // Strict: find a coherent plan over the WHERE paths.
    for (const ExecutionPlan& plan : EnumeratePlans(where_paths_.size())) {
      if (PlanCoherent(plan)) {
        ExecutionPlan as_path_indices;
        for (size_t i : plan) as_path_indices.push_back(where_paths_[i]);
        EmitWitness(ranges, as_path_indices);
        if (witnesses_.size() >= witness_limit_) return;
      }
    }
    if (failure_.empty()) {
      failure_ = "no execution plan is coherent with any valid assignment";
    }
  }

  /// §6.2 coherence: walking the plan left to right (and each path's
  /// steps left to right), every variable receiver/argument's restricted
  /// range A' must be a subrange of the type the method expects.
  bool PlanCoherent(const ExecutionPlan& plan) const {
    RangeMap restricted = BaseRanges();
    auto check_paths = [&](const std::vector<size_t>& order) {
      for (size_t p : order) {
        const NormalizedPath& path = nq_.paths[p];
        for (size_t s = 0; s < path.steps.size(); ++s) {
          const TypeExpr& t = ChosenFor(p, s);
          const NormalizedStep& step = path.steps[s];
          const IdTerm& receiver = ReceiverTerm(path, s);
          if (IsIndividualVar(receiver) &&
              !exemptions_.Exempts(step.method, 0)) {
            auto it = restricted.find(receiver.var);
            const VarRange& range =
                it == restricted.end() ? kObjectOnly() : it->second;
            if (!range.SubrangeOf(db_.graph(), t.receiver)) return false;
          }
          for (size_t j = 0; j < step.args.size(); ++j) {
            if (IsIndividualVar(step.args[j]) &&
                !exemptions_.Exempts(step.method, static_cast<int>(j) + 1)) {
              auto it = restricted.find(step.args[j].var);
              const VarRange& range =
                  it == restricted.end() ? kObjectOnly() : it->second;
              if (!range.SubrangeOf(db_.graph(), t.args[j])) return false;
            }
          }
          AddForced(p, s, t, &restricted);
        }
      }
      return true;
    };
    std::vector<size_t> where_order;
    for (size_t i : plan) where_order.push_back(where_paths_[i]);
    if (!check_paths(where_order)) return false;
    // SELECT paths evaluate after all WHERE bindings.
    std::vector<size_t> select_order;
    for (size_t p = 0; p < nq_.paths.size(); ++p) {
      if (nq_.paths[p].from_select) select_order.push_back(p);
    }
    return check_paths(select_order);
  }

  static const VarRange& kObjectOnly() {
    static const VarRange range;
    return range;
  }

  void EmitWitness(const RangeMap& ranges, ExecutionPlan plan) {
    TypingResult res;
    res.well_typed = true;
    res.in_fragment = true;
    res.ranges = ranges;
    res.plan = std::move(plan);
    res.assignment.resize(nq_.paths.size());
    for (size_t p = 0; p < nq_.paths.size(); ++p) {
      res.assignment[p].resize(nq_.paths[p].steps.size());
    }
    for (size_t i = 0; i < occurrences_.size(); ++i) {
      res.assignment[occurrences_[i].first][occurrences_[i].second] =
          *chosen_[i];
    }
    witnesses_.push_back(std::move(res));
  }

  const Database& db_;
  const NormalizedQuery& nq_;
  TypingMode mode_;
  const ExemptionSet& exemptions_;
  size_t witness_limit_;

  std::vector<std::pair<size_t, size_t>> occurrences_;
  std::vector<size_t> where_paths_;
  std::vector<std::vector<TypeExpr>> candidates_;
  std::vector<const TypeExpr*> chosen_;
  std::vector<TypingResult> witnesses_;
  std::string failure_;
};

}  // namespace

NormalizedQuery NormalizeForTyping(const Query& query) {
  if (query.where != nullptr && !IsConjunctive(*query.where)) {
    // Normalizer flags this too, but short-circuit for clarity.
  }
  Normalizer normalizer;
  return normalizer.Run(query);
}

TypingResult TypeChecker::Check(const Query& query, TypingMode mode,
                                const ExemptionSet& exemptions) const {
  NormalizedQuery nq = NormalizeForTyping(query);
  if (!nq.fragment_ok) {
    TypingResult res;
    res.in_fragment = false;
    // Outside the fragment the paper's definitions do not apply; the
    // session treats such queries as liberally typed (all exempt).
    res.well_typed = mode == TypingMode::kLiberal;
    res.explanation = nq.fragment_reason;
    for (const auto& [var, cls] : nq.from_types) res.ranges[var].Add(cls);
    return res;
  }
  CheckerImpl impl(db_, nq, mode, exemptions, /*witness_limit=*/1);
  std::vector<TypingResult> results = impl.Run();
  return std::move(results.front());
}

std::vector<TypingResult> TypeChecker::AllStrictWitnesses(
    const Query& query, size_t limit, const ExemptionSet& exemptions) const {
  NormalizedQuery nq = NormalizeForTyping(query);
  if (!nq.fragment_ok) return {};
  CheckerImpl impl(db_, nq, TypingMode::kStrict, exemptions, limit);
  std::vector<TypingResult> results = impl.Run();
  std::vector<TypingResult> witnesses;
  for (TypingResult& r : results) {
    if (r.well_typed) witnesses.push_back(std::move(r));
  }
  return witnesses;
}

}  // namespace xsql
