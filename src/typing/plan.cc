#include "typing/plan.h"

#include <algorithm>
#include <numeric>

namespace xsql {

std::vector<ExecutionPlan> EnumeratePlans(size_t n, size_t max_exhaustive) {
  std::vector<ExecutionPlan> plans;
  ExecutionPlan base(n);
  std::iota(base.begin(), base.end(), 0);
  if (n <= max_exhaustive) {
    ExecutionPlan p = base;
    do {
      plans.push_back(p);
    } while (std::next_permutation(p.begin(), p.end()));
  } else {
    plans.push_back(base);
    ExecutionPlan reversed = base;
    std::reverse(reversed.begin(), reversed.end());
    plans.push_back(std::move(reversed));
  }
  return plans;
}

std::string PlanToString(const ExecutionPlan& plan) {
  std::string out;
  for (size_t i = 0; i < plan.size(); ++i) {
    if (i > 0) out += " -> ";
    out += "p" + std::to_string(plan[i]);
  }
  return out;
}

}  // namespace xsql
