#ifndef XSQL_TYPING_TYPE_CHECKER_H_
#define XSQL_TYPING_TYPE_CHECKER_H_

#include <optional>
#include <string>
#include <vector>

#include "ast/ast.h"
#include "common/status.h"
#include "store/database.h"
#include "typing/plan.h"
#include "typing/range.h"
#include "typing/type_expr.h"

namespace xsql {

/// Exempts argument positions of a method from the strict-typing check
/// (§6.2, "well-typing with exemptions"). `arg_index` 0 is the receiver
/// (the paper's 0th argument); j >= 1 are the explicit arguments.
struct Exemption {
  Oid method;
  int arg_index = 0;
};

/// A set of exemptions. `exempt_all` recovers liberal well-typing
/// exactly as the paper notes ("the liberal notion exempts all arguments
/// while the conservative exempts none").
struct ExemptionSet {
  std::vector<Exemption> items;
  bool exempt_all = false;

  bool Exempts(const Oid& method, int arg_index) const {
    if (exempt_all) return true;
    for (const Exemption& e : items) {
      if (e.method == method && e.arg_index == arg_index) return true;
    }
    return false;
  }
};

/// Which notion of well-typing to check (§6.2).
enum class TypingMode {
  kLiberal,  // exists a valid & complete assignment with non-empty ranges
  kStrict,   // additionally a coherent execution plan must exist
};

/// A normalized path expression for typing: every selector present
/// (fresh variables inserted), method names constant, arguments and
/// selectors reduced to id-terms.
struct NormalizedStep {
  Oid method;
  std::vector<IdTerm> args;
  IdTerm selector;
};
struct NormalizedPath {
  IdTerm head;
  std::vector<NormalizedStep> steps;
  bool from_select = false;  // SELECT-clause paths evaluate after WHERE
};

/// A comparison reduced to the shape the §6.2 validity test needs: each
/// side is an oid constant, a variable (the path's end selector), or a
/// numeral-producing computation (aggregate/arithmetic).
struct NormalizedComparison {
  CompOp op = CompOp::kEq;
  struct Side {
    std::optional<Oid> constant;
    std::optional<Variable> var;
    bool numeric_expr = false;  // aggregate or arithmetic result
  };
  Side lhs, rhs;
};

/// The query's content restated for the typing algorithm.
struct NormalizedQuery {
  std::vector<NormalizedPath> paths;
  std::vector<std::pair<Variable, Oid>> from_types;
  std::vector<NormalizedComparison> comparisons;
  bool fragment_ok = true;     // within the §6.2 typed fragment
  std::string fragment_reason;
};

/// Restates `query` for typing. Queries outside the paper's typed
/// fragment (disjunction/negation, method or path variables in method
/// position, id-term selectors, class-variable FROM entries) come back
/// with `fragment_ok == false`; the paper simply assumes them away, and
/// the session treats them as liberally typed.
NormalizedQuery NormalizeForTyping(const Query& query);

/// Outcome of a typing check, with the witnesses Theorem 6.1 needs.
struct TypingResult {
  bool well_typed = false;
  bool in_fragment = true;
  std::string explanation;
  /// Witness type assignment: per path, per step.
  std::vector<std::vector<TypeExpr>> assignment;
  /// Witness coherent plan (strict mode; WHERE paths only).
  ExecutionPlan plan;
  /// Ranges A(X) under the witness assignment — Theorem 6.1(2) allows
  /// the evaluator to restrict each v-selector to oids within its range.
  RangeMap ranges;
};

/// Checks well-typing of queries (§6.2). Type-correctness is metalogical
/// (does not change query semantics); the evaluator can run ill-typed
/// queries, but a strict witness enables range pruning.
class TypeChecker {
 public:
  explicit TypeChecker(const Database& db) : db_(db) {}

  TypingResult Check(const Query& query, TypingMode mode,
                     const ExemptionSet& exemptions = {}) const;

  /// Enumerates *all* (assignment, plan) witnesses of strict typing, up
  /// to `limit` — Theorem 6.1(1) states any of them evaluates to the
  /// same answer; property tests exercise exactly that.
  std::vector<TypingResult> AllStrictWitnesses(const Query& query,
                                               size_t limit,
                                               const ExemptionSet& exemptions =
                                                   {}) const;

 private:
  const Database& db_;
};

}  // namespace xsql

#endif  // XSQL_TYPING_TYPE_CHECKER_H_
