#include "server/concurrency.h"

#include <chrono>
#include <optional>
#include <unordered_set>
#include <utility>
#include <vector>

#include "eval/evaluator.h"
#include "obs/metrics.h"
#include "obs/status.h"
#include "parser/lexer.h"
#include "server/replication.h"
#include "store/method.h"

namespace xsql {
namespace server {

namespace {

/// Latch waits poll in short slices so a parked statement notices its
/// deadline and cancel token about as fast as a running one would.
constexpr std::chrono::milliseconds kWaitSlice(10);

using Clock = std::chrono::steady_clock;

Status CheckWaitGuards(const std::optional<Clock::time_point>& deadline,
                       const std::shared_ptr<CancelToken>& cancel) {
  if (cancel != nullptr && cancel->cancelled()) {
    return Status::Cancelled(
        "statement cancelled while waiting for the statement latch "
        "(guard: latch-wait)");
  }
  if (deadline.has_value() && Clock::now() >= *deadline) {
    return Status::ResourceExhausted(
        "deadline exceeded while waiting for the statement latch "
        "(guard: latch-wait)");
  }
  return Status::OK();
}

std::optional<Clock::time_point> DeadlineFrom(const ExecLimits& limits) {
  if (limits.deadline_ms == 0) return std::nullopt;
  return Clock::now() + std::chrono::milliseconds(limits.deadline_ms);
}

/// How long a statement sat parked before taking the latch — the
/// writer-writer contention signal to watch on a loaded server (reads
/// no longer take any latch).
void RecordLatchWait(Clock::time_point entered) {
  static obs::Histogram& wait_us =
      obs::MetricsRegistry::Global().GetHistogram(
          "xsql.server.latch_wait_us");
  wait_us.Observe(static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            entered)
          .count()));
}

/// Scoped census of statements currently holding a snapshot pin.
class PinnedSnapshotScope {
 public:
  PinnedSnapshotScope() { Gauge().Add(1); }
  ~PinnedSnapshotScope() { Gauge().Add(-1); }
  PinnedSnapshotScope(const PinnedSnapshotScope&) = delete;
  PinnedSnapshotScope& operator=(const PinnedSnapshotScope&) = delete;

 private:
  static obs::Gauge& Gauge() {
    static obs::Gauge& g = obs::MetricsRegistry::Global().GetGauge(
        "xsql.mvcc.pinned_snapshots");
    return g;
  }
};

}  // namespace

Status StatementLatch::AcquireShared(
    const ExecLimits& limits, const std::shared_ptr<CancelToken>& cancel) {
  const Clock::time_point entered = Clock::now();
  const std::optional<Clock::time_point> deadline = DeadlineFrom(limits);
  std::unique_lock<std::mutex> lock(mu_);
  // Writer preference: queue behind waiting writers, not just the
  // holder, so a read-heavy load cannot starve mutations.
  while (writer_ || writers_waiting_ > 0) {
    XSQL_RETURN_IF_ERROR(CheckWaitGuards(deadline, cancel));
    cv_.wait_for(lock, kWaitSlice);
  }
  ++readers_;
  shared_acquires_.fetch_add(1, std::memory_order_relaxed);
  RecordLatchWait(entered);
  return Status::OK();
}

void StatementLatch::ReleaseShared() {
  std::lock_guard<std::mutex> lock(mu_);
  if (--readers_ == 0) cv_.notify_all();
}

Status StatementLatch::AcquireExclusive(
    const ExecLimits& limits, const std::shared_ptr<CancelToken>& cancel) {
  const Clock::time_point entered = Clock::now();
  const std::optional<Clock::time_point> deadline = DeadlineFrom(limits);
  std::unique_lock<std::mutex> lock(mu_);
  ++writers_waiting_;
  while (writer_ || readers_ > 0) {
    Status st = CheckWaitGuards(deadline, cancel);
    if (!st.ok()) {
      // Readers may be parked solely on our writers_waiting_ claim.
      if (--writers_waiting_ == 0) cv_.notify_all();
      return st;
    }
    cv_.wait_for(lock, kWaitSlice);
  }
  --writers_waiting_;
  writer_ = true;
  exclusive_acquires_.fetch_add(1, std::memory_order_relaxed);
  RecordLatchWait(entered);
  return Status::OK();
}

void StatementLatch::ReleaseExclusive() {
  std::lock_guard<std::mutex> lock(mu_);
  writer_ = false;
  cv_.notify_all();
}

StatementMode ClassifyMode(const std::string& text,
                           const storage::StatementClass& cls,
                           const Database& db, const ViewManager& views) {
  if (!cls.parse_ok) return StatementMode::kWrite;
  if (cls.is_mutation_kind || cls.creates_objects) {
    return StatementMode::kWrite;
  }
  if (cls.is_explain_analyze) {
    // Executes for real and rolls back — all scratch, no shared writes.
    return StatementMode::kPrivateRead;
  }
  // Mention check: lazy-mutation trapdoors. Applied to plain queries
  // AND to EXPLAIN (its range analysis walks the same catalogs).
  Result<std::vector<Token>> tokens = Lex(text);
  if (!tokens.ok()) {
    return StatementMode::kWrite;  // unlexable yet resolvable:
                                   // impossible, but stay conservative
  }
  std::unordered_set<std::string> idents;
  for (const Token& t : *tokens) {
    if (t.type == TokenType::kIdent) idents.insert(t.text);
  }
  for (const std::string& name : views.ViewNames()) {
    if (idents.count(name) == 0) continue;
    // A fresh materialization makes reading the view a pure read; a
    // stale or absent one means evaluation re-materializes — into the
    // reader's private fork, not the shared snapshot.
    if (!views.IsMaterializedFresh(name)) return StatementMode::kPrivateRead;
  }
  for (const auto& entry : db.methods().AllDefinitions()) {
    if (idents.count(entry.method.str()) == 0) continue;
    std::shared_ptr<const MethodBody> body =
        db.methods().Definition(entry.cls, entry.method, entry.arity);
    if (body != nullptr && body->kind() == "query") {
      // Invoking a query-defined method can evaluate an OID clause and
      // mint result objects — scratch state for a read.
      return StatementMode::kPrivateRead;
    }
  }
  return StatementMode::kSharedRead;
}

ConcurrencyManager::ConcurrencyManager(storage::DurableDatabase* dd,
                                       Options options)
    : dd_(dd), options_(options), committer_(dd->wal()) {
  // Single-threaded here; a warm cache keeps snapshots born clean (their
  // mutable lazy members never rebuilt by parallel readers).
  PrewarmActiveDomain();
  // Install the recovered state as version 1: readers have a snapshot
  // to pin before the first commit.
  chain_.Install(ForkVersionLocked());
  PublishStatus();
}

Result<uint64_t> ConcurrencyManager::CreateSession(SessionOptions options) {
  const ExecLimits limits = options.limits;
  const std::shared_ptr<CancelToken> cancel = options.cancel;
  // Exclusive: the Session constructor probes (and on the very first
  // session installs) the introspection methods in the master database,
  // and construction must not interleave with a mutation's fork point.
  XSQL_RETURN_IF_ERROR(latch_.AcquireExclusive(limits, cancel));
  // Connections share one view catalog AND one prepared-plan cache: a
  // statement prepared by any connection is a parse+typecheck saved on
  // every other. The cache takes its own mutex and checks
  // Database::version() at lookup, so snapshot readers at older
  // versions can never be served a newer preparation (nor vice versa).
  auto session = std::make_unique<Session>(&dd_->db(), std::move(options),
                                           &dd_->session().views(),
                                           &dd_->session().plan_cache());
  PrewarmActiveDomain();
  latch_.ReleaseExclusive();

  std::lock_guard<std::mutex> lock(sessions_mu_);
  const uint64_t id = ++next_session_id_;
  sessions_[id] = std::move(session);
  static obs::Gauge& gauge =
      obs::MetricsRegistry::Global().GetGauge("xsql.server.open_sessions");
  gauge.Set(static_cast<int64_t>(sessions_.size()));
  return id;
}

void ConcurrencyManager::CloseSession(uint64_t id) {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  sessions_.erase(id);
  static obs::Gauge& gauge =
      obs::MetricsRegistry::Global().GetGauge("xsql.server.open_sessions");
  gauge.Set(static_cast<int64_t>(sessions_.size()));
}

Session* ConcurrencyManager::session(uint64_t id) {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : it->second.get();
}

uint64_t ConcurrencyManager::open_sessions() const {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  return sessions_.size();
}

Result<EvalOutput> ConcurrencyManager::Execute(uint64_t session_id,
                                               const std::string& text) {
  Session* session = this->session(session_id);
  if (session == nullptr) {
    return Status::InvalidArgument("unknown session id " +
                                   std::to_string(session_id));
  }
  bool committed = false;
  return ExecuteInternal(session, text, nullptr, &committed, nullptr);
}

Result<std::string> ConcurrencyManager::ExecuteIdempotent(
    uint64_t session_id, const storage::RequestId& rid,
    const std::string& text) {
  static obs::Counter& dedup_hits = obs::MetricsRegistry::Global()
      .GetCounter("xsql.server.dedup_hits");
  static obs::Counter& dedup_stale = obs::MetricsRegistry::Global()
      .GetCounter("xsql.server.dedup_stale");
  static obs::Counter& dedup_expired = obs::MetricsRegistry::Global()
      .GetCounter("xsql.server.dedup_expired");
  Session* session = this->session(session_id);
  if (session == nullptr) {
    return Status::InvalidArgument("unknown session id " +
                                   std::to_string(session_id));
  }
  const ExecLimits limits = session->options().limits;
  const std::shared_ptr<CancelToken> cancel = session->options().cancel;

  std::string cached;
  switch (dd_->dedup().Claim(rid, limits, cancel, &cached)) {
    case storage::DedupTable::ClaimResult::kCached:
      dedup_hits.Inc();
      return cached;
    case storage::DedupTable::ClaimResult::kExpired:
      // Committed, but the cached reply was evicted under the table's
      // memory bounds. A final error, never a re-execution — the
      // mutation is already applied.
      dedup_expired.Inc();
      return Status::InvalidArgument(
          "request " + rid.ToString() +
          " committed but its cached reply expired; issue a new "
          "statement to observe the current state");
    case storage::DedupTable::ClaimResult::kStale:
      dedup_stale.Inc();
      return Status::InvalidArgument(
          "stale request id " + rid.ToString() +
          ": a later statement from this client already committed");
    case storage::DedupTable::ClaimResult::kTimeout:
      return Status::ResourceExhausted(
          "deadline exceeded waiting for an in-flight duplicate "
          "(guard: dedup-wait)");
    case storage::DedupTable::ClaimResult::kExecute:
      break;  // claimed — every path below must Complete or Abandon
  }

  bool committed = false;
  std::string reply;
  Result<EvalOutput> out =
      ExecuteInternal(session, text, &rid, &committed, &reply);
  if (!out.ok()) {
    // Nothing durable happened under this rid (a failed commit wedges
    // the database *without* an entry, so a post-recovery retry
    // re-executes — the statement was never acknowledgeable).
    dd_->dedup().Abandon(rid);
    return out.status();
  }
  if (committed) {
    // ExecuteInternal already recorded the reply in the dedup table
    // (Complete released the claim), ordered before any checkpoint
    // could serialize the table without it.
    return reply;
  }
  // Read-only or diagnostic: re-executing a retry is safe (and the
  // table only tracks statements whose effects must not repeat).
  dd_->dedup().Abandon(rid);
  return RenderEvalOutput(*out);
}

Result<EvalOutput> ConcurrencyManager::ExecuteInternal(
    Session* session, const std::string& text,
    const storage::RequestId* rid, bool* committed, std::string* reply) {
  static obs::Counter& reads = obs::MetricsRegistry::Global().GetCounter(
      "xsql.server.read_statements");
  static obs::Counter& writes = obs::MetricsRegistry::Global().GetCounter(
      "xsql.server.write_statements");
  static obs::Counter& snapshot_reads =
      obs::MetricsRegistry::Global().GetCounter("xsql.mvcc.snapshot_reads");
  static obs::Counter& private_forks = obs::MetricsRegistry::Global()
      .GetCounter("xsql.mvcc.private_read_forks");
  *committed = false;
  const ExecLimits limits = session->options().limits;
  const std::shared_ptr<CancelToken> cancel = session->options().cancel;
  statements_.fetch_add(1, std::memory_order_relaxed);

  if (dd_->wedged()) {  // atomic — no latch needed
    // Final, not kUnavailable: a wedged instance needs an operator to
    // reopen the directory — a retrying client cannot wait it out.
    return Status::RuntimeError(
        "durable database crashed; reopen the directory to recover");
  }

  // Pin the current head version and classify against it — no latch,
  // regardless of what concurrent writers are doing. The pin keeps the
  // whole version (database + view catalog) alive for the duration of
  // this statement; releasing the last pin frees superseded versions.
  std::shared_ptr<const storage::DatabaseVersion> snap = chain_.Head();
  const storage::StatementClass cls =
      storage::ClassifyStatement(text, *snap->db);
  const StatementMode mode = ClassifyMode(text, cls, *snap->db, *snap->views);

  if (mode == StatementMode::kSharedRead) {
    // Latch-free snapshot read: a throwaway per-statement Session over
    // the pinned (immutable) version, carrying the connection's
    // guardrails and sharing the server-wide plan cache. Per-statement
    // construction is cheap (the introspection probe is read-only) and
    // guarantees an idle connection never pins an old version.
    PinnedSnapshotScope pinned;
    Session reader(snap->db.get(), session->options(), snap->views.get(),
                   &dd_->session().plan_cache());
    Result<EvalOutput> out = reader.ExecuteReadOnly(text);
    reads.Inc();
    snapshot_reads.Inc();
    return out;
  }

  if (mode == StatementMode::kPrivateRead) {
    // The statement reads, but its evaluation writes scratch state
    // (stale-view materialization, query-method objects, EXPLAIN
    // ANALYZE's rollback). Run it on a private copy-on-write fork of
    // the snapshot: writers and other readers never see the scratch,
    // and the fork is dropped wholesale on return. The private session
    // owns a private plan cache — plans prepared post-materialization
    // would poison the shared cache at the same version number.
    PinnedSnapshotScope pinned;
    std::unique_ptr<Database> fork = snap->db->Fork();
    ViewManager fork_views(fork.get(), *snap->views);
    Session scratch(fork.get(), session->options(), &fork_views,
                    /*shared_plans=*/nullptr);
    Result<EvalOutput> out = scratch.Execute(text);
    reads.Inc();
    private_forks.Inc();
    return out;
  }

  // kWrite: exclusive latch orders mutations against each other, the
  // checkpointer, and replica apply. ExecuteForCommit enqueues the WAL
  // record under the latch (ticket order = execution order), and the
  // fork below assigns the next version sequence under the same latch —
  // version order provably equals WAL order.
  XSQL_RETURN_IF_ERROR(latch_.AcquireExclusive(limits, cancel));
  if (dd_->wedged()) {  // re-check: a commit may have failed meanwhile
    latch_.ReleaseExclusive();
    return Status::RuntimeError(
        "durable database crashed; reopen the directory to recover");
  }
  uint64_t ticket = 0;
  Result<EvalOutput> out =
      dd_->ExecuteForCommit(session, text, &committer_, &ticket, rid);
  std::shared_ptr<storage::DatabaseVersion> next;
  if (ticket != 0) next = ForkVersionLocked();
  const bool pending_rid = ticket != 0 && rid != nullptr;
  if (pending_rid) {
    // Claimed under the latch: a checkpoint that serializes the dedup
    // table after this release is obliged to wait for our recording.
    std::lock_guard<std::mutex> lock(pending_mu_);
    ++pending_rid_commits_;
  }
  PrewarmActiveDomain();
  latch_.ReleaseExclusive();
  writes.Inc();

  if (ticket == 0) return out;  // failed, diagnostic, or read-only

  // Wait for durability with the latch free — the next writer executes
  // in memory while this record's fsync is in flight, and both records
  // share one fsync when the timing lines up.
  Status durable = committer_.WaitDurable(ticket);
  auto resolve_pending = [&]() {
    if (!pending_rid) return;
    std::lock_guard<std::mutex> lock(pending_mu_);
    --pending_rid_commits_;
    pending_cv_.notify_all();
  };
  if (!durable.ok()) {
    // In-memory state now leads durable state with no way to retreat:
    // same situation as a crash, handled the same way. The prepared
    // version is dropped uninstalled — readers keep the last durable
    // snapshot.
    dd_->Wedge();
    resolve_pending();
    return durable;
  }
  *committed = true;
  // Durable: publish this statement's state to readers. A group commit
  // waking several writers at once may run these installs out of order;
  // Install drops stale sequences (an earlier state is a prefix of the
  // current head — never a regression). Installing before the dedup
  // Complete / ack below means a connection always reads its own
  // committed writes.
  chain_.Install(std::move(next));
  if (pending_rid) {
    // Durable now; the retry of this rid must never run again. The
    // entry lands before the checkpoint trigger below AND before any
    // concurrent Checkpoint() serializes the table (it waits on the
    // pending count) — otherwise a rotation could discard this
    // statement's stamped WAL record while persisting a table without
    // its entry, and a crash in that window would re-execute the retry.
    std::string rendered = RenderEvalOutput(*out);
    dd_->dedup().Complete(*rid, rendered);
    if (reply != nullptr) *reply = std::move(rendered);
  }
  resolve_pending();
  if (options_.hub != nullptr && options_.sync_replication) {
    // Semi-sync: hold the ack until every live subscriber confirmed the
    // commit's durable position. Degrading (timeout, no subscriber) is
    // deliberate policy — availability over replication guarantees —
    // but it is *counted*, so a failover test can tell "every acked
    // write was replicated" from "the guarantee lapsed".
    static obs::Counter& degraded =
        obs::MetricsRegistry::Global().GetCounter("xsql.repl.sync_degraded");
    const storage::WalPoint point = dd_->DurableWalPoint();
    if (!options_.hub->WaitReplicated(point.generation, point.records,
                                      options_.sync_replication_timeout_ms)) {
      degraded.Inc();
    }
  }
  PublishStatus();
  const uint64_t since =
      mutations_since_checkpoint_.fetch_add(1, std::memory_order_relaxed) +
      1;
  if (options_.checkpoint_every != 0 &&
      since >= options_.checkpoint_every) {
    mutations_since_checkpoint_.store(0, std::memory_order_relaxed);
    // The statement is already durable in the current generation; a
    // failed rotation only matters if the instance wedged, which the
    // next statement will notice.
    (void)Checkpoint();
  }
  return out;
}

std::shared_ptr<storage::DatabaseVersion>
ConcurrencyManager::ForkVersionLocked() {
  // Fork the master (structural sharing, O(metadata)), then move the
  // master into a fresh COW epoch so its next mutation clones rather
  // than touching anything the fork now shares. The version sequence is
  // assigned here, under the exclusive latch, immediately after the WAL
  // enqueue — which is exactly what makes version order = WAL order.
  std::unique_ptr<Database> db = dd_->db().Fork();
  dd_->db().BeginNewEpoch();
  auto views =
      std::make_unique<ViewManager>(db.get(), dd_->session().views());
  return chain_.Prepare(std::move(db), std::move(views));
}

Status ConcurrencyManager::Checkpoint() {
  // Rotation is administrative: not bound by any statement's deadline.
  XSQL_RETURN_IF_ERROR(latch_.AcquireExclusive(ExecLimits{}, nullptr));
  // Under the exclusive latch nothing can enqueue, so after Drain the
  // committer is idle and Rebind is safe.
  Status out = committer_.Drain();
  if (!out.ok()) {
    dd_->Wedge();
  } else {
    // Drain made every enqueued rid-stamped record durable; wait for
    // their threads to finish recording into the dedup table before
    // serializing it (they need no latch, only their WaitDurable —
    // already satisfied — and the table mutex, so this is bounded).
    // New rid claims cannot arrive: enqueue happens under the
    // exclusive latch we hold.
    {
      std::unique_lock<std::mutex> lock(pending_mu_);
      pending_cv_.wait(lock, [&] { return pending_rid_commits_ == 0; });
    }
    out = dd_->Checkpoint();
    // On failure the old generation's WAL stays live and bound — no
    // rebind wanted. On success, point at the rotated appender.
    if (out.ok()) committer_.Rebind(dd_->wal());
  }
  PrewarmActiveDomain();
  latch_.ReleaseExclusive();
  PublishStatus();
  return out;
}

Result<uint64_t> ConcurrencyManager::ApplyReplicated(
    const std::vector<std::string>& records) {
  // Administrative like Checkpoint: no statement deadline applies.
  XSQL_RETURN_IF_ERROR(latch_.AcquireExclusive(ExecLimits{}, nullptr));
  if (dd_->wedged()) {
    latch_.ReleaseExclusive();
    return Status::RuntimeError(
        "durable database crashed; reopen the directory to recover");
  }
  Result<uint64_t> n = dd_->ApplyReplicated(records);
  if (n.ok() && *n > 0) {
    // Replica reads snapshot the post-batch state: install under the
    // latch so no half-applied batch is ever observable.
    chain_.Install(ForkVersionLocked());
  }
  PrewarmActiveDomain();
  latch_.ReleaseExclusive();
  if (n.ok()) {
    mutations_since_checkpoint_.fetch_add(*n, std::memory_order_relaxed);
    statements_.fetch_add(*n, std::memory_order_relaxed);
    PublishStatus();
  }
  return n;
}

Result<storage::BootstrapBundle> ConcurrencyManager::BuildBootstrapBundle() {
  XSQL_RETURN_IF_ERROR(latch_.AcquireExclusive(ExecLimits{}, nullptr));
  if (dd_->wedged()) {
    latch_.ReleaseExclusive();
    return Status::RuntimeError(
        "durable database crashed; reopen the directory to recover");
  }
  // Drain so the on-disk WAL holds every enqueued record — the bundle
  // is byte copies of the generation files, and they must reflect the
  // state the stream resumes from. (Rid entries recorded after their
  // fsync but before this drain are fine: the stamps ride in the WAL
  // records themselves, and replica recovery replays them.)
  Status drained = committer_.Drain();
  if (!drained.ok()) {
    dd_->Wedge();
    PrewarmActiveDomain();
    latch_.ReleaseExclusive();
    return drained;
  }
  Result<storage::BootstrapBundle> bundle = dd_->ReadBootstrapBundle();
  PrewarmActiveDomain();
  latch_.ReleaseExclusive();
  return bundle;
}

Result<bool> ConcurrencyManager::StatementNeedsExclusive(
    const std::string& text) {
  // Classify against the pinned snapshot — no latch, same as a read.
  std::shared_ptr<const storage::DatabaseVersion> snap = chain_.Head();
  const storage::StatementClass cls =
      storage::ClassifyStatement(text, *snap->db);
  return ClassifyMode(text, cls, *snap->db, *snap->views) ==
         StatementMode::kWrite;
}

void ConcurrencyManager::PublishStatus() {
  if (options_.status == nullptr) return;
  const storage::WalPoint point = dd_->DurableWalPoint();
  options_.status->Set("generation", static_cast<int64_t>(point.generation));
  options_.status->Set("wal_records", static_cast<int64_t>(point.records));
  options_.status->Set("dedup_entries",
                       static_cast<int64_t>(dd_->dedup().entries()));
  options_.status->Set("mvcc_head_sequence",
                       static_cast<int64_t>(chain_.head_sequence()));
  options_.status->Set("mvcc_live_versions",
                       storage::VersionChain::live_versions());
}

void ConcurrencyManager::PrewarmActiveDomain() {
  (void)dd_->db().ActiveDomain();
}

}  // namespace server
}  // namespace xsql
