#ifndef XSQL_SERVER_CLIENT_H_
#define XSQL_SERVER_CLIENT_H_

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "server/wire.h"
#include "storage/dedup.h"

namespace xsql {
namespace server {

/// A blocking wire-protocol client: one TCP connection, one in-flight
/// request. Movable, not copyable; the destructor closes the socket.
class Client {
 public:
  /// Connects to `host:port` (numeric IPv4, e.g. "127.0.0.1").
  static Result<Client> Connect(const std::string& host, int port);

  Client() = default;
  Client(Client&& other) noexcept
      : fd_(other.fd_), timeout_ms_(other.timeout_ms_) {
    other.fd_ = -1;
  }
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client() { Close(); }

  /// Per-request reply deadline (0 = block forever). A tripped
  /// deadline returns ResourceExhausted and the connection should be
  /// treated as poisoned (a late reply would answer the wrong request).
  void set_timeout_ms(int ms) { timeout_ms_ = ms; }

  /// Executes one statement; returns the rendered result text. A
  /// server-side failure comes back as a RuntimeError whose message is
  /// the remote status (`CodeName: message`); overload/shutdown comes
  /// back as Unavailable (retryable).
  Result<std::string> Execute(const std::string& statement);

  /// The exactly-once form: sends kExecuteId stamped with `rid`.
  /// Retrying the same rid after a lost reply is safe — the server
  /// returns the cached reply instead of re-executing.
  Result<std::string> ExecuteWithId(const storage::RequestId& rid,
                                    const std::string& statement);

  /// One request/reply exchange returning the raw reply frame; fails
  /// only on transport problems (send/recv/timeout), never on a
  /// server-reported error. RetryingClient uses this to tell remote
  /// verdicts (final) from transport losses (retryable).
  Result<Frame> Transact(MsgType type, const std::string& payload);

  /// Liveness probe; returns the server's "pong".
  Result<std::string> Ping();

  /// Polite goodbye: sends kQuit, reads the farewell, closes.
  Status Quit();

  void Close();
  bool connected() const { return fd_ >= 0; }

 private:
  explicit Client(int fd) : fd_(fd) {}

  /// Transact + verdict mapping (kError → RuntimeError, kUnavailable →
  /// Unavailable, kResult → payload).
  Result<std::string> RoundTrip(uint8_t type, const std::string& payload);

  int fd_ = -1;
  int timeout_ms_ = 0;
};

/// Extracts the retry-after hint from a kUnavailable payload
/// ("<retry_after_ms> <message>"); 0 when malformed.
int ParseRetryAfterHint(const std::string& payload);

/// Policy for RetryingClient.
struct RetryingClientOptions {
  std::string host = "127.0.0.1";
  int port = 0;
  /// One server in a failover group.
  struct Endpoint {
    std::string host = "127.0.0.1";
    int port = 0;
  };
  /// The failover group: primary first, replicas after. Non-empty
  /// supersedes `host`/`port`. On a connect failure, a lost
  /// connection, or a kUnavailable verdict (a dead-but-replicated
  /// primary and a read-only replica both answer kUnavailable), the
  /// client rotates to the next endpoint before the retry — the same
  /// (uuid, seq) rides along, so a statement the dead primary acked
  /// dedups on the promoted replica instead of running twice.
  std::vector<Endpoint> endpoints;
  /// Injectable backoff sleeper (tests pass a fake; null = real
  /// sleep). Receives the computed sleep in ms.
  std::function<void(int64_t)> sleep_fn;
  /// Per-attempt reply deadline; a reply slower than this counts as
  /// lost and triggers a retry. 0 disables (not recommended: a lost
  /// reply then hangs the client forever).
  int timeout_ms = 2000;
  /// Retries after the first attempt.
  int max_retries = 8;
  /// Exponential backoff: sleep before retry k is
  /// min(backoff_base_ms << (k-1), backoff_max_ms), plus jitter drawn
  /// uniformly from [0, sleep/2], but never less than the server's
  /// retry-after hint when one was received.
  int backoff_base_ms = 5;
  int backoff_max_ms = 500;
  /// Overall wall-clock bound per statement, spanning all attempts and
  /// backoff sleeps (0 = bounded only by max_retries).
  uint64_t deadline_ms = 0;
  /// Jitter stream seed; 0 derives one from the uuid so two clients
  /// never share a backoff schedule.
  uint64_t jitter_seed = 0;
  /// The client identity for request IDs; all-zero mints a random one.
  std::array<uint8_t, 16> uuid{};
  /// One-line operational notices ("connection lost; retrying ...") —
  /// the REPL prints these, tests capture them. May be null.
  std::function<void(const std::string&)> on_event;
};

/// A wire client with exactly-once retry semantics: every statement is
/// stamped with (client uuid, seq) and retried with deadline-bounded
/// exponential backoff + jitter on timeouts, resets, EOF, and
/// kUnavailable. Because the server's dedup table keys on the stamp, a
/// retry of a statement whose reply was lost *after* commit returns
/// the cached reply instead of executing twice — across reconnects and
/// even across a server crash + recovery.
///
/// Not thread-safe: one RetryingClient per thread (each then has its
/// own uuid, which is what keeps their request IDs distinct).
class RetryingClient {
 public:
  explicit RetryingClient(RetryingClientOptions options);

  /// Executes with the next sequence number.
  Result<std::string> Execute(const std::string& statement);

  /// Executes with an explicit sequence number — the crash-recovery
  /// path: a caller that knows its last statement's fate is unknown
  /// re-sends it with the *same* seq after the server restarts.
  Result<std::string> ExecuteSeq(uint64_t seq,
                                 const std::string& statement);

  /// Retarget (e.g. the server restarted on a new port). The current
  /// connection is dropped; the next attempt reconnects.
  void set_port(int port);

  const std::array<uint8_t, 16>& uuid() const { return uuid_; }
  /// Seq of the most recently started statement (0 = none yet).
  uint64_t last_seq() const { return next_seq_; }
  uint64_t retries() const { return retries_; }
  uint64_t reconnects() const { return reconnects_; }
  /// Endpoint rotations (0 when a single endpoint is configured).
  uint64_t failovers() const { return failovers_; }

  void Close() { conn_.Close(); }

 private:
  struct Target {
    std::string host;
    int port = 0;
  };

  Target CurrentTarget() const;
  /// Advances to the next endpoint (no-op without a failover group).
  void RotateEndpoint(const std::string& why);
  Status EnsureConnected();
  void Notice(const std::string& line);

  RetryingClientOptions options_;
  std::array<uint8_t, 16> uuid_;
  Client conn_;
  Rng rng_;
  uint64_t next_seq_ = 0;
  uint64_t retries_ = 0;
  uint64_t reconnects_ = 0;
  uint64_t failovers_ = 0;
  size_t endpoint_index_ = 0;
  bool ever_connected_ = false;
};

}  // namespace server
}  // namespace xsql

#endif  // XSQL_SERVER_CLIENT_H_
