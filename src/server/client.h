#ifndef XSQL_SERVER_CLIENT_H_
#define XSQL_SERVER_CLIENT_H_

#include <string>

#include "common/status.h"

namespace xsql {
namespace server {

/// A blocking wire-protocol client: one TCP connection, one in-flight
/// request. Movable, not copyable; the destructor closes the socket.
class Client {
 public:
  /// Connects to `host:port` (numeric IPv4, e.g. "127.0.0.1").
  static Result<Client> Connect(const std::string& host, int port);

  Client() = default;
  Client(Client&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client() { Close(); }

  /// Executes one statement; returns the rendered result text. A
  /// server-side failure comes back as a RuntimeError whose message is
  /// the remote status (`CodeName: message`).
  Result<std::string> Execute(const std::string& statement);

  /// Liveness probe; returns the server's "pong".
  Result<std::string> Ping();

  /// Polite goodbye: sends kQuit, reads the farewell, closes.
  Status Quit();

  void Close();
  bool connected() const { return fd_ >= 0; }

 private:
  explicit Client(int fd) : fd_(fd) {}

  /// One request/reply round trip.
  Result<std::string> RoundTrip(uint8_t type, const std::string& payload);

  int fd_ = -1;
};

}  // namespace server
}  // namespace xsql

#endif  // XSQL_SERVER_CLIENT_H_
