#ifndef XSQL_SERVER_SERVER_H_
#define XSQL_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "eval/session.h"
#include "obs/status.h"
#include "server/concurrency.h"
#include "server/replication.h"
#include "storage/recovery.h"

namespace xsql {
namespace server {

/// What a server instance is for. A primary executes everything and
/// ships its WAL to subscribers; a replica serves read-only statements
/// and bounces writes with a redirect hint (its state advances only
/// through the replication stream — see server/replication.h).
enum class ServerRole { kPrimary, kReplica };

/// Server policy knobs.
struct ServerOptions {
  /// TCP port on 127.0.0.1; 0 picks an ephemeral port (read it back
  /// from Server::port()).
  int port = 0;
  /// Connection cap: arrivals beyond it get a kUnavailable frame (with
  /// the retry-after hint) and an immediate close, so a stampede
  /// degrades loudly instead of piling up threads.
  int max_connections = 32;
  /// Statement admission cap across all connections: an execute frame
  /// arriving while this many statements are already in flight is shed
  /// with kUnavailable instead of queuing behind the latch. 0 = no cap.
  int max_inflight_statements = 0;
  /// Reap a connection that sends nothing for this long (ms); the idle
  /// slot goes back to the accept pool. 0 = never.
  int idle_timeout_ms = 0;
  /// Per-frame socket budget (ms): a peer that starts a frame (or is
  /// receiving a reply) must make progress within it, or the
  /// connection is dropped — slow-peer defense. 0 = never.
  int io_timeout_ms = 0;
  /// The hint shipped in every kUnavailable frame: how long a polite
  /// client should wait before retrying.
  int retry_after_hint_ms = 50;
  /// Per-connection session template (guardrails, typing mode, slow-
  /// query log). Each connection gets a fresh Session and cancel token;
  /// `session.limits.deadline_ms` therefore acts as the per-connection
  /// statement deadline, enforced both waiting for the latch and
  /// executing.
  SessionOptions session;
  /// Group-commit checkpoint cadence (see ConcurrencyManager::Options).
  uint64_t checkpoint_every = 0;
  /// Role at startup (a replica flips to primary on promotion).
  ServerRole role = ServerRole::kPrimary;
  /// Where a replica points refused writers ("host:port"); shipped in
  /// the kUnavailable payload so a failover-aware client re-targets.
  std::string redirect_hint;
  /// kPromote handler. A ReplicaNode installs one that requests its
  /// applier to take over (see replica.h); unset means this server
  /// cannot be promoted and kPromote gets an error reply. Returns the
  /// human-readable acknowledgement for the kResult frame.
  std::function<Status(std::string*)> on_promote;
  /// Semi-synchronous replication (see ConcurrencyManager::Options).
  bool sync_replication = false;
  int sync_replication_timeout_ms = 1000;
};

/// The XSQL TCP server: one listener on 127.0.0.1, one thread per
/// connection (bounded by `max_connections`), each bound to its own
/// Session over the shared DurableDatabase through a
/// ConcurrencyManager. Requests and replies use the length-prefixed
/// wire protocol (see wire.h); every statement is executed with the
/// full concurrency protocol — parallel reads, serialized mutations,
/// group-commit durability before the acknowledging kResult frame.
///
/// Shutdown is graceful: the listener stops accepting, connection
/// threads finish their in-flight statement (its reply is still
/// delivered), notice the stop flag at the next read slice, and exit;
/// Shutdown() joins them all.
class Server {
 public:
  /// Binds, listens, and starts the accept loop. `dd` must outlive the
  /// server.
  static Result<std::unique_ptr<Server>> Start(storage::DurableDatabase* dd,
                                               ServerOptions options = {});

  ~Server();

  /// The bound port (useful with options.port == 0).
  int port() const { return port_; }

  /// Graceful stop; idempotent. Returns after every connection thread
  /// has drained and joined.
  void Shutdown();

  ConcurrencyManager& manager() { return cm_; }
  uint64_t connections_served() const {
    return connections_served_.load(std::memory_order_relaxed);
  }

  ServerRole role() const { return role_.load(std::memory_order_acquire); }
  /// Role flips are rare (promotion) and visible to every connection
  /// thread at its next statement.
  void SetRole(ServerRole role);
  ReplicationHub& hub() { return hub_; }
  /// This server's status board (what its sessions' `SYSTEM STATUS`
  /// renders). Instance-scoped so two nodes in one process — the
  /// failover tests run primary and replica side by side — don't
  /// clobber each other's keys.
  obs::StatusRegistry& status() { return status_; }

 private:
  Server(storage::DurableDatabase* dd, ServerOptions options)
      : options_(std::move(options)),
        role_(options_.role),
        cm_(dd, ConcurrencyManager::Options{
                    options_.checkpoint_every, &hub_,
                    options_.sync_replication,
                    options_.sync_replication_timeout_ms, &status_}),
        repl_(&cm_, &hub_) {}

  void AcceptLoop();
  void HandleConnection(int fd);

  ServerOptions options_;
  obs::StatusRegistry status_;
  ReplicationHub hub_;
  std::atomic<ServerRole> role_{ServerRole::kPrimary};
  ConcurrencyManager cm_;
  ReplicationSource repl_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stop_{false};
  std::thread accept_thread_;
  std::mutex shutdown_mu_;
  std::mutex threads_mu_;
  std::vector<std::thread> conn_threads_;
  std::atomic<int> active_connections_{0};
  std::atomic<int> inflight_statements_{0};
  std::atomic<uint64_t> connections_served_{0};
};

/// Renders an execution result as the human-readable text the server
/// ships in kResult frames (also what the client REPL prints).
std::string RenderResult(const EvalOutput& out);

}  // namespace server
}  // namespace xsql

#endif  // XSQL_SERVER_SERVER_H_
