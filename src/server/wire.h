#ifndef XSQL_SERVER_WIRE_H_
#define XSQL_SERVER_WIRE_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace xsql {
namespace server {

/// The XSQL wire protocol: length-prefixed frames over a byte stream.
///
///     [u32 frame_len | little-endian]   — bytes after this field
///     [u8  type]                        — MsgType
///     [frame_len - 1 payload bytes]
///
/// Client → server: kExecute (payload = statement text), kExecuteId
/// (payload = [16-byte client uuid][u64 seq LE][statement text] — the
/// exactly-once form, see storage/dedup.h), kPing (empty), kQuit
/// (empty). Server → client, one reply per request: kResult (payload =
/// rendered result text), kError (payload = the Status rendered as
/// `CodeName: message`, machine-splittable on the first `: `), or
/// kUnavailable (transient overload / shutdown pending; payload =
/// `<retry_after_ms> <message>` — safe to retry after the hint).
/// Frames above kMaxFrame are a protocol error — the peer is garbage
/// or hostile, and the connection drops.
///
/// Replication frames (see server/replication.h for the protocol; all
/// multi-byte integers little-endian):
///   kSubscribe  replica → primary: `[u64 gen][u64 records][u64 bytes]
///               [u32 crc]` — "I hold this durable prefix (crc of my
///               WAL's byte prefix proves it is yours); stream from
///               there". A fresh replica sends gen 0.
///   kSnapshotChunk / kSnapshotDone  primary → replica bootstrap: the
///               generation bundle (snapshot, DDL log, WAL, dedup
///               table) chunked under kMaxFrame; kSnapshotDone carries
///               `[u64 gen][u64 records]`, the position the stream
///               resumes from.
///   kWalBatch   primary → replica: `[u64 first_record_index]` then
///               raw WAL records (len+crc+payload) verbatim — the
///               replica's WAL stays a byte-prefix of the primary's.
///   kHeartbeat  primary → replica when idle: `[u64 gen][u64 records]`
///               so lag is measurable without traffic.
///   kAck        replica → primary: `[u64 gen][u64 records]` applied
///               durably — feeds semi-sync waits and lag gauges.
///   kPromote    admin → replica: finish applying, detach, serve as
///               primary. Replied with kResult / kError.
enum class MsgType : uint8_t {
  kExecute = 0x01,
  kPing = 0x02,
  kQuit = 0x03,
  kExecuteId = 0x04,
  kSubscribe = 0x05,
  kAck = 0x06,
  kPromote = 0x07,
  kResult = 0x11,
  kError = 0x12,
  kUnavailable = 0x13,
  kSnapshotChunk = 0x14,
  kSnapshotDone = 0x15,
  kWalBatch = 0x16,
  kHeartbeat = 0x17,
};

/// Frame size cap (length field value): 16 MiB.
constexpr uint32_t kMaxFrame = 16u << 20;

/// One decoded frame.
struct Frame {
  MsgType type = MsgType::kPing;
  std::string payload;
};

/// Per-connection socket I/O policy. The zero value reproduces the
/// legacy behavior: block forever, no fault-injection site.
struct IoOptions {
  /// Checked between poll slices; non-null on the server side so
  /// shutdown interrupts parked reads.
  const std::atomic<bool>* stop = nullptr;
  /// Max wait for the *first* byte of the next frame (0 = forever).
  /// Tripping it returns ResourceExhausted mentioning "idle timeout" —
  /// the server's idle-connection reaper.
  int idle_timeout_ms = 0;
  /// Max wall-clock for finishing a frame once its first byte arrived,
  /// and for draining one reply write (0 = forever). Defends against
  /// slow/stalled peers holding a thread and its buffers.
  int io_timeout_ms = 0;
  /// Fault-injection side tag ("srv" / "cli"); read ops draw from site
  /// "net-<site>-read", writes from "net-<site>-write" (see
  /// FaultInjector::ArmNet). Empty still participates when the armed
  /// filter is empty.
  const char* site = "";
};

/// Encodes a frame ready for the socket.
std::string EncodeFrame(MsgType type, const std::string& payload);

/// Reads one full frame under `io` (timeouts, stop flag, injected
/// faults). Errors: kCancelled when `io.stop` trips, ResourceExhausted
/// on a timeout, NotFound on EOF, InvalidArgument on a malformed
/// length, RuntimeError on socket failure or an injected reset.
Result<Frame> ReadFrame(int fd, const IoOptions& io);

/// Legacy form: block forever (server passes the stop flag).
Result<Frame> ReadFrame(int fd, const std::atomic<bool>* stop);

/// Writes all of `data` under `io`, or fails having possibly sent a
/// prefix — the caller must treat any error as a poisoned connection
/// and close it (the peer then sees EOF mid-frame instead of a hang).
/// Uses MSG_NOSIGNAL + poll, so a dead peer yields EPIPE/ECONNRESET as
/// a NotFound status, never a SIGPIPE crash; ResourceExhausted when
/// `io.io_timeout_ms` expires before the final byte is accepted.
Status WriteAll(int fd, const std::string& data, const IoOptions& io);

/// Legacy form: no timeout, no site.
Status WriteAll(int fd, const std::string& data);

}  // namespace server
}  // namespace xsql

#endif  // XSQL_SERVER_WIRE_H_
