#ifndef XSQL_SERVER_WIRE_H_
#define XSQL_SERVER_WIRE_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace xsql {
namespace server {

/// The XSQL wire protocol: length-prefixed frames over a byte stream.
///
///     [u32 frame_len | little-endian]   — bytes after this field
///     [u8  type]                        — MsgType
///     [frame_len - 1 payload bytes]
///
/// Client → server: kExecute (payload = statement text), kPing (empty),
/// kQuit (empty). Server → client, one reply per request: kResult
/// (payload = rendered result text) or kError (payload = the Status
/// rendered as `CodeName: message`, machine-splittable on the first
/// `: `). Frames above kMaxFrame are a protocol error — the peer is
/// garbage or hostile, and the connection drops.
enum class MsgType : uint8_t {
  kExecute = 0x01,
  kPing = 0x02,
  kQuit = 0x03,
  kResult = 0x11,
  kError = 0x12,
};

/// Frame size cap (length field value): 16 MiB.
constexpr uint32_t kMaxFrame = 16u << 20;

/// One decoded frame.
struct Frame {
  MsgType type = MsgType::kPing;
  std::string payload;
};

/// Encodes a frame ready for the socket.
std::string EncodeFrame(MsgType type, const std::string& payload);

/// Reads one full frame, polling in 100 ms slices. Aborts with
/// kCancelled when `*stop` becomes true (server shutdown), and with an
/// error on EOF, a malformed length, or a socket failure. `stop` may
/// be null (client side: block until the reply lands).
Result<Frame> ReadFrame(int fd, const std::atomic<bool>* stop);

/// Writes all of `data`, retrying short writes.
Status WriteAll(int fd, const std::string& data);

}  // namespace server
}  // namespace xsql

#endif  // XSQL_SERVER_WIRE_H_
