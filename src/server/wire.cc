#include "server/wire.h"

#include <errno.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <optional>
#include <thread>

#include "common/fault.h"

namespace xsql {
namespace server {

namespace {

/// How long one poll() slice lasts; the stop flag and deadlines are
/// checked between slices, bounding shutdown latency.
constexpr int kPollSliceMs = 100;

using Clock = std::chrono::steady_clock;

Status SocketError(const char* what) {
  return Status::RuntimeError(std::string(what) + ": " + strerror(errno));
}

std::optional<Clock::time_point> DeadlineAfter(int ms) {
  if (ms <= 0) return std::nullopt;
  return Clock::now() + std::chrono::milliseconds(ms);
}

/// Bounds one poll slice by the deadline (so a 100 ms slice never
/// overshoots a 10 ms budget).
int SliceMs(const std::optional<Clock::time_point>& deadline) {
  if (!deadline.has_value()) return kPollSliceMs;
  auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                  *deadline - Clock::now())
                  .count();
  if (left < 1) return 1;
  if (left > kPollSliceMs) return kPollSliceMs;
  return static_cast<int>(left);
}

/// Draws the injected fault for one socket op. Read-side ops map
/// kTruncate/kDrop to kReset: a torn or swallowed inbound frame
/// surfaces to this process as a dead connection either way.
NetAction DrawNetFault(const IoOptions& io, bool is_read,
                       uint64_t op_bytes) {
  FaultInjector& fi = FaultInjector::Global();
  if (!fi.net_armed()) return NetAction{};
  std::string site = std::string("net-") + io.site +
                     (is_read ? "-read" : "-write");
  NetAction action = fi.NetNext(site.c_str(), op_bytes);
  if (is_read && (action.kind == NetFault::kTruncate ||
                  action.kind == NetFault::kDrop)) {
    action.kind = NetFault::kReset;
  }
  if (action.kind == NetFault::kDelay && action.delay_ms > 0) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(action.delay_ms));
    action.kind = NetFault::kNone;  // after the stall, proceed normally
  }
  return action;
}

/// Reads exactly `n` bytes into `out`, polling so the stop flag and
/// the deadline both work. `what` names the budget in the timeout
/// status ("idle timeout" / "read timeout").
Status ReadExact(int fd, size_t n, std::string* out, const IoOptions& io,
                 const std::optional<Clock::time_point>& deadline,
                 const char* what) {
  NetAction fault = DrawNetFault(io, /*is_read=*/true, n);
  if (fault.kind == NetFault::kReset) {
    return Status::RuntimeError("injected connection reset (read)");
  }
  out->clear();
  out->reserve(n);
  char buf[4096];
  while (out->size() < n) {
    if (io.stop != nullptr && io.stop->load(std::memory_order_relaxed)) {
      return Status::Cancelled("connection stopped");
    }
    if (deadline.has_value() && Clock::now() >= *deadline) {
      return Status::ResourceExhausted(std::string(what) +
                                       " on socket read");
    }
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = POLLIN;
    pfd.revents = 0;
    int ready = poll(&pfd, 1, SliceMs(deadline));
    if (ready < 0) {
      if (errno == EINTR) continue;
      return SocketError("poll");
    }
    if (ready == 0) continue;  // slice expired; re-check stop/deadline
    size_t want = n - out->size();
    if (want > sizeof(buf)) want = sizeof(buf);
    ssize_t got = read(fd, buf, want);
    if (got < 0) {
      if (errno == EINTR) continue;
      if (errno == ECONNRESET) {
        return Status::NotFound("connection reset by peer");
      }
      return SocketError("read");
    }
    if (got == 0) return Status::NotFound("connection closed by peer");
    out->append(buf, static_cast<size_t>(got));
  }
  return Status::OK();
}

}  // namespace

std::string EncodeFrame(MsgType type, const std::string& payload) {
  const uint32_t len = static_cast<uint32_t>(payload.size()) + 1;
  std::string out;
  out.reserve(4 + len);
  out.push_back(static_cast<char>(len & 0xFF));
  out.push_back(static_cast<char>((len >> 8) & 0xFF));
  out.push_back(static_cast<char>((len >> 16) & 0xFF));
  out.push_back(static_cast<char>((len >> 24) & 0xFF));
  out.push_back(static_cast<char>(type));
  out.append(payload);
  return out;
}

Result<Frame> ReadFrame(int fd, const IoOptions& io) {
  // The wait for the first byte is idleness (bounded by the idle
  // budget); everything after it is one frame in flight (bounded by
  // the io budget) — a peer that starts a frame must finish it.
  std::string first;
  XSQL_RETURN_IF_ERROR(ReadExact(fd, 1, &first, io,
                                 DeadlineAfter(io.idle_timeout_ms),
                                 "idle timeout"));
  const std::optional<Clock::time_point> frame_deadline =
      DeadlineAfter(io.io_timeout_ms);
  std::string rest;
  XSQL_RETURN_IF_ERROR(
      ReadExact(fd, 3, &rest, io, frame_deadline, "read timeout"));
  const std::string header = first + rest;
  const auto* b = reinterpret_cast<const unsigned char*>(header.data());
  uint32_t len = static_cast<uint32_t>(b[0]) |
                 (static_cast<uint32_t>(b[1]) << 8) |
                 (static_cast<uint32_t>(b[2]) << 16) |
                 (static_cast<uint32_t>(b[3]) << 24);
  if (len == 0 || len > kMaxFrame) {
    return Status::InvalidArgument("bad frame length " +
                                   std::to_string(len));
  }
  std::string body;
  XSQL_RETURN_IF_ERROR(
      ReadExact(fd, len, &body, io, frame_deadline, "read timeout"));
  Frame frame;
  frame.type = static_cast<MsgType>(static_cast<uint8_t>(body[0]));
  frame.payload = body.substr(1);
  return frame;
}

Result<Frame> ReadFrame(int fd, const std::atomic<bool>* stop) {
  IoOptions io;
  io.stop = stop;
  return ReadFrame(fd, io);
}

Status WriteAll(int fd, const std::string& data, const IoOptions& io) {
  NetAction fault = DrawNetFault(io, /*is_read=*/false, data.size());
  if (fault.kind == NetFault::kReset) {
    return Status::RuntimeError("injected connection reset (write)");
  }
  if (fault.kind == NetFault::kDrop) {
    // The frame vanishes but the writer believes it was sent — the
    // lost-reply scenario. The peer's timeout is its only recourse.
    return Status::OK();
  }
  size_t limit = data.size();
  bool torn = false;
  if (fault.kind == NetFault::kTruncate) {
    limit = static_cast<size_t>(fault.keep_bytes);
    torn = true;  // send the prefix, then fail so the caller closes
  }
  const std::optional<Clock::time_point> deadline =
      DeadlineAfter(io.io_timeout_ms);
  size_t sent = 0;
  while (sent < limit) {
    if (io.stop != nullptr && io.stop->load(std::memory_order_relaxed)) {
      return Status::Cancelled("connection stopped");
    }
    if (deadline.has_value() && Clock::now() >= *deadline) {
      return Status::ResourceExhausted("write timeout on socket");
    }
    // MSG_NOSIGNAL: a peer that died mid-reply must surface as EPIPE,
    // not kill the process; MSG_DONTWAIT + poll keeps the deadline
    // honest when the kernel buffer is full (slow-reader defense).
    ssize_t n = send(fd, data.data() + sent, limit - sent,
                     MSG_NOSIGNAL | MSG_DONTWAIT);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        struct pollfd pfd;
        pfd.fd = fd;
        pfd.events = POLLOUT;
        pfd.revents = 0;
        int ready = poll(&pfd, 1, SliceMs(deadline));
        if (ready < 0 && errno != EINTR) return SocketError("poll");
        continue;
      }
      if (errno == EPIPE || errno == ECONNRESET) {
        return Status::NotFound("connection closed by peer (write)");
      }
      return SocketError("send");
    }
    sent += static_cast<size_t>(n);
  }
  if (torn) {
    return Status::RuntimeError("injected truncated write");
  }
  return Status::OK();
}

Status WriteAll(int fd, const std::string& data) {
  return WriteAll(fd, data, IoOptions{});
}

}  // namespace server
}  // namespace xsql
