#include "server/wire.h"

#include <errno.h>
#include <poll.h>
#include <string.h>
#include <unistd.h>

namespace xsql {
namespace server {

namespace {

/// How long one poll() slice lasts; the stop flag is checked between
/// slices, bounding shutdown latency.
constexpr int kPollSliceMs = 100;

Status SocketError(const char* what) {
  return Status::RuntimeError(std::string(what) + ": " + strerror(errno));
}

/// Reads exactly `n` bytes into `out`, polling so the stop flag works.
Status ReadExact(int fd, size_t n, std::string* out,
                 const std::atomic<bool>* stop) {
  out->clear();
  out->reserve(n);
  char buf[4096];
  while (out->size() < n) {
    if (stop != nullptr && stop->load(std::memory_order_relaxed)) {
      return Status::Cancelled("connection stopped");
    }
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = POLLIN;
    pfd.revents = 0;
    int ready = poll(&pfd, 1, kPollSliceMs);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return SocketError("poll");
    }
    if (ready == 0) continue;  // slice expired; re-check stop
    size_t want = n - out->size();
    if (want > sizeof(buf)) want = sizeof(buf);
    ssize_t got = read(fd, buf, want);
    if (got < 0) {
      if (errno == EINTR) continue;
      return SocketError("read");
    }
    if (got == 0) return Status::NotFound("connection closed by peer");
    out->append(buf, static_cast<size_t>(got));
  }
  return Status::OK();
}

}  // namespace

std::string EncodeFrame(MsgType type, const std::string& payload) {
  const uint32_t len = static_cast<uint32_t>(payload.size()) + 1;
  std::string out;
  out.reserve(4 + len);
  out.push_back(static_cast<char>(len & 0xFF));
  out.push_back(static_cast<char>((len >> 8) & 0xFF));
  out.push_back(static_cast<char>((len >> 16) & 0xFF));
  out.push_back(static_cast<char>((len >> 24) & 0xFF));
  out.push_back(static_cast<char>(type));
  out.append(payload);
  return out;
}

Result<Frame> ReadFrame(int fd, const std::atomic<bool>* stop) {
  std::string header;
  XSQL_RETURN_IF_ERROR(ReadExact(fd, 4, &header, stop));
  const auto* b = reinterpret_cast<const unsigned char*>(header.data());
  uint32_t len = static_cast<uint32_t>(b[0]) |
                 (static_cast<uint32_t>(b[1]) << 8) |
                 (static_cast<uint32_t>(b[2]) << 16) |
                 (static_cast<uint32_t>(b[3]) << 24);
  if (len == 0 || len > kMaxFrame) {
    return Status::InvalidArgument("bad frame length " +
                                   std::to_string(len));
  }
  std::string body;
  XSQL_RETURN_IF_ERROR(ReadExact(fd, len, &body, stop));
  Frame frame;
  frame.type = static_cast<MsgType>(static_cast<uint8_t>(body[0]));
  frame.payload = body.substr(1);
  return frame;
}

Status WriteAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = write(fd, data.data() + sent, data.size() - sent);
    if (n < 0) {
      if (errno == EINTR) continue;
      return SocketError("write");
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace server
}  // namespace xsql
