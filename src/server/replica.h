#ifndef XSQL_SERVER_REPLICA_H_
#define XSQL_SERVER_REPLICA_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "common/status.h"
#include "server/replication.h"
#include "server/server.h"
#include "storage/recovery.h"

namespace xsql {
namespace server {

/// Replica-node policy.
struct ReplicaOptions {
  /// The replica's own durable directory.
  std::string dir;
  /// Where the primary listens.
  std::string primary_host = "127.0.0.1";
  int primary_port = 0;
  /// Template for the replica's read-only server (role and redirect
  /// hint are filled in by Start).
  ServerOptions server;
  /// Durable-database options for the replica directory. Replicas keep
  /// `checkpoint_every` at 0: generations must rotate in lockstep with
  /// the primary (a local rotation would fork the numbering and force
  /// a re-bootstrap on the next subscribe).
  storage::DurableOptions durable;
  /// Losing heartbeats for this long counts as a dead primary: the
  /// applier reconnects (or, after RequestPromote, takes over).
  int heartbeat_timeout_ms = 1000;
};

/// A replica process-in-miniature: its own DurableDatabase, a
/// read-only Server for queries, and an applier thread that subscribes
/// to the primary, applies shipped batches, and acks. On promotion the
/// applier detaches from the primary and the server starts accepting
/// writes as the new primary — with the replicated dedup table intact,
/// so a client retrying a statement the dead primary acked gets its
/// cached reply instead of a double execution.
class ReplicaNode {
 public:
  static Result<std::unique_ptr<ReplicaNode>> Start(ReplicaOptions options);

  ~ReplicaNode();

  /// Stops the applier and the server; joins. Idempotent.
  void Shutdown();

  /// Asks the applier to promote. Asynchronous by design: this is
  /// called from the server's own connection threads (the kPromote
  /// handler), which the promotion path must never join from. The
  /// applier notices, detaches from the primary, and flips the role.
  void RequestPromote();

  /// Waits until promotion completes (role flipped, writes accepted).
  bool AwaitPromoted(int timeout_ms);
  bool promoted() const {
    return promoted_.load(std::memory_order_acquire);
  }

  /// The replica server's port (stable across re-bootstraps).
  int port() const { return port_; }

  /// The live server/database. The pointers are replaced during a
  /// mid-stream re-bootstrap; callers outside the applier should reach
  /// state through the wire instead where possible.
  Server* server();
  storage::DurableDatabase* durable();

  /// Records the applier observed the primary at, and applied locally.
  uint64_t primary_records() const {
    return primary_records_.load(std::memory_order_relaxed);
  }
  uint64_t applied_records() const {
    return applied_records_.load(std::memory_order_relaxed);
  }
  uint64_t reconnects() const {
    return reconnects_.load(std::memory_order_relaxed);
  }

 private:
  explicit ReplicaNode(ReplicaOptions options)
      : options_(std::move(options)) {}

  /// Opens the durable directory and starts the server in `role`
  /// (first on options_.server.port, thereafter on the recorded port).
  Status OpenAndServe(ServerRole role);
  void ApplierLoop();
  /// One connect → subscribe → apply cycle. Returns when the
  /// connection dies, stop/promote is requested, or the stream went
  /// irrecoverably out of sync (the caller reconnects, which
  /// renegotiates the position from local durable state).
  /// `*progressed` reports whether anything was applied.
  Status RunOnce(bool* progressed);
  /// Tears down server+database, installs `bundle`, reopens both on
  /// the same port.
  Status Rebootstrap(const storage::BootstrapBundle& bundle);
  void PublishStatus();
  void Promote();

  ReplicaOptions options_;
  int port_ = 0;

  mutable std::mutex state_mu_;  // guards server_/dd_ swaps (re-bootstrap)
  std::unique_ptr<storage::DurableDatabase> dd_;
  std::unique_ptr<Server> server_;

  std::thread applier_;
  std::atomic<bool> applier_stop_{false};
  std::atomic<bool> promote_requested_{false};
  std::atomic<bool> promoted_{false};
  std::mutex promote_mu_;
  std::condition_variable promote_cv_;

  std::atomic<uint64_t> primary_records_{0};
  std::atomic<uint64_t> applied_records_{0};
  std::atomic<uint64_t> reconnects_{0};
};

}  // namespace server
}  // namespace xsql

#endif  // XSQL_SERVER_REPLICA_H_
