#include "server/replication.h"

#include <poll.h>

#include <chrono>
#include <thread>
#include <utility>
#include <vector>

#include "common/crc32.h"
#include "obs/metrics.h"
#include "storage/file.h"
#include "storage/wal.h"

namespace xsql {
namespace server {

namespace {

using Clock = std::chrono::steady_clock;

/// Raw WAL bytes per kWalBatch frame — well under kMaxFrame, and small
/// enough that a replica ack (and thus semi-sync progress) is never
/// more than one frame of apply-work away.
constexpr uint64_t kMaxBatchBytes = 4u << 20;
/// Bundle bytes per kSnapshotChunk frame.
constexpr uint64_t kChunkBytes = 4u << 20;
/// Heartbeat cadence while idle.
constexpr std::chrono::milliseconds kHeartbeatEvery(50);
/// Ship-loop poll cadence.
constexpr std::chrono::milliseconds kShipPollSlice(2);

constexpr uint64_t kWalMagicLen = sizeof(storage::Wal::kMagic) - 1;

}  // namespace

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

bool GetU32(const std::string& in, size_t off, uint32_t* v) {
  if (in.size() < off + 4) return false;
  *v = 0;
  for (int i = 0; i < 4; ++i) {
    *v |= static_cast<uint32_t>(static_cast<unsigned char>(in[off + i]))
          << (8 * i);
  }
  return true;
}

bool GetU64(const std::string& in, size_t off, uint64_t* v) {
  if (in.size() < off + 8) return false;
  *v = 0;
  for (int i = 0; i < 8; ++i) {
    *v |= static_cast<uint64_t>(static_cast<unsigned char>(in[off + i]))
          << (8 * i);
  }
  return true;
}

std::string EncodeSubscribePayload(const storage::WalPoint& point,
                                   uint32_t crc) {
  std::string out;
  PutU64(&out, point.generation);
  PutU64(&out, point.records);
  PutU64(&out, point.bytes);
  PutU32(&out, crc);
  return out;
}

bool DecodeSubscribePayload(const std::string& payload,
                            storage::WalPoint* point, uint32_t* crc) {
  return GetU64(payload, 0, &point->generation) &&
         GetU64(payload, 8, &point->records) &&
         GetU64(payload, 16, &point->bytes) && GetU32(payload, 24, crc) &&
         payload.size() == 28;
}

std::string EncodePosition(uint64_t gen, uint64_t records) {
  std::string out;
  PutU64(&out, gen);
  PutU64(&out, records);
  return out;
}

bool DecodePosition(const std::string& payload, uint64_t* gen,
                    uint64_t* records) {
  return GetU64(payload, 0, gen) && GetU64(payload, 8, records) &&
         payload.size() == 16;
}

std::string EncodeBundle(const storage::BootstrapBundle& bundle) {
  std::string out;
  PutU64(&out, bundle.generation);
  PutU64(&out, bundle.wal_records);
  PutU64(&out, bundle.snapshot.size());
  PutU64(&out, bundle.ddl.size());
  PutU64(&out, bundle.wal.size());
  PutU64(&out, bundle.dedup.size());
  out += bundle.snapshot;
  out += bundle.ddl;
  out += bundle.wal;
  out += bundle.dedup;
  return out;
}

bool DecodeBundle(const std::string& blob,
                  storage::BootstrapBundle* bundle) {
  uint64_t snap_len = 0, ddl_len = 0, wal_len = 0, dedup_len = 0;
  if (!GetU64(blob, 0, &bundle->generation) ||
      !GetU64(blob, 8, &bundle->wal_records) ||
      !GetU64(blob, 16, &snap_len) || !GetU64(blob, 24, &ddl_len) ||
      !GetU64(blob, 32, &wal_len) || !GetU64(blob, 40, &dedup_len)) {
    return false;
  }
  const uint64_t total = 48 + snap_len + ddl_len + wal_len + dedup_len;
  if (blob.size() != total) return false;
  size_t off = 48;
  bundle->snapshot = blob.substr(off, snap_len);
  off += snap_len;
  bundle->ddl = blob.substr(off, ddl_len);
  off += ddl_len;
  bundle->wal = blob.substr(off, wal_len);
  off += wal_len;
  bundle->dedup = blob.substr(off, dedup_len);
  return true;
}

uint64_t ReplicationHub::Register() {
  std::lock_guard<std::mutex> lock(mu_);
  ever_.store(true, std::memory_order_relaxed);
  const uint64_t id = ++next_id_;
  subs_[id] = Sub{};
  return id;
}

void ReplicationHub::Unregister(uint64_t id) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    subs_.erase(id);
  }
  // A semi-sync waiter must re-evaluate: with the laggard gone its
  // commit may now be "replicated everywhere live" — or hopeless.
  cv_.notify_all();
}

void ReplicationHub::UpdateAck(uint64_t id, uint64_t gen,
                               uint64_t records) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = subs_.find(id);
    if (it == subs_.end()) return;
    it->second.gen = gen;
    it->second.records = records;
  }
  cv_.notify_all();
}

bool ReplicationHub::WaitReplicated(uint64_t gen, uint64_t records,
                                    int timeout_ms) {
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(timeout_ms);
  std::unique_lock<std::mutex> lock(mu_);
  auto caught_up = [&]() {
    for (const auto& [id, sub] : subs_) {
      (void)id;
      if (sub.gen > gen) continue;  // past the rotation that ate `gen`
      if (sub.gen == gen && sub.records >= records) continue;
      return false;
    }
    return true;
  };
  while (true) {
    if (subs_.empty()) return false;  // nobody to replicate to
    if (caught_up()) return true;
    if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      return subs_.empty() ? false : caught_up();
    }
  }
}

int ReplicationHub::live_subscribers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(subs_.size());
}

Status ReplicationSource::SendBundle(int fd, const IoOptions& io,
                                     const storage::BootstrapBundle& bundle) {
  static obs::Counter& bootstraps = obs::MetricsRegistry::Global().GetCounter(
      "xsql.repl.snapshot_bootstraps");
  static obs::Counter& shipped_bytes =
      obs::MetricsRegistry::Global().GetCounter("xsql.repl.shipped_bytes");
  const std::string blob = EncodeBundle(bundle);
  for (uint64_t off = 0; off < blob.size(); off += kChunkBytes) {
    XSQL_RETURN_IF_ERROR(
        WriteAll(fd,
                 EncodeFrame(MsgType::kSnapshotChunk,
                             blob.substr(off, kChunkBytes)),
                 io));
  }
  XSQL_RETURN_IF_ERROR(WriteAll(
      fd,
      EncodeFrame(MsgType::kSnapshotDone,
                  EncodePosition(bundle.generation, bundle.wal_records)),
      io));
  bootstraps.Inc();
  shipped_bytes.Inc(blob.size());
  return Status::OK();
}

void ReplicationSource::Serve(int fd, const IoOptions& io,
                              const std::string& subscribe_payload,
                              const std::atomic<bool>* stop) {
  static obs::Counter& shipped_records =
      obs::MetricsRegistry::Global().GetCounter("xsql.repl.shipped_records");
  static obs::Counter& shipped_bytes =
      obs::MetricsRegistry::Global().GetCounter("xsql.repl.shipped_bytes");
  static obs::Gauge& lag_records =
      obs::MetricsRegistry::Global().GetGauge("xsql.repl.lag_records");
  static obs::Gauge& subscribers =
      obs::MetricsRegistry::Global().GetGauge("xsql.repl.subscribers");

  storage::WalPoint sub{};
  uint32_t sub_crc = 0;
  if (!DecodeSubscribePayload(subscribe_payload, &sub, &sub_crc)) {
    (void)WriteAll(fd,
                   EncodeFrame(MsgType::kError,
                               "InvalidArgument: malformed subscribe "
                               "position"),
                   io);
    return;
  }

  storage::DurableDatabase& dd = cm_->durable();
  const uint64_t id = hub_->Register();
  subscribers.Set(hub_->live_subscribers());
  uint64_t pinned = 0;
  auto unpin = [&] {
    if (pinned != 0) {
      dd.UnpinGeneration(pinned);
      pinned = 0;
    }
  };

  // Replication traffic uses its own fault-injection site, so a chaos
  // sweep can break the client path while the ship path lives (or vice
  // versa).
  IoOptions rio = io;
  rio.site = "repl";

  // The position being shipped from, and a tailer bound to that
  // generation's WAL file.
  uint64_t gen = 0, records = 0, bytes = 0;
  storage::WalTailer tailer;

  // Bootstrap the subscriber from a fresh bundle (also the re-sync
  // path after a generation rotation).
  auto bootstrap = [&]() -> Status {
    unpin();
    Result<storage::BootstrapBundle> bundle = cm_->BuildBootstrapBundle();
    if (!bundle.ok()) return bundle.status();
    pinned = bundle->generation;  // ReadBootstrapBundle pinned it
    XSQL_RETURN_IF_ERROR(SendBundle(fd, rio, *bundle));
    gen = bundle->generation;
    records = bundle->wal_records;
    bytes = bundle->wal.size();
    Result<storage::WalTailer> t = storage::WalTailer::Open(
        storage::DurableDatabase::WalPath(dd.dir(), gen));
    if (!t.ok()) return t.status();
    tailer = std::move(*t);
    return tailer.SkipRecords(records, bytes);
  };

  // Grant incremental resume only on *proof* of shared history: same
  // generation, a byte range within our durable WAL, and a CRC match
  // on our own prefix — a diverged replica (e.g. one that was briefly
  // promoted and took writes) fails the CRC and gets re-bootstrapped.
  Status init = Status::OK();
  bool incremental = false;
  if (sub.generation != 0 && sub.bytes >= kWalMagicLen) {
    dd.PinGeneration(sub.generation);
    pinned = sub.generation;
    const storage::WalPoint point = dd.DurableWalPoint();
    if (sub.generation == point.generation && sub.bytes <= point.bytes &&
        sub.records <= point.records) {
      Result<std::string> prefix = storage::File::ReadRange(
          storage::DurableDatabase::WalPath(dd.dir(), sub.generation), 0,
          sub.bytes);
      if (prefix.ok() && prefix->size() == sub.bytes &&
          Crc32(*prefix) == sub_crc) {
        Result<storage::WalTailer> t = storage::WalTailer::Open(
            storage::DurableDatabase::WalPath(dd.dir(), sub.generation));
        if (t.ok()) {
          init = t->SkipRecords(sub.records, sub.bytes);
          if (init.ok()) {
            tailer = std::move(*t);
            gen = sub.generation;
            records = sub.records;
            bytes = sub.bytes;
            incremental = true;
          }
        }
      }
    }
    if (!incremental) unpin();
  }
  if (!incremental && init.ok()) init = bootstrap();

  auto last_sent = Clock::now();
  Status st = init;
  while (st.ok()) {
    if (stop != nullptr && stop->load(std::memory_order_relaxed)) break;
    if (dd.wedged()) break;  // this node is "dead"; the stream dies too

    // Drain acks without blocking the ship direction.
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = POLLIN;
    pfd.revents = 0;
    bool peer_gone = false;
    while (poll(&pfd, 1, 0) > 0 &&
           (pfd.revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
      IoOptions ack_io = rio;
      ack_io.idle_timeout_ms = 1000;  // bytes are already waiting
      Result<Frame> f = ReadFrame(fd, ack_io);
      if (!f.ok()) {
        peer_gone = true;
        break;
      }
      uint64_t agen = 0, arecords = 0;
      if (f->type == MsgType::kAck &&
          DecodePosition(f->payload, &agen, &arecords)) {
        hub_->UpdateAck(id, agen, arecords);
        if (agen == gen) {
          lag_records.Set(static_cast<int64_t>(records) -
                          static_cast<int64_t>(arecords));
        }
      }
      pfd.revents = 0;
    }
    if (peer_gone) break;

    const storage::WalPoint point = dd.DurableWalPoint();
    if (point.generation != gen) {
      // A checkpoint rotated the generation mid-stream: re-sync the
      // subscriber with a fresh bundle on this same connection.
      st = bootstrap();
      last_sent = Clock::now();
      continue;
    }
    if (point.bytes > bytes) {
      std::string raw;
      std::vector<std::string> payloads;
      st = tailer.Poll(point.bytes, kMaxBatchBytes, &raw, &payloads);
      if (!st.ok()) break;
      if (!payloads.empty()) {
        std::string payload;
        PutU64(&payload, records);  // replica must be at this count
        payload += raw;
        st = WriteAll(fd, EncodeFrame(MsgType::kWalBatch, payload), rio);
        if (!st.ok()) break;
        records += payloads.size();
        bytes = tailer.offset();
        shipped_records.Inc(payloads.size());
        shipped_bytes.Inc(raw.size());
        last_sent = Clock::now();
        continue;  // there may be more ready right now
      }
    }
    if (Clock::now() - last_sent >= kHeartbeatEvery) {
      st = WriteAll(fd,
                    EncodeFrame(MsgType::kHeartbeat,
                                EncodePosition(gen, records)),
                    rio);
      last_sent = Clock::now();
      continue;
    }
    std::this_thread::sleep_for(kShipPollSlice);
  }

  unpin();
  hub_->Unregister(id);
  subscribers.Set(hub_->live_subscribers());
}

}  // namespace server
}  // namespace xsql
