#ifndef XSQL_SERVER_REPLICATION_H_
#define XSQL_SERVER_REPLICATION_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "common/status.h"
#include "server/concurrency.h"
#include "server/wire.h"
#include "storage/recovery.h"

namespace xsql {
namespace server {

/// Primary → replica WAL shipping over the wire protocol.
///
/// Protocol (frame types in wire.h):
///
///   1. The replica connects and sends kSubscribe with its durable
///      position `[u64 gen][u64 records][u64 bytes][u32 crc]`, where
///      `crc` is the CRC-32 of its WAL file's first `bytes` bytes.
///   2. The primary grants *incremental resume* iff the generation is
///      its live one, `bytes` is within its durable WAL, and the CRC of
///      its own prefix matches — the replica's WAL is then provably a
///      byte-prefix of the primary's. Otherwise it captures a
///      *bootstrap bundle* (exact byte copies of the generation's
///      snapshot/DDL/WAL/dedup files, taken under the exclusive latch
///      with the group committer drained) and streams it as
///      kSnapshotChunk frames closed by kSnapshotDone; the replica
///      installs the files verbatim and runs ordinary recovery.
///   3. From the agreed position the primary tails its WAL, shipping
///      raw records in kWalBatch frames (the replica WAL stays a
///      byte-prefix of the primary's), kHeartbeat when idle. The
///      replica applies each batch — statements into its database,
///      request-ID stamps into its dedup table, records onto its own
///      WAL with one fsync — and answers kAck with its new durable
///      position.
///   4. A checkpoint on the primary rotates the generation mid-stream;
///      the source notices and re-bootstraps the subscriber on the same
///      connection. Generations a subscriber still needs are pinned
///      against retention pruning.
///
/// Consistency contract: the replica serves reads from a committed
/// *prefix* of the primary's history (bounded staleness, never a torn
/// or uncommitted state). Writes are refused with a redirect hint.
/// Promotion (controlled via kPromote, or crash-driven when the
/// primary dies) flips the replica to primary after it has applied
/// everything it ever acked; the dedup table it replicated makes a
/// client retry of a statement the dead primary acked dedup instead of
/// double-executing.

// Little-endian integer codecs and the replication payload formats,
// shared by the source (primary side) and the applier (replica side).
void PutU32(std::string* out, uint32_t v);
void PutU64(std::string* out, uint64_t v);
bool GetU32(const std::string& in, size_t off, uint32_t* v);
bool GetU64(const std::string& in, size_t off, uint64_t* v);
/// kSubscribe: `[u64 gen][u64 records][u64 bytes][u32 crc]`.
std::string EncodeSubscribePayload(const storage::WalPoint& point,
                                   uint32_t crc);
bool DecodeSubscribePayload(const std::string& payload,
                            storage::WalPoint* point, uint32_t* crc);
/// kAck / kHeartbeat / kSnapshotDone: `[u64 gen][u64 records]`.
std::string EncodePosition(uint64_t gen, uint64_t records);
bool DecodePosition(const std::string& payload, uint64_t* gen,
                    uint64_t* records);
/// The bootstrap bundle blob carried (chunked) in kSnapshotChunk
/// frames: six u64-length headers then the four file images.
std::string EncodeBundle(const storage::BootstrapBundle& bundle);
bool DecodeBundle(const std::string& blob, storage::BootstrapBundle* bundle);

/// Tracks live replication subscribers and their acked positions. The
/// hub is the meeting point between source threads (updating acks) and
/// the commit path (semi-synchronous waits).
class ReplicationHub {
 public:
  /// Registers a subscriber; returns its id.
  uint64_t Register();
  void Unregister(uint64_t id);
  /// Records a subscriber's acked durable position.
  void UpdateAck(uint64_t id, uint64_t gen, uint64_t records);

  /// Blocks until every live subscriber has acked at least
  /// (`gen`, `records`), the timeout expires, or no subscriber is
  /// live. True only in the first case — false means the write is NOT
  /// known replicated (semi-sync degrade).
  bool WaitReplicated(uint64_t gen, uint64_t records, int timeout_ms);

  /// Whether any subscriber ever connected. The server uses this to
  /// answer wedged-primary requests with retryable kUnavailable (a
  /// replica exists to fail over to) instead of a final error.
  bool ever_had_subscriber() const {
    return ever_.load(std::memory_order_relaxed);
  }
  int live_subscribers() const;

 private:
  struct Sub {
    uint64_t gen = 0;
    uint64_t records = 0;
  };

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<uint64_t, Sub> subs_;
  uint64_t next_id_ = 0;
  std::atomic<bool> ever_{false};
};

/// The primary's shipping side: serves one subscriber on one connection
/// (the thread that received kSubscribe parks here until the replica
/// disconnects, the server stops, or the database wedges).
class ReplicationSource {
 public:
  ReplicationSource(ConcurrencyManager* cm, ReplicationHub* hub)
      : cm_(cm), hub_(hub) {}

  /// Serves the stream on `fd`. `subscribe_payload` is the kSubscribe
  /// frame's payload; `stop` is the owning server's stop flag.
  void Serve(int fd, const IoOptions& io,
             const std::string& subscribe_payload,
             const std::atomic<bool>* stop);

 private:
  /// Sends the bundle as kSnapshotChunk frames + kSnapshotDone.
  Status SendBundle(int fd, const IoOptions& io,
                    const storage::BootstrapBundle& bundle);

  ConcurrencyManager* cm_;
  ReplicationHub* hub_;
};

}  // namespace server
}  // namespace xsql

#endif  // XSQL_SERVER_REPLICATION_H_
