#include "server/replica.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <utility>
#include <vector>

#include "common/crc32.h"
#include "obs/metrics.h"
#include "obs/status.h"
#include "storage/file.h"
#include "storage/wal.h"

namespace xsql {
namespace server {

namespace {

using Clock = std::chrono::steady_clock;

constexpr uint64_t kWalMagicLen = sizeof(storage::Wal::kMagic) - 1;
/// Accumulated bootstrap bundle cap — far above any test database, far
/// below address-space trouble.
constexpr uint64_t kMaxBundleBytes = 1ull << 30;
/// Reconnect backoff bounds.
constexpr int kBackoffStartMs = 10;
constexpr int kBackoffMaxMs = 200;

Result<int> ConnectTcp(const std::string& host, int port) {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::RuntimeError(std::string("socket: ") + strerror(errno));
  }
  struct sockaddr_in addr;
  memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    return Status::InvalidArgument("bad replication host: " + host);
  }
  if (connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
              sizeof(addr)) < 0) {
    Status st = Status::RuntimeError(std::string("connect: ") +
                                     strerror(errno));
    close(fd);
    return st;
  }
  return fd;
}

}  // namespace

Result<std::unique_ptr<ReplicaNode>> ReplicaNode::Start(
    ReplicaOptions options) {
  std::unique_ptr<ReplicaNode> node(new ReplicaNode(std::move(options)));
  // Replicas never rotate on their own: generation numbering must track
  // the primary's, and rotation arrives through the stream as a
  // re-bootstrap.
  node->options_.durable.checkpoint_every = 0;
  node->options_.server.checkpoint_every = 0;
  XSQL_RETURN_IF_ERROR(node->OpenAndServe(ServerRole::kReplica));
  node->applier_ = std::thread([n = node.get()] { n->ApplierLoop(); });
  return node;
}

ReplicaNode::~ReplicaNode() { Shutdown(); }

void ReplicaNode::Shutdown() {
  applier_stop_.store(true, std::memory_order_release);
  if (applier_.joinable()) applier_.join();
  std::unique_ptr<Server> server;
  std::unique_ptr<storage::DurableDatabase> dd;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    server = std::move(server_);
    dd = std::move(dd_);
  }
  if (server != nullptr) server->Shutdown();
  server.reset();  // before the database it serves
  dd.reset();
}

void ReplicaNode::RequestPromote() {
  promote_requested_.store(true, std::memory_order_release);
}

bool ReplicaNode::AwaitPromoted(int timeout_ms) {
  std::unique_lock<std::mutex> lock(promote_mu_);
  return promote_cv_.wait_for(
      lock, std::chrono::milliseconds(timeout_ms),
      [&] { return promoted_.load(std::memory_order_acquire); });
}

Server* ReplicaNode::server() {
  std::lock_guard<std::mutex> lock(state_mu_);
  return server_.get();
}

storage::DurableDatabase* ReplicaNode::durable() {
  std::lock_guard<std::mutex> lock(state_mu_);
  return dd_.get();
}

Status ReplicaNode::OpenAndServe(ServerRole role) {
  ServerOptions sopts = options_.server;
  sopts.role = role;
  sopts.checkpoint_every = 0;
  if (sopts.redirect_hint.empty()) {
    sopts.redirect_hint = options_.primary_host + ":" +
                          std::to_string(options_.primary_port);
  }
  // First start binds the configured port (possibly ephemeral); every
  // restart — re-bootstrap, healing reopen, promotion — rebinds the
  // SAME port, so clients and tests keep one stable address.
  if (port_ != 0) sopts.port = port_;
  sopts.on_promote = [this](std::string* msg) {
    if (promoted_.load(std::memory_order_acquire)) {
      *msg = "already primary";
      return Status::OK();
    }
    RequestPromote();
    *msg = "promotion requested; applier is detaching from the primary";
    return Status::OK();
  };

  Result<std::unique_ptr<storage::DurableDatabase>> dd =
      storage::DurableDatabase::Open(options_.dir, options_.durable);
  if (!dd.ok()) return dd.status();
  Result<std::unique_ptr<Server>> server = Server::Start(dd->get(), sopts);
  if (!server.ok()) return server.status();

  std::lock_guard<std::mutex> lock(state_mu_);
  dd_ = std::move(*dd);
  server_ = std::move(*server);
  port_ = server_->port();
  applied_records_.store(dd_->wal_records(), std::memory_order_relaxed);
  return Status::OK();
}

void ReplicaNode::ApplierLoop() {
  static obs::Counter& reconnect_counter =
      obs::MetricsRegistry::Global().GetCounter("xsql.repl.reconnects");
  int backoff_ms = kBackoffStartMs;
  while (!applier_stop_.load(std::memory_order_acquire) &&
         !promote_requested_.load(std::memory_order_acquire)) {
    bool progressed = false;
    Status st = RunOnce(&progressed);
    if (applier_stop_.load(std::memory_order_acquire) ||
        promote_requested_.load(std::memory_order_acquire)) {
      break;
    }
    // The connection died (primary crash, restart, or network fault):
    // back off and resubscribe from local durable state. Progress on
    // the dead connection resets the backoff — consecutive *barren*
    // attempts are what escalate it.
    reconnects_.fetch_add(1, std::memory_order_relaxed);
    reconnect_counter.Inc();
    if (progressed || st.ok()) backoff_ms = kBackoffStartMs;
    const auto wake = Clock::now() + std::chrono::milliseconds(backoff_ms);
    while (Clock::now() < wake &&
           !applier_stop_.load(std::memory_order_acquire) &&
           !promote_requested_.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    backoff_ms = backoff_ms * 2 > kBackoffMaxMs ? kBackoffMaxMs
                                                : backoff_ms * 2;
  }
  if (promote_requested_.load(std::memory_order_acquire) &&
      !applier_stop_.load(std::memory_order_acquire)) {
    Promote();
  }
}

Status ReplicaNode::RunOnce(bool* progressed) {
  static obs::Gauge& lag_records =
      obs::MetricsRegistry::Global().GetGauge("xsql.repl.lag_records");
  static obs::Gauge& lag_ms =
      obs::MetricsRegistry::Global().GetGauge("xsql.repl.lag_ms");

  // Heal first: a wedged replica (a failed apply or torn local append)
  // reopens from its own durable prefix — recovery truncates any torn
  // tail — and resubscribes from the recovered position.
  if (dd_ == nullptr || dd_->wedged()) {
    std::unique_ptr<Server> old_server;
    std::unique_ptr<storage::DurableDatabase> old_dd;
    {
      std::lock_guard<std::mutex> lock(state_mu_);
      old_server = std::move(server_);
      old_dd = std::move(dd_);
    }
    if (old_server != nullptr) old_server->Shutdown();
    old_server.reset();
    old_dd.reset();
    XSQL_RETURN_IF_ERROR(OpenAndServe(ServerRole::kReplica));
  }
  storage::DurableDatabase* dd = dd_.get();

  // Our durable position, plus the CRC of our WAL prefix — the proof
  // of shared history the primary demands for incremental resume.
  storage::WalPoint local = dd->DurableWalPoint();
  uint32_t crc = 0;
  if (local.bytes >= kWalMagicLen) {
    Result<std::string> prefix = storage::File::ReadRange(
        storage::DurableDatabase::WalPath(options_.dir, local.generation),
        0, local.bytes);
    if (!prefix.ok()) return prefix.status();
    crc = Crc32(*prefix);
  }

  Result<int> fd = ConnectTcp(options_.primary_host, options_.primary_port);
  if (!fd.ok()) return fd.status();

  IoOptions io;
  io.stop = &applier_stop_;
  // Silence past this is a lost primary: heartbeats come every ~50ms,
  // so tripping the idle timeout means the stream is dead.
  io.idle_timeout_ms = options_.heartbeat_timeout_ms;
  io.io_timeout_ms = options_.heartbeat_timeout_ms;
  io.site = "repl";

  Status st = WriteAll(
      *fd, EncodeFrame(MsgType::kSubscribe,
                       EncodeSubscribePayload(local, crc)),
      io);
  if (!st.ok()) {
    close(*fd);
    return st;
  }

  std::string bundle_buf;
  auto last_caught_up = Clock::now();
  auto publish_lag = [&]() {
    const uint64_t primary = primary_records_.load(std::memory_order_relaxed);
    const uint64_t applied = applied_records_.load(std::memory_order_relaxed);
    const int64_t behind = primary > applied
                               ? static_cast<int64_t>(primary - applied)
                               : 0;
    if (behind == 0) last_caught_up = Clock::now();
    lag_records.Set(behind);
    lag_ms.Set(behind == 0
                   ? 0
                   : std::chrono::duration_cast<std::chrono::milliseconds>(
                         Clock::now() - last_caught_up)
                         .count());
    PublishStatus();
  };
  auto ack = [&]() -> Status {
    const storage::WalPoint now = dd->DurableWalPoint();
    applied_records_.store(now.records, std::memory_order_relaxed);
    return WriteAll(
        *fd,
        EncodeFrame(MsgType::kAck, EncodePosition(now.generation,
                                                  now.records)),
        io);
  };

  while (st.ok()) {
    if (applier_stop_.load(std::memory_order_acquire) ||
        promote_requested_.load(std::memory_order_acquire)) {
      break;
    }
    Result<Frame> frame = ReadFrame(*fd, io);
    if (!frame.ok()) {
      st = frame.status();
      break;
    }
    switch (frame->type) {
      case MsgType::kSnapshotChunk:
        if (bundle_buf.size() + frame->payload.size() > kMaxBundleBytes) {
          st = Status::ResourceExhausted("bootstrap bundle too large");
          break;
        }
        bundle_buf += frame->payload;
        break;
      case MsgType::kSnapshotDone: {
        storage::BootstrapBundle bundle;
        if (!DecodeBundle(bundle_buf, &bundle)) {
          st = Status::InvalidArgument("malformed bootstrap bundle");
          break;
        }
        bundle_buf.clear();
        st = Rebootstrap(bundle);
        if (!st.ok()) break;
        dd = dd_.get();  // Rebootstrap replaced the node state
        primary_records_.store(bundle.wal_records,
                               std::memory_order_relaxed);
        *progressed = true;
        st = ack();
        publish_lag();
        break;
      }
      case MsgType::kWalBatch: {
        uint64_t first = 0;
        if (!GetU64(frame->payload, 0, &first)) {
          st = Status::InvalidArgument("malformed WAL batch header");
          break;
        }
        const std::string raw = frame->payload.substr(8);
        uint64_t consumed = 0;
        std::vector<std::string> payloads;
        st = storage::Wal::ParseRecords(raw, &consumed, &payloads);
        if (!st.ok()) break;
        if (consumed != raw.size()) {
          st = Status::InvalidArgument("partial record in WAL batch");
          break;
        }
        const storage::WalPoint now = dd->DurableWalPoint();
        if (first != now.records) {
          // The stream and our state disagree (e.g. a reconnect raced a
          // rotation). Resubscribing renegotiates from durable truth.
          st = Status::InvalidArgument(
              "replication stream out of sync: batch starts at record " +
              std::to_string(first) + ", replica holds " +
              std::to_string(now.records));
          break;
        }
        Result<uint64_t> applied =
            server_->manager().ApplyReplicated(payloads);
        if (!applied.ok()) {
          // The apply wedged the database; the next RunOnce heals by
          // reopening from the durable prefix.
          st = applied.status();
          break;
        }
        primary_records_.store(
            first + *applied > primary_records_.load(
                                   std::memory_order_relaxed)
                ? first + *applied
                : primary_records_.load(std::memory_order_relaxed),
            std::memory_order_relaxed);
        *progressed = true;
        st = ack();
        publish_lag();
        break;
      }
      case MsgType::kHeartbeat: {
        uint64_t pgen = 0, precords = 0;
        if (DecodePosition(frame->payload, &pgen, &precords)) {
          primary_records_.store(precords, std::memory_order_relaxed);
        }
        st = ack();
        publish_lag();
        break;
      }
      case MsgType::kError:
        st = Status::RuntimeError("primary refused subscription: " +
                                  frame->payload);
        break;
      default:
        st = Status::InvalidArgument("unexpected replication frame");
        break;
    }
  }
  close(*fd);
  // Breaking for stop/promote is a clean end, not a stream failure.
  if (applier_stop_.load(std::memory_order_acquire) ||
      promote_requested_.load(std::memory_order_acquire)) {
    return Status::OK();
  }
  return st;
}

Status ReplicaNode::Rebootstrap(const storage::BootstrapBundle& bundle) {
  // The server holds sessions into the database being replaced: tear
  // everything down, install the primary's generation files verbatim,
  // and come back up through ordinary recovery on the same port.
  std::unique_ptr<Server> old_server;
  std::unique_ptr<storage::DurableDatabase> old_dd;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    old_server = std::move(server_);
    old_dd = std::move(dd_);
  }
  if (old_server != nullptr) old_server->Shutdown();
  old_server.reset();
  old_dd.reset();
  XSQL_RETURN_IF_ERROR(storage::DurableDatabase::InstallBootstrapBundle(
      options_.dir, bundle));
  return OpenAndServe(ServerRole::kReplica);
}

void ReplicaNode::PublishStatus() {
  Server* server = server_.get();
  if (server == nullptr) return;
  obs::StatusRegistry& board = server->status();
  board.Set("repl.primary", options_.primary_host + ":" +
                                std::to_string(options_.primary_port));
  const int64_t primary =
      static_cast<int64_t>(primary_records_.load(std::memory_order_relaxed));
  const int64_t applied =
      static_cast<int64_t>(applied_records_.load(std::memory_order_relaxed));
  board.Set("repl.primary_records", primary);
  board.Set("repl.applied_records", applied);
  board.Set("repl.lag_records", primary > applied ? primary - applied : 0);
}

void ReplicaNode::Promote() {
  static obs::Counter& promotions =
      obs::MetricsRegistry::Global().GetCounter("xsql.repl.promotions");
  // Crash promotion may find the replica wedged mid-apply (the primary
  // died while a batch was half-landing). Reopen from the local
  // durable prefix first — recovery truncates the unshipped torn tail
  // exactly like local crash recovery — then take over.
  if (dd_ == nullptr || dd_->wedged()) {
    std::unique_ptr<Server> old_server;
    std::unique_ptr<storage::DurableDatabase> old_dd;
    {
      std::lock_guard<std::mutex> lock(state_mu_);
      old_server = std::move(server_);
      old_dd = std::move(dd_);
    }
    if (old_server != nullptr) old_server->Shutdown();
    old_server.reset();
    old_dd.reset();
    Status reopened = OpenAndServe(ServerRole::kPrimary);
    if (!reopened.ok()) {
      // Leave promoted_ unset: AwaitPromoted reports the failure by
      // timing out, and the node stays a (dead) replica.
      return;
    }
  } else {
    std::lock_guard<std::mutex> lock(state_mu_);
    server_->SetRole(ServerRole::kPrimary);
  }
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    if (server_ != nullptr) {
      server_->status().Set("repl.promoted_from",
                            options_.primary_host + ":" +
                                std::to_string(options_.primary_port));
    }
  }
  promotions.Inc();
  promoted_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(promote_mu_);
  }
  promote_cv_.notify_all();
}

}  // namespace server
}  // namespace xsql
